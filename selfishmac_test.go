package selfishmac_test

import (
	"math"
	"testing"

	"selfishmac"
)

// The facade must support the full quick-start flow without touching
// internal packages.
func TestFacadeQuickStart(t *testing.T) {
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(20, selfishmac.RTSCTS))
	if err != nil {
		t.Fatal(err)
	}
	ne, err := game.FindPaperNE()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(ne.WStar-48)) > 4 {
		t.Fatalf("Wc* = %d, want ~48 (paper Table III)", ne.WStar)
	}
	ref, err := game.Refine(ne)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Efficient != ne.WStar {
		t.Fatalf("refined NE %d != Wc* %d", ref.Efficient, ne.WStar)
	}
}

func TestFacadeRepeatedGame(t *testing.T) {
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(3, selfishmac.Basic))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := selfishmac.NewEngine(game, []selfishmac.Strategy{
		selfishmac.TFT{Initial: 200},
		selfishmac.TFT{Initial: 120},
		selfishmac.GTFT{Initial: 300, R0: 2, Beta: 0.9},
	}, selfishmac.WithStopOnConvergence(3))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ConvergedCW != 120 {
		t.Fatalf("converged to %d, want the minimum initial 120", tr.ConvergedCW)
	}
}

func TestFacadeSimulator(t *testing.T) {
	p := selfishmac.DefaultPHY()
	tm, err := p.Timing(selfishmac.Basic)
	if err != nil {
		t.Fatal(err)
	}
	res, err := selfishmac.Simulate(selfishmac.SimConfig{
		Timing:   tm,
		MaxStage: p.MaxBackoffStage,
		CW:       []int{76, 76, 76, 76, 76},
		Duration: 10e6,
		Seed:     1,
		Gain:     1,
		Cost:     0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0.5 {
		t.Fatalf("throughput %g suspiciously low at the NE", res.Throughput)
	}
}

func TestFacadeChannelModel(t *testing.T) {
	p := selfishmac.DefaultPHY()
	model, err := selfishmac.NewChannelModel(p.MustTiming(selfishmac.RTSCTS), p.MaxBackoffStage)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.SolveUniform(48, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Tau[0] <= 0 || sol.Tau[0] >= 1 {
		t.Fatalf("tau = %g", sol.Tau[0])
	}
}

func TestFacadeMultihop(t *testing.T) {
	cfg := selfishmac.PaperTopology(1)
	cfg.N = 30
	nw, err := selfishmac.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := selfishmac.NewLocalCWSelector(selfishmac.DefaultConfig(2, selfishmac.RTSCTS))
	if err != nil {
		t.Fatal(err)
	}
	profile, err := selfishmac.LocalCWProfile(nw, sel)
	if err != nil {
		t.Fatal(err)
	}
	wm := selfishmac.ConvergedCW(profile)
	final, _, converged := selfishmac.TFTConverge(nw.AdjacencyLists(), profile, 1000)
	if !converged {
		t.Fatal("TFT did not converge")
	}
	if nw.Connected() {
		for _, w := range final {
			if w != wm {
				t.Fatalf("connected network converged to %v, want uniform %d", final, wm)
			}
		}
	}
	res, err := selfishmac.SimulateSpatial(nw, spatialCfg(wm, nw.N()))
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalPayoffRate() <= 0 {
		t.Fatalf("global payoff %g at the converged NE", res.GlobalPayoffRate())
	}
}

func spatialCfg(w, n int) selfishmac.SpatialSimConfig {
	cfg := selfishmac.DefaultSpatialSimConfig(2e6, 9)
	cfg.CW = make([]int, n)
	for i := range cfg.CW {
		cfg.CW[i] = w
	}
	return cfg
}

func TestFacadeSearch(t *testing.T) {
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(5, selfishmac.RTSCTS))
	if err != nil {
		t.Fatal(err)
	}
	ne, err := game.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	env, err := selfishmac.NewAnalyticSearchEnv(game, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := selfishmac.RunSearch(env, 0, 4, selfishmac.SearchOptions{WMax: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.W != ne.WStar {
		t.Fatalf("search found %d, NE is %d", res.W, ne.WStar)
	}
}

func TestVersion(t *testing.T) {
	if selfishmac.Version == "" {
		t.Fatal("empty version")
	}
}

func TestFacadeDetection(t *testing.T) {
	p := selfishmac.DefaultPHY()
	res, err := selfishmac.Simulate(selfishmac.SimConfig{
		Timing:   p.MustTiming(selfishmac.Basic),
		MaxStage: p.MaxBackoffStage,
		CW:       []int{40, 160, 160, 160},
		Duration: 60e6,
		Seed:     2,
		Gain:     1,
		Cost:     0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := selfishmac.ObservationsFromSim(res)
	ests, err := selfishmac.EstimateAllCWs(obs, p.MaxBackoffStage)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ests[0].CW-40) > 8 {
		t.Errorf("estimated cheater CW %.1f, want ~40", ests[0].CW)
	}
	det := selfishmac.MisbehaviorDetector{ExpectedCW: 160, Beta: 0.8}
	verdicts, err := det.Inspect(obs, p.MaxBackoffStage)
	if err != nil {
		t.Fatal(err)
	}
	if !verdicts[0].Misbehaving || verdicts[1].Misbehaving {
		t.Errorf("verdicts wrong: %+v", verdicts[:2])
	}
	if _, err := selfishmac.EstimateCW(0.05, 0.2, 6); err != nil {
		t.Errorf("EstimateCW: %v", err)
	}
	if slots, err := selfishmac.RequiredObservationSlots(0.01, 0.1); err != nil || slots <= 0 {
		t.Errorf("RequiredObservationSlots: %d, %v", slots, err)
	}
}

func TestFacadeRateControl(t *testing.T) {
	g, err := selfishmac.NewRateControlGame(selfishmac.DefaultRateControlConfig(10, 336, selfishmac.Basic))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if out.PriceOfAnarchy <= 1 {
		t.Errorf("PoA = %g, want > 1", out.PriceOfAnarchy)
	}
}

func TestFacadeRandSource(t *testing.T) {
	r := selfishmac.NewRandSource(42)
	v := r.UniformRange(0, 1)
	if v < 0 || v >= 1 {
		t.Fatalf("UniformRange out of bounds: %g", v)
	}
}

func TestFacadeMultihopEngine(t *testing.T) {
	cfg := selfishmac.PaperTopology(3)
	cfg.N = 12
	cfg.Width, cfg.Height = 400, 400
	nw, err := selfishmac.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	strats := make([]selfishmac.Strategy, nw.N())
	for i := range strats {
		strats[i] = selfishmac.TFT{Initial: 20 + 3*i}
	}
	eng, err := selfishmac.NewMultihopEngine(nw, strats, selfishmac.DefaultSpatialSimConfig(1e6, 4))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.WithStopWindow(2).Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Connected() && tr.ConvergedCW != 20 {
		t.Errorf("converged to %d, want the minimum initial 20", tr.ConvergedCW)
	}
}

func TestFacadeStrategiesExtra(t *testing.T) {
	grim := selfishmac.GrimTrigger{Initial: 100, PunishCW: 2}
	if w := grim.ChooseCW(0, [][]int{{100, 30}}, nil); w != 2 {
		t.Errorf("grim did not punish: %d", w)
	}
	dev := selfishmac.Deviant{Deviation: 5, Base: 50, Stages: 1}
	if w := dev.ChooseCW(0, nil, nil); w != 5 {
		t.Errorf("deviant first stage: %d", w)
	}
}

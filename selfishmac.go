// Package selfishmac is a from-scratch Go implementation of the
// game-theoretic model of selfish IEEE 802.11 DCF behavior from
//
//	Lin Chen, Jean Leneutre. "Selfishness, Not Always A Nightmare:
//	Modeling Selfish MAC Behaviors in Wireless Mobile Ad Hoc Networks."
//	ICDCS 2007.
//
// The package answers the paper's question — how does 802.11 DCF fare
// when every node selfishly tunes its contention window? — with the
// paper's machinery, all implemented here on the standard library alone:
//
//   - an extended Bianchi Markov-chain model supporting heterogeneous
//     per-node contention windows (Section III),
//   - the repeated non-cooperative MAC game with TIT-FOR-TAT players, its
//     Nash-equilibrium set [Wc0, Wc*], and the refinement that isolates
//     the unique efficient NE (Sections IV–V),
//   - the distributed search protocol for Wc* (Section V.C) and the
//     short-sighted / malicious deviation analyses (Sections V.D–V.E),
//   - discrete-event single-hop and slot-synchronous spatial multi-hop
//     DCF simulators standing in for the paper's NS-2 runs,
//   - the multi-hop game on mobile unit-disk networks, where TFT
//     converges to a quasi-optimal NE (Section VI).
//
// # Quick start
//
//	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(20, selfishmac.RTSCTS))
//	if err != nil { ... }
//	ne, err := game.FindPaperNE() // the paper's Table III value for n=20
//	fmt.Println(ne.WStar)         // ≈ 48
//
// The cmd/experiments binary regenerates every table and figure of the
// paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for measured-vs-paper numbers.
package selfishmac

import (
	"selfishmac/internal/bianchi"
	"selfishmac/internal/core"
	"selfishmac/internal/detect"
	"selfishmac/internal/faults"
	"selfishmac/internal/macsim"
	"selfishmac/internal/multihop"
	"selfishmac/internal/phy"
	"selfishmac/internal/ratecontrol"
	"selfishmac/internal/rng"
	"selfishmac/internal/search"
	"selfishmac/internal/stream"
	"selfishmac/internal/topology"
)

// RandSource is the deterministic PRNG handed to observation-noise
// callbacks (see ObservationNoise).
type RandSource = rng.Source

// NewRandSource returns a seeded deterministic random source.
func NewRandSource(seed uint64) *RandSource { return rng.New(seed) }

// Version identifies the library release.
const Version = "1.0.0"

// Channel / PHY layer (Table I parameterisation).
type (
	// AccessMode selects basic or RTS/CTS DCF access.
	AccessMode = phy.AccessMode
	// PHYParams is the 802.11 parameter set (frame sizes, rates, IFSs).
	PHYParams = phy.Params
	// Timing bundles the derived slot-level durations Ts/Tc/sigma.
	Timing = phy.Timing
)

// Access-mode constants.
const (
	// Basic is the two-way DATA/ACK exchange.
	Basic = phy.Basic
	// RTSCTS is the four-way RTS/CTS/DATA/ACK exchange.
	RTSCTS = phy.RTSCTS
)

// DefaultPHY returns the paper's Table I parameter set.
func DefaultPHY() PHYParams { return phy.Default() }

// Markov-chain channel model (Section III).
type (
	// ChannelModel is the extended Bianchi model with per-node CWs.
	ChannelModel = bianchi.Model
	// ChannelSolution is a solved operating point (tau, p, Tslot, S).
	ChannelSolution = bianchi.Solution
	// SlotStats is the per-slot channel decomposition.
	SlotStats = bianchi.SlotStats
)

// NewChannelModel builds the extended Bianchi model for the given timing
// and maximum backoff stage.
func NewChannelModel(tm Timing, maxStage int) (*ChannelModel, error) {
	return bianchi.New(tm, maxStage)
}

// Game layer (Sections IV–V).
type (
	// GameConfig parameterises the repeated MAC game.
	GameConfig = core.Config
	// Game is the non-cooperative MAC game G.
	Game = core.Game
	// NE describes the equilibrium set and the efficient NE.
	NE = core.NE
	// Refinement is the Section V.B NE-refinement outcome.
	Refinement = core.Refinement
	// Strategy decides a player's CW per stage.
	Strategy = core.Strategy
	// TFT is the paper's TIT-FOR-TAT strategy.
	TFT = core.TFT
	// GTFT is Generous TIT-FOR-TAT with averaging window and tolerance.
	GTFT = core.GTFT
	// Constant pins a CW (the malicious player of Section V.E).
	Constant = core.Constant
	// GrimTrigger punishes forever after any observed undercut.
	GrimTrigger = core.GrimTrigger
	// Deviant deviates for a fixed number of stages, then conforms.
	Deviant = core.Deviant
	// BestResponse replays the myopic best response each stage.
	BestResponse = core.BestResponse
	// Engine runs the repeated game.
	Engine = core.Engine
	// EngineOption configures an Engine.
	EngineOption = core.EngineOption
	// Trace is a repeated-game run record.
	Trace = core.Trace
	// StageRecord is one stage of a Trace.
	StageRecord = core.StageRecord
	// DeviationOutcome is the Lemma 4 payoff triple.
	DeviationOutcome = core.DeviationOutcome
	// ShortSightedResult is the Section V.D deviation analysis.
	ShortSightedResult = core.ShortSightedResult
	// MaliciousResult is the Section V.E attack analysis.
	MaliciousResult = core.MaliciousResult
	// ObservationNoise perturbs cross-player CW observations.
	ObservationNoise = core.ObservationNoise
)

// DefaultConfig returns the paper's Table I game configuration for n
// players under the given access mode.
func DefaultConfig(n int, mode AccessMode) GameConfig { return core.DefaultConfig(n, mode) }

// NewGame validates cfg and constructs the game.
func NewGame(cfg GameConfig) (*Game, error) { return core.NewGame(cfg) }

// NewEngine builds a repeated-game engine with one strategy per player.
func NewEngine(g *Game, strategies []Strategy, opts ...EngineOption) (*Engine, error) {
	return core.NewEngine(g, strategies, opts...)
}

// WithNoise installs an observation-noise model on an Engine.
func WithNoise(n ObservationNoise) EngineOption { return core.WithNoise(n) }

// WithSeed seeds an Engine's randomness.
func WithSeed(seed uint64) EngineOption { return core.WithSeed(seed) }

// WithStopOnConvergence stops a run once the profile has been uniform for
// window stages.
func WithStopOnConvergence(window int) EngineOption { return core.WithStopOnConvergence(window) }

// Single-hop simulator (the NS-2 stand-in).
type (
	// SimConfig parameterises a single-collision-domain simulation.
	SimConfig = macsim.Config
	// SimResult is its outcome.
	SimResult = macsim.Result
	// SimNodeStats is one node's measured statistics.
	SimNodeStats = macsim.NodeStats
)

// Simulate runs the event-driven saturated single-hop DCF simulator.
func Simulate(cfg SimConfig) (*SimResult, error) { return macsim.Run(cfg) }

// Topology and multi-hop game (Section VI).
type (
	// TopologyConfig parameterises node placement and mobility.
	TopologyConfig = topology.Config
	// Network is a (possibly mobile) unit-disk network.
	Network = topology.Network
	// Point is a planar position in meters.
	Point = topology.Point
	// SpatialSimConfig parameterises the multi-hop spatial simulator.
	SpatialSimConfig = multihop.SimConfig
	// SpatialSimResult is its outcome (incl. hidden-terminal losses).
	SpatialSimResult = multihop.SimResult
	// LocalCWSelector caches per-neighborhood efficient-NE CWs.
	LocalCWSelector = multihop.LocalCWSelector
	// QuasiOptConfig parameterises the Section VII.B measurement.
	QuasiOptConfig = multihop.QuasiOptConfig
	// QuasiOptResult reports how close the converged NE is to optimal.
	QuasiOptResult = multihop.QuasiOptResult
	// SpatialTopology is the read view of a network the spatial simulator
	// and the multi-hop engine accept (implemented by *Network).
	SpatialTopology = multihop.Topology
	// MultihopEngine plays the multi-hop repeated game dynamically.
	MultihopEngine = multihop.Engine
	// MultihopTrace is a multi-hop repeated-game run record.
	MultihopTrace = multihop.Trace
)

// NewMultihopEngine builds a stage-based multi-hop game engine: one
// strategy per node, payoffs measured by the spatial simulator, local
// (neighborhood) CW observations.
func NewMultihopEngine(nw SpatialTopology, strategies []Strategy, stage SpatialSimConfig) (*MultihopEngine, error) {
	return multihop.NewEngine(nw, strategies, stage)
}

// PaperTopology returns the paper's Section VII.B scenario (100 nodes,
// 1000 m x 1000 m, 250 m range, random waypoint up to 5 m/s).
func PaperTopology(seed uint64) TopologyConfig { return topology.PaperConfig(seed) }

// NewNetwork places and initialises a network.
func NewNetwork(cfg TopologyConfig) (*Network, error) { return topology.New(cfg) }

// SimulateSpatial runs the slot-synchronous multi-hop DCF simulator over
// the network's current topology.
func SimulateSpatial(nw *Network, cfg SpatialSimConfig) (*SpatialSimResult, error) {
	return multihop.Simulate(nw, cfg)
}

// NewLocalCWSelector builds the multi-hop local-game CW selector from a
// base game configuration (its N field is overridden per neighborhood).
func NewLocalCWSelector(base GameConfig) (*LocalCWSelector, error) {
	return multihop.NewLocalCWSelector(base)
}

// LocalCWProfile returns every node's local efficient-NE CW.
func LocalCWProfile(nw *Network, sel *LocalCWSelector) ([]int, error) {
	return multihop.LocalCWProfile(nw, sel)
}

// ConvergedCW returns Wm = min of a CW profile (Theorem 3).
func ConvergedCW(profile []int) int { return multihop.ConvergedCW(profile) }

// TFTConverge iterates local TFT on a neighbor graph until fixed point.
func TFTConverge(adj [][]int, w0 []int, maxStages int) ([]int, int, bool) {
	return multihop.TFTConverge(adj, w0, maxStages)
}

// MeasureQuasiOptimality runs the Section VII.B experiment.
func MeasureQuasiOptimality(nw *Network, cfg QuasiOptConfig) (*QuasiOptResult, error) {
	return multihop.MeasureQuasiOptimality(nw, cfg)
}

// DefaultSpatialSimConfig returns paper-flavored spatial settings
// (RTS/CTS, Table I utility parameters).
func DefaultSpatialSimConfig(duration float64, seed uint64) SpatialSimConfig {
	return multihop.DefaultSimConfig(duration, seed)
}

// Distributed NE search (Section V.C).
type (
	// SearchEnv is the world the search protocol runs against.
	SearchEnv = search.Env
	// SearchOptions tunes the search.
	SearchOptions = search.Options
	// SearchResult is the search outcome.
	SearchResult = search.Result
	// AnalyticSearchEnv measures payoffs exactly.
	AnalyticSearchEnv = search.AnalyticEnv
	// LossySearchEnv adds broadcast message loss.
	LossySearchEnv = search.LossyEnv
	// SimSearchEnv measures payoffs with the MAC simulator.
	SimSearchEnv = search.SimEnv
)

// NewAnalyticSearchEnv builds an exact-payoff search environment.
func NewAnalyticSearchEnv(g *Game, leader, w0 int) (*AnalyticSearchEnv, error) {
	return search.NewAnalyticEnv(g, leader, w0)
}

// NewLossySearchEnv wraps env with per-node broadcast loss.
func NewLossySearchEnv(env *AnalyticSearchEnv, dropProb float64, seed uint64) (*LossySearchEnv, error) {
	return search.NewLossyEnv(env, dropProb, seed)
}

// NewSimSearchEnv builds a simulator-measured search environment.
func NewSimSearchEnv(cfg SimConfig, leader int) (*SimSearchEnv, error) {
	return search.NewSimEnv(cfg, leader)
}

// RunSearch executes the paper's Section V.C unit-step search.
func RunSearch(env SearchEnv, leader, w0 int, opts SearchOptions) (SearchResult, error) {
	return search.Run(env, leader, w0, opts)
}

// RunAcceleratedSearch executes the O(log W*) variant.
func RunAcceleratedSearch(env SearchEnv, leader, w0 int, opts SearchOptions) (SearchResult, error) {
	return search.AcceleratedSearch(env, leader, w0, opts)
}

// Fault injection and resilient search (deployment robustness).
type (
	// FaultConfig selects which protocol faults a FaultyEnv injects:
	// broadcast drop, duplication, delay/reordering, payoff outliers,
	// transient measurement failures, and crash-stop of followers or the
	// leader. The zero value injects nothing.
	FaultConfig = faults.Config
	// FaultStats counts every injected fault.
	FaultStats = faults.Stats
	// FaultyEnv wraps any SearchEnv with deterministic, seed-replayable
	// fault injection.
	FaultyEnv = faults.FaultyEnv
	// SearchDelivery is one lossy broadcast's per-follower outcome.
	SearchDelivery = search.Delivery
	// MultihopChurnConfig models node churn during a multi-hop run
	// (MultihopEngine.WithChurn).
	MultihopChurnConfig = multihop.ChurnConfig
)

// NewFaultyEnv wraps inner with the configured fault injection. Every
// fault stream is derived from cfg.Seed, so a scenario replays
// byte-identically from its seed alone.
func NewFaultyEnv(inner SearchEnv, cfg FaultConfig) (*FaultyEnv, error) {
	return faults.New(inner, cfg)
}

// RunResilientSearch executes the Section V.C walk hardened for
// deployment: retry with bounded backoff, median-of-k measurement,
// Ready re-broadcast on missed acknowledgement, deputy failover after a
// leader crash, and best-so-far degradation on an exhausted probe budget
// (SearchResult.Degraded).
func RunResilientSearch(env SearchEnv, leader, w0 int, opts SearchOptions) (SearchResult, error) {
	return search.ResilientRun(env, leader, w0, opts)
}

// RunResilientAcceleratedSearch is the accelerated walk with the same
// hardening as RunResilientSearch.
func RunResilientAcceleratedSearch(env SearchEnv, leader, w0 int, opts SearchOptions) (SearchResult, error) {
	return search.ResilientAcceleratedSearch(env, leader, w0, opts)
}

// CW observation and misbehavior detection (the paper's ref [3]
// assumption, implemented).
type (
	// CWObservation is one peer's promiscuous-mode attempt count.
	CWObservation = detect.Observation
	// CWEstimate is a recovered per-peer operating point.
	CWEstimate = detect.Estimate
	// MisbehaviorDetector flags peers undercutting the expected CW.
	MisbehaviorDetector = detect.Detector
	// MisbehaviorVerdict is the per-peer detection outcome.
	MisbehaviorVerdict = detect.Verdict
)

// EstimateCW inverts the channel model: from a peer's observed
// transmission probability and the collision probability it faces,
// recover the CW it must be operating on.
func EstimateCW(tau, p float64, maxStage int) (float64, error) {
	return detect.EstimateCW(tau, p, maxStage)
}

// EstimateAllCWs recovers every peer's CW from a full observation vector.
func EstimateAllCWs(obs []CWObservation, maxStage int) ([]CWEstimate, error) {
	return detect.EstimateAll(obs, maxStage)
}

// ObservationsFromSim converts a simulator run into the observation
// vector a promiscuous node would have collected.
func ObservationsFromSim(res *SimResult) []CWObservation {
	return detect.FromSimResult(res)
}

// RequiredObservationSlots estimates the window (in virtual slots) needed
// to estimate a peer's CW within relErr at ~95% confidence.
func RequiredObservationSlots(tau, relErr float64) (int64, error) {
	return detect.RequiredSlots(tau, relErr)
}

// Streaming detection: the batch estimator folded over the live engine
// event stream (internal/stream). A StreamMonitor attaches to either
// simulator through the Observer hook (SimConfig.Observer or
// SpatialSimConfig.Observer) and flags misbehaving peers while the run
// is still in flight, with first-detection-latency accounting.
type (
	// StreamMonitorConfig parameterises an online detection monitor.
	StreamMonitorConfig = stream.Config
	// StreamMonitor is the online detector; it satisfies both engines'
	// Observer interfaces. Attach one monitor per engine.
	StreamMonitor = stream.Monitor
	// StreamFlagEvent is one online misbehavior flag (delivered to
	// StreamMonitorConfig.OnFlag as it happens).
	StreamFlagEvent = stream.FlagEvent
	// StreamWindowEstimate is one per-node, per-window estimation
	// outcome (delivered to StreamMonitorConfig.OnEstimate).
	StreamWindowEstimate = stream.WindowEstimate
)

// NewStreamMonitor builds an online detector. Set it as the simulation
// config's Observer, run the engine, then call Finish(res.Slots) to
// close the trailing partial window before reading flag state.
func NewStreamMonitor(cfg StreamMonitorConfig) (*StreamMonitor, error) {
	return stream.NewMonitor(cfg)
}

// Rate-control extension (the paper's suggested generalization).
type (
	// RateControlConfig parameterises the packet-size game.
	RateControlConfig = ratecontrol.Config
	// RateControlGame is the packet-size game at a solved channel point.
	RateControlGame = ratecontrol.Game
	// RateControlOutcome summarizes its commons analysis.
	RateControlOutcome = ratecontrol.Outcome
)

// DefaultRateControlConfig returns a paper-scaled packet-size game for n
// nodes at contention window w.
func DefaultRateControlConfig(n, w int, mode AccessMode) RateControlConfig {
	return ratecontrol.DefaultConfig(n, w, mode)
}

// NewRateControlGame validates cfg and solves the channel operating point.
func NewRateControlGame(cfg RateControlConfig) (*RateControlGame, error) {
	return ratecontrol.NewGame(cfg)
}

package selfishmac_test

// Runnable documentation examples (go test executes these and checks the
// Output comments; godoc renders them on the package page).

import (
	"fmt"

	"selfishmac"
)

// The quick-start: compute the efficient NE of the paper's Table III
// 20-player RTS/CTS game.
func ExampleNewGame() {
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(20, selfishmac.RTSCTS))
	if err != nil {
		fmt.Println(err)
		return
	}
	ne, err := game.FindPaperNE()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("Wc* = %d\n", ne.WStar)
	// Output: Wc* = 47
}

// TFT players converge to the minimum initial contention window in one
// stage and stay there.
func ExampleTFT() {
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(3, selfishmac.Basic))
	if err != nil {
		fmt.Println(err)
		return
	}
	eng, err := selfishmac.NewEngine(game, []selfishmac.Strategy{
		selfishmac.TFT{Initial: 300},
		selfishmac.TFT{Initial: 120},
		selfishmac.TFT{Initial: 200},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	trace, err := eng.Run(3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(trace.Stages[0].Profile)
	fmt.Println(trace.Stages[1].Profile)
	fmt.Println("converged at stage", trace.ConvergedAt, "to CW", trace.ConvergedCW)
	// Output:
	// [300 120 200]
	// [120 120 120]
	// converged at stage 1 to CW 120
}

// The channel model solves the coupled (tau, p) fixed point of the
// paper's eqs. (2)-(3) for any contention-window profile.
func ExampleChannelModel() {
	p := selfishmac.DefaultPHY()
	model, err := selfishmac.NewChannelModel(p.MustTiming(selfishmac.Basic), p.MaxBackoffStage)
	if err != nil {
		fmt.Println(err)
		return
	}
	sol, err := model.SolveUniform(76, 5) // the paper's Table II point
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("tau = %.4f, p = %.4f, throughput = %.3f\n", sol.Tau[0], sol.P[0], sol.Throughput)
	// Output: tau = 0.0234, p = 0.0904, throughput = 0.833
}

// EstimateCW inverts the channel model: the observability TFT relies on.
func ExampleEstimateCW() {
	p := selfishmac.DefaultPHY()
	model, err := selfishmac.NewChannelModel(p.MustTiming(selfishmac.Basic), p.MaxBackoffStage)
	if err != nil {
		fmt.Println(err)
		return
	}
	sol, err := model.SolveUniform(336, 20)
	if err != nil {
		fmt.Println(err)
		return
	}
	// A promiscuous observer measuring this tau and p recovers the CW.
	w, err := selfishmac.EstimateCW(sol.Tau[0], sol.P[0], p.MaxBackoffStage)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("estimated CW = %.0f\n", w)
	// Output: estimated CW = 336
}

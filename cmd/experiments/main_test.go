package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunListsExperiments(t *testing.T) {
	if err := run(context.Background(), []string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	// T1 is pure configuration; A4 exercises randomized checks; both are
	// fast even at the quick profile.
	if err := run(context.Background(), []string{"-quick", "-out", dir, "-only", "T1,A4"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"t1.txt", "a4.txt"} {
		body, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
		if len(body) == 0 {
			t.Fatalf("artifact %s is empty", name)
		}
	}
	t1, _ := os.ReadFile(filepath.Join(dir, "t1.txt"))
	if !strings.Contains(string(t1), "8184 bits") {
		t.Errorf("t1.txt missing Table I content")
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run(context.Background(), []string{"-quick", "-out", dir, "-only", "T1", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("missing profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunOnlyFilterSkipsOthers(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"-quick", "-out", dir, "-only", "T1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a4.txt")); !os.IsNotExist(err) {
		t.Error("filter did not skip A4")
	}
}

// TestJobsByteIdentical is the determinism contract of the -jobs flag:
// the artifact files a parallel run writes must be byte-identical to the
// serial run's. T1 is static, A4 draws from derived RNG streams, and F2
// exercises the figure pipeline's worker fan-out.
func TestJobsByteIdentical(t *testing.T) {
	serial := t.TempDir()
	parallel := t.TempDir()
	if err := run(context.Background(), []string{"-quick", "-jobs", "1", "-out", serial, "-only", "T1,A4,F2"}); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if err := run(context.Background(), []string{"-quick", "-jobs", "4", "-out", parallel, "-only", "T1,A4,F2"}); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	names, err := os.ReadDir(serial)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("serial run wrote no artifacts")
	}
	for _, e := range names {
		want, err := os.ReadFile(filepath.Join(serial, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(parallel, e.Name()))
		if err != nil {
			t.Fatalf("parallel run missing %s: %v", e.Name(), err)
		}
		if string(got) != string(want) {
			t.Errorf("%s differs between -jobs 1 and -jobs 4", e.Name())
		}
	}
}

func TestRunCreatesOutputDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "results")
	if err := run(context.Background(), []string{"-quick", "-out", dir, "-only", "T1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "t1.txt")); err != nil {
		t.Fatalf("nested output dir not created: %v", err)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunListsExperiments(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	// T1 is pure configuration; A4 exercises randomized checks; both are
	// fast even at the quick profile.
	if err := run([]string{"-quick", "-out", dir, "-only", "T1,A4"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"t1.txt", "a4.txt"} {
		body, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
		if len(body) == 0 {
			t.Fatalf("artifact %s is empty", name)
		}
	}
	t1, _ := os.ReadFile(filepath.Join(dir, "t1.txt"))
	if !strings.Contains(string(t1), "8184 bits") {
		t.Errorf("t1.txt missing Table I content")
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunOnlyFilterSkipsOthers(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-out", dir, "-only", "T1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a4.txt")); !os.IsNotExist(err) {
		t.Error("filter did not skip A4")
	}
}

func TestRunCreatesOutputDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "results")
	if err := run([]string{"-quick", "-out", dir, "-only", "T1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "t1.txt")); err != nil {
		t.Fatalf("nested output dir not created: %v", err)
	}
}

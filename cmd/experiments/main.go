// Command experiments regenerates every table and figure of the paper's
// evaluation and writes the artifacts under an output directory.
//
// Usage:
//
//	experiments [-quick] [-out results] [-only T2,F3] [-seed 1]
//
// With no flags it runs the full paper-faithful profile (1000-second
// single-hop simulations, the 100-node mobile scenario); -quick switches
// to a fast smoke profile. Each experiment writes <id>.txt with its
// rendered tables/charts and metric summary, plus any CSV artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"selfishmac/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use the fast smoke profile instead of the paper-faithful one")
	out := fs.String("out", "results", "output directory")
	only := fs.String("only", "", "comma-separated experiment IDs to run (default: all)")
	seed := fs.Uint64("seed", 1, "master random seed")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	all := experiments.All()
	if *list {
		for _, r := range all {
			fmt.Printf("%-3s %s\n", r.ID, r.Name)
		}
		return nil
	}

	settings := experiments.DefaultSettings()
	if *quick {
		settings = experiments.QuickSettings()
	}
	settings.Seed = *seed

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	var failures int
	for _, r := range all {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		fmt.Printf("=== %s: %s\n", r.ID, r.Name)
		rep, err := r.Run(settings)
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", r.ID, err)
			continue
		}
		fmt.Print(rep.Text)
		if len(rep.Metrics) > 0 {
			fmt.Println(rep.MetricsSummary())
		}
		fmt.Printf("(%s in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))

		body := rep.Text + "\n" + rep.MetricsSummary()
		if err := os.WriteFile(filepath.Join(*out, strings.ToLower(r.ID)+".txt"), []byte(body), 0o644); err != nil {
			return err
		}
		for _, a := range rep.Artifacts {
			if err := os.WriteFile(filepath.Join(*out, a.Name), []byte(a.Content), 0o644); err != nil {
				return err
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	return nil
}

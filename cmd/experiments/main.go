// Command experiments regenerates every table and figure of the paper's
// evaluation and writes the artifacts under an output directory.
//
// Usage:
//
//	experiments [-quick] [-out results] [-only T2,F3] [-seed 1] [-jobs 4]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With no flags it runs the full paper-faithful profile (1000-second
// single-hop simulations, the 100-node mobile scenario); -quick switches
// to a fast smoke profile. Each experiment writes <id>.txt with its
// rendered tables/charts and metric summary, plus any CSV artifacts.
//
// -jobs bounds the concurrency at both levels: how many experiment
// runners execute at once and how many workers each runner fans its
// sweep points over (0 means GOMAXPROCS). Every random draw comes from a
// seed derived per (experiment, stream, index), so the reports and
// artifacts are byte-identical at every -jobs value; only the wall-clock
// changes. Reports are printed and written in registry order regardless
// of completion order.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"selfishmac/internal/experiments"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// First SIGINT/SIGTERM cancels the run: in-flight experiments return
	// at their next sweep point or replication round boundary and the
	// completed reports are still printed and written. A second signal
	// hard-exits.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "experiments: interrupt — finishing cleanly (interrupt again to force exit)")
		cancel()
		<-sigs
		fmt.Fprintln(os.Stderr, "experiments: second interrupt — exiting now")
		os.Exit(130)
	}()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type runnerResult struct {
	rep     *experiments.Report
	err     error
	elapsed time.Duration
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use the fast smoke profile instead of the paper-faithful one")
	out := fs.String("out", "results", "output directory")
	only := fs.String("only", "", "comma-separated experiment IDs to run (default: all)")
	seed := fs.Uint64("seed", 1, "master random seed")
	jobs := fs.Int("jobs", 0, "max concurrent experiment runners and per-runner sweep workers (0 = GOMAXPROCS)")
	list := fs.Bool("list", false, "list experiments and exit")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file when the run completes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	all := experiments.All()
	if *list {
		for _, r := range all {
			fmt.Printf("%-3s %s\n", r.ID, r.Name)
		}
		return nil
	}

	settings := experiments.DefaultSettings()
	if *quick {
		settings = experiments.QuickSettings()
	}
	settings.Seed = *seed
	settings.Workers = *jobs

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	selected := all[:0:0]
	for _, r := range all {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		selected = append(selected, r)
	}

	// Run the selected experiments over a bounded pool; each result lands
	// in its registry slot so reporting below is order-deterministic no
	// matter which runner finishes first.
	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(selected) {
		workers = len(selected)
	}
	results := make([]runnerResult, len(selected))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				start := time.Now()
				rep, err := selected[i].Run(ctx, settings)
				results[i] = runnerResult{rep: rep, err: err, elapsed: time.Since(start)}
			}
		}()
	}
feed:
	for i := range selected {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	var failures, cancelled int
	for i, r := range selected {
		res := results[i]
		if res.rep == nil && res.err == nil {
			cancelled++ // never started: the intake loop stopped first
			continue
		}
		fmt.Printf("=== %s: %s\n", r.ID, r.Name)
		if errors.Is(res.err, context.Canceled) {
			cancelled++
			fmt.Printf("(%s cancelled after %v)\n\n", r.ID, res.elapsed.Round(time.Millisecond))
			continue
		}
		if res.err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", r.ID, res.err)
			continue
		}
		rep := res.rep
		fmt.Print(rep.Text)
		if len(rep.Metrics) > 0 {
			fmt.Println(rep.MetricsSummary())
		}
		fmt.Printf("(%s in %v)\n\n", r.ID, res.elapsed.Round(time.Millisecond))

		body := rep.Text + "\n" + rep.MetricsSummary()
		if err := os.WriteFile(filepath.Join(*out, strings.ToLower(r.ID)+".txt"), []byte(body), 0o644); err != nil {
			return err
		}
		for _, a := range rep.Artifacts {
			if err := os.WriteFile(filepath.Join(*out, a.Name), []byte(a.Content), 0o644); err != nil {
				return err
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	if cancelled > 0 {
		return fmt.Errorf("interrupted: %d experiment(s) cancelled, %d completed", cancelled, len(selected)-cancelled)
	}
	return nil
}

package main

import (
	"strings"
	"testing"

	"selfishmac"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in      string
		want    selfishmac.AccessMode
		wantErr bool
	}{
		{"basic", selfishmac.Basic, false},
		{"BASIC", selfishmac.Basic, false},
		{"rtscts", selfishmac.RTSCTS, false},
		{"rts/cts", selfishmac.RTSCTS, false},
		{"rts-cts", selfishmac.RTSCTS, false},
		{"dcf", 0, true},
		{"", 0, true},
	}
	for _, tc := range cases {
		got, err := parseMode(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseMode(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && got != tc.want {
			t.Errorf("parseMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(3, selfishmac.Basic))
	if err != nil {
		t.Fatal(err)
	}
	good := []struct {
		spec string
		name string // substring expected in Strategy.Name()
	}{
		{"tft:100", "tft"},
		{"gtft:100:3:0.9", "gtft"},
		{"constant:8", "constant"},
		{"best", "best-response"},
	}
	for _, tc := range good {
		s, err := parseStrategy(game, tc.spec)
		if err != nil {
			t.Errorf("parseStrategy(%q): %v", tc.spec, err)
			continue
		}
		if !strings.Contains(s.Name(), tc.name) {
			t.Errorf("parseStrategy(%q) = %q, want %q inside", tc.spec, s.Name(), tc.name)
		}
	}
	bad := []string{
		"tft",            // missing W0
		"tft:x",          // non-numeric
		"gtft:100:3",     // missing beta
		"gtft:100:x:0.9", // non-numeric r0
		"gtft:100:3:y",   // non-numeric beta
		"constant",       // missing W
		"unknown:5",      // unknown kind
	}
	for _, spec := range bad {
		if _, err := parseStrategy(game, spec); err == nil {
			t.Errorf("parseStrategy(%q) accepted", spec)
		}
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run(nil); err == nil {
		t.Fatal("empty args accepted")
	}
}

func TestRunHelp(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("help failed: %v", err)
	}
}

func TestSubcommandFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"ne", "-mode", "nonsense"},
		{"sweep", "-mode", "nonsense"},
		{"simulate", "-cw", "1,x"},
		{"game", "-strategies", "bogus:1"},
		{"search", "-mode", "nonsense"},
		{"observe", "-mode", "nonsense"},
		{"packets", "-mode", "nonsense"},
		{"observe", "-cheat", "5", "-cheater", "99"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestBar(t *testing.T) {
	if bar(-1, 1) != "" {
		t.Error("negative value produced a bar")
	}
	if got := bar(0.5, 0.05); len(got) == 0 {
		t.Error("positive value produced empty bar")
	}
	if got := bar(1000, 0.01); len(got) > 60 {
		t.Errorf("bar not capped: %d chars", len(got))
	}
}

// Command macgame is the interactive CLI for the selfishmac library. It
// exposes the paper's machinery as subcommands:
//
//	macgame ne       -n 20 -mode rtscts          # efficient NE of the MAC game
//	macgame sweep    -n 20 -mode basic           # payoff vs CW curve (Figures 2-3)
//	macgame simulate -n 5 -w 76 -duration 100    # event-driven DCF simulation
//	macgame game     -strategies tft:300,tft:150,constant:8 -stages 10
//	macgame multihop -nodes 100 -duration 20     # Section VII.B scenario
//	macgame search   -n 10 -w0 8 -accel          # Section V.C NE search
//
// Durations are in seconds of simulated time. All randomness is seeded
// (-seed) and runs are reproducible.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"selfishmac"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "macgame:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return errors.New("missing subcommand")
	}
	switch args[0] {
	case "ne":
		return cmdNE(args[1:])
	case "sweep":
		return cmdSweep(args[1:])
	case "simulate":
		return cmdSimulate(args[1:])
	case "game":
		return cmdGame(args[1:])
	case "multihop":
		return cmdMultihop(args[1:])
	case "search":
		return cmdSearch(args[1:])
	case "observe":
		return cmdObserve(args[1:])
	case "packets":
		return cmdPackets(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: macgame <subcommand> [flags]

subcommands:
  ne        compute the Nash equilibria of the single-hop MAC game
  sweep     print the global payoff U/C as a function of the common CW
  simulate  run the event-driven single-hop DCF simulator
  game      run the repeated game with per-player strategies
  multihop  run the Section VII.B multi-hop scenario
  search    run the Section V.C distributed NE search
  observe   estimate peers' CWs from a simulated run and flag cheaters
  packets   analyze the packet-size (rate-control) extension game

run "macgame <subcommand> -h" for flags`)
}

func parseMode(s string) (selfishmac.AccessMode, error) {
	switch strings.ToLower(s) {
	case "basic":
		return selfishmac.Basic, nil
	case "rtscts", "rts/cts", "rts-cts":
		return selfishmac.RTSCTS, nil
	default:
		return 0, fmt.Errorf("unknown access mode %q (want basic or rtscts)", s)
	}
}

func cmdNE(args []string) error {
	fs := flag.NewFlagSet("ne", flag.ContinueOnError)
	n := fs.Int("n", 20, "number of nodes")
	mode := fs.String("mode", "basic", "access mode: basic or rtscts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(*n, m))
	if err != nil {
		return err
	}
	paper, err := game.FindPaperNE()
	if err != nil {
		return err
	}
	exact, err := game.FindEfficientNE()
	if err != nil {
		return err
	}
	ref, err := game.Refine(exact)
	if err != nil {
		return err
	}
	fmt.Printf("game: n=%d mode=%s\n", *n, m)
	fmt.Printf("efficient NE (paper's e<<g condition): Wc* = %d  (tau* = %.5f, throughput = %.4f)\n",
		paper.WStar, paper.TauStar, paper.ThroughputStar)
	fmt.Printf("efficient NE (exact utility):          Wc* = %d  (per-node utility rate %.4g /us)\n",
		exact.WStar, exact.UStar)
	fmt.Printf("NE set [Wc0, Wc*] = [%d, %d]  (%d equilibria)\n", exact.W0, exact.WStar, exact.Count)
	fmt.Printf("refinement: fair=%v, welfare maximizer=%d, Pareto-optimal=%v -> efficient NE %d\n",
		ref.Fair, ref.SocialWelfareMaximizer, ref.ParetoOptimal, ref.Efficient)
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	n := fs.Int("n", 20, "number of nodes")
	mode := fs.String("mode", "basic", "access mode: basic or rtscts")
	wmax := fs.Int("wmax", 0, "largest CW to evaluate (default 8x the NE)")
	points := fs.Int("points", 40, "number of CW values (log-spaced)")
	csv := fs.Bool("csv", false, "emit CSV instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(*n, m))
	if err != nil {
		return err
	}
	ne, err := game.FindPaperNE()
	if err != nil {
		return err
	}
	top := *wmax
	if top <= 0 {
		top = ne.WStar * 8
	}
	if *csv {
		fmt.Println("w,uc")
	} else {
		fmt.Printf("global payoff U/C vs common CW (n=%d, %s, Wc*=%d)\n", *n, m, ne.WStar)
	}
	seen := map[int]bool{}
	for i := 0; i < *points; i++ {
		f := float64(i) / float64(*points-1)
		w := int(math.Round(math.Pow(float64(top), f)))
		if w < 1 || seen[w] {
			continue
		}
		seen[w] = true
		u, err := game.NormalizedGlobalPayoff(w)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Printf("%d,%g\n", w, u)
		} else {
			fmt.Printf("W=%5d  U/C=%.5f %s\n", w, u, bar(u, 0.06))
		}
	}
	return nil
}

func bar(v, scale float64) string {
	if v < 0 {
		return ""
	}
	nStars := int(v / scale * 40)
	if nStars > 60 {
		nStars = 60
	}
	return strings.Repeat("*", nStars)
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	n := fs.Int("n", 5, "number of nodes")
	w := fs.Int("w", 76, "common contention window")
	cwList := fs.String("cw", "", "comma-separated per-node CWs (overrides -n/-w)")
	mode := fs.String("mode", "basic", "access mode: basic or rtscts")
	duration := fs.Float64("duration", 100, "simulated seconds")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	var cw []int
	if *cwList != "" {
		for _, tok := range strings.Split(*cwList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("bad -cw entry %q: %w", tok, err)
			}
			cw = append(cw, v)
		}
	} else {
		cw = make([]int, *n)
		for i := range cw {
			cw[i] = *w
		}
	}
	p := selfishmac.DefaultPHY()
	tm, err := p.Timing(m)
	if err != nil {
		return err
	}
	res, err := selfishmac.Simulate(selfishmac.SimConfig{
		Timing:   tm,
		MaxStage: p.MaxBackoffStage,
		CW:       cw,
		Duration: *duration * 1e6,
		Seed:     *seed,
		Gain:     1,
		Cost:     0.01,
	})
	if err != nil {
		return err
	}
	fmt.Printf("simulated %.1f s, %d nodes, mode=%s\n", res.Time/1e6, len(cw), m)
	fmt.Printf("slots=%d (idle=%d success=%d collision=%d), throughput=%.4f\n",
		res.Slots, res.IdleSlots, res.SuccessEvents, res.CollisionEvents, res.Throughput)
	for i, nd := range res.Nodes {
		fmt.Printf("node %2d: CW=%4d attempts=%7d succ=%7d coll=%6d tau=%.5f p=%.4f payoff=%.4g/us\n",
			i, cw[i], nd.Attempts, nd.Successes, nd.Collisions, nd.MeasuredTau, nd.MeasuredP, nd.PayoffRate)
	}
	fmt.Printf("global payoff rate: %.4g/us\n", res.GlobalPayoffRate())
	return nil
}

func cmdGame(args []string) error {
	fs := flag.NewFlagSet("game", flag.ContinueOnError)
	mode := fs.String("mode", "basic", "access mode: basic or rtscts")
	stages := fs.Int("stages", 10, "stages to play")
	strategies := fs.String("strategies", "tft:300,tft:150,tft:97",
		"comma-separated strategies: tft:<W0>, gtft:<W0>:<r0>:<beta>, constant:<W>, best")
	noise := fs.Float64("noise", 0, "relative observation noise (e.g. 0.15)")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	specs := strings.Split(*strategies, ",")
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(len(specs), m))
	if err != nil {
		return err
	}
	strats := make([]selfishmac.Strategy, len(specs))
	for i, spec := range specs {
		s, err := parseStrategy(game, strings.TrimSpace(spec))
		if err != nil {
			return err
		}
		strats[i] = s
	}
	opts := []selfishmac.EngineOption{selfishmac.WithSeed(*seed)}
	if *noise > 0 {
		rel := *noise
		opts = append(opts, selfishmac.WithNoise(func(r *selfishmac.RandSource, w int) int {
			return int(float64(w) * r.UniformRange(1-rel, 1+rel))
		}))
	}
	eng, err := selfishmac.NewEngine(game, strats, opts...)
	if err != nil {
		return err
	}
	tr, err := eng.Run(*stages)
	if err != nil {
		return err
	}
	for k, st := range tr.Stages {
		fmt.Printf("stage %3d: profile=%v throughput=%.4f utilities=", k, st.Profile, st.Throughput)
		for _, u := range st.UtilityRates {
			fmt.Printf(" %.3g", u)
		}
		fmt.Println()
	}
	if tr.ConvergedAt >= 0 {
		fmt.Printf("converged at stage %d to CW %d\n", tr.ConvergedAt, tr.ConvergedCW)
	} else {
		fmt.Println("did not converge")
	}
	return nil
}

func parseStrategy(game *selfishmac.Game, spec string) (selfishmac.Strategy, error) {
	parts := strings.Split(spec, ":")
	atoi := func(s string) (int, error) { return strconv.Atoi(strings.TrimSpace(s)) }
	switch parts[0] {
	case "tft":
		if len(parts) != 2 {
			return nil, fmt.Errorf("tft wants tft:<W0>, got %q", spec)
		}
		w0, err := atoi(parts[1])
		if err != nil {
			return nil, err
		}
		return selfishmac.TFT{Initial: w0}, nil
	case "gtft":
		if len(parts) != 4 {
			return nil, fmt.Errorf("gtft wants gtft:<W0>:<r0>:<beta>, got %q", spec)
		}
		w0, err := atoi(parts[1])
		if err != nil {
			return nil, err
		}
		r0, err := atoi(parts[2])
		if err != nil {
			return nil, err
		}
		beta, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
		if err != nil {
			return nil, err
		}
		return selfishmac.GTFT{Initial: w0, R0: r0, Beta: beta}, nil
	case "constant":
		if len(parts) != 2 {
			return nil, fmt.Errorf("constant wants constant:<W>, got %q", spec)
		}
		w, err := atoi(parts[1])
		if err != nil {
			return nil, err
		}
		return selfishmac.Constant{W: w}, nil
	case "best":
		ne, err := game.FindEfficientNE()
		if err != nil {
			return nil, err
		}
		return &selfishmac.BestResponse{Game: game, Initial: ne.WStar}, nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", parts[0])
	}
}

func cmdMultihop(args []string) error {
	fs := flag.NewFlagSet("multihop", flag.ContinueOnError)
	nodes := fs.Int("nodes", 100, "number of nodes")
	duration := fs.Float64("duration", 20, "simulated seconds per operating point")
	replicas := fs.Int("replicas", 2, "replica runs per operating point")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	topo := selfishmac.PaperTopology(*seed)
	topo.N = *nodes
	nw, err := selfishmac.NewNetwork(topo)
	if err != nil {
		return err
	}
	if err := nw.Step(300); err != nil { // RWP stationary snapshot
		return err
	}
	sel, err := selfishmac.NewLocalCWSelector(selfishmac.DefaultConfig(2, selfishmac.RTSCTS))
	if err != nil {
		return err
	}
	profile, err := selfishmac.LocalCWProfile(nw, sel)
	if err != nil {
		return err
	}
	wm := selfishmac.ConvergedCW(profile)
	_, stages, converged := selfishmac.TFTConverge(nw.AdjacencyLists(), profile, 10*nw.N())
	fmt.Printf("network: %d nodes, mean degree %.1f, connected=%v\n", nw.N(), nw.MeanDegree(), nw.Connected())
	fmt.Printf("local-NE CW profile: min=%d (converged Wm), TFT stages=%d converged=%v\n", wm, stages, converged)

	res, err := selfishmac.MeasureQuasiOptimality(nw, selfishmac.QuasiOptConfig{
		Sim:              selfishmac.DefaultSpatialSimConfig(*duration*1e6, *seed),
		Wm:               wm,
		SweepMultipliers: []float64{0.4, 0.6, 0.8, 1.25, 1.6, 2.2, 3},
		Replicas:         *replicas,
	})
	if err != nil {
		return err
	}
	fmt.Printf("swept common CWs: %v\n", res.SweptCWs)
	fmt.Printf("global payoff at Wm=%d: %.4g/us; best %.4g/us at W=%d (ratio %.3f)\n",
		wm, res.GlobalAtWm, res.GlobalMax, res.BestGlobalW, res.GlobalRatio)
	fmt.Printf("per-node payoff ratio: min=%.3f mean=%.3f\n", res.MinPerNodeRatio, res.MeanPerNodeRatio)
	return nil
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	n := fs.Int("n", 10, "number of nodes")
	mode := fs.String("mode", "rtscts", "access mode: basic or rtscts")
	w0 := fs.Int("w0", 8, "starting CW")
	accel := fs.Bool("accel", false, "use the accelerated O(log W*) variant")
	drop := fs.Float64("drop", 0, "broadcast message-loss probability")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(*n, m))
	if err != nil {
		return err
	}
	exact, err := game.FindEfficientNE()
	if err != nil {
		return err
	}
	inner, err := selfishmac.NewAnalyticSearchEnv(game, 0, *w0)
	if err != nil {
		return err
	}
	var env selfishmac.SearchEnv = inner
	if *drop > 0 {
		lossy, err := selfishmac.NewLossySearchEnv(inner, *drop, *seed)
		if err != nil {
			return err
		}
		env = lossy
	}
	opts := selfishmac.SearchOptions{WMax: game.Config().WMax}
	var res selfishmac.SearchResult
	if *accel {
		res, err = selfishmac.RunAcceleratedSearch(env, 0, *w0, opts)
	} else {
		res, err = selfishmac.RunSearch(env, 0, *w0, opts)
	}
	if err != nil {
		return err
	}
	for _, p := range res.Probes {
		fmt.Printf("probe W=%4d payoff=%.5g\n", p.W, p.Payoff)
	}
	fmt.Printf("announced W=%d after %d probes (exact efficient NE: %d)\n",
		res.W, res.ProbeCount(), exact.WStar)
	return nil
}

func cmdObserve(args []string) error {
	fs := flag.NewFlagSet("observe", flag.ContinueOnError)
	n := fs.Int("n", 10, "number of nodes")
	expected := fs.Int("expected", 0, "expected CW (default: the paper NE for n)")
	cheatCW := fs.Int("cheat", 0, "the cheater's CW (0 = no cheater)")
	cheater := fs.Int("cheater", 0, "cheater node index")
	duration := fs.Float64("duration", 120, "observation window in seconds")
	beta := fs.Float64("beta", 0.8, "detection tolerance")
	mode := fs.String("mode", "basic", "access mode: basic or rtscts")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	exp := *expected
	if exp == 0 {
		game, err := selfishmac.NewGame(selfishmac.DefaultConfig(*n, m))
		if err != nil {
			return err
		}
		ne, err := game.FindPaperNE()
		if err != nil {
			return err
		}
		exp = ne.WStar
	}
	cw := make([]int, *n)
	for i := range cw {
		cw[i] = exp
	}
	if *cheatCW > 0 {
		if *cheater < 0 || *cheater >= *n {
			return fmt.Errorf("cheater index %d outside [0, %d)", *cheater, *n)
		}
		cw[*cheater] = *cheatCW
	}
	p := selfishmac.DefaultPHY()
	res, err := selfishmac.Simulate(selfishmac.SimConfig{
		Timing:   p.MustTiming(m),
		MaxStage: p.MaxBackoffStage,
		CW:       cw,
		Duration: *duration * 1e6,
		Seed:     *seed,
		Gain:     1,
		Cost:     0.01,
	})
	if err != nil {
		return err
	}
	det := selfishmac.MisbehaviorDetector{ExpectedCW: exp, Beta: *beta}
	verdicts, err := det.Inspect(selfishmac.ObservationsFromSim(res), p.MaxBackoffStage)
	if err != nil {
		return err
	}
	fmt.Printf("expected CW %d, %d nodes, %.0f s window (%d slots)\n", exp, *n, *duration, res.Slots)
	for i, v := range verdicts {
		flag := ""
		if v.Misbehaving {
			flag = "  <-- MISBEHAVING"
		}
		fmt.Printf("node %2d: true CW=%4d estimated=%7.1f margin=%.2f%s\n", i, cw[i], v.CW, v.Margin, flag)
	}
	return nil
}

func cmdPackets(args []string) error {
	fs := flag.NewFlagSet("packets", flag.ContinueOnError)
	n := fs.Int("n", 10, "number of nodes")
	w := fs.Int("w", 0, "contention window (default: the paper NE for n)")
	mode := fs.String("mode", "basic", "access mode: basic or rtscts")
	ber := fs.Float64("ber", 1e-4, "per-bit error rate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	cwVal := *w
	if cwVal == 0 {
		game, err := selfishmac.NewGame(selfishmac.DefaultConfig(*n, m))
		if err != nil {
			return err
		}
		ne, err := game.FindPaperNE()
		if err != nil {
			return err
		}
		cwVal = ne.WStar
	}
	cfg := selfishmac.DefaultRateControlConfig(*n, cwVal, m)
	cfg.BER = *ber
	game, err := selfishmac.NewRateControlGame(cfg)
	if err != nil {
		return err
	}
	out, err := game.Analyze()
	if err != nil {
		return err
	}
	fmt.Printf("packet-size game: n=%d W=%d mode=%s BER=%g\n", *n, cwVal, m, *ber)
	fmt.Printf("social optimum:  L = %6.0f bits, per-node utility %.4g/us\n", out.LSocial, out.USocial)
	fmt.Printf("one-shot NE:     L = %6.0f bits, per-node utility %.4g/us\n", out.LNE, out.UNE)
	fmt.Printf("escalation %.2fx, price of anarchy %.3f\n", out.Escalation, out.PriceOfAnarchy)
	fmt.Println("with long-sighted TFT players the repeated game sustains the social optimum,")
	fmt.Println("mirroring the paper's CW-game result in a second strategy space.")
	return nil
}

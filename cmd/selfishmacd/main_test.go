package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonSmoke boots the daemon in-process on an ephemeral port and
// walks the whole lifecycle: readiness, a tiny replicate job to Done with
// CI progress, queue overflow to 429, cancellation of a long job, and a
// SIGTERM graceful drain. This is the `make smoke-daemon` target.
func TestDaemonSmoke(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	ready := make(chan string, 1)
	var stdout, stderr bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(
			[]string{"-addr", "127.0.0.1:0", "-workers", "1", "-queue-cap", "1", "-drain-timeout", "10s"},
			sigs, &stdout, &stderr,
			func(addr string) { ready <- addr },
		)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never became ready")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	post := func(body string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b), resp.Header
	}
	jobID := func(body string) string {
		t.Helper()
		var v struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal([]byte(body), &v); err != nil || v.ID == "" {
			t.Fatalf("no job id in %s", body)
		}
		return v.ID
	}
	waitState := func(id string, want string, timeout time.Duration) string {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for {
			_, body := get("/api/v1/jobs/" + id)
			var v struct {
				State string `json:"state"`
			}
			_ = json.Unmarshal([]byte(body), &v)
			if v.State == want {
				return body
			}
			if v.State == "failed" || time.Now().After(deadline) {
				t.Fatalf("job %s state %q, want %q (%s)", id, v.State, want, body)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Liveness and readiness.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz = %d %s", code, body)
	}

	// A tiny replicate job runs to Done with CI progress and a result.
	code, body, _ := post(`{"kind":"replicate","params":{"nodes":10,"width":300,"height":300,` +
		`"range":120,"duration_us":20000,"min_reps":3,"max_reps":3,"batch_size":3,"rel_ci":-1}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %s", code, body)
	}
	tiny := jobID(body)
	waitState(tiny, "done", 60*time.Second)
	if code, body := get("/api/v1/jobs/" + tiny + "/result"); code != http.StatusOK ||
		!strings.Contains(body, "global_payoff_rate") {
		t.Fatalf("result = %d %s", code, body)
	}
	if code, body := get("/api/v1/jobs/" + tiny + "/progress"); code != http.StatusOK ||
		!strings.Contains(body, "ci95") {
		t.Fatalf("progress = %d %s", code, body)
	}

	// Overflow the single-slot queue: a practically-unbounded job holds
	// the worker (it only ends via cancellation), a second fills the
	// queue, and the third submit must bounce with 429. Waiting for the
	// first to reach "running" makes the sequence deterministic — the
	// queue slot is provably free when the second is submitted.
	long := `{"kind":"replicate","params":{"nodes":12,"width":300,"height":300,"range":120,` +
		`"duration_us":2000000,"min_reps":1000000,"max_reps":1000000,"batch_size":2,"rel_ci":-1}}`
	code, body, _ = post(long)
	if code != http.StatusAccepted {
		t.Fatalf("long submit = %d %s", code, body)
	}
	running := jobID(body)
	waitState(running, "running", 30*time.Second)
	code, body, _ = post(long)
	if code != http.StatusAccepted {
		t.Fatalf("queued submit = %d %s", code, body)
	}
	queued := jobID(body)
	code, body, hdr := post(long)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d %s, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Cancel both long jobs; DELETE is 202 and they reach cancelled.
	for _, id := range []string{queued, running} {
		req, _ := http.NewRequest(http.MethodDelete, base+"/api/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusConflict {
			t.Fatalf("cancel %s = %d", id, resp.StatusCode)
		}
	}
	waitState(queued, "cancelled", 30*time.Second)
	waitState(running, "cancelled", 30*time.Second)

	// First SIGTERM: graceful drain; the daemon exits cleanly on its own.
	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if !strings.Contains(stdout.String(), "shut down cleanly") {
		t.Errorf("stdout missing clean-shutdown line:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Errorf("stderr missing drain notice:\n%s", stderr.String())
	}
}

// TestDaemonDetectSmoke boots the daemon and drives a "detect" job over
// HTTP: submit a 10-node population with one blatant cheater, wait for
// Done, and require at least one streamed event:"flag" JSON progress
// line plus a summary result naming the cheater.
func TestDaemonDetectSmoke(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(
			[]string{"-addr", "127.0.0.1:0", "-workers", "1", "-queue-cap", "4", "-drain-timeout", "10s"},
			sigs, io.Discard, io.Discard,
			func(addr string) { ready <- addr },
		)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never became ready")
	}
	defer func() {
		sigs <- syscall.SIGTERM
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Error("daemon did not drain after SIGTERM")
		}
	}()

	body := `{"kind":"detect","params":{"nodes":10,"expected_cw":166,"cheaters":1,` +
		`"cheater_cw":20,"beta":0.6,"window_slots":1500,"duration_us":10000000,"seed":7}}`
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	sub, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %s", resp.StatusCode, sub)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(sub, &v); err != nil || v.ID == "" {
		t.Fatalf("no job id in %s", sub)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, body := get("/api/v1/jobs/" + v.ID)
		var st struct {
			State string `json:"state"`
		}
		_ = json.Unmarshal([]byte(body), &st)
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "cancelled" || time.Now().After(deadline) {
			t.Fatalf("detect job state %q (%s)", st.State, body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The progress stream holds newline-delimited JSON events; at least
	// one must be a flag event for the cheater node.
	code, prog := get("/api/v1/jobs/" + v.ID + "/progress")
	if code != http.StatusOK {
		t.Fatalf("progress = %d %s", code, prog)
	}
	var flagged bool
	for _, line := range strings.Split(strings.TrimSpace(prog), "\n") {
		var fl struct {
			Event string  `json:"event"`
			Node  int     `json:"node"`
			EstCW float64 `json:"est_cw"`
		}
		if err := json.Unmarshal([]byte(line), &fl); err != nil {
			continue
		}
		if fl.Event == "flag" {
			flagged = true
			if fl.Node != 0 {
				t.Errorf("flag line names node %d, want the cheater 0: %s", fl.Node, line)
			}
			if !(fl.EstCW > 0 && fl.EstCW < 0.6*166) {
				t.Errorf("flag est_cw %g not under the beta threshold: %s", fl.EstCW, line)
			}
		}
	}
	if !flagged {
		t.Fatalf("no event:\"flag\" line in progress stream:\n%s", prog)
	}
	code, body = get("/api/v1/jobs/" + v.ID + "/result")
	if code != http.StatusOK {
		t.Fatalf("result = %d %s", code, body)
	}
	var res struct {
		Result struct {
			TruePositives int   `json:"true_positives"`
			LatencySlots  int64 `json:"latency_slots"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("result body %s: %v", body, err)
	}
	if res.Result.TruePositives != 1 || res.Result.LatencySlots < 0 {
		t.Fatalf("result summary = %+v, want the cheater detected with a latency", res.Result)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	sigs := make(chan os.Signal)
	if err := run([]string{"-queue-cap", "abc"}, sigs, io.Discard, io.Discard, nil); err == nil {
		t.Fatal("malformed -queue-cap accepted")
	}
}

func TestRunRejectsPositionalArgs(t *testing.T) {
	sigs := make(chan os.Signal)
	err := run([]string{"stray"}, sigs, io.Discard, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("err = %v, want unexpected-arguments", err)
	}
}

func TestRunInvertedTimeoutsFailFast(t *testing.T) {
	sigs := make(chan os.Signal)
	err := run([]string{"-job-timeout", "2h", "-max-job-timeout", "1m"}, sigs, io.Discard, io.Discard, nil)
	if err == nil {
		t.Fatal("inverted timeouts accepted")
	}
	if !strings.Contains(err.Error(), "exceeds the maximum") {
		t.Errorf("err = %v", err)
	}
}

func init() {
	// Guard against a stray second-signal path calling os.Exit mid-test.
	osExit = func(code int) { panic(fmt.Sprintf("osExit(%d) called in test", code)) }
}

// Command selfishmacd is the simulation job daemon: an HTTP/JSON front
// end (internal/service) over the repository's replication and experiment
// machinery. It exists so long parameter sweeps can run server-side with
// backpressure, per-job deadlines, cancellation and crash isolation
// instead of as fire-and-forget CLI invocations.
//
// Signals follow the two-stage convention used across this repo's
// binaries: the first SIGINT/SIGTERM starts a graceful drain (intake
// stops, running jobs finish under the drain timeout, HTTP stays up so
// clients can collect results), a second signal hard-exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"selfishmac/internal/service"
)

// osExit is swapped out by the smoke test; the second signal must not
// kill the test process.
var osExit = os.Exit

func main() {
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], sigs, os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "selfishmacd:", err)
		osExit(1)
	}
}

// run is the whole daemon, factored for in-process testing: the smoke
// test injects its own signal channel and learns the bound address via
// onReady (so -addr may be :0).
func run(args []string, sigs <-chan os.Signal, stdout, stderr io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("selfishmacd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", "127.0.0.1:8377", "HTTP listen address (host:port, port 0 picks a free port)")
		queueCap      = fs.Int("queue-cap", 64, "max queued jobs before submissions get 429")
		workers       = fs.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		jobTimeout    = fs.Duration("job-timeout", 15*time.Minute, "default per-job deadline")
		maxJobTimeout = fs.Duration("max-job-timeout", 2*time.Hour, "largest per-job deadline a submission may request")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs before hard-cancelling")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	srv, err := service.New(service.Config{
		Addr:              *addr,
		QueueCap:          *queueCap,
		Workers:           *workers,
		DefaultJobTimeout: *jobTimeout,
		MaxJobTimeout:     *maxJobTimeout,
		DrainTimeout:      *drainTimeout,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", srv.Config().Addr)
	if err != nil {
		return err
	}
	srv.Start()
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "selfishmacd: listening on http://%s (%d workers, queue %d)\n",
		ln.Addr(), srv.Config().Workers, srv.Config().QueueCap)
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	case sig := <-sigs:
		fmt.Fprintf(stderr, "selfishmacd: %v — draining jobs, finishing in-flight requests (signal again to force exit)\n", sig)
	}
	go func() {
		<-sigs
		fmt.Fprintln(stderr, "selfishmacd: second signal — exiting now")
		osExit(130)
	}()

	// Drain the job service first so /readyz flips to 503 and clients can
	// still collect results over HTTP while running jobs wind down; only
	// then stop the HTTP server.
	ctx, cancel := context.WithTimeout(context.Background(), srv.Config().DrainTimeout+10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "selfishmacd: drained, shut down cleanly")
	return nil
}

package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// End-to-end smoke: the quick profile at one iteration per benchmark must
// produce a parseable BENCH_sim.json covering every scenario under both
// engines, with sane numbers.
func TestBenchWritesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_sim.json")
	if err := run(context.Background(), []string{"-quick", "-benchtime", "1x", "-out", out}); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if f.Profile != "quick" || f.GoVersion == "" || f.Generated == "" {
		t.Fatalf("metadata incomplete: %+v", f)
	}
	// Scenario → engine labels. Most pairs are fast/reference; the
	// detection scenario relabels to observed/plain (same engine,
	// observer on vs off) and the adjacency-delta scenarios to
	// delta/rebuild (patched view vs bulk snapshot).
	wantScenarios := map[string][2]string{
		"macsim/basic-n20-w336":                  {"fast", "reference"},
		"macsim/basic-n50-w879":                  {"fast", "reference"},
		detectionName:                            {"observed", "plain"},
		"multihop/sparse-n50-w116":               {"fast", "reference"},
		"multihop/mobile-n100-w26":               {"fast", "reference"},
		"multihop/mobile-n500-w26":               {"fast", "reference"},
		"multihop/mobile-n1000-w26":              {"fast", "reference"},
		"multihop/mobile-n5000-w26":              {"fast", "reference"},
		"multihop/mobile-n10000-w26":             {"fast", "reference"},
		"multihop/static-n1000":                  {"delta", "rebuild"},
		"multihop/mobile-n10000-delta":           {"delta", "rebuild"},
		"topology/delta-vs-rebuild-n1000":        {"delta", "rebuild"},
		"topology/delta-vs-rebuild-n1000-paused": {"delta", "rebuild"},
		"topology/adjacency-n500":                {"fast", "reference"},
		"topology/adjacency-n1000":               {"fast", "reference"},
		"topology/adjacency-n10000":              {"fast", "reference"},
	}
	if len(f.Benchmarks) != 2*len(wantScenarios) {
		t.Fatalf("got %d benchmark entries, want %d", len(f.Benchmarks), 2*len(wantScenarios))
	}
	byName := map[string]EngineResult{}
	for _, b := range f.Benchmarks {
		byName[b.Name] = b
		if b.NsPerOp <= 0 {
			t.Errorf("%s: non-positive ns/op %g", b.Name, b.NsPerOp)
		}
		if b.EventsPerRun <= 0 || b.EventsPerSec <= 0 {
			t.Errorf("%s: missing event rate (%d events, %g/s)", b.Name, b.EventsPerRun, b.EventsPerSec)
		}
	}
	for s, labels := range wantScenarios {
		fast, okF := byName[s+"/"+labels[0]]
		ref, okR := byName[s+"/"+labels[1]]
		if !okF || !okR {
			t.Fatalf("scenario %s missing an engine entry", s)
		}
		if fast.EventsPerRun != ref.EventsPerRun {
			t.Errorf("%s: engines disagree on event count: %d vs %d — trajectories diverged",
				s, fast.EventsPerRun, ref.EventsPerRun)
		}
		if _, ok := f.Speedups[s]; !ok {
			t.Errorf("scenario %s missing a speedup entry", s)
		}
	}
	if f.Detection == nil {
		t.Fatal("File.Detection missing: detection scenario ran but no latency distribution")
	}
	if f.Detection.Scenario != detectionName || f.Detection.Runs <= 0 {
		t.Fatalf("detection stats incomplete: %+v", f.Detection)
	}
	if f.Detection.Flagged <= 0 || f.Detection.LatencyMeanSlots <= 0 {
		t.Errorf("Wc*/8 cheater never flagged in %d runs: %+v", f.Detection.Runs, f.Detection)
	}
}

func TestBenchOnlyFilter(t *testing.T) {
	out := filepath.Join(t.TempDir(), "b.json")
	if err := run(context.Background(), []string{"-quick", "-benchtime", "1x", "-only", "macsim/basic-n20", "-out", out}); err != nil {
		t.Fatal(err)
	}
	var f File
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("filter kept %d entries, want 2", len(f.Benchmarks))
	}
	if err := run(context.Background(), []string{"-quick", "-only", "nosuch", "-out", out}); err == nil {
		t.Fatal("unknown -only filter did not error")
	}
}

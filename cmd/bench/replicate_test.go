package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchReplicateWritesJSON smoke-runs the -replicate mode on the
// quick profile and checks the acceptance shape of BENCH_replicate.json:
// reused engine lifecycles at 0 allocs/op, all four worker counts
// measured, and the adaptive schedule never spending more replications
// than the fixed worst case.
func TestBenchReplicateWritesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_replicate.json")
	if err := run(context.Background(), []string{"-replicate", "-quick", "-benchtime", "1x", "-out", out}); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f ReplicateFile
	if err := json.Unmarshal(buf, &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if f.Profile != "quick" || f.GoVersion == "" || f.Generated == "" || f.GOMAXPROCS < 1 {
		t.Fatalf("metadata incomplete: %+v", f)
	}

	if len(f.EngineAllocs) != 2 {
		t.Fatalf("got %d engine_allocs entries, want 2", len(f.EngineAllocs))
	}
	for _, a := range f.EngineAllocs {
		if a.ReusedAllocsOp != 0 {
			t.Errorf("%s: reused lifecycle allocates %d allocs/op, want 0", a.Name, a.ReusedAllocsOp)
		}
		if a.FreshAllocsOp <= a.ReusedAllocsOp {
			t.Errorf("%s: fresh path (%d allocs/op) not costlier than reused (%d)",
				a.Name, a.FreshAllocsOp, a.ReusedAllocsOp)
		}
	}

	wantWorkers := []int{1, 2, 4, 8}
	if len(f.WorkerScaling) != len(wantWorkers) {
		t.Fatalf("got %d worker_scaling entries, want %d", len(f.WorkerScaling), len(wantWorkers))
	}
	for i, sr := range f.WorkerScaling {
		if sr.Workers != wantWorkers[i] {
			t.Errorf("worker_scaling[%d]: workers %d, want %d", i, sr.Workers, wantWorkers[i])
		}
		if sr.Seconds <= 0 || sr.Speedup <= 0 {
			t.Errorf("workers=%d: non-positive measurement (%gs, %gx)", sr.Workers, sr.Seconds, sr.Speedup)
		}
	}

	if len(f.Adaptive.Points) != 3 {
		t.Fatalf("got %d adaptive points, want 3", len(f.Adaptive.Points))
	}
	for _, p := range f.Adaptive.Points {
		if p.AdaptiveReps < f.Adaptive.MinReps || p.AdaptiveReps > f.Adaptive.MaxReps {
			t.Errorf("w=%d: adaptive reps %d outside [%d, %d]",
				p.W, p.AdaptiveReps, f.Adaptive.MinReps, f.Adaptive.MaxReps)
		}
		if p.FixedReps != f.Adaptive.MaxReps {
			t.Errorf("w=%d: fixed reps %d, want %d", p.W, p.FixedReps, f.Adaptive.MaxReps)
		}
	}
	if f.Adaptive.RepsSaved != f.Adaptive.FixedTotal-f.Adaptive.AdaptiveTotal || f.Adaptive.RepsSaved < 0 {
		t.Errorf("inconsistent reps_saved %d (fixed %d, adaptive %d)",
			f.Adaptive.RepsSaved, f.Adaptive.FixedTotal, f.Adaptive.AdaptiveTotal)
	}
}

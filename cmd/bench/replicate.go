package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"slices"
	"testing"
	"time"

	"selfishmac/internal/macsim"
	"selfishmac/internal/multihop"
	"selfishmac/internal/phy"
	"selfishmac/internal/replicate"
	"selfishmac/internal/topology"
)

// replicate.go measures the replication layer (internal/replicate) and
// the reusable engine lifecycles behind it, writing BENCH_replicate.json:
//
//   - engine_allocs: allocs/op and bytes/op of a fresh one-shot run
//     (macsim.Run, multihop.Simulate) vs the reusable Reset+Run
//     lifecycle (macsim.Engine, multihop.Simulator) on the same
//     workload — the steady state must be 0 allocs/op.
//   - worker_scaling: wall-clock of one fixed-R replicated measurement
//     at 1/2/4/8 workers. Speedups are hardware-bound: on a single-CPU
//     host (GOMAXPROCS=1) all worker counts serialize and the honest
//     ratio is ~1x; the gomaxprocs field records what the numbers mean.
//   - adaptive: replications spent by the adaptive CI-targeted schedule
//     vs the fixed worst-case R across a CW sweep, with the CI each
//     point reached.

// AllocResult compares the fresh and reused lifecycle of one engine.
type AllocResult struct {
	Name           string  `json:"name"`
	FreshAllocsOp  int64   `json:"fresh_allocs_per_op"`
	FreshBytesOp   int64   `json:"fresh_bytes_per_op"`
	FreshNsOp      float64 `json:"fresh_ns_per_op"`
	ReusedAllocsOp int64   `json:"reused_allocs_per_op"`
	ReusedBytesOp  int64   `json:"reused_bytes_per_op"`
	ReusedNsOp     float64 `json:"reused_ns_per_op"`
}

// ScalingResult is one worker count's wall-clock for the fixed workload.
type ScalingResult struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup_vs_1"`
}

// AdaptivePoint is one CW operating point of the adaptive-vs-fixed sweep.
type AdaptivePoint struct {
	W            int     `json:"w"`
	AdaptiveReps int     `json:"adaptive_reps"`
	AdaptiveCI   float64 `json:"adaptive_rel_ci95"`
	FixedReps    int     `json:"fixed_reps"`
	FixedCI      float64 `json:"fixed_rel_ci95"`
}

// AdaptiveResult aggregates the sweep.
type AdaptiveResult struct {
	RelCITarget   float64         `json:"rel_ci_target"`
	MinReps       int             `json:"min_reps"`
	MaxReps       int             `json:"max_reps"`
	Points        []AdaptivePoint `json:"points"`
	AdaptiveTotal int             `json:"adaptive_total_reps"`
	FixedTotal    int             `json:"fixed_total_reps"`
	RepsSaved     int             `json:"reps_saved"`
}

// ReplicateFile is the BENCH_replicate.json schema.
type ReplicateFile struct {
	Generated     string          `json:"generated"`
	GoVersion     string          `json:"go"`
	GOMAXPROCS    int             `json:"gomaxprocs"`
	NumCPU        int             `json:"num_cpu"`
	Profile       string          `json:"profile"`
	Note          string          `json:"note"`
	EngineAllocs  []AllocResult   `json:"engine_allocs"`
	WorkerScaling []ScalingResult `json:"worker_scaling"`
	Adaptive      AdaptiveResult  `json:"adaptive"`
}

func benchAllocs(fn func() error) (allocs, bytes int64, ns float64, err error) {
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if e := fn(); e != nil {
				benchErr = e
				b.Fatal(e)
			}
		}
	})
	if benchErr != nil {
		return 0, 0, 0, benchErr
	}
	return r.AllocsPerOp(), r.AllocedBytesPerOp(), float64(r.NsPerOp()), nil
}

// replicateWorkload is the shared spatial scenario: the sparse 50-node
// acceptance network at the RTS/CTS NE window.
func replicateWorkload(dur float64) (*topology.Network, multihop.SimConfig, error) {
	nw, err := topology.New(topology.Config{N: 50, Width: 1000, Height: 1000, Range: 180, Seed: 11})
	if err != nil {
		return nil, multihop.SimConfig{}, err
	}
	cfg := multihop.DefaultSimConfig(dur, 7)
	cfg.CW = uniformCW(116, 50)
	return nw, cfg, nil
}

func measureEngineAllocs(shDur, mhDur float64) ([]AllocResult, error) {
	var out []AllocResult

	// macsim: one-shot Run vs Engine Reset+Run.
	mcfg := macsim.Config{
		Timing:   phy.Default().MustTiming(phy.Basic),
		MaxStage: phy.Default().MaxBackoffStage,
		CW:       uniformCW(336, 20),
		Duration: shDur,
		Seed:     1,
		Gain:     1,
		Cost:     0.01,
	}
	res := AllocResult{Name: "macsim/basic-n20-w336"}
	var err error
	if res.FreshAllocsOp, res.FreshBytesOp, res.FreshNsOp, err = benchAllocs(func() error {
		_, err := macsim.Run(mcfg)
		return err
	}); err != nil {
		return nil, err
	}
	eng, err := macsim.NewEngine(mcfg)
	if err != nil {
		return nil, err
	}
	seed := uint64(0)
	// One warm-up run first: the compact calendar grows lazily, so the
	// first run may allocate once — the contract (0 allocs/op) is about
	// the steady state after growth.
	eng.Reset(seed)
	eng.Run()
	if res.ReusedAllocsOp, res.ReusedBytesOp, res.ReusedNsOp, err = benchAllocs(func() error {
		seed++
		eng.Reset(seed)
		eng.Run()
		return nil
	}); err != nil {
		return nil, err
	}
	out = append(out, res)

	// multihop: one-shot Simulate vs Simulator Reset+Run.
	nw, scfg, err := replicateWorkload(mhDur)
	if err != nil {
		return nil, err
	}
	res = AllocResult{Name: "multihop/sparse-n50-w116"}
	if res.FreshAllocsOp, res.FreshBytesOp, res.FreshNsOp, err = benchAllocs(func() error {
		_, err := multihop.Simulate(nw, scfg)
		return err
	}); err != nil {
		return nil, err
	}
	sim, err := multihop.NewSimulator(nw, scfg)
	if err != nil {
		return nil, err
	}
	if res.ReusedAllocsOp, res.ReusedBytesOp, res.ReusedNsOp, err = benchAllocs(func() error {
		seed++
		sim.Reset(seed)
		_, err := sim.Run()
		return err
	}); err != nil {
		return nil, err
	}
	out = append(out, res)
	return out, nil
}

func measureWorkerScaling(ctx context.Context, mhDur float64, reps int) ([]ScalingResult, error) {
	nw, cfg, err := replicateWorkload(mhDur)
	if err != nil {
		return nil, err
	}
	factory := func() (replicate.Replicator, error) {
		sim, err := multihop.NewSimulator(nw, cfg)
		if err != nil {
			return nil, err
		}
		return globalRateReplicator{sim}, nil
	}
	// The fixed ladder plus workers=NumCPU: the one row whose speedup the
	// hardware can actually deliver, so the file always carries an honest
	// saturation point (on a 1-CPU host that row is workers=1 at ~1x).
	counts := []int{1, 2, 4, 8, runtime.NumCPU()}
	slices.Sort(counts)
	counts = slices.Compact(counts)
	var out []ScalingResult
	var base float64
	for _, workers := range counts {
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		plan := replicate.FixedPlan(3, "bench.scaling", 1, reps, workers)
		// Warm once (engine construction, page faults), then time.
		if _, err := replicate.RunContext(ctx, plan, factory); err != nil {
			return out, err
		}
		start := time.Now()
		if _, err := replicate.RunContext(ctx, plan, factory); err != nil {
			return out, err
		}
		secs := time.Since(start).Seconds()
		sr := ScalingResult{Workers: workers, Seconds: secs}
		if workers == counts[0] {
			base = secs
		}
		if secs > 0 {
			sr.Speedup = base / secs
		}
		out = append(out, sr)
	}
	return out, nil
}

type globalRateReplicator struct{ sim *multihop.Simulator }

func (r globalRateReplicator) Replicate(seed uint64, out []float64) error {
	r.sim.Reset(seed)
	res, err := r.sim.Run()
	if err != nil {
		return err
	}
	out[0] = res.GlobalPayoffRate()
	return nil
}

func measureAdaptive(ctx context.Context, mhDur float64, minReps, maxReps int, relCI float64) (AdaptiveResult, error) {
	nw, cfg, err := replicateWorkload(mhDur)
	if err != nil {
		return AdaptiveResult{}, err
	}
	res := AdaptiveResult{RelCITarget: relCI, MinReps: minReps, MaxReps: maxReps}
	for _, w := range []int{58, 116, 232} {
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		sim := cfg
		sim.CW = uniformCW(w, 50)
		factory := func() (replicate.Replicator, error) {
			s, err := multihop.NewSimulator(nw, sim)
			if err != nil {
				return nil, err
			}
			return globalRateReplicator{s}, nil
		}
		stream := fmt.Sprintf("bench.adaptive.w%d", w)
		adaptive, err := replicate.RunContext(ctx, replicate.Plan{
			BaseSeed: 5, Stream: stream, Metrics: 1,
			RelTolerance: relCI, MinReps: minReps, MaxReps: maxReps,
		}, factory)
		if err != nil {
			return res, err
		}
		fixed, err := replicate.RunContext(ctx, replicate.FixedPlan(5, stream, 1, maxReps, 0), factory)
		if err != nil {
			return res, err
		}
		relOf := func(r *replicate.Result) float64 {
			if m := r.Mean(0); m != 0 {
				return r.CI95(0) / m
			}
			return 0
		}
		res.Points = append(res.Points, AdaptivePoint{
			W:            w,
			AdaptiveReps: adaptive.Reps,
			AdaptiveCI:   relOf(adaptive),
			FixedReps:    fixed.Reps,
			FixedCI:      relOf(fixed),
		})
		res.AdaptiveTotal += adaptive.Reps
		res.FixedTotal += fixed.Reps
	}
	res.RepsSaved = res.FixedTotal - res.AdaptiveTotal
	return res, nil
}

// runReplicate drives the -replicate mode. An interrupt mid-suite stops
// measuring and writes whatever stages completed.
func runReplicate(ctx context.Context, out string, quick bool) error {
	shDur, mhDur := 20e6, 10e6
	minReps, maxReps := 4, 24
	scalingReps := 16
	relCI := 0.05
	if quick {
		shDur, mhDur = 1e6, 5e5
		minReps, maxReps = 2, 6
		scalingReps = 4
	}
	profile := "paper"
	if quick {
		profile = "quick"
	}
	file := ReplicateFile{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Profile:    profile,
		Note: "Replication-layer benchmarks: engine_allocs compares fresh one-shot runs vs the " +
			"reusable Reset+Run lifecycle (steady state must be 0 allocs/op); worker_scaling is " +
			"wall-clock of one fixed-R measurement at 1/2/4/8 workers plus workers=num_cpu, the " +
			"saturation row the hardware can honestly deliver (parallel speedup is bounded by " +
			"gomaxprocs — on a 1-CPU host all counts measure ~1x); adaptive counts replications " +
			"spent by the CI-targeted schedule vs fixed worst-case R. " +
			"Regenerate with `make bench-replicate`.",
	}
	writeFile := func() error {
		buf, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
		return nil
	}
	interrupted := func(stageErr error) error {
		file.Note += " PARTIAL RUN: interrupted before all stages completed."
		if werr := writeFile(); werr != nil {
			return werr
		}
		return fmt.Errorf("interrupted: %w", stageErr)
	}

	var err error
	if file.EngineAllocs, err = measureEngineAllocs(shDur, mhDur); err != nil {
		return err
	}
	for _, a := range file.EngineAllocs {
		fmt.Printf("%-28s fresh %5d allocs/op %9d B/op | reused %3d allocs/op %6d B/op\n",
			a.Name, a.FreshAllocsOp, a.FreshBytesOp, a.ReusedAllocsOp, a.ReusedBytesOp)
	}
	if file.WorkerScaling, err = measureWorkerScaling(ctx, mhDur, scalingReps); err != nil {
		if ctx.Err() != nil {
			return interrupted(err)
		}
		return err
	}
	for _, sr := range file.WorkerScaling {
		fmt.Printf("workers=%d %8.3fs speedup %.2fx\n", sr.Workers, sr.Seconds, sr.Speedup)
	}
	if file.Adaptive, err = measureAdaptive(ctx, mhDur, minReps, maxReps, relCI); err != nil {
		if ctx.Err() != nil {
			return interrupted(err)
		}
		return err
	}
	fmt.Printf("adaptive: %d reps vs fixed %d (saved %d)\n",
		file.Adaptive.AdaptiveTotal, file.Adaptive.FixedTotal, file.Adaptive.RepsSaved)
	return writeFile()
}

// Command bench measures both simulator engines — the event-skipping
// production engines (macsim.Run, multihop.Simulate) and the pinned
// reference loops (macsim.RunReference, multihop.SimulateReference) —
// and writes the results to a machine-readable JSON file. The file is
// the repository's simulator perf trajectory: each entry carries ns/op,
// allocs/op, bytes/op and events/sec per engine, plus fast-over-reference
// speedup ratios per scenario, so regressions and future speedups are
// measurable PR over PR.
//
// Usage:
//
//	bench [-out BENCH_sim.json] [-quick] [-benchtime 1s] [-only substr]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The default profile runs paper-faithful scenario durations (seconds of
// simulated time per op); -quick shrinks them for smoke runs. -benchtime
// is forwarded to the testing package (e.g. "100ms" or "5x").
//
// Events are channel events for macsim (success + collision busy
// periods), transmission attempts for multihop, and directed links for
// the topology adjacency-build scenarios; both engines of a scenario
// simulate the identical (bit-for-bit) trajectory, so their event
// counts match and events/sec is directly comparable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"testing"
	"time"

	"selfishmac/internal/macsim"
	"selfishmac/internal/multihop"
	"selfishmac/internal/phy"
	"selfishmac/internal/stats"
	"selfishmac/internal/stream"
	"selfishmac/internal/topology"
)

// detectionName is the streaming-detection scenario; run() keys the
// flag-latency distribution in File.Detection off it.
const detectionName = "macsim/detection-n10-w166"

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "bench: interrupt — writing partial results (interrupt again to force exit)")
		cancel()
		<-sigs
		fmt.Fprintln(os.Stderr, "bench: second interrupt — exiting now")
		os.Exit(130)
	}()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// EngineResult is one (scenario, engine) measurement.
type EngineResult struct {
	Name         string  `json:"name"`   // scenario/engine
	Engine       string  `json:"engine"` // "fast" or "reference"
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerRun int64   `json:"events_per_run"`
	EventsPerSec float64 `json:"events_per_sec"`
	Iterations   int     `json:"iterations"`
}

// File is the BENCH_sim.json schema. Extend it by appending scenarios in
// scenarios(); consumers must ignore unknown fields.
type File struct {
	Generated  string             `json:"generated"`
	GoVersion  string             `json:"go"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Profile    string             `json:"profile"` // "paper" or "quick"
	Note       string             `json:"note"`
	Benchmarks []EngineResult     `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"` // scenario -> reference/fast ns ratio
	// Detection carries the streaming-detection scenario's flag-latency
	// distribution (absent when -only filters the scenario out).
	Detection *DetectionStats `json:"detection,omitempty"`
}

// DetectionStats summarizes the detection scenario's flag latencies over
// independent seeds: how many virtual slots pass before the cheater's
// first flag, as a distribution, plus the per-run flag volume.
type DetectionStats struct {
	Scenario         string  `json:"scenario"`
	Runs             int     `json:"runs"`
	Flagged          int     `json:"flagged"` // runs whose cheater was flagged
	WindowSlots      int64   `json:"window_slots"`
	LatencyMeanSlots float64 `json:"latency_mean_slots"`
	LatencyP50Slots  float64 `json:"latency_p50_slots"`
	LatencyP90Slots  float64 `json:"latency_p90_slots"`
	LatencyP99Slots  float64 `json:"latency_p99_slots"`
	FlagsPerRun      float64 `json:"flags_per_run"`
}

// scenario is one workload measured under both engines. runFast and
// runRef must simulate the identical trajectory; events is the per-run
// event count used for the events/sec rate. The labels default to
// "fast"/"reference"; the detection scenario relabels them
// "observed"/"plain" (same engine, observer hook on vs off).
type scenario struct {
	name      string
	events    int64
	fastLabel string
	refLabel  string
	runFast   func() error
	runRef    func() error
}

func uniformCW(w, n int) []int {
	cw := make([]int, n)
	for i := range cw {
		cw[i] = w
	}
	return cw
}

// macsimScenario builds a single-collision-domain workload: n nodes at
// the paper's efficient-NE CW for that population.
func macsimScenario(name string, w, n int, duration float64) (scenario, error) {
	cfg := macsim.Config{
		Timing:   phy.Default().MustTiming(phy.Basic),
		MaxStage: phy.Default().MaxBackoffStage,
		CW:       uniformCW(w, n),
		Duration: duration,
		Seed:     1,
		Gain:     1,
		Cost:     0.01,
	}
	probe, err := macsim.Run(cfg)
	if err != nil {
		return scenario{}, err
	}
	return scenario{
		name:   name,
		events: probe.SuccessEvents + probe.CollisionEvents,
		runFast: func() error {
			_, err := macsim.Run(cfg)
			return err
		},
		runRef: func() error {
			_, err := macsim.RunReference(cfg)
			return err
		},
	}, nil
}

// multihopScenario builds a spatial workload over a random-waypoint
// network snapshot. Each op reconstructs the network (microseconds,
// identical for both engines) because mobile runs mutate it.
func multihopScenario(name string, topoCfg topology.Config, cfg multihop.SimConfig) (scenario, error) {
	newNet := func() (*topology.Network, error) { return topology.New(topoCfg) }
	nw, err := newNet()
	if err != nil {
		return scenario{}, err
	}
	probe, err := multihop.Simulate(nw, cfg)
	if err != nil {
		return scenario{}, err
	}
	var events int64
	for _, nd := range probe.Nodes {
		events += nd.Attempts
	}
	return scenario{
		name:   name,
		events: events,
		runFast: func() error {
			nw, err := newNet()
			if err != nil {
				return err
			}
			_, err = multihop.Simulate(nw, cfg)
			return err
		},
		runRef: func() error {
			nw, err := newNet()
			if err != nil {
				return err
			}
			_, err = multihop.SimulateReference(nw, cfg)
			return err
		},
	}, nil
}

// detectionScenario measures the streaming-detection observer's cost on
// the single-hop hot loop: the same reusable engine (10 nodes at the
// efficient-NE window, one Wc*/8 cheater) is timed with a stream.Monitor
// on the observer hook ("observed") and without one ("plain") — the
// trajectories are bit-identical, so events/sec is directly comparable
// and the ratio is the observer's overhead. The returned closure
// computes the flag-latency distribution over independent seeds; run()
// calls it only when the scenario passes the -only filter.
func detectionScenario(name string, quick bool) (scenario, func() (*DetectionStats, error), error) {
	const n, expected, cheatCW = 10, 166, 20
	const windowSlots = 1500
	dur, distRuns := 30e6, 32
	if quick {
		dur, distRuns = 3e6, 8
	}
	cw := uniformCW(expected, n)
	cw[0] = cheatCW
	base := macsim.Config{
		Timing:   phy.Default().MustTiming(phy.Basic),
		MaxStage: phy.Default().MaxBackoffStage,
		CW:       cw,
		Duration: dur,
		Seed:     1,
		Gain:     1,
		Cost:     0.01,
	}
	plainEng, err := macsim.NewEngine(base)
	if err != nil {
		return scenario{}, nil, err
	}
	mon, err := stream.NewMonitor(stream.Config{
		Nodes: n, WindowSlots: windowSlots, Keep: 4,
		MaxStage: base.MaxStage, ExpectedCW: expected, Beta: 0.6,
	})
	if err != nil {
		return scenario{}, nil, err
	}
	observed := base
	observed.Observer = mon
	obsEng, err := macsim.NewEngine(observed)
	if err != nil {
		return scenario{}, nil, err
	}
	obsEng.Reset(base.Seed)
	probe := obsEng.Run()
	mon.Finish(probe.Slots)
	events := probe.SuccessEvents + probe.CollisionEvents

	sc := scenario{
		name:      name,
		events:    events,
		fastLabel: "observed",
		refLabel:  "plain",
		runFast: func() error {
			mon.Reset()
			obsEng.Reset(base.Seed)
			res := obsEng.Run()
			mon.Finish(res.Slots)
			return nil
		},
		runRef: func() error {
			plainEng.Reset(base.Seed)
			plainEng.Run()
			return nil
		},
	}
	dist := func() (*DetectionStats, error) {
		st := &DetectionStats{Scenario: name, Runs: distRuns, WindowSlots: windowSlots}
		var latencies []float64
		var flags int64
		for r := 0; r < distRuns; r++ {
			mon.Reset()
			obsEng.Reset(uint64(1000 + r))
			res := obsEng.Run()
			mon.Finish(res.Slots)
			flags += mon.Flags()
			if s := mon.FirstFlagSlot(0); s >= 0 {
				st.Flagged++
				latencies = append(latencies, float64(s))
			}
		}
		st.FlagsPerRun = float64(flags) / float64(distRuns)
		if len(latencies) > 0 {
			var sum float64
			for _, l := range latencies {
				sum += l
			}
			st.LatencyMeanSlots = sum / float64(len(latencies))
			st.LatencyP50Slots = stats.Quantile(latencies, 0.5)
			st.LatencyP90Slots = stats.Quantile(latencies, 0.9)
			st.LatencyP99Slots = stats.Quantile(latencies, 0.99)
		}
		return st, nil
	}
	return sc, dist, nil
}

// rebuildNet hides the concrete *topology.Network type so the multihop
// engine misses its `*topology.Network` probe and takes the re-snapshot
// path (AdjacencyInto per op and per mobility step) instead of binding
// the incremental adjacency view. Method promotion keeps the mobility
// and refill fast paths intact, so the two columns simulate bit-identical
// trajectories — the differential matrix pins that — and differ only in
// how adjacency is maintained.
type rebuildNet struct{ *topology.Network }

// staticMultihopScenario runs both columns over ONE shared static
// network: the delta column (plain network) binds the pooled engine's
// adjacency view on the first op and pays no adjacency work afterwards —
// the "amortised to stage 0" fast path — while the rebuild column
// re-snapshots the same network every op.
func staticMultihopScenario(name string, topoCfg topology.Config, cfg multihop.SimConfig) (scenario, error) {
	nw, err := topology.New(topoCfg)
	if err != nil {
		return scenario{}, err
	}
	probe, err := multihop.Simulate(nw, cfg)
	if err != nil {
		return scenario{}, err
	}
	var events int64
	for _, nd := range probe.Nodes {
		events += nd.Attempts
	}
	return scenario{
		name:      name,
		events:    events,
		fastLabel: "delta",
		refLabel:  "rebuild",
		runFast: func() error {
			_, err := multihop.Simulate(nw, cfg)
			return err
		},
		runRef: func() error {
			_, err := multihop.Simulate(rebuildNet{nw}, cfg)
			return err
		},
	}, nil
}

// deltaMultihopScenario pits the engine's two mobile adjacency
// maintenance paths against each other at full simulation scale: delta
// (incremental view patch per mobility step) vs rebuild (full refill per
// step). Fresh same-seed networks per op, as mobile runs mutate them.
func deltaMultihopScenario(name string, topoCfg topology.Config, cfg multihop.SimConfig) (scenario, error) {
	newNet := func() (*topology.Network, error) { return topology.New(topoCfg) }
	nw, err := newNet()
	if err != nil {
		return scenario{}, err
	}
	probe, err := multihop.Simulate(nw, cfg)
	if err != nil {
		return scenario{}, err
	}
	var events int64
	for _, nd := range probe.Nodes {
		events += nd.Attempts
	}
	return scenario{
		name:      name,
		events:    events,
		fastLabel: "delta",
		refLabel:  "rebuild",
		runFast: func() error {
			nw, err := newNet()
			if err != nil {
				return err
			}
			_, err = multihop.Simulate(nw, cfg)
			return err
		},
		runRef: func() error {
			nw, err := newNet()
			if err != nil {
				return err
			}
			_, err = multihop.Simulate(rebuildNet{nw}, cfg)
			return err
		},
	}, nil
}

// deltaStepScenario isolates the topology layer: one random-waypoint
// mobility step plus adjacency refresh, patched incrementally through
// the view (delta) vs stepped-then-refilled from the grid (rebuild), on
// twin networks walking the same PRNG trajectory. Events counts the
// directed links of the warmed-up snapshot. warmup seconds of simulated
// mobility run before measuring, so configurations with pause phases
// are sampled at their steady-state moving fraction rather than the
// everyone-mid-first-leg initial state.
func deltaStepScenario(name string, topoCfg topology.Config, dt, warmup float64) (scenario, error) {
	va, err := topology.New(topoCfg)
	if err != nil {
		return scenario{}, err
	}
	vb, err := topology.New(topoCfg)
	if err != nil {
		return scenario{}, err
	}
	for done := 0.0; done < warmup; done += 20 {
		if err := va.Step(20); err != nil {
			return scenario{}, err
		}
		if err := vb.Step(20); err != nil {
			return scenario{}, err
		}
	}
	view := va.AdjacencyView()
	var events int64
	for _, l := range view.Rows() {
		events += int64(len(l))
	}
	var buf [][]int
	buf = vb.AdjacencyInto(buf)
	return scenario{
		name:      name,
		events:    events,
		fastLabel: "delta",
		refLabel:  "rebuild",
		runFast: func() error {
			_, err := view.StepDelta(dt)
			return err
		},
		runRef: func() error {
			if err := vb.Step(dt); err != nil {
				return err
			}
			buf = vb.AdjacencyInto(buf)
			return nil
		},
	}, nil
}

// adjacencyScenario measures the topology-layer neighbor build alone:
// the cell-grid refill into reused buffers (fast) vs the pinned O(n²)
// linear scan (reference). Queries are read-only, so one network serves
// every iteration; events counts directed links built per op.
func adjacencyScenario(name string, topoCfg topology.Config) (scenario, error) {
	nw, err := topology.New(topoCfg)
	if err != nil {
		return scenario{}, err
	}
	var events int64
	for _, l := range nw.BruteForceAdjacencyLists() {
		events += int64(len(l))
	}
	var buf [][]int
	return scenario{
		name:   name,
		events: events,
		runFast: func() error {
			buf = nw.AdjacencyInto(buf)
			return nil
		},
		runRef: func() error {
			nw.BruteForceAdjacencyLists()
			return nil
		},
	}, nil
}

// scenarios assembles the suite. quick shrinks simulated durations; the
// default profile is paper-faithful (1000 s single-hop runs in the NE
// tables use the same engine; here 20 s keeps a full bench under a few
// minutes while still dominated by the hot loop).
func scenarios(quick bool) ([]scenario, func() (*DetectionStats, error), error) {
	shDur, mhDur := 20e6, 60e6 // microseconds of simulated time per op
	if quick {
		shDur, mhDur = 1e6, 1e6
	}
	var out []scenario

	s, err := macsimScenario("macsim/basic-n20-w336", 336, 20, shDur)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)
	s, err = macsimScenario("macsim/basic-n50-w879", 879, 50, shDur)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)

	// The streaming-detection observer on the same hot loop.
	s, detDist, err := detectionScenario(detectionName, quick)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)

	// Sparse 50-node network (mean degree ~4): the acceptance scenario.
	sparse := topology.Config{N: 50, Width: 1000, Height: 1000, Range: 180, Seed: 11}
	simCfg := multihop.DefaultSimConfig(mhDur, 7)
	simCfg.CW = uniformCW(116, 50)
	s, err = multihopScenario("multihop/sparse-n50-w116", sparse, simCfg)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)

	// The paper's Section VII.B mobile scenario at the converged Wm.
	paper := topology.PaperConfig(13)
	mob := multihop.DefaultSimConfig(mhDur, 9)
	mob.CW = uniformCW(26, paper.N)
	mob.MobilityEvery = 1e6
	s, err = multihopScenario("multihop/mobile-n100-w26", paper, mob)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)

	// Large-n grid scenarios: the paper's density (100 nodes in 1000 m² at
	// Range 250) held constant by growing the area with sqrt(n/100), so
	// mean degree stays ~20 while the grid gains real cells to prune.
	// Shorter stage durations keep the reference loop — O(n) work per
	// slot — tractable at these sizes.
	mh500, mh1000 := 5e6, 2e6
	if quick {
		mh500, mh1000 = 5e5, 2e5
	}
	big := topology.Config{N: 500, Width: 2236, Height: 2236, Range: 250, MaxSpeed: 5, Seed: 17}
	cfg500 := multihop.DefaultSimConfig(mh500, 17)
	cfg500.CW = uniformCW(26, 500)
	cfg500.MobilityEvery = 1e6
	s, err = multihopScenario("multihop/mobile-n500-w26", big, cfg500)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)
	huge := topology.Config{N: 1000, Width: 3162, Height: 3162, Range: 250, MaxSpeed: 5, Seed: 19}
	cfg1000 := multihop.DefaultSimConfig(mh1000, 19)
	cfg1000.CW = uniformCW(26, 1000)
	cfg1000.MobilityEvery = 5e5
	s, err = multihopScenario("multihop/mobile-n1000-w26", huge, cfg1000)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)

	// Population scale: n=5000 and n=10000 at the same density, the
	// regime the fire-slot calendar exists for — the old per-event O(n)
	// min-scan grew linearly with n while the event's real work (one
	// neighborhood) stayed constant. Durations shrink again to keep the
	// reference loop — O(n) per slot — to seconds per op.
	mh5000, mh10000 := 1e6, 5e5
	if quick {
		mh5000, mh10000 = 1e5, 5e4
	}
	giant := topology.Config{N: 5000, Width: 7071, Height: 7071, Range: 250, MaxSpeed: 5, Seed: 23}
	cfg5000 := multihop.DefaultSimConfig(mh5000, 23)
	cfg5000.CW = uniformCW(26, 5000)
	cfg5000.MobilityEvery = 5e5
	s, err = multihopScenario("multihop/mobile-n5000-w26", giant, cfg5000)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)
	colossal := topology.Config{N: 10000, Width: 10000, Height: 10000, Range: 250, MaxSpeed: 5, Seed: 29}
	cfg10000 := multihop.DefaultSimConfig(mh10000, 29)
	cfg10000.CW = uniformCW(26, 10000)
	cfg10000.MobilityEvery = 2.5e5
	s, err = multihopScenario("multihop/mobile-n10000-w26", colossal, cfg10000)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)

	// Adjacency-maintenance paths head to head. static-n1000 shares one
	// static network across every op: the delta column's pooled view is
	// built once and then free (adjacency amortised to stage 0), the
	// rebuild column re-snapshots per op. mobile-n10000-delta compares the
	// same two paths under full random-waypoint churn at the largest
	// population, and delta-vs-rebuild isolates one mobility step +
	// adjacency refresh at the topology layer.
	staticHuge := topology.Config{N: 1000, Width: 3162, Height: 3162, Range: 250, Seed: 19}
	cfgStatic := multihop.DefaultSimConfig(mh1000, 31)
	cfgStatic.CW = uniformCW(26, 1000)
	s, err = staticMultihopScenario("multihop/static-n1000", staticHuge, cfgStatic)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)
	s, err = deltaMultihopScenario("multihop/mobile-n10000-delta", colossal, cfg10000)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)
	// Two churn regimes for the micro-benchmark: continuous random
	// waypoint (every node moves every step — the patch path's worst
	// case, where per-node re-queries cost more than one bulk symmetric
	// rebuild) and the classic paused RWP (long pause phases, so only a
	// fraction of nodes move per step and the patch cost tracks the
	// change, not the population).
	s, err = deltaStepScenario("topology/delta-vs-rebuild-n1000", huge, 0.25, 0)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)
	paused := topology.Config{N: 1000, Width: 3162, Height: 3162, Range: 250, MinSpeed: 5, MaxSpeed: 20, Pause: 600, Seed: 19}
	s, err = deltaStepScenario("topology/delta-vs-rebuild-n1000-paused", paused, 0.25, 4000)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)

	// The adjacency build in isolation: how much of the n² the grid
	// actually removes at these populations.
	s, err = adjacencyScenario("topology/adjacency-n500", big)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)
	s, err = adjacencyScenario("topology/adjacency-n1000", huge)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)
	s, err = adjacencyScenario("topology/adjacency-n10000", colossal)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, s)
	return out, detDist, nil
}

// measure runs fn under testing.Benchmark and folds in the scenario's
// deterministic event count.
func measure(name, engine string, events int64, fn func() error) (EngineResult, error) {
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return EngineResult{}, fmt.Errorf("%s/%s: %w", name, engine, benchErr)
	}
	ns := float64(r.NsPerOp())
	res := EngineResult{
		Name:         name + "/" + engine,
		Engine:       engine,
		NsPerOp:      ns,
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		EventsPerRun: events,
		Iterations:   r.N,
	}
	if ns > 0 {
		res.EventsPerSec = float64(events) / (ns / 1e9)
	}
	return res, nil
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_sim.json", "output JSON file")
	quick := fs.Bool("quick", false, "shrink simulated durations (smoke profile)")
	benchtime := fs.String("benchtime", "1s", "per-benchmark time or iteration count (forwarded to the testing package, e.g. 200ms or 3x)")
	only := fs.String("only", "", "run only scenarios whose name contains this substring")
	repl := fs.Bool("replicate", false, "benchmark the replication layer instead of the engine suite (writes BENCH_replicate.json unless -out is set)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file when the run completes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
			}
		}()
	}
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return fmt.Errorf("invalid -benchtime: %w", err)
	}
	if *repl {
		target := *out
		if target == "BENCH_sim.json" {
			target = "BENCH_replicate.json"
		}
		return runReplicate(ctx, target, *quick)
	}

	suite, detDist, err := scenarios(*quick)
	if err != nil {
		return err
	}
	profile := "paper"
	if *quick {
		profile = "quick"
	}
	file := File{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Profile:    profile,
		Note: "ns/op, allocs/op, bytes/op and events/sec for the event-skipping simulator " +
			"engines (fast) vs the pinned reference loops; speedups are reference-ns / fast-ns. " +
			"Regenerate with `make bench-json`.",
		Speedups: map[string]float64{},
	}
	interrupted := false
	for _, sc := range suite {
		if *only != "" && !strings.Contains(sc.name, *only) {
			continue
		}
		// Scenarios are independent measurements, so an interrupt between
		// them still leaves a coherent (if shorter) file.
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		fastLabel, refLabel := sc.fastLabel, sc.refLabel
		if fastLabel == "" {
			fastLabel = "fast"
		}
		if refLabel == "" {
			refLabel = "reference"
		}
		fast, err := measure(sc.name, fastLabel, sc.events, sc.runFast)
		if err != nil {
			return err
		}
		ref, err := measure(sc.name, refLabel, sc.events, sc.runRef)
		if err != nil {
			return err
		}
		file.Benchmarks = append(file.Benchmarks, fast, ref)
		if fast.NsPerOp > 0 {
			file.Speedups[sc.name] = ref.NsPerOp / fast.NsPerOp
		}
		fmt.Printf("%-30s %s %12.0f ns/op %6d allocs/op %10d B/op %12.0f events/s | %s %12.0f ns/op | speedup %.2fx\n",
			sc.name, fastLabel, fast.NsPerOp, fast.AllocsPerOp, fast.BytesPerOp, fast.EventsPerSec, refLabel, ref.NsPerOp, file.Speedups[sc.name])
		if sc.name == detectionName && detDist != nil {
			st, err := detDist()
			if err != nil {
				return err
			}
			file.Detection = st
			fmt.Printf("%-30s latency over %d runs: flagged %d, mean %.0f slots, p50 %.0f, p90 %.0f, p99 %.0f, %.1f flags/run\n",
				sc.name, st.Runs, st.Flagged, st.LatencyMeanSlots, st.LatencyP50Slots, st.LatencyP90Slots, st.LatencyP99Slots, st.FlagsPerRun)
		}
	}
	if len(file.Benchmarks) == 0 {
		if interrupted {
			return fmt.Errorf("interrupted before any scenario finished: %w", ctx.Err())
		}
		return fmt.Errorf("no scenario matches -only %q", *only)
	}
	if interrupted {
		file.Note += " PARTIAL RUN: interrupted before all scenarios completed."
	}

	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	if interrupted {
		fmt.Printf("wrote %s (%d benchmarks, partial — interrupted)\n", *out, len(file.Benchmarks))
		return fmt.Errorf("interrupted: %w", ctx.Err())
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(file.Benchmarks))
	return nil
}

module selfishmac

go 1.22

# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test cover bench experiments experiments-quick fmt

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every paper table/figure into results/ (paper-faithful scale).
experiments:
	go run ./cmd/experiments -out results

experiments-quick:
	go run ./cmd/experiments -quick -out results

fmt:
	gofmt -w .

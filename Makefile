# Convenience targets; everything is plain `go` underneath.

# How long `test-fuzz` spends per fuzz target.
FUZZTIME ?= 5s

.PHONY: all build vet test test-diff test-fuzz test-race smoke-daemon cover bench bench-quick bench-json bench-replicate bench-smoke profile experiments experiments-quick fmt

all: build test test-race

build:
	go build ./...

vet:
	go vet ./...

# The default test path: vet, the full suite (which replays every fuzz
# seed corpus), the engine-equivalence matrix, then a short live-fuzz
# pass over each target.
test: vet
	go test ./...
	$(MAKE) test-diff
	$(MAKE) test-fuzz

# Differential equivalence: the event-skipping engines must reproduce
# the reference loops bit for bit across the whole config matrix
# (heterogeneous CW, per-node frame times, mobility, churn, 500/1000-node
# grid-index paths), the grid spatial index must match the brute-force
# O(n²) scan element for element, and the replication layer must
# reproduce hand-written serial loops moment for moment at every worker
# count. Already part of `go test ./...`; this target runs just the
# matrix, verbosely.
test-diff:
	go test -run='^TestDifferential' -v ./internal/macsim ./internal/multihop ./internal/replicate ./internal/topology

# `go test -fuzz` takes one target per invocation, so run them one by one.
test-fuzz:
	go test -run='^$$' -fuzz='^FuzzGeomSeriesSum$$' -fuzztime=$(FUZZTIME) ./internal/num
	go test -run='^$$' -fuzz='^FuzzBisect$$' -fuzztime=$(FUZZTIME) ./internal/num
	go test -run='^$$' -fuzz='^FuzzEstimateCWRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/detect
	go test -run='^$$' -fuzz='^FuzzMonitor$$' -fuzztime=$(FUZZTIME) ./internal/stream
	go test -run='^$$' -fuzz='^FuzzRunTerminates$$' -fuzztime=$(FUZZTIME) ./internal/search
	go test -run='^$$' -fuzz='^FuzzResilientRunTerminates$$' -fuzztime=$(FUZZTIME) ./internal/search

# The worker pools and the shared solver cache make the suite
# concurrency-heavy; run it under the race detector too.
test-race:
	go test -race ./...

# End-to-end daemon smoke under the race detector: boots selfishmacd
# in-process on an ephemeral port, runs a tiny replicate job to Done,
# overflows the queue to 429, cancels a running job, and drains on
# SIGTERM; a second boot streams a detect job's flag events over HTTP —
# plus the service package's own race-sensitive suite.
smoke-daemon:
	go test -race -run '^TestDaemon' -v ./cmd/selfishmacd
	go test -race ./internal/service

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# One iteration per benchmark: times the harness and smoke-checks every
# benchmark (including the solver-cache counters) in seconds, not minutes.
bench-quick:
	go test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# Regenerate BENCH_sim.json, the simulator perf trajectory: ns/op,
# allocs/op and events/sec for the event-skipping engines vs the pinned
# reference loops, per scenario. Commit the refreshed file with any PR
# that touches a simulator hot loop.
bench-json:
	go run ./cmd/bench -out BENCH_sim.json

# Smoke-check the bench harness itself: the smallest scenario set plus
# the adjacency delta-vs-rebuild scenarios, one iteration, quick
# durations, written to scratch files (never clobbers the committed
# BENCH_sim.json). CI runs this to catch scenario-setup bit-rot without
# asserting anything about timing.
bench-smoke:
	go run ./cmd/bench -quick -benchtime 1x -only macsim -out /tmp/bench-smoke.json
	go run ./cmd/bench -quick -benchtime 1x -only delta -out /tmp/bench-smoke-delta.json

# Capture CPU and heap profiles of the n=1000 multihop scenario (the
# fire-slot calendar's home turf). Inspect with `go tool pprof cpu.pprof`.
profile:
	go run ./cmd/bench -quick -only mobile-n1000-w26 -benchtime 5x \
		-cpuprofile cpu.pprof -memprofile mem.pprof -out /tmp/bench-profile.json
	@echo "wrote cpu.pprof and mem.pprof"

# Regenerate BENCH_replicate.json, the replication-layer trajectory:
# fresh vs reused engine allocs/op, fixed-R wall-clock at 1/2/4/8
# workers plus the honest workers=NumCPU saturation row (speedup is
# bounded by GOMAXPROCS — the file records both), and adaptive-vs-fixed
# replication counts. Commit the refreshed file with any PR that
# touches internal/replicate or the engine lifecycles.
bench-replicate:
	go run ./cmd/bench -replicate -out BENCH_replicate.json

# Regenerate every paper table/figure into results/ (paper-faithful scale).
experiments:
	go run ./cmd/experiments -out results

experiments-quick:
	go run ./cmd/experiments -quick -out results

fmt:
	gofmt -w .

# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test test-race cover bench bench-quick experiments experiments-quick fmt

all: build vet test test-race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# The worker pools and the shared solver cache make the suite
# concurrency-heavy; run it under the race detector too.
test-race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# One iteration per benchmark: times the harness and smoke-checks every
# benchmark (including the solver-cache counters) in seconds, not minutes.
bench-quick:
	go test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# Regenerate every paper table/figure into results/ (paper-faithful scale).
experiments:
	go run ./cmd/experiments -out results

experiments-quick:
	go run ./cmd/experiments -quick -out results

fmt:
	gofmt -w .

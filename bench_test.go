package selfishmac_test

// bench_test.go is the benchmark harness mandated by DESIGN.md: one
// testing.B benchmark per paper table/figure (plus the analytical
// experiments). Each benchmark regenerates its artifact through
// internal/experiments at the quick profile and reports the headline
// numbers as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// both times the harness and prints the reproduced values. cmd/experiments
// runs the same experiments at the paper-faithful profile and writes the
// full artifacts under results/.

import (
	"context"
	"testing"

	"selfishmac/internal/bianchi"
	"selfishmac/internal/experiments"
)

// runExperiment executes one experiment per benchmark iteration and
// reports the chosen metrics.
func runExperiment(b *testing.B, run func(context.Context, experiments.Settings) (*experiments.Report, error), metrics ...string) {
	b.Helper()
	s := experiments.QuickSettings()
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = run(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		v, ok := rep.Metrics[m]
		if !ok {
			b.Fatalf("experiment did not produce metric %q", m)
		}
		b.ReportMetric(v, m)
	}
}

// BenchmarkTable1Parameters regenerates Table I (parameter set and the
// derived Ts/Tc channel-hold durations).
func BenchmarkTable1Parameters(b *testing.B) {
	runExperiment(b, experiments.Table1, "ts_basic_us", "tc_basic_us", "ts_rtscts_us", "tc_rtscts_us")
}

// BenchmarkTable2BasicNE regenerates Table II: the efficient NE for basic
// access at n = 5, 20, 50 (paper: 76, 336, 879), analytic and simulated.
func BenchmarkTable2BasicNE(b *testing.B) {
	runExperiment(b, experiments.Table2,
		"n5_theory_wc", "n20_theory_wc", "n50_theory_wc",
		"n5_sim_mean", "n20_sim_mean", "n50_sim_mean")
}

// BenchmarkTable3RTSCTSNE regenerates Table III: the efficient NE for
// RTS/CTS at n = 5, 20, 50 (paper: 22, 48, 116).
func BenchmarkTable3RTSCTSNE(b *testing.B) {
	runExperiment(b, experiments.Table3,
		"n5_theory_wc", "n20_theory_wc", "n50_theory_wc",
		"n20_sim_mean", "n50_sim_mean")
}

// BenchmarkFigure2BasicSweep regenerates Figure 2: normalized global
// payoff U/C versus the common CW, basic access.
func BenchmarkFigure2BasicSweep(b *testing.B) {
	runExperiment(b, experiments.Figure2,
		"n5_peak_w", "n20_peak_w", "n50_peak_w", "n20_retention_2x")
}

// BenchmarkFigure3RTSCTSSweep regenerates Figure 3: the same sweep under
// RTS/CTS, whose plateau is nearly flat.
func BenchmarkFigure3RTSCTSSweep(b *testing.B) {
	runExperiment(b, experiments.Figure3,
		"n5_peak_w", "n20_peak_w", "n50_peak_w", "n20_retention_2x")
}

// BenchmarkMultihopQuasiOptimality regenerates the Section VII.B mobile
// multi-hop experiment (paper: Wm = 26, per-node >= 96%, global >= 97%).
func BenchmarkMultihopQuasiOptimality(b *testing.B) {
	runExperiment(b, experiments.MultihopQuasiOptimality,
		"wm", "global_ratio", "mean_per_node_ratio", "tft_stages")
}

// BenchmarkHiddenNodeInvariance regenerates the Section VI.A check that
// the hidden-node factor p_hn is roughly CW-independent.
func BenchmarkHiddenNodeInvariance(b *testing.B) {
	runExperiment(b, experiments.HiddenNodeInvariance, "phn_min", "phn_max", "phn_spread")
}

// BenchmarkNESearch regenerates the Section V.C search-protocol study
// (paper walk vs accelerated variant, exact and lossy media).
func BenchmarkNESearch(b *testing.B) {
	runExperiment(b, experiments.SearchAlgorithm,
		"exact_paper_w0_4_probes", "exact_accel_w0_4_probes", "exact_accel_w0_4_payoff_ratio")
}

// BenchmarkShortSightedImpact regenerates the Section V.D deviation
// analysis across discount factors and reaction lags.
func BenchmarkShortSightedImpact(b *testing.B) {
	runExperiment(b, experiments.ShortSighted,
		"myopic_best_ws", "myopic_gain_ratio", "myopic_global_loss", "patient_gain_ratio")
}

// BenchmarkMaliciousImpact regenerates the Section V.E attack analysis.
func BenchmarkMaliciousImpact(b *testing.B) {
	runExperiment(b, experiments.Malicious, "m0_w1_paralyzed", "m6_w4_damage_frac")
}

// BenchmarkLemmaChecks regenerates the randomized Lemma 1/4 ordering
// verification (violation counts; expected zero).
func BenchmarkLemmaChecks(b *testing.B) {
	runExperiment(b, experiments.LemmaChecks,
		"lemma1_violations_basic", "lemma4_violations_basic",
		"lemma1_violations_rtscts", "lemma4_violations_rtscts")
}

// BenchmarkTFTConvergence regenerates the TFT/GTFT convergence and
// noise-tolerance study.
func BenchmarkTFTConvergence(b *testing.B) {
	runExperiment(b, experiments.TFTConvergence,
		"tft_converged_stage", "noisy_tft_final", "noisy_gtft_final")
}

// BenchmarkBackoffStageAblation regenerates the m-sensitivity ablation
// (the paper leaves its maximum backoff stage unstated).
func BenchmarkBackoffStageAblation(b *testing.B) {
	runExperiment(b, experiments.BackoffStageAblation, "basic_wc_spread_frac")
}

// BenchmarkCostTermAblation regenerates the e-term ablation: CW drift of
// the exact-utility NE vs the paper's e<<g point, and the (negligible)
// payoff gap between them.
func BenchmarkCostTermAblation(b *testing.B) {
	runExperiment(b, experiments.CostTermAblation,
		"rtscts_n20_cw_drift", "rtscts_n20_payoff_gap", "basic_n20_payoff_gap")
}

// BenchmarkRateControlExtension regenerates the packet-size game the
// paper's conclusion proposes (price of anarchy, TFT recovery).
func BenchmarkRateControlExtension(b *testing.B) {
	runExperiment(b, experiments.RateControl,
		"basic_poa", "rtscts_poa", "basic_tft_gain")
}

// BenchmarkDetection regenerates the CW-estimation/misbehavior-detection
// study backing the paper's observability assumption.
func BenchmarkDetection(b *testing.B) {
	runExperiment(b, experiments.Detection, "true_positive_rate", "false_positives_total")
}

// BenchmarkPopulationMix regenerates the myopic-fraction sweep (the
// dynamic reconciliation with the paper's ref [2]).
func BenchmarkPopulationMix(b *testing.B) {
	runExperiment(b, experiments.PopulationMix,
		"k0_retention", "k1_retention", "k1_converged_cw")
}

// BenchmarkClosedLoop regenerates the estimated-observation dynamic
// (TFT ratchets under honest measurement; GTFT stabilizes the NE).
func BenchmarkClosedLoop(b *testing.B) {
	runExperiment(b, experiments.ClosedLoop,
		"tft_10s_final_min_cw", "gtft_10s_final_min_cw", "wcstar")
}

// BenchmarkGTFTTradeoff regenerates the tolerance/deterrence trade-off
// grid (reaction lag and cheater profit vs r0, beta).
func BenchmarkGTFTTradeoff(b *testing.B) {
	runExperiment(b, experiments.GTFTTradeoff,
		"r01_beta0.8_lag", "r08_beta0.8_lag", "r08_beta0.8_gain")
}

// BenchmarkStreamingDetection regenerates D4: online detection latency
// and TP/FP rates over heterogeneous population mixes and Beta settings.
func BenchmarkStreamingDetection(b *testing.B) {
	runExperiment(b, experiments.StreamingDetection,
		"malicious_b50_latency_slots", "malicious_b50_tpr", "honest_b50_fpr")
}

// BenchmarkDelayAnalysis regenerates the Section VIII delay study.
func BenchmarkDelayAnalysis(b *testing.B) {
	runExperiment(b, experiments.DelayAnalysis,
		"basic_n20_delay_at_ne_ms", "basic_n20_payoff_ratio_at_delay_min")
}

// BenchmarkSolverCache measures the memoized Bianchi solver on the
// figure-style workload that motivates it: the same (w, n) grid solved
// repeatedly, as the sweep experiments do across populations and modes.
// It reports the cache hit/miss counters accumulated over the run; after
// the first grid pass every solve is a hit, so hits/op approaches the
// grid size while misses/op approaches zero.
func BenchmarkSolverCache(b *testing.B) {
	s := experiments.QuickSettings()
	if _, err := experiments.Figure2(context.Background(), s); err != nil { // warm the cache once
		b.Fatal(err)
	}
	h0, m0 := bianchi.CacheStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	h1, m1 := bianchi.CacheStats()
	b.ReportMetric(float64(h1-h0)/float64(b.N), "cache-hits/op")
	b.ReportMetric(float64(m1-m0)/float64(b.N), "cache-misses/op")
}

// TestSolverCacheEffectiveness pins the acceptance criterion for the
// memoization: a repeated analytic sweep must be served at least 2x more
// from the cache than from fresh fixed-point solves.
func TestSolverCacheEffectiveness(t *testing.T) {
	bianchi.ResetCache()
	s := experiments.QuickSettings()
	for round := 0; round < 3; round++ {
		if _, err := experiments.Figure2(context.Background(), s); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := bianchi.CacheStats()
	if misses == 0 {
		t.Fatal("sweep performed no solves")
	}
	if hits < 2*misses {
		t.Errorf("cache ineffective: %d hits < 2x %d misses", hits, misses)
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"selfishmac/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %g, want 5", w.Mean())
	}
	if !almostEq(w.PopVariance(), 4, 1e-12) {
		t.Errorf("population variance = %g, want 4", w.PopVariance())
	}
	if !almostEq(w.Variance(), 32.0/7, 1e-12) {
		t.Errorf("sample variance = %g, want 32/7", w.Variance())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %g/%g, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Fatalf("single sample: mean=%g var=%g, want 3, 0", w.Mean(), w.Variance())
	}
}

// Property: Welford agrees with the two-pass formulas on random data.
func TestWelfordMatchesTwoPassProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		r := rng.New(seed)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.UniformRange(-100, 100)
			w.Add(xs[i])
		}
		return almostEq(w.Mean(), Mean(xs), 1e-9) &&
			almostEq(w.Variance(), Variance(xs), 1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordSnapshotString(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(2)
	s := w.Snapshot()
	if s.N != 2 || s.Mean != 1.5 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestMeanSumVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if Sum(xs) != 10 {
		t.Errorf("Sum = %g", Sum(xs))
	}
	if !almostEq(Variance(xs), 5.0/3, 1e-12) {
		t.Errorf("Variance = %g, want 5/3", Variance(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty-slice aggregates should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%g, %g), want (-1, 7)", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(nil) did not panic")
		}
	}()
	MinMax(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantile mutated its input")
	}
	if Median(xs) != 3 {
		t.Errorf("Median = %g", Median(xs))
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(q=%g) did not panic", q)
				}
			}()
			Quantile([]float64{1}, q)
		}()
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, c := range wantCounts {
		if h.Counts[i] != c {
			t.Errorf("bin %d count = %d, want %d (all: %v)", i, h.Counts[i], c, h.Counts)
		}
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if !almostEq(h.BinCenter(0), 1, 1e-12) {
		t.Errorf("BinCenter(0) = %g, want 1", h.BinCenter(0))
	}
	if !almostEq(h.Mode(), 1, 1e-12) {
		t.Errorf("Mode = %g, want 1", h.Mode())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("bins=0 accepted")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("empty range accepted")
	}
}

func TestHistogramEdgeRoundoff(t *testing.T) {
	h, err := NewHistogram(0, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 0.3 - epsilon style values must not index out of range.
	h.Add(math.Nextafter(0.3, 0))
	if Sum64(h.Counts) != 1 {
		t.Fatalf("edge sample lost: %v", h.Counts)
	}
}

// Sum64 sums an int slice (test helper).
func Sum64(xs []int) int {
	var s int
	for _, x := range xs {
		s += x
	}
	return s
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b := LinearFit(xs, ys)
	if !almostEq(a, 1, 1e-12) || !almostEq(b, 2, 1e-12) {
		t.Fatalf("fit = (%g, %g), want (1, 2)", a, b)
	}
}

func TestLinearFitNoise(t *testing.T) {
	r := rng.New(99)
	n := 2000
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = r.UniformRange(0, 10)
		ys[i] = -2 + 0.5*xs[i] + 0.01*r.NormFloat64()
	}
	a, b := LinearFit(xs, ys)
	if !almostEq(a, -2, 0.01) || !almostEq(b, 0.5, 0.01) {
		t.Fatalf("fit = (%g, %g), want (-2, 0.5)", a, b)
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Errorf("RelErr(110,100) = %g", RelErr(110, 100))
	}
	if RelErr(0.5, 0) != 0.5 {
		t.Errorf("RelErr(0.5,0) = %g", RelErr(0.5, 0))
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); !almostEq(got, 1, 1e-12) {
		t.Errorf("equal shares index = %g, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); !almostEq(got, 0.25, 1e-12) {
		t.Errorf("monopoly index = %g, want 1/n = 0.25", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero index = %g, want 1", got)
	}
	// Intermediate case: (1+3)^2 / (2*(1+9)) = 16/20 = 0.8.
	if got := JainIndex([]float64{1, 3}); !almostEq(got, 0.8, 1e-12) {
		t.Errorf("index = %g, want 0.8", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("JainIndex(nil) did not panic")
		}
	}()
	JainIndex(nil)
}

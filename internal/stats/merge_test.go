package stats

import (
	"math"
	"testing"

	"selfishmac/internal/rng"
)

// mergeTol is the agreement required between merged-split moments and the
// single-stream accumulator: the pairwise combination is algebraically
// exact, so only float rounding separates them.
const mergeTol = 1e-12

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(scale, 1)
}

// TestMergeEqualsSingleStream is the property test: for random sample sets
// and every split point, Merge(prefix, suffix) must reproduce the
// single-stream moments to 1e-12 (and min/max/count exactly).
func TestMergeEqualsSingleStream(t *testing.T) {
	src := rng.New(42)
	for trial := 0; trial < 50; trial++ {
		n := 2 + src.Intn(60)
		xs := make([]float64, n)
		scale := math.Pow(10, float64(src.Intn(7))-3) // spreads across magnitudes
		for i := range xs {
			xs[i] = scale * (src.NormFloat64() + 5*src.Float64())
		}
		var whole Welford
		for _, x := range xs {
			whole.Add(x)
		}
		for split := 0; split <= n; split++ {
			var a, b Welford
			for _, x := range xs[:split] {
				a.Add(x)
			}
			for _, x := range xs[split:] {
				b.Add(x)
			}
			a.Merge(b)
			if a.N() != whole.N() {
				t.Fatalf("trial %d split %d: N = %d, want %d", trial, split, a.N(), whole.N())
			}
			if a.Min() != whole.Min() || a.Max() != whole.Max() {
				t.Fatalf("trial %d split %d: min/max (%g, %g) != (%g, %g)",
					trial, split, a.Min(), a.Max(), whole.Min(), whole.Max())
			}
			if !relClose(a.Mean(), whole.Mean(), mergeTol) {
				t.Fatalf("trial %d split %d: mean %g != %g", trial, split, a.Mean(), whole.Mean())
			}
			if !relClose(a.Variance(), whole.Variance(), mergeTol) {
				t.Fatalf("trial %d split %d: variance %g != %g", trial, split, a.Variance(), whole.Variance())
			}
		}
	}
}

// Merging many blocks pairwise in sequence (the replication controller's
// round-by-round fold) must also match the single stream.
func TestMergeManyBlocks(t *testing.T) {
	src := rng.New(7)
	xs := make([]float64, 97)
	for i := range xs {
		xs[i] = src.UniformRange(-3, 9)
	}
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	var acc Welford
	for lo := 0; lo < len(xs); {
		hi := lo + 1 + src.Intn(13)
		if hi > len(xs) {
			hi = len(xs)
		}
		var blk Welford
		for _, x := range xs[lo:hi] {
			blk.Add(x)
		}
		acc.Merge(blk)
		lo = hi
	}
	if acc.N() != whole.N() || acc.Min() != whole.Min() || acc.Max() != whole.Max() {
		t.Fatalf("counts/extrema diverged: %+v vs %+v", acc.Snapshot(), whole.Snapshot())
	}
	if !relClose(acc.Mean(), whole.Mean(), mergeTol) || !relClose(acc.Variance(), whole.Variance(), mergeTol) {
		t.Fatalf("moments diverged: %+v vs %+v", acc.Snapshot(), whole.Snapshot())
	}
}

// Empty operands are identities in both positions — including min/max,
// which a naive merge would clobber with the empty accumulator's zeros.
func TestMergeEmptyIdentity(t *testing.T) {
	var a Welford
	a.Add(3)
	a.Add(5)
	before := a.Snapshot()
	a.Merge(Welford{})
	if a.Snapshot() != before {
		t.Fatalf("merging an empty accumulator changed the result: %+v vs %+v", a.Snapshot(), before)
	}
	var empty Welford
	var b Welford
	b.Add(-2)
	b.Add(4)
	empty.Merge(b)
	if empty.Snapshot() != b.Snapshot() {
		t.Fatalf("merge into empty lost state: %+v vs %+v", empty.Snapshot(), b.Snapshot())
	}
	if empty.Min() != -2 || empty.Max() != 4 {
		t.Fatalf("merge into empty lost extrema: min %g max %g", empty.Min(), empty.Max())
	}
}

// Package stats provides the descriptive statistics the experiment harness
// reports: streaming moments (Welford), quantiles, histograms, confidence
// intervals, and simple aggregation over slices.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates count, mean and variance in a single numerically
// stable pass. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds another accumulator into w using the pairwise combination
// of Chan, Golub & LeVeque, so moments accumulated over disjoint splits
// of a sample agree with the single-stream result up to rounding. It is
// the building block of the parallel replication controller
// (internal/replicate): per-replica moments merge in a fixed order,
// making the merged statistics independent of worker count.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	nA, nB := float64(w.n), float64(o.n)
	total := nA + nB
	delta := o.mean - w.mean
	w.mean += delta * nB / total
	w.m2 += o.m2 + delta*delta*nA*nB/total
	w.n += o.n
}

// N returns the number of samples.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// PopVariance returns the population variance (0 for n < 1).
func (w *Welford) PopVariance() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample (0 for an empty accumulator).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 for an empty accumulator).
func (w *Welford) Max() float64 { return w.max }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// CI95 returns the half-width of an approximate 95% normal confidence
// interval on the mean.
func (w *Welford) CI95() float64 { return 1.96 * w.StdErr() }

// Summary is a value snapshot of a Welford accumulator, convenient for
// returning from measurement functions.
type Summary struct {
	N        int
	Mean     float64
	Variance float64
	StdDev   float64
	Min      float64
	Max      float64
	CI95     float64
}

// Snapshot returns the accumulator's summary.
func (w *Welford) Snapshot() Summary {
	return Summary{
		N:        w.n,
		Mean:     w.Mean(),
		Variance: w.Variance(),
		StdDev:   w.StdDev(),
		Min:      w.min,
		Max:      w.max,
		CI95:     w.CI95(),
	}
}

// String renders the summary as "mean ± ci95 (n=..)".
func (s Summary) String() string {
	return fmt.Sprintf("%.6g ± %.2g (n=%d)", s.Mean, s.CI95, s.N)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for len < 2).
func Variance(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Variance()
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// MinMax returns the extrema of xs. It panics on empty input because a
// min/max of nothing is a programming error at every call site here.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax on empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
// It panics on empty input or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile on empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q = %g outside [0, 1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // samples below Lo
	Over     int // samples >= Hi
	binWidth float64
	total    int
}

// NewHistogram builds a histogram with bins equal-width bins over [lo, hi).
// It returns an error for a non-positive bin count or an empty range.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: NewHistogram: bins = %d must be positive", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: NewHistogram: empty range [%g, %g)", lo, hi)
	}
	return &Histogram{
		Lo: lo, Hi: hi,
		Counts:   make([]int, bins),
		binWidth: (hi - lo) / float64(bins),
	}, nil
}

// Add folds x into the histogram.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Counts) { // float round-off at the upper edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples added, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}

// Mode returns the center of the most populated bin (ties: lowest bin).
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// LinearFit fits y = a + b*x by least squares and returns (a, b).
// It panics if the inputs differ in length or have fewer than 2 points.
func LinearFit(xs, ys []float64) (a, b float64) {
	if len(xs) != len(ys) {
		panic("stats: LinearFit length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: LinearFit needs at least 2 points")
	}
	n := float64(len(xs))
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		panic("stats: LinearFit with constant x")
	}
	b = sxy / sxx
	a = my - b*mx
	_ = n
	return a, b
}

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) for a
// non-negative allocation vector: 1 means perfectly equal shares, 1/n
// means one node takes everything. It panics on empty input; an all-zero
// allocation returns 1 (vacuously fair).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: JainIndex on empty slice")
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// RelErr returns |got-want|/|want|, or |got| when want == 0.
func RelErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestReseedMatchesNew(t *testing.T) {
	var s Source
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		s.Reseed(seed)
		fresh := New(seed)
		for i := 0; i < 100; i++ {
			if got, want := s.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: Reseed diverged from New: %d != %d", seed, i, got, want)
			}
		}
	}
	// Reseeding a used source fully resets it.
	s.Reseed(7)
	s.Uint64()
	s.Reseed(7)
	if got, want := s.Uint64(), New(7).Uint64(); got != want {
		t.Fatalf("Reseed of a used source did not reset: %d != %d", got, want)
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams from distinct seeds collided %d/1000 times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.State() == ([4]uint64{}) {
		t.Fatal("seed 0 produced the invalid all-zero state")
	}
	// The stream must not be constant.
	if r.Uint64() == r.Uint64() {
		t.Fatal("seed 0 produced a constant stream")
	}
}

func TestNewFromState(t *testing.T) {
	r := New(7)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	st := r.State()
	clone, err := NewFromState(st)
	if err != nil {
		t.Fatalf("NewFromState: %v", err)
	}
	for i := 0; i < 100; i++ {
		if got, want := clone.Uint64(), r.Uint64(); got != want {
			t.Fatalf("draw %d after restore: %d != %d", i, got, want)
		}
	}
}

func TestNewFromStateRejectsZero(t *testing.T) {
	if _, err := NewFromState([4]uint64{}); err == nil {
		t.Fatal("NewFromState accepted the all-zero state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %g by more than 5 sigma", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniformRange(t *testing.T) {
	r := New(8)
	for i := 0; i < 10000; i++ {
		v := r.UniformRange(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("UniformRange(-3,5) = %g out of range", v)
		}
	}
	// Degenerate range is allowed and returns lo.
	if v := r.UniformRange(2, 2); v != 2 {
		t.Fatalf("UniformRange(2,2) = %g, want 2", v)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(10)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative value %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %g, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitDecorrelated(t *testing.T) {
	parent := New(12)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("parent and split child collided %d/1000 times", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	a := New(13).Split()
	b := New(13).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not reproducible for equal parents")
		}
	}
}

// Property: Intn always lands inside its bound for arbitrary seeds/bounds.
func TestIntnProperty(t *testing.T) {
	f := func(seed uint64, bound uint16) bool {
		n := int(bound%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: State/NewFromState round-trips exactly for arbitrary seeds.
func TestStateRoundTripProperty(t *testing.T) {
	f := func(seed uint64, skip uint8) bool {
		r := New(seed)
		for i := 0; i < int(skip); i++ {
			r.Uint64()
		}
		clone, err := NewFromState(r.State())
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			if clone.Uint64() != r.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Float64()
	}
	_ = sink
}

package rng

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(1, "F2", 3)
	b := DeriveSeed(1, "F2", 3)
	if a != b {
		t.Fatalf("same inputs gave %d and %d", a, b)
	}
}

// TestDeriveSeedNoCollisions checks the property the ad-hoc base+offset
// scheme lacked: across a realistic grid of (base, stream, index) triples
// — including streams with shared prefixes and adjacent bases whose
// offsets used to overlap — every derived seed is distinct.
func TestDeriveSeedNoCollisions(t *testing.T) {
	bases := []uint64{0, 1, 2, 5, 99, 100, 101, 1 << 40}
	streams := []string{"", "F2", "F3", "F2-sim", "T2", "T2-sim", "M1", "M1-engine", "multihop.replica"}
	seen := make(map[uint64][3]interface{})
	for _, b := range bases {
		for _, s := range streams {
			for idx := 0; idx < 64; idx++ {
				got := DeriveSeed(b, s, idx)
				key := [3]interface{}{b, s, idx}
				if prev, dup := seen[got]; dup {
					t.Fatalf("collision: %v and %v both derive %d", prev, key, got)
				}
				seen[got] = key
			}
		}
	}
}

// TestDeriveSeedDecorrelatedStreams seeds two sources from adjacent
// indexes of one stream family and checks the outputs do not correlate —
// the failure mode of `seed+i` arithmetic feeding splitmix-adjacent
// states is exactly what DeriveSeed exists to prevent, so demand full
// divergence.
func TestDeriveSeedDecorrelatedStreams(t *testing.T) {
	a := New(DeriveSeed(1, "figure-sim", 0))
	b := New(DeriveSeed(1, "figure-sim", 1))
	matches := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches != 0 {
		t.Fatalf("%d/1000 identical outputs between sibling streams", matches)
	}
}

func TestDeriveSeedIndexAndStreamBothMatter(t *testing.T) {
	base := uint64(7)
	if DeriveSeed(base, "a", 0) == DeriveSeed(base, "a", 1) {
		t.Error("index ignored")
	}
	if DeriveSeed(base, "a", 0) == DeriveSeed(base, "b", 0) {
		t.Error("stream label ignored")
	}
	if DeriveSeed(1, "a", 0) == DeriveSeed(2, "a", 0) {
		t.Error("base ignored")
	}
}

// Package rng provides deterministic, splittable pseudo-random number
// generation for reproducible simulations.
//
// Every experiment in this repository is seeded, and re-running a binary
// with the same seed reproduces the same trajectory bit-for-bit. The
// package implements splitmix64 (for seeding) and xoshiro256** (for the
// stream) so that results do not depend on the Go runtime's unexported
// random source and remain stable across Go releases.
package rng

import (
	"errors"
	"fmt"
	"math"
)

// Source is a deterministic xoshiro256** PRNG.
//
// The zero value is not a valid source (its state would be all zeros, a
// fixed point of xoshiro); construct one with New or NewFromState. Source
// is not safe for concurrent use; give each goroutine its own stream via
// Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, as recommended by
// the xoshiro authors. Distinct seeds produce decorrelated streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed reinitialises r in place from seed, exactly as New would. It
// performs no allocation, which lets hot paths (the simulator engines)
// embed a Source by value and reset it between runs.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// All-zero state is invalid; splitmix64 cannot produce four zero
	// outputs in a row, but guard against it for defence in depth.
	if r.s == [4]uint64{} {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// NewFromState restores a Source from a state previously returned by State.
// It returns an error if the state is all zeros (invalid for xoshiro).
func NewFromState(state [4]uint64) (*Source, error) {
	if state == [4]uint64{} {
		return nil, errors.New("rng: all-zero state is invalid")
	}
	return &Source{s: state}, nil
}

// State returns the internal state, suitable for checkpointing.
func (r *Source) State() [4]uint64 { return r.s }

// splitmix64 advances a splitmix64 state and returns the new state and
// the output value.
func splitmix64(x uint64) (next, out uint64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return x, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// DeriveSeed deterministically derives a decorrelated stream seed from a
// base seed, a textual stream label, and an index within that stream
// family. It replaces ad-hoc `base + offset` seed arithmetic, whose
// overlapping offsets silently make distinct experiments reuse PRNG
// streams: two calls differing in any of (base, stream, index) yield
// unrelated seeds, while the same triple always yields the same seed.
func DeriveSeed(base uint64, stream string, index int) uint64 {
	// FNV-1a over the stream label separates stream families even when
	// their labels share a prefix.
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= fnvPrime
	}
	// Two splitmix64 rounds — one before and one after folding in the
	// index — avalanche single-bit differences in any component across
	// the whole output word.
	_, mixed := splitmix64(base ^ h)
	_, out := splitmix64(mixed + uint64(index)*0x9e3779b97f4a7c15)
	return out
}

// Split returns a new Source whose stream is decorrelated from r.
// It consumes entropy from r, so calling Split in a fixed order yields a
// reproducible tree of streams.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0,
// mirroring math/rand's contract.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n = %d", n))
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method (unbiased).
func (r *Source) boundedUint64(n uint64) uint64 {
	v := r.Uint64()
	hi, lo := mul64(v, n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// UniformRange returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *Source) UniformRange(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("rng: UniformRange called with inverted range [%g, %g)", lo, hi))
	}
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method (deterministic given the stream, no tables).
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Source) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) as a slice of ints.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, with the
// Fisher-Yates algorithm. It panics if n < 0.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle called with negative n")
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

package ratecontrol

// simcheck_test.go cross-validates the rate-control game's analytic slot
// accounting against the event-driven MAC simulator: replay a payload
// profile with per-node channel holds and compare the deviator's measured
// payoff rate with DeviatorUtility.

import (
	"testing"

	"selfishmac/internal/macsim"
	"selfishmac/internal/phy"
	"selfishmac/internal/stats"
)

func TestDeviatorUtilityMatchesSimulation(t *testing.T) {
	const (
		n     = 10
		w     = 336
		lDev  = 12000.0
		lBase = 4000.0
	)
	cfg := DefaultConfig(n, w, phy.Basic)
	cfg.BER = 0 // the simulator does not model bit errors
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Build the per-node hold overrides for the (lDev; lBase...) profile.
	cw := make([]int, n)
	ts := make([]float64, n)
	tc := make([]float64, n)
	for i := range cw {
		cw[i] = w
		L := lBase
		if i == 0 {
			L = lDev
		}
		ts[i], tc[i] = g.HoldTimes(L)
	}
	res, err := macsim.Run(macsim.Config{
		Timing:    cfg.PHY.MustTiming(phy.Basic),
		MaxStage:  cfg.PHY.MaxBackoffStage,
		CW:        cw,
		Duration:  300e6,
		Seed:      7,
		Gain:      cfg.GainPerBit * lDev, // per-packet gain of the deviator
		Cost:      cfg.CostPerAttempt,
		PerNodeTs: ts,
		PerNodeTc: tc,
	})
	if err != nil {
		t.Fatal(err)
	}
	simPayoff := res.Nodes[0].PayoffRate
	analytic := g.DeviatorUtility(lDev, lBase)
	if rel := stats.RelErr(simPayoff, analytic); rel > 0.05 {
		t.Fatalf("deviator payoff: sim %g vs analytic %g (rel %.3f)", simPayoff, analytic, rel)
	}
}

func TestUniformUtilityMatchesSimulation(t *testing.T) {
	const (
		n = 10
		w = 336
		L = 8184.0
	)
	cfg := DefaultConfig(n, w, phy.Basic)
	cfg.BER = 0
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tsL, tcL := g.HoldTimes(L)
	cw := make([]int, n)
	ts := make([]float64, n)
	tc := make([]float64, n)
	for i := range cw {
		cw[i], ts[i], tc[i] = w, tsL, tcL
	}
	res, err := macsim.Run(macsim.Config{
		Timing:    cfg.PHY.MustTiming(phy.Basic),
		MaxStage:  cfg.PHY.MaxBackoffStage,
		CW:        cw,
		Duration:  300e6,
		Seed:      9,
		Gain:      cfg.GainPerBit * L,
		Cost:      cfg.CostPerAttempt,
		PerNodeTs: ts,
		PerNodeTc: tc,
	})
	if err != nil {
		t.Fatal(err)
	}
	var simMean float64
	for _, nd := range res.Nodes {
		simMean += nd.PayoffRate
	}
	simMean /= n
	analytic := g.UniformUtility(L)
	if rel := stats.RelErr(simMean, analytic); rel > 0.03 {
		t.Fatalf("uniform payoff: sim %g vs analytic %g (rel %.3f)", simMean, analytic, rel)
	}
}

package ratecontrol

import (
	"math"
	"testing"

	"selfishmac/internal/num"
	"selfishmac/internal/phy"
)

func mustGame(t testing.TB, n, w int, mode phy.AccessMode) *Game {
	t.Helper()
	g, err := NewGame(DefaultConfig(n, w, mode))
	if err != nil {
		t.Fatalf("NewGame: %v", err)
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(10, 336, phy.Basic)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"one player", func(c *Config) { c.N = 1 }},
		{"zero W", func(c *Config) { c.W = 0 }},
		{"bad mode", func(c *Config) { c.Mode = 0 }},
		{"zero gain", func(c *Config) { c.GainPerBit = 0 }},
		{"negative cost", func(c *Config) { c.CostPerAttempt = -1 }},
		{"ber 1", func(c *Config) { c.BER = 1 }},
		{"inverted bounds", func(c *Config) { c.LMin = 100; c.LMax = 50 }},
		{"bad phy", func(c *Config) { c.PHY.BitRate = 0 }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultConfig(10, 336, phy.Basic)
			tc.mut(&c)
			if err := c.Validate(); err == nil {
				t.Fatalf("accepted %s", tc.name)
			}
			if _, err := NewGame(c); err == nil {
				t.Fatalf("NewGame accepted %s", tc.name)
			}
		})
	}
}

func TestChannelHoldsMatchPHY(t *testing.T) {
	g := mustGame(t, 10, 336, phy.Basic)
	// With the paper's payload, ts/tc must equal the phy-derived values.
	tm := phy.Default().MustTiming(phy.Basic)
	if got := g.ts(8184); math.Abs(got-tm.Ts) > 1e-9 {
		t.Errorf("ts(8184) = %g, want %g", got, tm.Ts)
	}
	if got := g.tc(8184); math.Abs(got-tm.Tc) > 1e-9 {
		t.Errorf("tc(8184) = %g, want %g", got, tm.Tc)
	}
	// RTS/CTS collision cost must be payload-independent.
	gr := mustGame(t, 10, 47, phy.RTSCTS)
	if gr.tc(256) != gr.tc(32768) {
		t.Errorf("RTS/CTS tc depends on payload: %g vs %g", gr.tc(256), gr.tc(32768))
	}
}

func TestUniformUtilityInteriorOptimum(t *testing.T) {
	g := mustGame(t, 10, 336, phy.Basic)
	lSoc, uSoc, err := g.SocialOptimum()
	if err != nil {
		t.Fatal(err)
	}
	cfg := g.Config()
	if lSoc <= cfg.LMin+1 || lSoc >= cfg.LMax-1 {
		t.Fatalf("social optimum %g is not interior in [%g, %g]", lSoc, cfg.LMin, cfg.LMax)
	}
	if uSoc <= 0 {
		t.Fatalf("social utility %g not positive", uSoc)
	}
	// Verify it really is a maximum.
	if g.UniformUtility(lSoc*0.7) >= uSoc || g.UniformUtility(lSoc*1.4) >= uSoc {
		t.Errorf("utility at 0.7x/1.4x not below the optimum")
	}
}

func TestBERDrivesOptimumDown(t *testing.T) {
	mk := func(ber float64) float64 {
		cfg := DefaultConfig(10, 336, phy.Basic)
		cfg.BER = ber
		g, err := NewGame(cfg)
		if err != nil {
			t.Fatal(err)
		}
		l, _, err := g.SocialOptimum()
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	if l4, l3 := mk(1e-4), mk(1e-3); l3 >= l4 {
		t.Errorf("higher BER should shorten optimal packets: BER=1e-3 gives %g >= 1e-4's %g", l3, l4)
	}
}

// The commons tragedy under basic access: the selfish NE payload strictly
// exceeds the social optimum and costs the network utility.
func TestTragedyOfCommonsBasic(t *testing.T) {
	g := mustGame(t, 10, 336, phy.Basic)
	out, err := g.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if out.Escalation <= 1.02 {
		t.Errorf("NE payload %g barely above social %g (escalation %.3f)", out.LNE, out.LSocial, out.Escalation)
	}
	if out.PriceOfAnarchy <= 1 {
		t.Errorf("price of anarchy %.4f, want > 1", out.PriceOfAnarchy)
	}
	if out.UNE >= out.USocial {
		t.Errorf("NE utility %g not below social %g", out.UNE, out.USocial)
	}
}

// The externality in this game is successful-airtime hogging, not
// collision cost, so — unlike the CW game — basic and RTS/CTS access
// suffer a *similar* tragedy. Both must show a real price of anarchy, and
// the two must agree within 10%.
func TestTragedyIsModeIndependent(t *testing.T) {
	basic, err := mustGame(t, 10, 336, phy.Basic).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	rts, err := mustGame(t, 10, 47, phy.RTSCTS).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]Outcome{"basic": basic, "rts/cts": rts} {
		if out.PriceOfAnarchy < 1.2 {
			t.Errorf("%s: price of anarchy %.4f, want a real tragedy (> 1.2)", name, out.PriceOfAnarchy)
		}
		if out.Escalation < 1.5 {
			t.Errorf("%s: escalation %.3f, want > 1.5", name, out.Escalation)
		}
	}
	if r := rts.PriceOfAnarchy / basic.PriceOfAnarchy; r < 0.9 || r > 1.1 {
		t.Errorf("PoA ratio rts/basic = %.3f, expected near 1 (airtime-driven externality)", r)
	}
}

func TestBestResponseEscalatesAgainstSocial(t *testing.T) {
	g := mustGame(t, 10, 336, phy.Basic)
	lSoc, _, err := g.SocialOptimum()
	if err != nil {
		t.Fatal(err)
	}
	br, err := g.BestResponse(lSoc)
	if err != nil {
		t.Fatal(err)
	}
	if br <= lSoc {
		t.Fatalf("best response %g does not escalate above social %g", br, lSoc)
	}
	// And the deviator gains by it.
	if g.DeviatorUtility(br, lSoc) <= g.UniformUtility(lSoc) {
		t.Error("escalating deviator does not gain")
	}
}

func TestSymmetricNEIsFixedPoint(t *testing.T) {
	g := mustGame(t, 10, 336, phy.Basic)
	lNE, _, err := g.SymmetricNE()
	if err != nil {
		t.Fatal(err)
	}
	br, err := g.BestResponse(lNE)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(br-lNE) > 0.02*lNE {
		t.Fatalf("BR(L_NE=%g) = %g, not a fixed point", lNE, br)
	}
}

func TestTFTSustainsSocialOptimum(t *testing.T) {
	g := mustGame(t, 10, 336, phy.Basic)
	uTFT, err := g.TFTOutcome()
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if uTFT <= out.UNE {
		t.Errorf("TFT-sustained utility %g not above one-shot NE %g", uTFT, out.UNE)
	}
	if math.Abs(uTFT-out.USocial) > 1e-15 {
		t.Errorf("TFT outcome %g != social optimum %g", uTFT, out.USocial)
	}
}

func TestMoreNodesLowerUtility(t *testing.T) {
	u := func(n, w int) float64 {
		g := mustGame(t, n, w, phy.Basic)
		_, uSoc, err := g.SocialOptimum()
		if err != nil {
			t.Fatal(err)
		}
		return uSoc
	}
	// Per-node utility shrinks roughly like 1/n at matched (near-NE) CWs.
	if u5, u20 := u(5, 78), u(20, 335); u20 >= u5 {
		t.Errorf("per-node utility did not shrink with population: %g >= %g", u20, u5)
	}
}

func TestTslotConsistency(t *testing.T) {
	g := mustGame(t, 10, 336, phy.Basic)
	// Uniform tslot must be a convex combination bounded by sigma and
	// the longest hold.
	L := 8184.0
	ts := g.tslot(L, L)
	if ts < g.cfg.PHY.SlotTime || ts > g.ts(L) {
		t.Fatalf("tslot = %g outside [sigma, Ts]", ts)
	}
	// Deviating longer must strictly increase the mean slot duration.
	if g.tslot(2*L, L) <= ts {
		t.Fatalf("longer deviator payload did not stretch tslot")
	}
	// And the deviator's payload must matter less than everyone's.
	if g.tslot(2*L, L) >= g.tslot(2*L, 2*L) {
		t.Fatalf("single deviator stretched tslot more than the whole field")
	}
}

func TestUtilityConcaveNearOptimum(t *testing.T) {
	g := mustGame(t, 10, 336, phy.Basic)
	lSoc, _, err := g.SocialOptimum()
	if err != nil {
		t.Fatal(err)
	}
	if d2 := num.SecondDerivative(g.UniformUtility, lSoc); d2 > 0 {
		t.Fatalf("uniform utility convex at its optimum (d2 = %g)", d2)
	}
}

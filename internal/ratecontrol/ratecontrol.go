// Package ratecontrol implements the extension the paper's conclusion
// sketches: "the game theoretical model proposed in this paper is a
// general framework that can be extended to model other selfish behaviors
// such as rate control by redefining the proper utility function."
//
// Here the selfish knob is the payload size L (bits per packet) at a
// fixed contention window; the channel model and the repeated-game
// machinery are reused unchanged. With a per-bit error rate the utility
//
//	u_i = [τ(1−p)·(1−ber)^{L_i}·g_bit·L_i − τ·e] / T_slot(L_1, …, L_n)
//
// has an interior optimum, and the game exhibits the classic commons
// tragedy: a deviator's longer packets earn it more bits while their
// airtime cost lands in the shared T_slot, so the symmetric best-response
// equilibrium L_NE exceeds the social optimum L_soc (~2.7x with the
// default parameters) and the price of anarchy u(L_soc)/u(L_NE) is
// strictly above 1 (~1.4). Unlike the CW game, the externality here is
// *successful-airtime hogging*, not collision cost, so basic and RTS/CTS
// access suffer almost equally — collisions merely stop carrying the
// payload under RTS/CTS, a second-order effect at equilibrium τ.
//
// The TFT argument transfers: aggression now means *larger* L, TFT
// matches the largest observed payload, and long-sighted players sustain
// L_soc for exactly the reasons of the paper's Theorem 2.
package ratecontrol

import (
	"errors"
	"fmt"
	"math"

	"selfishmac/internal/bianchi"
	"selfishmac/internal/num"
	"selfishmac/internal/phy"
)

// Config parameterises the packet-size game.
type Config struct {
	// N is the number of saturated nodes.
	N int
	// W is the (fixed) contention window every node operates on,
	// typically the efficient NE of the CW game.
	W int
	// Mode selects basic or RTS/CTS access.
	Mode phy.AccessMode
	// PHY is the channel parameterisation; its PayloadBits field is
	// ignored (payload is the strategy).
	PHY phy.Params
	// GainPerBit is g_bit, the value of one delivered payload bit.
	GainPerBit float64
	// CostPerAttempt is e, the energy cost of one transmission attempt.
	CostPerAttempt float64
	// BER is the independent per-bit error probability; it is what makes
	// very long packets unattractive.
	BER float64
	// LMin and LMax bound the payload in bits.
	LMin, LMax float64
}

// DefaultConfig returns a paper-scaled configuration: Table I channel,
// g_bit normalized so a paper-sized packet is worth 1, e = 0.01,
// BER = 1e-4 (interior optimum around a few kilobits).
func DefaultConfig(n, w int, mode phy.AccessMode) Config {
	return Config{
		N:              n,
		W:              w,
		Mode:           mode,
		PHY:            phy.Default(),
		GainPerBit:     1.0 / 8184,
		CostPerAttempt: 0.01,
		BER:            1e-4,
		LMin:           256,
		LMax:           32768,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	var errs []error
	if c.N < 2 {
		errs = append(errs, fmt.Errorf("N = %d must be >= 2", c.N))
	}
	if c.W < 1 {
		errs = append(errs, fmt.Errorf("W = %d must be >= 1", c.W))
	}
	if !c.Mode.Valid() {
		errs = append(errs, fmt.Errorf("invalid mode %v", c.Mode))
	}
	if c.GainPerBit <= 0 {
		errs = append(errs, fmt.Errorf("gain per bit %g must be positive", c.GainPerBit))
	}
	if c.CostPerAttempt < 0 {
		errs = append(errs, errors.New("negative attempt cost"))
	}
	if c.BER < 0 || c.BER >= 1 {
		errs = append(errs, fmt.Errorf("BER %g outside [0, 1)", c.BER))
	}
	if c.LMin <= 0 || c.LMax <= c.LMin {
		errs = append(errs, fmt.Errorf("payload bounds [%g, %g] invalid", c.LMin, c.LMax))
	}
	probe := c.PHY
	probe.PayloadBits = c.LMin
	if err := probe.Validate(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Game is the packet-size game at a solved channel operating point.
type Game struct {
	cfg Config
	// tau and p come from the CW game's fixed point (independent of L).
	tau, p float64
	// psuccSolo = tau(1-tau)^(n-1): probability a *given* node transmits
	// alone in a slot. allIdle = (1-tau)^n.
	psuccSolo float64
	allIdle   float64
}

// NewGame solves the channel fixed point for the configured CW and
// population; payload choices never change τ or p (they only stretch the
// slot durations), so one solve suffices.
func NewGame(cfg Config) (*Game, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("ratecontrol: invalid config: %w", err)
	}
	tm, err := cfg.PHY.Timing(cfg.Mode)
	if err != nil {
		return nil, err
	}
	model, err := bianchi.New(tm, cfg.PHY.MaxBackoffStage)
	if err != nil {
		return nil, err
	}
	sol, err := model.SolveUniform(cfg.W, cfg.N)
	if err != nil {
		return nil, err
	}
	tau := sol.Tau[0]
	return &Game{
		cfg:       cfg,
		tau:       tau,
		p:         sol.P[0],
		psuccSolo: tau * math.Pow(1-tau, float64(cfg.N-1)),
		allIdle:   math.Pow(1-tau, float64(cfg.N)),
	}, nil
}

// Config returns the game's configuration.
func (g *Game) Config() Config { return g.cfg }

// Tau returns the per-slot transmission probability (from the CW game).
func (g *Game) Tau() float64 { return g.tau }

// ts returns the channel hold of a solo transmission with payload L bits.
func (g *Game) ts(L float64) float64 {
	p := g.cfg.PHY
	h := p.HeaderTime()
	pl := p.TxTime(L)
	if g.cfg.Mode == phy.RTSCTS {
		return p.RTSTime() + p.SIFS + p.CTSTime() + h + pl + p.SIFS + p.ACKTime() + p.DIFS
	}
	return h + pl + p.SIFS + p.ACKTime() + p.DIFS
}

// tc returns the channel hold of a collision whose longest payload is L.
// Under RTS/CTS only the RTS frames collide, so the payload drops out —
// the structural reason the rate-control externality is mild there.
func (g *Game) tc(L float64) float64 {
	p := g.cfg.PHY
	if g.cfg.Mode == phy.RTSCTS {
		return p.RTSTime() + p.DIFS
	}
	return p.HeaderTime() + p.TxTime(L) + p.SIFS
}

// HoldTimes returns the channel holds (success, collision-contribution)
// of a transmission with payload L bits — the inputs the MAC simulator's
// per-node duration overrides need to replay a payload profile.
func (g *Game) HoldTimes(L float64) (ts, tc float64) {
	return g.ts(L), g.tc(L)
}

// pOK is the probability a payload of L bits survives the channel's bit
// errors (headers are covered by stronger coding and ignored).
func (g *Game) pOK(L float64) float64 {
	if g.cfg.BER == 0 {
		return 1
	}
	return math.Pow(1-g.cfg.BER, L)
}

// tslot returns the mean slot duration when one deviator uses Ldev and
// the other n−1 nodes use Lbase. The four slot classes:
//
//	deviator alone            psuccSolo              → Ts(Ldev)
//	one base node alone       (n−1)·psuccSolo        → Ts(Lbase)
//	collision with deviator   τ·(1−(1−τ)^(n−1))      → Tc(max(Ldev,Lbase))
//	collision, deviator idle  rest of Ptr            → Tc(Lbase)
func (g *Game) tslot(Ldev, Lbase float64) float64 {
	n := float64(g.cfg.N)
	tm := g.cfg.PHY
	_ = tm
	soloDev := g.psuccSolo
	soloBase := (n - 1) * g.psuccSolo
	collDev := g.tau * g.p // p = 1-(1-tau)^(n-1): someone else too
	ptr := 1 - g.allIdle
	collBase := ptr - soloDev - soloBase - collDev
	if collBase < 0 {
		collBase = 0
	}
	return g.allIdle*g.cfg.PHY.SlotTime +
		soloDev*g.ts(Ldev) +
		soloBase*g.ts(Lbase) +
		collDev*g.tc(math.Max(Ldev, Lbase)) +
		collBase*g.tc(Lbase)
}

// DeviatorUtility is the deviator's utility rate when it uses Ldev
// against a field at Lbase.
func (g *Game) DeviatorUtility(Ldev, Lbase float64) float64 {
	gain := g.tau * (1 - g.p) * g.pOK(Ldev) * g.cfg.GainPerBit * Ldev
	cost := g.tau * g.cfg.CostPerAttempt
	return (gain - cost) / g.tslot(Ldev, Lbase)
}

// UniformUtility is the per-node utility rate when everyone uses L.
func (g *Game) UniformUtility(L float64) float64 {
	return g.DeviatorUtility(L, L)
}

// optGrid is the grid resolution for payload maximizations. The utility
// is not unimodal at high BER (a positive hump, a negative dip, and an
// asymptotic rise of the pure-cost branch toward zero), so a grid scan
// locates the winning mode before golden-section refinement.
const optGrid = 128

// SocialOptimum maximizes the uniform utility over [LMin, LMax].
func (g *Game) SocialOptimum() (L, u float64, err error) {
	L, err = num.GridGoldenMax(g.UniformUtility, g.cfg.LMin, g.cfg.LMax, optGrid, num.Options{Tol: 1e-3, MaxIter: 300})
	if err != nil {
		return 0, 0, err
	}
	return L, g.UniformUtility(L), nil
}

// BestResponse returns the payload maximizing the deviator's utility
// against a field at Lbase.
func (g *Game) BestResponse(Lbase float64) (float64, error) {
	obj := func(L float64) float64 { return g.DeviatorUtility(L, Lbase) }
	return num.GridGoldenMax(obj, g.cfg.LMin, g.cfg.LMax, optGrid, num.Options{Tol: 1e-3, MaxIter: 300})
}

// SymmetricNE iterates the best response to its fixed point: the
// symmetric one-shot Nash equilibrium payload L_NE.
func (g *Game) SymmetricNE() (L, u float64, err error) {
	x := []float64{(g.cfg.LMin + g.cfg.LMax) / 2}
	iterate := func(in, out []float64) {
		br, brErr := g.BestResponse(num.Clamp(in[0], g.cfg.LMin, g.cfg.LMax))
		if brErr != nil {
			out[0] = math.NaN()
			return
		}
		out[0] = br
	}
	if _, err := num.FixedPoint(iterate, x, 0.5, num.Options{Tol: 0.5, MaxIter: 200}); err != nil {
		return 0, 0, fmt.Errorf("ratecontrol: NE iteration: %w", err)
	}
	return x[0], g.UniformUtility(x[0]), nil
}

// Outcome summarizes the commons analysis.
type Outcome struct {
	// LSocial and USocial are the welfare-maximizing payload and the
	// per-node utility there.
	LSocial, USocial float64
	// LNE and UNE are the one-shot symmetric NE payload and utility.
	LNE, UNE float64
	// PriceOfAnarchy = USocial / UNE (>= 1; > 1 means myopic selfishness
	// costs the network).
	PriceOfAnarchy float64
	// Escalation = LNE / LSocial (> 1 means selfish packets are longer).
	Escalation float64
}

// Analyze computes the full commons analysis.
func (g *Game) Analyze() (Outcome, error) {
	lSoc, uSoc, err := g.SocialOptimum()
	if err != nil {
		return Outcome{}, err
	}
	lNE, uNE, err := g.SymmetricNE()
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{LSocial: lSoc, USocial: uSoc, LNE: lNE, UNE: uNE}
	if uNE > 0 {
		out.PriceOfAnarchy = uSoc / uNE
	}
	if lSoc > 0 {
		out.Escalation = lNE / lSoc
	}
	return out, nil
}

// TFTOutcome states what the repeated game sustains: with long-sighted
// players and TFT (matching the largest observed payload), any unilateral
// escalation above LSocial is met in kind, and — by the same argument as
// the paper's Theorem 2 in the CW game — the social optimum is an
// equilibrium of the repeated game. The returned value is the per-node
// utility TFT sustains, for comparison with the one-shot NE.
func (g *Game) TFTOutcome() (float64, error) {
	_, u, err := g.SocialOptimum()
	return u, err
}

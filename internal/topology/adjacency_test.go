package topology

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// adjacency_test.go pins the incremental view's contract: rows patched by
// StepDelta are byte-identical — contents, ordering, nil-ness — to the
// brute-force reference recomputed from scratch after every mobility
// step, the reported deltas are exactly the set difference between
// consecutive snapshots, and the steady-state patch path allocates
// nothing.

// twinNetworks builds two identical networks from one config; stepping
// them in lockstep keeps their PRNG trajectories — and so their
// positions — equal, which is what lets the view on one be checked
// against brute force on the other.
func twinNetworks(t *testing.T, cfg Config) (*Network, *Network) {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// normRows canonicalises an adjacency for comparison: a row emptied by
// patching is empty-but-non-nil in the view, while brute force keeps
// nil — the contract is per-row contents and order, not nil-ness.
func normRows(rows [][]int) [][]int {
	out := make([][]int, len(rows))
	for i, r := range rows {
		if len(r) > 0 {
			out[i] = r
		}
	}
	return out
}

func pairSet(pairs []Pair) map[Pair]bool {
	m := make(map[Pair]bool, len(pairs))
	for _, p := range pairs {
		if p.A >= p.B {
			return nil // ordering violation; caller fails on nil
		}
		m[p] = true
	}
	return m
}

// diffPairs returns the links present in after but not in before.
func diffPairs(before, after [][]int) map[Pair]bool {
	m := map[Pair]bool{}
	for i, row := range after {
		for _, j := range row {
			if i < j && !contains(before[i], j) {
				m[Pair{A: i, B: j}] = true
			}
		}
	}
	return m
}

func contains(row []int, j int) bool {
	for _, v := range row {
		if v == j {
			return true
		}
	}
	return false
}

// TestDifferentialAdjacencyViewQuick drives randomized mobility churn
// through the view and checks every step against brute force: row
// equality, delta-set exactness, and moved-node reporting. The generated
// configs cover cell-boundary crossings (speeds up to several cells per
// step), zero-speed legs (MinSpeed 0 draws redrawn by the leg logic),
// pause phases, and single-cell grids (range wider than the area).
func TestDifferentialAdjacencyViewQuick(t *testing.T) {
	check := func(seed uint64, nRaw, rangeRaw, speedRaw, dtRaw uint8) bool {
		n := 2 + int(nRaw)%40
		rangeM := 40 + float64(rangeRaw)*1.5 // up to > area: one-cell grid
		maxSpeed := float64(speedRaw % 80)   // up to ~2 cells per 1s step
		dt := 0.25 + float64(dtRaw%16)/4
		cfg := Config{
			N: n, Width: 300, Height: 200, Range: rangeM,
			MinSpeed: 0, MaxSpeed: maxSpeed, Pause: 0.5, Seed: seed,
		}
		nv, nb := twinNetworks(t, cfg)
		view := nv.AdjacencyView()
		prev := normRows(nb.BruteForceAdjacencyLists())
		if !reflect.DeepEqual(normRows(view.Rows()), prev) {
			t.Log("initial rows diverged from brute force")
			return false
		}
		for step := 0; step < 12; step++ {
			posBefore := append([]Point(nil), nb.Positions()...)
			delta, err := view.StepDelta(dt)
			if err != nil {
				t.Log(err)
				return false
			}
			if err := nb.Step(dt); err != nil {
				t.Log(err)
				return false
			}
			cur := normRows(nb.BruteForceAdjacencyLists())
			if !reflect.DeepEqual(normRows(view.Rows()), cur) {
				t.Logf("step %d: patched rows diverged from brute force", step)
				return false
			}
			// Moved = exactly the nodes whose position changed, ascending.
			var moved []int
			for i, p := range nb.Positions() {
				if p != posBefore[i] {
					moved = append(moved, i)
				}
			}
			if !reflect.DeepEqual(delta.Moved, moved) && !(len(delta.Moved) == 0 && len(moved) == 0) {
				t.Logf("step %d: Moved %v, want %v", step, delta.Moved, moved)
				return false
			}
			// Gained/Lost = exactly the snapshot set differences.
			gained, lost := pairSet(delta.Gained), pairSet(delta.Lost)
			if gained == nil || lost == nil {
				t.Logf("step %d: delta pair with A >= B", step)
				return false
			}
			if wantG := diffPairs(prev, cur); !reflect.DeepEqual(gained, wantG) {
				t.Logf("step %d: Gained %v, want %v", step, gained, wantG)
				return false
			}
			if wantL := diffPairs(cur, prev); !reflect.DeepEqual(lost, wantL) {
				t.Logf("step %d: Lost %v, want %v", step, lost, wantL)
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialAdjacencyViewResync pins staleness handling: mutations
// outside the view's control — plain Steps, SetPositions, another view
// stepping the same network — must be picked up by the next Rows or
// StepDelta via the position version, and interleaving must keep the
// rows byte-identical to brute force.
func TestDifferentialAdjacencyViewResync(t *testing.T) {
	cfg := Config{N: 30, Width: 400, Height: 400, Range: 150, MaxSpeed: 20, Seed: 77}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	view := nw.AdjacencyView()
	assertMatch := func(what string) {
		t.Helper()
		if !reflect.DeepEqual(normRows(view.Rows()), normRows(nw.BruteForceAdjacencyLists())) {
			t.Fatalf("after %s: view diverged from brute force", what)
		}
	}
	assertMatch("build")

	// Plain Step behind the view's back.
	if err := nw.Step(1.5); err != nil {
		t.Fatal(err)
	}
	assertMatch("external Step")

	// SetPositions teleport.
	pos := append([]Point(nil), nw.Positions()...)
	for i := range pos {
		pos[i] = Point{X: float64((i * 37) % 400), Y: float64((i * 91) % 400)}
	}
	if err := nw.SetPositions(pos); err != nil {
		t.Fatal(err)
	}
	assertMatch("SetPositions")

	// A second view stepping the shared network stales the first.
	other := nw.AdjacencyView()
	if _, err := other.StepDelta(2); err != nil {
		t.Fatal(err)
	}
	assertMatch("sibling view StepDelta")

	// And a StepDelta on a stale view must resync before patching.
	if err := nw.Step(1); err != nil {
		t.Fatal(err)
	}
	if _, err := view.StepDelta(0.5); err != nil {
		t.Fatal(err)
	}
	assertMatch("StepDelta after external Step")
}

// TestDifferentialAdjacencyViewStatic pins the static fast path: with
// MaxSpeed 0 the position version never changes, StepDelta reports an
// empty delta, and the mobility PRNG is untouched — matching
// Network.Step's behavior for static networks exactly.
func TestDifferentialAdjacencyViewStatic(t *testing.T) {
	cfg := Config{N: 50, Width: 500, Height: 500, Range: 180, MaxSpeed: 0, Seed: 5}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	view := nw.AdjacencyView()
	rows0 := view.Rows()
	ver0 := nw.PositionVersion()
	for i := 0; i < 5; i++ {
		d, err := view.StepDelta(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Moved) != 0 || len(d.Gained) != 0 || len(d.Lost) != 0 {
			t.Fatalf("static network produced a non-empty delta: %+v", d)
		}
	}
	if nw.PositionVersion() != ver0 {
		t.Fatal("static steps bumped the position version")
	}
	// Same backing rows object: the view never rebuilt.
	if &rows0[0] != &view.Rows()[0] {
		t.Fatal("static view rebuilt its rows")
	}
	// The twin network's PRNG agrees after the same (draw-free) steps.
	twin, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := twin.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(nw.Positions(), twin.Positions()) {
		t.Fatal("static positions diverged from plain-Step twin")
	}
}

// TestAdjacencyViewStepAllocsSteadyState pins the perf contract the view
// exists for: once row capacities have reached their high-water mark,
// StepDelta + Rows run allocation-free, mobile or static.
func TestAdjacencyViewStepAllocsSteadyState(t *testing.T) {
	cfg := Config{N: 200, Width: 1000, Height: 1000, Range: 250, MaxSpeed: 10, Seed: 9}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	view := nw.AdjacencyView()
	for i := 0; i < 300; i++ { // reach the row-capacity high-water mark
		if _, err := view.StepDelta(1); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := view.StepDelta(1); err != nil {
			t.Fatal(err)
		}
		view.Rows()
	})
	if allocs > 0 {
		t.Fatalf("steady-state StepDelta allocated %.2f objects per step, want 0", allocs)
	}

	static, err := New(Config{N: 200, Width: 1000, Height: 1000, Range: 250, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sview := static.AdjacencyView()
	sview.Rows()
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := sview.StepDelta(1); err != nil {
			t.Fatal(err)
		}
		sview.Rows()
	})
	if allocs > 0 {
		t.Fatalf("static StepDelta allocated %.2f objects per step, want 0", allocs)
	}
}

// TestAdjacencyViewRejectsNegativeStep mirrors Network.Step's contract.
func TestAdjacencyViewRejectsNegativeStep(t *testing.T) {
	nw, err := New(Config{N: 3, Width: 100, Height: 100, Range: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AdjacencyView().StepDelta(-1); err == nil {
		t.Fatal("negative dt accepted")
	}
	if _, err := nw.AdjacencyView().StepDelta(math.Inf(-1)); err == nil {
		t.Fatal("negative-infinite dt accepted")
	}
}

package topology

import (
	"reflect"
	"testing"
	"testing/quick"
)

// grid_test.go pins the cell-indexed neighbor queries element-for-element
// to the brute-force O(n²) scan: same membership AND same (ascending)
// order, across random configurations, cell-boundary placements,
// Range > Width degenerate grids, and positions mutated by Step under
// mobility. The multihop differential matrix relies on this equivalence
// to keep Simulate byte-identical to SimulateReference.

// bruteNeighbors derives one node's neighbor list from the pinned
// brute-force reference.
func bruteNeighbors(nw *Network, i int) []int {
	return nw.BruteForceAdjacencyLists()[i]
}

// bruteHidden recomputes HiddenNodes from the brute-force scan.
func bruteHidden(nw *Network, t, r int) []int {
	var out []int
	for _, h := range bruteNeighbors(nw, r) {
		if h != t && !nw.IsLink(t, h) {
			out = append(out, h)
		}
	}
	return out
}

// checkGridAgainstBrute asserts every query path agrees with the brute
// scan on the network's current snapshot.
func checkGridAgainstBrute(t *testing.T, nw *Network) {
	t.Helper()
	brute := nw.BruteForceAdjacencyLists()
	adj := nw.AdjacencyLists()
	for i := 0; i < nw.N(); i++ {
		if !reflect.DeepEqual(adj[i], brute[i]) {
			t.Fatalf("node %d: grid adjacency %v != brute %v", i, adj[i], brute[i])
		}
		if got := nw.Neighbors(i); !reflect.DeepEqual(got, brute[i]) {
			t.Fatalf("node %d: grid Neighbors %v != brute %v", i, got, brute[i])
		}
		if d := nw.Degree(i); d != len(brute[i]) {
			t.Fatalf("node %d: grid degree %d != brute %d", i, d, len(brute[i]))
		}
	}
	// Hidden-terminal sets run over the grid path too.
	for i := 0; i < nw.N() && i < 5; i++ {
		for _, r := range brute[i] {
			if got, want := nw.HiddenNodes(i, r), bruteHidden(nw, i, r); !reflect.DeepEqual(got, want) {
				t.Fatalf("hidden(%d->%d): grid %v != brute %v", i, r, got, want)
			}
		}
	}
}

// TestDifferentialGridMatchesBruteForce sweeps a matrix of configurations
// — sparse, dense, tall/thin areas, Range larger than either dimension
// (single-cell grid), single node — and checks the static snapshot plus a
// sequence of mobility steps that force incremental cell moves.
func TestDifferentialGridMatchesBruteForce(t *testing.T) {
	cfgs := []Config{
		{N: 100, Width: 1000, Height: 1000, Range: 250, MinSpeed: 0, MaxSpeed: 5},
		{N: 50, Width: 1000, Height: 1000, Range: 180, MinSpeed: 1, MaxSpeed: 10},
		{N: 40, Width: 2000, Height: 100, Range: 150, MinSpeed: 0, MaxSpeed: 20, Pause: 2},
		{N: 30, Width: 300, Height: 300, Range: 500, MinSpeed: 0, MaxSpeed: 5},  // Range > Width: one cell
		{N: 25, Width: 100, Height: 900, Range: 120, MinSpeed: 0, MaxSpeed: 3},  // 1 column, many rows
		{N: 12, Width: 1000, Height: 1000, Range: 90, MinSpeed: 0, MaxSpeed: 5}, // mostly empty cells
		{N: 1, Width: 50, Height: 50, Range: 25, MinSpeed: 0, MaxSpeed: 1},
		{N: 200, Width: 1414, Height: 1414, Range: 250, MinSpeed: 0, MaxSpeed: 5},
	}
	for ci, cfg := range cfgs {
		for seed := uint64(0); seed < 3; seed++ {
			cfg.Seed = seed*97 + uint64(ci)
			nw, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkGridAgainstBrute(t, nw)
			// Mobility: long steps so nodes cross cells and finish legs.
			for s := 0; s < 6; s++ {
				if err := nw.Step(37); err != nil {
					t.Fatal(err)
				}
				checkGridAgainstBrute(t, nw)
			}
		}
	}
}

// TestDifferentialGridPopulationScale checks the grid at the bench's
// n=10000 configuration — the regime the fire-slot calendar unlocked for
// the simulator, where the adjacency build itself must stay O(n·deg).
// The full brute-force cross-check is O(n²) (~10⁸ IsLink calls), so the
// static snapshot is verified wholesale once and a mobility step is
// verified on a sampled node subset.
func TestDifferentialGridPopulationScale(t *testing.T) {
	if testing.Short() {
		t.Skip("n=10000 brute-force cross-check is slow")
	}
	cfg := Config{N: 10000, Width: 10000, Height: 10000, Range: 250, MinSpeed: 0, MaxSpeed: 5, Seed: 29}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adj := nw.AdjacencyInto(nil)
	brute := nw.BruteForceAdjacencyLists()
	for i := range adj {
		if !reflect.DeepEqual(adj[i], brute[i]) {
			t.Fatalf("node %d: grid %v, brute force %v", i, adj[i], brute[i])
		}
	}
	if err := nw.Step(37); err != nil {
		t.Fatal(err)
	}
	adj = nw.AdjacencyInto(adj)
	for i := 0; i < cfg.N; i += 97 { // ~100 sampled nodes post-step
		var want []int
		for j := 0; j < cfg.N; j++ {
			if j != i && nw.IsLink(i, j) {
				want = append(want, j)
			}
		}
		got := adj[i]
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d after step: grid %v, sampled scan %v", i, got, want)
		}
	}
}

// TestDifferentialGridCellBoundaries places nodes exactly on cell
// boundaries — multiples of the cell extent, the area edges, and the far
// corner (X == Width, which must clamp into the last column).
func TestDifferentialGridCellBoundaries(t *testing.T) {
	cfg := Config{N: 12, Width: 1000, Height: 1000, Range: 250, Seed: 1}
	nw := mustNetwork(t, cfg)
	pts := []Point{
		{0, 0}, {250, 0}, {500, 0}, {750, 0}, {1000, 0},
		{0, 250}, {250, 250}, {1000, 250},
		{0, 1000}, {500, 500}, {1000, 1000}, {250, 750},
	}
	if err := nw.SetPositions(pts); err != nil {
		t.Fatal(err)
	}
	checkGridAgainstBrute(t, nw)
	// Boundary nodes at exact Range distance must be linked (<=, not <).
	if !nw.IsLink(0, 1) {
		t.Fatal("nodes at exactly Range distance must be neighbors")
	}
}

// TestDifferentialGridProperty drives random (seed, steps) pairs through
// the full query surface via testing/quick.
func TestDifferentialGridProperty(t *testing.T) {
	f := func(seed uint64, steps uint8, big bool) bool {
		cfg := Config{N: 35, Width: 800, Height: 600, Range: 140, MinSpeed: 0, MaxSpeed: 12, Seed: seed}
		if big {
			cfg.Range = 900 // exceeds both dimensions: single-cell grid
		}
		nw, err := New(cfg)
		if err != nil {
			return false
		}
		for s := 0; s < int(steps%8); s++ {
			if err := nw.Step(11); err != nil {
				return false
			}
		}
		brute := nw.BruteForceAdjacencyLists()
		adj := nw.AdjacencyLists()
		for i := range adj {
			if !reflect.DeepEqual(adj[i], brute[i]) || nw.Degree(i) != len(brute[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAdjacencyIntoRefill pins the reusable snapshot path: refilling the
// same buffer across mobility steps must match a fresh AdjacencyLists
// element-for-element, and must not allocate per-node slices once warm.
func TestAdjacencyIntoRefill(t *testing.T) {
	nw := mustNetwork(t, PaperConfig(43))
	var buf [][]int
	for s := 0; s < 5; s++ {
		buf = nw.AdjacencyInto(buf)
		fresh := nw.AdjacencyLists()
		for i := range fresh {
			if len(buf[i]) != len(fresh[i]) {
				t.Fatalf("step %d node %d: refill len %d != fresh %d", s, i, len(buf[i]), len(fresh[i]))
			}
			for k := range fresh[i] {
				if buf[i][k] != fresh[i][k] {
					t.Fatalf("step %d node %d: refill %v != fresh %v", s, i, buf[i], fresh[i])
				}
			}
		}
		if err := nw.Step(23); err != nil {
			t.Fatal(err)
		}
	}
	// Warm refills allocate nothing: capacities persist in the buffer.
	if allocs := testing.AllocsPerRun(10, func() {
		buf = nw.AdjacencyInto(buf)
	}); allocs != 0 {
		t.Fatalf("warm AdjacencyInto allocated %.1f objects per refill, want 0", allocs)
	}
}

func TestSetPositionsValidates(t *testing.T) {
	nw := mustNetwork(t, Config{N: 2, Width: 100, Height: 100, Range: 50, Seed: 1})
	if err := nw.SetPositions([]Point{{0, 0}}); err == nil {
		t.Fatal("wrong-length position set accepted")
	}
	if err := nw.SetPositions([]Point{{0, 0}, {101, 0}}); err == nil {
		t.Fatal("out-of-area position accepted")
	}
	if err := nw.SetPositions([]Point{{0, 0}, {100, 100}}); err != nil {
		t.Fatalf("boundary position rejected: %v", err)
	}
}

// TestStepZeroSpeedLegDoesNotFreeze is the regression test for the
// random-waypoint freeze: a node whose current leg carries speed exactly
// 0 (reachable with the paper's MinSpeed = 0) used to dwell forever —
// Step never advanced it and never started a new leg. Now Step replaces
// the dead leg and the node keeps moving.
func TestStepZeroSpeedLegDoesNotFreeze(t *testing.T) {
	cfg := Config{N: 3, Width: 1000, Height: 1000, Range: 250, MinSpeed: 0, MaxSpeed: 5, Seed: 7}
	nw := mustNetwork(t, cfg)
	// Inject the pathological draw directly: a zero-speed leg toward a
	// distant waypoint.
	nw.speed[0] = 0
	nw.waypoint[0] = Point{X: nw.cfg.Width - nw.pos[0].X, Y: nw.cfg.Height - nw.pos[0].Y}
	before := nw.Position(0)
	if err := nw.Step(10); err != nil {
		t.Fatal(err)
	}
	if nw.speed[0] <= 0 {
		t.Fatalf("zero-speed leg survived Step: speed %g", nw.speed[0])
	}
	if nw.Position(0) == before {
		t.Fatal("node frozen: did not move during a 10 s step of a mobile network")
	}
	// The redrawn state must keep making progress leg after leg.
	for s := 0; s < 20; s++ {
		prev := nw.Position(0)
		if err := nw.Step(60); err != nil {
			t.Fatal(err)
		}
		if nw.Position(0) == prev {
			t.Fatalf("node stalled again at step %d", s)
		}
	}
}

// Fresh legs must never carry non-positive speed in a mobile network.
func TestLegSpeedPositive(t *testing.T) {
	cfg := Config{N: 1, Width: 100, Height: 100, Range: 10, MinSpeed: 0, MaxSpeed: 5, Seed: 3}
	nw := mustNetwork(t, cfg)
	for k := 0; k < 1000; k++ {
		nw.newLeg(0)
		if nw.speed[0] <= 0 {
			t.Fatalf("leg %d drew non-positive speed %g", k, nw.speed[0])
		}
	}
	// Static networks keep zero speed by design.
	static := mustNetwork(t, Config{N: 1, Width: 100, Height: 100, Range: 10, Seed: 3})
	static.newLeg(0)
	if static.speed[0] != 0 {
		t.Fatalf("static network drew speed %g, want 0", static.speed[0])
	}
}

package topology

import "sort"

// grid.go implements the cell-indexed spatial structure behind the
// O(n·deg) neighbor queries. The deployment area is covered by
// Range-sized cells (cell extents are >= Range by construction), every
// node is bucketed by the cell containing its position, and a neighbor
// query scans only the 3x3 cell block around the query node — any node
// within Range is guaranteed to lie in one of those cells.
//
// Determinism contract: buckets store node indices in ascending order;
// queries filter the candidate buckets and sort the surviving neighbors,
// so neighbor lists come back in exactly the ascending-index order the
// original O(n²) linear scan produced, and link membership itself is
// decided by the very same IsLink predicate. The multihop differential matrix
// (event-skipping engine vs reference loop, bit-identical) relies on
// this; BruteForceAdjacencyLists keeps the linear scan available as the
// pinned reference.
//
// Mobility updates are incremental: Step re-buckets a node only when it
// crosses a cell boundary, so a mobility re-snapshot costs O(moved)
// bucket edits plus an O(n·deg) refill instead of an O(n²) rebuild.
// Queries touch no shared mutable state, so concurrent readers (the
// parallel sweep pools share one static network) remain safe; mutators
// (Step, SetPositions) require exclusive access as before.
type cellGrid struct {
	cols, rows   int
	cellW, cellH float64
	cells        [][]int // per-cell node buckets, each sorted ascending
	cellOf       []int   // node index -> cell index
}

// gridAxisCells returns the cell count along one axis: the largest count
// whose cell extent still covers rng, so the 3x3 block around any cell
// contains every point within rng of it.
func gridAxisCells(extent, rng float64) int {
	n := int(extent / rng)
	if n < 1 {
		return 1
	}
	// Guard the floating-point edge where extent/rng rounds up across an
	// integer: the cell extent must never drop below the range.
	for n > 1 && extent/float64(n) < rng {
		n--
	}
	return n
}

// init sizes the grid for the configuration and allocates empty buckets.
func (g *cellGrid) init(cfg Config) {
	g.cols = gridAxisCells(cfg.Width, cfg.Range)
	g.rows = gridAxisCells(cfg.Height, cfg.Range)
	g.cellW = cfg.Width / float64(g.cols)
	g.cellH = cfg.Height / float64(g.rows)
	g.cells = make([][]int, g.cols*g.rows)
	g.cellOf = make([]int, cfg.N)
}

// cellIndex maps a position to its cell, clamping boundary coordinates
// (X == Width lands in the last column, not one past it).
func (g *cellGrid) cellIndex(p Point) int {
	cx := int(p.X / g.cellW)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	cy := int(p.Y / g.cellH)
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// rebuild re-buckets every node from scratch. Iterating nodes in
// ascending index order keeps each bucket sorted without a sort pass.
func (g *cellGrid) rebuild(pos []Point) {
	for c := range g.cells {
		g.cells[c] = g.cells[c][:0]
	}
	for i, p := range pos {
		c := g.cellIndex(p)
		g.cellOf[i] = c
		g.cells[c] = append(g.cells[c], i)
	}
}

// update moves node i to the bucket containing p, preserving the sorted
// bucket invariant. It is a no-op while the node stays inside its cell —
// the common case under the paper's slow mobility.
func (g *cellGrid) update(i int, p Point) {
	c := g.cellIndex(p)
	old := g.cellOf[i]
	if c == old {
		return
	}
	g.cellOf[i] = c
	g.cells[old] = deleteSorted(g.cells[old], i)
	g.cells[c] = insertSorted(g.cells[c], i)
}

// neighborhood copies the bucket headers of the 3x3 cell block around p
// into heads and returns how many non-empty buckets it wrote. Callers may
// advance the copied headers without disturbing the grid.
func (g *cellGrid) neighborhood(p Point, heads *[9][]int) int {
	c := g.cellIndex(p)
	cx, cy := c%g.cols, c/g.cols
	x0, x1 := cx-1, cx+1
	if x0 < 0 {
		x0 = 0
	}
	if x1 >= g.cols {
		x1 = g.cols - 1
	}
	y0, y1 := cy-1, cy+1
	if y0 < 0 {
		y0 = 0
	}
	if y1 >= g.rows {
		y1 = g.rows - 1
	}
	m := 0
	for y := y0; y <= y1; y++ {
		row := y * g.cols
		for x := x0; x <= x1; x++ {
			if b := g.cells[row+x]; len(b) > 0 {
				heads[m] = b
				m++
			}
		}
	}
	return m
}

// sortNeighbors sorts a freshly gathered neighbor run ascending in
// place. Runs are a handful of already-sorted per-bucket stretches and
// rarely exceed the mean degree, where insertion sort beats both an
// element-wise bucket merge and sort.Ints; unusually dense runs fall
// back to sort.Ints to dodge the quadratic tail.
func sortNeighbors(b []int) {
	if len(b) > 64 {
		sort.Ints(b)
		return
	}
	for i := 1; i < len(b); i++ {
		v := b[i]
		j := i - 1
		for j >= 0 && b[j] > v {
			b[j+1] = b[j]
			j--
		}
		b[j+1] = v
	}
}

func insertSorted(b []int, i int) []int {
	k := sort.SearchInts(b, i)
	b = append(b, 0)
	copy(b[k+1:], b[k:])
	b[k] = i
	return b
}

func deleteSorted(b []int, i int) []int {
	k := sort.SearchInts(b, i)
	copy(b[k:], b[k+1:])
	return b[:len(b)-1]
}

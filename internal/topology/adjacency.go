package topology

import "fmt"

// adjacency.go is the incremental adjacency view: a reusable snapshot of
// the network's neighbor lists that is *patched* when mobility moves
// nodes instead of being rebuilt from scratch each time it is consulted.
//
// The view's contract mirrors the grid's determinism contract: every row
// is in exactly the ascending-index order BruteForceAdjacencyLists
// produces, at all times. The patch algorithm preserves it by
// construction — unmoved neighbors' rows are edited with the same
// sorted-insert/sorted-delete primitives the cell buckets use, and a
// moved node's own row is wholesale-replaced with a fresh sorted grid
// query.
//
// Staleness is tracked through Network.PositionVersion: if the network
// moved outside the view's control (a plain Step, SetPositions, or
// another view stepping the same network), the next Rows or Step call
// rebuilds the rows in place and resynchronises. On a static network the
// version never changes, so every consult after the first is free — the
// "adjacency amortised to stage 0" fast path.
type Adjacency struct {
	nw    *Network
	built bool
	gen   uint64

	rows    [][]int
	delta   Delta
	moved   []bool // scratch bitmask over nodes, cleared after each Step
	scratch []int  // fresh-neighbor query buffer
}

// Pair is an undirected node pair with A < B.
type Pair struct {
	A, B int
}

// Delta reports what one mobility step changed. The slices are owned by
// the view and reused: they are valid until the next StepDelta call.
type Delta struct {
	// Moved lists the nodes whose position changed, ascending.
	Moved []int
	// Gained and Lost list the links that appeared/disappeared, each pair
	// exactly once.
	Gained []Pair
	Lost   []Pair
}

// AdjacencyView returns a fresh incremental view of the network's
// neighbor lists. Each caller owns its view: views never share row
// buffers, so concurrent *readers* of one static network may each hold
// one safely. Stepping a view mutates the underlying network and needs
// the same exclusive access Network.Step does.
func (nw *Network) AdjacencyView() *Adjacency {
	return &Adjacency{nw: nw}
}

// Network returns the network the view is bound to.
func (v *Adjacency) Network() *Network { return v.nw }

// Rebind points the view at another network, keeping its buffers for
// reuse. Rebinding to the network it is already bound to is a no-op, so
// pooled engines that see the same network again keep the synchronised
// rows and skip the rebuild entirely.
func (v *Adjacency) Rebind(nw *Network) {
	if v.nw != nw {
		v.nw = nw
		v.built = false
	}
}

// sync rebuilds the rows if the view has never been built or the network
// has moved since the view last saw it.
func (v *Adjacency) sync() {
	if v.built && v.gen == v.nw.posGen {
		return
	}
	v.rows = v.nw.AdjacencyInto(v.rows)
	v.gen = v.nw.posGen
	v.built = true
}

// Rows returns the current neighbor lists, synchronising first if the
// network moved. The structure is view-owned and patched in place by
// StepDelta; it is valid until the next StepDelta, Rebind, or network
// mutation. Per-row contents and ordering are identical to
// Network.AdjacencyLists; the one representational difference is that a
// row emptied by patching is empty-but-non-nil rather than nil (callers
// test len, as the engines do).
func (v *Adjacency) Rows() [][]int {
	v.sync()
	return v.rows
}

// StepDelta advances the bound network's random-waypoint mobility by dt
// seconds — consuming the mobility PRNG exactly like Network.Step — and
// patches the view in place, touching only the rows incident to nodes
// that actually moved. It returns the delta (view-owned, valid until the
// next StepDelta). When no node moves (a static network, or every node
// pausing), the network's position version is unchanged and the patch
// phase is skipped entirely.
func (v *Adjacency) StepDelta(dt float64) (*Delta, error) {
	if dt < 0 {
		return nil, fmt.Errorf("topology: negative time step %g", dt)
	}
	v.sync()
	nw := v.nw
	n := nw.cfg.N
	if len(v.moved) != n {
		v.moved = make([]bool, n)
	}
	d := &v.delta
	d.Moved = d.Moved[:0]
	d.Gained = d.Gained[:0]
	d.Lost = d.Lost[:0]

	for i := range nw.pos {
		p := nw.pos[i]
		nw.stepNode(i, dt)
		if nw.pos[i] != p {
			v.moved[i] = true
			d.Moved = append(d.Moved, i)
		}
		nw.g.update(i, nw.pos[i])
	}
	if len(d.Moved) == 0 {
		return d, nil
	}
	nw.posGen++

	// Patch pass, moved nodes in ascending order. A link can only change
	// if at least one endpoint moved, so diffing each moved node's old row
	// against a fresh grid query covers every changed pair. For a pair
	// whose both endpoints moved, the earlier endpoint's diff records it
	// (the later one sees the same flip again and skips it).
	for _, i := range d.Moved {
		fresh := nw.AppendNeighbors(i, v.scratch[:0])
		old := v.rows[i]
		a, b := 0, 0
		for a < len(old) || b < len(fresh) {
			switch {
			case b == len(fresh) || (a < len(old) && old[a] < fresh[b]):
				v.linkLost(i, old[a])
				a++
			case a == len(old) || fresh[b] < old[a]:
				v.linkGained(i, fresh[b])
				b++
			default:
				a++
				b++
			}
		}
		v.scratch = fresh
		v.rows[i] = append(v.rows[i][:0], fresh...)
	}
	for _, i := range d.Moved {
		v.moved[i] = false
	}
	v.gen = nw.posGen
	return d, nil
}

// linkLost records that the link i–j disappeared and patches j's row.
// Rows of moved nodes are wholesale-replaced by the caller, so only
// unmoved neighbors are edited here; a both-moved pair is recorded once,
// by its first-processed endpoint.
func (v *Adjacency) linkLost(i, j int) {
	if v.moved[j] {
		if j < i {
			return // already recorded when j was processed
		}
	} else {
		v.rows[j] = deleteSorted(v.rows[j], i)
	}
	v.delta.Lost = append(v.delta.Lost, orderedPair(i, j))
}

func (v *Adjacency) linkGained(i, j int) {
	if v.moved[j] {
		if j < i {
			return
		}
	} else {
		v.rows[j] = insertSorted(v.rows[j], i)
	}
	v.delta.Gained = append(v.delta.Gained, orderedPair(i, j))
}

func orderedPair(i, j int) Pair {
	if i < j {
		return Pair{A: i, B: j}
	}
	return Pair{A: j, B: i}
}

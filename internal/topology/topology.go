// Package topology models the spatial substrate of the multi-hop
// experiments (paper Section VII.B): node placement in a rectangular
// area, unit-disk connectivity with a fixed transmission range, and the
// random-waypoint mobility model.
//
// Units: positions and ranges in meters, speeds in meters/second, times
// in seconds. The paper's scenario is 100 nodes, 1000 m × 1000 m, 250 m
// range, speeds uniform in [0, 5] m/s.
package topology

import (
	"errors"
	"fmt"
	"math"

	"selfishmac/internal/rng"
)

// Point is a position in the plane (meters).
type Point struct {
	X, Y float64
}

// DistTo returns the Euclidean distance to q.
func (p Point) DistTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Config parameterises a network.
type Config struct {
	// N is the node count.
	N int
	// Width and Height are the deployment area in meters.
	Width, Height float64
	// Range is the transmission (and carrier-sense) radius in meters.
	Range float64
	// MinSpeed and MaxSpeed bound the random-waypoint speed in m/s.
	// MaxSpeed = 0 yields a static network.
	MinSpeed, MaxSpeed float64
	// Pause is the dwell time at each waypoint in seconds.
	Pause float64
	// Seed drives placement and mobility.
	Seed uint64
}

// PaperConfig returns the paper's Section VII.B scenario.
func PaperConfig(seed uint64) Config {
	return Config{
		N:        100,
		Width:    1000,
		Height:   1000,
		Range:    250,
		MinSpeed: 0,
		MaxSpeed: 5,
		Pause:    0,
		Seed:     seed,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	var errs []error
	if c.N < 1 {
		errs = append(errs, fmt.Errorf("N = %d must be >= 1", c.N))
	}
	if c.Width <= 0 || c.Height <= 0 {
		errs = append(errs, fmt.Errorf("area %g x %g must be positive", c.Width, c.Height))
	}
	if c.Range <= 0 {
		errs = append(errs, fmt.Errorf("range %g must be positive", c.Range))
	}
	if c.MinSpeed < 0 || c.MaxSpeed < c.MinSpeed {
		errs = append(errs, fmt.Errorf("speed bounds [%g, %g] invalid", c.MinSpeed, c.MaxSpeed))
	}
	if c.Pause < 0 {
		errs = append(errs, errors.New("pause must be non-negative"))
	}
	return errors.Join(errs...)
}

// Network is a set of (possibly mobile) nodes with unit-disk links.
// Neighbor queries run over a cell grid (grid.go): O(deg) per node
// instead of the O(n) pairwise scan, with results in the same ascending
// index order the linear scan produced.
type Network struct {
	cfg       Config
	pos       []Point
	waypoint  []Point
	speed     []float64
	pauseLeft []float64
	src       *rng.Source
	g         cellGrid
	rangeSq   float64
	// posGen counts position mutations: any Step that moved at least one
	// node, and every SetPositions, bumps it. Adjacency views compare it
	// to detect staleness, which is what lets static networks (and static
	// phases of mobile runs) skip adjacency work entirely.
	posGen uint64
}

// New places cfg.N nodes uniformly at random and initialises their
// random-waypoint state.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("topology: invalid config: %w", err)
	}
	nw := &Network{
		cfg:       cfg,
		pos:       make([]Point, cfg.N),
		waypoint:  make([]Point, cfg.N),
		speed:     make([]float64, cfg.N),
		pauseLeft: make([]float64, cfg.N),
		src:       rng.New(cfg.Seed),
		rangeSq:   cfg.Range * cfg.Range,
	}
	for i := range nw.pos {
		nw.pos[i] = nw.randomPoint()
		nw.newLeg(i)
	}
	nw.g.init(cfg)
	nw.g.rebuild(nw.pos)
	return nw, nil
}

func (nw *Network) randomPoint() Point {
	return Point{
		X: nw.src.UniformRange(0, nw.cfg.Width),
		Y: nw.src.UniformRange(0, nw.cfg.Height),
	}
}

// newLeg assigns node i a fresh waypoint and speed.
func (nw *Network) newLeg(i int) {
	nw.waypoint[i] = nw.randomPoint()
	nw.speed[i] = nw.legSpeed()
	nw.pauseLeft[i] = 0
}

// legSpeed draws a random-waypoint leg speed. A draw of exactly zero —
// reachable with the paper's MinSpeed = 0 — is redrawn: a zero-speed leg
// never reaches its waypoint, so the node would never start a new leg and
// would stay frozen for the rest of the simulation. Static networks
// (MaxSpeed = 0) keep speed 0 and never move by design.
func (nw *Network) legSpeed() float64 {
	sp := nw.src.UniformRange(nw.cfg.MinSpeed, nw.cfg.MaxSpeed)
	for sp <= 0 && nw.cfg.MaxSpeed > 0 {
		sp = nw.src.UniformRange(nw.cfg.MinSpeed, nw.cfg.MaxSpeed)
	}
	return sp
}

// N returns the node count.
func (nw *Network) N() int { return nw.cfg.N }

// Config returns the network's configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Position returns node i's current position.
func (nw *Network) Position(i int) Point { return nw.pos[i] }

// Positions returns a copy of all node positions.
func (nw *Network) Positions() []Point {
	return append([]Point(nil), nw.pos...)
}

// stepNode advances one node's random-waypoint state by dt seconds. It
// is the shared inner loop of Step and Adjacency.Step: both must consume
// the mobility PRNG identically, or the delta-patched and rebuilt paths
// would diverge. The caller maintains the spatial index.
func (nw *Network) stepNode(i int, dt float64) {
	remaining := dt
	for remaining > 0 {
		if nw.pauseLeft[i] > 0 {
			if nw.pauseLeft[i] >= remaining {
				nw.pauseLeft[i] -= remaining
				return
			}
			remaining -= nw.pauseLeft[i]
			nw.pauseLeft[i] = 0
			nw.newLeg(i)
		}
		sp := nw.speed[i]
		if sp <= 0 {
			if nw.cfg.MaxSpeed <= 0 {
				// Static network: nodes never move.
				return
			}
			// Defensive: a zero-speed leg in a mobile network can never
			// reach its waypoint, so the node would freeze forever.
			// legSpeed guarantees fresh legs are positive; replace a
			// stale zero-speed leg and keep stepping.
			nw.newLeg(i)
			continue
		}
		dist := nw.pos[i].DistTo(nw.waypoint[i])
		travel := sp * remaining
		if travel < dist {
			f := travel / dist
			nw.pos[i].X += (nw.waypoint[i].X - nw.pos[i].X) * f
			nw.pos[i].Y += (nw.waypoint[i].Y - nw.pos[i].Y) * f
			remaining = 0
		} else {
			nw.pos[i] = nw.waypoint[i]
			remaining -= dist / sp
			if nw.cfg.Pause > 0 {
				nw.pauseLeft[i] = nw.cfg.Pause
			} else {
				nw.newLeg(i)
			}
		}
	}
}

// Step advances the random-waypoint mobility by dt seconds: each node
// moves toward its waypoint at its leg speed, pauses on arrival, then
// picks a new leg. dt must be non-negative.
func (nw *Network) Step(dt float64) error {
	if dt < 0 {
		return fmt.Errorf("topology: negative time step %g", dt)
	}
	moved := false
	for i := range nw.pos {
		p := nw.pos[i]
		nw.stepNode(i, dt)
		if nw.pos[i] != p {
			moved = true
		}
		// Incremental spatial-index maintenance: re-bucket the node only
		// if its final position crossed a cell boundary.
		nw.g.update(i, nw.pos[i])
	}
	if moved {
		nw.posGen++
	}
	return nil
}

// PositionVersion returns a counter that changes whenever any node
// position has changed (mobility steps that moved someone, SetPositions).
// Consumers holding derived structures — adjacency views, masked churn
// snapshots — compare it to decide whether a refresh is needed; on a
// static network it never changes.
func (nw *Network) PositionVersion() uint64 { return nw.posGen }

// SetPositions replaces every node position (copying pts) and re-indexes
// the spatial grid. Positions must lie inside the deployment area; the
// waypoint state is unchanged, so mobility resumes toward the existing
// waypoints. It exists for tests and fixed layouts.
func (nw *Network) SetPositions(pts []Point) error {
	if len(pts) != nw.cfg.N {
		return fmt.Errorf("topology: %d positions for %d nodes", len(pts), nw.cfg.N)
	}
	for i, p := range pts {
		if p.X < 0 || p.X > nw.cfg.Width || p.Y < 0 || p.Y > nw.cfg.Height {
			return fmt.Errorf("topology: position %d (%g, %g) outside the %g x %g area",
				i, p.X, p.Y, nw.cfg.Width, nw.cfg.Height)
		}
	}
	copy(nw.pos, pts)
	nw.g.rebuild(nw.pos)
	nw.posGen++
	return nil
}

// IsLink reports whether i and j are within transmission range. The
// comparison is on squared distances — the same predicate as
// dist <= Range without the square root, which the adjacency scans pay
// once per candidate pair.
func (nw *Network) IsLink(i, j int) bool {
	if i == j {
		return false
	}
	dx := nw.pos[i].X - nw.pos[j].X
	dy := nw.pos[i].Y - nw.pos[j].Y
	return dx*dx+dy*dy <= nw.rangeSq
}

// Neighbors returns the indices of node i's neighbors (fresh slice, in
// ascending index order).
func (nw *Network) Neighbors(i int) []int {
	return nw.AppendNeighbors(i, nil)
}

// AppendNeighbors appends node i's neighbors to out in ascending index
// order and returns the extended slice. It scans only the 3x3 cell block
// around the node, filtering each candidate bucket sequentially and then
// sorting the survivors — far fewer elements than the candidates — so
// the output order matches the linear scan exactly. Reusing out across
// calls makes the query allocation-free.
func (nw *Network) AppendNeighbors(i int, out []int) []int {
	var heads [9][]int
	m := nw.g.neighborhood(nw.pos[i], &heads)
	start := len(out)
	for k := 0; k < m; k++ {
		for _, j := range heads[k] {
			if nw.IsLink(i, j) {
				out = append(out, j)
			}
		}
	}
	sortNeighbors(out[start:])
	return out
}

// Degree returns node i's neighbor count.
func (nw *Network) Degree(i int) int {
	var heads [9][]int
	m := nw.g.neighborhood(nw.pos[i], &heads)
	d := 0
	for k := 0; k < m; k++ {
		for _, j := range heads[k] {
			if nw.IsLink(i, j) {
				d++
			}
		}
	}
	return d
}

// AdjacencyLists returns the full neighbor structure (fresh slices).
func (nw *Network) AdjacencyLists() [][]int {
	return nw.AdjacencyInto(nil)
}

// AdjacencyInto refills dst with the full neighbor structure and returns
// it, reusing dst's per-node slices (truncated and re-appended, so their
// capacity persists across snapshots). Passing the previous snapshot back
// in makes repeated re-snapshots — mobility, churn stages — allocation-
// free in steady state. Contents and ordering are identical to
// AdjacencyLists.
func (nw *Network) AdjacencyInto(dst [][]int) [][]int {
	n := nw.cfg.N
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([][]int, n)
	}
	for i := range dst {
		dst[i] = dst[i][:0] // nil rows stay nil: isolated nodes match brute force
	}
	// Symmetric build: node i only tests candidates j > i, recording each
	// link in both directions. The j < i entries of row i were appended by
	// the earlier iterations in ascending i order, so after sorting the
	// fresh j > i suffix every row is fully ascending — identical to the
	// per-node query — at half the distance checks.
	var heads [9][]int
	for i := 0; i < n; i++ {
		m := nw.g.neighborhood(nw.pos[i], &heads)
		start := len(dst[i])
		for k := 0; k < m; k++ {
			for _, j := range heads[k] {
				if j > i && nw.IsLink(i, j) {
					dst[i] = append(dst[i], j)
				}
			}
		}
		sortNeighbors(dst[i][start:])
		for _, j := range dst[i][start:] {
			dst[j] = append(dst[j], i)
		}
	}
	return dst
}

// BruteForceAdjacencyLists rebuilds the adjacency with the original
// O(n²) pairwise scan. It is retained as the pinned reference for the
// grid index: the differential tests assert element-for-element equality
// against it, and cmd/bench records the grid path's speedup over it.
func (nw *Network) BruteForceAdjacencyLists() [][]int {
	out := make([][]int, nw.cfg.N)
	for i := range out {
		var nbrs []int
		for j := range nw.pos {
			if nw.IsLink(i, j) {
				nbrs = append(nbrs, j)
			}
		}
		out[i] = nbrs
	}
	return out
}

// Connected reports whether the current snapshot graph is connected.
func (nw *Network) Connected() bool {
	n := nw.cfg.N
	if n <= 1 {
		return true
	}
	visited := make([]bool, n)
	queue := make([]int, 1, n)
	var scratch []int
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		scratch = nw.AppendNeighbors(u, scratch[:0])
		for _, v := range scratch {
			if !visited[v] {
				visited[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == n
}

// HiddenNodes returns the nodes that can interfere at receiver r but are
// invisible to transmitter t: neighbors of r that are neither neighbors
// of t nor t itself. These are the classic hidden terminals for the
// transmission t → r.
func (nw *Network) HiddenNodes(t, r int) []int {
	var out []int
	for _, h := range nw.Neighbors(r) {
		if h != t && !nw.IsLink(t, h) {
			out = append(out, h)
		}
	}
	return out
}

// MeanDegree returns the average neighbor count.
func (nw *Network) MeanDegree() float64 {
	var sum int
	for i := 0; i < nw.cfg.N; i++ {
		sum += nw.Degree(i)
	}
	return float64(sum) / float64(nw.cfg.N)
}

// Package topology models the spatial substrate of the multi-hop
// experiments (paper Section VII.B): node placement in a rectangular
// area, unit-disk connectivity with a fixed transmission range, and the
// random-waypoint mobility model.
//
// Units: positions and ranges in meters, speeds in meters/second, times
// in seconds. The paper's scenario is 100 nodes, 1000 m × 1000 m, 250 m
// range, speeds uniform in [0, 5] m/s.
package topology

import (
	"errors"
	"fmt"
	"math"

	"selfishmac/internal/rng"
)

// Point is a position in the plane (meters).
type Point struct {
	X, Y float64
}

// DistTo returns the Euclidean distance to q.
func (p Point) DistTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Config parameterises a network.
type Config struct {
	// N is the node count.
	N int
	// Width and Height are the deployment area in meters.
	Width, Height float64
	// Range is the transmission (and carrier-sense) radius in meters.
	Range float64
	// MinSpeed and MaxSpeed bound the random-waypoint speed in m/s.
	// MaxSpeed = 0 yields a static network.
	MinSpeed, MaxSpeed float64
	// Pause is the dwell time at each waypoint in seconds.
	Pause float64
	// Seed drives placement and mobility.
	Seed uint64
}

// PaperConfig returns the paper's Section VII.B scenario.
func PaperConfig(seed uint64) Config {
	return Config{
		N:        100,
		Width:    1000,
		Height:   1000,
		Range:    250,
		MinSpeed: 0,
		MaxSpeed: 5,
		Pause:    0,
		Seed:     seed,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	var errs []error
	if c.N < 1 {
		errs = append(errs, fmt.Errorf("N = %d must be >= 1", c.N))
	}
	if c.Width <= 0 || c.Height <= 0 {
		errs = append(errs, fmt.Errorf("area %g x %g must be positive", c.Width, c.Height))
	}
	if c.Range <= 0 {
		errs = append(errs, fmt.Errorf("range %g must be positive", c.Range))
	}
	if c.MinSpeed < 0 || c.MaxSpeed < c.MinSpeed {
		errs = append(errs, fmt.Errorf("speed bounds [%g, %g] invalid", c.MinSpeed, c.MaxSpeed))
	}
	if c.Pause < 0 {
		errs = append(errs, errors.New("pause must be non-negative"))
	}
	return errors.Join(errs...)
}

// Network is a set of (possibly mobile) nodes with unit-disk links.
type Network struct {
	cfg       Config
	pos       []Point
	waypoint  []Point
	speed     []float64
	pauseLeft []float64
	src       *rng.Source
}

// New places cfg.N nodes uniformly at random and initialises their
// random-waypoint state.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("topology: invalid config: %w", err)
	}
	nw := &Network{
		cfg:       cfg,
		pos:       make([]Point, cfg.N),
		waypoint:  make([]Point, cfg.N),
		speed:     make([]float64, cfg.N),
		pauseLeft: make([]float64, cfg.N),
		src:       rng.New(cfg.Seed),
	}
	for i := range nw.pos {
		nw.pos[i] = nw.randomPoint()
		nw.newLeg(i)
	}
	return nw, nil
}

func (nw *Network) randomPoint() Point {
	return Point{
		X: nw.src.UniformRange(0, nw.cfg.Width),
		Y: nw.src.UniformRange(0, nw.cfg.Height),
	}
}

// newLeg assigns node i a fresh waypoint and speed.
func (nw *Network) newLeg(i int) {
	nw.waypoint[i] = nw.randomPoint()
	nw.speed[i] = nw.src.UniformRange(nw.cfg.MinSpeed, nw.cfg.MaxSpeed)
	nw.pauseLeft[i] = 0
}

// N returns the node count.
func (nw *Network) N() int { return nw.cfg.N }

// Config returns the network's configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Position returns node i's current position.
func (nw *Network) Position(i int) Point { return nw.pos[i] }

// Positions returns a copy of all node positions.
func (nw *Network) Positions() []Point {
	return append([]Point(nil), nw.pos...)
}

// Step advances the random-waypoint mobility by dt seconds: each node
// moves toward its waypoint at its leg speed, pauses on arrival, then
// picks a new leg. dt must be non-negative.
func (nw *Network) Step(dt float64) error {
	if dt < 0 {
		return fmt.Errorf("topology: negative time step %g", dt)
	}
	for i := range nw.pos {
		remaining := dt
		for remaining > 0 {
			if nw.pauseLeft[i] > 0 {
				if nw.pauseLeft[i] >= remaining {
					nw.pauseLeft[i] -= remaining
					remaining = 0
					break
				}
				remaining -= nw.pauseLeft[i]
				nw.pauseLeft[i] = 0
				nw.newLeg(i)
			}
			sp := nw.speed[i]
			if sp <= 0 {
				// Zero-speed leg: the node dwells until the next leg; to
				// avoid an infinite loop treat it as pausing out the step.
				remaining = 0
				break
			}
			dist := nw.pos[i].DistTo(nw.waypoint[i])
			travel := sp * remaining
			if travel < dist {
				f := travel / dist
				nw.pos[i].X += (nw.waypoint[i].X - nw.pos[i].X) * f
				nw.pos[i].Y += (nw.waypoint[i].Y - nw.pos[i].Y) * f
				remaining = 0
			} else {
				nw.pos[i] = nw.waypoint[i]
				remaining -= dist / sp
				if nw.cfg.Pause > 0 {
					nw.pauseLeft[i] = nw.cfg.Pause
				} else {
					nw.newLeg(i)
				}
			}
		}
	}
	return nil
}

// IsLink reports whether i and j are within transmission range.
func (nw *Network) IsLink(i, j int) bool {
	return i != j && nw.pos[i].DistTo(nw.pos[j]) <= nw.cfg.Range
}

// Neighbors returns the indices of node i's neighbors (fresh slice).
func (nw *Network) Neighbors(i int) []int {
	var out []int
	for j := range nw.pos {
		if nw.IsLink(i, j) {
			out = append(out, j)
		}
	}
	return out
}

// Degree returns node i's neighbor count.
func (nw *Network) Degree(i int) int {
	d := 0
	for j := range nw.pos {
		if nw.IsLink(i, j) {
			d++
		}
	}
	return d
}

// AdjacencyLists returns the full neighbor structure.
func (nw *Network) AdjacencyLists() [][]int {
	out := make([][]int, nw.cfg.N)
	for i := range out {
		out[i] = nw.Neighbors(i)
	}
	return out
}

// Connected reports whether the current snapshot graph is connected.
func (nw *Network) Connected() bool {
	n := nw.cfg.N
	if n <= 1 {
		return true
	}
	visited := make([]bool, n)
	queue := []int{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if !visited[v] && nw.IsLink(u, v) {
				visited[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == n
}

// HiddenNodes returns the nodes that can interfere at receiver r but are
// invisible to transmitter t: neighbors of r that are neither neighbors
// of t nor t itself. These are the classic hidden terminals for the
// transmission t → r.
func (nw *Network) HiddenNodes(t, r int) []int {
	var out []int
	for _, h := range nw.Neighbors(r) {
		if h != t && !nw.IsLink(t, h) {
			out = append(out, h)
		}
	}
	return out
}

// MeanDegree returns the average neighbor count.
func (nw *Network) MeanDegree() float64 {
	var sum int
	for i := 0; i < nw.cfg.N; i++ {
		sum += nw.Degree(i)
	}
	return float64(sum) / float64(nw.cfg.N)
}

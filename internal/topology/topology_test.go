package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func mustNetwork(t testing.TB, cfg Config) *Network {
	t.Helper()
	nw, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return nw
}

func TestValidate(t *testing.T) {
	good := PaperConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("paper config rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"no nodes", func(c *Config) { c.N = 0 }},
		{"zero width", func(c *Config) { c.Width = 0 }},
		{"zero range", func(c *Config) { c.Range = 0 }},
		{"inverted speeds", func(c *Config) { c.MinSpeed = 5; c.MaxSpeed = 1 }},
		{"negative pause", func(c *Config) { c.Pause = -1 }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			c := PaperConfig(1)
			tc.mut(&c)
			if err := c.Validate(); err == nil {
				t.Fatalf("accepted %s", tc.name)
			}
			if _, err := New(c); err == nil {
				t.Fatalf("New accepted %s", tc.name)
			}
		})
	}
}

func TestPaperConfigValues(t *testing.T) {
	c := PaperConfig(7)
	if c.N != 100 || c.Width != 1000 || c.Height != 1000 || c.Range != 250 || c.MaxSpeed != 5 {
		t.Fatalf("paper config mismatch: %+v", c)
	}
}

func TestPlacementInBounds(t *testing.T) {
	nw := mustNetwork(t, PaperConfig(3))
	for i, p := range nw.Positions() {
		if p.X < 0 || p.X > 1000 || p.Y < 0 || p.Y > 1000 {
			t.Fatalf("node %d placed out of bounds: %+v", i, p)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := mustNetwork(t, PaperConfig(5))
	b := mustNetwork(t, PaperConfig(5))
	for i := range a.Positions() {
		if a.Position(i) != b.Position(i) {
			t.Fatalf("same seed, different placement at node %d", i)
		}
	}
	if err := a.Step(10); err != nil {
		t.Fatal(err)
	}
	if err := b.Step(10); err != nil {
		t.Fatal(err)
	}
	for i := range a.Positions() {
		if a.Position(i) != b.Position(i) {
			t.Fatalf("same seed, different trajectory at node %d", i)
		}
	}
	c := mustNetwork(t, PaperConfig(6))
	if c.Position(0) == a.Position(0) && c.Position(1) == a.Position(1) {
		t.Fatal("different seeds produced identical placement")
	}
}

func TestLinksSymmetricIrreflexive(t *testing.T) {
	nw := mustNetwork(t, PaperConfig(11))
	for i := 0; i < nw.N(); i++ {
		if nw.IsLink(i, i) {
			t.Fatalf("node %d linked to itself", i)
		}
		for j := i + 1; j < nw.N(); j++ {
			if nw.IsLink(i, j) != nw.IsLink(j, i) {
				t.Fatalf("asymmetric link %d-%d", i, j)
			}
		}
	}
}

func TestNeighborsMatchDegreeAndRange(t *testing.T) {
	nw := mustNetwork(t, PaperConfig(13))
	for i := 0; i < nw.N(); i++ {
		nbrs := nw.Neighbors(i)
		if len(nbrs) != nw.Degree(i) {
			t.Fatalf("node %d: %d neighbors vs degree %d", i, len(nbrs), nw.Degree(i))
		}
		for _, j := range nbrs {
			if d := nw.Position(i).DistTo(nw.Position(j)); d > 250 {
				t.Fatalf("neighbor %d-%d at distance %g > range", i, j, d)
			}
		}
	}
}

func TestAdjacencyListsConsistent(t *testing.T) {
	nw := mustNetwork(t, PaperConfig(17))
	adj := nw.AdjacencyLists()
	for i, nbrs := range adj {
		want := nw.Neighbors(i)
		if len(nbrs) != len(want) {
			t.Fatalf("node %d adjacency mismatch", i)
		}
	}
}

func TestConnectedLine(t *testing.T) {
	// Three nodes in a line at spacing 200 with range 250: connected.
	nw := mustNetwork(t, Config{N: 3, Width: 1000, Height: 10, Range: 250, Seed: 1})
	if err := nw.SetPositions([]Point{{0, 0}, {200, 0}, {400, 0}}); err != nil {
		t.Fatal(err)
	}
	if !nw.Connected() {
		t.Fatal("line network should be connected")
	}
	// Move the last node out of range of both others.
	if err := nw.SetPositions([]Point{{0, 0}, {200, 0}, {900, 0}}); err != nil {
		t.Fatal(err)
	}
	if nw.Connected() {
		t.Fatal("split network reported connected")
	}
}

func TestConnectedSingleNode(t *testing.T) {
	nw := mustNetwork(t, Config{N: 1, Width: 10, Height: 10, Range: 1, Seed: 1})
	if !nw.Connected() {
		t.Fatal("single node must count as connected")
	}
}

func TestHiddenNodes(t *testing.T) {
	// t --- r --- h: h is hidden from t (in range of r, out of range of t).
	nw := mustNetwork(t, Config{N: 3, Width: 1000, Height: 10, Range: 250, Seed: 1})
	if err := nw.SetPositions([]Point{{0, 0}, {200, 0}, {400, 0}}); err != nil {
		t.Fatal(err)
	}
	hidden := nw.HiddenNodes(0, 1)
	if len(hidden) != 1 || hidden[0] != 2 {
		t.Fatalf("hidden nodes for 0->1 = %v, want [2]", hidden)
	}
	// From the middle node, nothing is hidden for 1 -> 0 except... node 2
	// is a neighbor of 1 but not of 0, so for transmission 1->0 the
	// receiver is 0; hidden = neighbors(0) \ neighbors(1) \ {1} = {}.
	if h := nw.HiddenNodes(1, 0); len(h) != 0 {
		t.Fatalf("hidden nodes for 1->0 = %v, want none", h)
	}
}

func TestStepMovesTowardWaypoint(t *testing.T) {
	cfg := Config{N: 1, Width: 1000, Height: 1000, Range: 100, MinSpeed: 2, MaxSpeed: 2, Seed: 9}
	nw := mustNetwork(t, cfg)
	start := nw.Position(0)
	wp := nw.waypoint[0]
	distBefore := start.DistTo(wp)
	if err := nw.Step(1); err != nil {
		t.Fatal(err)
	}
	moved := start.DistTo(nw.Position(0))
	if math.Abs(moved-2) > 1e-9 && distBefore > 2 {
		t.Fatalf("node moved %g m in 1 s at 2 m/s", moved)
	}
	distAfter := nw.Position(0).DistTo(wp)
	if distAfter >= distBefore {
		t.Fatalf("node did not approach waypoint: %g -> %g", distBefore, distAfter)
	}
}

func TestStepStaysInBounds(t *testing.T) {
	nw := mustNetwork(t, PaperConfig(21))
	for step := 0; step < 200; step++ {
		if err := nw.Step(5); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range nw.Positions() {
		if p.X < -1e-9 || p.X > 1000+1e-9 || p.Y < -1e-9 || p.Y > 1000+1e-9 {
			t.Fatalf("node %d escaped the area after mobility: %+v", i, p)
		}
	}
}

func TestStepZeroSpeedStatic(t *testing.T) {
	cfg := PaperConfig(23)
	cfg.MinSpeed, cfg.MaxSpeed = 0, 0
	nw := mustNetwork(t, cfg)
	before := nw.Positions()
	if err := nw.Step(100); err != nil {
		t.Fatal(err)
	}
	for i, p := range nw.Positions() {
		if p != before[i] {
			t.Fatalf("static network moved: node %d %+v -> %+v", i, before[i], p)
		}
	}
}

func TestStepRejectsNegative(t *testing.T) {
	nw := mustNetwork(t, PaperConfig(29))
	if err := nw.Step(-1); err == nil {
		t.Fatal("negative dt accepted")
	}
}

func TestPauseDelaysNewLeg(t *testing.T) {
	cfg := Config{N: 1, Width: 100, Height: 100, Range: 10, MinSpeed: 50, MaxSpeed: 50, Pause: 1000, Seed: 31}
	nw := mustNetwork(t, cfg)
	// At 50 m/s in a 100x100 box, the waypoint is reached within ~3 s;
	// then the node pauses for 1000 s.
	if err := nw.Step(5); err != nil {
		t.Fatal(err)
	}
	posAtPause := nw.Position(0)
	if err := nw.Step(10); err != nil {
		t.Fatal(err)
	}
	if nw.Position(0) != posAtPause {
		t.Fatalf("node moved during pause: %+v -> %+v", posAtPause, nw.Position(0))
	}
}

func TestMeanDegreeMatchesDensity(t *testing.T) {
	// Expected degree ≈ (n-1) * (pi r^2 / area) for uniform placement,
	// reduced by boundary effects; check the right ballpark.
	nw := mustNetwork(t, PaperConfig(37))
	got := nw.MeanDegree()
	ideal := 99 * math.Pi * 250 * 250 / 1e6 // ≈ 19.4 ignoring edges
	if got < 0.6*ideal || got > 1.1*ideal {
		t.Fatalf("mean degree %g implausible (ideal ~%g)", got, ideal)
	}
}

func TestDistTo(t *testing.T) {
	if d := (Point{0, 0}).DistTo(Point{3, 4}); d != 5 {
		t.Fatalf("DistTo = %g, want 5", d)
	}
	if d := (Point{1, 1}).DistTo(Point{1, 1}); d != 0 {
		t.Fatalf("DistTo self = %g", d)
	}
}

// Property: after arbitrary mobility, links remain symmetric and the
// hidden-node sets are consistent with the link structure.
func TestMobilityInvariantsProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		cfg := PaperConfig(seed)
		cfg.N = 25
		nw, err := New(cfg)
		if err != nil {
			return false
		}
		for s := 0; s < int(steps%20); s++ {
			if err := nw.Step(7); err != nil {
				return false
			}
		}
		for i := 0; i < nw.N(); i++ {
			for j := 0; j < nw.N(); j++ {
				if i != j && nw.IsLink(i, j) != nw.IsLink(j, i) {
					return false
				}
			}
		}
		// Hidden nodes must be neighbors of r and not of t.
		for _, r := range nw.Neighbors(0) {
			for _, h := range nw.HiddenNodes(0, r) {
				if !nw.IsLink(r, h) || nw.IsLink(0, h) || h == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

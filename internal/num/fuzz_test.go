package num

import (
	"math"
	"testing"
)

// FuzzGeomSeriesSum checks the summation form against the closed form and
// the basic shape properties for arbitrary (x, m).
func FuzzGeomSeriesSum(f *testing.F) {
	f.Add(0.5, 6)
	f.Add(1.0, 6) // singular point of the closed form
	f.Add(0.0, 0)
	f.Add(1.99, 12)
	f.Fuzz(func(t *testing.T, x float64, m int) {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 || x > 4 {
			t.Skip()
		}
		if m < 0 || m > 20 {
			t.Skip()
		}
		got := GeomSeriesSum(x, m)
		if math.IsNaN(got) || got < 0 {
			t.Fatalf("GeomSeriesSum(%g, %d) = %g", x, m, got)
		}
		if m == 0 && got != 0 {
			t.Fatalf("empty sum = %g", got)
		}
		if m > 0 && got < 1 {
			t.Fatalf("sum with r=0 term = %g < 1", got)
		}
		if math.Abs(x-1) > 1e-9 && m > 0 {
			want := (1 - math.Pow(x, float64(m))) / (1 - x)
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("GeomSeriesSum(%g, %d) = %g, closed form %g", x, m, got, want)
			}
		}
	})
}

// FuzzBisect drives the robust root finder with arbitrary monotone linear
// functions: whenever the bracket is valid the returned root must satisfy
// |f(root)| small.
func FuzzBisect(f *testing.F) {
	f.Add(1.0, -0.5)
	f.Add(100.0, -3.0)
	f.Add(0.001, -0.0005)
	f.Fuzz(func(t *testing.T, slope, offset float64) {
		if math.IsNaN(slope) || math.IsInf(slope, 0) || slope <= 1e-9 || slope > 1e9 {
			t.Skip()
		}
		if math.IsNaN(offset) || offset >= 0 || offset < -slope { // root in (0, 1]
			t.Skip()
		}
		lin := func(x float64) float64 { return slope*x + offset }
		root, err := Bisect(lin, 0, 1, Options{})
		if err != nil {
			t.Fatalf("Bisect: %v", err)
		}
		want := -offset / slope
		if math.Abs(root-want) > 1e-9 {
			t.Fatalf("root %g, want %g", root, want)
		}
	})
}

package num

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBisectSimpleRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	root, err := Bisect(f, 0, 2, Options{})
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Fatalf("root = %.12f, want sqrt(2)", root)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x }
	root, err := Bisect(f, 0, 1, Options{})
	if err != nil || root != 0 {
		t.Fatalf("root = %v err = %v, want 0, nil", root, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, Options{}); !errors.Is(err, ErrBracket) {
		t.Fatalf("err = %v, want ErrBracket", err)
	}
}

func TestBrentMatchesKnownRoots(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"sqrt2", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cos", math.Cos, 1, 2, math.Pi / 2},
		{"cubic", func(x float64) float64 { return x*x*x - x - 2 }, 1, 2, 1.5213797068045676},
		{"exp", func(x float64) float64 { return math.Exp(x) - 3 }, 0, 2, math.Log(3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root, err := Brent(tc.f, tc.a, tc.b, Options{})
			if err != nil {
				t.Fatalf("Brent: %v", err)
			}
			if math.Abs(root-tc.want) > 1e-9 {
				t.Fatalf("root = %.12f, want %.12f", root, tc.want)
			}
		})
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 + x*x }, -1, 1, Options{}); !errors.Is(err, ErrBracket) {
		t.Fatalf("err = %v, want ErrBracket", err)
	}
}

// Property: for random monotone linear functions crossing zero inside the
// interval, both root finders agree with the analytic root.
func TestRootFindersProperty(t *testing.T) {
	f := func(slope, offset uint16) bool {
		m := 0.1 + float64(slope%1000)/100 // positive slope
		c := -m * (0.1 + float64(offset%800)/100)
		lin := func(x float64) float64 { return m*x + c }
		want := -c / m // in (0, ~8.1)
		rb, err1 := Bisect(lin, -1, 10, Options{})
		rr, err2 := Brent(lin, -1, 10, Options{})
		return err1 == nil && err2 == nil &&
			math.Abs(rb-want) < 1e-8 && math.Abs(rr-want) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedPointScalarContraction(t *testing.T) {
	// x = cos(x) has the Dottie number as unique fixed point.
	x := []float64{0.5}
	f := func(in, out []float64) { out[0] = math.Cos(in[0]) }
	iters, err := FixedPoint(f, x, 1, Options{})
	if err != nil {
		t.Fatalf("FixedPoint: %v (after %d iters)", err, iters)
	}
	if math.Abs(x[0]-0.7390851332151607) > 1e-9 {
		t.Fatalf("fixed point = %.12f, want Dottie number", x[0])
	}
}

func TestFixedPointDampingStabilizes(t *testing.T) {
	// x = 3.5 - x oscillates forever undamped but converges to 1.75 damped.
	f := func(in, out []float64) { out[0] = 3.5 - in[0] }
	x := []float64{0}
	if _, err := FixedPoint(f, x, 1, Options{MaxIter: 100}); err == nil {
		t.Fatal("undamped iteration on an oscillating map should not converge")
	}
	x[0] = 0
	if _, err := FixedPoint(f, x, 0.5, Options{}); err != nil {
		t.Fatalf("damped FixedPoint: %v", err)
	}
	if math.Abs(x[0]-1.75) > 1e-9 {
		t.Fatalf("fixed point = %g, want 1.75", x[0])
	}
}

func TestFixedPointVectorSystem(t *testing.T) {
	// x = 0.5*y + 0.1, y = 0.5*x + 0.1  =>  x = y = 0.2
	f := func(in, out []float64) {
		out[0] = 0.5*in[1] + 0.1
		out[1] = 0.5*in[0] + 0.1
	}
	x := []float64{0, 1}
	if _, err := FixedPoint(f, x, 1, Options{}); err != nil {
		t.Fatalf("FixedPoint: %v", err)
	}
	if math.Abs(x[0]-0.2) > 1e-9 || math.Abs(x[1]-0.2) > 1e-9 {
		t.Fatalf("fixed point = %v, want [0.2 0.2]", x)
	}
}

func TestFixedPointRejectsBadDamping(t *testing.T) {
	f := func(in, out []float64) { out[0] = in[0] }
	for _, d := range []float64{0, -1, 1.5} {
		if _, err := FixedPoint(f, []float64{1}, d, Options{}); err == nil {
			t.Errorf("damping %g accepted", d)
		}
	}
}

func TestGoldenMax(t *testing.T) {
	f := func(x float64) float64 { return -(x - 3) * (x - 3) }
	x, err := GoldenMax(f, 0, 10, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("GoldenMax: %v", err)
	}
	if math.Abs(x-3) > 1e-8 {
		t.Fatalf("maximizer = %g, want 3", x)
	}
}

func TestGoldenMaxReversedInterval(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(x) }
	x, err := GoldenMax(f, 3, 0, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("GoldenMax: %v", err)
	}
	// Near a flat maximum, function values are indistinguishable within
	// sqrt(machine epsilon) of the peak, so 1e-6 is the honest tolerance.
	if math.Abs(x-math.Pi/2) > 1e-6 {
		t.Fatalf("maximizer = %g, want pi/2", x)
	}
}

func TestGridGoldenMaxMultimodal(t *testing.T) {
	// A positive hump near x=2 plus a slow rise toward 0 from below for
	// large x — the shape that defeats plain golden section.
	f := func(x float64) float64 {
		hump := 3 * math.Exp(-(x-2)*(x-2))
		tail := -5 / (1 + x)
		return hump + tail
	}
	x, err := GridGoldenMax(f, 0, 100, 64, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2.23) > 0.15 { // analytic max near 2.2
		t.Fatalf("maximizer = %g, want near 2.2", x)
	}
	// Plain golden section on the same function lands on the tail.
	xg, err := GoldenMax(f, 0, 100, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if f(xg) >= f(x) {
		t.Skip("golden section happened to find the hump; grid variant still correct")
	}
}

func TestGridGoldenMaxUnimodalMatchesGolden(t *testing.T) {
	f := func(x float64) float64 { return -(x - 3) * (x - 3) }
	xGrid, err := GridGoldenMax(f, 0, 10, 16, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(xGrid-3) > 1e-6 {
		t.Fatalf("maximizer = %g, want 3", xGrid)
	}
}

func TestGridGoldenMaxValidation(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := GridGoldenMax(f, 0, 1, 2, Options{}); err == nil {
		t.Fatal("2 grid points accepted")
	}
	// Reversed interval is normalized.
	x, err := GridGoldenMax(func(x float64) float64 { return -x * x }, 5, -5, 11, Options{Tol: 1e-9})
	if err != nil || math.Abs(x) > 1e-6 {
		t.Fatalf("x = %g err = %v", x, err)
	}
}

func TestArgmaxInt(t *testing.T) {
	f := func(w int) float64 { return -float64((w - 37) * (w - 37)) }
	w, v, err := ArgmaxInt(f, 1, 100)
	if err != nil {
		t.Fatalf("ArgmaxInt: %v", err)
	}
	if w != 37 || v != 0 {
		t.Fatalf("argmax = (%d, %g), want (37, 0)", w, v)
	}
}

func TestArgmaxIntTiesPickSmallest(t *testing.T) {
	f := func(w int) float64 { return 1 }
	w, _, err := ArgmaxInt(f, 5, 10)
	if err != nil || w != 5 {
		t.Fatalf("argmax = %d err = %v, want 5, nil", w, err)
	}
}

func TestArgmaxIntEmptyRange(t *testing.T) {
	if _, _, err := ArgmaxInt(func(int) float64 { return 0 }, 3, 2); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestArgmaxIntCoarseMatchesExhaustive(t *testing.T) {
	peaks := []int{1, 2, 17, 500, 999, 1000}
	for _, peak := range peaks {
		p := peak
		f := func(w int) float64 { return -math.Abs(float64(w - p)) }
		wCoarse, _, err := ArgmaxIntCoarse(f, 1, 1000, 25)
		if err != nil {
			t.Fatalf("peak %d: %v", p, err)
		}
		wExact, _, _ := ArgmaxInt(f, 1, 1000)
		if wCoarse != wExact {
			t.Errorf("peak %d: coarse argmax %d != exact %d", p, wCoarse, wExact)
		}
	}
}

// Property: on unimodal tent functions with arbitrary peaks, the coarse
// argmax equals the true peak for any stride.
func TestArgmaxIntCoarseProperty(t *testing.T) {
	f := func(peakRaw, strideRaw uint16) bool {
		peak := 1 + int(peakRaw%2000)
		stride := 1 + int(strideRaw%100)
		tent := func(w int) float64 { return -math.Abs(float64(w - peak)) }
		got, _, err := ArgmaxIntCoarse(tent, 1, 2000, stride)
		return err == nil && got == peak
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDerivative(t *testing.T) {
	if d := Derivative(math.Sin, 0); math.Abs(d-1) > 1e-6 {
		t.Fatalf("d/dx sin at 0 = %g, want 1", d)
	}
	if d := Derivative(func(x float64) float64 { return x * x }, 3); math.Abs(d-6) > 1e-5 {
		t.Fatalf("d/dx x^2 at 3 = %g, want 6", d)
	}
}

func TestSecondDerivative(t *testing.T) {
	if d := SecondDerivative(func(x float64) float64 { return x * x }, 1); math.Abs(d-2) > 1e-3 {
		t.Fatalf("d2/dx2 x^2 = %g, want 2", d)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tc := range cases {
		if got := Clamp(tc.v, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", tc.v, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestGeomSeriesSum(t *testing.T) {
	cases := []struct {
		x    float64
		m    int
		want float64
	}{
		{0.5, 1, 1},
		{0.5, 2, 1.5},
		{0.5, 3, 1.75},
		{1, 5, 5},   // singular point of the closed form
		{2, 3, 7},   // 1+2+4
		{0, 4, 1},   // only r=0 term
		{0.3, 0, 0}, // empty sum
	}
	for _, tc := range cases {
		if got := GeomSeriesSum(tc.x, tc.m); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("GeomSeriesSum(%g,%d) = %g, want %g", tc.x, tc.m, got, tc.want)
		}
	}
}

// Property: GeomSeriesSum agrees with the closed form away from x=1.
func TestGeomSeriesSumProperty(t *testing.T) {
	f := func(xRaw uint16, mRaw uint8) bool {
		x := float64(xRaw%180) / 100 // [0, 1.79]
		if math.Abs(x-1) < 1e-9 {
			x = 0.5
		}
		m := int(mRaw%12) + 1
		got := GeomSeriesSum(x, m)
		want := (1 - math.Pow(x, float64(m))) / (1 - x)
		return math.Abs(got-want) < 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinspace(t *testing.T) {
	v := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("Linspace = %v, want %v", v, want)
		}
	}
	if last := Linspace(0, math.Pi, 7)[6]; last != math.Pi {
		t.Fatalf("Linspace endpoint = %g, want exactly pi", last)
	}
}

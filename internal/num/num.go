// Package num implements the numerical methods the analytic model needs:
// scalar root finding (bisection, Brent), damped fixed-point iteration for
// systems, scalar maximization (golden section, integer grid with
// refinement), and numeric differentiation.
//
// The package is deliberately small and dependency-free; it exists because
// the Go ecosystem has no standard numerics library and this repository is
// stdlib-only.
package num

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative method exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("num: no convergence")

// ErrBracket is returned when a root finder is given an interval whose
// endpoints do not bracket a sign change.
var ErrBracket = errors.New("num: endpoints do not bracket a root")

// DefaultTol is the default absolute tolerance used when an options value
// leaves Tol unset.
const DefaultTol = 1e-12

// DefaultMaxIter is the default iteration budget.
const DefaultMaxIter = 200

// Options configures the iterative solvers. The zero value selects
// DefaultTol and DefaultMaxIter.
type Options struct {
	// Tol is the absolute tolerance on the solution.
	Tol float64
	// MaxIter bounds the number of iterations.
	MaxIter int
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = DefaultTol
	}
	if o.MaxIter <= 0 {
		o.MaxIter = DefaultMaxIter
	}
	return o
}

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs (or one endpoint must already be a root). Bisection is
// slow but unconditionally robust, which suits the monotone fixed-point
// equations of the Bianchi model.
func Bisect(f func(float64) float64, a, b float64, opts Options) (float64, error) {
	o := opts.withDefaults()
	fa, fb := f(a), f(b)
	switch {
	case fa == 0:
		return a, nil
	case fb == 0:
		return b, nil
	case math.IsNaN(fa) || math.IsNaN(fb):
		return 0, fmt.Errorf("num: Bisect: f is NaN at an endpoint: f(%g)=%g f(%g)=%g", a, fa, b, fb)
	case fa*fb > 0:
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrBracket, a, fa, b, fb)
	}
	lo, hi := a, b
	for i := 0; i < o.MaxIter; i++ {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if fm == 0 || hi-lo < o.Tol {
			return mid, nil
		}
		if fa*fm < 0 {
			hi = mid
		} else {
			lo, fa = mid, fm
		}
	}
	return 0.5 * (lo + hi), nil // interval already tiny relative to budget
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). It converges superlinearly on
// smooth functions while retaining bisection's robustness.
func Brent(f func(float64) float64, a, b float64, opts Options) (float64, error) {
	o := opts.withDefaults()
	fa, fb := f(a), f(b)
	switch {
	case fa == 0:
		return a, nil
	case fb == 0:
		return b, nil
	case math.IsNaN(fa) || math.IsNaN(fb):
		return 0, fmt.Errorf("num: Brent: f is NaN at an endpoint")
	case fa*fb > 0:
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrBracket, a, fa, b, fb)
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < o.MaxIter; i++ {
		if fb == 0 || math.Abs(b-a) < o.Tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		cond := (s < (3*a+b)/4 && s < b) || (s > (3*a+b)/4 && s > b)
		if cond ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < o.Tol) ||
			(!mflag && math.Abs(c-d) < o.Tol) {
			s = 0.5 * (a + b)
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d, c, fc = c, b, fb
		if fa*fs < 0 {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, fmt.Errorf("%w: Brent after %d iterations", ErrNoConvergence, o.MaxIter)
}

// FixedPoint iterates x <- (1-damping)*x + damping*f(x) on a vector until
// the max-norm update falls below tol. It writes the solution into x and
// returns the number of iterations used. damping must be in (0, 1];
// damping = 1 is plain Picard iteration.
func FixedPoint(f func(x, out []float64), x []float64, damping float64, opts Options) (int, error) {
	o := opts.withDefaults()
	if damping <= 0 || damping > 1 {
		return 0, fmt.Errorf("num: FixedPoint: damping %g outside (0, 1]", damping)
	}
	next := make([]float64, len(x))
	for it := 1; it <= o.MaxIter; it++ {
		f(x, next)
		var delta float64
		for i := range x {
			if math.IsNaN(next[i]) {
				return it, fmt.Errorf("num: FixedPoint: NaN at component %d on iteration %d", i, it)
			}
			nx := (1-damping)*x[i] + damping*next[i]
			if d := math.Abs(nx - x[i]); d > delta {
				delta = d
			}
			x[i] = nx
		}
		if delta < o.Tol {
			return it, nil
		}
	}
	return o.MaxIter, fmt.Errorf("%w: FixedPoint after %d iterations", ErrNoConvergence, o.MaxIter)
}

// GoldenMax maximizes a unimodal function on [a, b] by golden-section
// search and returns the maximizer.
func GoldenMax(f func(float64) float64, a, b float64, opts Options) (float64, error) {
	o := opts.withDefaults()
	if b < a {
		a, b = b, a
	}
	const invPhi = 0.6180339887498949 // (sqrt(5)-1)/2
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < o.MaxIter && b-a > o.Tol; i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		}
	}
	return 0.5 * (a + b), nil
}

// GridGoldenMax maximizes a possibly multimodal function on [a, b]: it
// scans an even grid of gridPoints samples to locate the best region,
// then refines with golden-section search between the neighbors of the
// best sample. Unlike GoldenMax it does not require unimodality — it
// finds the global maximum provided the grid resolves the winning mode.
func GridGoldenMax(f func(float64) float64, a, b float64, gridPoints int, opts Options) (float64, error) {
	if gridPoints < 3 {
		return 0, fmt.Errorf("num: GridGoldenMax needs >= 3 grid points, got %d", gridPoints)
	}
	if b < a {
		a, b = b, a
	}
	xs := Linspace(a, b, gridPoints)
	bestI := 0
	bestV := f(xs[0])
	for i := 1; i < len(xs); i++ {
		if v := f(xs[i]); v > bestV {
			bestI, bestV = i, v
		}
	}
	lo, hi := a, b
	if bestI > 0 {
		lo = xs[bestI-1]
	}
	if bestI < len(xs)-1 {
		hi = xs[bestI+1]
	}
	x, err := GoldenMax(f, lo, hi, opts)
	if err != nil {
		return 0, err
	}
	// The refinement must never do worse than the best grid sample.
	if f(x) < bestV {
		return xs[bestI], nil
	}
	return x, nil
}

// ArgmaxInt maximizes f over the integers [lo, hi] by exhaustive
// evaluation and returns the smallest maximizer and the maximum value.
// It returns an error if hi < lo.
func ArgmaxInt(f func(int) float64, lo, hi int) (int, float64, error) {
	if hi < lo {
		return 0, 0, fmt.Errorf("num: ArgmaxInt: empty range [%d, %d]", lo, hi)
	}
	best, bestVal := lo, f(lo)
	for w := lo + 1; w <= hi; w++ {
		if v := f(w); v > bestVal {
			best, bestVal = w, v
		}
	}
	return best, bestVal, nil
}

// ArgmaxIntCoarse maximizes f over the integers [lo, hi] assuming f is
// unimodal: it scans a coarse grid with the given stride, then refines
// exhaustively around the best coarse point. This turns an O(hi-lo) sweep
// into O((hi-lo)/stride + 2*stride) evaluations, which matters when each
// evaluation solves a fixed point. stride < 1 is treated as 1.
func ArgmaxIntCoarse(f func(int) float64, lo, hi, stride int) (int, float64, error) {
	if hi < lo {
		return 0, 0, fmt.Errorf("num: ArgmaxIntCoarse: empty range [%d, %d]", lo, hi)
	}
	if stride < 1 {
		stride = 1
	}
	best, bestVal := lo, f(lo)
	for w := lo + stride; w <= hi; w += stride {
		if v := f(w); v > bestVal {
			best, bestVal = w, v
		}
	}
	// Refine around the coarse winner.
	rlo, rhi := best-stride+1, best+stride-1
	if rlo < lo {
		rlo = lo
	}
	if rhi > hi {
		rhi = hi
	}
	for w := rlo; w <= rhi; w++ {
		if v := f(w); v > bestVal || (v == bestVal && w < best) {
			best, bestVal = w, v
		}
	}
	return best, bestVal, nil
}

// Derivative estimates f'(x) with a central difference using a
// scale-aware step.
func Derivative(f func(float64) float64, x float64) float64 {
	h := 1e-6 * math.Max(1, math.Abs(x))
	return (f(x+h) - f(x-h)) / (2 * h)
}

// SecondDerivative estimates f”(x) with a central difference.
func SecondDerivative(f func(float64) float64, x float64) float64 {
	h := 1e-4 * math.Max(1, math.Abs(x))
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// GeomSeriesSum returns sum_{r=0}^{m-1} x^r, handling x == 1 exactly.
// This is the summation form of the (1-x^m)/(1-x) factor in the paper's
// eq. (2), which is singular at x = 1 (i.e. collision probability 1/2).
func GeomSeriesSum(x float64, m int) float64 {
	if m <= 0 {
		return 0
	}
	if x == 1 {
		return float64(m)
	}
	// Direct summation is both accurate and fast for the small m used in
	// 802.11 (m <= ~10); it also avoids cancellation near x = 1.
	sum, term := 1.0, 1.0
	for r := 1; r < m; r++ {
		term *= x
		sum += term
	}
	return sum
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be >= 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("num: Linspace needs n >= 2, got %d", n))
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

package macsim

import (
	"math"
	"testing"
	"testing/quick"

	"selfishmac/internal/bianchi"
	"selfishmac/internal/phy"
	"selfishmac/internal/stats"
)

func basicTiming(t testing.TB) phy.Timing {
	t.Helper()
	return phy.Default().MustTiming(phy.Basic)
}

func defaultConfig(t testing.TB, cw []int) Config {
	t.Helper()
	return Config{
		Timing:   basicTiming(t),
		MaxStage: phy.Default().MaxBackoffStage,
		CW:       cw,
		Duration: 50e6, // 50 s
		Seed:     1,
		Gain:     1,
		Cost:     0.01,
	}
}

func TestValidate(t *testing.T) {
	good := defaultConfig(t, []int{32, 32})
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"no nodes", func(c *Config) { c.CW = nil }},
		{"cw 0", func(c *Config) { c.CW = []int{0} }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"bad stage", func(c *Config) { c.MaxStage = -1 }},
		{"bad timing", func(c *Config) { c.Timing.Slot = 0 }},
		{"negative cost", func(c *Config) { c.Cost = -1 }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			c := defaultConfig(t, []int{32, 32})
			tc.mut(&c)
			if err := c.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if _, err := Run(c); err == nil {
				t.Fatalf("Run accepted %s", tc.name)
			}
		})
	}
}

func TestDeterministicBySeed(t *testing.T) {
	cfg := defaultConfig(t, []int{64, 64, 64})
	cfg.Duration = 5e6
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Slots != b.Slots || a.Time != b.Time {
		t.Fatalf("same seed diverged: %d/%g vs %d/%g", a.Slots, a.Time, b.Slots, b.Time)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d stats diverged", i)
		}
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes[0].Attempts == a.Nodes[0].Attempts && c.Nodes[0].Successes == a.Nodes[0].Successes {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestCountingInvariants(t *testing.T) {
	cfg := defaultConfig(t, []int{32, 64, 128, 256})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var attempts, successes, collisions int64
	for _, n := range res.Nodes {
		if n.Attempts != n.Successes+n.Collisions {
			t.Errorf("attempts %d != successes %d + collisions %d", n.Attempts, n.Successes, n.Collisions)
		}
		attempts += n.Attempts
		successes += n.Successes
		collisions += n.Collisions
	}
	if successes != res.SuccessEvents {
		t.Errorf("node successes %d != success events %d", successes, res.SuccessEvents)
	}
	if collisions < 2*res.CollisionEvents {
		t.Errorf("collision events %d need >= 2 transmitters each, nodes recorded %d", res.CollisionEvents, collisions)
	}
	if res.Slots != res.IdleSlots+res.SuccessEvents+res.CollisionEvents {
		t.Errorf("slot decomposition broken: %d != %d + %d + %d",
			res.Slots, res.IdleSlots, res.SuccessEvents, res.CollisionEvents)
	}
	if res.Time < cfg.Duration {
		t.Errorf("simulated time %g below requested %g", res.Time, cfg.Duration)
	}
}

func TestTimeAccounting(t *testing.T) {
	cfg := defaultConfig(t, []int{32, 32})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm := cfg.Timing
	want := float64(res.IdleSlots)*tm.Slot + float64(res.SuccessEvents)*tm.Ts + float64(res.CollisionEvents)*tm.Tc
	if math.Abs(res.Time-want) > 1e-6*want {
		t.Fatalf("time %g != decomposed %g", res.Time, want)
	}
}

// The headline validation: simulated tau, p and throughput must match the
// analytic Bianchi fixed point for uniform profiles.
func TestMatchesBianchiUniform(t *testing.T) {
	for _, mode := range []phy.AccessMode{phy.Basic, phy.RTSCTS} {
		tm := phy.Default().MustTiming(mode)
		model, err := bianchi.New(tm, phy.Default().MaxBackoffStage)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct{ w, n int }{
			{76, 5}, {336, 20}, {32, 10},
		} {
			res, err := RunUniform(tm, phy.Default().MaxBackoffStage, tc.w, tc.n, 100e6, 1, 0.01, 42)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := model.SolveUniform(tc.w, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			var tauSim, pSim float64
			for _, nd := range res.Nodes {
				tauSim += nd.MeasuredTau
				pSim += nd.MeasuredP
			}
			tauSim /= float64(tc.n)
			pSim /= float64(tc.n)
			if rel := stats.RelErr(tauSim, sol.Tau[0]); rel > 0.03 {
				t.Errorf("mode=%v w=%d n=%d: sim tau %g vs analytic %g (rel %.3f)", mode, tc.w, tc.n, tauSim, sol.Tau[0], rel)
			}
			if rel := stats.RelErr(pSim, sol.P[0]); rel > 0.05 {
				t.Errorf("mode=%v w=%d n=%d: sim p %g vs analytic %g (rel %.3f)", mode, tc.w, tc.n, pSim, sol.P[0], rel)
			}
			if rel := stats.RelErr(res.Throughput, sol.Throughput); rel > 0.03 {
				t.Errorf("mode=%v w=%d n=%d: sim throughput %g vs analytic %g (rel %.3f)", mode, tc.w, tc.n, res.Throughput, sol.Throughput, rel)
			}
		}
	}
}

// Heterogeneous profiles: the simulator (exact) must stay close to the
// analytic mean-field solution.
func TestMatchesBianchiHeterogeneous(t *testing.T) {
	tm := basicTiming(t)
	model, err := bianchi.New(tm, phy.Default().MaxBackoffStage)
	if err != nil {
		t.Fatal(err)
	}
	cw := []int{32, 64, 128, 256, 512}
	cfg := defaultConfig(t, cw)
	cfg.Duration = 100e6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.Solve(cw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cw {
		if rel := stats.RelErr(res.Nodes[i].MeasuredTau, sol.Tau[i]); rel > 0.06 {
			t.Errorf("node %d (W=%d): sim tau %g vs analytic %g (rel %.3f)",
				i, cw[i], res.Nodes[i].MeasuredTau, sol.Tau[i], rel)
		}
	}
}

// Lemma 1 in the simulator: a node with a larger CW transmits less, wins
// less and earns less.
func TestSimulatedLemma1Ordering(t *testing.T) {
	cfg := defaultConfig(t, []int{50, 200})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg, pas := res.Nodes[0], res.Nodes[1]
	if agg.MeasuredTau <= pas.MeasuredTau {
		t.Errorf("aggressive tau %g <= passive %g", agg.MeasuredTau, pas.MeasuredTau)
	}
	if agg.PayoffRate <= pas.PayoffRate {
		t.Errorf("aggressive payoff %g <= passive %g", agg.PayoffRate, pas.PayoffRate)
	}
	// Lemma 1: the *larger*-CW node faces the larger collision
	// probability (its peers transmit more often than it does).
	if pas.MeasuredP <= agg.MeasuredP {
		t.Errorf("passive collision rate %g <= aggressive %g, Lemma 1 violated", pas.MeasuredP, agg.MeasuredP)
	}
}

func TestSingleNodeNeverCollides(t *testing.T) {
	cfg := defaultConfig(t, []int{16})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[0].Collisions != 0 || res.CollisionEvents != 0 {
		t.Fatalf("single node collided: %+v", res.Nodes[0])
	}
	if res.Nodes[0].Successes == 0 {
		t.Fatal("single node never transmitted")
	}
}

func TestPayoffRateDefinition(t *testing.T) {
	cfg := defaultConfig(t, []int{64, 64})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n0 := res.Nodes[0]
	want := (float64(n0.Successes)*cfg.Gain - float64(n0.Attempts)*cfg.Cost) / res.Time
	if math.Abs(n0.PayoffRate-want) > 1e-15 {
		t.Fatalf("payoff rate %g != definition %g", n0.PayoffRate, want)
	}
}

func TestThroughputBounds(t *testing.T) {
	cfg := defaultConfig(t, []int{100, 100, 100, 100, 100})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.Throughput >= 1 {
		t.Fatalf("global throughput = %g outside (0, 1)", res.Throughput)
	}
}

// W=1 with m=0 forces both nodes to transmit in every slot: pure collision.
func TestDegenerateAllCollide(t *testing.T) {
	cfg := defaultConfig(t, []int{1, 1})
	cfg.MaxStage = 0
	cfg.Duration = 1e6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessEvents != 0 {
		t.Fatalf("W=1/m=0 pair should never succeed, got %d successes", res.SuccessEvents)
	}
	if res.Nodes[0].PayoffRate >= 0 {
		t.Fatalf("pure-collision payoff %g, want negative", res.Nodes[0].PayoffRate)
	}
}

func BenchmarkRun20Nodes(b *testing.B) {
	cfg := Config{
		Timing:   phy.Default().MustTiming(phy.Basic),
		MaxStage: 6,
		CW:       make([]int, 20),
		Duration: 10e6,
		Seed:     1,
		Gain:     1,
		Cost:     0.01,
	}
	for i := range cfg.CW {
		cfg.CW[i] = 336
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: across random configurations, the simulator's counting and
// time invariants hold exactly.
func TestInvariantsProperty(t *testing.T) {
	tm := basicTiming(t)
	f := func(seed uint64, nRaw, wRaw uint8) bool {
		n := 2 + int(nRaw%8)
		cw := make([]int, n)
		r := seed
		for i := range cw {
			r = r*6364136223846793005 + 1442695040888963407
			cw[i] = 1 + int((r>>33)%uint64(4+int(wRaw)%500))
		}
		res, err := Run(Config{
			Timing:   tm,
			MaxStage: 6,
			CW:       cw,
			Duration: 3e6,
			Seed:     seed,
			Gain:     1,
			Cost:     0.01,
		})
		if err != nil {
			return false
		}
		var successes, collisions int64
		for _, nd := range res.Nodes {
			if nd.Attempts != nd.Successes+nd.Collisions {
				return false
			}
			successes += nd.Successes
			collisions += nd.Collisions
		}
		if successes != res.SuccessEvents {
			return false
		}
		if res.CollisionEvents > 0 && collisions < 2*res.CollisionEvents {
			return false
		}
		if res.Slots != res.IdleSlots+res.SuccessEvents+res.CollisionEvents {
			return false
		}
		want := float64(res.IdleSlots)*tm.Slot + float64(res.SuccessEvents)*tm.Ts + float64(res.CollisionEvents)*tm.Tc
		return math.Abs(res.Time-want) <= 1e-6*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Uniform profiles must be fair: Jain's index of per-node successes near 1.
func TestUniformFairness(t *testing.T) {
	res, err := RunUniform(basicTiming(t), 6, 128, 10, 100e6, 1, 0.01, 17)
	if err != nil {
		t.Fatal(err)
	}
	shares := make([]float64, len(res.Nodes))
	for i, nd := range res.Nodes {
		shares[i] = float64(nd.Successes)
	}
	if idx := stats.JainIndex(shares); idx < 0.99 {
		t.Fatalf("Jain index %g for a uniform profile, want ~1", idx)
	}
}

func TestPerNodeDurationValidation(t *testing.T) {
	cfg := defaultConfig(t, []int{32, 32})
	cfg.PerNodeTs = []float64{100} // wrong length
	if err := cfg.Validate(); err == nil {
		t.Error("short PerNodeTs accepted")
	}
	cfg = defaultConfig(t, []int{32, 32})
	cfg.PerNodeTc = []float64{100, -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative PerNodeTc accepted")
	}
}

// With uniform per-node overrides equal to the Timing values, results
// must be identical to the default path.
func TestPerNodeDurationsUniformEquivalence(t *testing.T) {
	base := defaultConfig(t, []int{64, 64, 64})
	base.Duration = 10e6
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	over := base
	over.PerNodeTs = []float64{base.Timing.Ts, base.Timing.Ts, base.Timing.Ts}
	over.PerNodeTc = []float64{base.Timing.Tc, base.Timing.Tc, base.Timing.Tc}
	got, err := Run(over)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != want.Time || got.Slots != want.Slots {
		t.Fatalf("uniform overrides changed the run: %g/%d vs %g/%d",
			got.Time, got.Slots, want.Time, want.Slots)
	}
}

// A node with longer frames earns the same number of successes (same CW)
// but stretches the shared time, lowering everyone's payoff rate.
func TestPerNodeDurationsStretchTime(t *testing.T) {
	base := defaultConfig(t, []int{64, 64})
	base.Duration = 50e6
	short, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	long := base
	long.PerNodeTs = []float64{3 * base.Timing.Ts, base.Timing.Ts}
	long.PerNodeTc = []float64{3 * base.Timing.Tc, base.Timing.Tc}
	stretched, err := Run(long)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same backoff trajectory: equal event counts until the
	// duration cutoff, but more elapsed time per event.
	rateShort := float64(short.SuccessEvents) / short.Time
	rateLong := float64(stretched.SuccessEvents) / stretched.Time
	if rateLong >= rateShort {
		t.Fatalf("longer frames did not reduce the success rate: %g >= %g", rateLong, rateShort)
	}
}

package macsim

import (
	"fmt"
	"reflect"
	"testing"

	"selfishmac/internal/phy"
)

// differential_test.go pins the determinism contract of the event-skipping
// engine: Run (calendar queue, fast.go) must produce a byte-identical
// Result — every counter, payoff and slot decomposition, bit for bit — to
// RunReference (the original min-scan loop) for every configuration,
// because both consume the PRNG stream in the same order.

// diffConfigs builds the equivalence matrix: uniform and heterogeneous
// CW profiles, both access modes, per-node Ts/Tc overrides, degenerate
// windows, varied stage caps, seeds and durations.
func diffConfigs(t testing.TB) []Config {
	t.Helper()
	basic := phy.Default().MustTiming(phy.Basic)
	rtscts := phy.Default().MustTiming(phy.RTSCTS)
	mk := func(tm phy.Timing, maxStage int, cw []int, dur float64, seed uint64) Config {
		return Config{
			Timing: tm, MaxStage: maxStage, CW: cw,
			Duration: dur, Seed: seed, Gain: 1, Cost: 0.01,
		}
	}
	cfgs := []Config{
		// Uniform profiles across populations, both modes.
		mk(basic, 6, uniform(32, 2), 2e6, 1),
		mk(basic, 6, uniform(76, 5), 2e6, 2),
		mk(basic, 6, uniform(336, 20), 2e6, 3),
		mk(basic, 6, uniform(879, 50), 2e6, 4),
		mk(rtscts, 6, uniform(22, 5), 2e6, 5),
		mk(rtscts, 6, uniform(116, 50), 2e6, 6),
		// Heterogeneous CW (the mean-field-breaking case).
		mk(basic, 6, []int{32, 64, 128, 256, 512}, 2e6, 7),
		mk(basic, 6, []int{1, 1000}, 1e6, 8),
		mk(rtscts, 6, []int{16, 16, 333, 501, 7, 90}, 2e6, 9),
		// Degenerate windows and stage caps.
		mk(basic, 0, uniform(1, 2), 5e5, 10), // pure collision
		mk(basic, 0, uniform(16, 4), 1e6, 11),
		mk(basic, 16, uniform(4, 6), 1e6, 12),
		mk(basic, 3, []int{2, 3, 5, 7}, 1e6, 13),
		// Single node, tiny duration (boundary: one event may overshoot).
		mk(basic, 6, uniform(16, 1), 100, 14),
	}
	// Per-node Ts/Tc overrides, heterogeneous and mixed with CW spread.
	het := mk(basic, 6, []int{64, 64, 64}, 2e6, 15)
	het.PerNodeTs = []float64{basic.Ts, 3 * basic.Ts, 0.5 * basic.Ts}
	cfgs = append(cfgs, het)
	het2 := mk(basic, 6, []int{32, 128, 64, 256}, 2e6, 16)
	het2.PerNodeTc = []float64{basic.Tc, 2 * basic.Tc, 0.25 * basic.Tc, 5 * basic.Tc}
	cfgs = append(cfgs, het2)
	het3 := mk(rtscts, 6, []int{48, 48, 200, 9}, 2e6, 17)
	het3.PerNodeTs = []float64{rtscts.Ts, 2.5 * rtscts.Ts, rtscts.Ts, 4 * rtscts.Ts}
	het3.PerNodeTc = []float64{2 * rtscts.Tc, rtscts.Tc, 3 * rtscts.Tc, rtscts.Tc}
	cfgs = append(cfgs, het3)
	// Gain/cost variations feed the payoff formula.
	gc := mk(basic, 6, uniform(64, 3), 1e6, 18)
	gc.Gain, gc.Cost = 2.5, 0.3
	cfgs = append(cfgs, gc)
	// Calendar-growth forcers: the compact calendar starts at the stage-0
	// horizon, so configurations whose collisions push draws far past it
	// exercise the mid-run doubling/re-file path. Tiny windows at a high
	// stage cap collide constantly (draws up to 2 << 12 against an
	// initial 64-bucket calendar); the wide-spread profile mixes an
	// always-growing pair with bystanders whose queued entries must
	// survive the re-file intact.
	cfgs = append(cfgs,
		mk(basic, 12, uniform(2, 8), 1e6, 19),
		mk(basic, 10, []int{1, 1, 700, 1200}, 1e6, 20),
		mk(rtscts, 14, []int{3, 3, 3, 64}, 5e5, 21),
	)
	return cfgs
}

func uniform(w, n int) []int {
	cw := make([]int, n)
	for i := range cw {
		cw[i] = w
	}
	return cw
}

func TestDifferentialFastMatchesReference(t *testing.T) {
	for ci, cfg := range diffConfigs(t) {
		t.Run(fmt.Sprintf("cfg%02d", ci), func(t *testing.T) {
			want, err := RunReference(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("fast engine diverged from reference:\nfast: %+v\nref:  %+v", got, want)
			}
		})
	}
}

// The huge-window fallback path must also match (trivially — it *is* the
// reference) and must actually engage.
func TestDifferentialFallbackHugeWindow(t *testing.T) {
	cfg := Config{
		Timing:   phy.Default().MustTiming(phy.Basic),
		MaxStage: 16,
		CW:       []int{fastWindowCap, fastWindowCap}, // cw << 16 overflows the calendar cap
		Duration: 1e5,
		Seed:     21,
		Gain:     1,
		Cost:     0.01,
	}
	if _, ok := newFastEngine(&cfg); ok {
		t.Fatal("calendar engine accepted a window beyond fastWindowCap")
	}
	want, err := RunReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fallback path diverged from reference")
	}
}

// Seed sweep over one mid-size heterogeneous config: draw-order bugs that
// need a particular collision pattern to surface show up across seeds.
func TestDifferentialSeedSweep(t *testing.T) {
	base := Config{
		Timing:   phy.Default().MustTiming(phy.Basic),
		MaxStage: 6,
		CW:       []int{16, 32, 48, 64, 96, 128, 256, 333},
		Duration: 1e6,
		Gain:     1,
		Cost:     0.01,
	}
	for seed := uint64(0); seed < 25; seed++ {
		cfg := base
		cfg.Seed = seed
		want, err := RunReference(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: fast engine diverged from reference", seed)
		}
	}
}

// The acceptance criterion on the hot loop: after setup, a full run of
// the calendar engine performs zero allocations.
func TestFastEngineHotLoopAllocationFree(t *testing.T) {
	cfg := Config{
		Timing:   phy.Default().MustTiming(phy.Basic),
		MaxStage: 6,
		CW:       uniform(336, 20),
		Duration: 1e6,
		Seed:     1,
		Gain:     1,
		Cost:     0.01,
	}
	e, ok := newFastEngine(&cfg)
	if !ok {
		t.Fatal("fast engine rejected a standard config")
	}
	allocs := testing.AllocsPerRun(5, func() {
		e.reset()
		e.run()
	})
	if allocs != 0 {
		t.Fatalf("hot loop (reset+run) allocated %.1f objects per run, want 0", allocs)
	}
}

// TestCalendarGrowsLazily pins the compact-calendar contract: the engine
// starts at the stage-0 horizon (not the cw << MaxStage worst case), the
// mid-run doubling actually engages for collision-heavy configs, the
// grown run still matches the reference bit for bit, and the grown
// capacity is retained so subsequent reset+run pairs allocate nothing.
func TestCalendarGrowsLazily(t *testing.T) {
	cfg := Config{
		Timing:   phy.Default().MustTiming(phy.Basic),
		MaxStage: 12,
		CW:       uniform(2, 8),
		Duration: 1e6,
		Seed:     19,
		Gain:     1,
		Cost:     0.01,
	}
	e, ok := newFastEngine(&cfg)
	if !ok {
		t.Fatal("fast engine rejected a growable config")
	}
	if got := len(e.head); got != 64 {
		t.Fatalf("initial calendar capacity %d, want the 64-bucket floor (stage-0 horizon)", got)
	}
	got := e.run()
	if grown := len(e.head); grown <= 64 {
		t.Fatalf("calendar capacity still %d after a collision-heavy run; growth never engaged", grown)
	}
	want, err := RunReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("grown calendar diverged from reference:\nfast: %+v\nref:  %+v", got, want)
	}
	allocs := testing.AllocsPerRun(5, func() {
		e.reset()
		e.run()
	})
	if allocs != 0 {
		t.Fatalf("post-growth hot loop allocated %.1f objects per run, want 0 (capacity must be retained)", allocs)
	}
}

// reset must fully restore the engine: repeated runs are bit-identical.
func TestFastEngineResetReproducible(t *testing.T) {
	cfg := Config{
		Timing:   phy.Default().MustTiming(phy.Basic),
		MaxStage: 6,
		CW:       []int{32, 64, 128},
		Duration: 1e6,
		Seed:     9,
		Gain:     1,
		Cost:     0.01,
	}
	e, ok := newFastEngine(&cfg)
	if !ok {
		t.Fatal("fast engine rejected a standard config")
	}
	first := *e.run()
	firstNodes := append([]NodeStats(nil), first.Nodes...)
	e.reset()
	second := e.run()
	if first.Slots != second.Slots || first.Time != second.Time ||
		!reflect.DeepEqual(firstNodes, second.Nodes) {
		t.Fatal("reset run diverged from first run")
	}
}

package macsim

import (
	"math"
	"testing"

	"selfishmac/internal/phy"
)

// Direct coverage for Config.tcOf and the heterogeneous PerNodeTs payoff
// path, which were previously exercised only indirectly through the
// rate-control experiments.

func TestTcOfSelectsLongestCollidingFrame(t *testing.T) {
	tm := phy.Default().MustTiming(phy.Basic)
	cfg := Config{Timing: tm, CW: []int{16, 16, 16, 16}}

	// nil PerNodeTc: always the shared Timing.Tc, whoever collides.
	for _, set := range [][]int{{0, 1}, {1, 2, 3}, {0}} {
		if got := cfg.tcOf(set); got != tm.Tc {
			t.Errorf("tcOf(%v) with nil PerNodeTc = %g, want Timing.Tc %g", set, got, tm.Tc)
		}
	}

	cfg.PerNodeTc = []float64{100, 900, 250, 400}
	cases := []struct {
		set  []int
		want float64
	}{
		{[]int{0, 1}, 900},    // max of {100, 900}
		{[]int{0, 2}, 250},    // max of {100, 250}
		{[]int{2, 3}, 400},    // order-independent max
		{[]int{3, 2}, 400},    // reversed set, same hold
		{[]int{0, 2, 3}, 400}, // three-way collision
		{[]int{1}, 900},       // single entry: its own contribution
	}
	for _, c := range cases {
		if got := cfg.tcOf(c.set); got != c.want {
			t.Errorf("tcOf(%v) = %g, want %g (longest colliding frame)", c.set, got, c.want)
		}
	}
}

func TestTsOfPerNodeOverride(t *testing.T) {
	tm := phy.Default().MustTiming(phy.Basic)
	cfg := Config{Timing: tm, CW: []int{16, 16}}
	if got := cfg.tsOf(1); got != tm.Ts {
		t.Fatalf("tsOf with nil PerNodeTs = %g, want Timing.Ts %g", got, tm.Ts)
	}
	cfg.PerNodeTs = []float64{123, 456}
	if got := cfg.tsOf(0); got != 123 {
		t.Fatalf("tsOf(0) = %g, want 123", got)
	}
	if got := cfg.tsOf(1); got != 456 {
		t.Fatalf("tsOf(1) = %g, want 456", got)
	}
}

// The heterogeneous PerNodeTs payoff path: with per-node success holds,
// elapsed time must decompose as idle + per-node success holds + collision
// holds, and every payoff rate must follow from the counters over that
// stretched clock.
func TestHeterogeneousPerNodeTsPayoffPath(t *testing.T) {
	tm := phy.Default().MustTiming(phy.Basic)
	cfg := Config{
		Timing:    tm,
		MaxStage:  6,
		CW:        []int{32, 64, 128},
		Duration:  20e6,
		Seed:      33,
		Gain:      2,
		Cost:      0.05,
		PerNodeTs: []float64{tm.Ts, 2 * tm.Ts, 0.5 * tm.Ts},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Time decomposition with per-node success holds (collisions still
	// share Timing.Tc since PerNodeTc is nil).
	want := float64(res.IdleSlots) * tm.Slot
	for i, st := range res.Nodes {
		want += float64(st.Successes) * cfg.PerNodeTs[i]
	}
	want += float64(res.CollisionEvents) * tm.Tc
	if math.Abs(res.Time-want) > 1e-6*want {
		t.Fatalf("time %g != per-node decomposition %g", res.Time, want)
	}
	// Payoffs and throughputs follow the measured counters over the
	// stretched clock.
	for i, st := range res.Nodes {
		wantRate := (float64(st.Successes)*cfg.Gain - float64(st.Attempts)*cfg.Cost) / res.Time
		if math.Abs(st.PayoffRate-wantRate) > 1e-15 {
			t.Errorf("node %d payoff rate %g != definition %g", i, st.PayoffRate, wantRate)
		}
		wantTput := float64(st.Successes) * tm.Payload / res.Time
		if math.Abs(st.Throughput-wantTput) > 1e-15 {
			t.Errorf("node %d throughput %g != definition %g", i, st.Throughput, wantTput)
		}
		if st.Successes == 0 {
			t.Errorf("node %d never succeeded in 20 s", i)
		}
	}
	// The long-frame node (node 1) stretches everyone's clock: rerunning
	// with uniform Ts must yield a strictly higher success rate per
	// second for the same seed.
	uni := cfg
	uni.PerNodeTs = nil
	base, err := Run(uni)
	if err != nil {
		t.Fatal(err)
	}
	if rateHet, rateUni := float64(res.SuccessEvents)/res.Time, float64(base.SuccessEvents)/base.Time; rateHet >= rateUni {
		t.Errorf("long frames did not slow the success rate: %g >= %g", rateHet, rateUni)
	}
}

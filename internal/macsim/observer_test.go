package macsim

import (
	"fmt"
	"reflect"
	"testing"

	"selfishmac/internal/phy"
)

// observer_test.go pins the observation-stream contract: the fast and
// reference engines emit the identical (slot, transmitters) event
// sequence for every configuration in the differential matrix, and
// attaching an observer leaves the Result byte-identical to a run
// without one.

// recordedEvent is one observed busy slot with the transmitter set copied
// out of the engine-owned scratch.
type recordedEvent struct {
	Slot int64
	Tx   []int
}

type recordingObserver struct {
	events []recordedEvent
}

func (r *recordingObserver) OnEvent(slot int64, transmitters []int) {
	r.events = append(r.events, recordedEvent{Slot: slot, Tx: append([]int(nil), transmitters...)})
}

func TestDifferentialObserverStreamFastMatchesReference(t *testing.T) {
	for ci, cfg := range diffConfigs(t) {
		t.Run(fmt.Sprintf("cfg%02d", ci), func(t *testing.T) {
			fastObs, refObs := &recordingObserver{}, &recordingObserver{}

			fcfg := cfg
			fcfg.Observer = fastObs
			fres, err := Run(fcfg)
			if err != nil {
				t.Fatal(err)
			}

			rcfg := cfg
			rcfg.Observer = refObs
			rres, err := RunReference(rcfg)
			if err != nil {
				t.Fatal(err)
			}

			if len(fastObs.events) == 0 {
				t.Fatal("fast engine emitted no events")
			}
			if !reflect.DeepEqual(fastObs.events, refObs.events) {
				t.Fatalf("event streams diverge: fast %d events, reference %d events", len(fastObs.events), len(refObs.events))
			}
			if !reflect.DeepEqual(fres, rres) {
				t.Fatal("results diverge with observers attached")
			}

			// The stream must be self-consistent with the result: one event
			// per busy slot, slots strictly increasing, attempts matching
			// the per-node counters.
			if got, want := int64(len(fastObs.events)), fres.SuccessEvents+fres.CollisionEvents; got != want {
				t.Fatalf("%d events for %d busy slots", got, want)
			}
			attempts := make([]int64, len(cfg.CW))
			last := int64(-1)
			for _, ev := range fastObs.events {
				if ev.Slot <= last {
					t.Fatalf("event slots not strictly increasing: %d after %d", ev.Slot, last)
				}
				last = ev.Slot
				for _, i := range ev.Tx {
					attempts[i]++
				}
			}
			for i, nd := range fres.Nodes {
				if attempts[i] != nd.Attempts {
					t.Fatalf("node %d: stream counted %d attempts, result says %d", i, attempts[i], nd.Attempts)
				}
			}
		})
	}
}

// Attaching an observer must not perturb the simulation: the Result with
// the hook enabled is byte-identical to the Result without it.
func TestObserverDoesNotPerturbResult(t *testing.T) {
	base := Config{
		Timing: phy.Default().MustTiming(phy.Basic), MaxStage: 6,
		CW: []int{32, 64, 128, 16, 336}, Duration: 2e6, Seed: 42,
		Gain: 1, Cost: 0.01,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	hooked := base
	hooked.Observer = &recordingObserver{}
	observed, err := Run(hooked)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Fatal("observer changed the simulation result")
	}
}

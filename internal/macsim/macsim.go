// Package macsim is an event-driven simulator of saturated IEEE 802.11 DCF
// in a single collision domain (every node hears every other node). It is
// this reproduction's stand-in for the paper's NS-2 experiments.
//
// The simulator implements exactly the mechanism Bianchi's Markov chain
// abstracts — per-node binary exponential backoff over a configurable
// initial contention window, slotted contention, and channel holds of Ts
// (success) or Tc (collision) — so its measured per-node transmission and
// collision probabilities converge to the analytic model's fixed point.
// Where the analytic model is a mean-field approximation (heterogeneous
// profiles), the simulator is exact up to sampling noise, which is what
// makes it a meaningful validation target.
//
// Mechanics per event:
//
//  1. Advance time by the minimum backoff counter times sigma (idle slots).
//  2. Every node whose counter hit zero transmits.
//  3. One transmitter: success (channel busy Ts; node resets to stage 0).
//     Several: collision (busy Tc; each transmitter doubles its stage up
//     to the cap m) — then all transmitters redraw a uniform backoff from
//     their stage's window.
//
// Each busy period counts as one virtual slot, matching the chain's slot
// definition, so measured tau = attempts/slots is directly comparable to
// the analytic τ.
package macsim

import (
	"errors"
	"fmt"

	"selfishmac/internal/backoff"
	"selfishmac/internal/phy"
	"selfishmac/internal/rng"
)

// Observer receives one event per busy virtual slot: the slot index (the
// count of virtual slots that elapsed strictly before this busy slot —
// idle slots included) and the set of transmitting nodes in ascending
// node order. The transmitters slice is engine-owned scratch, valid only
// for the duration of the call; observers must copy what they keep.
//
// Observation-stream contract: both engines (event-skipping and
// reference) emit the identical event sequence for the same Config, and
// attaching an observer changes nothing about the simulation — no PRNG
// draws, no float accumulation, no counters — so Results stay
// byte-identical with the observer on, off, or nil. Implementations on
// the hot path must not allocate if the engines' 0-alloc steady-state
// contract is to hold end to end.
type Observer interface {
	OnEvent(slot int64, transmitters []int)
}

// Config parameterises one simulation run.
type Config struct {
	// Timing carries sigma, Ts, Tc, E[P] for the access mode under test.
	Timing phy.Timing
	// MaxStage is the backoff-doubling cap m.
	MaxStage int
	// CW is the per-node initial contention window (length = node count).
	CW []int
	// Duration is the simulated time in microseconds.
	Duration float64
	// Seed drives the deterministic PRNG.
	Seed uint64
	// Gain and Cost are the per-packet utility parameters g and e used
	// for the measured payoff (paper Section V.C: U = (ns·g − ne·e)/t).
	Gain float64
	Cost float64
	// PerNodeTs optionally overrides the success hold per transmitter
	// (e.g. heterogeneous packet sizes in the rate-control extension).
	// nil uses Timing.Ts for everyone; otherwise length must equal CW's.
	PerNodeTs []float64
	// PerNodeTc optionally gives each node's collision-hold contribution;
	// a collision occupies the channel for the maximum over its
	// transmitters (the longest colliding frame). nil uses Timing.Tc.
	PerNodeTc []float64
	// Observer, when non-nil, is invoked once per busy virtual slot with
	// the slot index and the transmitter set (see the Observer contract).
	// It never alters the simulation.
	Observer Observer
}

// Validate checks the configuration.
func (c Config) Validate() error {
	var errs []error
	if len(c.CW) == 0 {
		errs = append(errs, errors.New("no nodes"))
	}
	for i, w := range c.CW {
		if w < 1 {
			errs = append(errs, fmt.Errorf("node %d CW %d < 1", i, w))
		}
	}
	if c.Duration <= 0 {
		errs = append(errs, fmt.Errorf("duration %g must be positive", c.Duration))
	}
	if c.MaxStage < 0 || c.MaxStage > 16 {
		errs = append(errs, fmt.Errorf("max backoff stage %d outside [0, 16]", c.MaxStage))
	}
	if c.Timing.Slot <= 0 || c.Timing.Ts <= 0 || c.Timing.Tc <= 0 {
		errs = append(errs, fmt.Errorf("non-positive timing %+v", c.Timing))
	}
	if c.Gain < 0 || c.Cost < 0 {
		errs = append(errs, errors.New("gain and cost must be non-negative"))
	}
	if c.PerNodeTs != nil && len(c.PerNodeTs) != len(c.CW) {
		errs = append(errs, fmt.Errorf("PerNodeTs has %d entries for %d nodes", len(c.PerNodeTs), len(c.CW)))
	}
	if c.PerNodeTc != nil && len(c.PerNodeTc) != len(c.CW) {
		errs = append(errs, fmt.Errorf("PerNodeTc has %d entries for %d nodes", len(c.PerNodeTc), len(c.CW)))
	}
	for i, d := range c.PerNodeTs {
		if d <= 0 {
			errs = append(errs, fmt.Errorf("PerNodeTs[%d] = %g must be positive", i, d))
		}
	}
	for i, d := range c.PerNodeTc {
		if d <= 0 {
			errs = append(errs, fmt.Errorf("PerNodeTc[%d] = %g must be positive", i, d))
		}
	}
	return errors.Join(errs...)
}

// tsOf returns the success hold for transmitter i.
func (c *Config) tsOf(i int) float64 {
	if c.PerNodeTs != nil {
		return c.PerNodeTs[i]
	}
	return c.Timing.Ts
}

// tcOf returns the collision hold for a transmitter set: the longest
// colliding frame occupies the channel.
func (c *Config) tcOf(transmitters []int) float64 {
	if c.PerNodeTc == nil {
		return c.Timing.Tc
	}
	d := c.PerNodeTc[transmitters[0]]
	for _, i := range transmitters[1:] {
		if c.PerNodeTc[i] > d {
			d = c.PerNodeTc[i]
		}
	}
	return d
}

// NodeStats aggregates one node's outcome.
type NodeStats struct {
	// Attempts, Successes and Collisions count transmissions.
	Attempts   int64
	Successes  int64
	Collisions int64
	// PayoffRate is (successes·g − attempts·e)/time, per microsecond —
	// the quantity the paper's search algorithm measures.
	PayoffRate float64
	// Throughput is the node's payload-airtime fraction.
	Throughput float64
	// MeasuredTau is attempts per virtual slot (comparable to analytic τ).
	MeasuredTau float64
	// MeasuredP is collisions/attempts (comparable to analytic p).
	MeasuredP float64
}

// Result is the outcome of a run.
type Result struct {
	// Nodes holds per-node statistics.
	Nodes []NodeStats
	// Time is the simulated time actually covered (>= Config.Duration).
	Time float64
	// Slots is the number of virtual slots (idle + busy).
	Slots int64
	// IdleSlots, SuccessEvents and CollisionEvents decompose the slots.
	IdleSlots       int64
	SuccessEvents   int64
	CollisionEvents int64
	// Throughput is the global payload-airtime fraction.
	Throughput float64
}

// GlobalPayoffRate is the sum of the per-node payoff rates.
func (r *Result) GlobalPayoffRate() float64 {
	var sum float64
	for _, n := range r.Nodes {
		sum += n.PayoffRate
	}
	return sum
}

type nodeState struct {
	cw      int // initial (stage-0) contention window
	stage   int
	counter int
}

// draw sets a fresh uniform backoff counter from the node's current stage.
// The max-stage window cap is applied by the shared backoff helper, so the
// window can never exceed cw << maxStage (stage is also capped on advance).
func (n *nodeState) draw(r *rng.Source, maxStage int) {
	n.counter = backoff.Draw(r, n.cw, n.stage, maxStage)
}

// Run simulates the configured scenario to completion.
//
// It uses the event-skipping calendar-queue engine (fast.go), which is
// bit-identical to RunReference: same PRNG draw order, same counters, same
// float accumulation order. Configurations whose maximum contention window
// exceeds the calendar capacity fall back to the reference loop.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("macsim: invalid config: %w", err)
	}
	e, ok := newFastEngine(&cfg)
	if !ok {
		return runReference(&cfg), nil
	}
	return e.run(), nil
}

// RunReference simulates the scenario with the original per-event
// min-scan/decrement loop. It is kept verbatim as the pinned semantics of
// the simulator: the differential tests assert Run produces byte-identical
// results, and cmd/bench measures the speedup against it.
func RunReference(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("macsim: invalid config: %w", err)
	}
	return runReference(&cfg), nil
}

// runReference is the historical hot loop, unchanged.
func runReference(cfg *Config) *Result {
	src := rng.New(cfg.Seed)
	n := len(cfg.CW)
	nodes := make([]nodeState, n)
	for i := range nodes {
		nodes[i] = nodeState{cw: cfg.CW[i]}
		nodes[i].draw(src, cfg.MaxStage)
	}
	res := &Result{Nodes: make([]NodeStats, n)}
	transmitters := make([]int, 0, n)

	var elapsed float64
	for elapsed < cfg.Duration {
		// Idle until the earliest counter expires.
		minC := nodes[0].counter
		for i := 1; i < n; i++ {
			if nodes[i].counter < minC {
				minC = nodes[i].counter
			}
		}
		if minC > 0 {
			elapsed += float64(minC) * cfg.Timing.Slot
			res.Slots += int64(minC)
			res.IdleSlots += int64(minC)
			for i := range nodes {
				nodes[i].counter -= minC
			}
		}
		transmitters = transmitters[:0]
		for i := range nodes {
			if nodes[i].counter == 0 {
				transmitters = append(transmitters, i)
			}
		}
		// res.Slots currently counts the virtual slots strictly before
		// this busy slot — the same value the fast engine reports as the
		// event's absolute expiry slot.
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(res.Slots, transmitters)
		}
		res.Slots++
		if len(transmitters) == 1 {
			i := transmitters[0]
			res.SuccessEvents++
			res.Nodes[i].Attempts++
			res.Nodes[i].Successes++
			elapsed += cfg.tsOf(i)
			nodes[i].stage = 0
			nodes[i].draw(src, cfg.MaxStage)
		} else {
			res.CollisionEvents++
			elapsed += cfg.tcOf(transmitters)
			for _, i := range transmitters {
				res.Nodes[i].Attempts++
				res.Nodes[i].Collisions++
				if nodes[i].stage < cfg.MaxStage {
					nodes[i].stage++
				}
				nodes[i].draw(src, cfg.MaxStage)
			}
		}
		// In the chain's slot abstraction a busy period is one slot, and
		// bystanders decrement their counter across it (a slot is the
		// interval between consecutive counter decrements). Non-
		// transmitters all hold counter >= 1 here.
		k := 0
		for i := range nodes {
			if k < len(transmitters) && transmitters[k] == i {
				k++
				continue
			}
			nodes[i].counter--
		}
	}

	res.Time = elapsed
	for i := range res.Nodes {
		st := &res.Nodes[i]
		st.PayoffRate = (float64(st.Successes)*cfg.Gain - float64(st.Attempts)*cfg.Cost) / elapsed
		st.Throughput = float64(st.Successes) * cfg.Timing.Payload / elapsed
		if res.Slots > 0 {
			st.MeasuredTau = float64(st.Attempts) / float64(res.Slots)
		}
		if st.Attempts > 0 {
			st.MeasuredP = float64(st.Collisions) / float64(st.Attempts)
		}
		res.Throughput += st.Throughput
	}
	return res
}

// RunUniform is a convenience wrapper simulating n nodes all at CW w.
func RunUniform(tm phy.Timing, maxStage, w, n int, duration float64, gain, cost float64, seed uint64) (*Result, error) {
	cw := make([]int, n)
	for i := range cw {
		cw[i] = w
	}
	return Run(Config{
		Timing:   tm,
		MaxStage: maxStage,
		CW:       cw,
		Duration: duration,
		Seed:     seed,
		Gain:     gain,
		Cost:     cost,
	})
}

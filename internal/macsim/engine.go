package macsim

import "fmt"

// Engine is the reusable New(cfg) / Reset(seed) / Run() lifecycle over
// the event-skipping simulator: construction allocates everything once
// (calendar, per-node state, result slots), after which Reset + Run pairs
// — and Reconfigure calls whose shape fits the allocated buffers — run at
// zero steady-state allocations. It exists for replication loops
// (internal/replicate) and stage loops (the closed-loop experiment),
// which previously paid the full setup cost of Run on every call.
//
// Results are bit-identical to Run with the same Config: the engine is a
// thin owner around the same fastEngine, with the same reference fallback
// for configurations whose maximum contention window exceeds the calendar
// capacity (the fallback path allocates per Run, like RunReference).
//
// An Engine is not safe for concurrent use; give each goroutine its own.
type Engine struct {
	cfg  Config
	fast *fastEngine // nil → reference fallback
}

// NewEngine validates cfg and builds a reusable engine. The engine deep-
// copies the config's slices, so the caller may reuse or mutate them.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("macsim: invalid config: %w", err)
	}
	e := &Engine{}
	e.adoptConfig(cfg)
	if fe, ok := newFastEngine(&e.cfg); ok {
		e.fast = fe
	}
	return e, nil
}

// Reset re-seeds the engine in place: the next Run simulates the current
// configuration under the given seed, exactly as a fresh Run would. It
// allocates nothing.
func (e *Engine) Reset(seed uint64) {
	e.cfg.Seed = seed
	if e.fast != nil {
		e.fast.reset()
	}
}

// Run executes the simulation. The returned Result is owned by the engine
// and reused: it is valid until the next Reset, Run or Reconfigure. Call
// Reset between runs; a Run without an intervening Reset replays the
// previous trajectory on the calendar engine but would re-run the
// reference fallback from a fresh PRNG, so the lifecycle is always
// Reset(seed) then Run.
func (e *Engine) Run() *Result {
	if e.fast != nil {
		return e.fast.run()
	}
	return runReference(&e.cfg)
}

// Reconfigure swaps the engine onto a new configuration, reusing every
// allocated buffer when the shape fits (same node count, maximum
// contention window within the allocated calendar) — the common case for
// stage loops, where only CW, Seed or Duration change between stages — and
// transparently rebuilding otherwise. After Reconfigure the engine is
// reset to the new config's Seed.
func (e *Engine) Reconfigure(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("macsim: invalid config: %w", err)
	}
	e.adoptConfig(cfg)
	if e.fast != nil && e.fast.reconfigure() {
		return nil
	}
	e.fast = nil
	if fe, ok := newFastEngine(&e.cfg); ok {
		e.fast = fe
	}
	return nil
}

// adoptConfig deep-copies cfg into e.cfg, reusing the previously owned
// slices when lengths match so steady-state reconfiguration allocates
// nothing.
func (e *Engine) adoptConfig(cfg Config) {
	cw, ts, tc := e.cfg.CW, e.cfg.PerNodeTs, e.cfg.PerNodeTc
	e.cfg = cfg
	e.cfg.CW = copyInts(cw, cfg.CW)
	e.cfg.PerNodeTs = copyFloats(ts, cfg.PerNodeTs)
	e.cfg.PerNodeTc = copyFloats(tc, cfg.PerNodeTc)
}

func copyInts(dst, src []int) []int {
	if src == nil {
		return nil
	}
	if len(dst) != len(src) {
		dst = make([]int, len(src))
	}
	copy(dst, src)
	return dst
}

func copyFloats(dst, src []float64) []float64 {
	if src == nil {
		return nil
	}
	if len(dst) != len(src) {
		dst = make([]float64, len(src))
	}
	copy(dst, src)
	return dst
}

package macsim

import (
	"math/bits"

	"selfishmac/internal/backoff"
	"selfishmac/internal/rng"
)

// fast.go is the event-skipping engine behind Run. It replaces the
// reference loop's per-event O(n) work — min-scan over counters, counter
// decrement for every node, transmitter collection scan — with a global
// virtual-slot clock and a bucketed calendar queue of per-node absolute
// expiry slots, making each event O(k) for k transmitters plus a cheap
// occupancy-bitmap scan.
//
// The key observation making expiries absolute is that in the reference
// loop a busy period costs every bystander exactly one counter decrement
// (a virtual slot), while the clock also advances by one virtual slot —
// so a non-transmitter's absolute expiry slot never changes across a busy
// event. Only transmitters redraw: their new expiry is the event slot + 1
// (the busy virtual slot) + the fresh counter.
//
// Determinism contract: the engine consumes the PRNG in exactly the
// reference order (initial draws in node order; per event, the single
// successful transmitter or all colliding transmitters in ascending node
// order), accumulates elapsed time in the same order with the same
// values, and computes identical statistics. The differential tests pin
// byte-identical Results.
//
// The hot loop performs no allocations after setup: the calendar is an
// intrusive singly-linked list over preallocated arrays, the PRNG is
// embedded by value, and the transmitter scratch slice is reused.

// fastWindowCap bounds the calendar size: the largest supported
// contention window (cw << maxStage). Configurations beyond it — far
// outside any 802.11 parameterisation — fall back to the reference loop.
const fastWindowCap = 1 << 20

type fastEngine struct {
	cfg *Config
	n   int

	// Per-node state.
	cw     []int
	stage  []int
	expiry []int64   // absolute virtual slot at which the node transmits
	ts     []float64 // success hold per node (PerNodeTs or Timing.Ts)
	tc     []float64 // collision-hold contribution (PerNodeTc or Timing.Tc)

	// Bucketed calendar queue over expiry slots. bucket(b) is an
	// intrusive list head[b] -> next[...] of node ids; occ is a bitmap of
	// non-empty buckets. Capacity exceeds the largest window, so all live
	// expiries fit in one wrap of the calendar and every non-empty bucket
	// holds nodes of exactly one expiry value.
	mask int64
	head []int32
	next []int32
	occ  []uint64

	src          rng.Source
	transmitters []int
	res          Result
}

// newFastEngine builds and seeds an engine for cfg (which must already be
// validated). It reports ok=false when the configuration needs the
// reference fallback.
func newFastEngine(cfg *Config) (*fastEngine, bool) {
	n := len(cfg.CW)
	maxWindow := 0
	for _, w := range cfg.CW {
		if w > fastWindowCap>>uint(cfg.MaxStage) {
			return nil, false
		}
		if win := w << uint(cfg.MaxStage); win > maxWindow {
			maxWindow = win
		}
	}
	// One wrap of the calendar must cover every live expiry: expiries lie
	// in [cur, cur+maxWindow-1], so any power of two > maxWindow-1 works;
	// use the next power of two >= maxWindow+1.
	b := 64
	for int64(b) < int64(maxWindow)+1 {
		b <<= 1
	}
	e := &fastEngine{
		cfg:          cfg,
		n:            n,
		cw:           make([]int, n),
		stage:        make([]int, n),
		expiry:       make([]int64, n),
		ts:           make([]float64, n),
		tc:           make([]float64, n),
		mask:         int64(b) - 1,
		head:         make([]int32, b),
		next:         make([]int32, n),
		occ:          make([]uint64, b/64),
		transmitters: make([]int, 0, n),
	}
	copy(e.cw, cfg.CW)
	// Satellite fix: hoist the PerNodeTs/PerNodeTc nil-checks out of the
	// hot loop — tsOf/tcOf closures become two precomputed slices.
	for i := 0; i < n; i++ {
		e.ts[i] = cfg.Timing.Ts
		e.tc[i] = cfg.Timing.Tc
	}
	if cfg.PerNodeTs != nil {
		copy(e.ts, cfg.PerNodeTs)
	}
	if cfg.PerNodeTc != nil {
		copy(e.tc, cfg.PerNodeTc)
	}
	e.res.Nodes = make([]NodeStats, n)
	e.reset()
	return e, true
}

// reconfigure re-derives the per-config state (window copies, per-node
// hold times) after the owning Engine mutated *e.cfg in place, then
// resets. It reports ok=false when the new configuration does not fit the
// allocated buffers — node count changed, calendar too small for the new
// maximum window — or needs the reference fallback; the caller rebuilds
// in that case. On success it allocates nothing.
func (e *fastEngine) reconfigure() bool {
	cfg := e.cfg
	if len(cfg.CW) != e.n {
		return false
	}
	maxWindow := 0
	for _, w := range cfg.CW {
		if w > fastWindowCap>>uint(cfg.MaxStage) {
			return false
		}
		if win := w << uint(cfg.MaxStage); win > maxWindow {
			maxWindow = win
		}
	}
	// One calendar wrap must still cover every live expiry.
	if int64(maxWindow) >= int64(len(e.head)) {
		return false
	}
	copy(e.cw, cfg.CW)
	for i := 0; i < e.n; i++ {
		e.ts[i] = cfg.Timing.Ts
		e.tc[i] = cfg.Timing.Tc
	}
	if cfg.PerNodeTs != nil {
		copy(e.ts, cfg.PerNodeTs)
	}
	if cfg.PerNodeTc != nil {
		copy(e.tc, cfg.PerNodeTc)
	}
	e.reset()
	return true
}

// reset re-seeds the PRNG and restores the initial simulator state. It
// allocates nothing, so (reset + run) pairs can be measured for hot-loop
// allocations and reused across benchmark iterations.
func (e *fastEngine) reset() {
	e.src.Reseed(e.cfg.Seed)
	for i := range e.head {
		e.head[i] = -1
	}
	for i := range e.occ {
		e.occ[i] = 0
	}
	e.res = Result{Nodes: e.res.Nodes}
	for i := range e.res.Nodes {
		e.res.Nodes[i] = NodeStats{}
	}
	// Initial draws in node order, exactly like the reference loop.
	for i := 0; i < e.n; i++ {
		e.stage[i] = 0
		e.enqueue(i, 0)
	}
}

// enqueue draws a fresh backoff for node i at virtual slot cur and files
// it in the calendar.
func (e *fastEngine) enqueue(i int, cur int64) {
	c := backoff.Draw(&e.src, e.cw[i], e.stage[i], e.cfg.MaxStage)
	exp := cur + int64(c)
	e.expiry[i] = exp
	b := exp & e.mask
	e.next[i] = e.head[b]
	e.head[b] = int32(i)
	e.occ[b>>6] |= 1 << uint(b&63)
}

// nextBucket returns the first non-empty bucket at or cyclically after
// virtual slot cur. Because the calendar spans more than the largest
// window, the cyclically-nearest occupied bucket is the minimum expiry.
func (e *fastEngine) nextBucket(cur int64) int64 {
	b0 := cur & e.mask
	w := int(b0 >> 6)
	word := e.occ[w] &^ (1<<uint(b0&63) - 1)
	for word == 0 {
		w++
		if w == len(e.occ) {
			w = 0
		}
		word = e.occ[w]
	}
	return int64(w<<6 + bits.TrailingZeros64(word))
}

// run executes the simulation to completion and finalises the result.
func (e *fastEngine) run() *Result {
	cfg := e.cfg
	res := &e.res
	var elapsed float64
	var cur int64 // current virtual slot

	for elapsed < cfg.Duration {
		b := e.nextBucket(cur)
		emin := e.expiry[e.head[b]] // bucket holds one expiry value only
		if minC := emin - cur; minC > 0 {
			elapsed += float64(minC) * cfg.Timing.Slot
			res.Slots += minC
			res.IdleSlots += minC
		}
		// Drain the bucket: it contains exactly the transmitter set.
		tx := e.transmitters[:0]
		for i := e.head[b]; i >= 0; i = e.next[i] {
			tx = append(tx, int(i))
		}
		e.head[b] = -1
		e.occ[b>>6] &^= 1 << uint(b&63)
		sortAscending(tx) // draw order is ascending node order
		e.transmitters = tx

		res.Slots++
		cur = emin + 1
		if len(tx) == 1 {
			i := tx[0]
			res.SuccessEvents++
			res.Nodes[i].Attempts++
			res.Nodes[i].Successes++
			elapsed += e.ts[i]
			e.stage[i] = 0
			e.enqueue(i, cur)
		} else {
			res.CollisionEvents++
			d := e.tc[tx[0]] // longest colliding frame holds the channel
			for _, i := range tx[1:] {
				if e.tc[i] > d {
					d = e.tc[i]
				}
			}
			elapsed += d
			for _, i := range tx {
				res.Nodes[i].Attempts++
				res.Nodes[i].Collisions++
				if e.stage[i] < cfg.MaxStage {
					e.stage[i]++
				}
				e.enqueue(i, cur)
			}
		}
	}

	res.Time = elapsed
	res.Throughput = 0
	for i := range res.Nodes {
		st := &res.Nodes[i]
		st.PayoffRate = (float64(st.Successes)*cfg.Gain - float64(st.Attempts)*cfg.Cost) / elapsed
		st.Throughput = float64(st.Successes) * cfg.Timing.Payload / elapsed
		if res.Slots > 0 {
			st.MeasuredTau = float64(st.Attempts) / float64(res.Slots)
		}
		if st.Attempts > 0 {
			st.MeasuredP = float64(st.Collisions) / float64(st.Attempts)
		}
		res.Throughput += st.Throughput
	}
	return res
}

// sortAscending insertion-sorts the (typically 1–3 element) transmitter
// set without allocating.
func sortAscending(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

package macsim

import (
	"math/bits"

	"selfishmac/internal/backoff"
	"selfishmac/internal/rng"
)

// fast.go is the event-skipping engine behind Run. It replaces the
// reference loop's per-event O(n) work — min-scan over counters, counter
// decrement for every node, transmitter collection scan — with a global
// virtual-slot clock and a bucketed calendar queue of per-node absolute
// expiry slots, making each event O(k) for k transmitters plus a cheap
// occupancy-bitmap scan.
//
// The key observation making expiries absolute is that in the reference
// loop a busy period costs every bystander exactly one counter decrement
// (a virtual slot), while the clock also advances by one virtual slot —
// so a non-transmitter's absolute expiry slot never changes across a busy
// event. Only transmitters redraw: their new expiry is the event slot + 1
// (the busy virtual slot) + the fresh counter.
//
// Determinism contract: the engine consumes the PRNG in exactly the
// reference order (initial draws in node order; per event, the single
// successful transmitter or all colliding transmitters in ascending node
// order), accumulates elapsed time in the same order with the same
// values, and computes identical statistics. The differential tests pin
// byte-identical Results.
//
// The hot loop performs no steady-state allocations: the calendar is an
// intrusive singly-linked list over engine-owned arrays, the PRNG is
// embedded by value, and the transmitter scratch slice is reused. The
// only allocation after setup is a calendar doubling the first time a
// backed-off draw outreaches the current capacity — capacity is then
// retained across reset and reconfigure, so repeated runs settle at
// zero allocations.

// fastWindowCap bounds the calendar size: the largest supported
// contention window (cw << maxStage). Configurations beyond it — far
// outside any 802.11 parameterisation — fall back to the reference loop.
const fastWindowCap = 1 << 20

// fastNodeCap bounds the population: calendar links are int16 node ids
// (halving the dominant per-bucket cost), so a single collision domain
// beyond 32767 nodes — far outside the paper's ≤100 — falls back to the
// reference loop rather than widening every bucket.
const fastNodeCap = 1<<15 - 1

type fastEngine struct {
	cfg *Config
	n   int

	// Per-node state.
	cw     []int
	stage  []int
	expiry []int64   // absolute virtual slot at which the node transmits
	ts     []float64 // success hold per node (PerNodeTs or Timing.Ts)
	tc     []float64 // collision-hold contribution (PerNodeTc or Timing.Tc)

	// Bucketed calendar queue over expiry slots. bucket(b) is an
	// intrusive list head[b] -> next[...] of int16 node ids (-1 ends a
	// list); occ is a bitmap of non-empty buckets. The calendar is
	// compact and lazily grown: it
	// starts sized to the stage-0 windows (the live expiry horizon of a
	// fresh run) and doubles — re-filing every queued node — only when a
	// backed-off draw actually outreaches it, instead of paying the
	// worst-case cw << MaxStage span up front. Capacity never shrinks
	// while the engine lives, so every filed expiry lies within one
	// calendar wrap of the current slot and every non-empty bucket holds
	// nodes of exactly one expiry value (the invariant nextBucket and the
	// bucket-drain rely on).
	mask int64
	head []int16
	next []int16
	occ  []uint64

	src          rng.Source
	transmitters []int
	res          Result
}

// newFastEngine builds and seeds an engine for cfg (which must already be
// validated). It reports ok=false when the configuration needs the
// reference fallback.
func newFastEngine(cfg *Config) (*fastEngine, bool) {
	n := len(cfg.CW)
	if n > fastNodeCap {
		return nil, false
	}
	maxCW0 := 0
	for _, w := range cfg.CW {
		if w > fastWindowCap>>uint(cfg.MaxStage) {
			return nil, false
		}
		if w > maxCW0 {
			maxCW0 = w
		}
	}
	// Size the calendar to the live expiry horizon of a fresh run — the
	// stage-0 windows — not the worst-case cw << MaxStage span. Draws are
	// in [0, w-1], so any power of two >= maxCW0 covers them; grow()
	// doubles on demand when collisions push a window beyond this.
	b := 64
	for int64(b) < int64(maxCW0) {
		b <<= 1
	}
	e := &fastEngine{
		cfg:          cfg,
		n:            n,
		cw:           make([]int, n),
		stage:        make([]int, n),
		expiry:       make([]int64, n),
		ts:           make([]float64, n),
		tc:           make([]float64, n),
		mask:         int64(b) - 1,
		head:         make([]int16, b),
		next:         make([]int16, n),
		occ:          make([]uint64, b/64),
		transmitters: make([]int, 0, n),
	}
	copy(e.cw, cfg.CW)
	// Satellite fix: hoist the PerNodeTs/PerNodeTc nil-checks out of the
	// hot loop — tsOf/tcOf closures become two precomputed slices.
	for i := 0; i < n; i++ {
		e.ts[i] = cfg.Timing.Ts
		e.tc[i] = cfg.Timing.Tc
	}
	if cfg.PerNodeTs != nil {
		copy(e.ts, cfg.PerNodeTs)
	}
	if cfg.PerNodeTc != nil {
		copy(e.tc, cfg.PerNodeTc)
	}
	e.res.Nodes = make([]NodeStats, n)
	e.reset()
	return e, true
}

// reconfigure re-derives the per-config state (window copies, per-node
// hold times) after the owning Engine mutated *e.cfg in place, then
// resets. It reports ok=false when the new configuration does not fit the
// allocated buffers — node count changed — or needs the reference
// fallback; the caller rebuilds in that case. Larger windows are not a
// rebuild reason anymore: the calendar grows on demand, so on success
// the steady-state (same shape) path allocates nothing.
func (e *fastEngine) reconfigure() bool {
	cfg := e.cfg
	if len(cfg.CW) != e.n {
		return false
	}
	for _, w := range cfg.CW {
		if w > fastWindowCap>>uint(cfg.MaxStage) {
			return false
		}
	}
	copy(e.cw, cfg.CW)
	for i := 0; i < e.n; i++ {
		e.ts[i] = cfg.Timing.Ts
		e.tc[i] = cfg.Timing.Tc
	}
	if cfg.PerNodeTs != nil {
		copy(e.ts, cfg.PerNodeTs)
	}
	if cfg.PerNodeTc != nil {
		copy(e.tc, cfg.PerNodeTc)
	}
	e.reset()
	return true
}

// reset re-seeds the PRNG and restores the initial simulator state. It
// allocates nothing, so (reset + run) pairs can be measured for hot-loop
// allocations and reused across benchmark iterations.
func (e *fastEngine) reset() {
	e.src.Reseed(e.cfg.Seed)
	for i := range e.head {
		e.head[i] = -1
	}
	for i := range e.occ {
		e.occ[i] = 0
	}
	e.res = Result{Nodes: e.res.Nodes}
	for i := range e.res.Nodes {
		e.res.Nodes[i] = NodeStats{}
	}
	// Initial draws in node order, exactly like the reference loop.
	for i := 0; i < e.n; i++ {
		e.stage[i] = 0
		e.enqueue(i, 0)
	}
}

// enqueue draws a fresh backoff for node i at virtual slot cur and files
// it in the calendar, growing it first when the draw outreaches the
// current capacity.
func (e *fastEngine) enqueue(i int, cur int64) {
	c := backoff.Draw(&e.src, e.cw[i], e.stage[i], e.cfg.MaxStage)
	if int64(c) >= int64(len(e.head)) {
		e.grow(int64(c))
	}
	exp := cur + int64(c)
	e.expiry[i] = exp
	b := exp & e.mask
	e.next[i] = e.head[b]
	e.head[b] = int16(i)
	e.occ[b>>6] |= 1 << uint(b&63)
}

// grow doubles the calendar until one wrap covers a draw of span slots,
// then re-files every queued node into the new buckets. Re-filing walks
// the old bucket lists — not expiry[] — because mid-event transmitters
// have stale expiries and are not queued; they re-enqueue themselves
// right after. Filing order within a bucket is irrelevant: the drain
// sorts transmitters before acting. Growth is rare (once per doubling,
// never undone), so the rebuild cost amortizes to nothing.
func (e *fastEngine) grow(span int64) {
	b := int64(len(e.head))
	for b <= span {
		b <<= 1
	}
	head := make([]int16, b)
	for i := range head {
		head[i] = -1
	}
	occ := make([]uint64, b/64)
	mask := b - 1
	for _, h := range e.head {
		for i := h; i >= 0; {
			ni := e.next[i]
			nb := e.expiry[i] & mask
			e.next[i] = head[nb]
			head[nb] = int16(i)
			occ[nb>>6] |= 1 << uint(nb&63)
			i = ni
		}
	}
	e.head, e.occ, e.mask = head, occ, mask
}

// nextBucket returns the first non-empty bucket at or cyclically after
// virtual slot cur. Because the calendar spans more than the largest
// window, the cyclically-nearest occupied bucket is the minimum expiry.
func (e *fastEngine) nextBucket(cur int64) int64 {
	b0 := cur & e.mask
	w := int(b0 >> 6)
	word := e.occ[w] &^ (1<<uint(b0&63) - 1)
	for word == 0 {
		w++
		if w == len(e.occ) {
			w = 0
		}
		word = e.occ[w]
	}
	return int64(w<<6 + bits.TrailingZeros64(word))
}

// run executes the simulation to completion and finalises the result.
func (e *fastEngine) run() *Result {
	cfg := e.cfg
	res := &e.res
	var elapsed float64
	var cur int64 // current virtual slot

	for elapsed < cfg.Duration {
		b := e.nextBucket(cur)
		emin := e.expiry[e.head[b]] // bucket holds one expiry value only
		if minC := emin - cur; minC > 0 {
			elapsed += float64(minC) * cfg.Timing.Slot
			res.Slots += minC
			res.IdleSlots += minC
		}
		// Drain the bucket: it contains exactly the transmitter set.
		tx := e.transmitters[:0]
		for i := e.head[b]; i >= 0; i = e.next[i] {
			tx = append(tx, int(i))
		}
		e.head[b] = -1
		e.occ[b>>6] &^= 1 << uint(b&63)
		sortAscending(tx) // draw order is ascending node order
		e.transmitters = tx

		// emin == res.Slots here (idle advance above restores the
		// invariant), so both engines report identical event slots.
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(emin, tx)
		}
		res.Slots++
		cur = emin + 1
		if len(tx) == 1 {
			i := tx[0]
			res.SuccessEvents++
			res.Nodes[i].Attempts++
			res.Nodes[i].Successes++
			elapsed += e.ts[i]
			e.stage[i] = 0
			e.enqueue(i, cur)
		} else {
			res.CollisionEvents++
			d := e.tc[tx[0]] // longest colliding frame holds the channel
			for _, i := range tx[1:] {
				if e.tc[i] > d {
					d = e.tc[i]
				}
			}
			elapsed += d
			for _, i := range tx {
				res.Nodes[i].Attempts++
				res.Nodes[i].Collisions++
				if e.stage[i] < cfg.MaxStage {
					e.stage[i]++
				}
				e.enqueue(i, cur)
			}
		}
	}

	res.Time = elapsed
	res.Throughput = 0
	for i := range res.Nodes {
		st := &res.Nodes[i]
		st.PayoffRate = (float64(st.Successes)*cfg.Gain - float64(st.Attempts)*cfg.Cost) / elapsed
		st.Throughput = float64(st.Successes) * cfg.Timing.Payload / elapsed
		if res.Slots > 0 {
			st.MeasuredTau = float64(st.Attempts) / float64(res.Slots)
		}
		if st.Attempts > 0 {
			st.MeasuredP = float64(st.Collisions) / float64(st.Attempts)
		}
		res.Throughput += st.Throughput
	}
	return res
}

// sortAscending insertion-sorts the (typically 1–3 element) transmitter
// set without allocating.
func sortAscending(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

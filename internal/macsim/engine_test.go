package macsim

import (
	"reflect"
	"testing"

	"selfishmac/internal/phy"
)

// cloneResult snapshots an engine-owned Result for comparison across runs.
func cloneResult(r *Result) *Result {
	out := *r
	out.Nodes = append([]NodeStats(nil), r.Nodes...)
	return &out
}

// TestDifferentialEngineMatchesRun pins the reusable lifecycle against the
// one-shot entry point: for every differential config and a sweep of
// seeds, Reset(seed)+Run on one engine must equal a fresh Run.
func TestDifferentialEngineMatchesRun(t *testing.T) {
	for ci, cfg := range diffConfigs(t) {
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatalf("cfg%02d: %v", ci, err)
		}
		for seed := uint64(0); seed < 4; seed++ {
			ref := cfg
			ref.Seed = seed
			want, err := Run(ref)
			if err != nil {
				t.Fatal(err)
			}
			eng.Reset(seed)
			got := eng.Run()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cfg%02d seed %d: engine diverged from Run:\nengine: %+v\nrun:    %+v",
					ci, seed, got, want)
			}
		}
	}
}

// TestDifferentialEngineReconfigure drives one engine through a stage
// sequence of changing windows, seeds and durations — the closed-loop
// usage — including a shape change (different node count) and an over-cap
// window that forces the reference fallback, comparing every stage to a
// fresh Run.
func TestDifferentialEngineReconfigure(t *testing.T) {
	basic := phy.Default().MustTiming(phy.Basic)
	mk := func(cw []int, dur float64, seed uint64) Config {
		return Config{Timing: basic, MaxStage: 6, CW: cw, Duration: dur, Seed: seed, Gain: 1, Cost: 0.01}
	}
	stages := []Config{
		mk(uniform(128, 6), 1e6, 1),
		mk([]int{128, 64, 128, 128, 32, 128}, 1e6, 2), // same shape: buffer reuse
		mk(uniform(16, 6), 5e5, 3),                    // shrinking window: reuse
		mk(uniform(336, 6), 1e6, 4),                   // growing window within calendar? may rebuild
		mk(uniform(64, 9), 1e6, 5),                    // node count change: rebuild
		{Timing: basic, MaxStage: 16, CW: uniform(fastWindowCap, 2), Duration: 1e5,
			Seed: 6, Gain: 1, Cost: 0.01}, // over-cap: reference fallback
		mk(uniform(48, 9), 1e6, 7), // back onto the calendar engine
	}
	eng, err := NewEngine(stages[0])
	if err != nil {
		t.Fatal(err)
	}
	for si, cfg := range stages {
		if si > 0 {
			if err := eng.Reconfigure(cfg); err != nil {
				t.Fatalf("stage %d: %v", si, err)
			}
		}
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := cloneResult(eng.Run())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stage %d: reconfigured engine diverged from fresh Run", si)
		}
	}
}

// The engine must not retain the caller's slices: mutating the config
// after NewEngine/Reconfigure cannot change results.
func TestEngineCopiesConfig(t *testing.T) {
	cw := []int{32, 64, 96}
	cfg := Config{Timing: phy.Default().MustTiming(phy.Basic), MaxStage: 6,
		CW: cw, Duration: 1e6, Seed: 3, Gain: 1, Cost: 0.01}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Reset(3)
	want := cloneResult(eng.Run())
	cw[0] = 1 // caller clobbers its slice
	eng.Reset(3)
	if got := eng.Run(); !reflect.DeepEqual(got, want) {
		t.Fatal("engine result changed when the caller mutated its CW slice")
	}
}

// The acceptance criterion: post-construction, the reusable lifecycle —
// Reset+Run, and same-shape Reconfigure+Run — performs zero allocations.
func TestEngineSteadyStateAllocationFree(t *testing.T) {
	cfg := Config{
		Timing:   phy.Default().MustTiming(phy.Basic),
		MaxStage: 6,
		CW:       uniform(336, 20),
		Duration: 1e6,
		Seed:     1,
		Gain:     1,
		Cost:     0.01,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(0)
	if allocs := testing.AllocsPerRun(5, func() {
		seed++
		eng.Reset(seed)
		eng.Run()
	}); allocs != 0 {
		t.Fatalf("Reset+Run allocated %.1f objects per run, want 0", allocs)
	}
	alt := cfg
	alt.CW = uniform(128, 20)
	flip := false
	if allocs := testing.AllocsPerRun(5, func() {
		flip = !flip
		next := cfg
		if flip {
			next = alt
		}
		if err := eng.Reconfigure(next); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}); allocs != 0 {
		t.Fatalf("same-shape Reconfigure+Run allocated %.1f objects per run, want 0", allocs)
	}
}

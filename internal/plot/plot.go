// Package plot renders the experiment outputs: ASCII line charts for the
// paper's figures, aligned text tables for its tables, and CSV series for
// external tooling. Go has no standard plotting stack and this repository
// is dependency-free, so figures are textual; the CSV files carry the full
// numeric series for anyone who wants to re-plot them.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named trace of an ASCII chart.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y are the data (equal length).
	X, Y []float64
}

// markers are cycled across series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// Chart is a multi-series ASCII line chart.
type Chart struct {
	// Title, XLabel and YLabel annotate the chart.
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plotting-area dimensions in characters.
	// Zero values default to 72x20.
	Width, Height int
	// LogX plots the x axis logarithmically (x must be positive).
	LogX bool
	// Series holds the traces.
	Series []Series
}

// Add appends a series.
func (c *Chart) Add(name string, x, y []float64) {
	c.Series = append(c.Series, Series{Name: name, X: x, Y: y})
}

// Render draws the chart. It returns an error when there is nothing to
// plot or a series is malformed.
func (c *Chart) Render() (string, error) {
	if len(c.Series) == 0 {
		return "", errors.New("plot: chart has no series")
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x values but %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("plot: series %q is empty", s.Name)
		}
		for i := range s.X {
			x := s.X[i]
			if c.LogX {
				if x <= 0 {
					return "", fmt.Errorf("plot: series %q has non-positive x=%g on a log axis", s.Name, x)
				}
				x = math.Log10(x)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		marker := markers[si%len(markers)]
		for i := range s.X {
			x := s.X[i]
			if c.LogX {
				x = math.Log10(x)
			}
			col := int((x - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			grid[row][col] = marker
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", c.YLabel)
	}
	labelW := 11
	for r, row := range grid {
		yv := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		label := " "
		if r == 0 || r == height-1 || r == height/2 {
			label = fmt.Sprintf("%10.3g", yv)
		}
		fmt.Fprintf(&b, "%*s |%s\n", labelW-1, label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW-1), strings.Repeat("-", width))
	// X tick labels at the extremes.
	loLabel, hiLabel := c.xTick(xmin), c.xTick(xmax)
	pad := width - len(loLabel) - len(hiLabel)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW-1), loLabel, strings.Repeat(" ", pad), hiLabel)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", labelW-1), c.XLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String(), nil
}

func (c *Chart) xTick(x float64) string {
	if c.LogX {
		return fmt.Sprintf("%.4g", math.Pow(10, x))
	}
	return fmt.Sprintf("%.4g", x)
}

// Table is an aligned text table.
type Table struct {
	// Title is printed above the table when non-empty.
	Title string
	// Headers names the columns.
	Headers []string
	rows    [][]string
}

// AddRow appends a row; it returns an error on column-count mismatch.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Headers) {
		return fmt.Errorf("plot: row has %d cells, table has %d columns", len(cells), len(t.Headers))
	}
	t.rows = append(t.rows, cells)
	return nil
}

// MustAddRow is AddRow for rows whose arity is fixed at the call site; it
// panics on mismatch.
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render draws the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(t.Headers)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV writes column-oriented float data with a header row. All
// columns must share one length.
func WriteCSV(w io.Writer, headers []string, cols ...[]float64) error {
	if len(headers) != len(cols) {
		return fmt.Errorf("plot: %d headers for %d columns", len(headers), len(cols))
	}
	if len(cols) == 0 {
		return errors.New("plot: no columns")
	}
	n := len(cols[0])
	for i, c := range cols {
		if len(c) != n {
			return fmt.Errorf("plot: column %q has %d rows, expected %d", headers[i], len(c), n)
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for r := 0; r < n; r++ {
		for i := range cols {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%g", cols[i][r]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

package plot

import (
	"strings"
	"testing"
)

func TestChartRenderBasics(t *testing.T) {
	c := Chart{Title: "payoff vs CW", XLabel: "CW", YLabel: "U/C", Width: 40, Height: 10}
	c.Add("n=5", []float64{1, 2, 3, 4}, []float64{0, 1, 4, 9})
	out, err := c.Render()
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	for _, want := range []string{"payoff vs CW", "U/C", "CW", "n=5", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 12 {
		t.Errorf("suspiciously short chart (%d lines)", len(lines))
	}
}

func TestChartMultipleSeriesMarkers(t *testing.T) {
	c := Chart{Width: 30, Height: 8}
	c.Add("a", []float64{0, 1}, []float64{0, 1})
	c.Add("b", []float64{0, 1}, []float64{1, 0})
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("distinct markers missing:\n%s", out)
	}
}

func TestChartErrors(t *testing.T) {
	empty := Chart{}
	if _, err := empty.Render(); err == nil {
		t.Error("empty chart rendered")
	}
	mismatch := Chart{Series: []Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := mismatch.Render(); err == nil {
		t.Error("mismatched series rendered")
	}
	hollow := Chart{Series: []Series{{Name: "hollow"}}}
	if _, err := hollow.Render(); err == nil {
		t.Error("zero-length series rendered")
	}
	logBad := Chart{LogX: true, Series: []Series{{Name: "neg", X: []float64{0}, Y: []float64{1}}}}
	if _, err := logBad.Render(); err == nil {
		t.Error("non-positive x rendered on log axis")
	}
}

func TestChartConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	c := Chart{Width: 20, Height: 5}
	c.Add("flat", []float64{2, 2, 2}, []float64{7, 7, 7})
	if _, err := c.Render(); err != nil {
		t.Fatalf("constant series failed: %v", err)
	}
}

func TestChartLogX(t *testing.T) {
	c := Chart{LogX: true, Width: 40, Height: 8}
	c.Add("sweep", []float64{1, 10, 100, 1000}, []float64{1, 2, 3, 4})
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1000") {
		t.Errorf("log-x tick missing:\n%s", out)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "Table II", Headers: []string{"n", "Wc*", "sim"}}
	if err := tb.AddRow("5", "76", "75.6"); err != nil {
		t.Fatal(err)
	}
	tb.MustAddRow("20", "336", "337.4")
	out := tb.Render()
	for _, want := range []string{"Table II", "Wc*", "75.6", "337.4", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	// Columns must align: header row and data rows share prefixes widths.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableArityChecks(t *testing.T) {
	tb := Table{Headers: []string{"a", "b"}}
	if err := tb.AddRow("only-one"); err == nil {
		t.Error("short row accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow did not panic")
		}
	}()
	tb.MustAddRow("x", "y", "z")
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"w", "u"}, []float64{1, 2, 3}, []float64{0.5, 0.25, 0.125})
	if err != nil {
		t.Fatal(err)
	}
	want := "w,u\n1,0.5\n2,0.25\n3,0.125\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, []string{"a"}, []float64{1}, []float64{2}); err == nil {
		t.Error("header/column mismatch accepted")
	}
	if err := WriteCSV(&b, nil); err == nil {
		t.Error("empty csv accepted")
	}
	if err := WriteCSV(&b, []string{"a", "b"}, []float64{1, 2}, []float64{3}); err == nil {
		t.Error("ragged columns accepted")
	}
}

// Rendering must be deterministic: identical inputs give byte-identical
// output (the results/ artifacts are diffable across runs).
func TestRenderDeterministic(t *testing.T) {
	build := func() string {
		c := Chart{Title: "t", Width: 50, Height: 12, LogX: true}
		c.Add("a", []float64{1, 10, 100}, []float64{0.5, 1.5, 1.0})
		c.Add("b", []float64{2, 20, 200}, []float64{1.0, 0.25, 0.75})
		out, err := c.Render()
		if err != nil {
			t.Fatal(err)
		}
		tb := Table{Title: "tt", Headers: []string{"x", "y"}}
		tb.MustAddRow("1", "2")
		return out + tb.Render()
	}
	if build() != build() {
		t.Fatal("rendering is not deterministic")
	}
}

func TestChartSinglePoint(t *testing.T) {
	c := Chart{Width: 10, Height: 4}
	c.Add("dot", []float64{5}, []float64{7})
	if _, err := c.Render(); err != nil {
		t.Fatalf("single-point series failed: %v", err)
	}
}

func TestTableEmptyRender(t *testing.T) {
	tb := Table{Headers: []string{"only", "headers"}}
	out := tb.Render()
	if !strings.Contains(out, "only") {
		t.Fatalf("headers missing: %q", out)
	}
	if tb.NumRows() != 0 {
		t.Fatal("phantom rows")
	}
}

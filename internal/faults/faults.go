// Package faults is a deterministic, composable fault-injection layer
// for the distributed NE search protocol. FaultyEnv wraps any search.Env
// and injects, per configured probability: broadcast message drop (per
// follower when the inner environment exposes per-node delivery, else per
// message), duplication, bounded delay with reordering, payoff-measurement
// outliers, transient measurement failures, and crash-stop of followers
// or of the leader mid-search.
//
// Every fault stream is seeded independently via rng.DeriveSeed from one
// base seed, so any scenario replays byte-identically — enabling one
// fault never shifts another fault's random stream — and a failure seen
// in production or CI can be replayed from its seed alone.
package faults

import (
	"errors"
	"fmt"
	"math"

	"selfishmac/internal/rng"
	"selfishmac/internal/search"
)

// Config selects which faults to inject and how hard.
// The zero value injects nothing (a transparent wrapper).
type Config struct {
	// Seed derives every fault stream (rng.DeriveSeed per fault kind).
	Seed uint64
	// DropProb is the probability a broadcast is lost — independently per
	// follower when the inner env implements PartialEnv, else for the
	// whole message.
	DropProb float64
	// DupProb is the probability a delivered broadcast arrives twice.
	DupProb float64
	// DelayProb is the probability a broadcast is held back and delivered
	// (out of order) during a later broadcast.
	DelayProb float64
	// MaxDelay bounds the delay in subsequent broadcasts. Zero with a
	// positive DelayProb defaults to 2.
	MaxDelay int
	// OutlierProb is the probability a payoff measurement is replaced by
	// an outlier (scaled by ±OutlierScale).
	OutlierProb float64
	// OutlierScale is the outlier magnitude multiplier. Zero defaults to 10.
	OutlierScale float64
	// FailProb is the probability a payoff measurement errors outright
	// (a transient failure the retry logic can absorb).
	FailProb float64
	// LeaderCrashAfter crash-stops the leader's search agent after this
	// many successful payoff measurements. Zero means never. The crash is
	// of the protocol process, not the radio: the station's MAC keeps
	// contending and, once a deputy takes over through Failover, resumes
	// following the deputy's Ready broadcasts like any follower.
	LeaderCrashAfter int
	// FollowerCrashProb is the per-live-follower, per-broadcast
	// probability of a protocol crash-stop (PartialEnv inner environments
	// only). A crashed follower stops processing messages, so its MAC
	// keeps contending at its stale CW — a permanent straggler, the worst
	// case for the search.
	FollowerCrashProb float64
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	var errs []error
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropProb", c.DropProb}, {"DupProb", c.DupProb}, {"DelayProb", c.DelayProb},
		{"OutlierProb", c.OutlierProb}, {"FailProb", c.FailProb},
		{"FollowerCrashProb", c.FollowerCrashProb},
	} {
		if p.v < 0 || p.v >= 1 || math.IsNaN(p.v) {
			errs = append(errs, fmt.Errorf("faults: %s %g outside [0, 1)", p.name, p.v))
		}
	}
	if c.MaxDelay < 0 {
		errs = append(errs, fmt.Errorf("faults: negative MaxDelay %d", c.MaxDelay))
	}
	if c.OutlierScale < 0 {
		errs = append(errs, fmt.Errorf("faults: negative OutlierScale %g", c.OutlierScale))
	}
	if c.LeaderCrashAfter < 0 {
		errs = append(errs, fmt.Errorf("faults: negative LeaderCrashAfter %d", c.LeaderCrashAfter))
	}
	return errors.Join(errs...)
}

// Stats counts every injected fault, for assertions and reports.
type Stats struct {
	Broadcasts        int // messages the protocol sent
	Dropped           int // (message, follower) or whole-message losses
	Duplicated        int // duplicate deliveries
	Delayed           int // messages queued for later delivery
	Reordered         int // delayed messages delivered after a newer one
	Outliers          int // corrupted payoff measurements
	TransientFailures int // measurements that returned an error
	FollowerCrashes   int // followers crash-stopped
	LeaderCrashes     int // leader crash-stops triggered
	Failovers         int // deputy promotions performed
}

// PartialEnv is an inner environment exposing per-node delivery, enabling
// per-follower drop, follower crash-stop, and deputy promotion.
// *search.AnalyticEnv implements it.
type PartialEnv interface {
	search.Env
	NumNodes() int
	LeaderID() int
	DeliverTo(node int, msg search.Message)
	SetLeader(node int) error
}

var _ PartialEnv = (*search.AnalyticEnv)(nil)

// FaultyEnv injects the configured faults around an inner search.Env.
// It implements search.Env, search.AckEnv, and search.FailoverEnv, so
// the resilient runners get acknowledgement and failover signals for
// free. Not safe for concurrent use (neither is the protocol).
type FaultyEnv struct {
	inner search.Env
	part  PartialEnv // non-nil when inner supports per-node delivery
	cfg   Config

	drop, dup, delay, outlier, fail, crash *rng.Source

	queue        []delayedMsg
	now          int // broadcast counter, the delay clock
	crashed      []bool
	leaderDown   bool
	measurements int

	// Acknowledgement state is cumulative: a follower is stale until it
	// has applied the *current* W, whichever send delivered it, and a
	// reordered stale delivery makes it stale again.
	curW     int          // W of the latest StartSearch/Ready (0 before any)
	stale    map[int]bool // per-follower staleness (PartialEnv mode)
	staleMsg bool         // whole-network staleness (message mode)

	// Stats tallies every fault injected so far.
	Stats Stats
}

type delayedMsg struct {
	msg search.Message
	due int
}

// New wraps inner with the configured fault injection.
func New(inner search.Env, cfg Config) (*FaultyEnv, error) {
	if inner == nil {
		return nil, search.ErrNoEnv
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.OutlierScale == 0 {
		cfg.OutlierScale = 10
	}
	if cfg.MaxDelay == 0 && cfg.DelayProb > 0 {
		cfg.MaxDelay = 2
	}
	e := &FaultyEnv{
		inner:   inner,
		cfg:     cfg,
		drop:    rng.New(rng.DeriveSeed(cfg.Seed, "faults.drop", 0)),
		dup:     rng.New(rng.DeriveSeed(cfg.Seed, "faults.dup", 0)),
		delay:   rng.New(rng.DeriveSeed(cfg.Seed, "faults.delay", 0)),
		outlier: rng.New(rng.DeriveSeed(cfg.Seed, "faults.outlier", 0)),
		fail:    rng.New(rng.DeriveSeed(cfg.Seed, "faults.fail", 0)),
		crash:   rng.New(rng.DeriveSeed(cfg.Seed, "faults.crash", 0)),
	}
	if part, ok := inner.(PartialEnv); ok {
		e.part = part
		e.crashed = make([]bool, part.NumNodes())
		e.stale = make(map[int]bool)
	}
	return e, nil
}

// Broadcast implements search.Env: it first flushes due delayed messages
// (out of order relative to their send order), then crash-stops followers,
// then delivers msg subject to drop, duplication, and delay.
func (e *FaultyEnv) Broadcast(msg search.Message) {
	e.Stats.Broadcasts++
	e.now++

	// Deliver messages whose delay expired; they arrive after newer ones.
	kept := e.queue[:0]
	for _, d := range e.queue {
		if d.due <= e.now {
			e.Stats.Reordered++
			e.deliver(d.msg)
		} else {
			kept = append(kept, d)
		}
	}
	e.queue = kept

	// Crash-stop followers. A crashed follower leaves the acknowledgement
	// set: it will never confirm anything again.
	if e.part != nil && e.cfg.FollowerCrashProb > 0 {
		leader := e.part.LeaderID()
		for i := range e.crashed {
			if i == leader || e.crashed[i] {
				continue
			}
			if e.crash.Float64() < e.cfg.FollowerCrashProb {
				e.crashed[i] = true
				delete(e.stale, i)
				e.Stats.FollowerCrashes++
			}
		}
	}

	// A CW-bearing message with a new W opens a new acknowledgement epoch:
	// every live follower is stale until some send delivers the new W to it.
	if cwMessage(msg) && msg.W != e.curW {
		e.curW = msg.W
		if e.part != nil {
			leader := e.part.LeaderID()
			for i := range e.crashed {
				if i != leader && !e.crashed[i] {
					e.stale[i] = true
				}
			}
		} else {
			e.staleMsg = true
		}
	}

	// Delay the whole message?
	if e.cfg.DelayProb > 0 && e.delay.Float64() < e.cfg.DelayProb {
		e.queue = append(e.queue, delayedMsg{msg: msg, due: e.now + 1 + e.delay.Intn(e.cfg.MaxDelay)})
		e.Stats.Delayed++
		return
	}

	e.deliver(msg)
	if e.cfg.DupProb > 0 && e.dup.Float64() < e.cfg.DupProb {
		e.Stats.Duplicated++
		e.deliver(msg)
	}
}

// cwMessage reports whether msg sets the followers' contention window.
func cwMessage(msg search.Message) bool {
	return msg.Type == search.StartSearch || msg.Type == search.Ready
}

// deliver pushes msg toward the followers and updates the acknowledgement
// state: a delivery of the current W clears a follower's staleness, while
// a reordered delivery of an older W reverts the follower and makes it
// stale again.
func (e *FaultyEnv) deliver(msg search.Message) {
	if e.part == nil {
		// Message-level faults only: the whole broadcast is lost or not.
		if e.cfg.DropProb > 0 && e.drop.Float64() < e.cfg.DropProb {
			e.Stats.Dropped++
			return
		}
		e.inner.Broadcast(msg)
		if cwMessage(msg) {
			e.staleMsg = msg.W != e.curW
		}
		return
	}
	// Per-follower delivery. The inner Broadcast is bypassed so each
	// follower's outcome is independent; crashed followers never receive.
	leader := e.part.LeaderID()
	for i := 0; i < e.part.NumNodes(); i++ {
		if i == leader || e.crashed[i] {
			continue
		}
		if e.cfg.DropProb > 0 && e.drop.Float64() < e.cfg.DropProb {
			e.Stats.Dropped++
			continue
		}
		e.part.DeliverTo(i, msg)
		if cwMessage(msg) {
			if msg.W == e.curW {
				delete(e.stale, i)
			} else {
				e.stale[i] = true
			}
		}
	}
}

// LeaderPayoff implements search.Env with leader crash-stop, transient
// failures, and measurement outliers.
func (e *FaultyEnv) LeaderPayoff(w int) (float64, error) {
	if e.leaderDown {
		return 0, fmt.Errorf("faults: %w", search.ErrLeaderCrashed)
	}
	if e.cfg.LeaderCrashAfter > 0 && e.measurements >= e.cfg.LeaderCrashAfter {
		e.leaderDown = true
		e.Stats.LeaderCrashes++
		return 0, fmt.Errorf("faults: %w", search.ErrLeaderCrashed)
	}
	if e.cfg.FailProb > 0 && e.fail.Float64() < e.cfg.FailProb {
		e.Stats.TransientFailures++
		return 0, fmt.Errorf("faults: transient measurement failure at W=%d", w)
	}
	p, err := e.inner.LeaderPayoff(w)
	if err != nil {
		return 0, err
	}
	e.measurements++
	if e.cfg.OutlierProb > 0 && e.outlier.Float64() < e.cfg.OutlierProb {
		e.Stats.Outliers++
		// Symmetric gross errors: far above or far below the true value.
		if e.outlier.Float64() < 0.5 {
			p = (math.Abs(p) + 1) * e.cfg.OutlierScale
		} else {
			p = -(math.Abs(p) + 1) * e.cfg.OutlierScale
		}
	}
	return p, nil
}

// LastBroadcastAcked implements search.AckEnv: true when every live
// follower holds the current W — acknowledgement is cumulative across
// re-sends, so a follower that caught an earlier copy counts as acked.
func (e *FaultyEnv) LastBroadcastAcked() bool {
	if e.part != nil {
		return len(e.stale) == 0
	}
	return !e.staleMsg
}

// Failover implements search.FailoverEnv: it promotes the first live node
// at or after the proposed id (wrapping around and skipping crashed
// followers when the inner env is a PartialEnv) and clears the crashed
// flag so the deputy's measurements succeed.
func (e *FaultyEnv) Failover(proposed int) (int, error) {
	if !e.leaderDown {
		return 0, errors.New("faults: failover requested but the leader is up")
	}
	deputy := proposed
	if e.part != nil {
		n := e.part.NumNodes()
		old := e.part.LeaderID()
		deputy = -1
		for k := 0; k < n; k++ {
			cand := ((proposed + k) % n)
			if cand != old && !e.crashed[cand] {
				deputy = cand
				break
			}
		}
		if deputy < 0 {
			return 0, errors.New("faults: no live node left to promote")
		}
		if err := e.part.SetLeader(deputy); err != nil {
			return 0, err
		}
		// The old leader's station is now a follower that has not yet
		// heard from the deputy: stale until a Ready reaches it.
		if !e.crashed[old] {
			e.stale[old] = true
		}
	}
	e.leaderDown = false
	e.cfg.LeaderCrashAfter = 0 // the deputy does not inherit the crash plan
	e.Stats.Failovers++
	return deputy, nil
}

// CrashedFollowers returns the indices of crash-stopped followers.
func (e *FaultyEnv) CrashedFollowers() []int {
	var out []int
	for i, c := range e.crashed {
		if c {
			out = append(out, i)
		}
	}
	return out
}

var (
	_ search.Env         = (*FaultyEnv)(nil)
	_ search.AckEnv      = (*FaultyEnv)(nil)
	_ search.FailoverEnv = (*FaultyEnv)(nil)
)

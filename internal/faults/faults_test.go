package faults

import (
	"math"
	"reflect"
	"testing"

	"selfishmac/internal/core"
	"selfishmac/internal/phy"
	"selfishmac/internal/search"
)

func mustGame(t testing.TB, n int) *core.Game {
	t.Helper()
	g, err := core.NewGame(core.DefaultConfig(n, phy.RTSCTS))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustEnv(t testing.TB, g *core.Game, w0 int) *search.AnalyticEnv {
	t.Helper()
	env, err := search.NewAnalyticEnv(g, 0, w0)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"DropProb 1", Config{DropProb: 1}},
		{"negative DropProb", Config{DropProb: -0.1}},
		{"NaN DropProb", Config{DropProb: math.NaN()}},
		{"DupProb 1", Config{DupProb: 1}},
		{"DelayProb 1", Config{DelayProb: 1}},
		{"OutlierProb 1", Config{OutlierProb: 1}},
		{"FailProb 1", Config{FailProb: 1}},
		{"FollowerCrashProb 1", Config{FollowerCrashProb: 1}},
		{"negative MaxDelay", Config{MaxDelay: -1}},
		{"negative OutlierScale", Config{OutlierScale: -2}},
		{"negative LeaderCrashAfter", Config{LeaderCrashAfter: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", tc.cfg)
			}
			if _, err := New(mustEnv(t, mustGame(t, 3), 8), tc.cfg); err == nil {
				t.Error("New accepted the invalid config")
			}
		})
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil inner env accepted")
	}
}

// A zero config must be a fully transparent wrapper: same walk, same
// answer, no faults counted.
func TestZeroConfigIsTransparent(t *testing.T) {
	g := mustGame(t, 5)
	plain, err := search.Run(mustEnv(t, g, 4), 0, 4, search.Options{WMax: g.Config().WMax})
	if err != nil {
		t.Fatal(err)
	}
	env, err := New(mustEnv(t, g, 4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := search.Run(env, 0, 4, search.Options{WMax: g.Config().WMax})
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.W != plain.W {
		t.Fatalf("wrapped walk found %d, plain %d", wrapped.W, plain.W)
	}
	if !reflect.DeepEqual(wrapped.Probes, plain.Probes) {
		t.Fatal("zero-config wrapper changed the measured payoffs")
	}
	s := env.Stats
	if s.Dropped != 0 || s.Duplicated != 0 || s.Delayed != 0 || s.Outliers != 0 ||
		s.TransientFailures != 0 || s.FollowerCrashes != 0 || s.LeaderCrashes != 0 {
		t.Fatalf("zero config injected faults: %+v", s)
	}
	if s.Broadcasts == 0 {
		t.Fatal("broadcasts not counted")
	}
}

// The acceptance scenario of the fault-injection work: drop probability up
// to 0.3, measurement outliers, transient failures, and one leader crash.
// ResilientRun must land within +/-2 of the fault-free NE with Degraded
// unset, on every seed.
func TestResilientRunAcceptanceScenario(t *testing.T) {
	g := mustGame(t, 10)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	opts := search.Options{WMax: g.Config().WMax, MeasureK: 3, Retries: 3}
	for _, drop := range []float64{0.1, 0.2, 0.3} {
		for seed := uint64(0); seed < 4; seed++ {
			env, err := New(mustEnv(t, g, 8), Config{
				Seed:             seed,
				DropProb:         drop,
				OutlierProb:      0.1,
				FailProb:         0.05,
				LeaderCrashAfter: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := search.ResilientRun(env, 0, 8, opts)
			if err != nil {
				t.Fatalf("drop=%.1f seed=%d: %v", drop, seed, err)
			}
			if d := res.W - ne.WStar; d < -2 || d > 2 {
				t.Errorf("drop=%.1f seed=%d: W=%d, fault-free NE %d (err %+d)",
					drop, seed, res.W, ne.WStar, d)
			}
			if res.Degraded {
				t.Errorf("drop=%.1f seed=%d: Degraded set without a probe budget", drop, seed)
			}
			if !res.FailedOver || env.Stats.Failovers != 1 {
				t.Errorf("drop=%.1f seed=%d: leader crash not failed over (stats %+v)",
					drop, seed, env.Stats)
			}
		}
	}
}

// The same seed must replay byte-identically: identical Result, identical
// Stats, down to every counter.
func TestScenarioReplaysByteIdentical(t *testing.T) {
	g := mustGame(t, 10)
	cfg := Config{
		Seed:              42,
		DropProb:          0.25,
		DupProb:           0.1,
		DelayProb:         0.1,
		OutlierProb:       0.1,
		FailProb:          0.05,
		LeaderCrashAfter:  6,
		FollowerCrashProb: 0.002,
	}
	opts := search.Options{WMax: g.Config().WMax, MeasureK: 3, Retries: 3}
	run := func() (search.Result, Stats, []int) {
		env, err := New(mustEnv(t, g, 8), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := search.ResilientRun(env, 0, 8, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, env.Stats, env.CrashedFollowers()
	}
	res1, stats1, crashed1 := run()
	res2, stats2, crashed2 := run()
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("results differ across replays:\n%+v\n%+v", res1, res2)
	}
	if stats1 != stats2 {
		t.Fatalf("stats differ across replays:\n%+v\n%+v", stats1, stats2)
	}
	if !reflect.DeepEqual(crashed1, crashed2) {
		t.Fatalf("crashed sets differ: %v vs %v", crashed1, crashed2)
	}
}

// Enabling one fault must not shift another fault's stream: with the same
// seed, the drop pattern is identical whether or not outliers are on.
func TestFaultStreamsAreIndependent(t *testing.T) {
	g := mustGame(t, 10)
	dropsOf := func(cfg Config) int {
		env, err := New(mustEnv(t, g, 8), cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Fixed message schedule so both runs broadcast identically.
		for w := 8; w < 40; w++ {
			env.Broadcast(search.Message{Type: search.Ready, From: 0, W: w})
		}
		return env.Stats.Dropped
	}
	plain := dropsOf(Config{Seed: 7, DropProb: 0.3})
	noisy := dropsOf(Config{Seed: 7, DropProb: 0.3, OutlierProb: 0.4, FailProb: 0.2, LeaderCrashAfter: 3})
	if plain != noisy {
		t.Fatalf("enabling measurement faults changed the drop stream: %d vs %d drops", plain, noisy)
	}
}

func TestFollowerCrashStopsProcessing(t *testing.T) {
	g := mustGame(t, 10)
	inner := mustEnv(t, g, 8)
	env, err := New(inner, Config{Seed: 3, FollowerCrashProb: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for w := 9; w < 40; w++ {
		env.Broadcast(search.Message{Type: search.Ready, From: 0, W: w})
	}
	crashed := env.CrashedFollowers()
	if len(crashed) == 0 {
		t.Fatal("5% per-broadcast crash probability over 31 broadcasts crashed nobody")
	}
	if env.Stats.FollowerCrashes != len(crashed) {
		t.Fatalf("stats count %d crashes, CrashedFollowers lists %d", env.Stats.FollowerCrashes, len(crashed))
	}
	profile := inner.Profile()
	for _, i := range crashed {
		if profile[i] == 39 {
			t.Errorf("crashed follower %d still applied the latest W", i)
		}
	}
}

func TestLeaderCrashAndFailover(t *testing.T) {
	g := mustGame(t, 6)
	inner := mustEnv(t, g, 8)
	env, err := New(inner, Config{LeaderCrashAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Failover before any crash must be refused.
	if _, err := env.Failover(1); err == nil {
		t.Fatal("failover accepted while the leader is up")
	}
	res, err := search.ResilientRun(env, 0, 8, search.Options{WMax: g.Config().WMax})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FailedOver || res.Leader != 1 {
		t.Fatalf("failedOver=%v leader=%d, want deputy 1", res.FailedOver, res.Leader)
	}
	if inner.LeaderID() != 1 {
		t.Fatalf("inner env leader %d, want 1", inner.LeaderID())
	}
	if env.Stats.LeaderCrashes != 1 || env.Stats.Failovers != 1 {
		t.Fatalf("stats %+v, want one crash and one failover", env.Stats)
	}
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	if res.W != ne.WStar {
		t.Fatalf("deputy finished at W=%d, exact NE %d", res.W, ne.WStar)
	}
}

func TestDelayCausesReordering(t *testing.T) {
	g := mustGame(t, 5)
	env, err := New(mustEnv(t, g, 8), Config{Seed: 1, DelayProb: 0.3, MaxDelay: 3})
	if err != nil {
		t.Fatal(err)
	}
	for w := 9; w < 60; w++ {
		env.Broadcast(search.Message{Type: search.Ready, From: 0, W: w})
	}
	if env.Stats.Delayed == 0 {
		t.Fatal("30% delay probability delayed nothing over 51 broadcasts")
	}
	if env.Stats.Reordered == 0 {
		t.Fatal("delayed messages were never delivered out of order")
	}
	if env.Stats.Reordered > env.Stats.Delayed {
		t.Fatalf("%d reordered > %d delayed", env.Stats.Reordered, env.Stats.Delayed)
	}
}

// A reordered stale Ready reverts its receivers; the cumulative ack must
// report them stale so the runner re-broadcasts.
func TestAckIsCumulativeAcrossResends(t *testing.T) {
	g := mustGame(t, 5)
	inner := mustEnv(t, g, 8)
	// Seed chosen arbitrarily; DropProb high enough that a single
	// broadcast usually misses someone.
	env, err := New(inner, Config{Seed: 9, DropProb: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	env.Broadcast(search.Message{Type: search.Ready, From: 0, W: 20})
	for i := 0; i < 50 && !env.LastBroadcastAcked(); i++ {
		env.Broadcast(search.Message{Type: search.Ready, From: 0, W: 20})
	}
	if !env.LastBroadcastAcked() {
		t.Fatal("repeated re-sends never converged to a full ack")
	}
	for i, w := range inner.Profile() {
		if i != 0 && w != 20 {
			t.Fatalf("follower %d at W=%d after full ack, want 20", i, w)
		}
	}
}

func TestTransientFailuresAndOutliers(t *testing.T) {
	g := mustGame(t, 5)
	env, err := New(mustEnv(t, g, 8), Config{Seed: 5, FailProb: 0.3, OutlierProb: 0.3, OutlierScale: 50})
	if err != nil {
		t.Fatal(err)
	}
	base, err := mustEnv(t, g, 8).LeaderPayoff(8)
	if err != nil {
		t.Fatal(err)
	}
	var failures, outliers int
	for i := 0; i < 200; i++ {
		v, err := env.LeaderPayoff(8)
		if err != nil {
			failures++
			continue
		}
		if math.Abs(v-base) > 1e-9 {
			outliers++
			if math.Abs(v) < 10*math.Abs(base) {
				t.Fatalf("outlier %g not gross relative to true %g", v, base)
			}
		}
	}
	if failures == 0 || outliers == 0 {
		t.Fatalf("200 measurements: %d failures, %d outliers; want both > 0", failures, outliers)
	}
	if env.Stats.TransientFailures != failures || env.Stats.Outliers != outliers {
		t.Fatalf("stats %+v disagree with observed %d/%d", env.Stats, failures, outliers)
	}
}

// FaultyEnv must also wrap a plain (non-PartialEnv) environment, with
// whole-message semantics.
type plainEnv struct {
	delivered []search.Message
}

func (e *plainEnv) Broadcast(msg search.Message)        { e.delivered = append(e.delivered, msg) }
func (e *plainEnv) LeaderPayoff(w int) (float64, error) { return -float64(w * w), nil }

func TestMessageModeDropsWholeBroadcasts(t *testing.T) {
	inner := &plainEnv{}
	env, err := New(inner, Config{Seed: 2, DropProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	const sent = 100
	for w := 0; w < sent; w++ {
		env.Broadcast(search.Message{Type: search.Ready, From: 0, W: w + 1})
	}
	if got := len(inner.delivered) + env.Stats.Dropped; got != sent {
		t.Fatalf("delivered %d + dropped %d != sent %d", len(inner.delivered), env.Stats.Dropped, sent)
	}
	if env.Stats.Dropped == 0 || len(inner.delivered) == 0 {
		t.Fatalf("50%% drop delivered %d and dropped %d of %d", len(inner.delivered), env.Stats.Dropped, sent)
	}
}

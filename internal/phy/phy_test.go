package phy

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultMatchesTableI(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("Default params invalid: %v", err)
	}
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"payload bits", p.PayloadBits, 8184},
		{"mac header bits", p.MACHeaderBits, 272},
		{"phy header bits", p.PHYHeaderBits, 128},
		{"ack bits", p.ACKBits, 112},
		{"rts bits", p.RTSBits, 160},
		{"cts bits", p.CTSBits, 112},
		{"bit rate", p.BitRate, 1e6},
		{"slot", p.SlotTime, 50},
		{"sifs", p.SIFS, 28},
		{"difs", p.DIFS, 128},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s = %g, want %g", tc.name, tc.got, tc.want)
		}
	}
}

func TestDerivedAirtimes(t *testing.T) {
	p := Default()
	// At 1 Mbit/s, 1 bit = 1 microsecond.
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"H", p.HeaderTime(), 400},
		{"P", p.PayloadTime(), 8184},
		{"ACK", p.ACKTime(), 240},
		{"RTS", p.RTSTime(), 288},
		{"CTS", p.CTSTime(), 240},
	}
	for _, tc := range cases {
		if math.Abs(tc.got-tc.want) > 1e-9 {
			t.Errorf("%s = %g us, want %g us", tc.name, tc.got, tc.want)
		}
	}
}

func TestBasicTiming(t *testing.T) {
	tm, err := Default().Timing(Basic)
	if err != nil {
		t.Fatalf("Timing(Basic): %v", err)
	}
	// Ts = 400 + 8184 + 28 + 240 + 128 = 8980; Tc = 400 + 8184 + 28 = 8612.
	if math.Abs(tm.Ts-8980) > 1e-9 {
		t.Errorf("Ts = %g, want 8980", tm.Ts)
	}
	if math.Abs(tm.Tc-8612) > 1e-9 {
		t.Errorf("Tc = %g, want 8612", tm.Tc)
	}
	if tm.Slot != 50 || tm.Payload != 8184 {
		t.Errorf("slot/payload = %g/%g", tm.Slot, tm.Payload)
	}
	if tm.Mode != Basic {
		t.Errorf("mode = %v", tm.Mode)
	}
}

func TestRTSCTSTiming(t *testing.T) {
	tm, err := Default().Timing(RTSCTS)
	if err != nil {
		t.Fatalf("Timing(RTSCTS): %v", err)
	}
	// Ts = 288 + 28 + 240 + 400 + 8184 + 28 + 240 + 128 = 9536; Tc = 288 + 128 = 416.
	if math.Abs(tm.Ts-9536) > 1e-9 {
		t.Errorf("Ts = %g, want 9536", tm.Ts)
	}
	if math.Abs(tm.Tc-416) > 1e-9 {
		t.Errorf("Tc = %g, want 416", tm.Tc)
	}
}

func TestCollisionCostOrdering(t *testing.T) {
	p := Default()
	basic := p.MustTiming(Basic)
	rts := p.MustTiming(RTSCTS)
	// The whole point of RTS/CTS: collisions are cheap, successes slightly
	// longer. The paper's analysis (Tc' << Ts') relies on this.
	if rts.Tc >= basic.Tc {
		t.Errorf("RTS/CTS collision cost %g should be far below basic %g", rts.Tc, basic.Tc)
	}
	if rts.Ts <= basic.Ts {
		t.Errorf("RTS/CTS success cost %g should exceed basic %g", rts.Ts, basic.Ts)
	}
	if rts.Tc > rts.Ts/10 {
		t.Errorf("RTS/CTS Tc=%g not << Ts=%g", rts.Tc, rts.Ts)
	}
}

func TestTimingUnknownMode(t *testing.T) {
	if _, err := Default().Timing(AccessMode(0)); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := Default().Timing(AccessMode(7)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero payload", func(p *Params) { p.PayloadBits = 0 }},
		{"negative ack", func(p *Params) { p.ACKBits = -1 }},
		{"zero bitrate", func(p *Params) { p.BitRate = 0 }},
		{"zero slot", func(p *Params) { p.SlotTime = 0 }},
		{"negative sifs", func(p *Params) { p.SIFS = -1 }},
		{"difs < sifs", func(p *Params) { p.DIFS = 1; p.SIFS = 2 }},
		{"negative stage", func(p *Params) { p.MaxBackoffStage = -1 }},
		{"huge stage", func(p *Params) { p.MaxBackoffStage = 17 }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			p := Default()
			tc.mut(&p)
			if err := p.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if _, err := p.Timing(Basic); err == nil {
				t.Fatalf("Timing accepted %s", tc.name)
			}
		})
	}
}

func TestAccessModeString(t *testing.T) {
	if Basic.String() != "basic" || RTSCTS.String() != "rts/cts" {
		t.Fatalf("mode strings: %q %q", Basic, RTSCTS)
	}
	if !strings.Contains(AccessMode(9).String(), "9") {
		t.Fatalf("unknown mode string: %q", AccessMode(9))
	}
	if AccessMode(9).Valid() || AccessMode(0).Valid() {
		t.Fatal("invalid modes reported valid")
	}
	if !Basic.Valid() || !RTSCTS.Valid() {
		t.Fatal("valid modes reported invalid")
	}
}

func TestSlotsCeil(t *testing.T) {
	tm := Default().MustTiming(Basic)
	cases := []struct {
		d    float64
		want int
	}{
		{0, 0},
		{1, 1},
		{50, 1},
		{51, 2},
		{100, 2},
		{8980, 180}, // 8980/50 = 179.6
	}
	for _, tc := range cases {
		if got := tm.SlotsCeil(tc.d); got != tc.want {
			t.Errorf("SlotsCeil(%g) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestMustTimingPanicsOnInvalid(t *testing.T) {
	p := Default()
	p.BitRate = 0
	defer func() {
		if recover() == nil {
			t.Fatal("MustTiming did not panic on invalid params")
		}
	}()
	p.MustTiming(Basic)
}

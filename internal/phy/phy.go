// Package phy captures the IEEE 802.11 physical/MAC-layer parameterisation
// used throughout the paper (its Table I) and derives the channel-hold
// durations Ts (successful transmission) and Tc (collision) for both the
// basic access mechanism and the RTS/CTS handshake.
//
// All durations are expressed in microseconds as float64. The package is
// pure data + arithmetic: no state, no I/O.
package phy

import (
	"errors"
	"fmt"
)

// AccessMode selects the DCF channel-access mechanism.
type AccessMode int

const (
	// Basic is the two-way DATA/ACK exchange.
	Basic AccessMode = iota + 1
	// RTSCTS is the four-way RTS/CTS/DATA/ACK exchange.
	RTSCTS
)

// String implements fmt.Stringer.
func (m AccessMode) String() string {
	switch m {
	case Basic:
		return "basic"
	case RTSCTS:
		return "rts/cts"
	default:
		return fmt.Sprintf("AccessMode(%d)", int(m))
	}
}

// Valid reports whether m is a known access mode.
func (m AccessMode) Valid() bool { return m == Basic || m == RTSCTS }

// Params is the full 802.11 parameter set. Frame sizes are in bits
// (PHY header excluded for ACK/RTS/CTS; it is added by the timing
// methods, matching the paper's "x bits + PHY header" notation),
// the bit rate in bits/second, and times in microseconds.
type Params struct {
	// PayloadBits is the MSDU payload size (the paper's packet size).
	PayloadBits float64
	// MACHeaderBits and PHYHeaderBits together form the per-frame header.
	MACHeaderBits float64
	PHYHeaderBits float64
	// ACKBits, RTSBits and CTSBits are control-frame bodies, each
	// transmitted with an additional PHY header.
	ACKBits float64
	RTSBits float64
	CTSBits float64
	// BitRate is the channel bit rate in bits per second.
	BitRate float64
	// SlotTime is the empty-slot duration sigma in microseconds.
	SlotTime float64
	// SIFS and DIFS are the interframe spaces in microseconds.
	SIFS float64
	DIFS float64
	// MaxBackoffStage is m: the contention window doubles at most m times
	// (CW in stage j is 2^j * W for j <= m). The paper leaves m unstated;
	// 802.11 DSSS uses CWmax/CWmin = 2^5..2^6 and the reproduction
	// defaults to 6, which the experiments show barely affects the NE.
	MaxBackoffStage int
}

// Default returns the paper's Table I parameter set.
func Default() Params {
	return Params{
		PayloadBits:     8184,
		MACHeaderBits:   272,
		PHYHeaderBits:   128,
		ACKBits:         112,
		RTSBits:         160,
		CTSBits:         112,
		BitRate:         1e6, // 1 Mbit/s
		SlotTime:        50,
		SIFS:            28,
		DIFS:            128,
		MaxBackoffStage: 6,
	}
}

// Validate checks the parameter set for physical plausibility.
func (p Params) Validate() error {
	var errs []error
	if p.PayloadBits <= 0 {
		errs = append(errs, fmt.Errorf("payload %g bits must be positive", p.PayloadBits))
	}
	if p.MACHeaderBits < 0 || p.PHYHeaderBits < 0 || p.ACKBits < 0 || p.RTSBits < 0 || p.CTSBits < 0 {
		errs = append(errs, errors.New("frame sizes must be non-negative"))
	}
	if p.BitRate <= 0 {
		errs = append(errs, fmt.Errorf("bit rate %g must be positive", p.BitRate))
	}
	if p.SlotTime <= 0 {
		errs = append(errs, fmt.Errorf("slot time %g must be positive", p.SlotTime))
	}
	if p.SIFS < 0 || p.DIFS < 0 {
		errs = append(errs, errors.New("interframe spaces must be non-negative"))
	}
	if p.DIFS < p.SIFS {
		errs = append(errs, fmt.Errorf("DIFS %g must be >= SIFS %g", p.DIFS, p.SIFS))
	}
	if p.MaxBackoffStage < 0 || p.MaxBackoffStage > 16 {
		errs = append(errs, fmt.Errorf("max backoff stage %d outside [0, 16]", p.MaxBackoffStage))
	}
	return errors.Join(errs...)
}

// TxTime converts a frame size in bits to airtime in microseconds.
func (p Params) TxTime(bits float64) float64 {
	return bits / p.BitRate * 1e6
}

// HeaderTime is H: the time to transmit PHY + MAC headers.
func (p Params) HeaderTime() float64 {
	return p.TxTime(p.PHYHeaderBits + p.MACHeaderBits)
}

// PayloadTime is P: the time to transmit the packet payload. It is also
// E[P] in the throughput formula since all packets share one size.
func (p Params) PayloadTime() float64 { return p.TxTime(p.PayloadBits) }

// ACKTime is the airtime of an ACK frame including its PHY header.
func (p Params) ACKTime() float64 { return p.TxTime(p.ACKBits + p.PHYHeaderBits) }

// RTSTime is the airtime of an RTS frame including its PHY header.
func (p Params) RTSTime() float64 { return p.TxTime(p.RTSBits + p.PHYHeaderBits) }

// CTSTime is the airtime of a CTS frame including its PHY header.
func (p Params) CTSTime() float64 { return p.TxTime(p.CTSBits + p.PHYHeaderBits) }

// Timing bundles the per-mode slot-level durations the Markov-chain model
// and the simulators consume.
type Timing struct {
	Mode AccessMode
	// Ts is the average channel-busy time of a successful transmission.
	Ts float64
	// Tc is the average channel-busy time of a collision.
	Tc float64
	// Slot is the empty slot duration sigma.
	Slot float64
	// Payload is E[P], the payload airtime credited to a success.
	Payload float64
}

// Timing derives the Ts/Tc durations for the given access mode, using the
// paper's Section III (basic) and Section V.F (RTS/CTS) formulas:
//
//	basic:   Ts = H + P + SIFS + ACK + DIFS,  Tc = H + P + SIFS
//	rts/cts: Ts = RTS + SIFS + CTS + H + P + SIFS + ACK + DIFS
//	         Tc = RTS + DIFS
//
// It returns an error for an unknown mode or invalid parameters.
func (p Params) Timing(mode AccessMode) (Timing, error) {
	if err := p.Validate(); err != nil {
		return Timing{}, fmt.Errorf("phy: invalid params: %w", err)
	}
	h, pl := p.HeaderTime(), p.PayloadTime()
	switch mode {
	case Basic:
		return Timing{
			Mode:    mode,
			Ts:      h + pl + p.SIFS + p.ACKTime() + p.DIFS,
			Tc:      h + pl + p.SIFS,
			Slot:    p.SlotTime,
			Payload: pl,
		}, nil
	case RTSCTS:
		return Timing{
			Mode:    mode,
			Ts:      p.RTSTime() + p.SIFS + p.CTSTime() + h + pl + p.SIFS + p.ACKTime() + p.DIFS,
			Tc:      p.RTSTime() + p.DIFS,
			Slot:    p.SlotTime,
			Payload: pl,
		}, nil
	default:
		return Timing{}, fmt.Errorf("phy: unknown access mode %v", mode)
	}
}

// MustTiming is Timing for parameter sets known valid at the call site
// (e.g. Default()); it panics on error.
func (p Params) MustTiming(mode AccessMode) Timing {
	t, err := p.Timing(mode)
	if err != nil {
		panic(err)
	}
	return t
}

// SlotsCeil converts a duration in microseconds to a whole number of
// backoff slots, rounding up. Simulators use it to hold the channel for
// an integral number of slots.
func (t Timing) SlotsCeil(d float64) int {
	n := int(d / t.Slot)
	if float64(n)*t.Slot < d {
		n++
	}
	return n
}

package multihop

import (
	"reflect"
	"testing"

	"selfishmac/internal/core"
	"selfishmac/internal/phy"
	"selfishmac/internal/topology"
)

// hideBound wraps a strategy behind a plain core.Strategy method set, so
// the engine cannot see its BoundedHistory and must fall back to full
// retention — the lever the equivalence test below uses to run the same
// population through both history modes.
type hideBound struct{ s core.Strategy }

func (h hideBound) Name() string { return h.s.Name() }
func (h hideBound) ChooseCW(self int, observed [][]int, utilities []float64) int {
	return h.s.ChooseCW(self, observed, utilities)
}

// TestEngineWindowedHistoryMatchesFull pins the windowed observation
// history against full retention: a mixed TFT/GTFT/Constant population
// must produce an identical trace whether the engine keeps the whole
// history or only the declared window, including under churn (views
// change composition) and with GTFT windows mid-phase at early stages.
func TestEngineWindowedHistoryMatchesFull(t *testing.T) {
	build := func() []core.Strategy {
		s := make([]core.Strategy, 0, 12)
		for i := 0; i < 5; i++ {
			s = append(s, core.TFT{Initial: 64})
		}
		for i := 0; i < 4; i++ {
			s = append(s, core.GTFT{Initial: 64, R0: 3, Beta: 0.9})
		}
		s = append(s, core.Constant{W: 24, Label: "malicious"})
		s = append(s, core.Constant{W: 64})
		s = append(s, core.TFT{Initial: 80})
		return s
	}
	for _, withChurn := range []bool{false, true} {
		name := "static"
		if withChurn {
			name = "churn"
		}
		t.Run(name, func(t *testing.T) {
			run := func(hidden bool) *Trace {
				nw, err := topology.New(topology.Config{
					N: 12, Width: 400, Height: 400, Range: 150, Seed: 31,
				})
				if err != nil {
					t.Fatal(err)
				}
				strategies := build()
				if hidden {
					for i, s := range strategies {
						strategies[i] = hideBound{s}
					}
				}
				cfg := simCfg(phy.RTSCTS, nil, 2e5, 5)
				eng, err := NewEngine(nw, strategies, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if withChurn {
					eng.WithChurn(ChurnConfig{LeaveProb: 0.2, JoinProb: 0.6, Seed: 77})
				}
				tr, err := eng.Run(14)
				if err != nil {
					t.Fatal(err)
				}
				return tr
			}
			windowed, full := run(false), run(true)
			if !reflect.DeepEqual(windowed, full) {
				t.Fatalf("windowed history diverged from full retention:\nwindowed: %+v\nfull:     %+v", windowed, full)
			}
		})
	}
}

// TestObsHistoryModeSelection pins when the engine may window: any
// strategy without a BoundedHistory declaration (GrimTrigger scans the
// whole history, Deviant counts absolute stages) forces full retention.
func TestObsHistoryModeSelection(t *testing.T) {
	bounded := []core.Strategy{core.TFT{Initial: 64}, core.GTFT{Initial: 64, R0: 4, Beta: 0.9}, core.Constant{W: 32}}
	h := newObsHistory(len(bounded), bounded)
	if h.depth != 4 {
		t.Fatalf("bounded population: depth %d, want 4 (deepest declared window)", h.depth)
	}
	mixed := []core.Strategy{core.TFT{Initial: 64}, core.GrimTrigger{Initial: 64, PunishCW: 2}}
	if h := newObsHistory(len(mixed), mixed); h.depth != 0 {
		t.Fatalf("grim-trigger population: depth %d, want 0 (full retention)", h.depth)
	}
	deviant := []core.Strategy{core.Deviant{Deviation: 8, Base: 64, Stages: 3}, core.TFT{Initial: 64}}
	if h := newObsHistory(len(deviant), deviant); h.depth != 0 {
		t.Fatalf("deviant population: depth %d, want 0 (full retention)", h.depth)
	}
}

package multihop

import (
	"math"
	"testing"

	"selfishmac/internal/bianchi"
	"selfishmac/internal/core"
	"selfishmac/internal/macsim"
	"selfishmac/internal/phy"
	"selfishmac/internal/stats"
	"selfishmac/internal/topology"
)

// cliqueNetwork returns a network whose nodes are all mutually in range.
func cliqueNetwork(t testing.TB, n int) *topology.Network {
	t.Helper()
	nw, err := topology.New(topology.Config{
		N: n, Width: 50, Height: 50, Range: 1000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func paperNetwork(t testing.TB, seed uint64) *topology.Network {
	t.Helper()
	nw, err := topology.New(topology.PaperConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func uniformCW(w, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = w
	}
	return out
}

func TestSimulateValidation(t *testing.T) {
	nw := cliqueNetwork(t, 3)
	cfg := DefaultSimConfig(1e6, 1)
	cfg.CW = uniformCW(32, 2) // wrong length
	if _, err := Simulate(nw, cfg); err == nil {
		t.Error("wrong-length profile accepted")
	}
	cfg.CW = uniformCW(0, 3)
	if _, err := Simulate(nw, cfg); err == nil {
		t.Error("CW 0 accepted")
	}
	cfg.CW = uniformCW(32, 3)
	cfg.Duration = 0
	if _, err := Simulate(nw, cfg); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	nw1 := paperNetwork(t, 3)
	nw2 := paperNetwork(t, 3)
	cfg := DefaultSimConfig(2e6, 9)
	cfg.CW = uniformCW(32, nw1.N())
	a, err := Simulate(nw1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(nw2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d stats diverged between identical runs", i)
		}
	}
}

// On a clique (everyone in range) there are no hidden terminals and the
// spatial simulator must agree with the single-hop analytic model.
func TestCliqueMatchesSingleHop(t *testing.T) {
	const n, w = 10, 64
	nw := cliqueNetwork(t, n)
	cfg := DefaultSimConfig(60e6, 11)
	cfg.CW = uniformCW(w, n)
	res, err := Simulate(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HiddenFraction != 0 {
		t.Errorf("clique produced hidden-terminal losses: %g", res.HiddenFraction)
	}
	// Compare per-node success *rate* against the analytic model. The
	// slot-synchronous spatial simulator quantizes Ts/Tc to whole slots,
	// so allow a coarser tolerance than the single-hop event simulator.
	model, err := bianchi.New(cfg.Timing, cfg.MaxStage)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.SolveUniform(w, n)
	if err != nil {
		t.Fatal(err)
	}
	wantSuccessRate := sol.SuccessRate(0) / sol.Tslot // successes per µs
	var gotRate float64
	for _, nd := range res.Nodes {
		gotRate += float64(nd.Successes)
	}
	gotRate /= float64(n) * res.Time
	if rel := stats.RelErr(gotRate, wantSuccessRate); rel > 0.12 {
		t.Errorf("clique success rate %g vs analytic %g (rel %.3f)", gotRate, wantSuccessRate, rel)
	}
}

// The clique spatial simulator must also track the event-driven macsim.
func TestCliqueMatchesMacsim(t *testing.T) {
	const n, w = 8, 48
	nw := cliqueNetwork(t, n)
	cfg := DefaultSimConfig(60e6, 13)
	cfg.CW = uniformCW(w, n)
	spatial, err := Simulate(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := macsim.RunUniform(cfg.Timing, cfg.MaxStage, w, n, cfg.Duration, cfg.Gain, cfg.Cost, 13)
	if err != nil {
		t.Fatal(err)
	}
	var spatialPayoff, evPayoff float64
	for i := 0; i < n; i++ {
		spatialPayoff += spatial.Nodes[i].PayoffRate
		evPayoff += ev.Nodes[i].PayoffRate
	}
	if rel := stats.RelErr(spatialPayoff, evPayoff); rel > 0.15 {
		t.Errorf("spatial clique payoff %g vs macsim %g (rel %.3f)", spatialPayoff, evPayoff, rel)
	}
}

// A hidden-terminal chain must actually produce hidden losses.
func TestHiddenTerminalsDetected(t *testing.T) {
	nw, err := topology.New(topology.Config{N: 3, Width: 500, Height: 10, Range: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Force a line: 0 - 1 - 2 with 0 and 2 mutually hidden. Positions are
	// private; rebuild via a custom config where random placement is
	// replaced by mobility-free snap. Use reflection-free approach: brute
	// force seeds until the desired structure appears would be flaky, so
	// instead construct a 3-node clique-breaker with explicit geometry by
	// searching a few seeds.
	found := false
	for seed := uint64(1); seed < 200 && !found; seed++ {
		cand, err := topology.New(topology.Config{N: 3, Width: 400, Height: 40, Range: 150, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if cand.IsLink(0, 1) && cand.IsLink(1, 2) && !cand.IsLink(0, 2) {
			nw, found = cand, true
		} else if cand.IsLink(0, 2) && cand.IsLink(2, 1) && !cand.IsLink(0, 1) {
			nw, found = cand, true
		} else if cand.IsLink(1, 0) && cand.IsLink(0, 2) && !cand.IsLink(1, 2) {
			nw, found = cand, true
		}
	}
	if !found {
		t.Skip("no line topology found in seed search")
	}
	cfg := DefaultSimConfig(30e6, 2)
	cfg.CW = uniformCW(16, 3)
	res, err := Simulate(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HiddenFraction == 0 {
		t.Error("line topology produced no hidden-terminal losses")
	}
}

func TestIsolatedNodeNeverTransmits(t *testing.T) {
	// Two nodes far out of range: no receivers, no transmissions.
	nw, err := topology.New(topology.Config{N: 2, Width: 10000, Height: 10, Range: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if nw.IsLink(0, 1) {
		t.Skip("random placement made the nodes neighbors")
	}
	cfg := DefaultSimConfig(5e6, 3)
	cfg.CW = uniformCW(16, 2)
	res, err := Simulate(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range res.Nodes {
		if nd.Attempts != 0 {
			t.Errorf("isolated node %d transmitted %d times", i, nd.Attempts)
		}
	}
}

func TestLocalCWSelector(t *testing.T) {
	sel, err := NewLocalCWSelector(core.DefaultConfig(2, phy.RTSCTS))
	if err != nil {
		t.Fatal(err)
	}
	w5, err := sel.CWFor(5)
	if err != nil {
		t.Fatal(err)
	}
	w20, err := sel.CWFor(20)
	if err != nil {
		t.Fatal(err)
	}
	if w5 >= w20 {
		t.Errorf("local CW not increasing in neighborhood size: %d vs %d", w5, w20)
	}
	// Paper Table III anchor: 20-player RTS/CTS local game → ~48.
	if math.Abs(float64(w20-48)) > 4 {
		t.Errorf("CWFor(20) = %d, want ~48", w20)
	}
	// Isolated nodes fall back to the 2-player game.
	w1, err := sel.CWFor(1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := sel.CWFor(2)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Errorf("CWFor(1) = %d != CWFor(2) = %d", w1, w2)
	}
	// Cache must return identical values.
	again, err := sel.CWFor(20)
	if err != nil || again != w20 {
		t.Errorf("cache miss: %d vs %d (%v)", again, w20, err)
	}
}

func TestLocalCWProfileAndConvergedCW(t *testing.T) {
	nw := paperNetwork(t, 8)
	sel, err := NewLocalCWSelector(core.DefaultConfig(2, phy.RTSCTS))
	if err != nil {
		t.Fatal(err)
	}
	profile, err := LocalCWProfile(nw, sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(profile) != nw.N() {
		t.Fatalf("profile length %d != %d", len(profile), nw.N())
	}
	wm := ConvergedCW(profile)
	for i, w := range profile {
		if w < wm {
			t.Fatalf("node %d CW %d below converged min %d", i, w, wm)
		}
	}
	// Wm corresponds to the node with the smallest neighborhood.
	minDeg := nw.Degree(0)
	for i := 1; i < nw.N(); i++ {
		if d := nw.Degree(i); d < minDeg {
			minDeg = d
		}
	}
	wantWm, err := sel.CWFor(minDeg + 1)
	if err != nil {
		t.Fatal(err)
	}
	if wm != wantWm {
		t.Errorf("Wm = %d, want %d (min degree %d)", wm, wantWm, minDeg)
	}
}

func TestConvergedCWPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty profile")
		}
	}()
	ConvergedCW(nil)
}

func TestTFTConvergeOnLine(t *testing.T) {
	// Path graph 0-1-2-3-4, min at the far end: needs diameter stages.
	adj := [][]int{{1}, {0, 2}, {1, 3}, {2, 4}, {3}}
	w0 := []int{100, 90, 80, 70, 10}
	final, stages, converged := TFTConverge(adj, w0, 100)
	if !converged {
		t.Fatal("did not converge")
	}
	for i, w := range final {
		if w != 10 {
			t.Fatalf("node %d final CW %d, want 10", i, w)
		}
	}
	if stages < 4 || stages > 6 {
		t.Errorf("stages = %d, expected about the diameter (4)", stages)
	}
}

func TestTFTConvergeDisconnected(t *testing.T) {
	// Two components converge to their own minima.
	adj := [][]int{{1}, {0}, {3}, {2}}
	w0 := []int{50, 20, 80, 60}
	final, _, converged := TFTConverge(adj, w0, 100)
	if !converged {
		t.Fatal("did not converge")
	}
	want := []int{20, 20, 60, 60}
	for i := range want {
		if final[i] != want[i] {
			t.Fatalf("final = %v, want %v", final, want)
		}
	}
}

func TestTFTConvergeRespectsMaxStages(t *testing.T) {
	adj := [][]int{{1}, {0, 2}, {1, 3}, {2}}
	w0 := []int{40, 30, 20, 10}
	_, stages, converged := TFTConverge(adj, w0, 1)
	if converged || stages != 1 {
		t.Fatalf("converged=%v stages=%d, want false, 1", converged, stages)
	}
}

func TestTFTConvergeOnPaperNetwork(t *testing.T) {
	nw := paperNetwork(t, 10)
	sel, err := NewLocalCWSelector(core.DefaultConfig(2, phy.RTSCTS))
	if err != nil {
		t.Fatal(err)
	}
	w0, err := LocalCWProfile(nw, sel)
	if err != nil {
		t.Fatal(err)
	}
	adj := nw.AdjacencyLists()
	final, _, converged := TFTConverge(adj, w0, 1000)
	if !converged {
		t.Fatal("paper network TFT did not converge")
	}
	if nw.Connected() {
		wm := ConvergedCW(w0)
		for i, w := range final {
			if w != wm {
				t.Fatalf("connected network: node %d at %d, want uniform %d", i, w, wm)
			}
		}
	}
}

func TestLocalUniformUtility(t *testing.T) {
	p := phy.Default()
	model, err := bianchi.New(p.MustTiming(phy.RTSCTS), p.MaxBackoffStage)
	if err != nil {
		t.Fatal(err)
	}
	// phn = 1 must reproduce the single-hop utility.
	u1, err := LocalUniformUtility(model, 10, 48, 1, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.SolveUniform(48, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := sol.Tau[0] * ((1-sol.P[0])*1 - 0.01) / sol.Tslot
	if math.Abs(u1-want) > 1e-18 {
		t.Errorf("phn=1 utility %g != single-hop %g", u1, want)
	}
	// Degradation must reduce utility.
	u08, err := LocalUniformUtility(model, 10, 48, 0.8, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if u08 >= u1 {
		t.Errorf("phn=0.8 utility %g not below phn=1 %g", u08, u1)
	}
	if _, err := LocalUniformUtility(model, 0, 48, 1, 1, 0.01); err == nil {
		t.Error("nPlayers=0 accepted")
	}
}

func TestSweepCWs(t *testing.T) {
	got := sweepCWs(20, []float64{0.5, 1.0, 2.0, 0.01})
	want := []int{1, 10, 20, 40}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
}

// Small-scale end-to-end quasi-optimality: on a modest random network the
// converged NE must deliver a large fraction of both the local and global
// optimum across common-CW operating points (the paper reports >= 96%
// local and >= 97% global on its larger scenario).
func TestQuasiOptimalitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	// Paper-like density: 25 nodes at the Section VII.B node density
	// (1e-4 nodes/m^2), 250 m range.
	nw, err := topology.New(topology.Config{
		N: 25, Width: 500, Height: 500, Range: 250, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewLocalCWSelector(core.DefaultConfig(2, phy.RTSCTS))
	if err != nil {
		t.Fatal(err)
	}
	profile, err := LocalCWProfile(nw, sel)
	if err != nil {
		t.Fatal(err)
	}
	cfg := QuasiOptConfig{
		Sim:              DefaultSimConfig(10e6, 5),
		Wm:               ConvergedCW(profile),
		SweepMultipliers: []float64{0.5, 0.75, 1.5, 2, 3},
		Replicas:         3,
	}
	res, err := MeasureQuasiOptimality(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalRatio < 0.85 {
		t.Errorf("global ratio %.3f too far from optimal", res.GlobalRatio)
	}
	// Spatial unfairness makes per-node curves much noisier than the
	// global one at this small scale; the paper-scale experiment (100
	// nodes, long runs) is exercised by cmd/experiments.
	if res.MeanPerNodeRatio < 0.70 {
		t.Errorf("mean per-node ratio %.3f too far from optimal", res.MeanPerNodeRatio)
	}
	if res.MinPerNodeRatio <= 0 {
		t.Errorf("min per-node ratio %.3f non-positive", res.MinPerNodeRatio)
	}
	for _, r := range res.PerNodeRatio {
		if r > 1+1e-9 {
			t.Errorf("per-node ratio %g above 1", r)
		}
	}
	if len(res.SweptCWs) < 5 {
		t.Errorf("sweep evaluated only %v", res.SweptCWs)
	}
}

func TestPHNSweep(t *testing.T) {
	nw := paperNetwork(t, 12)
	sim := DefaultSimConfig(2e6, 21)
	fracs, err := PHNSweep(nw, sim, []int{16, 32, 64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fracs) != 3 {
		t.Fatalf("got %d fractions", len(fracs))
	}
	for i, f := range fracs {
		if f < 0 || f > 1 {
			t.Errorf("fraction %d = %g outside [0,1]", i, f)
		}
	}
	if _, err := PHNSweep(nw, sim, nil, 0); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := PHNSweep(nw, sim, []int{0}, 0); err == nil {
		t.Error("CW 0 accepted")
	}
}

func TestMobilityDuringSimulation(t *testing.T) {
	nw := paperNetwork(t, 31)
	before := nw.Positions()
	cfg := DefaultSimConfig(3e6, 7)
	cfg.CW = uniformCW(32, nw.N())
	cfg.MobilityEvery = 1e6 // re-snapshot every simulated second
	if _, err := Simulate(nw, cfg); err != nil {
		t.Fatal(err)
	}
	moved := false
	for i, p := range nw.Positions() {
		if p != before[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("mobility enabled but no node moved")
	}
}

func BenchmarkSimulatePaperNetwork(b *testing.B) {
	nw := paperNetwork(b, 3)
	cfg := DefaultSimConfig(1e6, 1)
	cfg.CW = uniformCW(26, nw.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(nw, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

package multihop

import (
	"fmt"
	"sync"

	"selfishmac/internal/rng"
	"selfishmac/internal/topology"
)

// fastsim.go is the event-skipping engine behind Simulate. The reference
// loop steps every slot and touches every node per slot even when all of
// them are mid-backoff; this engine tracks, per node, the absolute slot
// at which it will next reach counter zero and act (its fire slot), and
// jumps the clock directly to the minimum fire slot — the next event
// horizon over counter expiries, busyUntil/txUntil freezes and pending
// mobility steps. Idle slots are never visited. The minimum is found
// through the fire-slot calendar (firering.go): a bucket ring over the
// bounded fire-slot horizon for every realistic configuration, the
// lazy-shift min-heap (fireheap.go) beyond it. Either way freeze shifts
// update fire[] only, stale calendar entries are repaired when visited,
// and expired sets come back in ascending node order — so event
// selection costs O(1) amortized per calendar touch instead of the
// former O(n) scan (and the heap's O(log n) sifts), which dominated the
// per-op profile at n >= 1000.
//
// Freeze/resume accounting is carried in the fire slots themselves. With
// "blocked" meaning max(busyUntil, txUntil) > t:
//
//   - A node counting at slot t (not blocked) that a new transmission
//     covers until slot `until` freezes for slots t+1 .. until-1; having
//     already decremented at t, its fire slot shifts by until-t-1.
//   - A node already blocked until bOld that the new transmission extends
//     to until > bOld freezes for until-bOld more slots; its fire slot
//     shifts by until-bOld. (No shift when until <= bOld.)
//   - A transmitter redraws counter c at slot t and resumes counting at
//     b = max(txUntil, busyUntil) as known at the end of the slot — its
//     co-transmitters' carrier updates included — so it fires at b + c.
//   - An isolated node (empty adjacency) redraws c at its fire slot t and
//     resumes at t+1, so it fires at t+1+c; carrier freezes from later
//     transmitters in the same slot then shift it like any counting node.
//
// Those rules bound every fire slot by t + maxDur + maxCW - 1, which is
// what lets the ring calendar cover the horizon with a fixed number of
// buckets (see firering.go).
//
// Mobility steps are applied in catch-up fashion before processing any
// event at or past their due slot, preserving both the step count and
// their order relative to MAC events — the network's own PRNG trajectory
// and final state are identical to the reference. Grid-backed networks
// (*topology.Network) advance through an incremental adjacency view:
// the step patches only the neighbor rows incident to nodes that moved,
// and a static network (MaxSpeed 0) skips adjacency work entirely after
// the initial snapshot. Other topologies — churn-masked views, test
// fakes — re-snapshot as before.
//
// Determinism contract: PRNG draws happen in exactly the reference order
// — per event slot, expired nodes act in ascending node order (isolated
// redraw or receiver pick), then transmitters redraw in ascending order —
// so Simulate and SimulateReference produce byte-identical SimResults.
//
// The state lives in simState so the engine is reusable: init sizes
// every buffer (reusing capacity from a previous binding, so pooled
// states re-init without allocating), reset restores the initial
// trajectory state for a new seed, and run executes one simulation into
// the state-owned result. Simulate draws states from a package pool —
// steady-state one-shot calls reuse buffers and adjacency views from
// earlier calls; the exported Simulator (simulator.go) exposes the
// explicit lifecycle for replication loops.
type simState struct {
	nw     Topology
	mobile MobileTopology
	cfg    SimConfig
	n      int

	// adj is the active adjacency: the view's patched rows when the
	// topology is a grid-backed *topology.Network, the state-owned
	// snapshot buffers (adjOwn) otherwise. The rows are never written by
	// the engine.
	adj    [][]int
	view   *topology.Adjacency
	adjOwn [][]int

	src          rng.Source
	nodes        []spatialNode
	fire         []int64      // absolute slot at which the node next acts
	cal          fireCalendar // fire-slot calendar; entries may lag fire[]
	expired      []int        // scratch: this event's expired nodes, ascending
	transmitters []int
	receivers    []int
	inTx         []bool
	drawn        []int // transmitter's fresh counter, for fire recompute
	res          SimResult

	tsSlots, tcSlots   int64
	totalSlots         int64
	mobilityEverySlots int64
	nextMobility       int64
}

// init binds the state to a network and config, (re)sizes every buffer,
// and resets for cfg.Seed. cfg must already be validated; cfg.CW is
// retained, so callers that reuse the state must pass an owned slice.
// Capacity from a previous binding is reused, so re-initialising a
// pooled state at the same population allocates nothing.
func (st *simState) init(nw Topology, mobile MobileTopology, cfg SimConfig) {
	n := nw.N()
	st.nw, st.mobile, st.cfg, st.n = nw, mobile, cfg, n
	st.nodes = growSlice(st.nodes, n)
	st.fire = growSlice(st.fire, n)
	st.expired = growSlice(st.expired, n)[:0]
	st.transmitters = growSlice(st.transmitters, n)[:0]
	st.receivers = growSlice(st.receivers, n)
	st.inTx = growSlice(st.inTx, n)
	st.drawn = growSlice(st.drawn, n)
	st.res.Nodes = growSlice(st.res.Nodes, n)

	if tn, ok := nw.(*topology.Network); ok {
		// Incremental path: bind (or re-bind) the adjacency view. A pooled
		// state meeting the same network again keeps the synchronised view
		// and pays nothing here; a static network shared across many runs
		// is snapshotted exactly once.
		if st.view == nil {
			st.view = tn.AdjacencyView()
		} else {
			st.view.Rebind(tn)
		}
		st.adj = st.view.Rows()
	} else {
		st.view = nil
		st.snapshotAdj(nw)
	}

	st.tsSlots = int64(cfg.Timing.SlotsCeil(cfg.Timing.Ts))
	st.tcSlots = int64(cfg.Timing.SlotsCeil(cfg.Timing.Tc))
	st.totalSlots = int64(cfg.Duration / cfg.Timing.Slot)
	if st.totalSlots < 1 {
		st.totalSlots = 1
	}
	st.mobilityEverySlots = 0
	if cfg.MobilityEvery > 0 {
		st.mobilityEverySlots = int64(cfg.MobilityEvery / cfg.Timing.Slot)
		if st.mobilityEverySlots < 1 {
			st.mobilityEverySlots = 1
		}
	}
	st.reset(cfg.Seed)
}

// growSlice returns s resized to n elements, reusing its capacity when
// possible. Contents are unspecified; callers overwrite.
func growSlice[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// snapshotAdj refreshes the state-owned adjacency buffers from a
// non-view topology. Topologies implementing AdjacencyReuser (the churn
// mask does not, but custom ones may) refill the buffers in place;
// others fall back to a fresh AdjacencyLists.
func (st *simState) snapshotAdj(nw Topology) {
	if r, ok := nw.(AdjacencyReuser); ok {
		st.adjOwn = r.AdjacencyInto(st.adjOwn)
		st.adj = st.adjOwn
		return
	}
	st.adj = nw.AdjacencyLists()
}

// calSpan returns the fire-slot horizon for the current config: no fire
// slot is ever filed more than maxDur + maxCW - 1 slots past the current
// event slot (see the freeze/resume rules above).
func (st *simState) calSpan() int64 {
	maxCW := 0
	for _, w := range st.cfg.CW {
		if w > maxCW {
			maxCW = w
		}
	}
	span := int64(maxCW) << uint(st.cfg.MaxStage)
	if st.tsSlots > st.tcSlots {
		span += st.tsSlots
	} else {
		span += st.tcSlots
	}
	return span
}

// reset restores the initial trajectory state for the given seed: PRNG
// re-seeded, backoff states redrawn in node order (exactly like the
// reference loop's setup), result cleared. It allocates nothing in
// steady state.
func (st *simState) reset(seed uint64) {
	st.cfg.Seed = seed
	st.src.Reseed(seed)
	for i := range st.nodes {
		st.nodes[i] = spatialNode{cw: st.cfg.CW[i]}
		st.nodes[i].draw(&st.src, st.cfg.MaxStage)
		st.fire[i] = int64(st.nodes[i].counter)
		st.inTx[i] = false
	}
	st.cal.configure(st.n, st.calSpan())
	st.cal.rebuild(st.fire)
	for i := range st.res.Nodes {
		st.res.Nodes[i] = NodeStats{}
	}
	st.res.Time, st.res.Slots, st.res.HiddenFraction = 0, 0, 0
	st.nextMobility = -1
	if st.mobilityEverySlots > 0 {
		st.nextMobility = st.mobilityEverySlots
	}
}

// stepMobility advances the mobility model by one MobilityEvery interval
// and refreshes the active adjacency: an incremental patch through the
// view when bound, a re-snapshot otherwise.
func (st *simState) stepMobility() error {
	dt := st.cfg.MobilityEvery / 1e6
	if st.view != nil {
		if _, err := st.view.StepDelta(dt); err != nil {
			return err
		}
		st.adj = st.view.Rows()
		return nil
	}
	if err := st.mobile.Step(dt); err != nil {
		return err
	}
	st.snapshotAdj(st.mobile)
	return nil
}

// run executes the simulation to completion and finalises the state-owned
// result. On a static topology it performs no allocations.
func (st *simState) run() (*SimResult, error) {
	nw, cfg := st.nw, &st.cfg
	nodes, fire := st.nodes, st.fire
	receivers, inTx, drawn := st.receivers, st.inTx, st.drawn
	adj := st.adj
	res := &st.res
	totalSlots := st.totalSlots
	nextMobility := st.nextMobility
	var totalAttempts, totalHidden int64

	for {
		// Jump to the next event horizon: the calendar advances to the
		// first slot holding a node whose true fire slot expires there,
		// repairing freeze-shifted (stale) entries along the way, and
		// hands back the expired set in ascending node order — the order
		// the reference loop acts them in.
		var t int64
		expired := st.expired[:0]
		t, expired = st.cal.nextEvent(fire, totalSlots, expired)
		if t >= totalSlots {
			// No further MAC event inside the run; apply the mobility
			// steps the reference loop would still have performed.
			for nextMobility > 0 && nextMobility < totalSlots {
				if err := st.stepMobility(); err != nil {
					return nil, fmt.Errorf("multihop: mobility step: %w", err)
				}
				adj = st.adj
				nextMobility += st.mobilityEverySlots
			}
			break
		}
		// Mobility catch-up: one step per due point, all before phase 1
		// of this slot — exactly when the reference would have stepped.
		for nextMobility > 0 && t >= nextMobility {
			if err := st.stepMobility(); err != nil {
				return nil, fmt.Errorf("multihop: mobility step: %w", err)
			}
			adj = st.adj
			nextMobility += st.mobilityEverySlots
		}

		// Phase 1: expired nodes act in ascending node order.
		transmitters := st.transmitters[:0]
		for _, i := range expired {
			if len(adj[i]) == 0 {
				// Isolated node: redraw and stay in backoff. It resumes
				// counting at t+1 (it cannot be blocked here, or it
				// would not have fired).
				nodes[i].draw(&st.src, cfg.MaxStage)
				fire[i] = t + 1 + int64(nodes[i].counter)
				st.cal.push(fire[i], i)
				continue
			}
			transmitters = append(transmitters, i)
			receivers[i] = adj[i][st.src.Intn(len(adj[i]))]
		}
		if len(transmitters) == 0 {
			continue
		}
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(t, transmitters)
		}

		for _, i := range transmitters {
			inTx[i] = true
		}

		// Phase 2: resolve outcomes at the receivers (identical to the
		// reference), threading freeze shifts into neighbors' fire slots.
		for _, i := range transmitters {
			r := receivers[i]
			stn := &res.Nodes[i]
			stn.Attempts++
			totalAttempts++

			ok := true
			hidden := false
			if inTx[r] || nodes[r].busyUntil > t || nodes[r].txUntil > t {
				// Receiver deaf: transmitting itself or in a busy locale.
				ok = false
			}
			if ok {
				for _, j := range adj[r] {
					if j == i || !inTx[j] {
						continue
					}
					ok = false
					if !nw.IsLink(i, j) {
						hidden = true // the interferer was invisible to i
					}
				}
			}
			dur := st.tcSlots
			if ok {
				stn.Successes++
				nodes[i].stage = 0
				dur = st.tsSlots
			} else {
				stn.Collisions++
				if hidden {
					stn.HiddenCollisions++
					totalHidden++
				}
				if nodes[i].stage < cfg.MaxStage {
					nodes[i].stage++
				}
			}
			nodes[i].txUntil = t + dur
			nodes[i].draw(&st.src, cfg.MaxStage)
			drawn[i] = nodes[i].counter
			// Carrier sensing: everyone in range of the transmitter
			// holds; shift non-transmitters' fire slots by the slots the
			// new hold freezes on top of what already blocked them.
			until := t + dur
			for _, k := range adj[i] {
				nd := &nodes[k]
				if !inTx[k] {
					bOld := nd.busyUntil
					if nd.txUntil > bOld {
						bOld = nd.txUntil
					}
					if bOld <= t {
						fire[k] += until - t - 1
					} else if until > bOld {
						fire[k] += until - bOld
					}
				}
				if nd.busyUntil < until {
					nd.busyUntil = until
				}
			}
		}
		// Transmitters resume counting once their own transmission and
		// every carrier hold known by the end of the slot are over.
		for _, i := range transmitters {
			b := nodes[i].busyUntil
			if nodes[i].txUntil > b {
				b = nodes[i].txUntil
			}
			fire[i] = b + int64(drawn[i])
			st.cal.push(fire[i], i)
			inTx[i] = false
		}
	}
	st.adj = adj
	st.nextMobility = nextMobility

	res.Slots = totalSlots
	res.Time = float64(totalSlots) * cfg.Timing.Slot
	for i := range res.Nodes {
		stn := &res.Nodes[i]
		stn.PayoffRate = (float64(stn.Successes)*cfg.Gain - float64(stn.Attempts)*cfg.Cost) / res.Time
	}
	if totalAttempts > 0 {
		res.HiddenFraction = float64(totalHidden) / float64(totalAttempts)
	}
	return res, nil
}

// statePool recycles simStates across one-shot Simulate calls. Pooled
// states keep their buffers and their adjacency view: repeated runs at
// the same population re-init without allocating, and repeated runs over
// the *same* static network skip the adjacency snapshot entirely. A
// state's references (topology, CW, observer) are dropped before
// pooling except the view's network binding, which is exactly the cache
// the amortisation relies on; sync.Pool releases idle states under GC
// pressure, so the binding never outlives memory demand.
var statePool = sync.Pool{New: func() any { return &simState{} }}

// release clears the state's borrowed references and returns it to the
// pool.
func (st *simState) release() {
	st.nw, st.mobile, st.adj = nil, nil, nil
	st.cfg.CW, st.cfg.Observer = nil, nil
	statePool.Put(st)
}

// simulateFast is the one-shot entry behind Simulate: a pooled state per
// call, supporting mobility. The result is copied out of the state so
// the caller owns it outright.
func simulateFast(nw Topology, mobile MobileTopology, cfg SimConfig) (*SimResult, error) {
	st := statePool.Get().(*simState)
	st.init(nw, mobile, cfg)
	res, err := st.run()
	if err != nil {
		st.release()
		return nil, err
	}
	out := &SimResult{
		Nodes:          append([]NodeStats(nil), res.Nodes...),
		Time:           res.Time,
		Slots:          res.Slots,
		HiddenFraction: res.HiddenFraction,
	}
	st.release()
	return out, nil
}

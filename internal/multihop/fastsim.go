package multihop

import (
	"fmt"

	"selfishmac/internal/rng"
)

// fastsim.go is the event-skipping engine behind Simulate. The reference
// loop steps every slot and touches every node per slot even when all of
// them are mid-backoff; this engine tracks, per node, the absolute slot
// at which it will next reach counter zero and act (its fire slot), and
// jumps the clock directly to the minimum fire slot — the next event
// horizon over counter expiries, busyUntil/txUntil freezes and pending
// mobility steps. Idle slots are never visited.
//
// Freeze/resume accounting is carried in the fire slots themselves. With
// "blocked" meaning max(busyUntil, txUntil) > t:
//
//   - A node counting at slot t (not blocked) that a new transmission
//     covers until slot `until` freezes for slots t+1 .. until-1; having
//     already decremented at t, its fire slot shifts by until-t-1.
//   - A node already blocked until bOld that the new transmission extends
//     to until > bOld freezes for until-bOld more slots; its fire slot
//     shifts by until-bOld. (No shift when until <= bOld.)
//   - A transmitter redraws counter c at slot t and resumes counting at
//     b = max(txUntil, busyUntil) as known at the end of the slot — its
//     co-transmitters' carrier updates included — so it fires at b + c.
//   - An isolated node (empty adjacency) redraws c at its fire slot t and
//     resumes at t+1, so it fires at t+1+c; carrier freezes from later
//     transmitters in the same slot then shift it like any counting node.
//
// Mobility steps are applied in catch-up fashion before processing any
// event at or past their due slot, preserving both the step count and
// their order relative to MAC events — the network's own PRNG trajectory
// and final state are identical to the reference.
//
// Determinism contract: PRNG draws happen in exactly the reference order
// — per event slot, expired nodes act in ascending node order (isolated
// redraw or receiver pick), then transmitters redraw in ascending order —
// so Simulate and SimulateReference produce byte-identical SimResults.
func simulateFast(nw Topology, mobile MobileTopology, cfg SimConfig) (*SimResult, error) {
	n := nw.N()
	src := rng.New(cfg.Seed)
	nodes := make([]spatialNode, n)
	fire := make([]int64, n) // absolute slot at which the node next acts
	for i := range nodes {
		nodes[i] = spatialNode{cw: cfg.CW[i]}
		nodes[i].draw(src, cfg.MaxStage)
		fire[i] = int64(nodes[i].counter)
	}
	adj := nw.AdjacencyLists()

	res := &SimResult{Nodes: make([]NodeStats, n)}
	tsSlots := int64(cfg.Timing.SlotsCeil(cfg.Timing.Ts))
	tcSlots := int64(cfg.Timing.SlotsCeil(cfg.Timing.Tc))
	totalSlots := int64(cfg.Duration / cfg.Timing.Slot)
	if totalSlots < 1 {
		totalSlots = 1
	}
	var nextMobility int64 = -1
	var mobilityEverySlots int64
	if cfg.MobilityEvery > 0 {
		mobilityEverySlots = int64(cfg.MobilityEvery / cfg.Timing.Slot)
		if mobilityEverySlots < 1 {
			mobilityEverySlots = 1
		}
		nextMobility = mobilityEverySlots
	}

	transmitters := make([]int, 0, n)
	receivers := make([]int, n)
	inTx := make([]bool, n)
	drawn := make([]int, n) // transmitter's fresh counter, for fire recompute
	var totalAttempts, totalHidden int64

	for {
		// Jump to the next event horizon: the minimum fire slot.
		t := fire[0]
		for i := 1; i < n; i++ {
			if fire[i] < t {
				t = fire[i]
			}
		}
		if t >= totalSlots {
			// No further MAC event inside the run; apply the mobility
			// steps the reference loop would still have performed.
			for nextMobility > 0 && nextMobility < totalSlots {
				if err := mobile.Step(cfg.MobilityEvery / 1e6); err != nil {
					return nil, fmt.Errorf("multihop: mobility step: %w", err)
				}
				adj = mobile.AdjacencyLists()
				nextMobility += mobilityEverySlots
			}
			break
		}
		// Mobility catch-up: one step per due point, all before phase 1
		// of this slot — exactly when the reference would have stepped.
		for nextMobility > 0 && t >= nextMobility {
			if err := mobile.Step(cfg.MobilityEvery / 1e6); err != nil {
				return nil, fmt.Errorf("multihop: mobility step: %w", err)
			}
			adj = mobile.AdjacencyLists()
			nextMobility += mobilityEverySlots
		}

		// Phase 1: expired nodes act in ascending node order.
		transmitters = transmitters[:0]
		for i := 0; i < n; i++ {
			if fire[i] != t {
				continue
			}
			if len(adj[i]) == 0 {
				// Isolated node: redraw and stay in backoff. It resumes
				// counting at t+1 (it cannot be blocked here, or it
				// would not have fired).
				nodes[i].draw(src, cfg.MaxStage)
				fire[i] = t + 1 + int64(nodes[i].counter)
				continue
			}
			transmitters = append(transmitters, i)
			receivers[i] = adj[i][src.Intn(len(adj[i]))]
		}
		if len(transmitters) == 0 {
			continue
		}

		for _, i := range transmitters {
			inTx[i] = true
		}

		// Phase 2: resolve outcomes at the receivers (identical to the
		// reference), threading freeze shifts into neighbors' fire slots.
		for _, i := range transmitters {
			r := receivers[i]
			st := &res.Nodes[i]
			st.Attempts++
			totalAttempts++

			ok := true
			hidden := false
			if inTx[r] || nodes[r].busyUntil > t || nodes[r].txUntil > t {
				// Receiver deaf: transmitting itself or in a busy locale.
				ok = false
			}
			if ok {
				for _, j := range adj[r] {
					if j == i || !inTx[j] {
						continue
					}
					ok = false
					if !nw.IsLink(i, j) {
						hidden = true // the interferer was invisible to i
					}
				}
			}
			dur := tcSlots
			if ok {
				st.Successes++
				nodes[i].stage = 0
				dur = tsSlots
			} else {
				st.Collisions++
				if hidden {
					st.HiddenCollisions++
					totalHidden++
				}
				if nodes[i].stage < cfg.MaxStage {
					nodes[i].stage++
				}
			}
			nodes[i].txUntil = t + dur
			nodes[i].draw(src, cfg.MaxStage)
			drawn[i] = nodes[i].counter
			// Carrier sensing: everyone in range of the transmitter
			// holds; shift non-transmitters' fire slots by the slots the
			// new hold freezes on top of what already blocked them.
			until := t + dur
			for _, k := range adj[i] {
				nd := &nodes[k]
				if !inTx[k] {
					bOld := nd.busyUntil
					if nd.txUntil > bOld {
						bOld = nd.txUntil
					}
					if bOld <= t {
						fire[k] += until - t - 1
					} else if until > bOld {
						fire[k] += until - bOld
					}
				}
				if nd.busyUntil < until {
					nd.busyUntil = until
				}
			}
		}
		// Transmitters resume counting once their own transmission and
		// every carrier hold known by the end of the slot are over.
		for _, i := range transmitters {
			b := nodes[i].busyUntil
			if nodes[i].txUntil > b {
				b = nodes[i].txUntil
			}
			fire[i] = b + int64(drawn[i])
			inTx[i] = false
		}
	}

	res.Slots = totalSlots
	res.Time = float64(totalSlots) * cfg.Timing.Slot
	for i := range res.Nodes {
		st := &res.Nodes[i]
		st.PayoffRate = (float64(st.Successes)*cfg.Gain - float64(st.Attempts)*cfg.Cost) / res.Time
	}
	if totalAttempts > 0 {
		res.HiddenFraction = float64(totalHidden) / float64(totalAttempts)
	}
	return res, nil
}

package multihop

import (
	"fmt"

	"selfishmac/internal/rng"
)

// fastsim.go is the event-skipping engine behind Simulate. The reference
// loop steps every slot and touches every node per slot even when all of
// them are mid-backoff; this engine tracks, per node, the absolute slot
// at which it will next reach counter zero and act (its fire slot), and
// jumps the clock directly to the minimum fire slot — the next event
// horizon over counter expiries, busyUntil/txUntil freezes and pending
// mobility steps. Idle slots are never visited. The minimum is found
// through the fire-slot calendar (fireheap.go), a lazy-shift min-heap
// over (fire slot, node) keys: freeze shifts update fire[] only, stale
// heap entries are repaired on pop, and valid same-slot entries surface
// in ascending node order — so event selection is O(log n) instead of
// the former O(n) scan, which dominated at n >= 1000.
//
// Freeze/resume accounting is carried in the fire slots themselves. With
// "blocked" meaning max(busyUntil, txUntil) > t:
//
//   - A node counting at slot t (not blocked) that a new transmission
//     covers until slot `until` freezes for slots t+1 .. until-1; having
//     already decremented at t, its fire slot shifts by until-t-1.
//   - A node already blocked until bOld that the new transmission extends
//     to until > bOld freezes for until-bOld more slots; its fire slot
//     shifts by until-bOld. (No shift when until <= bOld.)
//   - A transmitter redraws counter c at slot t and resumes counting at
//     b = max(txUntil, busyUntil) as known at the end of the slot — its
//     co-transmitters' carrier updates included — so it fires at b + c.
//   - An isolated node (empty adjacency) redraws c at its fire slot t and
//     resumes at t+1, so it fires at t+1+c; carrier freezes from later
//     transmitters in the same slot then shift it like any counting node.
//
// Mobility steps are applied in catch-up fashion before processing any
// event at or past their due slot, preserving both the step count and
// their order relative to MAC events — the network's own PRNG trajectory
// and final state are identical to the reference.
//
// Determinism contract: PRNG draws happen in exactly the reference order
// — per event slot, expired nodes act in ascending node order (isolated
// redraw or receiver pick), then transmitters redraw in ascending order —
// so Simulate and SimulateReference produce byte-identical SimResults.
//
// The state lives in simState so the engine is reusable: init allocates
// every buffer once, reset restores the initial trajectory state for a
// new seed without allocating, and run executes one simulation into the
// state-owned result. Simulate wraps one-shot usage; the exported
// Simulator (simulator.go) exposes the reusable lifecycle for replication
// loops.
type simState struct {
	nw     Topology
	mobile MobileTopology
	cfg    SimConfig
	n      int

	adj          [][]int
	src          rng.Source
	nodes        []spatialNode
	fire         []int64  // absolute slot at which the node next acts
	heap         fireHeap // fire-slot calendar; entries may lag fire[]
	expired      []int    // scratch: this event's expired nodes, ascending
	transmitters []int
	receivers    []int
	inTx         []bool
	drawn        []int // transmitter's fresh counter, for fire recompute
	res          SimResult

	tsSlots, tcSlots   int64
	totalSlots         int64
	mobilityEverySlots int64
	nextMobility       int64
}

// init binds the state to a network and config, allocates every buffer,
// and resets for cfg.Seed. cfg must already be validated; cfg.CW is
// retained, so callers that reuse the state must pass an owned slice.
func (st *simState) init(nw Topology, mobile MobileTopology, cfg SimConfig) {
	n := nw.N()
	st.nw, st.mobile, st.cfg, st.n = nw, mobile, cfg, n
	st.nodes = make([]spatialNode, n)
	st.fire = make([]int64, n)
	st.heap.init(n)
	st.expired = make([]int, 0, n)
	st.transmitters = make([]int, 0, n)
	st.receivers = make([]int, n)
	st.inTx = make([]bool, n)
	st.drawn = make([]int, n)
	st.res.Nodes = make([]NodeStats, n)
	st.adj = nil
	st.snapshotAdj(nw)

	st.tsSlots = int64(cfg.Timing.SlotsCeil(cfg.Timing.Ts))
	st.tcSlots = int64(cfg.Timing.SlotsCeil(cfg.Timing.Tc))
	st.totalSlots = int64(cfg.Duration / cfg.Timing.Slot)
	if st.totalSlots < 1 {
		st.totalSlots = 1
	}
	st.mobilityEverySlots = 0
	if cfg.MobilityEvery > 0 {
		st.mobilityEverySlots = int64(cfg.MobilityEvery / cfg.Timing.Slot)
		if st.mobilityEverySlots < 1 {
			st.mobilityEverySlots = 1
		}
	}
	st.reset(cfg.Seed)
}

// snapshotAdj refreshes st.adj from the topology. Grid-backed networks
// (AdjacencyReuser) refill the state-owned buffers in place, so each
// mobility re-snapshot costs O(n·deg) with no per-node allocations;
// other topologies fall back to a fresh AdjacencyLists.
func (st *simState) snapshotAdj(nw Topology) {
	if r, ok := nw.(AdjacencyReuser); ok {
		st.adj = r.AdjacencyInto(st.adj)
		return
	}
	st.adj = nw.AdjacencyLists()
}

// reset restores the initial trajectory state for the given seed: PRNG
// re-seeded, backoff states redrawn in node order (exactly like the
// reference loop's setup), result cleared. It allocates nothing.
func (st *simState) reset(seed uint64) {
	st.cfg.Seed = seed
	st.src.Reseed(seed)
	for i := range st.nodes {
		st.nodes[i] = spatialNode{cw: st.cfg.CW[i]}
		st.nodes[i].draw(&st.src, st.cfg.MaxStage)
		st.fire[i] = int64(st.nodes[i].counter)
	}
	st.heap.rebuild(st.fire)
	for i := range st.res.Nodes {
		st.res.Nodes[i] = NodeStats{}
	}
	st.res.Time, st.res.Slots, st.res.HiddenFraction = 0, 0, 0
	st.nextMobility = -1
	if st.mobilityEverySlots > 0 {
		st.nextMobility = st.mobilityEverySlots
	}
}

// run executes the simulation to completion and finalises the state-owned
// result. On a static topology it performs no allocations.
func (st *simState) run() (*SimResult, error) {
	nw, cfg := st.nw, &st.cfg
	nodes, fire := st.nodes, st.fire
	receivers, inTx, drawn := st.receivers, st.inTx, st.drawn
	adj := st.adj
	res := &st.res
	totalSlots := st.totalSlots
	nextMobility := st.nextMobility
	var totalAttempts, totalHidden int64

	for {
		// Jump to the next event horizon: pop the calendar until a
		// current entry surfaces. Entries whose node was freeze-shifted
		// since filing carry a stale (smaller) slot; repair them by
		// re-filing at the node's true fire slot. Because shifts only
		// move fire slots forward, the heap minimum is always a lower
		// bound on the true minimum, so the first current entry popped
		// is exactly the minimum fire slot.
		var t int64
		expired := st.expired[:0]
		for {
			s, i := st.heap.pop()
			if s != fire[i] {
				st.heap.push(fire[i], i)
				continue
			}
			t = s
			expired = append(expired, i)
			break
		}
		// Collect the rest of this slot's expiries. Keys tie-break on
		// node id, so current entries pop in ascending node order — the
		// order the reference loop acts them in.
		for st.heap.len() > 0 && st.heap.minSlot() == t {
			_, i := st.heap.pop()
			if fire[i] != t {
				st.heap.push(fire[i], i)
				continue
			}
			expired = append(expired, i)
		}
		if t >= totalSlots {
			// No further MAC event inside the run; apply the mobility
			// steps the reference loop would still have performed.
			for nextMobility > 0 && nextMobility < totalSlots {
				if err := st.mobile.Step(cfg.MobilityEvery / 1e6); err != nil {
					return nil, fmt.Errorf("multihop: mobility step: %w", err)
				}
				st.snapshotAdj(st.mobile)
				adj = st.adj
				nextMobility += st.mobilityEverySlots
			}
			break
		}
		// Mobility catch-up: one step per due point, all before phase 1
		// of this slot — exactly when the reference would have stepped.
		for nextMobility > 0 && t >= nextMobility {
			if err := st.mobile.Step(cfg.MobilityEvery / 1e6); err != nil {
				return nil, fmt.Errorf("multihop: mobility step: %w", err)
			}
			st.snapshotAdj(st.mobile)
			adj = st.adj
			nextMobility += st.mobilityEverySlots
		}

		// Phase 1: expired nodes act in ascending node order.
		transmitters := st.transmitters[:0]
		for _, i := range expired {
			if len(adj[i]) == 0 {
				// Isolated node: redraw and stay in backoff. It resumes
				// counting at t+1 (it cannot be blocked here, or it
				// would not have fired).
				nodes[i].draw(&st.src, cfg.MaxStage)
				fire[i] = t + 1 + int64(nodes[i].counter)
				st.heap.push(fire[i], i)
				continue
			}
			transmitters = append(transmitters, i)
			receivers[i] = adj[i][st.src.Intn(len(adj[i]))]
		}
		if len(transmitters) == 0 {
			continue
		}
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(t, transmitters)
		}

		for _, i := range transmitters {
			inTx[i] = true
		}

		// Phase 2: resolve outcomes at the receivers (identical to the
		// reference), threading freeze shifts into neighbors' fire slots.
		for _, i := range transmitters {
			r := receivers[i]
			stn := &res.Nodes[i]
			stn.Attempts++
			totalAttempts++

			ok := true
			hidden := false
			if inTx[r] || nodes[r].busyUntil > t || nodes[r].txUntil > t {
				// Receiver deaf: transmitting itself or in a busy locale.
				ok = false
			}
			if ok {
				for _, j := range adj[r] {
					if j == i || !inTx[j] {
						continue
					}
					ok = false
					if !nw.IsLink(i, j) {
						hidden = true // the interferer was invisible to i
					}
				}
			}
			dur := st.tcSlots
			if ok {
				stn.Successes++
				nodes[i].stage = 0
				dur = st.tsSlots
			} else {
				stn.Collisions++
				if hidden {
					stn.HiddenCollisions++
					totalHidden++
				}
				if nodes[i].stage < cfg.MaxStage {
					nodes[i].stage++
				}
			}
			nodes[i].txUntil = t + dur
			nodes[i].draw(&st.src, cfg.MaxStage)
			drawn[i] = nodes[i].counter
			// Carrier sensing: everyone in range of the transmitter
			// holds; shift non-transmitters' fire slots by the slots the
			// new hold freezes on top of what already blocked them.
			until := t + dur
			for _, k := range adj[i] {
				nd := &nodes[k]
				if !inTx[k] {
					bOld := nd.busyUntil
					if nd.txUntil > bOld {
						bOld = nd.txUntil
					}
					if bOld <= t {
						fire[k] += until - t - 1
					} else if until > bOld {
						fire[k] += until - bOld
					}
				}
				if nd.busyUntil < until {
					nd.busyUntil = until
				}
			}
		}
		// Transmitters resume counting once their own transmission and
		// every carrier hold known by the end of the slot are over.
		for _, i := range transmitters {
			b := nodes[i].busyUntil
			if nodes[i].txUntil > b {
				b = nodes[i].txUntil
			}
			fire[i] = b + int64(drawn[i])
			st.heap.push(fire[i], i)
			inTx[i] = false
		}
	}
	st.adj = adj
	st.nextMobility = nextMobility

	res.Slots = totalSlots
	res.Time = float64(totalSlots) * cfg.Timing.Slot
	for i := range res.Nodes {
		stn := &res.Nodes[i]
		stn.PayoffRate = (float64(stn.Successes)*cfg.Gain - float64(stn.Attempts)*cfg.Cost) / res.Time
	}
	if totalAttempts > 0 {
		res.HiddenFraction = float64(totalHidden) / float64(totalAttempts)
	}
	return res, nil
}

// simulateFast is the one-shot entry behind Simulate: fresh state per
// call, supporting mobility.
func simulateFast(nw Topology, mobile MobileTopology, cfg SimConfig) (*SimResult, error) {
	st := &simState{}
	st.init(nw, mobile, cfg)
	return st.run()
}

package multihop

import "math/bits"

// firering.go is the bucket-ring implementation of the fire-slot
// calendar, plus the fireCalendar front that picks between it and the
// binary-heap fallback (fireheap.go).
//
// The engine's fire slots live inside a bounded horizon: a node's next
// fire slot never lies more than maxDur + maxCW - 1 slots past the
// current event slot, where maxDur = max(Ts, Tc) in slots and maxCW is
// the largest post-doubling window any node can draw (cw << MaxStage).
// That bound makes a calendar-queue ring exact: a ring of W >= maxDur +
// maxCW power-of-two buckets, bucket b holding the nodes filed for slots
// ≡ b (mod W) as an intrusive singly-linked list (head per bucket, one
// next pointer per node — every node has exactly one live entry, so no
// allocation ever). Filing is O(1); advancing the clock scans buckets
// forward from the current slot, and because every filed slot is less
// than W ahead, the first visit to a bucket happens exactly at the
// entry's filed slot — never early.
//
// The lazy freeze-shift algebra carries over from the heap unchanged:
// carrier holds move fire[] forward without touching the calendar, and a
// visited entry whose filed slot no longer equals fire[node] is re-filed
// at the node's true slot — an O(1) list prepend here, against the
// heap's O(log n) pop+push. Stale repairs dominate calendar traffic at
// large n (every transmission shifts every neighbor), which is why the
// ring wins: per-op cost at n=10000 is bounded by total slots plus
// repairs, each a pointer hop, instead of ~2 sift passes per repair.
//
// Determinism: a bucket's list order is filing order, not node order, so
// the collected expired set is insertion-sorted ascending before it is
// returned — the same (slot, node) lexicographic order the packed heap
// keys produced, which the reference loop's ascending node scan requires.
type fireRing struct {
	head []int32 // bucket -> first node filed there, -1 when empty
	next []int32 // node -> next node in its bucket, -1 at list end
	mask int64
	cur  int64 // next slot to scan; all live entries are at slots >= cur
}

// maxRingSpan caps the ring's bucket count (1<<17 buckets = 512 KiB of
// heads). Configurations whose fire-slot horizon exceeds it — extreme
// CW << MaxStage products — fall back to the heap, which has no horizon
// bound.
const maxRingSpan = 1 << 17

func nextPow2(v int64) int64 {
	if v < 1 {
		v = 1
	}
	return int64(1) << bits.Len64(uint64(v-1))
}

// init sizes the ring for n nodes and a fire-slot horizon of span slots,
// reusing the backing arrays when they are already large enough.
func (r *fireRing) init(n int, span int64) {
	w := nextPow2(span)
	if int64(cap(r.head)) >= w {
		r.head = r.head[:w]
	} else {
		r.head = make([]int32, w)
	}
	if cap(r.next) >= n {
		r.next = r.next[:n]
	} else {
		r.next = make([]int32, n)
	}
	r.mask = w - 1
}

// rebuild resets the clock to slot 0 and files one entry per node at
// fire[i], dropping any previous contents. It allocates nothing.
func (r *fireRing) rebuild(fire []int64) {
	for i := range r.head {
		r.head[i] = -1
	}
	r.cur = 0
	for i, f := range fire {
		r.file(f, int32(i))
	}
}

// file prepends node i to the bucket for slot. The slot must be less
// than one full ring ahead of the current scan position — the engine's
// horizon bound guarantees it.
func (r *fireRing) file(slot int64, i int32) {
	b := slot & r.mask
	r.next[i] = r.head[b]
	r.head[b] = i
}

// nextEvent advances the clock to the next slot (before limit) at which
// at least one node's true fire slot expires, appends those nodes to
// expired in ascending node order, and returns the slot and the extended
// slice. Entries visited with a stale filed slot are re-filed at their
// true fire slot. When no event lies before limit it returns (limit,
// expired) unchanged; entries at or past limit stay filed.
func (r *fireRing) nextEvent(fire []int64, limit int64, expired []int) (int64, []int) {
	head, next, mask := r.head, r.next, r.mask
	t := r.cur
	for t < limit {
		b := t & mask
		if j := head[b]; j >= 0 {
			head[b] = -1
			n0 := len(expired)
			for j >= 0 {
				nj := next[j]
				if fire[j] == t {
					expired = append(expired, int(j))
				} else {
					// Stale: the node was freeze-shifted after filing.
					// Shifts only move fire slots forward, so the true
					// slot is still ahead; re-file there.
					fb := fire[j] & mask
					next[j] = head[fb]
					head[fb] = j
				}
				j = nj
			}
			if len(expired) > n0 {
				sortExpired(expired[n0:])
				r.cur = t
				return t, expired
			}
		}
		t++
	}
	r.cur = t
	return t, expired
}

// sortExpired insertion-sorts a freshly collected expired run ascending.
// Expired sets are a handful of nodes; filing order is close to reversed
// arrival, so the runs are tiny and nearly sorted.
func sortExpired(b []int) {
	for i := 1; i < len(b); i++ {
		v := b[i]
		j := i - 1
		for j >= 0 && b[j] > v {
			b[j+1] = b[j]
			j--
		}
		b[j+1] = v
	}
}

// fireCalendar is the engine-facing calendar: a bucket ring when the
// configuration's fire-slot horizon fits maxRingSpan (every realistic
// config), the lazy-shift binary heap otherwise. Both are exact; the
// differential matrix pins the engine bit-identical to the reference
// loop whichever is selected.
type fireCalendar struct {
	useRing bool
	ring    fireRing
	heap    fireHeap
}

// configure sizes the calendar for n nodes whose fire slots stay within
// span slots of the current event slot.
func (c *fireCalendar) configure(n int, span int64) {
	c.useRing = span > 0 && span <= maxRingSpan
	if c.useRing {
		c.ring.init(n, span)
	} else {
		c.heap.init(n)
	}
}

// rebuild refills the calendar with one entry per node at fire[i].
func (c *fireCalendar) rebuild(fire []int64) {
	if c.useRing {
		c.ring.rebuild(fire)
	} else {
		c.heap.rebuild(fire)
	}
}

// push files node i at slot.
func (c *fireCalendar) push(slot int64, i int) {
	if c.useRing {
		c.ring.file(slot, int32(i))
	} else {
		c.heap.push(slot, i)
	}
}

// nextEvent finds the next slot with a true expiry, collecting the
// expired nodes ascending (see fireRing.nextEvent for the contract). The
// heap path repairs stale entries pop-by-pop exactly as the engine's old
// inline loop did.
func (c *fireCalendar) nextEvent(fire []int64, limit int64, expired []int) (int64, []int) {
	if c.useRing {
		return c.ring.nextEvent(fire, limit, expired)
	}
	var t int64
	for {
		s, i := c.heap.pop()
		if s != fire[i] {
			c.heap.push(fire[i], i)
			continue
		}
		t = s
		expired = append(expired, i)
		break
	}
	if t >= limit {
		return t, expired
	}
	for c.heap.len() > 0 && c.heap.minSlot() == t {
		_, i := c.heap.pop()
		if fire[i] != t {
			c.heap.push(fire[i], i)
			continue
		}
		expired = append(expired, i)
	}
	return t, expired
}

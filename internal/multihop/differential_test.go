package multihop

import (
	"reflect"
	"testing"

	"selfishmac/internal/core"
	"selfishmac/internal/phy"
	"selfishmac/internal/rng"
	"selfishmac/internal/topology"
)

// differential_test.go pins the determinism contract of the event-skipping
// spatial engine: Simulate (fastsim.go) must produce byte-identical
// SimResults to SimulateReference (the original slot-by-slot loop) —
// same counters, hidden-collision attribution, payoffs — across static,
// mobile and churn-masked topologies, because both consume the simulator
// PRNG in the same order and step mobility at the same slots.

// diffCase is one (topology factory, sim config) pair. Topologies are
// built fresh per engine run because mobile networks are mutated.
type diffCase struct {
	name string
	topo func(t *testing.T) Topology
	cfg  SimConfig
}

func simCfg(mode phy.AccessMode, cw []int, dur float64, seed uint64) SimConfig {
	return SimConfig{
		Timing:   phy.Default().MustTiming(mode),
		MaxStage: phy.Default().MaxBackoffStage,
		CW:       cw,
		Duration: dur,
		Seed:     seed,
		Gain:     1,
		Cost:     1e-4,
	}
}

func randomNetwork(t *testing.T, n int, rangeM float64, seed uint64) *topology.Network {
	return randomNetworkSized(t, n, 1000, 1000, rangeM, seed)
}

func randomNetworkSized(t *testing.T, n int, w, h, rangeM float64, seed uint64) *topology.Network {
	t.Helper()
	nw, err := topology.New(topology.Config{
		N: n, Width: w, Height: h, Range: rangeM,
		MinSpeed: 0, MaxSpeed: 5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func diffCases(t *testing.T) []diffCase {
	t.Helper()
	line := func(*testing.T) Topology {
		return &fixedGraph{adj: [][]int{{1}, {0, 2}, {1, 3}, {2, 4}, {3}}}
	}
	star := func(*testing.T) Topology {
		return &fixedGraph{adj: [][]int{{1, 2, 3, 4, 5}, {0}, {0}, {0}, {0}, {0}}}
	}
	pairPlusIsolated := func(*testing.T) Topology {
		// Node 2 is isolated: it exercises the redraw-without-transmit
		// path on every one of its fire slots.
		return &fixedGraph{adj: [][]int{{1}, {0}, nil}}
	}
	hiddenTriple := func(*testing.T) Topology {
		// Classic hidden-terminal line: 0 and 2 cannot hear each other
		// but both reach 1.
		return &fixedGraph{adj: [][]int{{1}, {0, 2}, {1}}}
	}
	sparse50 := func(t *testing.T) Topology { return randomNetwork(t, 50, 180, 11) }
	dense20 := func(t *testing.T) Topology { return randomNetwork(t, 20, 400, 12) }
	mobile50 := func(t *testing.T) Topology { return randomNetwork(t, 50, 250, 13) }
	mobile100 := func(t *testing.T) Topology { return randomNetwork(t, 100, 250, 14) }
	churnMasked := func(active []bool, seed uint64) func(*testing.T) Topology {
		return func(t *testing.T) Topology {
			return &maskedTopology{base: randomNetwork(t, len(active), 300, seed), active: active}
		}
	}
	mask20 := make([]bool, 20)
	for i := range mask20 {
		mask20[i] = i%3 != 0 // a third of the nodes departed
	}
	mask8 := []bool{true, false, true, true, false, false, true, true}

	// Large-n factories keep the paper's density (100 nodes / 1000m²
	// at Range 250) by growing the area with sqrt(n/100), so the grid
	// has many cells and real pruning work to do.
	sparse500 := func(t *testing.T) Topology { return randomNetworkSized(t, 500, 2236, 2236, 250, 24) }
	mobile500 := func(t *testing.T) Topology { return randomNetworkSized(t, 500, 2236, 2236, 250, 25) }
	mobile1000 := func(t *testing.T) Topology { return randomNetworkSized(t, 1000, 3162, 3162, 250, 26) }
	// Range wider than either dimension collapses the grid to one cell;
	// the merge path must still match the linear scan exactly.
	bigRange := func(t *testing.T) Topology { return randomNetworkSized(t, 12, 1000, 600, 1500, 27) }
	mask300 := make([]bool, 300)
	for i := range mask300 {
		mask300[i] = i%4 != 1 // a quarter departed
	}
	churnMasked300 := func(t *testing.T) Topology {
		return &maskedTopology{base: randomNetworkSized(t, 300, 1732, 1732, 250, 28), active: mask300}
	}
	// Population scale, same density: the fire-slot calendar's target
	// regime. Sampled durations keep the reference loop (O(n) per slot)
	// to a couple of seconds per case.
	sparse5000 := func(t *testing.T) Topology { return randomNetworkSized(t, 5000, 7071, 7071, 250, 33) }
	mobile5000 := func(t *testing.T) Topology { return randomNetworkSized(t, 5000, 7071, 7071, 250, 34) }
	grid10000 := func(t *testing.T) Topology { return randomNetworkSized(t, 10000, 10000, 10000, 250, 35) }

	mob := func(cfg SimConfig, every float64) SimConfig {
		cfg.MobilityEvery = every
		return cfg
	}
	het := simCfg(phy.RTSCTS, []int{16, 200, 48, 48, 999}, 4e6, 7)

	return []diffCase{
		{"line5-uniform", line, simCfg(phy.RTSCTS, uniformCW(32, 5), 4e6, 1)},
		{"line5-heterogeneous", line, simCfg(phy.RTSCTS, []int{8, 64, 16, 128, 32}, 4e6, 2)},
		{"star6-basic", star, simCfg(phy.Basic, uniformCW(64, 6), 4e6, 3)},
		{"pair-plus-isolated", pairPlusIsolated, simCfg(phy.RTSCTS, uniformCW(16, 3), 2e6, 4)},
		{"hidden-triple", hiddenTriple, simCfg(phy.RTSCTS, uniformCW(32, 3), 4e6, 5)},
		{"hidden-triple-aggressive", hiddenTriple, simCfg(phy.RTSCTS, []int{2, 8, 2}, 2e6, 6)},
		{"heterogeneous-cw", line, het},
		{"sparse50-static", sparse50, simCfg(phy.RTSCTS, uniformCW(116, 50), 2e6, 8)},
		{"dense20-static", dense20, simCfg(phy.RTSCTS, uniformCW(48, 20), 2e6, 9)},
		{"mobile50", mobile50, mob(simCfg(phy.RTSCTS, uniformCW(64, 50), 2e6, 10), 1e5)},
		{"mobile100-paper", mobile100, mob(simCfg(phy.RTSCTS, uniformCW(26, 100), 1e6, 11), 5e4)},
		{"mobile50-fast-mobility", mobile50, mob(simCfg(phy.RTSCTS, uniformCW(32, 50), 5e5, 12), 1e3)},
		{"churn-masked-20", churnMasked(mask20, 15), simCfg(phy.RTSCTS, uniformCW(40, 20), 2e6, 13)},
		{"churn-masked-8", churnMasked(mask8, 16), simCfg(phy.Basic, []int{16, 32, 8, 64, 16, 128, 24, 48}, 2e6, 14)},
		{"degenerate-w1", hiddenTriple, simCfg(phy.RTSCTS, uniformCW(1, 3), 1e6, 17)},
		{"short-run", line, simCfg(phy.RTSCTS, uniformCW(64, 5), 200, 18)},
		// Grid-index paths at scale: large-n networks route every
		// adjacency snapshot (static, mobile re-snapshots, churn filters)
		// through the cell grid; the reference loop pins the trajectory.
		{"sparse500-static", sparse500, simCfg(phy.RTSCTS, uniformCW(64, 500), 5e5, 24)},
		{"mobile500", mobile500, mob(simCfg(phy.RTSCTS, uniformCW(32, 500), 2e5, 25), 5e4)},
		{"mobile1000-grid", mobile1000, mob(simCfg(phy.RTSCTS, uniformCW(26, 1000), 1e5, 26), 2e4)},
		{"range-exceeds-area", bigRange, simCfg(phy.RTSCTS, uniformCW(48, 12), 1e6, 27)},
		{"churn-masked-300", churnMasked300, simCfg(phy.RTSCTS, uniformCW(64, 300), 2e5, 28)},
		// The calendar at scale: thousands of concurrent heap entries,
		// constant lazy-shift repair under carrier-sense churn, mobility
		// re-snapshots at n=5000, and the n=10000 static grid path.
		{"sparse5000-static", sparse5000, simCfg(phy.RTSCTS, uniformCW(26, 5000), 1e5, 33)},
		{"mobile5000", mobile5000, mob(simCfg(phy.RTSCTS, uniformCW(26, 5000), 5e4, 34), 2e4)},
		{"grid10000-static", grid10000, simCfg(phy.RTSCTS, uniformCW(26, 10000), 5e4, 35)},
		// CW << MaxStage past maxRingSpan: the calendar falls back to the
		// lazy-shift heap; the reference pins that path stays exact too.
		{"huge-cw-heap-fallback", line, simCfg(phy.RTSCTS, uniformCW(3000, 5), 4e6, 36)},
	}
}

// rebuildOnly hides the concrete *topology.Network type behind an
// anonymous embedding, so the engine's `nw.(*topology.Network)` probe
// misses and it takes the re-snapshot path (AdjacencyInto per mobility
// step) instead of binding the incremental adjacency view. Method
// promotion keeps every fast-path interface — MobileTopology,
// NeighborAppender, AdjacencyReuser — satisfied.
type rebuildOnly struct{ *topology.Network }

// TestDifferentialDeltaVsRebuildPath pins the tentpole claim at scale:
// the incremental delta path must be bit-identical to the rebuild path —
// same results, same post-run network state — on mobile networks at
// n=1000 and n=5000. Both sides run the fast engine, so the populations
// can be larger and the mobility much churnier than the
// reference-pinned cases afford.
func TestDifferentialDeltaVsRebuildPath(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		dim   float64
		seed  uint64
		cfg   SimConfig
		every float64
	}{
		{"mobile1000-delta", 1000, 3162, 41, simCfg(phy.RTSCTS, uniformCW(26, 1000), 5e5, 41), 2e4},
		{"mobile1000-fast-mobility", 1000, 3162, 42, simCfg(phy.RTSCTS, uniformCW(64, 1000), 2e5, 42), 2e3},
		{"mobile5000-delta", 5000, 7071, 43, simCfg(phy.RTSCTS, uniformCW(26, 5000), 2e5, 43), 2e4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.MobilityEvery = tc.every
			deltaNet := randomNetworkSized(t, tc.n, tc.dim, tc.dim, 250, tc.seed)
			rebuildNet := randomNetworkSized(t, tc.n, tc.dim, tc.dim, 250, tc.seed)
			want, err := Simulate(rebuildOnly{rebuildNet}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Simulate(deltaNet, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("delta path diverged from rebuild path")
			}
			if !reflect.DeepEqual(deltaNet.AdjacencyLists(), rebuildNet.AdjacencyLists()) {
				t.Fatal("post-run networks diverged: delta path stepped mobility differently")
			}
		})
	}
}

func TestDifferentialSimulateMatchesReference(t *testing.T) {
	for _, tc := range diffCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			// Fresh topologies per engine: mobile networks are mutated.
			want, err := SimulateReference(tc.topo(t), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Simulate(tc.topo(t), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("fast engine diverged from reference:\nfast: %+v\nref:  %+v", got, want)
			}
		})
	}
}

// A mobile run must leave the *network itself* in an identical state under
// both engines (same number of mobility steps, same waypoint stream), or
// downstream stages of a repeated game would diverge.
func TestDifferentialMobilityNetworkState(t *testing.T) {
	cfg := simCfg(phy.RTSCTS, uniformCW(48, 30), 2e6, 19)
	cfg.MobilityEvery = 7e4
	ref := randomNetwork(t, 30, 250, 20)
	if _, err := SimulateReference(ref, cfg); err != nil {
		t.Fatal(err)
	}
	fast := randomNetwork(t, 30, 250, 20)
	if _, err := Simulate(fast, cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast.AdjacencyLists(), ref.AdjacencyLists()) {
		t.Fatal("post-run adjacency diverged: mobility stepping differs between engines")
	}
}

// Seed sweep over the hidden-terminal fixture: freeze/resume bookkeeping
// bugs need particular overlap patterns to surface.
func TestDifferentialSimulateSeedSweep(t *testing.T) {
	grid := &fixedGraph{adj: [][]int{
		{1, 3}, {0, 2, 4}, {1, 5},
		{0, 4}, {1, 3, 5}, {2, 4},
	}}
	for seed := uint64(0); seed < 20; seed++ {
		cfg := simCfg(phy.RTSCTS, []int{16, 32, 16, 64, 8, 32}, 1e6, seed)
		want, err := SimulateReference(grid, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Simulate(grid, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: fast engine diverged from reference", seed)
		}
	}
}

// The engine stage loop (repeated game) must be unaffected: run a short
// churn-enabled engine trace against one driven by the reference
// simulator stage-for-stage. (The engine always calls Simulate; here we
// re-derive each stage's result with SimulateReference and compare the
// recorded rates.)
func TestDifferentialEngineStagesWithChurn(t *testing.T) {
	nw := randomNetwork(t, 12, 350, 21)
	sim := simCfg(phy.RTSCTS, nil, 5e5, 22)
	strat := make([]int, 12)
	for i := range strat {
		strat[i] = 16 + 8*i
	}
	strategies := make([]core.Strategy, len(strat))
	for i, w := range strat {
		strategies[i] = core.Constant{W: w}
	}
	eng, err := NewEngine(nw, strategies, sim)
	if err != nil {
		t.Fatal(err)
	}
	eng.WithChurn(ChurnConfig{Seed: 23, LeaveProb: 0.25, JoinProb: 0.5, MinActive: 3})
	trace, err := eng.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	churn := newChurnState(ChurnConfig{Seed: 23, LeaveProb: 0.25, JoinProb: 0.5, MinActive: 3}, 12)
	for k, stage := range trace.Stages {
		churn.step()
		if !reflect.DeepEqual(stage.Active, churn.active) {
			t.Fatalf("stage %d: churn mask diverged", k)
		}
		scfg := sim
		scfg.CW = stage.Profile
		scfg.Seed = rng.DeriveSeed(sim.Seed, "multihop.engine.stage", k)
		res, err := SimulateReference(&maskedTopology{base: nw, active: stage.Active}, scfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range stage.PayoffRates {
			if stage.PayoffRates[i] != res.Nodes[i].PayoffRate {
				t.Fatalf("stage %d node %d: engine rate %g != reference %g",
					k, i, stage.PayoffRates[i], res.Nodes[i].PayoffRate)
			}
		}
	}
}

func TestDifferentialCaseCount(t *testing.T) {
	// The acceptance criterion asks for a matrix of >= 20 configs across
	// the two simulators; keep the combined count honest.
	const macsimConfigs = 21 // see internal/macsim/differential_test.go
	if got := len(diffCases(t)) + macsimConfigs; got < 20 {
		t.Fatalf("differential matrix shrank to %d configs, need >= 20", got)
	}
}

package multihop

import (
	"reflect"
	"testing"

	"selfishmac/internal/core"
	"selfishmac/internal/phy"
)

// observer_test.go pins the spatial observation-stream contract: both
// engines emit the identical (slot, transmitters) sequence, attaching an
// observer never perturbs the SimResult, and Engine.Run advances
// SlotAdvancer observers past each stage's slot count.

type recordedEvent struct {
	Slot int64
	Tx   []int
}

type recordingObserver struct {
	events []recordedEvent
	base   int64 // advanced by Engine.Run between stages
}

func (r *recordingObserver) OnEvent(slot int64, transmitters []int) {
	r.events = append(r.events, recordedEvent{Slot: r.base + slot, Tx: append([]int(nil), transmitters...)})
}

func (r *recordingObserver) Advance(slots int64) { r.base += slots }

func TestDifferentialObserverStreamFastMatchesReference(t *testing.T) {
	for _, tc := range diffCases(t) {
		if len(tc.cfg.CW) > 300 {
			continue // the stream contract is size-independent; skip the slow reference runs
		}
		t.Run(tc.name, func(t *testing.T) {
			refObs, fastObs := &recordingObserver{}, &recordingObserver{}

			rcfg := tc.cfg
			rcfg.Observer = refObs
			rres, err := SimulateReference(tc.topo(t), rcfg)
			if err != nil {
				t.Fatal(err)
			}

			fcfg := tc.cfg
			fcfg.Observer = fastObs
			fres, err := Simulate(tc.topo(t), fcfg)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(fastObs.events, refObs.events) {
				t.Fatalf("event streams diverge: fast %d events, reference %d events", len(fastObs.events), len(refObs.events))
			}
			if !reflect.DeepEqual(fres, rres) {
				t.Fatal("results diverge with observers attached")
			}

			// Stream/result consistency: per-node attempt counts fold out
			// of the stream, and slots never decrease.
			attempts := make([]int64, len(tc.cfg.CW))
			last := int64(-1)
			for _, ev := range fastObs.events {
				if ev.Slot <= last {
					t.Fatalf("event slots not strictly increasing: %d after %d", ev.Slot, last)
				}
				last = ev.Slot
				for _, i := range ev.Tx {
					attempts[i]++
				}
			}
			for i, nd := range fres.Nodes {
				if attempts[i] != nd.Attempts {
					t.Fatalf("node %d: stream counted %d attempts, result says %d", i, attempts[i], nd.Attempts)
				}
			}
		})
	}
}

// Engine.Run must call Advance(stage slots) after every stage so an
// observer's run-wide clock stays monotone across stage boundaries, and
// the observed stream must not change the trace.
func TestEngineRunAdvancesObserver(t *testing.T) {
	cfg := simCfg(phy.RTSCTS, uniformCW(32, 5), 5e5, 91)
	topo := func() Topology {
		return &fixedGraph{adj: [][]int{{1}, {0, 2}, {1, 3}, {2, 4}, {3}}}
	}
	strategies := make([]core.Strategy, 5)
	for i := range strategies {
		strategies[i] = core.TFT{Initial: 32}
	}

	eng, err := NewEngine(topo(), strategies, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eng.Run(4)
	if err != nil {
		t.Fatal(err)
	}

	obs := &recordingObserver{}
	ocfg := cfg
	ocfg.Observer = obs
	oeng, err := NewEngine(topo(), strategies, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := oeng.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, trace) {
		t.Fatal("observer changed the engine trace")
	}
	if len(obs.events) == 0 {
		t.Fatal("engine emitted no events")
	}
	// With the Advance offsets applied, slots are strictly increasing
	// across the whole multi-stage run, and the final base equals the sum
	// of stage slot counts (> any single stage's).
	last := int64(-1)
	for _, ev := range obs.events {
		if ev.Slot <= last {
			t.Fatalf("cross-stage slots not strictly increasing: %d after %d", ev.Slot, last)
		}
		last = ev.Slot
	}
	if obs.base <= 0 || last >= obs.base {
		t.Fatalf("Advance base %d inconsistent with last event slot %d", obs.base, last)
	}
}

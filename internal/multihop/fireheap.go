package multihop

import "math/bits"

// fireheap.go is the fire-slot calendar behind the event-skipping spatial
// engine: a binary min-heap of packed (slot, node) keys that replaces the
// per-event O(n) scan over fire[] with O(log n) pops — the scan was the
// dominant cost at n >= 1000, where events are frequent but each touches
// only a small neighborhood.
//
// The heap tolerates the freeze/resume slot-shift algebra by *lazy
// shifting*: carrier-sense freezes move a neighbor's fire[k] forward
// without touching the heap, so a node's heap entry may carry a stale
// (smaller) slot. Staleness is detected on pop — the entry's slot no
// longer equals fire[node] — and repaired by re-filing the entry at the
// current fire slot. This is exact, not approximate, because shifts only
// ever move fire slots *forward*: a stale entry sits below its node's true
// slot, so it surfaces no later than it should, is re-filed, and the heap
// minimum remains a lower bound on the true minimum fire slot at all
// times. Every node has exactly one live entry (each pop is followed by
// exactly one push: the stale re-file, the isolated redraw, or the
// transmitter re-key), so the heap size is pinned at n and a full
// stale-repair round costs O(n log n) worst case against the old scan's
// guaranteed O(n) per event — amortized it is far cheaper, because a
// frozen node is repaired once per freeze, not once per event.
//
// Keys pack (slot << nodeBits) | node into one int64, so heap ordering is
// (slot, node) lexicographic and same-slot entries pop in ascending node
// order — exactly the order the reference loop acts expired nodes in,
// which the determinism contract requires. nodeBits is sized to the
// population; slots fit comfortably in the remaining bits (a run of 2^40
// slots at 50 µs/slot is ~1.7 years of simulated time).
type fireHeap struct {
	a        []int64
	nodeBits uint
	nodeMask int64
}

// init sizes the key packing for n nodes and preallocates the backing
// array. The heap starts empty; fill it with push or rebuild.
func (h *fireHeap) init(n int) {
	b := uint(bits.Len(uint(n)))
	if b == 0 {
		b = 1
	}
	h.nodeBits = b
	h.nodeMask = int64(1)<<b - 1
	if cap(h.a) < n {
		h.a = make([]int64, 0, n)
	}
	h.a = h.a[:0]
}

// rebuild refills the heap with one entry per node at fire[i], replacing
// any previous contents. It heapifies in O(n) and allocates nothing.
func (h *fireHeap) rebuild(fire []int64) {
	h.a = h.a[:len(fire)]
	for i, f := range fire {
		h.a[i] = f<<h.nodeBits | int64(i)
	}
	for i := len(h.a)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *fireHeap) len() int { return len(h.a) }

// minSlot returns the slot of the minimum entry (stale or not). The heap
// must be non-empty.
func (h *fireHeap) minSlot() int64 { return h.a[0] >> h.nodeBits }

// push files node i at the given slot.
func (h *fireHeap) push(slot int64, i int) {
	h.a = append(h.a, slot<<h.nodeBits|int64(i))
	j := len(h.a) - 1
	for j > 0 {
		p := (j - 1) / 2
		if h.a[p] <= h.a[j] {
			break
		}
		h.a[p], h.a[j] = h.a[j], h.a[p]
		j = p
	}
}

// pop removes and returns the minimum entry. The heap must be non-empty.
func (h *fireHeap) pop() (slot int64, node int) {
	k := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return k >> h.nodeBits, int(k & h.nodeMask)
}

func (h *fireHeap) siftDown(j int) {
	a := h.a
	n := len(a)
	k := a[j]
	for {
		c := 2*j + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && a[r] < a[c] {
			c = r
		}
		if k <= a[c] {
			break
		}
		a[j] = a[c]
		j = c
	}
	a[j] = k
}

package multihop

import (
	"fmt"
	"math"

	"selfishmac/internal/rng"
)

// ChurnConfig models node churn — stations leaving and rejoining the
// network — during a multi-hop repeated-game run. A departed node is cut
// out of the topology (no links, no transmissions, no observations by or
// of it); on rejoin it resumes with its strategy state intact, exactly
// like a station coming back into radio range.
type ChurnConfig struct {
	// Seed drives the churn stream (derived via rng.DeriveSeed, so churn
	// draws never perturb the simulator's stream).
	Seed uint64
	// LeaveProb is the per-active-node, per-stage probability of leaving.
	LeaveProb float64
	// JoinProb is the per-departed-node, per-stage probability of
	// rejoining.
	JoinProb float64
	// MinActive is the floor on simultaneously active nodes; departures
	// that would go below it are suppressed. Zero defaults to 2.
	MinActive int
}

// Validate rejects unusable churn configurations.
func (c ChurnConfig) Validate() error {
	if c.LeaveProb < 0 || c.LeaveProb >= 1 || math.IsNaN(c.LeaveProb) {
		return fmt.Errorf("multihop: LeaveProb %g outside [0, 1)", c.LeaveProb)
	}
	if c.JoinProb < 0 || c.JoinProb > 1 || math.IsNaN(c.JoinProb) {
		return fmt.Errorf("multihop: JoinProb %g outside [0, 1]", c.JoinProb)
	}
	if c.MinActive < 0 {
		return fmt.Errorf("multihop: negative MinActive %d", c.MinActive)
	}
	return nil
}

// churnState tracks which nodes are present and evolves them stage by
// stage from a dedicated deterministic stream.
type churnState struct {
	cfg    ChurnConfig
	src    *rng.Source
	active []bool
	nUp    int
}

func newChurnState(cfg ChurnConfig, n int) *churnState {
	if cfg.MinActive == 0 {
		cfg.MinActive = 2
	}
	if cfg.MinActive > n {
		cfg.MinActive = n
	}
	st := &churnState{
		cfg:    cfg,
		src:    rng.New(rng.DeriveSeed(cfg.Seed, "multihop.churn", 0)),
		active: make([]bool, n),
		nUp:    n,
	}
	for i := range st.active {
		st.active[i] = true
	}
	return st
}

// step evolves membership one stage: active nodes leave with LeaveProb
// (never below MinActive), departed nodes rejoin with JoinProb. Draws are
// made in fixed node order so the trajectory is deterministic.
func (st *churnState) step() {
	for i := range st.active {
		if st.active[i] {
			if st.nUp > st.cfg.MinActive && st.src.Float64() < st.cfg.LeaveProb {
				st.active[i] = false
				st.nUp--
			}
		} else if st.src.Float64() < st.cfg.JoinProb {
			st.active[i] = true
			st.nUp++
		}
	}
}

// maskedTopology presents a base topology with departed nodes removed:
// they keep their index (profiles stay length-n) but have no links, so
// the spatial simulator leaves them idle.
//
// AdjacencyLists filters node by node against the base — via the base's
// NeighborAppender fast path when available (the grid-backed network),
// so the full base adjacency is never materialised — into buffers the
// view owns and reuses across calls. One maskedTopology therefore serves
// every churn stage of an engine run with no per-stage adjacency
// allocations in steady state. The returned structure is valid until the
// next AdjacencyLists call; a maskedTopology is not safe for concurrent
// use.
//
// When the base reports position staleness (PositionVersioner, which the
// grid-backed network implements), AdjacencyLists also skips the refill
// outright if neither the activity mask nor the base's positions changed
// since the last call — so an unchanged-membership stage, or the
// engine-then-simulator double consult within one stage, costs O(n) mask
// comparison instead of an O(E) refill.
type maskedTopology struct {
	base   Topology
	active []bool
	adj    [][]int // returned view: nil entries for departed/link-less nodes
	bufs   [][]int // per-node append buffers; capacity persists across refills

	filled   bool   // adj/bufs hold a refill for (lastMask, lastVer)
	lastVer  uint64 // base position version at the last refill
	lastMask []bool // activity mask captured at the last refill
}

func (m *maskedTopology) N() int { return m.base.N() }

func (m *maskedTopology) AdjacencyLists() [][]int {
	n := m.base.N()
	if len(m.adj) != n {
		m.adj = make([][]int, n)
		m.bufs = make([][]int, n)
	}
	ver, hasVer := m.base.(PositionVersioner)
	if m.filled && hasVer && ver.PositionVersion() == m.lastVer && masksEqual(m.lastMask, m.active) {
		return m.adj
	}
	app, canAppend := m.base.(NeighborAppender)
	var full [][]int
	if !canAppend {
		full = m.base.AdjacencyLists()
	}
	for i := 0; i < n; i++ {
		if !m.active[i] {
			m.adj[i] = nil // departed: no links
			continue
		}
		buf := m.bufs[i][:0]
		if canAppend {
			buf = app.AppendNeighbors(i, buf)
			kept := buf[:0]
			for _, j := range buf {
				if m.active[j] {
					kept = append(kept, j)
				}
			}
			buf = kept
		} else {
			for _, j := range full[i] {
				if m.active[j] {
					buf = append(buf, j)
				}
			}
		}
		m.bufs[i] = buf
		if len(buf) == 0 {
			m.adj[i] = nil
		} else {
			m.adj[i] = buf
		}
	}
	if hasVer {
		m.filled = true
		m.lastVer = ver.PositionVersion()
		m.lastMask = append(m.lastMask[:0], m.active...)
	}
	return m.adj
}

func masksEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (m *maskedTopology) IsLink(i, j int) bool {
	return m.active[i] && m.active[j] && m.base.IsLink(i, j)
}

var _ Topology = (*maskedTopology)(nil)

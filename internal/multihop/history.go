package multihop

import "selfishmac/internal/core"

// history.go owns the observation/utility histories Engine.Run feeds the
// strategies. The naive representation — append every stage's per-node
// local views forever — retains O(stages·n·deg) ints for the life of the
// run, which dwarfs the simulator's own footprint on long runs. But every
// paper strategy reads a bounded suffix of the history (TFT the last
// stage, GTFT the last R0), so when all strategies declare a bound via
// core.BoundedHistory the engine keeps only the deepest window: D
// rotating per-stage slabs hold the view data, and per-node header/value
// grids expose each node's window as an ordinary [][]int / []float64 —
// ChooseCW implementations are none the wiser. Memory is then
// O(D·n·deg), constant in the stage count. One unbounded strategy
// (GrimTrigger, Deviant) anywhere in the population falls the whole run
// back to full retention, preserving exact semantics.
type obsHistory struct {
	n     int
	depth int // window depth D; 0 = full retention

	// Full-retention mode.
	fullObs  [][][]int
	fullUtil [][]float64

	// Windowed mode. views/utils are n×D grids: node i's window is
	// views[i*D : i*D+size] in chronological order (shifted left as
	// stages roll off). slabs is the ring of D stage slabs the view
	// headers point into; the slab overwritten at stage k backed the
	// views that roll off at stage k, so no live window ever aliases it.
	size  int // stages currently held, <= depth
	stage int // stages recorded so far
	views [][]int
	utils []float64
	slabs [][]int
}

// newObsHistory picks the retention mode for the population: the deepest
// declared window when every strategy bounds its history, full retention
// otherwise. A zero-depth population (all constant) still keeps one stage
// so "stage 0 vs later" remains observable.
func newObsHistory(n int, strategies []core.Strategy) *obsHistory {
	depth := 1
	for _, s := range strategies {
		b, ok := s.(core.BoundedHistory)
		if !ok {
			return &obsHistory{n: n, fullObs: make([][][]int, n), fullUtil: make([][]float64, n)}
		}
		if d := b.HistoryDepth(); d > depth {
			depth = d
		}
	}
	return &obsHistory{
		n:     n,
		depth: depth,
		views: make([][]int, n*depth),
		utils: make([]float64, n*depth),
		slabs: make([][]int, depth),
	}
}

// observed returns node i's view history window for ChooseCW.
func (h *obsHistory) observed(i int) [][]int {
	if h.depth == 0 {
		return h.fullObs[i]
	}
	return h.views[i*h.depth : i*h.depth+h.size]
}

// utilities returns node i's utility history window for ChooseCW.
func (h *obsHistory) utilities(i int) []float64 {
	if h.depth == 0 {
		return h.fullUtil[i]
	}
	return h.utils[i*h.depth : i*h.depth+h.size]
}

// record appends one stage: node i's local view is [own CW, neighbor
// CWs...] under the stage's adjacency, its utility the realized rate.
// All views are carved from a single stage slab; in windowed mode the
// slab comes from the ring and is reused once its stage rolls off.
func (h *obsHistory) record(adj [][]int, profile []int, rates []float64) {
	need := 0
	for i := range adj {
		need += 1 + len(adj[i])
	}
	var slab []int
	if h.depth == 0 {
		slab = make([]int, 0, need)
	} else if slab = h.slabs[h.stage%h.depth]; cap(slab) < need {
		slab = make([]int, 0, need)
	} else {
		slab = slab[:0]
	}
	shift := h.depth > 0 && h.size == h.depth
	if h.depth > 0 && !shift {
		h.size++
	}
	for i := range adj {
		start := len(slab)
		slab = append(slab, profile[i])
		for _, j := range adj[i] {
			slab = append(slab, profile[j])
		}
		local := slab[start:len(slab):len(slab)]
		if h.depth == 0 {
			h.fullObs[i] = append(h.fullObs[i], local)
			h.fullUtil[i] = append(h.fullUtil[i], rates[i])
			continue
		}
		row := h.views[i*h.depth : i*h.depth+h.depth]
		urow := h.utils[i*h.depth : i*h.depth+h.depth]
		if shift {
			copy(row, row[1:])
			copy(urow, urow[1:])
		}
		row[h.size-1] = local
		urow[h.size-1] = rates[i]
	}
	if h.depth > 0 {
		h.slabs[h.stage%h.depth] = slab
	}
	h.stage++
}

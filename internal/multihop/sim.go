// Package multihop implements the paper's Section VI: the MAC game G' on
// multi-hop wireless mobile ad hoc networks.
//
// It contains two cooperating pieces:
//
//   - A slot-synchronous spatial DCF simulator with carrier sensing and
//     hidden-terminal collisions (this file). Unlike the single-hop
//     simulator, channel state is local: a node freezes its backoff while
//     any neighbor transmits, and a transmission i→r fails if any other
//     node in range of r — including nodes hidden from i — transmits
//     concurrently. The simulator measures the hidden-node degradation
//     factor p_hn that the paper's adapted utility function uses.
//
//   - The game layer (game.go): per-node local efficient-NE CW selection,
//     TFT convergence to Wm = min_i W_i (Theorem 3), and the
//     quasi-optimality measurements of Section VII.B.
package multihop

import (
	"errors"
	"fmt"

	"selfishmac/internal/backoff"
	"selfishmac/internal/phy"
	"selfishmac/internal/rng"
)

// Topology is the read view of a network the spatial simulator needs.
// *topology.Network implements it; tests may substitute fixed graphs.
type Topology interface {
	// N is the node count.
	N() int
	// AdjacencyLists returns every node's neighbor list.
	AdjacencyLists() [][]int
	// IsLink reports whether i and j are within range.
	IsLink(i, j int) bool
}

// MobileTopology additionally supports advancing a mobility model.
type MobileTopology interface {
	Topology
	// Step advances mobility by dt seconds.
	Step(dt float64) error
}

// NeighborAppender is an optional fast path a Topology may implement:
// AppendNeighbors appends node i's neighbors to buf — in the same
// ascending index order AdjacencyLists uses — and returns the extended
// slice. maskedTopology uses it to filter churn views node by node
// without materialising the full base adjacency. *topology.Network
// implements it over its grid index.
type NeighborAppender interface {
	AppendNeighbors(i int, buf []int) []int
}

// AdjacencyReuser is an optional refill fast path: AdjacencyInto fills
// dst with the adjacency structure, reusing dst's per-node slices, and
// returns it. The engines use it so mobility re-snapshots and repeated
// stage snapshots refill one owned buffer instead of allocating O(n)
// slices each time. Contents and ordering must be identical to
// AdjacencyLists; *topology.Network implements it.
type AdjacencyReuser interface {
	AdjacencyInto(dst [][]int) [][]int
}

// PositionVersioner is an optional staleness probe: PositionVersion
// returns a counter that changes whenever node positions change. Views
// layered over a topology (the churn mask, adjacency consumers) use it
// to skip refilling their caches when nothing moved since the last
// consult. *topology.Network implements it.
type PositionVersioner interface {
	PositionVersion() uint64
}

// Observer receives one event per slot in which at least one node starts
// transmitting: the global slot index and the transmitter set in
// ascending node order. The slice is engine-owned scratch, valid only for
// the duration of the call. It is declared structurally identical to
// macsim.Observer so one implementation (e.g. stream.Monitor) satisfies
// both without an import cycle.
//
// The same observation-stream contract applies: Simulate and
// SimulateReference emit identical event sequences for the same config,
// and attaching an observer never changes Results, PRNG consumption, or
// allocation behavior of the hot loops.
type Observer interface {
	OnEvent(slot int64, transmitters []int)
}

// SlotAdvancer is an optional extension an Observer may implement so
// multi-stage drivers (Engine.Run) can keep one monotone slot clock
// across stages: after each stage completes, the engine calls
// Advance(slots) with that stage's total slot count, and the observer
// offsets subsequent per-stage slot indices (which restart at 0) by the
// accumulated base.
type SlotAdvancer interface {
	Advance(slots int64)
}

// SimConfig parameterises one spatial simulation run.
type SimConfig struct {
	// Timing carries sigma, Ts, Tc, E[P]; the paper's multi-hop analysis
	// uses the RTS/CTS mechanism.
	Timing phy.Timing
	// MaxStage is the backoff-doubling cap m.
	MaxStage int
	// CW is the per-node initial contention window.
	CW []int
	// Duration is simulated time in microseconds.
	Duration float64
	// Seed drives the deterministic PRNG.
	Seed uint64
	// Gain and Cost are g and e for the measured payoff.
	Gain float64
	Cost float64
	// MobilityStep, when positive, advances the random-waypoint model by
	// this many seconds of mobility every simulated second of MAC time
	// ... (the paper's scenario is slow — max 5 m/s — so topology changes
	// on a much slower timescale than backoff; the simulator re-snapshots
	// the graph every MobilityEvery microseconds of MAC time).
	MobilityEvery float64
	// Observer, when non-nil, is invoked once per slot in which at least
	// one node starts transmitting, with the slot index and the
	// transmitter set in ascending node order (see the Observer contract).
	// It never alters the simulation.
	Observer Observer
}

// Validate checks the configuration against the network size.
func (c SimConfig) validate(n int) error {
	var errs []error
	if len(c.CW) != n {
		errs = append(errs, fmt.Errorf("CW profile has %d entries for %d nodes", len(c.CW), n))
	}
	for i, w := range c.CW {
		if w < 1 {
			errs = append(errs, fmt.Errorf("node %d CW %d < 1", i, w))
		}
	}
	if c.Duration <= 0 {
		errs = append(errs, fmt.Errorf("duration %g must be positive", c.Duration))
	}
	if c.MaxStage < 0 || c.MaxStage > 16 {
		errs = append(errs, fmt.Errorf("max backoff stage %d outside [0, 16]", c.MaxStage))
	}
	if c.Timing.Slot <= 0 || c.Timing.Ts <= 0 || c.Timing.Tc <= 0 {
		errs = append(errs, fmt.Errorf("non-positive timing %+v", c.Timing))
	}
	if c.Gain < 0 || c.Cost < 0 {
		errs = append(errs, errors.New("gain and cost must be non-negative"))
	}
	if c.MobilityEvery < 0 {
		errs = append(errs, errors.New("MobilityEvery must be non-negative"))
	}
	return errors.Join(errs...)
}

// NodeStats aggregates one node's spatial-simulation outcome.
type NodeStats struct {
	// Attempts, Successes, Collisions count this node's transmissions.
	Attempts   int64
	Successes  int64
	Collisions int64
	// HiddenCollisions counts failures caused *only* by transmitters the
	// sender could not sense (the hidden-terminal component).
	HiddenCollisions int64
	// PayoffRate is (successes·g − attempts·e)/time per microsecond.
	PayoffRate float64
}

// MeasuredPHN returns the per-node hidden-node survival factor: the
// fraction of transmissions *not* lost to hidden terminals, conditioned on
// attempts (1 when the node never transmitted).
func (s NodeStats) MeasuredPHN() float64 {
	if s.Attempts == 0 {
		return 1
	}
	return 1 - float64(s.HiddenCollisions)/float64(s.Attempts)
}

// SimResult is the outcome of a spatial run.
type SimResult struct {
	// Nodes holds per-node statistics.
	Nodes []NodeStats
	// Time is the simulated time in microseconds.
	Time float64
	// Slots is the number of global slots stepped.
	Slots int64
	// HiddenFraction is total hidden-terminal losses over total attempts.
	HiddenFraction float64
}

// GlobalPayoffRate sums the per-node payoff rates.
func (r *SimResult) GlobalPayoffRate() float64 {
	var sum float64
	for _, n := range r.Nodes {
		sum += n.PayoffRate
	}
	return sum
}

// MeanPayoffRate is GlobalPayoffRate / n.
func (r *SimResult) MeanPayoffRate() float64 {
	if len(r.Nodes) == 0 {
		return 0
	}
	return r.GlobalPayoffRate() / float64(len(r.Nodes))
}

type spatialNode struct {
	cw        int
	stage     int
	counter   int
	busyUntil int64 // first slot at which the local channel is idle again
	txUntil   int64 // first slot at which this node's own tx is done
}

// draw sets a fresh uniform backoff counter. The shared helper caps the
// window at cw << maxStage — previously this defensive cap existed only
// in macsim; the stage is capped on advance, so behavior is unchanged,
// but the invariant now holds for any state.
func (n *spatialNode) draw(r *rng.Source, maxStage int) {
	n.counter = backoff.Draw(r, n.cw, n.stage, maxStage)
}

// Simulate runs the spatial DCF over the network's *current* topology
// snapshot (advancing mobility every MobilityEvery microseconds when
// configured; the network is mutated in that case and must implement
// MobileTopology).
//
// It uses the event-skipping engine (fastsim.go), which jumps the slot
// clock directly to the next fire slot instead of stepping idle slots.
// Results, PRNG consumption and mobility stepping are bit-identical to
// SimulateReference; the differential tests pin this.
func Simulate(nw Topology, cfg SimConfig) (*SimResult, error) {
	n := nw.N()
	if err := cfg.validate(n); err != nil {
		return nil, fmt.Errorf("multihop: invalid sim config: %w", err)
	}
	var mobile MobileTopology
	if cfg.MobilityEvery > 0 {
		var ok bool
		if mobile, ok = nw.(MobileTopology); !ok {
			return nil, errors.New("multihop: MobilityEvery set but the topology is immobile")
		}
	}
	return simulateFast(nw, mobile, cfg)
}

// SimulateReference runs the spatial DCF with the original slot-by-slot
// loop, advancing time one slot at a time. It is kept verbatim as the
// pinned semantics of the simulator: the differential tests assert
// Simulate produces byte-identical results, and cmd/bench measures the
// speedup against it.
func SimulateReference(nw Topology, cfg SimConfig) (*SimResult, error) {
	n := nw.N()
	if err := cfg.validate(n); err != nil {
		return nil, fmt.Errorf("multihop: invalid sim config: %w", err)
	}
	var mobile MobileTopology
	if cfg.MobilityEvery > 0 {
		var ok bool
		if mobile, ok = nw.(MobileTopology); !ok {
			return nil, errors.New("multihop: MobilityEvery set but the topology is immobile")
		}
	}
	src := rng.New(cfg.Seed)
	nodes := make([]spatialNode, n)
	for i := range nodes {
		nodes[i] = spatialNode{cw: cfg.CW[i]}
		nodes[i].draw(src, cfg.MaxStage)
	}
	adj := nw.AdjacencyLists()

	res := &SimResult{Nodes: make([]NodeStats, n)}
	tsSlots := int64(cfg.Timing.SlotsCeil(cfg.Timing.Ts))
	tcSlots := int64(cfg.Timing.SlotsCeil(cfg.Timing.Tc))
	totalSlots := int64(cfg.Duration / cfg.Timing.Slot)
	if totalSlots < 1 {
		totalSlots = 1
	}
	var nextMobility int64 = -1
	var mobilityEverySlots int64
	if cfg.MobilityEvery > 0 {
		mobilityEverySlots = int64(cfg.MobilityEvery / cfg.Timing.Slot)
		if mobilityEverySlots < 1 {
			mobilityEverySlots = 1
		}
		nextMobility = mobilityEverySlots
	}

	transmitters := make([]int, 0, n)
	receivers := make([]int, n)
	inTx := make([]bool, n)
	var totalAttempts, totalHidden int64

	for t := int64(0); t < totalSlots; t++ {
		if nextMobility > 0 && t >= nextMobility {
			// Advance the waypoint model by the elapsed MAC time and
			// refresh the adjacency snapshot.
			if err := mobile.Step(cfg.MobilityEvery / 1e6); err != nil {
				return nil, fmt.Errorf("multihop: mobility step: %w", err)
			}
			adj = mobile.AdjacencyLists()
			nextMobility += mobilityEverySlots
		}

		// Phase 1: who starts transmitting this slot?
		transmitters = transmitters[:0]
		for i := range nodes {
			nd := &nodes[i]
			if nd.txUntil > t || nd.busyUntil > t {
				continue // transmitting or sensing a busy channel
			}
			if nd.counter > 0 {
				nd.counter--
				continue
			}
			if len(adj[i]) == 0 {
				// Isolated node: nothing to send to; stay in backoff.
				nd.draw(src, cfg.MaxStage)
				continue
			}
			transmitters = append(transmitters, i)
			receivers[i] = adj[i][src.Intn(len(adj[i]))]
		}
		if len(transmitters) == 0 {
			continue
		}
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(t, transmitters)
		}

		for _, i := range transmitters {
			inTx[i] = true
		}

		// Phase 2: resolve outcomes at the receivers.
		for _, i := range transmitters {
			r := receivers[i]
			st := &res.Nodes[i]
			st.Attempts++
			totalAttempts++

			ok := true
			hidden := false
			if inTx[r] || nodes[r].busyUntil > t || nodes[r].txUntil > t {
				// Receiver deaf: transmitting itself or in a busy locale.
				ok = false
			}
			if ok {
				for _, j := range adj[r] {
					if j == i || !inTx[j] {
						continue
					}
					ok = false
					if !nw.IsLink(i, j) {
						hidden = true // the interferer was invisible to i
					}
				}
			}
			dur := tcSlots
			if ok {
				st.Successes++
				nodes[i].stage = 0
				dur = tsSlots
			} else {
				st.Collisions++
				if hidden {
					st.HiddenCollisions++
					totalHidden++
				}
				if nodes[i].stage < cfg.MaxStage {
					nodes[i].stage++
				}
			}
			nodes[i].txUntil = t + dur
			nodes[i].draw(src, cfg.MaxStage)
			// Carrier sensing: everyone in range of the transmitter holds.
			for _, k := range adj[i] {
				if until := t + dur; nodes[k].busyUntil < until {
					nodes[k].busyUntil = until
				}
			}
		}
		for _, i := range transmitters {
			inTx[i] = false
		}
	}

	res.Slots = totalSlots
	res.Time = float64(totalSlots) * cfg.Timing.Slot
	for i := range res.Nodes {
		st := &res.Nodes[i]
		st.PayoffRate = (float64(st.Successes)*cfg.Gain - float64(st.Attempts)*cfg.Cost) / res.Time
	}
	if totalAttempts > 0 {
		res.HiddenFraction = float64(totalHidden) / float64(totalAttempts)
	}
	return res, nil
}

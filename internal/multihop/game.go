package multihop

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"selfishmac/internal/bianchi"
	"selfishmac/internal/core"
	"selfishmac/internal/phy"
	"selfishmac/internal/replicate"
	"selfishmac/internal/topology"
)

// LocalCWSelector computes and caches, per neighborhood size, the CW a
// rational node picks in the multi-hop game G': the efficient NE of the
// local single-hop game among itself and its neighbors (paper Section
// VI.B). The paper's theoretical route (e ≪ g condition) is used, matching
// its numerical results.
type LocalCWSelector struct {
	base  core.Config
	cache map[int]int
}

// NewLocalCWSelector builds a selector from a base configuration whose N
// field is overridden per query.
func NewLocalCWSelector(base core.Config) (*LocalCWSelector, error) {
	probe := base
	probe.N = 2
	if err := probe.Validate(); err != nil {
		return nil, fmt.Errorf("multihop: invalid base config: %w", err)
	}
	return &LocalCWSelector{base: base, cache: make(map[int]int)}, nil
}

// CWFor returns the efficient-NE CW of an nPlayers-node single-hop game.
// For nPlayers < 2 (an isolated node) it returns the 2-player value — the
// most aggressive setting a node would ever rationally pick.
func (s *LocalCWSelector) CWFor(nPlayers int) (int, error) {
	if nPlayers < 2 {
		nPlayers = 2
	}
	if w, ok := s.cache[nPlayers]; ok {
		return w, nil
	}
	cfg := s.base
	cfg.N = nPlayers
	g, err := core.NewGame(cfg)
	if err != nil {
		return 0, err
	}
	ne, err := g.FindPaperNE()
	if err != nil {
		return 0, fmt.Errorf("multihop: local NE for n=%d: %w", nPlayers, err)
	}
	s.cache[nPlayers] = ne.WStar
	return ne.WStar, nil
}

// LocalCWProfile returns each node's initial CW: the efficient NE of its
// local (deg+1)-player game.
func LocalCWProfile(nw *topology.Network, sel *LocalCWSelector) ([]int, error) {
	out := make([]int, nw.N())
	for i := range out {
		w, err := sel.CWFor(nw.Degree(i) + 1)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// ConvergedCW returns Wm = min_i W_i, the CW the whole network converges
// to under TFT (Theorem 3). It panics on an empty profile.
func ConvergedCW(profile []int) int {
	if len(profile) == 0 {
		panic("multihop: empty CW profile")
	}
	minW := profile[0]
	for _, w := range profile[1:] {
		if w < minW {
			minW = w
		}
	}
	return minW
}

// TFTConverge iterates the local TFT update W_i ← min(W_i, min_{j∈N(i)} W_j)
// on the graph until a fixed point or maxStages. It returns the final
// profile, the number of stages used, and whether a fixed point was
// reached. On a connected graph the fixed point is the uniform
// min-profile, reached within the graph diameter.
func TFTConverge(adj [][]int, w0 []int, maxStages int) (final []int, stages int, converged bool) {
	n := len(w0)
	cur := append([]int(nil), w0...)
	next := make([]int, n)
	for s := 0; s < maxStages; s++ {
		changed := false
		for i := 0; i < n; i++ {
			m := cur[i]
			for _, j := range adj[i] {
				if cur[j] < m {
					m = cur[j]
				}
			}
			next[i] = m
			if m != cur[i] {
				changed = true
			}
		}
		cur, next = next, cur
		if !changed {
			return cur, s, true
		}
	}
	return cur, maxStages, false
}

// LocalUniformUtility evaluates the paper's adapted multi-hop utility
// (Section VI.A) for a node whose neighborhood has nPlayers contenders all
// at CW w, with hidden-node survival factor phn:
//
//	u = τ((1−p)·phn·g − e) / T_slot
func LocalUniformUtility(model *bianchi.Model, nPlayers, w int, phn, gain, cost float64) (float64, error) {
	if nPlayers < 1 {
		return 0, fmt.Errorf("multihop: nPlayers = %d must be >= 1", nPlayers)
	}
	sol, err := model.SolveUniform(w, nPlayers)
	if err != nil {
		return 0, err
	}
	return sol.Tau[0] * ((1-sol.P[0])*phn*gain - cost) / sol.Tslot, nil
}

// QuasiOptConfig parameterises the Section VII.B quasi-optimality
// measurement.
type QuasiOptConfig struct {
	// Sim carries the channel and payoff parameters. Sim.CW is ignored
	// (profiles are constructed by the measurement).
	Sim SimConfig
	// Wm is the converged CW under test.
	Wm int
	// SweepMultipliers are the relative common-CW values tried in the
	// sweep. 1.0 (= Wm itself) is implicitly included.
	SweepMultipliers []float64
	// Replicas averages each operating point over at least this many
	// independent seeds (derived deterministically from Sim.Seed) to
	// suppress sampling noise in the per-node ratios. 0 or 1 means one
	// run.
	Replicas int
	// MaxReplicas, when greater than Replicas and RelCITarget is set,
	// enables adaptive precision: each operating point replicates until
	// the CI95 half-width of the global payoff rate drops below
	// RelCITarget of its mean, within [Replicas, MaxReplicas]. Zero (or
	// any value below Replicas) means exactly Replicas runs per point.
	MaxReplicas int
	// RelCITarget is the relative CI95 target for adaptive stopping (see
	// MaxReplicas). Zero disables adaptive stopping.
	RelCITarget float64
	// Workers bounds the goroutines fanned out over a point's replicated
	// simulator runs. 0 or negative means GOMAXPROCS; 1 forces the
	// serial path. Results are bit-identical at every worker count — the
	// replication layer (internal/replicate) schedules deterministic
	// rounds and merges moments in index order. Runs are only
	// parallelized (and only adaptively replicated) on a static topology
	// snapshot (Sim.MobilityEvery == 0): a mobile run mutates the shared
	// network, so mobile measurements stay serial and fixed-R.
	Workers int
}

// QuasiOptResult reports how close the converged NE is to optimal.
type QuasiOptResult struct {
	// Wm echoes the converged CW.
	Wm int
	// SweptCWs lists the uniform CW values evaluated (including Wm).
	SweptCWs []int
	// PerNodeRatio[i] = payoff of node i at Wm divided by node i's best
	// payoff across the common-CW sweep. This is the paper's "each node
	// gets at least 96% of the maximal local payoff it can get by varying
	// its CW value" — under TFT the whole network follows any change, so
	// the relevant alternative operating points are the uniform ones.
	PerNodeRatio []float64
	// MinPerNodeRatio and MeanPerNodeRatio summarize PerNodeRatio.
	MinPerNodeRatio  float64
	MeanPerNodeRatio float64
	// GlobalAtWm and GlobalMax are the global payoff rates at Wm and at
	// the best uniform CW in the sweep; GlobalRatio their quotient.
	GlobalAtWm  float64
	GlobalMax   float64
	GlobalRatio float64
	// BestGlobalW is the uniform CW attaining GlobalMax.
	BestGlobalW int
	// RepsPerCW[k] is the number of replications actually run for
	// SweptCWs[k] (Replicas unless adaptive stopping ended earlier or
	// later), and GlobalCI95PerCW[k] the CI95 half-width of its global
	// payoff rate.
	RepsPerCW       []int
	GlobalCI95PerCW []float64
}

// MeasureQuasiOptimality runs the paper's Section VII.B experiment on the
// given network: it simulates every uniform CW in the sweep (the converged
// value Wm plus the configured multiples) and reports, per node and
// globally, how little any other common operating point improves on Wm.
// All runs share the configured seed, so comparisons are paired.
func MeasureQuasiOptimality(nw *topology.Network, cfg QuasiOptConfig) (*QuasiOptResult, error) {
	return MeasureQuasiOptimalityContext(context.Background(), nw, cfg)
}

// MeasureQuasiOptimalityContext is MeasureQuasiOptimality under a
// context, checked between candidate CWs and at the replication layer's
// round boundaries. A cancelled sweep returns an error wrapping
// ctx.Err(), never a partially filled result.
func MeasureQuasiOptimalityContext(ctx context.Context, nw *topology.Network, cfg QuasiOptConfig) (*QuasiOptResult, error) {
	if cfg.Wm < 1 {
		return nil, fmt.Errorf("multihop: Wm = %d must be >= 1", cfg.Wm)
	}
	if len(cfg.SweepMultipliers) == 0 {
		return nil, errors.New("multihop: empty sweep")
	}
	n := nw.N()
	candidates := sweepCWs(cfg.Wm, cfg.SweepMultipliers)

	res := &QuasiOptResult{
		Wm:              cfg.Wm,
		SweptCWs:        candidates,
		PerNodeRatio:    make([]float64, n),
		RepsPerCW:       make([]int, len(candidates)),
		GlobalCI95PerCW: make([]float64, len(candidates)),
	}
	replicas := cfg.Replicas
	if replicas < 1 {
		replicas = 1
	}
	maxReplicas := cfg.MaxReplicas
	if maxReplicas < replicas {
		maxReplicas = replicas
	}
	mobile := cfg.Sim.MobilityEvery > 0

	// Each candidate CW is one replicated measurement. Replication index
	// — not the candidate — drives the derived seed, so candidates are
	// compared on paired seeds, like the previous serial double loop.
	// On a static snapshot the replication layer fans the runs over
	// reusable Simulators and can stop adaptively; a mobile network is
	// mutated by every run, so it gets the serial fixed-R schedule in
	// the same (candidate, replica) order as before.
	atWm := make([]float64, n)
	best := make([]float64, n)
	mean := make([]float64, n)
	for ci, w := range candidates {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("multihop: quasi-optimality sweep interrupted at CW %d: %w", w, err)
		}
		plan := replicate.Plan{
			BaseSeed:     cfg.Sim.Seed,
			Stream:       "multihop.quasiopt",
			Metrics:      n + 1,
			Target:       n,
			RelTolerance: cfg.RelCITarget,
			MinReps:      replicas,
			MaxReps:      maxReplicas,
			Workers:      cfg.Workers,
		}
		var rres *replicate.Result
		var err error
		if mobile {
			plan.Workers = 1
			plan.MaxReps = replicas
			plan.RelTolerance = 0
			sim := cfg.Sim
			sim.CW = uniformCWProfile(w, n)
			rres, err = replicate.RunFuncContext(ctx, plan, func(seed uint64, out []float64) error {
				s := sim
				s.Seed = seed
				r, err := Simulate(nw, s)
				if err != nil {
					return err
				}
				fillQuasiOptMetrics(r, out)
				return nil
			})
		} else {
			rres, err = replicate.RunContext(ctx, plan, func() (replicate.Replicator, error) {
				sim := cfg.Sim
				sim.CW = uniformCWProfile(w, n)
				s, err := NewSimulator(nw, sim)
				if err != nil {
					return nil, err
				}
				return quasiOptReplicator{s}, nil
			})
		}
		if err != nil {
			return nil, err
		}
		res.RepsPerCW[ci] = rres.Reps
		res.GlobalCI95PerCW[ci] = rres.CI95(n)
		gp := rres.Mean(n)
		for i := range mean {
			mean[i] = rres.Mean(i)
		}
		if w == cfg.Wm {
			res.GlobalAtWm = gp
			copy(atWm, mean)
		}
		if gp > res.GlobalMax || res.BestGlobalW == 0 {
			res.GlobalMax = gp
			res.BestGlobalW = w
		}
		for i := range best {
			if mean[i] > best[i] {
				best[i] = mean[i]
			}
		}
	}
	for i := range res.PerNodeRatio {
		if best[i] > 0 {
			res.PerNodeRatio[i] = atWm[i] / best[i]
		} else {
			res.PerNodeRatio[i] = 1 // node never earned anything anywhere
		}
	}
	res.MinPerNodeRatio, res.MeanPerNodeRatio = summarizeRatios(res.PerNodeRatio)
	if res.GlobalMax != 0 {
		res.GlobalRatio = res.GlobalAtWm / res.GlobalMax
	}
	return res, nil
}

// quasiOptReplicator adapts a reusable Simulator to replicate.Replicator:
// one replication is Reset(seed)+Run, reported as n per-node payoff rates
// followed by their sum (the global rate, the adaptive-stopping target).
type quasiOptReplicator struct {
	sim *Simulator
}

func (q quasiOptReplicator) Replicate(seed uint64, out []float64) error {
	q.sim.Reset(seed)
	r, err := q.sim.Run()
	if err != nil {
		return err
	}
	fillQuasiOptMetrics(r, out)
	return nil
}

func fillQuasiOptMetrics(r *SimResult, out []float64) {
	var gp float64
	for i := range r.Nodes {
		out[i] = r.Nodes[i].PayoffRate
		gp += r.Nodes[i].PayoffRate
	}
	out[len(r.Nodes)] = gp
}

// sweepCWs maps multipliers to distinct integer CW values >= 1, sorted,
// always including wm itself.
func sweepCWs(wm int, multipliers []float64) []int {
	seen := map[int]bool{wm: true}
	out := []int{wm}
	for _, m := range multipliers {
		w := int(float64(wm)*m + 0.5)
		if w < 1 {
			w = 1
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

func summarizeRatios(rs []float64) (minR, meanR float64) {
	if len(rs) == 0 {
		return 1, 1
	}
	minR = rs[0]
	var sum float64
	for _, r := range rs {
		if r < minR {
			minR = r
		}
		sum += r
	}
	return minR, sum / float64(len(rs))
}

// PHNSweep measures the hidden-terminal loss fraction across uniform CW
// values (paper Section VI.A's key approximation: p_hn is roughly
// independent of CW when n is large and CW not too small). It returns one
// HiddenFraction per candidate CW. The sweep points are independent
// simulator runs fanned out over at most `workers` goroutines (0 means
// GOMAXPROCS); runs stay serial when mobility would mutate the topology.
func PHNSweep(nw *topology.Network, sim SimConfig, cws []int, workers int) ([]float64, error) {
	return PHNSweepContext(context.Background(), nw, sim, cws, workers)
}

// PHNSweepContext is PHNSweep under a context, checked between sweep
// points.
func PHNSweepContext(ctx context.Context, nw *topology.Network, sim SimConfig, cws []int, workers int) ([]float64, error) {
	if len(cws) == 0 {
		return nil, errors.New("multihop: empty CW sweep")
	}
	for _, w := range cws {
		if w < 1 {
			return nil, fmt.Errorf("multihop: CW %d < 1", w)
		}
	}
	out := make([]float64, len(cws))
	err := forEachIndex(ctx, len(cws), workers, sim.MobilityEvery == 0, func(k int) error {
		s := sim
		s.CW = uniformCWProfile(cws[k], nw.N())
		r, err := Simulate(nw, s)
		if err != nil {
			return err
		}
		out[k] = r.HiddenFraction
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DefaultSimConfig returns the paper-flavored spatial simulation settings:
// RTS/CTS access (Section VI considers RTS/CTS networks), Table I utility
// parameters, and a given duration/seed.
func DefaultSimConfig(duration float64, seed uint64) SimConfig {
	p := phy.Default()
	return SimConfig{
		Timing:   p.MustTiming(phy.RTSCTS),
		MaxStage: p.MaxBackoffStage,
		Duration: duration,
		Seed:     seed,
		Gain:     1,
		Cost:     0.01,
	}
}

package multihop

import (
	"errors"
	"fmt"
)

// Simulator is the reusable New / Reset(seed) / Run lifecycle over the
// spatial event-skipping engine: construction allocates every buffer once
// (node state, fire slots, scratch sets, the result), after which
// Reset+Run pairs execute at zero steady-state allocations. It exists for
// replication loops (internal/replicate), which previously paid the full
// Simulate setup cost — including an adjacency-list snapshot — on every
// replication.
//
// Results are bit-identical to Simulate with the same config and seed;
// the differential tests pin this.
//
// Mobility is not supported: a mobile topology is mutated by the run, so
// replaying it under a new seed would start from a moved network rather
// than the configured one. Use Simulate for mobile scenarios.
//
// A Simulator is not safe for concurrent use; give each goroutine its
// own (replicate.Run's factory does exactly that).
type Simulator struct {
	st simState
}

// NewSimulator validates cfg against the network and builds a reusable
// simulator bound to the network's current topology snapshot. The
// simulator deep-copies cfg.CW, so the caller may reuse or mutate it.
func NewSimulator(nw Topology, cfg SimConfig) (*Simulator, error) {
	if cfg.MobilityEvery > 0 {
		return nil, errors.New("multihop: Simulator does not support mobility; use Simulate")
	}
	if err := cfg.validate(nw.N()); err != nil {
		return nil, fmt.Errorf("multihop: invalid sim config: %w", err)
	}
	cfg.CW = append([]int(nil), cfg.CW...)
	s := &Simulator{}
	s.st.init(nw, nil, cfg)
	return s, nil
}

// Reset restores the initial state for a new seed. The next Run simulates
// the configured network and CW profile under this seed, exactly as a
// fresh Simulate would. It allocates nothing.
func (s *Simulator) Reset(seed uint64) {
	s.st.reset(seed)
}

// Reconfigure rebinds the simulator to a new config at the same node
// count: timing, duration, payoff parameters, CW profile and seed may
// all change; the network stays the one it was constructed with. It is
// the pooled-engine hot path — at a fixed shape it reuses every buffer
// (including the adjacency view, so a pooled simulator rebound to the
// same static network skips adjacency work outright) and allocates
// nothing in steady state.
func (s *Simulator) Reconfigure(cfg SimConfig) error {
	if cfg.MobilityEvery > 0 {
		return errors.New("multihop: Simulator does not support mobility; use Simulate")
	}
	if err := cfg.validate(s.st.n); err != nil {
		return fmt.Errorf("multihop: invalid sim config: %w", err)
	}
	cfg.CW = append(s.st.cfg.CW[:0], cfg.CW...)
	s.st.init(s.st.nw, nil, cfg)
	return nil
}

// SetCW swaps the per-node contention-window profile in place (copying
// cw into the simulator-owned slice) and resets backoff state for the
// current seed. Call Reset afterwards to pick the replication seed.
func (s *Simulator) SetCW(cw []int) error {
	if len(cw) != s.st.n {
		return fmt.Errorf("multihop: CW profile has %d entries for %d nodes", len(cw), s.st.n)
	}
	for i, w := range cw {
		if w < 1 {
			return fmt.Errorf("multihop: node %d CW %d < 1", i, w)
		}
	}
	copy(s.st.cfg.CW, cw)
	s.st.reset(s.st.cfg.Seed)
	return nil
}

// Run executes the simulation. The returned SimResult is owned by the
// simulator and reused: it is valid until the next Reset, SetCW or Run.
// The lifecycle is always Reset(seed) then Run.
func (s *Simulator) Run() (*SimResult, error) {
	return s.st.run()
}

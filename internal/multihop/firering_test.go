package multihop

import (
	"reflect"
	"testing"

	"selfishmac/internal/rng"
)

// firering_test.go pins the bucket-ring calendar against the lazy-shift
// heap it replaced: driven with the same fire-slot trajectory — pushes,
// silent forward shifts (carrier freezes), expiry collection — both must
// report identical (slot, expired-set) sequences, as long as the
// trajectory respects the engine's horizon bound (no fire slot more than
// span-1 slots past the current event slot).

func TestNextPow2(t *testing.T) {
	cases := map[int64]int64{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFireCalendarSelection(t *testing.T) {
	var c fireCalendar
	c.configure(10, 512)
	if !c.useRing {
		t.Fatal("span 512 should select the ring")
	}
	c.configure(10, maxRingSpan+1)
	if c.useRing {
		t.Fatalf("span %d should fall back to the heap", maxRingSpan+1)
	}
	c.configure(10, 0)
	if c.useRing {
		t.Fatal("span 0 should fall back to the heap")
	}
}

// TestFireRingMatchesHeapTrajectory runs randomized engine-shaped
// trajectories through a ring calendar and a heap calendar in lockstep.
func TestFireRingMatchesHeapTrajectory(t *testing.T) {
	const (
		n     = 150
		span  = int64(900)
		limit = int64(250000)
	)
	for trial := uint64(0); trial < 8; trial++ {
		src := rng.New(trial + 101)
		fire := make([]int64, n)
		for i := range fire {
			fire[i] = int64(src.Intn(int(span)))
		}
		var ring, heap fireCalendar
		ring.configure(n, span)
		heap.configure(n, 0) // force the fallback
		if !ring.useRing || heap.useRing {
			t.Fatal("calendar selection did not split as intended")
		}
		ring.rebuild(fire)
		heap.rebuild(fire)

		var ringExp, heapExp []int
		for round := 0; ; round++ {
			var tr, th int64
			tr, ringExp = ring.nextEvent(fire, limit, ringExp[:0])
			th, heapExp = heap.nextEvent(fire, limit, heapExp[:0])
			if tr >= limit || th >= limit {
				if tr < limit || th < limit {
					t.Fatalf("trial %d round %d: one calendar ended (ring %d, heap %d)", trial, round, tr, th)
				}
				break
			}
			if tr != th {
				t.Fatalf("trial %d round %d: ring slot %d != heap slot %d", trial, round, tr, th)
			}
			if !reflect.DeepEqual(ringExp, heapExp) {
				t.Fatalf("trial %d round %d: expired sets diverged: ring %v heap %v", trial, round, ringExp, heapExp)
			}
			t0 := tr
			// Freeze-shift a random subset of the still-filed nodes forward
			// without telling the calendars, staying inside the horizon.
			for k := 0; k < n/8; k++ {
				j := src.Intn(n)
				if fire[j] <= t0 {
					continue // being re-keyed below, or already collected
				}
				shifted := fire[j] + int64(src.Intn(40))
				if max := t0 + span - 1; shifted > max {
					shifted = max
				}
				fire[j] = shifted
			}
			// Re-key the expired nodes, engine-style: resume at t+1 with a
			// fresh counter inside the horizon.
			for _, i := range ringExp {
				fire[i] = t0 + 1 + int64(src.Intn(int(span)-1))
				ring.push(fire[i], i)
				heap.push(fire[i], i)
			}
		}
	}
}

// TestFireRingExpiredAscending pins the collection order the engine's
// PRNG-draw contract depends on: whatever order entries were filed in a
// bucket, the expired run comes back in ascending node order.
func TestFireRingExpiredAscending(t *testing.T) {
	const n = 64
	fire := make([]int64, n)
	for i := range fire {
		fire[i] = 7 // everyone expires at once, filed in index order
	}
	var ring fireRing
	ring.init(n, 64)
	ring.rebuild(fire)
	slot, expired := ring.nextEvent(fire, 100, nil)
	if slot != 7 {
		t.Fatalf("slot = %d, want 7", slot)
	}
	if len(expired) != n {
		t.Fatalf("collected %d nodes, want %d", len(expired), n)
	}
	for i := 1; i < len(expired); i++ {
		if expired[i-1] >= expired[i] {
			t.Fatalf("expired not ascending at %d: %v", i, expired)
		}
	}
}

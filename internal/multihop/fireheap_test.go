package multihop

import (
	"fmt"
	"testing"

	"selfishmac/internal/rng"
)

// TestFireHeapOrdering pins the packed-key ordering: pops come out sorted
// by slot, ties broken by ascending node id.
func TestFireHeapOrdering(t *testing.T) {
	var h fireHeap
	h.init(8)
	// Deliberately interleaved pushes with duplicate slots.
	h.push(5, 3)
	h.push(2, 7)
	h.push(5, 1)
	h.push(2, 0)
	h.push(9, 4)
	h.push(2, 2)
	want := []struct {
		slot int64
		node int
	}{{2, 0}, {2, 2}, {2, 7}, {5, 1}, {5, 3}, {9, 4}}
	for k, w := range want {
		s, i := h.pop()
		if s != w.slot || i != w.node {
			t.Fatalf("pop %d = (%d, %d), want (%d, %d)", k, s, i, w.slot, w.node)
		}
	}
	if h.len() != 0 {
		t.Fatalf("heap not empty after draining: len %d", h.len())
	}
}

// TestFireHeapLargeSlots checks the packing headroom: slots far beyond any
// simulated duration survive the shift-and-mask round trip at a large n.
func TestFireHeapLargeSlots(t *testing.T) {
	var h fireHeap
	h.init(10000)
	h.push(1<<40, 9999)
	h.push(1<<40-1, 0)
	if s, i := h.pop(); s != 1<<40-1 || i != 0 {
		t.Fatalf("pop = (%d, %d), want (%d, 0)", s, i, int64(1<<40-1))
	}
	if s, i := h.pop(); s != 1<<40 || i != 9999 {
		t.Fatalf("pop = (%d, %d), want (%d, 9999)", s, i, int64(1<<40))
	}
}

// BenchmarkEventSelection races the two event-selection primitives the
// engine has had — the lazy-shift calendar (current) and the eager O(n)
// min-scan over fire[] (what run() did before) — on the same workload:
// find the minimum fire slot, collect its expired set in ascending node
// order, re-key the expired, apply a few lazy freeze shifts. Fire slots
// are drawn from a span proportional to n, matching the engine's regime
// where each event expires O(1) nodes however large the population gets.
// The min-scan pays O(n) per event no matter how small the event; the
// calendar pays O(log n) per touched entry, so its margin grows with n.
func BenchmarkEventSelection(b *testing.B) {
	for _, n := range []int{1000, 5000, 10000} {
		b.Run(fmt.Sprintf("calendar-n%d", n), func(b *testing.B) { benchSelection(b, n, true) })
		b.Run(fmt.Sprintf("minscan-n%d", n), func(b *testing.B) { benchSelection(b, n, false) })
	}
}

func benchSelection(b *testing.B, n int, useHeap bool) {
	span := 4 * n
	var src rng.Source
	src.Reseed(7)
	fire := make([]int64, n)
	for i := range fire {
		fire[i] = int64(src.Intn(span))
	}
	var h fireHeap
	if useHeap {
		h.init(n)
		h.rebuild(fire)
	}
	expired := make([]int, 0, n)
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		expired = expired[:0]
		var t int64
		if useHeap {
			for {
				s, i := h.pop()
				if s != fire[i] {
					h.push(fire[i], i)
					continue
				}
				t = s
				expired = append(expired, i)
				break
			}
			for h.len() > 0 && h.minSlot() == t {
				_, i := h.pop()
				if fire[i] != t {
					h.push(fire[i], i)
					continue
				}
				expired = append(expired, i)
			}
		} else {
			t = fire[0]
			for _, f := range fire[1:] {
				if f < t {
					t = f
				}
			}
			for i, f := range fire {
				if f == t {
					expired = append(expired, i)
				}
			}
		}
		for _, i := range expired {
			fire[i] = t + 1 + int64(src.Intn(span))
			if useHeap {
				h.push(fire[i], i)
			}
		}
		// A handful of lazy shifts per event keeps the calendar's stale-
		// repair cost in the measurement, like carrier sensing does.
		for j := 0; j < 8; j++ {
			i := src.Intn(n)
			if fire[i] > t {
				fire[i] += int64(src.Intn(64))
			}
		}
	}
}

// TestFireHeapLazyShiftMatchesEagerScan is the calendar's property test:
// under random freeze/resume churn — fire slots shifted forward without
// touching the heap, exactly how the engine applies carrier-sense holds —
// the lazy-repair pop loop must select the same event slot and the same
// ascending expired-node set as an eager O(n) min-scan over fire[].
func TestFireHeapLazyShiftMatchesEagerScan(t *testing.T) {
	const (
		n      = 97
		rounds = 2000
	)
	var src rng.Source
	src.Reseed(42)

	fire := make([]int64, n)
	var h fireHeap
	h.init(n)
	for i := range fire {
		fire[i] = int64(src.Intn(64))
	}
	h.rebuild(fire)

	for r := 0; r < rounds; r++ {
		// Eager reference: min over fire[], then every node at the min.
		tRef := fire[0]
		for _, f := range fire[1:] {
			if f < tRef {
				tRef = f
			}
		}
		var wantExpired []int
		for i, f := range fire {
			if f == tRef {
				wantExpired = append(wantExpired, i)
			}
		}

		// Lazy heap: pop until current, repairing stale entries, then
		// collect the rest of the slot.
		var tGot int64
		var expired []int
		for {
			s, i := h.pop()
			if s != fire[i] {
				h.push(fire[i], i)
				continue
			}
			tGot = s
			expired = append(expired, i)
			break
		}
		for h.len() > 0 && h.minSlot() == tGot {
			_, i := h.pop()
			if fire[i] != tGot {
				h.push(fire[i], i)
				continue
			}
			expired = append(expired, i)
		}

		if tGot != tRef {
			t.Fatalf("round %d: heap slot %d, eager scan %d", r, tGot, tRef)
		}
		if len(expired) != len(wantExpired) {
			t.Fatalf("round %d: expired %v, want %v", r, expired, wantExpired)
		}
		for k := range expired {
			if expired[k] != wantExpired[k] {
				t.Fatalf("round %d: expired %v, want %v (order must be ascending)", r, expired, wantExpired)
			}
		}
		if h.len() != n-len(expired) {
			t.Fatalf("round %d: heap len %d after popping %d of %d entries", r, h.len(), len(expired), n)
		}

		// Re-key the expired nodes (resume: strictly future slot, pushed
		// eagerly, like a transmitter redraw or isolated-node redraw).
		for _, i := range expired {
			fire[i] = tGot + 1 + int64(src.Intn(128))
			h.push(fire[i], i)
		}
		// Freeze churn: shift a random subset of the survivors forward
		// WITHOUT touching the heap — their entries go stale, exactly
		// like carrier-sense holds in the engine.
		for i := 0; i < n; i++ {
			if fire[i] > tGot && src.Intn(4) == 0 {
				fire[i] += int64(src.Intn(32))
			}
		}
	}
}

package multihop

import (
	"testing"

	"selfishmac/internal/core"
)

// fixedGraph is a deterministic Topology for engine tests.
type fixedGraph struct {
	adj [][]int
}

func (g *fixedGraph) N() int                  { return len(g.adj) }
func (g *fixedGraph) AdjacencyLists() [][]int { return g.adj }
func (g *fixedGraph) IsLink(i, j int) bool {
	for _, k := range g.adj[i] {
		if k == j {
			return true
		}
	}
	return false
}

var _ Topology = (*fixedGraph)(nil)

// line5 is the path graph 0-1-2-3-4.
func line5() *fixedGraph {
	return &fixedGraph{adj: [][]int{{1}, {0, 2}, {1, 3}, {2, 4}, {3}}}
}

func tftStrategies(w0 []int) []core.Strategy {
	out := make([]core.Strategy, len(w0))
	for i, w := range w0 {
		out[i] = core.TFT{Initial: w}
	}
	return out
}

func stageSim(duration float64) SimConfig {
	cfg := DefaultSimConfig(duration, 13)
	return cfg
}

func TestEngineValidation(t *testing.T) {
	g := line5()
	if _, err := NewEngine(nil, nil, stageSim(1e6)); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewEngine(g, tftStrategies([]int{1, 2}), stageSim(1e6)); err == nil {
		t.Error("strategy-count mismatch accepted")
	}
	strats := tftStrategies([]int{10, 10, 10, 10, 10})
	strats[2] = nil
	if _, err := NewEngine(g, strats, stageSim(1e6)); err == nil {
		t.Error("nil strategy accepted")
	}
	bad := stageSim(0)
	if _, err := NewEngine(g, tftStrategies([]int{10, 10, 10, 10, 10}), bad); err == nil {
		t.Error("zero-duration stage accepted")
	}
	eng, err := NewEngine(g, tftStrategies([]int{10, 10, 10, 10, 10}), stageSim(1e6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err == nil {
		t.Error("Run(0) accepted")
	}
}

// Theorem 3 as a dynamic: local TFT on a path graph converges to the
// global minimum CW within the diameter, with the minimum travelling
// hop by hop.
func TestTheorem3Dynamic(t *testing.T) {
	g := line5()
	w0 := []int{100, 90, 80, 70, 12} // minimum at the far end
	eng, err := NewEngine(g, tftStrategies(w0), stageSim(1e6))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ConvergedCW != 12 {
		t.Fatalf("converged to %d, want the global minimum 12", tr.ConvergedCW)
	}
	// Propagation is hop-by-hop: after stage k the minimum has reached
	// nodes within k hops of node 4.
	if got := tr.Stages[1].Profile; got[3] != 12 || got[0] == 12 {
		t.Errorf("stage 1 profile %v: min should have reached node 3 only", got)
	}
	if got := tr.Stages[2].Profile; got[2] != 12 {
		t.Errorf("stage 2 profile %v: min should have reached node 2", got)
	}
	// Diameter of line5 is 4: convergence at stage 4.
	if tr.ConvergedAt > 4 {
		t.Errorf("converged at stage %d, want <= diameter 4", tr.ConvergedAt)
	}
	// Dynamic result must agree with the static graph iteration.
	static, _, ok := TFTConverge(g.adj, w0, 100)
	if !ok {
		t.Fatal("static iteration did not converge")
	}
	final := tr.FinalProfile()
	for i := range final {
		if final[i] != static[i] {
			t.Fatalf("dynamic final %v != static %v", final, static)
		}
	}
}

// A malicious node pinned low drags the entire connected network down —
// Section V.E in the multi-hop setting.
func TestMultihopMaliciousSpreads(t *testing.T) {
	g := line5()
	strats := tftStrategies([]int{60, 60, 60, 60, 60})
	strats[0] = core.Constant{W: 6, Label: "malicious"}
	eng, err := NewEngine(g, strats, stageSim(1e6))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ConvergedCW != 6 {
		t.Fatalf("network converged to %d, want the malicious 6", tr.ConvergedCW)
	}
}

func TestEngineRecordsPayoffs(t *testing.T) {
	g := line5()
	eng, err := NewEngine(g, tftStrategies([]int{30, 30, 30, 30, 30}), stageSim(3e6))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	for k, st := range tr.Stages {
		if len(st.PayoffRates) != 5 {
			t.Fatalf("stage %d has %d payoff entries", k, len(st.PayoffRates))
		}
		var positive int
		for _, u := range st.PayoffRates {
			if u > 0 {
				positive++
			}
		}
		if positive == 0 {
			t.Errorf("stage %d: nobody earned anything", k)
		}
	}
}

func TestEngineStopWindow(t *testing.T) {
	g := line5()
	eng, err := NewEngine(g, tftStrategies([]int{50, 50, 50, 50, 50}), stageSim(1e6))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.WithStopWindow(2).Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stages) != 2 {
		t.Fatalf("ran %d stages, want early stop at 2", len(tr.Stages))
	}
	if tr.ConvergedAt != 0 || tr.ConvergedCW != 50 {
		t.Fatalf("ConvergedAt=%d CW=%d", tr.ConvergedAt, tr.ConvergedCW)
	}
}

func TestEngineNonConvergence(t *testing.T) {
	g := line5()
	strats := []core.Strategy{
		core.Constant{W: 10}, core.Constant{W: 20}, core.Constant{W: 30},
		core.Constant{W: 40}, core.Constant{W: 50},
	}
	eng, err := NewEngine(g, strats, stageSim(1e6))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ConvergedAt != -1 {
		t.Fatalf("heterogeneous constants reported convergence at %d", tr.ConvergedAt)
	}
}

// GTFT's tolerance also works on neighborhoods: a within-tolerance
// neighbor difference must not trigger a reaction.
func TestEngineGTFTLocalTolerance(t *testing.T) {
	g := &fixedGraph{adj: [][]int{{1}, {0}}}
	strats := []core.Strategy{
		core.GTFT{Initial: 100, R0: 2, Beta: 0.8},
		core.GTFT{Initial: 90, R0: 2, Beta: 0.8}, // within 0.8 tolerance
	}
	eng, err := NewEngine(g, strats, stageSim(1e6))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	final := tr.FinalProfile()
	if final[0] != 100 || final[1] != 90 {
		t.Fatalf("GTFT overreacted within tolerance: %v", final)
	}
}

// Simulate must reject mobility on an immobile topology.
func TestSimulateImmobileTopologyRejectsMobility(t *testing.T) {
	g := line5()
	cfg := stageSim(1e6)
	cfg.CW = []int{16, 16, 16, 16, 16}
	cfg.MobilityEvery = 1e5
	if _, err := Simulate(g, cfg); err == nil {
		t.Fatal("mobility accepted on a fixed graph")
	}
	cfg.MobilityEvery = 0
	if _, err := Simulate(g, cfg); err != nil {
		t.Fatalf("static simulation on a fixed graph failed: %v", err)
	}
}

package multihop

import (
	"errors"
	"fmt"

	"selfishmac/internal/core"
	"selfishmac/internal/rng"
	"selfishmac/internal/topology"
)

// Engine plays the multi-hop repeated game G' dynamically: each stage
// every node picks a CW through a core.Strategy, the spatial simulator
// measures one stage of payoffs, and each node observes its *neighbors'*
// CW values (the paper's promiscuous-mode assumption, now local).
//
// Strategies are reused from the single-hop game under a local-view
// convention: the observation vector a node receives each stage is
// [own CW, neighbor CWs...] with itself at index 0, so TFT's
// min-of-last-stage and GTFT's windowed tolerance work unchanged on the
// neighborhood. Theorem 3's claim — TFT converges to Wm = min_i W_i —
// becomes a measurable dynamic here rather than a graph iteration.
type Engine struct {
	nw         Topology
	strategies []core.Strategy
	sim        SimConfig
	stopWindow int
	churn      *ChurnConfig
}

// StageRecord is one stage of the multi-hop trace.
type StageRecord struct {
	// Profile is the CW profile played this stage.
	Profile []int
	// PayoffRates are the measured per-node payoff rates.
	PayoffRates []float64
	// HiddenFraction is the stage's hidden-terminal loss fraction.
	HiddenFraction float64
	// Active marks which nodes were present this stage (nil when the run
	// has no churn — everyone is always present).
	Active []bool
}

// Trace is the outcome of a multi-hop run.
type Trace struct {
	// Stages holds one record per stage.
	Stages []StageRecord
	// ConvergedAt is the first stage from which the profile is uniform
	// and constant to the end (−1 if never), ConvergedCW the common CW.
	ConvergedAt int
	ConvergedCW int
}

// FinalProfile returns the last played profile (nil for empty traces).
func (tr *Trace) FinalProfile() []int {
	if len(tr.Stages) == 0 {
		return nil
	}
	return tr.Stages[len(tr.Stages)-1].Profile
}

// NewEngine builds a multi-hop engine. sim.CW is ignored (profiles come
// from the strategies); sim.Duration is the stage length T.
func NewEngine(nw Topology, strategies []core.Strategy, sim SimConfig) (*Engine, error) {
	if nw == nil {
		return nil, errors.New("multihop: nil network")
	}
	if len(strategies) != nw.N() {
		return nil, fmt.Errorf("multihop: %d strategies for %d nodes", len(strategies), nw.N())
	}
	for i, s := range strategies {
		if s == nil {
			return nil, fmt.Errorf("multihop: nil strategy for node %d", i)
		}
	}
	probe := sim
	probe.CW = make([]int, nw.N())
	for i := range probe.CW {
		probe.CW[i] = 16
	}
	if err := probe.validate(nw.N()); err != nil {
		return nil, fmt.Errorf("multihop: invalid stage sim config: %w", err)
	}
	return &Engine{nw: nw, strategies: strategies, sim: sim, stopWindow: 0}, nil
}

// WithStopWindow makes Run stop early after the profile has been uniform
// and constant for window consecutive stages.
func (e *Engine) WithStopWindow(window int) *Engine {
	if window >= 1 {
		e.stopWindow = window
	}
	return e
}

// WithChurn enables node churn during the run: each stage, active nodes
// leave with cfg.LeaveProb and departed ones rejoin with cfg.JoinProb.
// Convergence is then judged over the active nodes only. The config is
// validated when Run starts.
func (e *Engine) WithChurn(cfg ChurnConfig) *Engine {
	e.churn = &cfg
	return e
}

// Run plays up to maxStages stages.
func (e *Engine) Run(maxStages int) (*Trace, error) {
	if maxStages < 1 {
		return nil, fmt.Errorf("multihop: maxStages = %d must be >= 1", maxStages)
	}
	n := e.nw.N()
	var churn *churnState
	if e.churn != nil {
		if err := e.churn.Validate(); err != nil {
			return nil, err
		}
		churn = newChurnState(*e.churn, n)
	}
	trace := &Trace{ConvergedAt: -1}
	// The observation history is windowed to the strategies' declared
	// depth when possible (see history.go), so long runs hold a constant
	// number of stage views instead of all of them.
	hist := newObsHistory(n, e.strategies)

	// Per-stage scratch, allocated once: the masked churn view filters
	// into its own reusable buffers (skipping the refill entirely when
	// neither mask nor positions changed), grid-backed topologies hold an
	// incrementally-patched adjacency view — on a static network every
	// stage after the first consults it for free — and other topologies
	// refill adjBuf instead of handing back fresh O(n) slices per stage.
	var masked *maskedTopology
	if churn != nil {
		masked = &maskedTopology{base: e.nw}
	}
	var view *topology.Adjacency
	if tn, ok := e.nw.(*topology.Network); ok && churn == nil {
		view = tn.AdjacencyView()
	}
	var adjBuf [][]int

	uniformRun, lastUniform := 0, 0
	for k := 0; k < maxStages; k++ {
		// Evolve membership and snapshot the stage's topology view.
		nw := e.nw
		var active []bool
		if churn != nil {
			churn.step()
			active = append([]bool(nil), churn.active...)
			masked.active = active
			nw = masked
		}
		var adj [][]int
		switch {
		case view != nil:
			adj = view.Rows()
		default:
			if r, ok := nw.(AdjacencyReuser); ok {
				adjBuf = r.AdjacencyInto(adjBuf)
				adj = adjBuf
			} else {
				adj = nw.AdjacencyLists()
			}
		}

		profile := make([]int, n)
		for i, s := range e.strategies {
			w := s.ChooseCW(0, hist.observed(i), hist.utilities(i))
			if w < 1 {
				w = 1
			}
			profile[i] = w
		}

		sim := e.sim
		sim.CW = profile
		// Per-stage seeds come from a named DeriveSeed stream, the one
		// seed-derivation path of the repo: decorrelated across stages and
		// never colliding with other stream families that share the base.
		sim.Seed = rng.DeriveSeed(e.sim.Seed, "multihop.engine.stage", k)
		res, err := Simulate(nw, sim)
		if err != nil {
			return nil, fmt.Errorf("multihop: stage %d: %w", k, err)
		}
		// Each stage's slot clock restarts at 0; let observers that track
		// a run-wide clock advance their base past this stage.
		if adv, ok := e.sim.Observer.(SlotAdvancer); ok {
			adv.Advance(res.Slots)
		}
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = res.Nodes[i].PayoffRate
		}
		trace.Stages = append(trace.Stages, StageRecord{
			Profile:        profile,
			PayoffRates:    rates,
			HiddenFraction: res.HiddenFraction,
			Active:         active,
		})

		// A departed node observes only itself; its neighbors do not see
		// it either (adj is the masked view).
		hist.record(adj, profile, rates)

		if cw, ok := uniformProfile(profile, active); ok {
			if uniformRun > 0 && cw == lastUniform {
				uniformRun++
			} else {
				uniformRun = 1
			}
			lastUniform = cw
		} else {
			uniformRun = 0
		}
		if e.stopWindow > 0 && uniformRun >= e.stopWindow {
			break
		}
	}
	if uniformRun > 0 {
		trace.ConvergedAt = len(trace.Stages) - uniformRun
		trace.ConvergedCW = lastUniform
	}
	return trace, nil
}

// uniformProfile reports whether the profile is uniform — over the active
// nodes only when an activity mask is present — and the common CW.
func uniformProfile(p []int, active []bool) (int, bool) {
	cw, seen := 0, false
	for i, w := range p {
		if active != nil && !active[i] {
			continue
		}
		if !seen {
			cw, seen = w, true
		} else if w != cw {
			return 0, false
		}
	}
	return cw, seen
}

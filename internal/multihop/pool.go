package multihop

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachIndex runs fn(i) for i in [0, n) over at most `workers`
// goroutines (0 or negative means GOMAXPROCS) and returns the
// lowest-index error. parallelOK false forces the serial path — used when
// the shared topology would be mutated (mobility enabled), which the
// simulator cannot do concurrently. fn must only write state owned by its
// index; determinism at any worker count follows from that partitioning.
// Workers stop claiming indices once ctx is cancelled; if no fn errored,
// the cancellation surfaces as ctx.Err().
func forEachIndex(ctx context.Context, n, workers int, parallelOK bool, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || !parallelOK {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// uniformCWProfile returns an n-slot profile all at w. Each parallel
// simulator run needs its own profile slice (SimConfig.CW is retained by
// the run), so this is per-call, never shared.
func uniformCWProfile(w, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = w
	}
	return out
}

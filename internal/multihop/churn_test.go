package multihop

import (
	"math"
	"reflect"
	"testing"

	"selfishmac/internal/core"
)

func TestChurnConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  ChurnConfig
	}{
		{"LeaveProb 1", ChurnConfig{LeaveProb: 1}},
		{"negative LeaveProb", ChurnConfig{LeaveProb: -0.1}},
		{"NaN LeaveProb", ChurnConfig{LeaveProb: math.NaN()}},
		{"JoinProb above 1", ChurnConfig{JoinProb: 1.5}},
		{"negative JoinProb", ChurnConfig{JoinProb: -0.2}},
		{"negative MinActive", ChurnConfig{MinActive: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", tc.cfg)
			}
			// The engine must reject it at Run time too.
			g := line5()
			eng, err := NewEngine(g, tftStrategies([]int{10, 10, 10, 10, 10}), stageSim(1e6))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.WithChurn(tc.cfg).Run(2); err == nil {
				t.Error("Run accepted the invalid churn config")
			}
		})
	}
	if err := (ChurnConfig{}).Validate(); err != nil {
		t.Errorf("zero churn config rejected: %v", err)
	}
}

func TestMaskedTopologyCutsDepartedNodes(t *testing.T) {
	g := line5()
	m := &maskedTopology{base: g, active: []bool{true, true, false, true, true}}
	if m.N() != 5 {
		t.Fatalf("N = %d, want 5 (indices are stable under churn)", m.N())
	}
	adj := m.AdjacencyLists()
	if len(adj[2]) != 0 {
		t.Fatalf("departed node 2 still has links: %v", adj[2])
	}
	// Neighbors must not see the departed node either.
	if !reflect.DeepEqual(adj[1], []int{0}) {
		t.Fatalf("node 1 adjacency %v, want [0]", adj[1])
	}
	if !reflect.DeepEqual(adj[3], []int{4}) {
		t.Fatalf("node 3 adjacency %v, want [4]", adj[3])
	}
	if m.IsLink(1, 2) || m.IsLink(2, 3) {
		t.Fatal("links to a departed node reported present")
	}
	if !m.IsLink(0, 1) || !m.IsLink(3, 4) {
		t.Fatal("links between active nodes lost")
	}
}

func TestChurnStateRespectsMinActive(t *testing.T) {
	st := newChurnState(ChurnConfig{Seed: 1, LeaveProb: 0.9, JoinProb: 0, MinActive: 3}, 6)
	for k := 0; k < 50; k++ {
		st.step()
		if st.nUp < 3 {
			t.Fatalf("stage %d: %d active, MinActive 3 violated", k, st.nUp)
		}
	}
	if st.nUp != 3 {
		t.Fatalf("90%% leave with no rejoin left %d active, want the floor 3", st.nUp)
	}
}

func TestChurnStateIsDeterministic(t *testing.T) {
	trajectory := func() [][]bool {
		st := newChurnState(ChurnConfig{Seed: 11, LeaveProb: 0.3, JoinProb: 0.4}, 8)
		var out [][]bool
		for k := 0; k < 20; k++ {
			st.step()
			out = append(out, append([]bool(nil), st.active...))
		}
		return out
	}
	if !reflect.DeepEqual(trajectory(), trajectory()) {
		t.Fatal("same seed produced different churn trajectories")
	}
}

// TFT under churn: the network still converges to the global minimum CW,
// and the trace records per-stage membership.
func TestEngineChurnConvergesAndRecordsActive(t *testing.T) {
	g := line5()
	w0 := []int{100, 90, 80, 70, 12}
	eng, err := NewEngine(g, tftStrategies(w0), stageSim(1e6))
	if err != nil {
		t.Fatal(err)
	}
	eng = eng.WithChurn(ChurnConfig{Seed: 4, LeaveProb: 0.1, JoinProb: 0.5, MinActive: 3})
	tr, err := eng.WithStopWindow(3).Run(30)
	if err != nil {
		t.Fatal(err)
	}
	for k, st := range tr.Stages {
		if st.Active == nil {
			t.Fatalf("stage %d has no Active mask despite churn", k)
		}
		nUp := 0
		for _, a := range st.Active {
			if a {
				nUp++
			}
		}
		if nUp < 3 {
			t.Fatalf("stage %d: %d active below MinActive 3", k, nUp)
		}
	}
	if tr.ConvergedAt < 0 {
		t.Fatal("TFT did not converge under mild churn")
	}
	// The minimum can only travel along live links, but it can never
	// increase: the converged CW is the global minimum as long as node 4
	// was ever connected — with JoinProb 0.5 over 30 stages it is.
	if tr.ConvergedCW != 12 {
		t.Fatalf("converged to %d under churn, want the global minimum 12", tr.ConvergedCW)
	}
}

func TestEngineWithoutChurnHasNilActive(t *testing.T) {
	g := line5()
	eng, err := NewEngine(g, tftStrategies([]int{30, 30, 30, 30, 30}), stageSim(1e6))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	for k, st := range tr.Stages {
		if st.Active != nil {
			t.Fatalf("stage %d has an Active mask without churn", k)
		}
	}
}

// A departed node must not observe or be observed: its TFT state freezes
// while it is away, so it cannot drag the network while absent.
func TestChurnDepartedNodeIsInvisible(t *testing.T) {
	g := &fixedGraph{adj: [][]int{{1}, {0, 2}, {1}}}
	strats := []core.Strategy{
		core.TFT{Initial: 50},
		core.TFT{Initial: 50},
		core.TFT{Initial: 10}, // the low CW that would normally spread
	}
	eng, err := NewEngine(g, strats, stageSim(1e6))
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 leaves immediately and never returns (LeaveProb ~1 via 0.99,
	// JoinProb 0); with MinActive 2 the other two stay.
	eng = eng.WithChurn(ChurnConfig{Seed: 8, LeaveProb: 0.99, JoinProb: 0, MinActive: 2})
	tr, err := eng.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	// Find a stage where node 2 is away; after it, node 1 must not have
	// adopted 10 unless node 2 was present in an earlier stage.
	awayFrom := -1
	for k, st := range tr.Stages {
		if !st.Active[2] {
			awayFrom = k
			break
		}
	}
	if awayFrom < 0 {
		t.Skip("churn stream never removed node 2; seed needs adjusting")
	}
	final := tr.FinalProfile()
	if awayFrom == 0 && final[1] == 10 {
		t.Fatal("node 1 adopted the CW of a node that was never present")
	}
}

package multihop

import (
	"reflect"
	"testing"

	"selfishmac/internal/phy"
)

// cloneSimResult snapshots a simulator-owned result for comparison.
func cloneSimResult(r *SimResult) *SimResult {
	out := *r
	out.Nodes = append([]NodeStats(nil), r.Nodes...)
	return &out
}

// TestDifferentialSimulatorMatchesSimulate pins the reusable lifecycle
// against the one-shot entry point: for every static differential config
// and a sweep of seeds, Reset(seed)+Run on one simulator must equal a
// fresh Simulate.
func TestDifferentialSimulatorMatchesSimulate(t *testing.T) {
	for _, tc := range diffCases(t) {
		if tc.cfg.MobilityEvery > 0 {
			continue // mobility is one-shot only
		}
		t.Run(tc.name, func(t *testing.T) {
			sim, err := NewSimulator(tc.topo(t), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for seed := tc.cfg.Seed; seed < tc.cfg.Seed+4; seed++ {
				ref := tc.cfg
				ref.Seed = seed
				want, err := Simulate(tc.topo(t), ref)
				if err != nil {
					t.Fatal(err)
				}
				sim.Reset(seed)
				got, err := sim.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: simulator diverged from Simulate:\nsim:      %+v\nsimulate: %+v",
						seed, got, want)
				}
			}
		})
	}
}

// SetCW must behave exactly like building a fresh simulator with the new
// profile — the quasi-optimality sweep depends on this.
func TestSimulatorSetCW(t *testing.T) {
	nw := randomNetwork(t, 20, 300, 31)
	cfg := simCfg(phy.RTSCTS, uniformCW(64, 20), 1e6, 1)
	sim, err := NewSimulator(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{32, 116, 64} {
		profile := uniformCW(w, 20)
		if err := sim.SetCW(profile); err != nil {
			t.Fatal(err)
		}
		sim.Reset(7)
		got, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		ref := cfg
		ref.CW = profile
		ref.Seed = 7
		want, err := Simulate(nw, ref)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("w=%d: SetCW simulator diverged from fresh Simulate", w)
		}
	}
	if err := sim.SetCW(uniformCW(32, 19)); err == nil {
		t.Fatal("SetCW accepted a wrong-length profile")
	}
	if err := sim.SetCW(uniformCW(0, 20)); err == nil {
		t.Fatal("SetCW accepted a zero window")
	}
}

// Reconfigure must behave exactly like building a fresh simulator with
// the new config on the same network — the engine pool swaps whole
// configs (duration, timing, CW, seed) through it at a fixed topology.
func TestDifferentialSimulatorReconfigure(t *testing.T) {
	nw := randomNetwork(t, 30, 300, 37)
	sim, err := NewSimulator(nw, simCfg(phy.RTSCTS, uniformCW(64, 30), 1e6, 1))
	if err != nil {
		t.Fatal(err)
	}
	configs := []SimConfig{
		simCfg(phy.RTSCTS, uniformCW(32, 30), 5e5, 2),
		simCfg(phy.Basic, uniformCW(116, 30), 1e6, 3),
		simCfg(phy.RTSCTS, []int{8, 64, 16, 128, 32, 8, 64, 16, 128, 32, 8, 64, 16, 128, 32, 8, 64, 16, 128, 32, 8, 64, 16, 128, 32, 8, 64, 16, 128, 32}, 2e5, 4),
	}
	for ci, cfg := range configs {
		if err := sim.Reconfigure(cfg); err != nil {
			t.Fatal(err)
		}
		got, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		want, err := Simulate(nw, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("config %d: reconfigured simulator diverged from fresh Simulate", ci)
		}
	}
	bad := simCfg(phy.RTSCTS, uniformCW(32, 30), 1e6, 5)
	bad.MobilityEvery = 1e5
	if err := sim.Reconfigure(bad); err == nil {
		t.Fatal("Reconfigure accepted a mobile config")
	}
	if err := sim.Reconfigure(simCfg(phy.RTSCTS, uniformCW(32, 29), 1e6, 6)); err == nil {
		t.Fatal("Reconfigure accepted a wrong-length profile")
	}
}

// Reconfigure at a fixed shape is the pooled-engine hot path: zero
// allocations, even when the duration changes between configs.
func TestSimulatorReconfigureAllocationFree(t *testing.T) {
	nw := randomNetwork(t, 50, 180, 11)
	cfgA := simCfg(phy.RTSCTS, uniformCW(116, 50), 5e5, 1)
	cfgB := simCfg(phy.RTSCTS, uniformCW(58, 50), 8e5, 2)
	sim, err := NewSimulator(nw, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	flip := false
	if allocs := testing.AllocsPerRun(5, func() {
		cfg := cfgA
		if flip {
			cfg = cfgB
		}
		flip = !flip
		if err := sim.Reconfigure(cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Reconfigure+Run allocated %.1f objects per run, want 0", allocs)
	}
}

// The simulator must not retain the caller's CW slice.
func TestSimulatorCopiesConfig(t *testing.T) {
	nw := &fixedGraph{adj: [][]int{{1}, {0, 2}, {1}}}
	cw := []int{16, 32, 16}
	sim, err := NewSimulator(nw, simCfg(phy.RTSCTS, cw, 1e6, 3))
	if err != nil {
		t.Fatal(err)
	}
	sim.Reset(3)
	r, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := cloneSimResult(r)
	cw[0] = 1 // caller clobbers its slice
	sim.Reset(3)
	got, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("simulator result changed when the caller mutated its CW slice")
	}
}

// Mobility must be rejected at construction, not discovered mid-run.
func TestSimulatorRejectsMobility(t *testing.T) {
	nw := randomNetwork(t, 10, 300, 5)
	cfg := simCfg(phy.RTSCTS, uniformCW(32, 10), 1e6, 1)
	cfg.MobilityEvery = 1e5
	if _, err := NewSimulator(nw, cfg); err == nil {
		t.Fatal("NewSimulator accepted a mobile config")
	}
}

// The acceptance criterion: post-construction, Reset+Run — and SetCW with
// a same-length profile — performs zero allocations. This pins the fix for
// the fast-engine allocation regression (Simulate paid 12 allocs / 277 KB
// per call for buffers and the adjacency snapshot).
func TestSimulatorSteadyStateAllocationFree(t *testing.T) {
	nw := randomNetwork(t, 50, 180, 11)
	cfg := simCfg(phy.RTSCTS, uniformCW(116, 50), 5e5, 1)
	sim, err := NewSimulator(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(0)
	if allocs := testing.AllocsPerRun(5, func() {
		seed++
		sim.Reset(seed)
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Reset+Run allocated %.1f objects per run, want 0", allocs)
	}
	profiles := [][]int{uniformCW(58, 50), uniformCW(116, 50)}
	flip := 0
	if allocs := testing.AllocsPerRun(5, func() {
		flip = 1 - flip
		if err := sim.SetCW(profiles[flip]); err != nil {
			t.Fatal(err)
		}
		seed++
		sim.Reset(seed)
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("SetCW+Reset+Run allocated %.1f objects per run, want 0", allocs)
	}
}

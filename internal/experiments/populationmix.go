package experiments

import (
	"context"
	"fmt"
	"strings"

	"selfishmac/internal/core"
	"selfishmac/internal/phy"
	"selfishmac/internal/plot"
)

// PopulationMix (A8) plays the paper's reconciliation with its ref [2]
// (Cagalj et al.: "even a small population of selfish nodes leads to
// network collapse") as a dynamic: k myopic deviators among n−k TFT
// players. With TFT retaliation, a single myopic player already drags the
// network to its deviation CW — confirming ref [2] for *short-sighted*
// populations — while zero myopic players (all long-sighted TFT) sustain
// the efficient NE, the paper's headline. The table sweeps k and reports
// the converged CW and the global payoff retention.
func PopulationMix(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const n = 10
	g, err := core.NewGame(core.DefaultConfig(n, phy.Basic))
	if err != nil {
		return nil, err
	}
	ne, err := g.FindEfficientNE()
	if err != nil {
		return nil, err
	}
	myopic, err := g.ShortSightedBest(ne, 0, 1)
	if err != nil {
		return nil, err
	}

	tb := plot.Table{
		Title: fmt.Sprintf("Population mix: k myopic deviators (Ws=%d) among %d players (Wc*=%d)",
			myopic.WBest, n, ne.WStar),
		Headers: []string{"k myopic", "converged CW", "global payoff retention", "collapsed"},
	}
	rep := &Report{ID: "A8", Title: "Population mix"}
	var ks, retentions []float64
	for _, k := range []int{0, 1, 2, 5, n} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		strats := make([]core.Strategy, n)
		for i := range strats {
			if i < k {
				strats[i] = core.Constant{W: myopic.WBest, Label: "myopic"}
			} else {
				strats[i] = core.TFT{Initial: ne.WStar}
			}
		}
		eng, err := core.NewEngine(g, strats, core.WithStopOnConvergence(2))
		if err != nil {
			return nil, err
		}
		tr, err := eng.Run(50)
		if err != nil {
			return nil, err
		}
		last := tr.Stages[len(tr.Stages)-1]
		var global float64
		for _, u := range last.UtilityRates {
			global += u
		}
		retention := global / (float64(n) * ne.UStar)
		collapsed := tr.ConvergedCW == myopic.WBest && k > 0
		tb.MustAddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%d", tr.ConvergedCW),
			fmt.Sprintf("%.3f", retention), fmt.Sprintf("%v", collapsed))
		rep.Metric(fmt.Sprintf("k%d_converged_cw", k), float64(tr.ConvergedCW))
		rep.Metric(fmt.Sprintf("k%d_retention", k), retention)
		ks = append(ks, float64(k))
		retentions = append(retentions, retention)
	}
	var text strings.Builder
	text.WriteString(tb.Render())
	text.WriteString("\nreading: one myopic player suffices to collapse the TFT network to its\n")
	text.WriteString("deviation CW — exactly ref [2]'s finding — while an all-long-sighted\n")
	text.WriteString("population sustains the efficient NE, the paper's headline result.\n")
	rep.Text = text.String()
	var csv strings.Builder
	if err := plot.WriteCSV(&csv, []string{"k", "retention"}, ks, retentions); err != nil {
		return nil, err
	}
	rep.Artifacts = append(rep.Artifacts, Artifact{Name: "a8_population_mix.csv", Content: csv.String()})
	return rep, nil
}

package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"selfishmac/internal/core"
	"selfishmac/internal/multihop"
	"selfishmac/internal/phy"
	"selfishmac/internal/plot"
	"selfishmac/internal/rng"
	"selfishmac/internal/stats"
	"selfishmac/internal/topology"
)

// paperTopoConfig returns the Section VII topology for s: the paper's
// 100-node layout, with the area grown by sqrt(n/100) when the node
// count is raised above 100 so density — and hence mean degree — stays
// at the paper's operating point instead of collapsing the larger
// population into a single collision domain.
func paperTopoConfig(s Settings, stream string) topology.Config {
	cfg := topology.PaperConfig(rng.DeriveSeed(s.Seed, stream, 0))
	cfg.N = s.MultihopNodes
	if s.MultihopNodes > 100 {
		scale := math.Sqrt(float64(s.MultihopNodes) / 100)
		cfg.Width *= scale
		cfg.Height *= scale
	}
	return cfg
}

// MultihopQuasiOptimality reproduces Section VII.B: the paper's 100-node
// mobile scenario (1000x1000 m, 250 m range, random waypoint at up to
// 5 m/s). It computes each node's local efficient-NE CW, the TFT-converged
// Wm = min_i W_i, and measures how close operating at Wm comes to the best
// common operating point — per node and globally. The paper reports
// Wm = 26, per-node >= 96% and global within 3% of optimal.
func MultihopQuasiOptimality(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	nw, err := topology.New(paperTopoConfig(s, "M1.topology"))
	if err != nil {
		return nil, err
	}
	// Warm the random-waypoint model up so the snapshot samples its
	// stationary distribution (center-concentrated) rather than the
	// uniform initial placement — this is what a mid-run observation of
	// the paper's 1000 s mobile simulation sees, and it removes the
	// artificially isolated border nodes of the t = 0 layout.
	if err := nw.Step(300); err != nil {
		return nil, err
	}
	sel, err := multihop.NewLocalCWSelector(core.DefaultConfig(2, phy.RTSCTS))
	if err != nil {
		return nil, err
	}
	profile, err := multihop.LocalCWProfile(nw, sel)
	if err != nil {
		return nil, err
	}
	wm := multihop.ConvergedCW(profile)
	adj := nw.AdjacencyLists()
	_, stages, converged := multihop.TFTConverge(adj, profile, 10*nw.N())

	// Cross-check Theorem 3 dynamically: run the stage-based multi-hop
	// engine with TFT players from the same initial profile and verify it
	// reaches the same Wm.
	strats := make([]core.Strategy, nw.N())
	for i := range strats {
		strats[i] = core.TFT{Initial: profile[i]}
	}
	eng, err := multihop.NewEngine(nw, strats, multihop.DefaultSimConfig(2e6, rng.DeriveSeed(s.Seed, "M1.engine", 0)))
	if err != nil {
		return nil, err
	}
	dynTrace, err := eng.WithStopWindow(2).Run(10 * nw.N())
	if err != nil {
		return nil, err
	}

	minReps, maxReps, relCI := s.replicateBounds()
	if minReps < s.MultihopReplicas {
		minReps = s.MultihopReplicas
	}
	if maxReps < minReps {
		maxReps = minReps
	}
	res, err := multihop.MeasureQuasiOptimalityContext(ctx, nw, multihop.QuasiOptConfig{
		Sim:              multihop.DefaultSimConfig(s.MultihopSimTime, rng.DeriveSeed(s.Seed, "M1.sweep", 0)),
		Wm:               wm,
		SweepMultipliers: []float64{0.4, 0.6, 0.8, 1.25, 1.6, 2.2, 3},
		Replicas:         minReps,
		MaxReplicas:      maxReps,
		RelCITarget:      relCI,
		Workers:          s.workerCount(),
	})
	if err != nil {
		return nil, err
	}
	sweepReps := 0
	maxCI := 0.0
	for i := range res.SweptCWs {
		sweepReps += res.RepsPerCW[i]
		if res.GlobalCI95PerCW[i] > maxCI {
			maxCI = res.GlobalCI95PerCW[i]
		}
	}

	tb := plot.Table{
		Title:   "Section VII.B: multi-hop quasi-optimality",
		Headers: []string{"quantity", "value", "paper"},
	}
	tb.MustAddRow("nodes", fmt.Sprintf("%d", nw.N()), "100")
	tb.MustAddRow("mean degree", fmt.Sprintf("%.1f", nw.MeanDegree()), "-")
	tb.MustAddRow("connected snapshot", fmt.Sprintf("%v", nw.Connected()), "connected")
	tb.MustAddRow("converged CW (Wm)", fmt.Sprintf("%d", wm), "26")
	tb.MustAddRow("TFT stages to converge", fmt.Sprintf("%d (converged=%v)", stages, converged), "-")
	tb.MustAddRow("dynamic-engine converged CW", fmt.Sprintf("%d (stage %d)", dynTrace.ConvergedCW, dynTrace.ConvergedAt), "= Wm")
	tb.MustAddRow("min per-node payoff ratio", fmt.Sprintf("%.3f", res.MinPerNodeRatio), ">= 0.96")
	tb.MustAddRow("mean per-node payoff ratio", fmt.Sprintf("%.3f", res.MeanPerNodeRatio), "-")
	tb.MustAddRow("median per-node payoff ratio", fmt.Sprintf("%.3f", stats.Median(res.PerNodeRatio)), "-")
	tb.MustAddRow("global payoff ratio", fmt.Sprintf("%.3f", res.GlobalRatio), ">= 0.97")
	tb.MustAddRow("best uniform CW in sweep", fmt.Sprintf("%d", res.BestGlobalW), "-")
	tb.MustAddRow("sweep replications (total)", fmt.Sprintf("%d over %d CWs", sweepReps, len(res.SweptCWs)), "-")
	tb.MustAddRow("max global CI95 half-width", fmt.Sprintf("%.4g", maxCI), "-")

	rep := &Report{ID: "M1", Title: "Multi-hop quasi-optimality", Text: tb.Render()}
	rep.Metric("wm", float64(wm))
	rep.Metric("tft_stages", float64(stages))
	rep.Metric("dynamic_converged_cw", float64(dynTrace.ConvergedCW))
	rep.Metric("min_per_node_ratio", res.MinPerNodeRatio)
	rep.Metric("mean_per_node_ratio", res.MeanPerNodeRatio)
	rep.Metric("median_per_node_ratio", stats.Median(res.PerNodeRatio))
	rep.Metric("global_ratio", res.GlobalRatio)
	rep.Metric("best_global_w", float64(res.BestGlobalW))
	rep.Metric("mean_degree", nw.MeanDegree())
	rep.Metric("sweep_reps_total", float64(sweepReps))
	rep.Metric("sweep_ci95_max", maxCI)

	// Per-node ratio CSV.
	idx := make([]float64, len(res.PerNodeRatio))
	for i := range idx {
		idx[i] = float64(i)
	}
	var csv strings.Builder
	if err := plot.WriteCSV(&csv, []string{"node", "payoff_ratio"}, idx, res.PerNodeRatio); err != nil {
		return nil, err
	}
	rep.Artifacts = append(rep.Artifacts, Artifact{Name: "m1_per_node_ratio.csv", Content: csv.String()})

	// Per-CW sweep CSV: reps spent and CI reached at every operating point.
	ws := make([]float64, len(res.SweptCWs))
	reps := make([]float64, len(res.SweptCWs))
	for i, w := range res.SweptCWs {
		ws[i] = float64(w)
		reps[i] = float64(res.RepsPerCW[i])
	}
	var sweepCSV strings.Builder
	if err := plot.WriteCSV(&sweepCSV, []string{"w", "reps", "global_ci95"},
		ws, reps, res.GlobalCI95PerCW); err != nil {
		return nil, err
	}
	rep.Artifacts = append(rep.Artifacts, Artifact{Name: "m1_sweep.csv", Content: sweepCSV.String()})
	return rep, nil
}

// HiddenNodeInvariance reproduces the Section VI.A approximation check:
// the hidden-node loss fraction (1 − p_hn) is roughly independent of the
// common CW value when the network is large and CW is not too small.
func HiddenNodeInvariance(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	nw, err := topology.New(paperTopoConfig(s, "M2.topology"))
	if err != nil {
		return nil, err
	}
	if err := nw.Step(300); err != nil { // RWP stationary snapshot
		return nil, err
	}
	cws := []int{8, 16, 26, 40, 64, 104, 160}
	fracs, err := multihop.PHNSweepContext(ctx, nw, multihop.DefaultSimConfig(s.MultihopSimTime, rng.DeriveSeed(s.Seed, "M2.phn", 0)), cws, s.workerCount())
	if err != nil {
		return nil, err
	}
	tb := plot.Table{
		Title:   "Section VI.A: hidden-node loss fraction vs common CW",
		Headers: []string{"CW", "hidden loss fraction", "p_hn"},
	}
	xs := make([]float64, len(cws))
	for i, w := range cws {
		xs[i] = float64(w)
		tb.MustAddRow(fmt.Sprintf("%d", w), fmt.Sprintf("%.4f", fracs[i]), fmt.Sprintf("%.4f", 1-fracs[i]))
	}
	rep := &Report{ID: "M2", Title: "Hidden-node factor invariance", Text: tb.Render()}
	// The invariance metric: spread of p_hn across the sweep, excluding
	// the smallest CW values the paper itself exempts.
	tail := fracs[2:]
	lo, hi := stats.MinMax(tail)
	rep.Metric("phn_min", 1-hi)
	rep.Metric("phn_max", 1-lo)
	rep.Metric("phn_spread", hi-lo)
	var csv strings.Builder
	if err := plot.WriteCSV(&csv, []string{"cw", "hidden_fraction"}, xs, fracs); err != nil {
		return nil, err
	}
	rep.Artifacts = append(rep.Artifacts, Artifact{Name: "m2_phn.csv", Content: csv.String()})
	return rep, nil
}

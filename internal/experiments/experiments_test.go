package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestSettingsValidation(t *testing.T) {
	if err := DefaultSettings().Validate(); err != nil {
		t.Errorf("default settings invalid: %v", err)
	}
	if err := QuickSettings().Validate(); err != nil {
		t.Errorf("quick settings invalid: %v", err)
	}
	bad := QuickSettings()
	bad.SingleHopSimTime = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sim time accepted")
	}
	bad = QuickSettings()
	bad.MultihopReplicas = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero replicas accepted")
	}
	bad = QuickSettings()
	bad.FigurePoints = 2
	if err := bad.Validate(); err == nil {
		t.Error("tiny figure accepted")
	}
	bad = QuickSettings()
	bad.MultihopNodes = 1
	if err := bad.Validate(); err == nil {
		t.Error("single multihop node accepted")
	}
}

func TestReportMetricHelpers(t *testing.T) {
	var r Report
	r.Metric("b", 2)
	r.Metric("a", 1)
	s := r.MetricsSummary()
	if !strings.Contains(s, "a = 1") || !strings.Contains(s, "b = 2") {
		t.Fatalf("summary = %q", s)
	}
	if strings.Index(s, "a = 1") > strings.Index(s, "b = 2") {
		t.Fatal("metrics not sorted")
	}
}

func TestAllRegistryShape(t *testing.T) {
	rs := All()
	if len(rs) != 22 {
		t.Fatalf("registry has %d experiments, want 22", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if r.ID == "" || r.Name == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate experiment ID %s", r.ID)
		}
		seen[r.ID] = true
	}
	for _, id := range []string{"T1", "T2", "T3", "F2", "F3", "M1", "M2", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "R1", "D1", "D2", "D3", "D4", "X1"} {
		if !seen[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func TestTable1(t *testing.T) {
	rep, err := Table1(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"8184 bits", "1 Mbit/s", "8980 us", "8612 us", "9536 us", "416 us"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	if rep.Metrics["tc_rtscts_us"] != 416 {
		t.Errorf("tc_rtscts_us = %g", rep.Metrics["tc_rtscts_us"])
	}
}

func TestTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	rep, err := Table2(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	// Theory column tracks the paper within 5% (basic access).
	for _, n := range []int{5, 20, 50} {
		key := metricKeyPrefix(n)
		if rel := rep.Metrics[key+"rel_err_theory_vs_paper"]; rel > 0.05 {
			t.Errorf("n=%d: theory vs paper rel err %.3f", n, rel)
		}
		// Simulated mean near the theory value (flat peak + short sim:
		// generous 25% tolerance at quick settings).
		theory := rep.Metrics[key+"theory_wc"]
		sim := rep.Metrics[key+"sim_mean"]
		if math.Abs(sim-theory)/theory > 0.25 {
			t.Errorf("n=%d: sim mean %.1f far from theory %.0f", n, sim, theory)
		}
	}
	if len(rep.Artifacts) == 0 || !strings.Contains(rep.Artifacts[0].Content, "paper_wc") {
		t.Error("missing CSV artifact")
	}
}

func TestTable3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	rep, err := Table3(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	// The paper-matching cells: n=20 and n=50.
	for _, n := range []int{20, 50} {
		key := metricKeyPrefix(n)
		if rel := rep.Metrics[key+"rel_err_theory_vs_paper"]; rel > 0.08 {
			t.Errorf("n=%d: theory vs paper rel err %.3f", n, rel)
		}
	}
	// The documented n=5 deviation must be recorded, not hidden.
	if rel := rep.Metrics["n5_rel_err_theory_vs_paper"]; rel < 0.2 {
		t.Errorf("n=5 rel err %.3f unexpectedly small; DESIGN.md documents ~0.45", rel)
	}
}

func metricKeyPrefix(n int) string {
	switch n {
	case 5:
		return "n5_"
	case 20:
		return "n20_"
	default:
		return "n50_"
	}
}

func TestFigure2Quick(t *testing.T) {
	rep, err := Figure2(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "global payoff U/C") {
		t.Error("figure missing axis label")
	}
	if len(rep.Artifacts) != 4 {
		t.Fatalf("expected 3 analytic + 1 simulated CSVs, got %d", len(rep.Artifacts))
	}
	// The simulated overlay must track the analytic curve.
	if rel := rep.Metrics["n20_sim_vs_analytic_maxrel"]; rel > 0.15 {
		t.Errorf("simulated curve deviates %.3f from analytic", rel)
	}
	// Peak payoffs: U/C grows with... actually per the paper the global
	// payoff curves for different n have comparable heights; just check
	// positivity and that each peak sits near that population's Wc*.
	for _, n := range []int{5, 20, 50} {
		peak := rep.Metrics[metricKeyPrefix(n)+"peak_uc"]
		if peak <= 0 {
			t.Errorf("n=%d: peak U/C = %g", n, peak)
		}
		for _, f := range []float64{0.5, 2} {
			key := metricKeyPrefix(n) + "retention_" + trimFloat(f) + "x"
			ret := rep.Metrics[key]
			if ret <= 0.5 || ret > 1+1e-9 {
				t.Errorf("n=%d: retention at %gx = %g implausible", n, f, ret)
			}
		}
	}
}

func trimFloat(f float64) string {
	if f == 0.5 {
		return "0.5"
	}
	return "2"
}

func TestFigure3FlatterThanFigure2(t *testing.T) {
	s := QuickSettings()
	f2, err := Figure2(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	f3, err := Figure3(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline contrast: the RTS/CTS payoff is far less
	// sensitive to the CW value than basic access. Compare retention at
	// 2x the NE CW for n=20.
	if f3.Metrics["n20_retention_2x"] <= f2.Metrics["n20_retention_2x"] {
		t.Errorf("RTS/CTS retention %.3f not above basic %.3f",
			f3.Metrics["n20_retention_2x"], f2.Metrics["n20_retention_2x"])
	}
	if f3.Metrics["n20_retention_2x"] < 0.97 {
		t.Errorf("RTS/CTS plateau retention %.3f, expected near-flat (>= 0.97)", f3.Metrics["n20_retention_2x"])
	}
}

func TestMultihopQuasiOptimalityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("spatial simulation")
	}
	rep, err := MultihopQuasiOptimality(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["wm"] < 2 {
		t.Errorf("converged Wm = %g implausible", rep.Metrics["wm"])
	}
	if rep.Metrics["global_ratio"] < 0.75 || rep.Metrics["global_ratio"] > 1+1e-9 {
		t.Errorf("global ratio %.3f outside plausible range", rep.Metrics["global_ratio"])
	}
	if rep.Metrics["tft_stages"] < 1 {
		t.Errorf("TFT stages = %g", rep.Metrics["tft_stages"])
	}
	if len(rep.Artifacts) == 0 {
		t.Error("missing per-node CSV")
	}
}

func TestHiddenNodeInvarianceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("spatial simulation")
	}
	rep, err := HiddenNodeInvariance(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	// p_hn spread across moderate-to-large CW values should be small
	// (the paper's key approximation).
	if rep.Metrics["phn_spread"] > 0.08 {
		t.Errorf("p_hn spread %.4f too large for the independence approximation", rep.Metrics["phn_spread"])
	}
	if rep.Metrics["phn_min"] < 0.8 {
		t.Errorf("p_hn min %.4f suspiciously low under RTS/CTS", rep.Metrics["phn_min"])
	}
}

func TestSearchAlgorithmReport(t *testing.T) {
	rep, err := SearchAlgorithm(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	// Every environment/start must land on the payoff plateau.
	for k, v := range rep.Metrics {
		if strings.HasSuffix(k, "_payoff_ratio") && v < 0.95 {
			t.Errorf("%s = %.3f below plateau", k, v)
		}
	}
	if !strings.Contains(rep.Text, "lossy20") {
		t.Error("lossy environment missing from report")
	}
}

func TestShortSightedReport(t *testing.T) {
	rep, err := ShortSighted(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["myopic_gain_ratio"] <= 1 {
		t.Errorf("myopic gain ratio %.3f, want > 1", rep.Metrics["myopic_gain_ratio"])
	}
	if rep.Metrics["patient_gain_ratio"] > 1.01 {
		t.Errorf("patient gain ratio %.3f, want ~<= 1", rep.Metrics["patient_gain_ratio"])
	}
	if rep.Metrics["myopic_best_ws"] >= rep.Metrics["wcstar"] {
		t.Error("myopic deviator should undercut Wc*")
	}
	if len(rep.Artifacts) == 0 {
		t.Error("missing CSV")
	}
}

func TestMaliciousReport(t *testing.T) {
	rep, err := Malicious(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["m0_w1_paralyzed"] != 1 {
		t.Error("m=0, W=1 attack should paralyze the network")
	}
	if rep.Metrics["m6_w4_damage_frac"] <= 0 {
		t.Error("m=6, W=4 attack should cause damage")
	}
	if len(rep.Artifacts) != 2 {
		t.Errorf("expected 2 CSVs, got %d", len(rep.Artifacts))
	}
}

func TestLemmaChecksReport(t *testing.T) {
	rep, err := LemmaChecks(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"lemma1_violations_basic", "lemma4_violations_basic",
		"lemma1_violations_rtscts", "lemma4_violations_rtscts",
	} {
		if rep.Metrics[k] != 0 {
			t.Errorf("%s = %g, want 0", k, rep.Metrics[k])
		}
	}
}

func TestBackoffStageAblationReport(t *testing.T) {
	rep, err := BackoffStageAblation(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	// The NE must drift with m but only by a bounded fraction.
	if rep.Metrics["basic_wc_spread_frac"] <= 0 {
		t.Error("NE insensitive to m: suspicious")
	}
	if rep.Metrics["basic_wc_spread_frac"] > 0.25 {
		t.Errorf("NE spread across m = %.3f, larger than plausible", rep.Metrics["basic_wc_spread_frac"])
	}
	// Frozen backoff needs a larger initial CW to hit the same tau*.
	if rep.Metrics["basic_m0_wc"] <= rep.Metrics["basic_m8_wc"] {
		t.Errorf("m=0 Wc* %g should exceed m=8 Wc* %g", rep.Metrics["basic_m0_wc"], rep.Metrics["basic_m8_wc"])
	}
}

func TestCostTermAblationReport(t *testing.T) {
	rep, err := CostTermAblation(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	// RTS/CTS drifts far in CW yet loses almost nothing in payoff.
	if rep.Metrics["rtscts_n20_cw_drift"] < 0.15 {
		t.Errorf("RTS/CTS n=20 drift %.3f, expected substantial", rep.Metrics["rtscts_n20_cw_drift"])
	}
	for _, k := range []string{"basic_n20_payoff_gap", "rtscts_n20_payoff_gap"} {
		if gap := rep.Metrics[k]; gap < 0 || gap > 0.01 {
			t.Errorf("%s = %.5f, want within [0, 1%%]", k, gap)
		}
	}
}

func TestRateControlReport(t *testing.T) {
	rep, err := RateControl(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"basic", "rtscts"} {
		if rep.Metrics[mode+"_poa"] <= 1.1 {
			t.Errorf("%s: price of anarchy %.3f, expected a real tragedy", mode, rep.Metrics[mode+"_poa"])
		}
		if rep.Metrics[mode+"_tft_gain"] <= 1 {
			t.Errorf("%s: TFT gain %.3f, want > 1", mode, rep.Metrics[mode+"_tft_gain"])
		}
		if rep.Metrics[mode+"_l_ne"] <= rep.Metrics[mode+"_l_social"] {
			t.Errorf("%s: NE payload not above social optimum", mode)
		}
	}
}

func TestDetectionReport(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	rep, err := Detection(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["true_positive_rate"] < 0.99 {
		t.Errorf("true positive rate %.3f, want ~1", rep.Metrics["true_positive_rate"])
	}
	if rep.Metrics["false_positives_total"] > 1 {
		t.Errorf("false positives %.0f, want <= 1", rep.Metrics["false_positives_total"])
	}
}

func TestClosedLoopReport(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	rep, err := ClosedLoop(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	wc := rep.Metrics["wcstar"]
	// Plain TFT on estimates ratchets downward at both stage lengths
	// (the headline finding), and longer windows only slow the drift.
	if rep.Metrics["tft_60s_final_min_cw"] >= 0.95*wc {
		t.Errorf("TFT at 60 s did not ratchet: %g (Wc* %g)", rep.Metrics["tft_60s_final_min_cw"], wc)
	}
	if rep.Metrics["tft_10s_final_min_cw"] > rep.Metrics["tft_60s_final_min_cw"] {
		t.Errorf("shorter windows should drift at least as far: 10s %g vs 60s %g",
			rep.Metrics["tft_10s_final_min_cw"], rep.Metrics["tft_60s_final_min_cw"])
	}
	// GTFT stabilizes the NE at the paper's T = 10 s.
	if rep.Metrics["gtft_10s_final_min_cw"] < 0.9*wc {
		t.Errorf("GTFT at 10 s drifted to %g (Wc* %g)", rep.Metrics["gtft_10s_final_min_cw"], wc)
	}
}

func TestGTFTTradeoffReport(t *testing.T) {
	rep, err := GTFTTradeoff(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	// Larger windows react more slowly against a real cheater...
	if rep.Metrics["r01_beta0.8_lag"] >= rep.Metrics["r08_beta0.8_lag"] {
		t.Errorf("r0=8 lag %g not above r0=1 lag %g",
			rep.Metrics["r08_beta0.8_lag"], rep.Metrics["r01_beta0.8_lag"])
	}
	// ...and the slower reaction strictly helps the cheater.
	if rep.Metrics["r08_beta0.8_gain"] <= rep.Metrics["r01_beta0.8_gain"] {
		t.Errorf("longer lag gain %g not above shorter %g",
			rep.Metrics["r08_beta0.8_gain"], rep.Metrics["r01_beta0.8_gain"])
	}
	// A W/3 cheat is far outside any tested tolerance: every (r0, beta)
	// must eventually react.
	for _, r0 := range []int{1, 3, 5, 8} {
		if lag := rep.Metrics[fmt.Sprintf("r0%d_beta0.6_lag", r0)]; lag >= 40 {
			t.Errorf("r0=%d never reacted to a blatant cheat", r0)
		}
	}
}

func TestStreamingDetectionReport(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	rep, err := StreamingDetection(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	// Blatant cheaters are caught at every tolerance, within the first
	// couple of windows.
	for _, mix := range []string{"malicious", "shortsighted"} {
		for _, b := range []string{"b50", "b70", "b90"} {
			if tpr := rep.Metrics[mix+"_"+b+"_tpr"]; tpr < 0.999 {
				t.Errorf("%s %s TPR %.3f, want 1", mix, b, tpr)
			}
		}
		if lat := rep.Metrics[mix+"_b50_latency_slots"]; lat > 2*streamDetectWindow {
			t.Errorf("%s flagged only after %.0f slots", mix, lat)
		}
	}
	// The all-honest population stays essentially unflagged at the
	// paper-faithful tolerance, and loosening Beta toward 1 can only
	// raise the false-alarm rate.
	if fpr := rep.Metrics["honest_b50_fpr"]; fpr > 0.03 {
		t.Errorf("honest mix FPR %.4f at beta 0.5", fpr)
	}
	if rep.Metrics["honest_b90_fpr"] < rep.Metrics["honest_b50_fpr"] {
		t.Error("raising beta lowered the honest false-alarm rate")
	}
	// The intelligent cheater (just under Wc*) is only separable at high
	// Beta: its detection coverage must not decrease with the tolerance.
	if rep.Metrics["intelligent_b90_tpr"] < rep.Metrics["intelligent_b50_tpr"] {
		t.Error("intelligent-cheater TPR fell as beta rose")
	}
	if rep.Metrics["intelligent_b90_tpr"] <= 0 {
		t.Error("intelligent cheater never detected even at beta 0.9")
	}
	if len(rep.Artifacts) != 1 || !strings.Contains(rep.Artifacts[0].Content, "latency_slots") {
		t.Error("missing CSV artifact")
	}
}

func TestPopulationMixReport(t *testing.T) {
	rep, err := PopulationMix(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	// All-TFT populations hold the NE (retention 1).
	if rep.Metrics["k0_retention"] < 0.999 {
		t.Errorf("k=0 retention %.3f, want 1", rep.Metrics["k0_retention"])
	}
	// One myopic player already collapses the network to its Ws.
	if rep.Metrics["k1_converged_cw"] >= rep.Metrics["k0_converged_cw"] {
		t.Error("one myopic player did not drag the CW down")
	}
	if rep.Metrics["k1_retention"] >= 0.9 {
		t.Errorf("k=1 retention %.3f, expected substantial damage", rep.Metrics["k1_retention"])
	}
	// More myopic players cannot help.
	if rep.Metrics["k5_retention"] > rep.Metrics["k1_retention"]+0.05 {
		t.Error("more myopic players improved retention")
	}
}

func TestDelayAnalysisReport(t *testing.T) {
	rep, err := DelayAnalysis(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	// Delay at the NE grows with the population.
	if rep.Metrics["basic_n50_delay_at_ne_ms"] <= rep.Metrics["basic_n5_delay_at_ne_ms"] {
		t.Error("delay at NE should grow with n")
	}
	// The delay-minimizing CW can only be at most slightly better.
	for _, k := range []string{"basic_n20_", "rtscts_n20_"} {
		if rep.Metrics[k+"delay_min_ms"] > rep.Metrics[k+"delay_at_ne_ms"]+1e-9 {
			t.Errorf("%s: min delay above NE delay", k)
		}
		if ratio := rep.Metrics[k+"payoff_ratio_at_delay_min"]; ratio > 1+1e-9 || ratio < 0.5 {
			t.Errorf("%s: payoff ratio at delay-min CW = %.3f implausible", k, ratio)
		}
	}
}

func TestTFTConvergenceReport(t *testing.T) {
	rep, err := TFTConvergence(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["tft_converged_cw"] != rep.Metrics["tft_expected_min"] {
		t.Errorf("TFT converged to %g, expected min %g",
			rep.Metrics["tft_converged_cw"], rep.Metrics["tft_expected_min"])
	}
	if rep.Metrics["tft_converged_stage"] != 1 {
		t.Errorf("single-hop TFT should converge at stage 1, got %g", rep.Metrics["tft_converged_stage"])
	}
	// GTFT must hold dramatically better than TFT under noise.
	if rep.Metrics["noisy_gtft_final"] <= rep.Metrics["noisy_tft_final"] {
		t.Errorf("GTFT final %g not above TFT final %g",
			rep.Metrics["noisy_gtft_final"], rep.Metrics["noisy_tft_final"])
	}
}

func TestRobustnessReport(t *testing.T) {
	if testing.Short() {
		t.Skip("spatial simulation (churn section)")
	}
	rep, err := Robustness(context.Background(), QuickSettings())
	if err != nil {
		t.Fatal(err)
	}
	// The headline guarantee: within +/-2 of the fault-free NE at every
	// drop probability up to 0.3, never degraded (no budget configured).
	for _, key := range []string{"drop00_", "drop10_", "drop20_", "drop30_"} {
		if e := rep.Metrics[key+"abs_err"]; e > 2 {
			t.Errorf("%sabs_err = %g, want <= 2", key, e)
		}
		if rep.Metrics[key+"degraded"] != 0 {
			t.Errorf("%sdegraded set without a probe budget", key)
		}
	}
	// Median-of-3 must hold the NE under pure outlier noise too.
	for _, key := range []string{"noise00_", "noise10_", "noise20_", "noise30_"} {
		if e := rep.Metrics[key+"abs_err"]; e > 2 {
			t.Errorf("%sabs_err = %g, want <= 2", key, e)
		}
	}
	// Leader crash: the deputy finishes near the NE.
	if rep.Metrics["crash_failed_over"] != 1 {
		t.Error("leader crash scenario did not fail over")
	}
	if e := rep.Metrics["crash_abs_err"]; e > 2 {
		t.Errorf("crash_abs_err = %g, want <= 2", e)
	}
	// Probe budget: degraded best-so-far, not an error.
	if rep.Metrics["budget_degraded"] != 1 {
		t.Error("exhausted probe budget did not set Degraded")
	}
	if w := rep.Metrics["budget_found_w"]; w < 8 {
		t.Errorf("budget_found_w = %g below the starting CW", w)
	}
	// Churn: the churn-free run must converge; churn runs must at least
	// report their outcome (convergence is not guaranteed at high churn).
	if rep.Metrics["churn00_converged_at"] < 0 {
		t.Error("churn-free TFT run did not converge")
	}
	if len(rep.Artifacts) == 0 {
		t.Error("missing drop-sweep CSV artifact")
	}
}

// TestParallelMatchesSerial pins the determinism contract of the worker
// pools: every experiment must produce bit-identical reports (text,
// metrics, artifact bytes) at Workers=1 and Workers=4. Each parallel run
// writes only index-owned slots and draws from per-index derived seed
// streams, so worker count can only change wall-clock, never results.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			serial := QuickSettings()
			serial.Workers = 1
			parallel := QuickSettings()
			parallel.Workers = 4
			want, err := r.Run(context.Background(), serial)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			got, err := r.Run(context.Background(), parallel)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if got.Text != want.Text {
				t.Errorf("report text differs between Workers=1 and Workers=4")
			}
			if len(got.Metrics) != len(want.Metrics) {
				t.Fatalf("metric count %d != %d", len(got.Metrics), len(want.Metrics))
			}
			for k, v := range want.Metrics {
				if gv, ok := got.Metrics[k]; !ok || gv != v {
					t.Errorf("metric %s: parallel %v, serial %v", k, gv, v)
				}
			}
			if len(got.Artifacts) != len(want.Artifacts) {
				t.Fatalf("artifact count %d != %d", len(got.Artifacts), len(want.Artifacts))
			}
			for i := range want.Artifacts {
				if got.Artifacts[i].Name != want.Artifacts[i].Name {
					t.Errorf("artifact %d name %q != %q", i, got.Artifacts[i].Name, want.Artifacts[i].Name)
				}
				if got.Artifacts[i].Content != want.Artifacts[i].Content {
					t.Errorf("artifact %s bytes differ between worker counts", want.Artifacts[i].Name)
				}
			}
		})
	}
}

package experiments

import (
	"context"
	"testing"

	"selfishmac/internal/bianchi"
	"selfishmac/internal/core"
	"selfishmac/internal/phy"
)

// TestGridSweepHitsSolverCache pins the hoisting of game construction out
// of the per-grid-point loops: a payoff-curve sweep over one shared game
// must be answered entirely from the shared Bianchi solver cache on its
// second pass. A regression that rebuilds games (and thus re-solves) per
// grid point shows up as fresh cache misses here.
//
// The test reads the shared cache counters, so it must not run while
// another test in this package is solving concurrently — it stays
// non-parallel (sequential tests finish before t.Parallel ones resume).
func TestGridSweepHitsSolverCache(t *testing.T) {
	g, err := core.NewGame(core.DefaultConfig(20, phy.Basic))
	if err != nil {
		t.Fatal(err)
	}
	// Warm pass: populate the cache for every grid point.
	if _, _, err := payoffCurve(context.Background(), g, 512, 40, 2); err != nil {
		t.Fatal(err)
	}
	hitsBefore, missesBefore := bianchi.CacheStats()
	// Second pass over the same grid: all lookups, no new solves.
	if _, _, err := payoffCurve(context.Background(), g, 512, 40, 2); err != nil {
		t.Fatal(err)
	}
	hits, misses := bianchi.CacheStats()
	if misses != missesBefore {
		t.Fatalf("repeated grid sweep re-solved %d points; want every point served from the solver cache",
			misses-missesBefore)
	}
	if hits <= hitsBefore {
		t.Fatalf("repeated grid sweep recorded no cache hits (hits %d -> %d)", hitsBefore, hits)
	}
}

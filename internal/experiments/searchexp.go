package experiments

import (
	"context"
	"fmt"
	"strings"

	"selfishmac/internal/core"
	"selfishmac/internal/phy"
	"selfishmac/internal/plot"
	"selfishmac/internal/rng"
	"selfishmac/internal/search"
)

// newSeededRand is a tiny helper shared by experiments needing ad-hoc
// randomness decoupled from simulator seeds.
func newSeededRand(seed uint64) *rng.Source { return rng.New(seed) }

// SearchAlgorithm reproduces Section V.C: the distributed efficient-NE
// search from several starting points, in three environments (exact
// payoffs, 20% message loss, simulator-measured payoffs — the latter only
// via the accelerated variant to keep probe counts sane), comparing the
// paper's unit-step walk with the accelerated variant.
func SearchAlgorithm(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, err := core.NewGame(core.DefaultConfig(10, phy.RTSCTS))
	if err != nil {
		return nil, err
	}
	ne, err := g.FindEfficientNE()
	if err != nil {
		return nil, err
	}
	tb := plot.Table{
		Title:   fmt.Sprintf("Section V.C: NE search (n=10, RTS/CTS, exact NE=%d)", ne.WStar),
		Headers: []string{"environment", "variant", "start W0", "found", "probes", "payoff vs peak"},
	}
	rep := &Report{ID: "A1", Title: "Efficient-NE search"}
	record := func(envName, variant string, w0 int, res search.Result) error {
		u, err := g.UniformUtilityRate(res.W)
		if err != nil {
			return err
		}
		tb.MustAddRow(envName, variant, fmt.Sprintf("%d", w0), fmt.Sprintf("%d", res.W),
			fmt.Sprintf("%d", res.ProbeCount()), fmt.Sprintf("%.4f", u/ne.UStar))
		key := fmt.Sprintf("%s_%s_w0_%d", envName, variant, w0)
		rep.Metric(key+"_found", float64(res.W))
		rep.Metric(key+"_probes", float64(res.ProbeCount()))
		rep.Metric(key+"_payoff_ratio", u/ne.UStar)
		return nil
	}

	starts := []int{4, 16, ne.WStar + 40}
	for _, w0 := range starts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		env, err := search.NewAnalyticEnv(g, 0, w0)
		if err != nil {
			return nil, err
		}
		res, err := search.Run(env, 0, w0, search.Options{WMax: g.Config().WMax})
		if err != nil {
			return nil, err
		}
		if err := record("exact", "paper", w0, res); err != nil {
			return nil, err
		}
		envF, err := search.NewAnalyticEnv(g, 0, w0)
		if err != nil {
			return nil, err
		}
		fast, err := search.AcceleratedSearch(envF, 0, w0, search.Options{WMax: g.Config().WMax})
		if err != nil {
			return nil, err
		}
		if err := record("exact", "accel", w0, fast); err != nil {
			return nil, err
		}
	}

	// Lossy broadcast medium.
	for _, w0 := range []int{8, ne.WStar + 40} {
		inner, err := search.NewAnalyticEnv(g, 0, w0)
		if err != nil {
			return nil, err
		}
		lossy, err := search.NewLossyEnv(inner, 0.2, rng.DeriveSeed(s.Seed, "A1.lossy", w0))
		if err != nil {
			return nil, err
		}
		res, err := search.Run(lossy, 0, w0, search.Options{WMax: g.Config().WMax})
		if err != nil {
			return nil, err
		}
		if err := record("lossy20", "paper", w0, res); err != nil {
			return nil, err
		}
	}

	rep.Text = tb.Render()
	return rep, nil
}

// TFTConvergence reproduces the Section IV convergence claims: TFT drives
// heterogeneous initial CWs to the minimum within one stage in a
// single-hop network; GTFT's tolerance absorbs observation noise that
// makes plain TFT ratchet downward.
func TFTConvergence(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, err := core.NewGame(core.DefaultConfig(6, phy.Basic))
	if err != nil {
		return nil, err
	}
	ne, err := g.FindEfficientNE()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "A5", Title: "TFT/GTFT convergence"}
	var text []string

	// (a) Plain TFT from heterogeneous starts.
	r := newSeededRand(rng.DeriveSeed(s.Seed, "A5.start", 0))
	initial := make([]core.Strategy, 6)
	minW := int(^uint(0) >> 1)
	for i := range initial {
		w0 := ne.WStar/2 + r.Intn(ne.WStar)
		if w0 < minW {
			minW = w0
		}
		initial[i] = core.TFT{Initial: w0}
	}
	eng, err := core.NewEngine(g, initial)
	if err != nil {
		return nil, err
	}
	tr, err := eng.Run(8)
	if err != nil {
		return nil, err
	}
	text = append(text, fmt.Sprintf("TFT heterogeneous start: converged at stage %d to CW %d (expected min %d)",
		tr.ConvergedAt, tr.ConvergedCW, minW))
	rep.Metric("tft_converged_stage", float64(tr.ConvergedAt))
	rep.Metric("tft_converged_cw", float64(tr.ConvergedCW))
	rep.Metric("tft_expected_min", float64(minW))

	// (b) TFT vs GTFT under observation noise.
	noise := func(src *rng.Source, w int) int {
		return int(float64(w) * src.UniformRange(0.85, 1.15))
	}
	runNoisy := func(strats []core.Strategy) (int, error) {
		e, err := core.NewEngine(g, strats, core.WithNoise(noise), core.WithSeed(rng.DeriveSeed(s.Seed, "A5.noise", 0)))
		if err != nil {
			return 0, err
		}
		trace, err := e.Run(50)
		if err != nil {
			return 0, err
		}
		final := trace.FinalProfile()
		minW := final[0]
		for _, w := range final {
			if w < minW {
				minW = w
			}
		}
		return minW, nil
	}
	tftStrats := make([]core.Strategy, 6)
	gtftStrats := make([]core.Strategy, 6)
	for i := range tftStrats {
		tftStrats[i] = core.TFT{Initial: ne.WStar}
		gtftStrats[i] = core.GTFT{Initial: ne.WStar, R0: 5, Beta: 0.8}
	}
	tftFinal, err := runNoisy(tftStrats)
	if err != nil {
		return nil, err
	}
	gtftFinal, err := runNoisy(gtftStrats)
	if err != nil {
		return nil, err
	}
	text = append(text, fmt.Sprintf("under ±15%% observation noise, 50 stages: TFT drifts to CW %d; GTFT(r0=5, β=0.8) holds at CW %d (start %d)",
		tftFinal, gtftFinal, ne.WStar))
	rep.Metric("noisy_tft_final", float64(tftFinal))
	rep.Metric("noisy_gtft_final", float64(gtftFinal))
	rep.Metric("wcstar", float64(ne.WStar))

	// (c) GTFT tolerance sweep: how much noise each (r0, beta) absorbs.
	tb := plot.Table{
		Title:   "GTFT tolerance sweep (final min CW after 50 noisy stages, start Wc*)",
		Headers: []string{"r0", "beta", "final CW", "held"},
	}
	for _, r0 := range []int{1, 3, 5} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, beta := range []float64{0.95, 0.9, 0.8} {
			strats := make([]core.Strategy, 6)
			for i := range strats {
				strats[i] = core.GTFT{Initial: ne.WStar, R0: r0, Beta: beta}
			}
			final, err := runNoisy(strats)
			if err != nil {
				return nil, err
			}
			held := final >= ne.WStar*9/10
			tb.MustAddRow(fmt.Sprintf("%d", r0), fmt.Sprintf("%g", beta),
				fmt.Sprintf("%d", final), fmt.Sprintf("%v", held))
			rep.Metric(fmt.Sprintf("gtft_r0%d_beta%g_final", r0, beta), float64(final))
		}
	}
	text = append(text, tb.Render())
	rep.Text = strings.Join(text, "\n")
	return rep, nil
}

package experiments

import (
	"context"
	"errors"
	"testing"
)

// TestRunnersHonorCancelledContext: every registered runner returns an
// error wrapping context.Canceled (and no report) under a dead context,
// so the service and CLI layers can rely on prompt, uniform cancellation.
func TestRunnersHonorCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, r := range All() {
		if r.ID == "T1" {
			continue // static table, no sweeps: completes instantly by design
		}
		r := r
		t.Run(r.ID, func(t *testing.T) {
			rep, err := r.Run(ctx, QuickSettings())
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s: err = %v, want context.Canceled", r.ID, err)
			}
			if rep != nil {
				t.Fatalf("%s: got a report despite cancellation", r.ID)
			}
		})
	}
}

// TestByID finds runners case-insensitively and rejects unknown IDs.
func TestByID(t *testing.T) {
	if r, ok := ByID("t2"); !ok || r.ID != "T2" {
		t.Fatalf("ByID(t2) = %+v, %v", r, ok)
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) succeeded")
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII), plus the numerical analyses behind its
// analytical sections (short-sighted and malicious players, the NE search
// algorithm, TFT/GTFT convergence, and the lemma orderings).
//
// Each experiment returns a Report: a human-readable text rendering, CSV
// artifacts with the full series, and a flat metric map that EXPERIMENTS.md
// summarizes against the paper's numbers. cmd/experiments writes them all
// under results/.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
)

// Artifact is one named output file (content already rendered).
type Artifact struct {
	// Name is the file name (relative, e.g. "table2.csv").
	Name string
	// Content is the full file body.
	Content string
}

// Report is one experiment's complete output.
type Report struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "T2", "F3").
	ID string
	// Title describes the experiment.
	Title string
	// Text is the human-readable rendering (tables/charts).
	Text string
	// Artifacts carries CSV (and other) outputs.
	Artifacts []Artifact
	// Metrics holds the headline numbers keyed by stable names.
	Metrics map[string]float64
}

// Metric records one value, creating the map on first use.
func (r *Report) Metric(key string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[key] = v
}

// MetricsSummary renders the metrics sorted by key. It is safe on a nil
// report and on a report with no metrics (both render empty), so callers
// can print it unconditionally after a partial failure.
func (r *Report) MetricsSummary() string {
	if r == nil || len(r.Metrics) == 0 {
		return ""
	}
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s = %.6g\n", k, r.Metrics[k])
	}
	return b.String()
}

// Settings tunes how heavy the simulations behind the reports are. The
// zero value is unusable; use DefaultSettings (paper-faithful, minutes of
// CPU) or QuickSettings (seconds, for tests).
type Settings struct {
	// SingleHopSimTime is the per-operating-point simulated time for the
	// single-hop NE tables, in microseconds (paper: 1000 s).
	SingleHopSimTime float64
	// MultihopSimTime is the per-operating-point simulated time of the
	// spatial simulator, in microseconds.
	MultihopSimTime float64
	// MultihopReplicas averages spatial runs over this many seeds.
	MultihopReplicas int
	// MultihopNodes scales the Section VII.B scenario (paper: 100).
	MultihopNodes int
	// FigurePoints is the number of CW values per figure series.
	FigurePoints int
	// Seed drives every stochastic component. Per-component streams are
	// derived from it with rng.DeriveSeed, so no two components share a
	// stream regardless of how many points or replicas they draw.
	Seed uint64
	// Workers bounds the goroutines each experiment may fan out over its
	// independent sweep points, figure series and replicas. 0 (the
	// default) means GOMAXPROCS. Results are bit-identical at every
	// worker count, including 1 (fully serial).
	Workers int
	// ReplicateMin and ReplicateMax bound the replication schedule of
	// every simulation-backed experiment point (internal/replicate):
	// each point runs at least ReplicateMin independent seeds and — when
	// ReplicateRelCI is set and ReplicateMax allows — keeps replicating
	// in deterministic rounds until the CI95 half-width of its headline
	// metric drops below ReplicateRelCI of the mean. Zero values fall
	// back to one replication, preserving older hand-built Settings.
	ReplicateMin int
	ReplicateMax int
	// ReplicateRelCI is the relative CI95 target for adaptive stopping.
	// Zero disables adaptive stopping (every point runs ReplicateMin).
	ReplicateRelCI float64
}

// workerCount resolves the Workers setting (0 → GOMAXPROCS) for the
// pool helpers in this package and in internal/multihop.
func (s Settings) workerCount() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// replicateBounds resolves the replication schedule, clamping unset
// fields to the single-run schedule older hand-built Settings expect.
func (s Settings) replicateBounds() (minReps, maxReps int, relCI float64) {
	minReps, maxReps, relCI = s.ReplicateMin, s.ReplicateMax, s.ReplicateRelCI
	if minReps < 1 {
		minReps = 1
	}
	if maxReps < minReps {
		maxReps = minReps
	}
	return minReps, maxReps, relCI
}

// DefaultSettings reproduces the paper's scales (1000 s single-hop
// simulations, the 100-node mobile scenario).
func DefaultSettings() Settings {
	return Settings{
		SingleHopSimTime: 1000e6,
		MultihopSimTime:  60e6,
		MultihopReplicas: 3,
		MultihopNodes:    100,
		FigurePoints:     60,
		Seed:             1,
		ReplicateMin:     3,
		ReplicateMax:     8,
		ReplicateRelCI:   0.02,
	}
}

// QuickSettings is a fast profile for tests and smoke runs.
func QuickSettings() Settings {
	return Settings{
		SingleHopSimTime: 30e6,
		MultihopSimTime:  4e6,
		MultihopReplicas: 1,
		MultihopNodes:    40,
		FigurePoints:     25,
		Seed:             1,
		ReplicateMin:     2,
		ReplicateMax:     3,
		ReplicateRelCI:   0.1,
	}
}

// Validate rejects unusable settings.
func (s Settings) Validate() error {
	if s.SingleHopSimTime <= 0 || s.MultihopSimTime <= 0 {
		return fmt.Errorf("experiments: non-positive sim times %g/%g", s.SingleHopSimTime, s.MultihopSimTime)
	}
	if s.MultihopReplicas < 1 {
		return fmt.Errorf("experiments: replicas %d < 1", s.MultihopReplicas)
	}
	if s.MultihopNodes < 2 {
		return fmt.Errorf("experiments: %d multihop nodes < 2", s.MultihopNodes)
	}
	if s.FigurePoints < 5 {
		return fmt.Errorf("experiments: %d figure points < 5", s.FigurePoints)
	}
	if s.ReplicateMin < 0 || s.ReplicateMax < 0 || s.ReplicateRelCI < 0 {
		return fmt.Errorf("experiments: negative replication settings %d/%d/%g",
			s.ReplicateMin, s.ReplicateMax, s.ReplicateRelCI)
	}
	return nil
}

// Runner is a named experiment entry point. Run observes ctx: a
// cancelled context makes the runner return promptly with an error
// wrapping ctx.Err() (checked between sweep points and at replication
// round boundaries), never a partially rendered report.
type Runner struct {
	ID   string
	Name string
	Run  func(ctx context.Context, s Settings) (*Report, error)
}

// ByID returns the runner with the given ID (case-insensitive), or false.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}

// All lists every experiment in DESIGN.md order.
func All() []Runner {
	return []Runner{
		{"T1", "Table I: network parameters", Table1},
		{"T2", "Table II: efficient NE, basic access", Table2},
		{"T3", "Table III: efficient NE, RTS/CTS", Table3},
		{"F2", "Figure 2: global payoff vs CW, basic", Figure2},
		{"F3", "Figure 3: global payoff vs CW, RTS/CTS", Figure3},
		{"M1", "Multi-hop quasi-optimality (Section VII.B)", MultihopQuasiOptimality},
		{"M2", "Hidden-node factor invariance (Section VI.A)", HiddenNodeInvariance},
		{"A1", "Efficient-NE search algorithm (Section V.C)", SearchAlgorithm},
		{"A2", "Short-sighted players (Section V.D)", ShortSighted},
		{"A3", "Malicious players (Section V.E)", Malicious},
		{"A4", "Lemma 1 & 4 orderings", LemmaChecks},
		{"A5", "TFT/GTFT convergence", TFTConvergence},
		{"A6", "Ablation: maximum backoff stage m", BackoffStageAblation},
		{"A7", "Ablation: transmission-cost term e", CostTermAblation},
		{"A8", "Population mix: myopic deviators among TFT players", PopulationMix},
		{"A9", "Robustness: resilient NE search under faults", Robustness},
		{"R1", "Extension: packet-size (rate-control) game", RateControl},
		{"D1", "Extension: CW misbehavior detection", Detection},
		{"D2", "Closed loop: TFT driven by estimated observations", ClosedLoop},
		{"D3", "GTFT tolerance vs reaction-time trade-off", GTFTTradeoff},
		{"D4", "Streaming detection over population mixes", StreamingDetection},
		{"X1", "Section VIII: access delay at the NE", DelayAnalysis},
	}
}

package experiments

import (
	"context"
	"fmt"
	"strings"

	"selfishmac/internal/core"
	"selfishmac/internal/detect"
	"selfishmac/internal/macsim"
	"selfishmac/internal/phy"
	"selfishmac/internal/plot"
	"selfishmac/internal/ratecontrol"
	"selfishmac/internal/rng"
)

// BackoffStageAblation (A6) quantifies how the unstated-in-the-paper
// maximum backoff stage m moves the efficient NE. It explains the small
// residual gaps in Tables II/III: the paper never states its m, and the
// NE drifts a few percent across plausible values.
func BackoffStageAblation(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tb := plot.Table{
		Title:   "Ablation: efficient NE vs maximum backoff stage m (n=20)",
		Headers: []string{"mode", "m", "theory Wc*", "tau*", "per-node utility"},
	}
	rep := &Report{ID: "A6", Title: "Backoff-stage ablation"}
	var mcol, wcol []float64
	for _, mode := range []phy.AccessMode{phy.Basic, phy.RTSCTS} {
		for _, m := range []int{0, 2, 4, 6, 8} {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cfg := core.DefaultConfig(20, mode)
			cfg.PHY.MaxBackoffStage = m
			g, err := core.NewGame(cfg)
			if err != nil {
				return nil, err
			}
			ne, err := g.FindPaperNE()
			if err != nil {
				return nil, err
			}
			tb.MustAddRow(modeKey(mode), fmt.Sprintf("%d", m), fmt.Sprintf("%d", ne.WStar),
				fmt.Sprintf("%.5f", ne.TauStar), fmt.Sprintf("%.4g", ne.UStar))
			rep.Metric(fmt.Sprintf("%s_m%d_wc", modeKey(mode), m), float64(ne.WStar))
			if mode == phy.Basic {
				mcol = append(mcol, float64(m))
				wcol = append(wcol, float64(ne.WStar))
			}
		}
	}
	rep.Text = tb.Render()
	// With m = 0 the chain never doubles its window, so hitting the same
	// optimal tau needs a larger initial CW than with deep backoff; the
	// spread across m quantifies the sensitivity to the paper's unstated m.
	w0, w8 := rep.Metrics["basic_m0_wc"], rep.Metrics["basic_m8_wc"]
	hi := w0
	if w8 > hi {
		hi = w8
	}
	spread := w0 - w8
	if spread < 0 {
		spread = -spread
	}
	rep.Metric("basic_wc_spread_frac", spread/hi)
	var csv strings.Builder
	if err := plot.WriteCSV(&csv, []string{"m", "wc_basic"}, mcol, wcol); err != nil {
		return nil, err
	}
	rep.Artifacts = append(rep.Artifacts, Artifact{Name: "a6_backoff_stage.csv", Content: csv.String()})
	return rep, nil
}

// CostTermAblation (A7) measures the effect of the transmission cost e on
// the NE location and on the attained payoff. It is the quantitative
// backing for using the paper's e << g route for the tables: the exact
// argmax can sit far from the theory point in CW (especially RTS/CTS)
// while the payoff difference is negligible.
func CostTermAblation(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tb := plot.Table{
		Title:   "Ablation: e<<g theory NE vs exact-utility NE",
		Headers: []string{"mode", "n", "theory Wc*", "exact Wc*", "CW drift", "payoff gap"},
	}
	rep := &Report{ID: "A7", Title: "Cost-term ablation"}
	for _, mode := range []phy.AccessMode{phy.Basic, phy.RTSCTS} {
		for _, n := range tablePopulations {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			g, err := core.NewGame(core.DefaultConfig(n, mode))
			if err != nil {
				return nil, err
			}
			theory, err := g.FindPaperNE()
			if err != nil {
				return nil, err
			}
			exact, err := g.FindEfficientNE()
			if err != nil {
				return nil, err
			}
			drift := float64(exact.WStar-theory.WStar) / float64(theory.WStar)
			gap := 1 - theory.UStar/exact.UStar
			tb.MustAddRow(modeKey(mode), fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", theory.WStar), fmt.Sprintf("%d", exact.WStar),
				fmt.Sprintf("%+.1f%%", 100*drift), fmt.Sprintf("%.4f%%", 100*gap))
			rep.Metric(fmt.Sprintf("%s_n%d_cw_drift", modeKey(mode), n), drift)
			rep.Metric(fmt.Sprintf("%s_n%d_payoff_gap", modeKey(mode), n), gap)
		}
	}
	rep.Text = tb.Render()
	return rep, nil
}

// RateControl (R1) runs the paper's suggested extension: the packet-size
// game obtained by redefining the utility function. It reports the social
// optimum, the one-shot selfish NE, the price of anarchy, and the payoff
// TFT sustains — the same "selfishness is fine if long-sighted" story in
// a second strategy space.
func RateControl(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tb := plot.Table{
		Title:   "Extension: packet-size game (n=10, CW at the CW-game NE)",
		Headers: []string{"mode", "L social", "L one-shot NE", "escalation", "price of anarchy", "u(TFT)/u(NE)"},
	}
	rep := &Report{ID: "R1", Title: "Rate-control extension"}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, tc := range []struct {
		mode phy.AccessMode
		w    int
	}{{phy.Basic, 336}, {phy.RTSCTS, 47}} {
		g, err := ratecontrol.NewGame(ratecontrol.DefaultConfig(10, tc.w, tc.mode))
		if err != nil {
			return nil, err
		}
		out, err := g.Analyze()
		if err != nil {
			return nil, err
		}
		uTFT, err := g.TFTOutcome()
		if err != nil {
			return nil, err
		}
		tftGain := uTFT / out.UNE
		tb.MustAddRow(modeKey(tc.mode),
			fmt.Sprintf("%.0f", out.LSocial), fmt.Sprintf("%.0f", out.LNE),
			fmt.Sprintf("%.2f", out.Escalation), fmt.Sprintf("%.3f", out.PriceOfAnarchy),
			fmt.Sprintf("%.3f", tftGain))
		rep.Metric(modeKey(tc.mode)+"_l_social", out.LSocial)
		rep.Metric(modeKey(tc.mode)+"_l_ne", out.LNE)
		rep.Metric(modeKey(tc.mode)+"_escalation", out.Escalation)
		rep.Metric(modeKey(tc.mode)+"_poa", out.PriceOfAnarchy)
		rep.Metric(modeKey(tc.mode)+"_tft_gain", tftGain)
	}
	rep.Text = tb.Render()
	return rep, nil
}

// Detection (D1) exercises the CW-observation machinery the paper's TFT
// assumes (its ref [3]): estimate peers' CWs from promiscuous counts in
// the simulator and detect undercutting across cheat severities and
// measurement windows.
func Detection(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := phy.Default()
	const n, expected = 10, 336
	tb := plot.Table{
		Title:   fmt.Sprintf("Extension: CW misbehavior detection (n=%d, expected CW=%d, beta=0.8)", n, expected),
		Headers: []string{"cheat CW", "window (s)", "cheater flagged", "false positives", "cheater est. CW"},
	}
	rep := &Report{ID: "D1", Title: "CW detection"}
	det := detect.Detector{ExpectedCW: expected, Beta: 0.8, MinSlots: 100}
	var truePos, cases int
	var falsePos int
	for _, cheat := range []int{expected / 8, expected / 4, expected / 2} {
		for _, window := range []float64{10e6, 50e6, s.SingleHopSimTime} {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cw := make([]int, n)
			for i := range cw {
				cw[i] = expected
			}
			cw[0] = cheat
			res, err := macsim.Run(macsim.Config{
				Timing:   p.MustTiming(phy.Basic),
				MaxStage: p.MaxBackoffStage,
				CW:       cw,
				Duration: window,
				Seed:     rng.DeriveSeed(s.Seed, "D1", cases),
				Gain:     1,
				Cost:     0.01,
			})
			if err != nil {
				return nil, err
			}
			verdicts, err := det.Inspect(detect.FromSimResult(res), p.MaxBackoffStage)
			if err != nil {
				return nil, err
			}
			fp := 0
			for _, v := range verdicts[1:] {
				if v.Misbehaving {
					fp++
				}
			}
			cases++
			if verdicts[0].Misbehaving {
				truePos++
			}
			falsePos += fp
			tb.MustAddRow(fmt.Sprintf("%d", cheat), fmt.Sprintf("%.0f", window/1e6),
				fmt.Sprintf("%v", verdicts[0].Misbehaving), fmt.Sprintf("%d", fp),
				fmt.Sprintf("%.0f", verdicts[0].CW))
		}
	}
	rep.Text = tb.Render()
	rep.Metric("true_positive_rate", float64(truePos)/float64(cases))
	rep.Metric("false_positives_total", float64(falsePos))
	return rep, nil
}

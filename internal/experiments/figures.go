package experiments

import (
	"fmt"
	"math"
	"strings"

	"selfishmac/internal/core"
	"selfishmac/internal/macsim"
	"selfishmac/internal/phy"
	"selfishmac/internal/plot"
	"selfishmac/internal/stats"
)

// figure computes the paper's Figures 2/3: normalized global payoff U/C as
// a function of the common CW value, one series per population size.
func figure(id, title string, mode phy.AccessMode, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	chart := plot.Chart{
		Title:  title,
		XLabel: "contention window W (log scale)",
		YLabel: "global payoff U/C",
		LogX:   true,
		Width:  76,
		Height: 22,
	}
	rep := &Report{ID: id, Title: title}
	for _, n := range tablePopulations {
		g, err := core.NewGame(core.DefaultConfig(n, mode))
		if err != nil {
			return nil, err
		}
		ne, err := g.FindPaperNE()
		if err != nil {
			return nil, err
		}
		// Log-spaced CW grid covering the peak comfortably.
		wMax := ne.WStar * 8
		if wMax < 64 {
			wMax = 64
		}
		xs, ys, err := payoffCurve(g, wMax, s.FigurePoints)
		if err != nil {
			return nil, err
		}
		chart.Add(fmt.Sprintf("n=%d (Wc*=%d)", n, ne.WStar), xs, ys)
		var csv strings.Builder
		if err := plot.WriteCSV(&csv, []string{"w", "uc"}, xs, ys); err != nil {
			return nil, err
		}
		rep.Artifacts = append(rep.Artifacts, Artifact{
			Name:    fmt.Sprintf("%s_n%d.csv", strings.ToLower(id), n),
			Content: csv.String(),
		})

		// Headline metrics: peak location/value and plateau flatness
		// (payoff retention at 0.5x and 2x the NE CW).
		peakW, peakU := curvePeak(xs, ys)
		rep.Metric(fmt.Sprintf("n%d_peak_w", n), peakW)
		rep.Metric(fmt.Sprintf("n%d_peak_uc", n), peakU)
		for _, f := range []float64{0.5, 2} {
			u, err := g.NormalizedGlobalPayoff(int(float64(ne.WStar)*f + 0.5))
			if err != nil {
				return nil, err
			}
			rep.Metric(fmt.Sprintf("n%d_retention_%gx", n, f), u/peakU)
		}
	}
	// Overlay a simulated U/C series for n = 20: the event-driven
	// simulator independently traces the same curve, validating the
	// analytic figure end to end. U/C = (global payoff rate)·σ/g.
	simXs, simYs, maxRel, err := simulatedCurve(mode, 20, s)
	if err != nil {
		return nil, err
	}
	chart.Add("n=20 simulated", simXs, simYs)
	rep.Metric("n20_sim_vs_analytic_maxrel", maxRel)
	var simCSV strings.Builder
	if err := plot.WriteCSV(&simCSV, []string{"w", "uc_sim"}, simXs, simYs); err != nil {
		return nil, err
	}
	rep.Artifacts = append(rep.Artifacts, Artifact{
		Name:    strings.ToLower(id) + "_n20_sim.csv",
		Content: simCSV.String(),
	})

	text, err := chart.Render()
	if err != nil {
		return nil, err
	}
	rep.Text = text
	return rep, nil
}

// simulatedCurve measures U/C at ~9 log-spaced CW values with the MAC
// simulator and returns the series plus the maximum relative deviation
// from the analytic curve.
func simulatedCurve(mode phy.AccessMode, n int, s Settings) (xs, ys []float64, maxRel float64, err error) {
	p := phy.Default()
	tm, err := p.Timing(mode)
	if err != nil {
		return nil, nil, 0, err
	}
	g, err := core.NewGame(core.DefaultConfig(n, mode))
	if err != nil {
		return nil, nil, 0, err
	}
	ne, err := g.FindPaperNE()
	if err != nil {
		return nil, nil, 0, err
	}
	duration := s.SingleHopSimTime
	if duration > 200e6 {
		duration = 200e6 // the curve needs shape, not 1000 s per point
	}
	seen := map[int]bool{}
	for i := 0; i < 9; i++ {
		f := float64(i) / 8
		w := int(math.Round(math.Pow(float64(ne.WStar*6), f)))
		if w < 1 || seen[w] {
			continue
		}
		seen[w] = true
		res, err := macsim.RunUniform(tm, p.MaxBackoffStage, w, n, duration, 1, 0.01, s.Seed+uint64(100+i))
		if err != nil {
			return nil, nil, 0, err
		}
		uc := res.GlobalPayoffRate() * tm.Slot / 1.0
		xs = append(xs, float64(w))
		ys = append(ys, uc)
		analytic, err := g.NormalizedGlobalPayoff(w)
		if err != nil {
			return nil, nil, 0, err
		}
		if rel := stats.RelErr(uc, analytic); rel > maxRel {
			maxRel = rel
		}
	}
	return xs, ys, maxRel, nil
}

// payoffCurve evaluates U/C on a log grid of CW values in [1, wMax]. The
// different series lengths per n are intentional (each spans its own
// peak), so the CSV writes per-series x columns.
func payoffCurve(g *core.Game, wMax, points int) (xs, ys []float64, err error) {
	seen := map[int]bool{}
	for i := 0; i < points; i++ {
		f := float64(i) / float64(points-1)
		w := int(math.Round(math.Pow(float64(wMax), f)))
		if w < 1 {
			w = 1
		}
		if seen[w] {
			continue
		}
		seen[w] = true
		u, err := g.NormalizedGlobalPayoff(w)
		if err != nil {
			return nil, nil, err
		}
		xs = append(xs, float64(w))
		ys = append(ys, u)
	}
	return xs, ys, nil
}

func curvePeak(xs, ys []float64) (x, y float64) {
	x, y = xs[0], ys[0]
	for i := range xs {
		if ys[i] > y {
			x, y = xs[i], ys[i]
		}
	}
	return x, y
}

// Figure2 reproduces Figure 2 (basic access).
func Figure2(s Settings) (*Report, error) {
	return figure("F2", "Figure 2: global payoff vs CW value, basic case", phy.Basic, s)
}

// Figure3 reproduces Figure 3 (RTS/CTS).
func Figure3(s Settings) (*Report, error) {
	return figure("F3", "Figure 3: global payoff vs CW value, RTS/CTS case", phy.RTSCTS, s)
}

package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"selfishmac/internal/core"
	"selfishmac/internal/macsim"
	"selfishmac/internal/phy"
	"selfishmac/internal/plot"
	"selfishmac/internal/replicate"
	"selfishmac/internal/stats"
)

// figureSeries is one population's analytic curve with its rendered CSV
// and headline metrics, produced independently per index so the series
// can be computed in parallel and assembled in deterministic order.
type figureSeries struct {
	label   string
	xs, ys  []float64
	csvName string
	csv     string
	metrics []struct {
		key string
		v   float64
	}
}

// figure computes the paper's Figures 2/3: normalized global payoff U/C as
// a function of the common CW value, one series per population size.
func figure(ctx context.Context, id, title string, mode phy.AccessMode, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	chart := plot.Chart{
		Title:  title,
		XLabel: "contention window W (log scale)",
		YLabel: "global payoff U/C",
		LogX:   true,
		Width:  76,
		Height: 22,
	}
	rep := &Report{ID: id, Title: title}
	workers := s.workerCount()
	// Hoist game construction (and the Bianchi model each game owns) out
	// of the fan-out: the per-grid-point work below is pure solver-cache
	// lookups on these shared games.
	games := make([]*core.Game, len(tablePopulations))
	nes := make([]core.NE, len(tablePopulations))
	for k, n := range tablePopulations {
		g, err := core.NewGame(core.DefaultConfig(n, mode))
		if err != nil {
			return nil, err
		}
		ne, err := g.FindPaperNE()
		if err != nil {
			return nil, err
		}
		games[k], nes[k] = g, ne
	}
	series := make([]figureSeries, len(tablePopulations))
	err := forEachIndex(ctx, len(tablePopulations), workers, func(k int) error {
		n := tablePopulations[k]
		out := &series[k]
		g, ne := games[k], nes[k]
		// Log-spaced CW grid covering the peak comfortably.
		wMax := ne.WStar * 8
		if wMax < 64 {
			wMax = 64
		}
		xs, ys, err := payoffCurve(ctx, g, wMax, s.FigurePoints, workers)
		if err != nil {
			return err
		}
		out.label = fmt.Sprintf("n=%d (Wc*=%d)", n, ne.WStar)
		out.xs, out.ys = xs, ys
		var csv strings.Builder
		if err := plot.WriteCSV(&csv, []string{"w", "uc"}, xs, ys); err != nil {
			return err
		}
		out.csvName = fmt.Sprintf("%s_n%d.csv", strings.ToLower(id), n)
		out.csv = csv.String()

		// Headline metrics: peak location/value and plateau flatness
		// (payoff retention at 0.5x and 2x the NE CW).
		peakW, peakU, ok := curvePeak(xs, ys)
		if !ok {
			return fmt.Errorf("%s: payoff curve for n=%d: %w", id, n, errEmptySeries)
		}
		addMetric := func(key string, v float64) {
			out.metrics = append(out.metrics, struct {
				key string
				v   float64
			}{key, v})
		}
		addMetric(fmt.Sprintf("n%d_peak_w", n), peakW)
		addMetric(fmt.Sprintf("n%d_peak_uc", n), peakU)
		for _, f := range []float64{0.5, 2} {
			u, err := g.NormalizedGlobalPayoff(int(float64(ne.WStar)*f + 0.5))
			if err != nil {
				return err
			}
			addMetric(fmt.Sprintf("n%d_retention_%gx", n, f), u/peakU)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, sr := range series {
		chart.Add(sr.label, sr.xs, sr.ys)
		rep.Artifacts = append(rep.Artifacts, Artifact{Name: sr.csvName, Content: sr.csv})
		for _, m := range sr.metrics {
			rep.Metric(m.key, m.v)
		}
	}
	// Overlay a simulated U/C series for n = 20: the event-driven
	// simulator independently traces the same curve, validating the
	// analytic figure end to end. U/C = (global payoff rate)·σ/g. Each
	// operating point is a replicated measurement (internal/replicate)
	// with its CI95 half-width and replication count in the artifact.
	simIdx := -1
	for k, n := range tablePopulations {
		if n == 20 {
			simIdx = k
		}
	}
	if simIdx < 0 {
		return nil, fmt.Errorf("%s: simulated overlay: population 20 missing", id)
	}
	sim, err := simulatedCurve(ctx, id, mode, games[simIdx], 20, s)
	if err != nil {
		return nil, err
	}
	if len(sim.xs) == 0 {
		return nil, fmt.Errorf("%s: simulated overlay: %w", id, errEmptySeries)
	}
	chart.Add("n=20 simulated", sim.xs, sim.ys)
	rep.Metric("n20_sim_vs_analytic_maxrel", sim.maxRel)
	rep.Metric("n20_sim_ci95_max", sim.maxCI)
	rep.Metric("n20_sim_reps_total", float64(sim.repsTotal))
	var simCSV strings.Builder
	if err := plot.WriteCSV(&simCSV, []string{"w", "uc_sim", "ci95", "reps"},
		sim.xs, sim.ys, sim.cis, sim.reps); err != nil {
		return nil, err
	}
	rep.Artifacts = append(rep.Artifacts, Artifact{
		Name:    strings.ToLower(id) + "_n20_sim.csv",
		Content: simCSV.String(),
	})

	text, err := chart.Render()
	if err != nil {
		return nil, err
	}
	rep.Text = text
	return rep, nil
}

// simCurve is the simulated overlay: per operating point the mean U/C,
// its CI95 half-width and the replication count spent on it.
type simCurve struct {
	xs, ys, cis, reps []float64
	maxRel, maxCI     float64
	repsTotal         int
}

// ucReplicator adapts a reusable macsim.Engine to replicate.Replicator:
// one replication is Reset(seed)+Run, reported as normalized U/C.
type ucReplicator struct {
	eng   *macsim.Engine
	scale float64 // Slot/Gain: payoff rate -> U/C
}

func (r ucReplicator) Replicate(seed uint64, out []float64) error {
	r.eng.Reset(seed)
	out[0] = r.eng.Run().GlobalPayoffRate() * r.scale
	return nil
}

// simulatedCurve measures U/C at ~9 log-spaced CW values with the MAC
// simulator and returns the series plus the maximum relative deviation
// from the analytic curve (computed on the replicated means). The
// simulator runs with the *configured* gain and cost (it used to
// hardcode g = 1, e = 0.01, silently diverging from the analytic overlay
// for any non-default config). Each operating point is replicated over
// its own derived seed stream by internal/replicate — reusable engines,
// deterministic at any worker count, adaptive precision when the
// settings enable it.
func simulatedCurve(ctx context.Context, id string, mode phy.AccessMode, g *core.Game, n int, s Settings) (*simCurve, error) {
	p := phy.Default()
	tm, err := p.Timing(mode)
	if err != nil {
		return nil, err
	}
	cfg := g.Config()
	ne, err := g.FindPaperNE()
	if err != nil {
		return nil, err
	}
	duration := s.SingleHopSimTime
	if duration > 200e6 {
		duration = 200e6 // the curve needs shape, not 1000 s per point
	}
	seen := map[int]bool{}
	var grid []int
	for i := 0; i < 9; i++ {
		f := float64(i) / 8
		w := int(math.Round(math.Pow(float64(ne.WStar*6), f)))
		if w < 1 || seen[w] {
			continue
		}
		seen[w] = true
		grid = append(grid, w)
	}
	minReps, maxReps, relCI := s.replicateBounds()
	out := &simCurve{
		xs:   make([]float64, len(grid)),
		ys:   make([]float64, len(grid)),
		cis:  make([]float64, len(grid)),
		reps: make([]float64, len(grid)),
	}
	for i, w := range grid {
		rres, err := replicate.RunContext(ctx, replicate.Plan{
			BaseSeed:     s.Seed,
			Stream:       fmt.Sprintf("%s.sim.w%d", id, w),
			Metrics:      1,
			RelTolerance: relCI,
			MinReps:      minReps,
			MaxReps:      maxReps,
			Workers:      s.workerCount(),
		}, func() (replicate.Replicator, error) {
			eng, err := macsim.NewEngine(macsim.Config{
				Timing:   tm,
				MaxStage: p.MaxBackoffStage,
				CW:       uniformCW(w, n),
				Duration: duration,
				Gain:     cfg.Gain,
				Cost:     cfg.Cost,
			})
			if err != nil {
				return nil, err
			}
			return ucReplicator{eng: eng, scale: tm.Slot / cfg.Gain}, nil
		})
		if err != nil {
			return nil, err
		}
		uc := rres.Mean(0)
		out.xs[i] = float64(w)
		out.ys[i] = uc
		out.cis[i] = rres.CI95(0)
		out.reps[i] = float64(rres.Reps)
		out.repsTotal += rres.Reps
		if out.cis[i] > out.maxCI {
			out.maxCI = out.cis[i]
		}
		analytic, err := g.NormalizedGlobalPayoff(w)
		if err != nil {
			return nil, err
		}
		if rel := stats.RelErr(uc, analytic); rel > out.maxRel {
			out.maxRel = rel
		}
	}
	return out, nil
}

// uniformCW builds an n-node uniform CW profile.
func uniformCW(w, n int) []int {
	cw := make([]int, n)
	for i := range cw {
		cw[i] = w
	}
	return cw
}

// payoffCurve evaluates U/C on a log grid of CW values in [1, wMax],
// fanning the independent solves over the worker pool. The different
// series lengths per n are intentional (each spans its own peak), so the
// CSV writes per-series x columns.
func payoffCurve(ctx context.Context, g *core.Game, wMax, points, workers int) (xs, ys []float64, err error) {
	seen := map[int]bool{}
	var grid []int
	for i := 0; i < points; i++ {
		f := float64(i) / float64(points-1)
		w := int(math.Round(math.Pow(float64(wMax), f)))
		if w < 1 {
			w = 1
		}
		if seen[w] {
			continue
		}
		seen[w] = true
		grid = append(grid, w)
	}
	xs = make([]float64, len(grid))
	ys = make([]float64, len(grid))
	// One fixed-point solve is microseconds of work; batch several per
	// pool task so dispatch overhead is amortized across the grid.
	const solveBatch = 8
	err = forEachChunk(ctx, len(grid), workers, solveBatch, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			u, err := g.NormalizedGlobalPayoff(grid[i])
			if err != nil {
				return err
			}
			xs[i] = float64(grid[i])
			ys[i] = u
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return xs, ys, nil
}

// errEmptySeries is the sentinel curvePeak reports through its ok result;
// figure() turns it into a proper error instead of the old panic.
var errEmptySeries = errors.New("experiments: empty series")

// curvePeak returns the (x, y) of the maximum y. ok is false — and both
// coordinates are NaN — when the series is empty; it used to panic.
func curvePeak(xs, ys []float64) (x, y float64, ok bool) {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN(), math.NaN(), false
	}
	x, y = xs[0], ys[0]
	for i := range xs {
		if ys[i] > y {
			x, y = xs[i], ys[i]
		}
	}
	return x, y, true
}

// Figure2 reproduces Figure 2 (basic access).
func Figure2(ctx context.Context, s Settings) (*Report, error) {
	return figure(ctx, "F2", "Figure 2: global payoff vs CW value, basic case", phy.Basic, s)
}

// Figure3 reproduces Figure 3 (RTS/CTS).
func Figure3(ctx context.Context, s Settings) (*Report, error) {
	return figure(ctx, "F3", "Figure 3: global payoff vs CW value, RTS/CTS case", phy.RTSCTS, s)
}

package experiments

import (
	"context"
	"fmt"
	"strings"

	"selfishmac/internal/core"
	"selfishmac/internal/macsim"
	"selfishmac/internal/phy"
	"selfishmac/internal/plot"
	"selfishmac/internal/rng"
	"selfishmac/internal/stats"
)

// paperTable2 and paperTable3 are the paper's published NE values.
var (
	paperTable2      = map[int]int{5: 76, 20: 336, 50: 879} // basic
	paperTable3      = map[int]int{5: 22, 20: 48, 50: 116}  // RTS/CTS
	tablePopulations = []int{5, 20, 50}
)

// Table1 renders the Table I parameter listing (a configuration check, not
// a measurement) and records the derived Ts/Tc values for both modes.
func Table1(_ context.Context, _ Settings) (*Report, error) {
	p := phy.Default()
	basic, err := p.Timing(phy.Basic)
	if err != nil {
		return nil, err
	}
	rts, err := p.Timing(phy.RTSCTS)
	if err != nil {
		return nil, err
	}
	tb := plot.Table{Title: "Table I: network parameters", Headers: []string{"parameter", "value"}}
	rows := [][2]string{
		{"packet size", "8184 bits"},
		{"MAC header", "272 bits"},
		{"PHY header", "128 bits"},
		{"ACK", "112 bits + PHY header"},
		{"RTS", "160 bits + PHY header"},
		{"CTS", "112 bits + PHY header"},
		{"channel bit rate", "1 Mbit/s"},
		{"sigma", "50 us"},
		{"SIFS", "28 us"},
		{"DIFS", "128 us"},
		{"g", "1"},
		{"e", "0.01"},
		{"T", "10 s"},
		{"delta", "0.9999"},
		{"derived Ts (basic)", fmt.Sprintf("%.0f us", basic.Ts)},
		{"derived Tc (basic)", fmt.Sprintf("%.0f us", basic.Tc)},
		{"derived Ts (rts/cts)", fmt.Sprintf("%.0f us", rts.Ts)},
		{"derived Tc (rts/cts)", fmt.Sprintf("%.0f us", rts.Tc)},
	}
	for _, r := range rows {
		tb.MustAddRow(r[0], r[1])
	}
	rep := &Report{ID: "T1", Title: "Table I", Text: tb.Render()}
	rep.Metric("ts_basic_us", basic.Ts)
	rep.Metric("tc_basic_us", basic.Tc)
	rep.Metric("ts_rtscts_us", rts.Ts)
	rep.Metric("tc_rtscts_us", rts.Tc)
	return rep, nil
}

// NERow is one population's row of Table II / Table III.
type NERow struct {
	N          int
	PaperWc    int     // the paper's published Wc*
	TheoryWc   int     // our FindPaperNE (e << g condition)
	ExactWc    int     // exact-utility argmax (includes the e-term)
	SimMean    float64 // mean over nodes of the payoff-maximizing common CW
	SimVar     float64 // variance of the same
	TheoryTau  float64
	Throughput float64
}

// neTable computes one NE table for the given access mode. Games (and
// the Bianchi models they own) and the mode's timing are built once,
// serially, before the fan-out — the per-grid-point simulator runs below
// only look up the shared solver cache. The three populations are
// independent, so they fan out over the worker pool; rows land in their
// slice slots, keeping the table order deterministic.
func neTable(ctx context.Context, id string, mode phy.AccessMode, paper map[int]int, s Settings) ([]NERow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tm, err := phy.Default().Timing(mode)
	if err != nil {
		return nil, err
	}
	games := make([]*core.Game, len(tablePopulations))
	for k, n := range tablePopulations {
		g, err := core.NewGame(core.DefaultConfig(n, mode))
		if err != nil {
			return nil, err
		}
		games[k] = g
	}
	rows := make([]NERow, len(tablePopulations))
	err = forEachIndex(ctx, len(tablePopulations), s.workerCount(), func(k int) error {
		n := tablePopulations[k]
		g := games[k]
		theory, err := g.FindPaperNE()
		if err != nil {
			return err
		}
		exact, err := g.FindEfficientNE()
		if err != nil {
			return err
		}
		mean, variance, err := simulatedBestCW(ctx, id, g, tm, n, theory.WStar, s)
		if err != nil {
			return err
		}
		rows[k] = NERow{
			N:          n,
			PaperWc:    paper[n],
			TheoryWc:   theory.WStar,
			ExactWc:    exact.WStar,
			SimMean:    mean,
			SimVar:     variance,
			TheoryTau:  theory.TauStar,
			Throughput: theory.ThroughputStar,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// simulatedBestCW reproduces the paper's simulated column: sweep the
// common CW over a grid around the theoretical NE, measure each node's
// payoff in the MAC simulator at every operating point, and report the
// mean and variance (across nodes) of each node's payoff-maximizing CW.
// The grid points are independent simulator runs, each on its own derived
// seed stream (scoped by table ID and population, so e.g. T2/n=5 and
// T3/n=5 never reuse a stream), fanned out over the worker pool. The
// mode timing is hoisted to the table level (neTable) rather than
// re-derived per population.
func simulatedBestCW(ctx context.Context, id string, g *core.Game, tm phy.Timing, n, wStar int, s Settings) (mean, variance float64, err error) {
	cfg := g.Config()
	grid := cwGrid(wStar)
	results := make([]*macsim.Result, len(grid))
	stream := fmt.Sprintf("%s.sim.n%d", id, n)
	err = forEachIndex(ctx, len(grid), s.workerCount(), func(gi int) error {
		res, err := macsim.RunUniform(tm, cfg.PHY.MaxBackoffStage, grid[gi], n,
			s.SingleHopSimTime, cfg.Gain, cfg.Cost, rng.DeriveSeed(s.Seed, stream, gi))
		if err != nil {
			return err
		}
		results[gi] = res
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	bestW := make([]int, n)
	bestPayoff := make([]float64, n)
	for i := range bestPayoff {
		bestPayoff[i] = -1e300
	}
	for gi, w := range grid {
		for i := 0; i < n; i++ {
			if pr := results[gi].Nodes[i].PayoffRate; pr > bestPayoff[i] {
				bestPayoff[i] = pr
				bestW[i] = w
			}
		}
	}
	var acc stats.Welford
	for _, w := range bestW {
		acc.Add(float64(w))
	}
	return acc.Mean(), acc.Variance(), nil
}

// cwGrid spans roughly ±30% around wStar in ~5% steps, always distinct
// and >= 1.
func cwGrid(wStar int) []int {
	var out []int
	seen := map[int]bool{}
	for f := 0.70; f <= 1.305; f += 0.05 {
		w := int(float64(wStar)*f + 0.5)
		if w < 1 {
			w = 1
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

func renderNETable(title string, rows []NERow) (string, string) {
	tb := plot.Table{
		Title:   title,
		Headers: []string{"n", "paper Wc*", "theory Wc*", "exact Wc*", "sim mean", "sim var", "tau*", "S*"},
	}
	for _, r := range rows {
		tb.MustAddRow(
			fmt.Sprintf("%d", r.N),
			fmt.Sprintf("%d", r.PaperWc),
			fmt.Sprintf("%d", r.TheoryWc),
			fmt.Sprintf("%d", r.ExactWc),
			fmt.Sprintf("%.1f", r.SimMean),
			fmt.Sprintf("%.2f", r.SimVar),
			fmt.Sprintf("%.5f", r.TheoryTau),
			fmt.Sprintf("%.4f", r.Throughput),
		)
	}
	var csv strings.Builder
	ns := make([]float64, len(rows))
	paper := make([]float64, len(rows))
	theory := make([]float64, len(rows))
	exact := make([]float64, len(rows))
	simMean := make([]float64, len(rows))
	simVar := make([]float64, len(rows))
	for i, r := range rows {
		ns[i], paper[i], theory[i] = float64(r.N), float64(r.PaperWc), float64(r.TheoryWc)
		exact[i], simMean[i], simVar[i] = float64(r.ExactWc), r.SimMean, r.SimVar
	}
	if err := plot.WriteCSV(&csv, []string{"n", "paper_wc", "theory_wc", "exact_wc", "sim_mean", "sim_var"},
		ns, paper, theory, exact, simMean, simVar); err != nil {
		// Static shapes make this unreachable; keep the artifact empty on bug.
		return tb.Render(), ""
	}
	return tb.Render(), csv.String()
}

func neReport(ctx context.Context, id, title string, mode phy.AccessMode, paper map[int]int, s Settings) (*Report, error) {
	rows, err := neTable(ctx, id, mode, paper, s)
	if err != nil {
		return nil, err
	}
	text, csv := renderNETable(title, rows)
	rep := &Report{ID: id, Title: title, Text: text}
	if csv != "" {
		rep.Artifacts = append(rep.Artifacts, Artifact{Name: strings.ToLower(id) + ".csv", Content: csv})
	}
	for _, r := range rows {
		prefix := fmt.Sprintf("n%d_", r.N)
		rep.Metric(prefix+"paper_wc", float64(r.PaperWc))
		rep.Metric(prefix+"theory_wc", float64(r.TheoryWc))
		rep.Metric(prefix+"exact_wc", float64(r.ExactWc))
		rep.Metric(prefix+"sim_mean", r.SimMean)
		rep.Metric(prefix+"sim_var", r.SimVar)
		rep.Metric(prefix+"rel_err_theory_vs_paper", stats.RelErr(float64(r.TheoryWc), float64(r.PaperWc)))
	}
	return rep, nil
}

// Table2 reproduces Table II (basic access).
func Table2(ctx context.Context, s Settings) (*Report, error) {
	return neReport(ctx, "T2", "Table II: Nash equilibrium point, basic case", phy.Basic, paperTable2, s)
}

// Table3 reproduces Table III (RTS/CTS).
func Table3(ctx context.Context, s Settings) (*Report, error) {
	return neReport(ctx, "T3", "Table III: Nash equilibrium point, RTS/CTS case", phy.RTSCTS, paperTable3, s)
}

package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// The harness's inner loops — figure series, sweep points, simulator grid
// runs — are embarrassingly parallel: every iteration writes only its own
// index and draws randomness from its own derived seed. forEachIndex is
// the one fan-out primitive they share. Determinism is structural, not
// accidental: because work is partitioned by index and seeds are derived
// per index (never drawn from a shared stream in completion order), the
// results are bit-identical to the serial loop at any worker count.

// forEachIndex runs fn(i) for every i in [0, n) using at most `workers`
// goroutines (0 or negative means GOMAXPROCS). It returns the
// lowest-index error, so error reporting is deterministic too. fn must
// only touch state owned by its index.
//
// Cancellation: workers stop claiming new indices once ctx is cancelled.
// If every claimed fn succeeded, forEachIndex returns ctx.Err(), so a
// cancelled sweep surfaces as an error rather than a silently truncated
// result; a real fn error still wins (lowest index first).
func forEachIndex(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// forEachChunk is forEachIndex over contiguous index chunks of up to
// `chunk` elements: fn(lo, hi) handles [lo, hi). It exists for sweeps
// whose per-index work is tiny — a single Bianchi fixed-point solve
// costs microseconds, so claiming indices one at a time spends a
// meaningful fraction of the sweep on atomic dispatch and closure
// overhead. Batching keeps the same index-owned-state determinism
// contract (fn iterates its chunk in ascending order; the lowest-index
// error still wins).
func forEachChunk(ctx context.Context, n, workers, chunk int, fn func(lo, hi int) error) error {
	if chunk < 1 {
		chunk = 1
	}
	chunks := (n + chunk - 1) / chunk
	return forEachIndex(ctx, chunks, workers, func(c int) error {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}

package experiments

import (
	"context"
	"fmt"
	"strings"

	"selfishmac/internal/core"
	"selfishmac/internal/phy"
	"selfishmac/internal/plot"
	"selfishmac/internal/rng"
)

// ShortSighted reproduces the Section V.D analysis: for a range of
// deviator discount factors δ_s and TFT reaction lags, the
// payoff-maximizing deviation W_s, the gain it yields over honesty, and
// the damage the eventual collapse inflicts on the network.
func ShortSighted(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, err := core.NewGame(core.DefaultConfig(10, phy.Basic))
	if err != nil {
		return nil, err
	}
	ne, err := g.FindEfficientNE()
	if err != nil {
		return nil, err
	}
	deltas := []float64{0, 0.3, 0.6, 0.9, 0.99, 0.999, 0.9999}
	lags := []int{1, 2, 5}
	tb := plot.Table{
		Title:   fmt.Sprintf("Section V.D: short-sighted deviator (n=10, basic, Wc*=%d)", ne.WStar),
		Headers: []string{"delta_s", "lag", "best Ws", "gain ratio", "global loss"},
	}
	rep := &Report{ID: "A2", Title: "Short-sighted players"}
	var dcol, lcol, wcol, gcol, losscol []float64
	for _, lag := range lags {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, d := range deltas {
			res, err := g.ShortSightedBest(ne, d, lag)
			if err != nil {
				return nil, err
			}
			tb.MustAddRow(
				fmt.Sprintf("%g", d),
				fmt.Sprintf("%d", lag),
				fmt.Sprintf("%d", res.WBest),
				fmt.Sprintf("%.4f", res.GainRatio),
				fmt.Sprintf("%.4f", res.GlobalLossFrac),
			)
			dcol = append(dcol, d)
			lcol = append(lcol, float64(lag))
			wcol = append(wcol, float64(res.WBest))
			gcol = append(gcol, res.GainRatio)
			losscol = append(losscol, res.GlobalLossFrac)
		}
	}
	rep.Text = tb.Render()
	myopic, err := g.ShortSightedBest(ne, 0, 1)
	if err != nil {
		return nil, err
	}
	patient, err := g.ShortSightedBest(ne, 0.9999, 1)
	if err != nil {
		return nil, err
	}
	rep.Metric("wcstar", float64(ne.WStar))
	rep.Metric("myopic_best_ws", float64(myopic.WBest))
	rep.Metric("myopic_gain_ratio", myopic.GainRatio)
	rep.Metric("myopic_global_loss", myopic.GlobalLossFrac)
	rep.Metric("patient_best_ws", float64(patient.WBest))
	rep.Metric("patient_gain_ratio", patient.GainRatio)
	var csv strings.Builder
	if err := plot.WriteCSV(&csv, []string{"delta_s", "lag", "best_ws", "gain_ratio", "global_loss"},
		dcol, lcol, wcol, gcol, losscol); err != nil {
		return nil, err
	}
	rep.Artifacts = append(rep.Artifacts, Artifact{Name: "a2_short_sighted.csv", Content: csv.String()})
	return rep, nil
}

// Malicious reproduces the Section V.E analysis: a player pins its CW
// below Wc*; TFT drags everyone down; global payoff collapses as the
// malicious CW shrinks. With frozen backoff (m = 0) small CWs paralyze the
// network outright (negative payoff), matching the paper's strongest
// claim.
func Malicious(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{ID: "A3", Title: "Malicious players"}
	var allText []string
	for _, variant := range []struct {
		label    string
		maxStage int
	}{
		{"default backoff (m=6)", 6},
		{"frozen backoff (m=0)", 0},
	} {
		cfg := core.DefaultConfig(10, phy.Basic)
		cfg.PHY.MaxBackoffStage = variant.maxStage
		g, err := core.NewGame(cfg)
		if err != nil {
			return nil, err
		}
		ne, err := g.FindEfficientNE()
		if err != nil {
			return nil, err
		}
		tb := plot.Table{
			Title:   fmt.Sprintf("Section V.E: malicious player, %s (Wc*=%d)", variant.label, ne.WStar),
			Headers: []string{"W_mal", "global @NE", "global transient", "global collapsed", "paralyzed"},
		}
		var wcol, collapsed []float64
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, w := range []int{1, 2, 4, 8, 16, 32, 64} {
			res, err := g.MaliciousImpact(ne, w)
			if err != nil {
				return nil, err
			}
			tb.MustAddRow(
				fmt.Sprintf("%d", w),
				fmt.Sprintf("%.3e", res.GlobalAtNE),
				fmt.Sprintf("%.3e", res.GlobalTransient),
				fmt.Sprintf("%.3e", res.GlobalCollapsed),
				fmt.Sprintf("%v", res.Paralyzed),
			)
			wcol = append(wcol, float64(w))
			collapsed = append(collapsed, res.GlobalCollapsed)
			if variant.maxStage == 0 && w == 1 {
				rep.Metric("m0_w1_paralyzed", boolMetric(res.Paralyzed))
			}
			if variant.maxStage == 6 && w == 4 {
				rep.Metric("m6_w4_damage_frac", 1-res.GlobalCollapsed/res.GlobalAtNE)
			}
		}
		allText = append(allText, tb.Render())
		var csv strings.Builder
		if err := plot.WriteCSV(&csv, []string{"w_mal", "global_collapsed"}, wcol, collapsed); err != nil {
			return nil, err
		}
		rep.Artifacts = append(rep.Artifacts, Artifact{
			Name:    fmt.Sprintf("a3_malicious_m%d.csv", variant.maxStage),
			Content: csv.String(),
		})
	}
	rep.Text = strings.Join(allText, "\n")
	return rep, nil
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// LemmaChecks numerically verifies the orderings of Lemma 1 (heterogeneous
// profiles) and Lemma 4 (single deviations) over randomized instances,
// reporting violation counts (expected: zero).
func LemmaChecks(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const trials = 300
	rep := &Report{ID: "A4", Title: "Lemma 1 & 4 orderings"}
	var text []string
	for _, mode := range []phy.AccessMode{phy.Basic, phy.RTSCTS} {
		g, err := core.NewGame(core.DefaultConfig(8, mode))
		if err != nil {
			return nil, err
		}
		lemma1Viol, lemma4Viol := 0, 0
		r := newSeededRand(rng.DeriveSeed(s.Seed, "A4", int(mode)))
		for trial := 0; trial < trials; trial++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Lemma 1 on a random heterogeneous profile.
			w := make([]int, 8)
			for i := range w {
				w[i] = 1 + r.Intn(900)
			}
			sol, err := g.Model().Solve(w)
			if err != nil {
				return nil, err
			}
			for i := range w {
				for j := range w {
					if w[i] > w[j] {
						if sol.P[i] < sol.P[j]-1e-12 || sol.Tau[i] > sol.Tau[j]+1e-12 {
							lemma1Viol++
						}
					}
				}
			}
			// Lemma 4 on a random single deviation.
			dev, err := g.Deviation(1+r.Intn(1200), 2+r.Intn(800))
			if err != nil {
				return nil, err
			}
			if !dev.SatisfiesLemma4() {
				lemma4Viol++
			}
		}
		text = append(text, fmt.Sprintf("%v: %d trials, lemma1 violations=%d, lemma4 violations=%d",
			mode, trials, lemma1Viol, lemma4Viol))
		rep.Metric(fmt.Sprintf("lemma1_violations_%s", modeKey(mode)), float64(lemma1Viol))
		rep.Metric(fmt.Sprintf("lemma4_violations_%s", modeKey(mode)), float64(lemma4Viol))
	}
	rep.Text = strings.Join(text, "\n") + "\n"
	return rep, nil
}

func modeKey(m phy.AccessMode) string {
	if m == phy.Basic {
		return "basic"
	}
	return "rtscts"
}

package experiments

import (
	"context"
	"fmt"
	"strings"

	"selfishmac/internal/core"
	"selfishmac/internal/macsim"
	"selfishmac/internal/phy"
	"selfishmac/internal/plot"
	"selfishmac/internal/replicate"
	"selfishmac/internal/stream"
)

// streamMix is one heterogeneous population: a base of honest TFT-style
// conformers at Wc* with specific nodes pinned to cheating CWs.
type streamMix struct {
	key    string
	label  string
	nodes  []int // cheater node indices (sorted, deterministic)
	cheats []int // cheater CWs, parallel to nodes
}

// streamDetectWindow is the estimation window width in virtual slots. At
// n=10 and Wc*=166 an honest node attempts in ~18 of 1500 slots, so a
// Beta=0.5 flag needs roughly double the honest attempt rate (~3.5σ of
// the window's Poisson noise — rare) while a Wc*/8 malicious node lands
// an order of magnitude under the threshold. The window must also stay
// short in *wall time*: a short-sighted W=1 hog makes nearly every
// virtual slot a busy slot, so its runs cover few slots per simulated
// second, and the window has to close several times even there.
const streamDetectWindow = 1500

// StreamingDetection (D4) runs the online detector of internal/stream
// against heterogeneous populations: every node streams through a
// stream.Monitor attached to the simulator's observer hook, and each
// (mix, Beta) cell reports how fast cheaters are flagged (virtual slots
// to first flag, censored at the run length when undetected) and how
// accurately (TPR = fraction of cheater nodes ever flagged, FPR = honest
// flag events per honest node-window). Where D1 inspects one batch
// observation after the fact, D4 measures the latency/accuracy trade-off
// the Beta tolerance buys when detection happens online, window by
// window, replicated to a CI95 target through internal/replicate.
func StreamingDetection(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const n = 10
	g, err := core.NewGame(core.DefaultConfig(n, phy.Basic))
	if err != nil {
		return nil, err
	}
	ne, err := g.FindEfficientNE()
	if err != nil {
		return nil, err
	}
	myopic, err := g.ShortSightedBest(ne, 0, 1)
	if err != nil {
		return nil, err
	}
	malW := maxIntHelper(1, ne.WStar/8)
	slyW := maxIntHelper(1, int(0.8*float64(ne.WStar)))
	mixes := []streamMix{
		{"honest", "all honest", nil, nil},
		{"malicious", fmt.Sprintf("1 malicious (W=%d)", malW), []int{0}, []int{malW}},
		{"shortsighted", fmt.Sprintf("1 short-sighted (W=%d)", myopic.WBest), []int{0}, []int{myopic.WBest}},
		{"intelligent", fmt.Sprintf("1 intelligent (W=%d)", slyW), []int{0}, []int{slyW}},
		{"mixed", fmt.Sprintf("malicious+short-sighted+intelligent (W=%d,%d,%d)", malW, myopic.WBest, slyW),
			[]int{0, 1, 2}, []int{malW, myopic.WBest, slyW}},
	}
	betas := []float64{0.5, 0.7, 0.9}

	p := g.Config().PHY
	tm, err := p.Timing(g.Config().Mode)
	if err != nil {
		return nil, err
	}
	tb := plot.Table{
		Title: fmt.Sprintf("Streaming detection: population mixes vs Beta (n=%d, Wc*=%d, window=%d slots)",
			n, ne.WStar, streamDetectWindow),
		Headers: []string{"mix", "beta", "reps", "latency (slots)", "ci95", "TPR", "FPR"},
	}
	rep := &Report{ID: "D4", Title: "Streaming misbehavior detection over population mixes"}
	minReps, maxReps, relCI := s.replicateBounds()
	var mixCol, betaCol, latCol, latCICol, tprCol, fprCol, repsCol []float64

	for mi, mix := range mixes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		profile := make([]int, n)
		for i := range profile {
			profile[i] = ne.WStar
		}
		for k, node := range mix.nodes {
			profile[node] = mix.cheats[k]
		}
		cheater := make([]bool, n)
		for _, node := range mix.nodes {
			cheater[node] = true
		}
		for _, beta := range betas {
			simCfg := macsim.Config{
				Timing:   tm,
				MaxStage: p.MaxBackoffStage,
				CW:       profile, // the engine clones its config slices
				Duration: s.SingleHopSimTime,
				Gain:     g.Config().Gain,
				Cost:     g.Config().Cost,
			}
			monCfg := stream.Config{
				Nodes:       n,
				WindowSlots: streamDetectWindow,
				Keep:        4,
				MaxStage:    p.MaxBackoffStage,
				ExpectedCW:  ne.WStar,
				Beta:        beta,
			}
			rres, err := replicate.RunContext(ctx, replicate.Plan{
				BaseSeed:     s.Seed,
				Stream:       fmt.Sprintf("D4.%s.beta%g", mix.key, beta),
				Metrics:      3, // latency, TPR, FPR; latency drives adaptive stopping
				RelTolerance: relCI,
				MinReps:      minReps,
				MaxReps:      maxReps,
				Workers:      s.workerCount(),
			}, func() (replicate.Replicator, error) {
				return newStreamDetectRep(simCfg, monCfg, cheater)
			})
			if err != nil {
				return nil, err
			}
			lat, tpr, fpr := rres.Mean(0), rres.Mean(1), rres.Mean(2)
			tb.MustAddRow(mix.key, fmt.Sprintf("%g", beta), fmt.Sprintf("%d", rres.Reps),
				fmt.Sprintf("%.0f", lat), fmt.Sprintf("%.0f", rres.CI95(0)),
				fmt.Sprintf("%.2f", tpr), fmt.Sprintf("%.4f", fpr))
			mk := fmt.Sprintf("%s_b%02.0f", mix.key, beta*100)
			rep.Metric(mk+"_latency_slots", lat)
			rep.Metric(mk+"_latency_ci95", rres.CI95(0))
			rep.Metric(mk+"_tpr", tpr)
			rep.Metric(mk+"_fpr", fpr)
			rep.Metric(mk+"_reps", float64(rres.Reps))
			mixCol = append(mixCol, float64(mi))
			betaCol = append(betaCol, beta)
			latCol = append(latCol, lat)
			latCICol = append(latCICol, rres.CI95(0))
			tprCol = append(tprCol, tpr)
			fprCol = append(fprCol, fpr)
			repsCol = append(repsCol, float64(rres.Reps))
		}
	}

	var text strings.Builder
	text.WriteString(tb.Render())
	text.WriteString("\nmixes:")
	for mi, mix := range mixes {
		fmt.Fprintf(&text, " [%d] %s = %s;", mi, mix.key, mix.label)
	}
	text.WriteString("\nreading: blatant cheaters (malicious, short-sighted) are flagged within\n")
	text.WriteString("the first window at every tolerance; the intelligent cheater sitting\n")
	text.WriteString("just under Wc* is only separable at high Beta, where honest windows\n")
	text.WriteString("start tripping the threshold too — Beta trades detection coverage\n")
	text.WriteString("against false alarms, and latency against selectivity.\n")
	rep.Text = text.String()
	rep.Metric("wcstar", float64(ne.WStar))
	rep.Metric("malicious_cw", float64(malW))
	rep.Metric("shortsighted_cw", float64(myopic.WBest))
	rep.Metric("intelligent_cw", float64(slyW))

	var csv strings.Builder
	if err := plot.WriteCSV(&csv, []string{"mix", "beta", "latency_slots", "latency_ci95", "tpr", "fpr", "reps"},
		mixCol, betaCol, latCol, latCICol, tprCol, fprCol, repsCol); err != nil {
		return nil, err
	}
	rep.Artifacts = append(rep.Artifacts, Artifact{Name: "d4_stream_detection.csv", Content: csv.String()})
	return rep, nil
}

// streamDetectRep is the per-worker replicator: one reusable engine with
// a monitor attached to its observer hook. Reset + Run pairs replay the
// cell's configuration under each replication seed at zero steady-state
// allocations (the replicate pool builds one per worker).
type streamDetectRep struct {
	eng     *macsim.Engine
	mon     *stream.Monitor
	cheater []bool
}

func newStreamDetectRep(simCfg macsim.Config, monCfg stream.Config, cheater []bool) (*streamDetectRep, error) {
	mon, err := stream.NewMonitor(monCfg)
	if err != nil {
		return nil, err
	}
	simCfg.Observer = mon
	eng, err := macsim.NewEngine(simCfg)
	if err != nil {
		return nil, err
	}
	return &streamDetectRep{eng: eng, mon: mon, cheater: cheater}, nil
}

// Replicate runs one monitored simulation and reports
// [latency slots, TPR, FPR]. Latency is the earliest first-flag slot over
// the cheater nodes, censored at the run's total slot count when no
// cheater was flagged, and 0 for the all-honest mix (nothing to detect).
func (r *streamDetectRep) Replicate(seed uint64, out []float64) error {
	r.mon.Reset()
	r.eng.Reset(seed)
	res := r.eng.Run()
	r.mon.Finish(res.Slots)

	cheaters, detected := 0, 0
	latency := float64(res.Slots)
	var honestFlags, honest int64
	for i, cheat := range r.cheater {
		if cheat {
			cheaters++
			if s := r.mon.FirstFlagSlot(i); s >= 0 {
				detected++
				if float64(s) < latency {
					latency = float64(s)
				}
			}
			continue
		}
		honest++
		honestFlags += r.mon.NodeFlags(i)
	}
	if cheaters == 0 {
		out[0], out[1] = 0, 1
	} else {
		out[0] = latency
		out[1] = float64(detected) / float64(cheaters)
	}
	if w := r.mon.Windows(); w > 0 && honest > 0 {
		out[2] = float64(honestFlags) / float64(w*honest)
	} else {
		out[2] = 0
	}
	return nil
}

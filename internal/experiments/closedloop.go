package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"selfishmac/internal/core"
	"selfishmac/internal/detect"
	"selfishmac/internal/macsim"
	"selfishmac/internal/phy"
	"selfishmac/internal/plot"
	"selfishmac/internal/replicate"
	"selfishmac/internal/rng"
)

// ClosedLoop (D2) runs the full pipeline the paper sketches but never
// assembles: each stage the network is *simulated*, every node estimates
// its peers' CW values from promiscuous attempt counts (internal/detect),
// and the TFT/GTFT strategies act on those *estimates* instead of oracle
// observations. The question: does the TFT equilibrium survive when
// observation is a noisy measurement rather than an assumption?
//
// Finding: plain TFT does NOT survive honest measurement — matching the
// minimum of n noisy estimates is a downward ratchet of roughly one
// estimation-sigma per stage, and driving sigma low enough would need
// stage lengths in the thousands of seconds (detect.RequiredSlots), far
// beyond the paper's T = 10 s. GTFT's averaging window and tolerance
// absorb the noise at practical stage lengths. In this reproduction the
// paper's "in practice … a more tolerant version" remark is therefore a
// necessity, not an optimization.
func ClosedLoop(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const n = 6
	g, err := core.NewGame(core.DefaultConfig(n, phy.Basic))
	if err != nil {
		return nil, err
	}
	ne, err := g.FindEfficientNE()
	if err != nil {
		return nil, err
	}

	tb := plot.Table{
		Title:   fmt.Sprintf("Closed loop: strategies on estimated observations (n=%d, start Wc*=%d, 25 stages)", n, ne.WStar),
		Headers: []string{"strategy", "stage window (s)", "final min CW", "ci95", "reps", "held NE"},
	}
	rep := &Report{ID: "D2", Title: "Closed-loop TFT on estimated CWs"}
	minReps, maxReps, relCI := s.replicateBounds()

	for _, tc := range []struct {
		name   string
		mk     func() core.Strategy
		window float64 // stage measurement time in seconds
		metric string
	}{
		{"tft", func() core.Strategy { return core.TFT{Initial: ne.WStar} }, 60, "tft_60s"},
		{"tft", func() core.Strategy { return core.TFT{Initial: ne.WStar} }, 10, "tft_10s"},
		{"gtft(r0=5,b=0.8)", func() core.Strategy { return core.GTFT{Initial: ne.WStar, R0: 5, Beta: 0.8} }, 10, "gtft_10s"},
	} {
		// Each case is a replicated measurement: independent 25-stage
		// closed-loop runs on derived seeds (replication 0 reuses the
		// stream of the previous single-run implementation), reported as
		// the mean final minimum CW with its CI95 half-width.
		rres, err := replicate.RunFuncContext(ctx, replicate.Plan{
			BaseSeed:     s.Seed,
			Stream:       "D2." + tc.metric,
			Metrics:      1,
			RelTolerance: relCI,
			MinReps:      minReps,
			MaxReps:      maxReps,
			Workers:      s.workerCount(),
		}, func(seed uint64, out []float64) error {
			strats := make([]core.Strategy, n)
			for i := range strats {
				strats[i] = tc.mk()
			}
			final, err := runClosedLoop(g, strats, tc.window*1e6, 25, seed)
			if err != nil {
				return err
			}
			minW := final[0]
			for _, w := range final {
				if w < minW {
					minW = w
				}
			}
			out[0] = float64(minW)
			return nil
		})
		if err != nil {
			return nil, err
		}
		meanMin := rres.Mean(0)
		held := meanMin >= float64(ne.WStar)*0.9
		tb.MustAddRow(tc.name, fmt.Sprintf("%.0f", tc.window), fmt.Sprintf("%.1f", meanMin),
			fmt.Sprintf("%.2f", rres.CI95(0)), fmt.Sprintf("%d", rres.Reps), fmt.Sprintf("%v", held))
		rep.Metric(tc.metric+"_final_min_cw", meanMin)
		rep.Metric(tc.metric+"_ci95", rres.CI95(0))
		rep.Metric(tc.metric+"_reps", float64(rres.Reps))
	}
	var text strings.Builder
	text.WriteString(tb.Render())
	text.WriteString("\nreading: plain TFT ratchets downward under honest CW estimation at any\n")
	text.WriteString("practical stage length (min-of-n noisy estimates is biased low every\n")
	text.WriteString("stage); the paper's GTFT tolerance is what actually stabilizes the NE.\n")
	rep.Text = text.String()
	rep.Metric("wcstar", float64(ne.WStar))
	return rep, nil
}

// GTFTTradeoff (D3) quantifies the other side of D2's coin: GTFT's
// tolerance, which D2 shows is necessary against measurement noise, also
// *delays the punishment of real cheaters*. For a grid of (r0, β) it
// reports how many stages a genuine undercutter enjoys before the network
// reacts, and the extra discounted profit that lag hands it (Section V.D:
// a longer lag strictly helps the deviator).
func GTFTTradeoff(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const n = 6
	g, err := core.NewGame(core.DefaultConfig(n, phy.Basic))
	if err != nil {
		return nil, err
	}
	ne, err := g.FindEfficientNE()
	if err != nil {
		return nil, err
	}
	cheatW := ne.WStar / 3
	// The cheater conforms for warmup stages (filling every GTFT window
	// with clean history), then undercuts forever. The windowed mean then
	// decays linearly, so the reaction lag grows with r0 and with
	// tolerance — a persistent cheat from stage 0 would trip any window
	// immediately and hide the trade-off.
	const warmup = 10

	tb := plot.Table{
		Title: fmt.Sprintf("GTFT tolerance vs reaction: cheater drops to W=%d after %d clean stages (Wc*=%d)",
			cheatW, warmup, ne.WStar),
		Headers: []string{"r0", "beta", "stages before reaction", "cheater gain ratio"},
	}
	rep := &Report{ID: "D3", Title: "GTFT tolerance/reaction trade-off"}
	for _, r0 := range []int{1, 3, 5, 8} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, beta := range []float64{0.9, 0.8, 0.6} {
			strats := make([]core.Strategy, n)
			strats[0] = core.Deviant{Deviation: ne.WStar, Base: cheatW, Stages: warmup}
			for i := 1; i < n; i++ {
				strats[i] = core.GTFT{Initial: ne.WStar, R0: r0, Beta: beta}
			}
			eng, err := core.NewEngine(g, strats)
			if err != nil {
				return nil, err
			}
			tr, err := eng.Run(40 + warmup)
			if err != nil {
				return nil, err
			}
			lag := reactionStage(tr, ne.WStar) - warmup
			// The Section V.D payoff with the measured lag, for a fairly
			// patient cheater.
			res, err := g.ShortSightedBest(ne, 0.9, maxIntHelper(lag, 1))
			if err != nil {
				return nil, err
			}
			tb.MustAddRow(fmt.Sprintf("%d", r0), fmt.Sprintf("%g", beta),
				fmt.Sprintf("%d", lag), fmt.Sprintf("%.3f", res.GainRatio))
			rep.Metric(fmt.Sprintf("r0%d_beta%g_lag", r0, beta), float64(lag))
			rep.Metric(fmt.Sprintf("r0%d_beta%g_gain", r0, beta), res.GainRatio)
		}
	}
	var text strings.Builder
	text.WriteString(tb.Render())
	text.WriteString("\nreading: larger averaging windows (r0) and looser tolerances (smaller\n")
	text.WriteString("beta) buy noise immunity (D2) at the price of slower punishment, which\n")
	text.WriteString("Section V.D shows hands a patient cheater strictly more profit — the\n")
	text.WriteString("designer's dial between robustness and deterrence.\n")
	rep.Text = text.String()
	return rep, nil
}

// reactionStage returns the first stage at which any conforming player
// (index >= 1) moved below the initial CW, or the trace length if never.
func reactionStage(tr *core.Trace, initial int) int {
	for k, st := range tr.Stages {
		for i := 1; i < len(st.Profile); i++ {
			if st.Profile[i] < initial {
				return k
			}
		}
	}
	return len(tr.Stages)
}

func maxIntHelper(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runClosedLoop plays stages where observations are CW *estimates* from
// simulated promiscuous counts. It returns the final CW profile.
//
// One reusable macsim.Engine carries the whole run: stages change only
// the CW profile and seed, so after the first stage every Reconfigure
// reuses the engine's buffers instead of paying macsim.Run's full setup.
// Stage results are bit-identical to fresh Run calls (the macsim
// differential tests pin the Engine lifecycle).
func runClosedLoop(g *core.Game, strategies []core.Strategy, stageTime float64, stages int, seed uint64) ([]int, error) {
	n := len(strategies)
	p := g.Config().PHY
	tm, err := p.Timing(g.Config().Mode)
	if err != nil {
		return nil, err
	}
	observedBy := make([][][]int, n)
	utilitiesOf := make([][]float64, n)
	profile := make([]int, n)
	var eng *macsim.Engine
	for k := 0; k < stages; k++ {
		for i, s := range strategies {
			w := s.ChooseCW(i, observedBy[i], utilitiesOf[i])
			if w < 1 {
				w = 1
			}
			profile[i] = w
		}
		cfg := macsim.Config{
			Timing:   tm,
			MaxStage: p.MaxBackoffStage,
			CW:       profile, // the engine clones its config slices
			Duration: stageTime,
			Seed:     rng.DeriveSeed(seed, "closedloop.stage", k),
			Gain:     g.Config().Gain,
			Cost:     g.Config().Cost,
		}
		if eng == nil {
			eng, err = macsim.NewEngine(cfg)
		} else {
			err = eng.Reconfigure(cfg)
		}
		if err != nil {
			return nil, err
		}
		res := eng.Run()
		ests, err := detect.EstimateAll(detect.FromSimResult(res), p.MaxBackoffStage)
		if err != nil {
			// A stage can be too short for any estimate (a node that
			// never transmitted); treat it as "no new information".
			ests = nil
		}
		for i := range strategies {
			obs := make([]int, n)
			for j := range obs {
				switch {
				case i == j:
					obs[j] = profile[j] // own CW known exactly
				case ests != nil:
					obs[j] = int(math.Round(ests[j].CW))
				default:
					obs[j] = profile[i] // no estimate: assume conformance
				}
				if obs[j] < 1 {
					obs[j] = 1
				}
			}
			observedBy[i] = append(observedBy[i], obs)
			utilitiesOf[i] = append(utilitiesOf[i], res.Nodes[i].PayoffRate)
		}
	}
	return append([]int(nil), profile...), nil
}

package experiments

import (
	"context"
	"fmt"
	"strings"

	"selfishmac/internal/core"
	"selfishmac/internal/faults"
	"selfishmac/internal/multihop"
	"selfishmac/internal/phy"
	"selfishmac/internal/plot"
	"selfishmac/internal/replicate"
	"selfishmac/internal/rng"
	"selfishmac/internal/search"
	"selfishmac/internal/topology"
)

// Robustness measures how gracefully the distributed NE search and the
// multi-hop TFT dynamic degrade under deployment faults: broadcast loss,
// payoff-measurement outliers and transient failures, a leader crash with
// deputy failover, an exhausted probe budget, and node churn during
// convergence. Every scenario is seeded via rng.DeriveSeed and replays
// byte-identically.
func Robustness(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, err := core.NewGame(core.DefaultConfig(10, phy.RTSCTS))
	if err != nil {
		return nil, err
	}
	ne, err := g.FindEfficientNE()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "A9", Title: "Robustness: resilient NE search under faults"}
	var text []string
	const w0 = 8

	resilientOpts := search.Options{WMax: g.Config().WMax, MeasureK: 3, Retries: 3}

	// (a) NE error and probe count vs broadcast drop probability, with a
	// light background of outliers and transient failures.
	drops := []float64{0, 0.1, 0.2, 0.3, 0.4}
	type dropRow struct {
		res   search.Result
		stats faults.Stats
	}
	dropRows := make([]dropRow, len(drops))
	err = forEachIndex(ctx, len(drops), s.workerCount(), func(i int) error {
		inner, err := search.NewAnalyticEnv(g, 0, w0)
		if err != nil {
			return err
		}
		env, err := faults.New(inner, faults.Config{
			Seed:        rng.DeriveSeed(s.Seed, "A9.drop", i),
			DropProb:    drops[i],
			DupProb:     0.05,
			OutlierProb: 0.1,
			FailProb:    0.05,
		})
		if err != nil {
			return err
		}
		res, err := search.ResilientRun(env, 0, w0, resilientOpts)
		if err != nil {
			return err
		}
		dropRows[i] = dropRow{res: res, stats: env.Stats}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tb := plot.Table{
		Title: fmt.Sprintf("Resilient search vs drop probability (n=10, RTS/CTS, exact NE=%d, 10%% outliers, 5%% transient failures)",
			ne.WStar),
		Headers: []string{"drop prob", "found", "|err|", "probes", "measurements", "rebroadcasts", "degraded"},
	}
	var csv strings.Builder
	csv.WriteString("drop_prob,found_w,abs_err,probes,measurements,rebroadcasts,degraded\n")
	for i, drop := range drops {
		r := dropRows[i].res
		absErr := r.W - ne.WStar
		if absErr < 0 {
			absErr = -absErr
		}
		tb.MustAddRow(fmt.Sprintf("%.1f", drop), fmt.Sprintf("%d", r.W), fmt.Sprintf("%d", absErr),
			fmt.Sprintf("%d", r.ProbeCount()), fmt.Sprintf("%d", r.Measurements),
			fmt.Sprintf("%d", r.Rebroadcasts), fmt.Sprintf("%v", r.Degraded))
		fmt.Fprintf(&csv, "%.2f,%d,%d,%d,%d,%d,%v\n", drop, r.W, absErr,
			r.ProbeCount(), r.Measurements, r.Rebroadcasts, r.Degraded)
		key := fmt.Sprintf("drop%02.0f_", drop*100)
		rep.Metric(key+"abs_err", float64(absErr))
		rep.Metric(key+"measurements", float64(r.Measurements))
		rep.Metric(key+"degraded", b2f(r.Degraded))
	}
	text = append(text, tb.Render())
	rep.Artifacts = append(rep.Artifacts, Artifact{Name: "a9_drop_sweep.csv", Content: csv.String()})

	// (b) NE error vs measurement noise level (outlier probability) —
	// median-of-3 has to reject the gross errors.
	noises := []float64{0, 0.1, 0.2, 0.3}
	noiseRes := make([]search.Result, len(noises))
	err = forEachIndex(ctx, len(noises), s.workerCount(), func(i int) error {
		inner, err := search.NewAnalyticEnv(g, 0, w0)
		if err != nil {
			return err
		}
		env, err := faults.New(inner, faults.Config{
			Seed:        rng.DeriveSeed(s.Seed, "A9.noise", i),
			OutlierProb: noises[i],
		})
		if err != nil {
			return err
		}
		noiseRes[i], err = search.ResilientRun(env, 0, w0, resilientOpts)
		return err
	})
	if err != nil {
		return nil, err
	}
	tbN := plot.Table{
		Title:   "Resilient search vs outlier probability (median-of-3 measurement)",
		Headers: []string{"outlier prob", "found", "|err|", "measurements"},
	}
	for i, p := range noises {
		r := noiseRes[i]
		absErr := r.W - ne.WStar
		if absErr < 0 {
			absErr = -absErr
		}
		tbN.MustAddRow(fmt.Sprintf("%.1f", p), fmt.Sprintf("%d", r.W),
			fmt.Sprintf("%d", absErr), fmt.Sprintf("%d", r.Measurements))
		rep.Metric(fmt.Sprintf("noise%02.0f_abs_err", p*100), float64(absErr))
	}
	text = append(text, tbN.Render())

	// (c) Leader crash mid-search: the deputy must finish the walk.
	innerCrash, err := search.NewAnalyticEnv(g, 0, w0)
	if err != nil {
		return nil, err
	}
	crashEnv, err := faults.New(innerCrash, faults.Config{
		Seed:             rng.DeriveSeed(s.Seed, "A9.crash", 0),
		DropProb:         0.2,
		LeaderCrashAfter: 5,
	})
	if err != nil {
		return nil, err
	}
	crashRes, err := search.ResilientRun(crashEnv, 0, w0, resilientOpts)
	if err != nil {
		return nil, err
	}
	crashErr := crashRes.W - ne.WStar
	if crashErr < 0 {
		crashErr = -crashErr
	}
	text = append(text, fmt.Sprintf(
		"leader crash after 5 measurements (20%% drop): deputy %d announced W=%d (|err|=%d, failover=%v, degraded=%v)",
		crashRes.Leader, crashRes.W, crashErr, crashRes.FailedOver, crashRes.Degraded))
	rep.Metric("crash_abs_err", float64(crashErr))
	rep.Metric("crash_failed_over", b2f(crashRes.FailedOver))
	rep.Metric("crash_deputy", float64(crashRes.Leader))

	// (d) Probe budget exhaustion: best-so-far with the Degraded flag.
	innerBudget, err := search.NewAnalyticEnv(g, 0, w0)
	if err != nil {
		return nil, err
	}
	budgetEnv, err := faults.New(innerBudget, faults.Config{
		Seed:     rng.DeriveSeed(s.Seed, "A9.budget", 0),
		DropProb: 0.2,
	})
	if err != nil {
		return nil, err
	}
	budgetOpts := resilientOpts
	budgetOpts.ProbeBudget = 12
	budgetRes, err := search.ResilientRun(budgetEnv, 0, w0, budgetOpts)
	if err != nil {
		return nil, err
	}
	text = append(text, fmt.Sprintf(
		"probe budget 12: announced best-so-far W=%d after %d measurements (degraded=%v)",
		budgetRes.W, budgetRes.Measurements, budgetRes.Degraded))
	rep.Metric("budget_degraded", b2f(budgetRes.Degraded))
	rep.Metric("budget_found_w", float64(budgetRes.W))

	// (e) TFT convergence under node churn on a static spatial network.
	// Each churn rate is a replicated measurement (internal/replicate):
	// every replication rebuilds the same topology (fixed topology seed)
	// but draws its own initial profiles and churn/simulation streams
	// from the replication seed, so the reported convergence stage and
	// CW are means with a CI, not a single trajectory.
	nodes := s.MultihopNodes
	if nodes > 24 {
		nodes = 24 // churn stages are sequential simulator runs; keep it light
	}
	topoCfg := topology.Config{
		N: nodes, Width: 600, Height: 600, Range: 250,
		Seed: rng.DeriveSeed(s.Seed, "A9.topo", 0),
	}
	churnRates := []float64{0, 0.02, 0.05}
	minReps, maxReps, relCI := s.replicateBounds()
	type churnRow struct {
		res *replicate.Result
	}
	churnRows := make([]churnRow, len(churnRates))
	for i, rate := range churnRates {
		rres, err := replicate.RunFuncContext(ctx, replicate.Plan{
			BaseSeed:     s.Seed,
			Stream:       fmt.Sprintf("A9.churn%02.0f", rate*100),
			Metrics:      3, // converged-at stage, converged CW, stages run
			Target:       0,
			RelTolerance: relCI,
			MinReps:      minReps,
			MaxReps:      maxReps,
			Workers:      s.workerCount(),
		}, func(seed uint64, out []float64) error {
			nw, err := topology.New(topoCfg)
			if err != nil {
				return err
			}
			r := rng.New(rng.DeriveSeed(seed, "init", 0))
			strats := make([]core.Strategy, nodes)
			for j := range strats {
				strats[j] = core.TFT{Initial: 32 + r.Intn(64)}
			}
			sim := multihop.DefaultSimConfig(s.MultihopSimTime/4, rng.DeriveSeed(seed, "sim", 0))
			eng, err := multihop.NewEngine(nw, strats, sim)
			if err != nil {
				return err
			}
			if rate > 0 {
				eng = eng.WithChurn(multihop.ChurnConfig{
					Seed:      rng.DeriveSeed(seed, "churn", 0),
					LeaveProb: rate,
					JoinProb:  0.3,
					MinActive: nodes / 2,
				})
			}
			tr, err := eng.WithStopWindow(3).Run(20)
			if err != nil {
				return err
			}
			out[0] = float64(tr.ConvergedAt)
			out[1] = float64(tr.ConvergedCW)
			out[2] = float64(len(tr.Stages))
			return nil
		})
		if err != nil {
			return nil, err
		}
		churnRows[i] = churnRow{res: rres}
	}
	tbC := plot.Table{
		Title:   fmt.Sprintf("TFT convergence under churn (%d nodes, static topology, 20 stages max, mean over reps)", nodes),
		Headers: []string{"leave prob/stage", "converged at", "converged CW", "stages run", "ci95", "reps"},
	}
	for i, rate := range churnRates {
		row := churnRows[i].res
		tbC.MustAddRow(fmt.Sprintf("%.2f", rate), fmt.Sprintf("%.1f", row.Mean(0)),
			fmt.Sprintf("%.1f", row.Mean(1)), fmt.Sprintf("%.1f", row.Mean(2)),
			fmt.Sprintf("%.2f", row.CI95(0)), fmt.Sprintf("%d", row.Reps))
		key := fmt.Sprintf("churn%02.0f_", rate*100)
		rep.Metric(key+"converged_at", row.Mean(0))
		rep.Metric(key+"converged_cw", row.Mean(1))
		rep.Metric(key+"converged_at_ci95", row.CI95(0))
		rep.Metric(key+"reps", float64(row.Reps))
	}
	text = append(text, tbC.Render())

	rep.Text = strings.Join(text, "\n")
	return rep, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

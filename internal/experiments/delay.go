package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"selfishmac/internal/core"
	"selfishmac/internal/num"
	"selfishmac/internal/phy"
	"selfishmac/internal/plot"
)

// DelayAnalysis (X1) quantifies the paper's Section VIII caveat: its
// utility function ignores delay, so "the CW value of NE may seem too
// long in some cases". For each population it reports the mean per-node
// access delay at the efficient NE, the delay-minimizing CW, and the
// delay/payoff trade-off between the two — the data a delay-aware utility
// redesign would start from.
func DelayAnalysis(ctx context.Context, s Settings) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tb := plot.Table{
		Title:   "Section VIII: access delay at the NE (mean time between a node's successes)",
		Headers: []string{"mode", "n", "Wc*", "delay@Wc* (ms)", "delay-min CW", "min delay (ms)", "payoff@delay-min / payoff@Wc*"},
	}
	rep := &Report{ID: "X1", Title: "Delay at the NE"}
	for _, mode := range []phy.AccessMode{phy.Basic, phy.RTSCTS} {
		for _, n := range tablePopulations {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			g, err := core.NewGame(core.DefaultConfig(n, mode))
			if err != nil {
				return nil, err
			}
			ne, err := g.FindPaperNE()
			if err != nil {
				return nil, err
			}
			delayAt := func(w int) float64 {
				sol, err := g.Model().SolveUniform(w, n)
				if err != nil {
					return math.Inf(1)
				}
				return sol.MeanAccessDelay(0)
			}
			dNE := delayAt(ne.WStar)
			wMinDelay, negMin, err := num.ArgmaxIntCoarse(func(w int) float64 { return -delayAt(w) }, 1, g.Config().WMax, 32)
			if err != nil {
				return nil, err
			}
			dMin := -negMin
			uAtMin, err := g.UniformUtilityRate(wMinDelay)
			if err != nil {
				return nil, err
			}
			payoffRatio := uAtMin / ne.UStar
			tb.MustAddRow(modeKey(mode), fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", ne.WStar),
				fmt.Sprintf("%.1f", dNE/1e3),
				fmt.Sprintf("%d", wMinDelay),
				fmt.Sprintf("%.1f", dMin/1e3),
				fmt.Sprintf("%.3f", payoffRatio))
			prefix := fmt.Sprintf("%s_n%d_", modeKey(mode), n)
			rep.Metric(prefix+"delay_at_ne_ms", dNE/1e3)
			rep.Metric(prefix+"delay_min_ms", dMin/1e3)
			rep.Metric(prefix+"delay_min_cw", float64(wMinDelay))
			rep.Metric(prefix+"payoff_ratio_at_delay_min", payoffRatio)
		}
	}
	var text strings.Builder
	text.WriteString(tb.Render())
	text.WriteString("\nreading: the NE maximizes payoff-per-time, which in saturation nearly\n")
	text.WriteString("minimizes delay too — the trade-off the paper worried about is small in\n")
	text.WriteString("this utility, but the table is where a delay-weighted redesign would start.\n")
	rep.Text = text.String()
	return rep, nil
}

package search

import (
	"fmt"

	"selfishmac/internal/core"
	"selfishmac/internal/macsim"
	"selfishmac/internal/rng"
)

// AnalyticEnv measures payoffs exactly from the analytic game model with
// perfect message delivery: every broadcast Ready/StartSearch sets all
// follower CWs; the leader's payoff is computed from the resulting
// (possibly heterogeneous) profile.
type AnalyticEnv struct {
	game   *core.Game
	leader int
	cw     []int
	// Log records delivered messages for assertions.
	Log []Message
}

// NewAnalyticEnv builds an environment of game.N() nodes, all starting at
// CW w0, with the given leader index.
func NewAnalyticEnv(game *core.Game, leader, w0 int) (*AnalyticEnv, error) {
	if game == nil {
		return nil, ErrNoEnv
	}
	if leader < 0 || leader >= game.N() {
		return nil, fmt.Errorf("search: leader %d outside [0, %d)", leader, game.N())
	}
	cw := make([]int, game.N())
	for i := range cw {
		cw[i] = w0
	}
	return &AnalyticEnv{game: game, leader: leader, cw: cw}, nil
}

// Broadcast implements Env with perfect delivery.
func (e *AnalyticEnv) Broadcast(msg Message) {
	e.Log = append(e.Log, msg)
	if msg.Type == StartSearch || msg.Type == Ready {
		for i := range e.cw {
			if i != e.leader {
				e.cw[i] = msg.W
			}
		}
	}
}

// LeaderPayoff implements Env.
func (e *AnalyticEnv) LeaderPayoff(w int) (float64, error) {
	e.cw[e.leader] = w
	us, err := e.game.ProfileUtilities(e.cw)
	if err != nil {
		return 0, err
	}
	return us[e.leader], nil
}

// Profile returns a copy of the nodes' current CW values.
func (e *AnalyticEnv) Profile() []int { return append([]int(nil), e.cw...) }

// NumNodes returns the number of nodes in the environment.
func (e *AnalyticEnv) NumNodes() int { return len(e.cw) }

// LeaderID returns the current leader index.
func (e *AnalyticEnv) LeaderID() int { return e.leader }

// DeliverTo delivers msg to a single node, bypassing the broadcast
// medium. Fault-injection wrappers use it for per-node drop and targeted
// re-delivery; it is not appended to Log (the wrapper owns bookkeeping).
func (e *AnalyticEnv) DeliverTo(node int, msg Message) {
	if node < 0 || node >= len(e.cw) || node == e.leader {
		return
	}
	if msg.Type == StartSearch || msg.Type == Ready {
		e.cw[node] = msg.W
	}
}

// SetLeader promotes node to leader (deputy failover). The old leader's
// CW keeps its last measured value; subsequent LeaderPayoff calls measure
// the new leader.
func (e *AnalyticEnv) SetLeader(node int) error {
	if node < 0 || node >= len(e.cw) {
		return fmt.Errorf("search: leader %d outside [0, %d)", node, len(e.cw))
	}
	e.leader = node
	return nil
}

var _ Env = (*AnalyticEnv)(nil)

// LossyEnv wraps perfect analytic payoff measurement with an unreliable
// broadcast medium: each follower independently misses each message with
// probability DropProb, so stragglers keep stale CW values and the leader
// measures a heterogeneous profile. It exercises the protocol's
// noise robustness (use Options.MinImprove > 0 with it).
type LossyEnv struct {
	inner    *AnalyticEnv
	dropProb float64
	src      *rng.Source
	// Deliveries records, per broadcast, which followers actually missed
	// the message; tests assert real loss from it instead of inferring it
	// from stale CWs. Announce and other non-CW messages are recorded
	// with an empty Missed list.
	Deliveries []Delivery
	// Dropped counts (message, follower) pairs that were lost.
	Dropped int
}

// Delivery is the per-message outcome of one lossy broadcast.
type Delivery struct {
	// Msg is the broadcast message.
	Msg Message
	// Missed lists the follower indices that did not receive it.
	Missed []int
}

// NewLossyEnv wraps env with per-node message loss.
func NewLossyEnv(env *AnalyticEnv, dropProb float64, seed uint64) (*LossyEnv, error) {
	if env == nil {
		return nil, ErrNoEnv
	}
	if dropProb < 0 || dropProb >= 1 {
		return nil, fmt.Errorf("search: drop probability %g outside [0, 1)", dropProb)
	}
	return &LossyEnv{inner: env, dropProb: dropProb, src: rng.New(seed)}, nil
}

// Broadcast implements Env with independent per-node losses. The inner
// Log records the message as sent; Deliveries records which followers
// actually received it.
func (e *LossyEnv) Broadcast(msg Message) {
	e.inner.Log = append(e.inner.Log, msg)
	d := Delivery{Msg: msg}
	if msg.Type == StartSearch || msg.Type == Ready {
		for i := range e.inner.cw {
			if i == e.inner.leader {
				continue
			}
			if e.src.Float64() >= e.dropProb {
				e.inner.cw[i] = msg.W
			} else {
				d.Missed = append(d.Missed, i)
				e.Dropped++
			}
		}
	}
	e.Deliveries = append(e.Deliveries, d)
}

// LeaderPayoff implements Env.
func (e *LossyEnv) LeaderPayoff(w int) (float64, error) { return e.inner.LeaderPayoff(w) }

// Profile returns the followers' current CW values.
func (e *LossyEnv) Profile() []int { return e.inner.Profile() }

var _ Env = (*LossyEnv)(nil)

// SimEnv measures the leader's payoff by running the event-driven MAC
// simulator for MeasureTime microseconds per probe — the protocol exactly
// as deployed (paper: U_l = (n_s·g − n_e·e)/t_m). Measurements are noisy;
// pair it with Options.MinImprove.
type SimEnv struct {
	cfg    macsim.Config
	leader int
	probe  uint64
}

// NewSimEnv builds a simulator-backed environment. cfg.CW must hold the
// initial profile; cfg.Duration is the per-probe measurement time t_m.
func NewSimEnv(cfg macsim.Config, leader int) (*SimEnv, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	if leader < 0 || leader >= len(cfg.CW) {
		return nil, fmt.Errorf("search: leader %d outside [0, %d)", leader, len(cfg.CW))
	}
	cfg.CW = append([]int(nil), cfg.CW...)
	return &SimEnv{cfg: cfg, leader: leader}, nil
}

// Broadcast implements Env with perfect delivery.
func (e *SimEnv) Broadcast(msg Message) {
	if msg.Type == StartSearch || msg.Type == Ready {
		for i := range e.cfg.CW {
			if i != e.leader {
				e.cfg.CW[i] = msg.W
			}
		}
	}
}

// LeaderPayoff implements Env by simulation.
func (e *SimEnv) LeaderPayoff(w int) (float64, error) {
	e.cfg.CW[e.leader] = w
	cfg := e.cfg
	e.probe++
	cfg.Seed = e.cfg.Seed + e.probe*0x9e3779b97f4a7c15
	res, err := macsim.Run(cfg)
	if err != nil {
		return 0, err
	}
	return res.Nodes[e.leader].PayoffRate, nil
}

var _ Env = (*SimEnv)(nil)

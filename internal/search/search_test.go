package search

import (
	"fmt"
	"math"
	"testing"

	"selfishmac/internal/core"
	"selfishmac/internal/macsim"
	"selfishmac/internal/phy"
)

// funcEnv adapts a pure payoff function to Env (perfect delivery).
type funcEnv struct {
	payoff func(w int) float64
	msgs   []Message
}

func (e *funcEnv) Broadcast(msg Message)               { e.msgs = append(e.msgs, msg) }
func (e *funcEnv) LeaderPayoff(w int) (float64, error) { return e.payoff(w), nil }

func tentEnv(peak int) *funcEnv {
	return &funcEnv{payoff: func(w int) float64 { return -math.Abs(float64(w - peak)) }}
}

func mustGame(t testing.TB, n int, mode phy.AccessMode) *core.Game {
	t.Helper()
	g, err := core.NewGame(core.DefaultConfig(n, mode))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunFindsPeakRightOfStart(t *testing.T) {
	env := tentEnv(40)
	res, err := Run(env, 0, 10, Options{WMax: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.W != 40 {
		t.Fatalf("found W = %d, want 40", res.W)
	}
	if res.Direction != 1 {
		t.Fatalf("direction = %d, want +1", res.Direction)
	}
	// Probes: start at 10, then 11..40 (30 improving), then 41 overshoots.
	if res.ProbeCount() != 32 {
		t.Fatalf("probes = %d, want 32", res.ProbeCount())
	}
}

func TestRunFindsPeakLeftOfStart(t *testing.T) {
	env := tentEnv(5)
	res, err := Run(env, 0, 20, Options{WMax: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.W != 5 {
		t.Fatalf("found W = %d, want 5", res.W)
	}
	if res.Direction != -1 {
		t.Fatalf("direction = %d, want -1", res.Direction)
	}
}

func TestRunStartAtPeak(t *testing.T) {
	env := tentEnv(20)
	res, err := Run(env, 0, 20, Options{WMax: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.W != 20 || res.Direction != 0 {
		t.Fatalf("W=%d dir=%d, want 20, 0", res.W, res.Direction)
	}
}

func TestRunMessageSequence(t *testing.T) {
	env := tentEnv(12)
	if _, err := Run(env, 3, 10, Options{WMax: 100}); err != nil {
		t.Fatal(err)
	}
	if env.msgs[0].Type != StartSearch || env.msgs[0].W != 10 || env.msgs[0].From != 3 {
		t.Fatalf("first message = %+v, want start-search W=10 from 3", env.msgs[0])
	}
	last := env.msgs[len(env.msgs)-1]
	if last.Type != Announce || last.W != 12 {
		t.Fatalf("last message = %+v, want announce W=12", last)
	}
	for _, m := range env.msgs[1 : len(env.msgs)-1] {
		if m.Type != Ready {
			t.Fatalf("middle message = %+v, want ready", m)
		}
	}
}

func TestRunBoundsValidation(t *testing.T) {
	env := tentEnv(5)
	if _, err := Run(env, 0, 0, Options{}); err == nil {
		t.Error("w0=0 accepted")
	}
	if _, err := Run(env, 0, 5000, Options{WMax: 100}); err == nil {
		t.Error("w0 above WMax accepted")
	}
}

func TestRunStopsAtWMax(t *testing.T) {
	// Monotone increasing payoff: search must stop at WMax.
	env := &funcEnv{payoff: func(w int) float64 { return float64(w) }}
	res, err := Run(env, 0, 95, Options{WMax: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.W != 100 {
		t.Fatalf("W = %d, want WMax 100", res.W)
	}
}

func TestRunPropagatesMeasurementError(t *testing.T) {
	env := &errEnv{failAt: 12}
	res, err := Run(env, 0, 10, Options{WMax: 100})
	if err == nil {
		t.Fatal("measurement error swallowed")
	}
	// The probes gathered before the failure (W=10, 11) must survive so
	// callers can see where the walk died.
	if res.ProbeCount() != 2 {
		t.Fatalf("partial result has %d probes, want 2 (W=10, 11)", res.ProbeCount())
	}
	for i, want := range []int{10, 11} {
		if res.Probes[i].W != want {
			t.Errorf("partial probe %d at W=%d, want %d", i, res.Probes[i].W, want)
		}
	}
	if res.Measurements != 3 {
		t.Errorf("measurements = %d, want 3 (two good, one failed)", res.Measurements)
	}
}

func TestAcceleratedPropagatesPartialResult(t *testing.T) {
	// 13 is on the geometric path from 10 (11, 13, 17, ...).
	env := &errEnv{failAt: 13}
	res, err := AcceleratedSearch(env, 0, 10, Options{WMax: 100})
	if err == nil {
		t.Fatal("measurement error swallowed")
	}
	if res.ProbeCount() == 0 {
		t.Fatal("accelerated search discarded partial probes on error")
	}
}

type errEnv struct{ failAt int }

func (e *errEnv) Broadcast(Message) {}
func (e *errEnv) LeaderPayoff(w int) (float64, error) {
	if w == e.failAt {
		return 0, fmt.Errorf("boom at %d", w)
	}
	return float64(w), nil
}

// The protocol against the real analytic game must land on (or next to)
// the exact efficient NE.
func TestRunFindsEfficientNEAnalytic(t *testing.T) {
	g := mustGame(t, 5, phy.RTSCTS)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewAnalyticEnv(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(env, 0, 4, Options{WMax: g.Config().WMax})
	if err != nil {
		t.Fatal(err)
	}
	if res.W != ne.WStar {
		t.Fatalf("protocol found W = %d, exact NE = %d", res.W, ne.WStar)
	}
	// After the announce every follower sits at the found CW.
	for i, w := range env.Profile() {
		if i != 0 && w != res.W && w != res.W+1 {
			// The final Ready before the overshoot probe may leave
			// followers one step past the peak; the announce is what
			// nodes adopt. Accept either.
			t.Fatalf("follower %d at %d after search for %d", i, w, res.W)
		}
	}
}

func TestRunLeftSearchFromAbove(t *testing.T) {
	g := mustGame(t, 5, phy.RTSCTS)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	start := ne.WStar + 30
	env, err := NewAnalyticEnv(g, 2, start)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(env, 2, start, Options{WMax: g.Config().WMax})
	if err != nil {
		t.Fatal(err)
	}
	if res.W != ne.WStar {
		t.Fatalf("left search found %d, want %d", res.W, ne.WStar)
	}
	if res.Direction != -1 {
		t.Fatalf("direction = %d, want -1", res.Direction)
	}
}

func TestAcceleratedMatchesExhaustive(t *testing.T) {
	for _, peak := range []int{3, 47, 312, 2000} {
		env := tentEnv(peak)
		res, err := AcceleratedSearch(env, 0, 16, Options{WMax: 4096})
		if err != nil {
			t.Fatal(err)
		}
		if res.W != peak {
			t.Errorf("peak %d: accelerated found %d", peak, res.W)
		}
	}
}

func TestAcceleratedUsesFarFewerProbes(t *testing.T) {
	g := mustGame(t, 20, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	envSlow, err := NewAnalyticEnv(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(envSlow, 0, 16, Options{WMax: g.Config().WMax})
	if err != nil {
		t.Fatal(err)
	}
	envFast, err := NewAnalyticEnv(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := AcceleratedSearch(envFast, 0, 16, Options{WMax: g.Config().WMax})
	if err != nil {
		t.Fatal(err)
	}
	if fast.W != ne.WStar && int(math.Abs(float64(fast.W-ne.WStar))) > 2 {
		t.Errorf("accelerated found %d, exact NE %d", fast.W, ne.WStar)
	}
	if slow.W != ne.WStar {
		t.Errorf("paper search found %d, exact NE %d", slow.W, ne.WStar)
	}
	if fast.ProbeCount()*5 > slow.ProbeCount() {
		t.Errorf("accelerated used %d probes vs paper %d; want >= 5x fewer",
			fast.ProbeCount(), slow.ProbeCount())
	}
}

func TestSimEnvSearchLandsOnPlateau(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed search is slow")
	}
	p := phy.Default()
	g := mustGame(t, 5, phy.RTSCTS)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	cw := []int{8, 8, 8, 8, 8}
	env, err := NewSimEnv(macsim.Config{
		Timing:   p.MustTiming(phy.RTSCTS),
		MaxStage: p.MaxBackoffStage,
		CW:       cw,
		Duration: 20e6, // t_m = 20 s per probe
		Seed:     3,
		Gain:     1,
		Cost:     0.01,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AcceleratedSearch(env, 0, 8, Options{WMax: 512, MinImprove: 2e-7})
	if err != nil {
		t.Fatal(err)
	}
	// Measured payoffs are noisy and the RTS/CTS plateau is flat: accept
	// anything whose analytic payoff is within 3% of the peak.
	u, err := g.UniformUtilityRate(res.W)
	if err != nil {
		t.Fatal(err)
	}
	if u < 0.97*ne.UStar {
		t.Errorf("simulated search found W=%d with utility %.3g, peak %.3g (NE %d)",
			res.W, u, ne.UStar, ne.WStar)
	}
}

func TestLossyEnvStillConvergesNearNE(t *testing.T) {
	g := mustGame(t, 10, phy.RTSCTS)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	inner, err := NewAnalyticEnv(g, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := NewLossyEnv(inner, 0.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(lossy, 0, 8, Options{WMax: g.Config().WMax})
	if err != nil {
		t.Fatal(err)
	}
	u, err := g.UniformUtilityRate(res.W)
	if err != nil {
		t.Fatal(err)
	}
	// With 20% message loss the walk still has to end on the payoff
	// plateau (within 5% of the peak utility).
	if u < 0.95*ne.UStar {
		t.Errorf("lossy search found W=%d with utility %.3g vs peak %.3g (NE %d)",
			res.W, u, ne.UStar, ne.WStar)
	}
}

func TestLossyEnvRecordsDeliveryOutcomes(t *testing.T) {
	g := mustGame(t, 10, phy.RTSCTS)
	inner, err := NewAnalyticEnv(g, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := NewLossyEnv(inner, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(lossy, 0, 8, Options{WMax: g.Config().WMax}); err != nil {
		t.Fatal(err)
	}
	if len(lossy.Deliveries) != len(inner.Log) {
		t.Fatalf("%d delivery records for %d sent messages", len(lossy.Deliveries), len(inner.Log))
	}
	// At 30% loss over a full walk some followers must have missed
	// messages, and the Dropped counter must equal the recorded misses.
	missed := 0
	for i, d := range lossy.Deliveries {
		if d.Msg != inner.Log[i] {
			t.Fatalf("delivery %d records %+v, log has %+v", i, d.Msg, inner.Log[i])
		}
		missed += len(d.Missed)
		for _, f := range d.Missed {
			if f == 0 {
				t.Fatal("the leader cannot miss its own broadcast")
			}
		}
		if d.Msg.Type == Announce && len(d.Missed) != 0 {
			t.Fatalf("announce recorded misses: %+v", d)
		}
	}
	if missed == 0 {
		t.Fatal("30% loss produced no recorded misses")
	}
	if lossy.Dropped != missed {
		t.Fatalf("Dropped = %d but deliveries record %d misses", lossy.Dropped, missed)
	}
}

func TestLossyEnvValidation(t *testing.T) {
	g := mustGame(t, 3, phy.Basic)
	inner, err := NewAnalyticEnv(g, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLossyEnv(nil, 0.1, 1); err == nil {
		t.Error("nil inner env accepted")
	}
	if _, err := NewLossyEnv(inner, 1.0, 1); err == nil {
		t.Error("drop probability 1 accepted")
	}
	if _, err := NewLossyEnv(inner, -0.1, 1); err == nil {
		t.Error("negative drop probability accepted")
	}
}

func TestAnalyticEnvValidation(t *testing.T) {
	g := mustGame(t, 3, phy.Basic)
	if _, err := NewAnalyticEnv(nil, 0, 8); err == nil {
		t.Error("nil game accepted")
	}
	if _, err := NewAnalyticEnv(g, 3, 8); err == nil {
		t.Error("out-of-range leader accepted")
	}
}

func TestSimEnvValidation(t *testing.T) {
	p := phy.Default()
	good := macsim.Config{
		Timing:   p.MustTiming(phy.Basic),
		MaxStage: 6,
		CW:       []int{8, 8},
		Duration: 1e6,
		Gain:     1,
		Cost:     0.01,
	}
	if _, err := NewSimEnv(good, 5); err == nil {
		t.Error("out-of-range leader accepted")
	}
	bad := good
	bad.Duration = 0
	if _, err := NewSimEnv(bad, 0); err == nil {
		t.Error("invalid sim config accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	if StartSearch.String() != "start-search" || Ready.String() != "ready" || Announce.String() != "announce" {
		t.Fatalf("strings: %v %v %v", StartSearch, Ready, Announce)
	}
	if MsgType(9).String() == "" {
		t.Fatal("unknown type has empty string")
	}
}

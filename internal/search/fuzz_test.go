package search

import "testing"

// landscapePayoff derives an arbitrary but deterministic payoff landscape
// from a fuzz seed: payoff(w) is a hash of (seed, w) mapped into [0, 1).
// The landscape has no structure at all — no unimodality, plateaus and
// ties everywhere — which is exactly what the termination guarantee must
// survive.
func landscapePayoff(seed uint64) func(w int) float64 {
	return func(w int) float64 {
		x := seed ^ (uint64(w) * 0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return float64(x>>11) / (1 << 53)
	}
}

// FuzzRunTerminates asserts the paper walk's contract on arbitrary payoff
// landscapes: it terminates within 2*WMax probes and announces a CW in
// [1, WMax].
func FuzzRunTerminates(f *testing.F) {
	f.Add(uint64(0), 16, 64)
	f.Add(uint64(1), 1, 1)
	f.Add(uint64(42), 64, 64)
	f.Add(uint64(7), 33, 100)
	f.Fuzz(func(t *testing.T, seed uint64, w0, wMax int) {
		if wMax < 1 || wMax > 4096 {
			wMax = 1 + int(uint(wMax)%4096)
		}
		if w0 < 1 || w0 > wMax {
			w0 = 1 + int(uint(w0)%uint(wMax))
		}
		env := &funcEnv{payoff: landscapePayoff(seed)}
		res, err := Run(env, 0, w0, Options{WMax: wMax})
		if err != nil {
			t.Fatalf("Run failed on a total payoff landscape: %v", err)
		}
		if res.W < 1 || res.W > wMax {
			t.Fatalf("announced W=%d outside [1, %d]", res.W, wMax)
		}
		if res.ProbeCount() > 2*wMax {
			t.Fatalf("used %d probes, bound is 2*WMax = %d", res.ProbeCount(), 2*wMax)
		}
		// The announced W must be one of the measured points.
		found := false
		for _, p := range res.Probes {
			if p.W == res.W {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("announced W=%d was never measured", res.W)
		}
	})
}

// FuzzResilientRunTerminates asserts the same contract for the hardened
// walk, whose patience and re-verification add at most one extra probe
// per step: 2*WMax probes total.
func FuzzResilientRunTerminates(f *testing.F) {
	f.Add(uint64(0), 16, 64)
	f.Add(uint64(3), 5, 30)
	f.Add(uint64(99), 1, 1)
	f.Fuzz(func(t *testing.T, seed uint64, w0, wMax int) {
		if wMax < 1 || wMax > 1024 {
			wMax = 1 + int(uint(wMax)%1024)
		}
		if w0 < 1 || w0 > wMax {
			w0 = 1 + int(uint(w0)%uint(wMax))
		}
		env := &funcEnv{payoff: landscapePayoff(seed)}
		res, err := ResilientRun(env, 0, w0, Options{WMax: wMax, MeasureK: 2})
		if err != nil {
			t.Fatalf("ResilientRun failed on a total payoff landscape: %v", err)
		}
		if res.W < 1 || res.W > wMax {
			t.Fatalf("announced W=%d outside [1, %d]", res.W, wMax)
		}
		if res.ProbeCount() > 2*wMax {
			t.Fatalf("used %d probes, bound is 2*WMax = %d", res.ProbeCount(), 2*wMax)
		}
		if res.Degraded {
			t.Fatal("Degraded set without a probe budget")
		}
	})
}

package search

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"selfishmac/internal/phy"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		o    Options
	}{
		{"negative WMax", Options{WMax: -1}},
		{"negative MinImprove", Options{MinImprove: -0.1}},
		{"NaN MinImprove", Options{MinImprove: math.NaN()}},
		{"negative Retries", Options{Retries: -1}},
		{"negative BackoffBase", Options{BackoffBase: -time.Second}},
		{"negative BackoffMax", Options{BackoffMax: -time.Second}},
		{"BackoffMax below BackoffBase", Options{BackoffBase: time.Second, BackoffMax: time.Millisecond}},
		{"negative MeasureK", Options{MeasureK: -3}},
		{"negative ProbeBudget", Options{ProbeBudget: -1}},
		{"negative ReadyRepeats", Options{ReadyRepeats: -2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.o.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", tc.o)
			}
			// Every entry point must reject the same options.
			env := tentEnv(5)
			if _, err := Run(env, 0, 4, tc.o); err == nil {
				t.Error("Run accepted invalid options")
			}
			if _, err := AcceleratedSearch(env, 0, 4, tc.o); err == nil {
				t.Error("AcceleratedSearch accepted invalid options")
			}
			if _, err := ResilientRun(env, 0, 4, tc.o); err == nil {
				t.Error("ResilientRun accepted invalid options")
			}
			if _, err := ResilientAcceleratedSearch(env, 0, 4, tc.o); err == nil {
				t.Error("ResilientAcceleratedSearch accepted invalid options")
			}
		})
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

// Without faults the resilient walk must reproduce the paper walk exactly.
func TestResilientRunMatchesRunFaultFree(t *testing.T) {
	for _, peak := range []int{5, 20, 40} {
		plain, err := Run(tentEnv(peak), 0, 20, Options{WMax: 100})
		if err != nil {
			t.Fatal(err)
		}
		hard, err := ResilientRun(tentEnv(peak), 0, 20, Options{WMax: 100, MeasureK: 3})
		if err != nil {
			t.Fatal(err)
		}
		if hard.W != plain.W {
			t.Errorf("peak %d: resilient found %d, paper walk %d", peak, hard.W, plain.W)
		}
		if hard.Degraded || hard.FailedOver {
			t.Errorf("peak %d: fault-free run flagged degraded=%v failedOver=%v",
				peak, hard.Degraded, hard.FailedOver)
		}
		if hard.Direction != plain.Direction {
			t.Errorf("peak %d: direction %d vs %d", peak, hard.Direction, plain.Direction)
		}
	}
}

func TestResilientAcceleratedMatchesFaultFree(t *testing.T) {
	for _, peak := range []int{3, 47, 312} {
		plain, err := AcceleratedSearch(tentEnv(peak), 0, 16, Options{WMax: 4096})
		if err != nil {
			t.Fatal(err)
		}
		hard, err := ResilientAcceleratedSearch(tentEnv(peak), 0, 16, Options{WMax: 4096})
		if err != nil {
			t.Fatal(err)
		}
		if hard.W != plain.W {
			t.Errorf("peak %d: resilient accelerated found %d, plain %d", peak, hard.W, plain.W)
		}
	}
}

// retryEnv fails the first failures calls to LeaderPayoff at each W.
type retryEnv struct {
	funcEnv
	failures int
	seen     map[int]int
}

func (e *retryEnv) LeaderPayoff(w int) (float64, error) {
	if e.seen == nil {
		e.seen = make(map[int]int)
	}
	if e.seen[w]++; e.seen[w] <= e.failures {
		return 0, fmt.Errorf("transient failure %d at W=%d", e.seen[w], w)
	}
	return e.payoff(w), nil
}

func TestResilientRunRetriesTransientFailures(t *testing.T) {
	env := &retryEnv{funcEnv: *tentEnv(15), failures: 2}
	res, err := ResilientRun(env, 0, 10, Options{WMax: 100, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.W != 15 {
		t.Fatalf("found W=%d, want 15", res.W)
	}
	if res.Retries == 0 {
		t.Error("no retries counted despite injected failures")
	}
	if res.Measurements <= res.ProbeCount() {
		t.Errorf("measurements %d should exceed probes %d (retries happened)",
			res.Measurements, res.ProbeCount())
	}
}

func TestResilientRunGivesUpAfterRetries(t *testing.T) {
	// Every measurement fails: the starting point is unmeasurable.
	env := &retryEnv{funcEnv: *tentEnv(15), failures: 1 << 30}
	if _, err := ResilientRun(env, 0, 10, Options{WMax: 100, Retries: 1}); err == nil {
		t.Fatal("permanently failing environment produced a result")
	}
}

// outlierEnv corrupts every third measurement with a huge value.
type outlierEnv struct {
	funcEnv
	calls int
}

func (e *outlierEnv) LeaderPayoff(w int) (float64, error) {
	e.calls++
	if e.calls%3 == 0 {
		return 1e9, nil
	}
	return e.payoff(w), nil
}

func TestResilientRunMedianRejectsOutliers(t *testing.T) {
	env := &outlierEnv{funcEnv: *tentEnv(25)}
	res, err := ResilientRun(env, 0, 10, Options{WMax: 100, MeasureK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.W != 25 {
		t.Fatalf("outliers derailed the walk: W=%d, want 25", res.W)
	}
	plain, err := Run(&outlierEnv{funcEnv: *tentEnv(25)}, 0, 10, Options{WMax: 100})
	if err != nil {
		t.Fatal(err)
	}
	if plain.W == 25 {
		t.Skip("plain walk happened to survive the outliers; median had nothing to prove")
	}
}

func TestResilientRunBudgetDegrades(t *testing.T) {
	res, err := ResilientRun(tentEnv(60), 0, 10, Options{WMax: 100, ProbeBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("budget exhausted but Degraded not set")
	}
	if res.Measurements > 8 {
		t.Fatalf("used %d measurements with budget 8", res.Measurements)
	}
	// Best-so-far: the walk was climbing right, so the answer is the best
	// point measured, strictly between start and peak.
	if res.W < 10 || res.W >= 60 {
		t.Fatalf("degraded W=%d outside the climbed range [10, 60)", res.W)
	}
}

func TestResilientRunNoBudgetNoDegrade(t *testing.T) {
	res, err := ResilientRun(tentEnv(20), 0, 10, Options{WMax: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("unlimited budget run flagged Degraded")
	}
}

// crashingPayoff returns ErrLeaderCrashed (wrapped) after crashAfter
// successful measurements, permanently until reset.
type crashingPayoff struct {
	payoff     func(w int) float64
	crashAfter int
	calls      int
	down       bool
}

func (c *crashingPayoff) measure(w int) (float64, error) {
	c.calls++
	if c.down || c.calls > c.crashAfter {
		c.down = true
		return 0, fmt.Errorf("wrapped: %w", ErrLeaderCrashed)
	}
	return c.payoff(w), nil
}

// crashEnv is a crashing environment with failover support. The deputy
// gets a fresh crash countdown of deputyLife measurements (0 = immortal).
type crashEnv struct {
	funcEnv
	crashingPayoff
	canRecover bool
	deputyLife int
}

func newCrashEnv(peak, crashAfter int, canRecover bool) *crashEnv {
	e := &crashEnv{funcEnv: *tentEnv(peak), canRecover: canRecover}
	e.crashingPayoff = crashingPayoff{payoff: e.funcEnv.payoff, crashAfter: crashAfter}
	return e
}

func (e *crashEnv) LeaderPayoff(w int) (float64, error) { return e.crashingPayoff.measure(w) }

func (e *crashEnv) Failover(proposed int) (int, error) {
	if !e.canRecover {
		return 0, errors.New("no deputy available")
	}
	e.down = false
	e.calls = 0
	if e.deputyLife > 0 {
		e.crashAfter = e.deputyLife
	} else {
		e.crashAfter = 1 << 30
	}
	return proposed, nil
}

// crashNoFailoverEnv crashes but offers no failover at all.
type crashNoFailoverEnv struct {
	funcEnv
	crashingPayoff
}

func newCrashNoFailoverEnv(peak, crashAfter int) *crashNoFailoverEnv {
	e := &crashNoFailoverEnv{funcEnv: *tentEnv(peak)}
	e.crashingPayoff = crashingPayoff{payoff: e.funcEnv.payoff, crashAfter: crashAfter}
	return e
}

func (e *crashNoFailoverEnv) LeaderPayoff(w int) (float64, error) { return e.crashingPayoff.measure(w) }

func TestResilientRunFailover(t *testing.T) {
	env := newCrashEnv(20, 4, true)
	res, err := ResilientRun(env, 0, 10, Options{WMax: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FailedOver {
		t.Fatal("leader crash not reported as failover")
	}
	if res.Leader != 1 {
		t.Fatalf("deputy %d, want proposed 1", res.Leader)
	}
	if res.W != 20 {
		t.Fatalf("deputy finished at W=%d, want 20", res.W)
	}
	// The announce must come from the deputy.
	last := env.msgs[len(env.msgs)-1]
	if last.Type != Announce || last.From != 1 {
		t.Fatalf("final message %+v, want announce from deputy 1", last)
	}
}

func TestResilientRunFailoverUnsupported(t *testing.T) {
	// The environment does not implement FailoverEnv: a crash is fatal,
	// but the probes gathered so far must survive.
	env := newCrashNoFailoverEnv(20, 4)
	res, err := ResilientRun(env, 0, 10, Options{WMax: 100})
	if err == nil {
		t.Fatal("crash without failover support produced a result")
	}
	if !errors.Is(err, ErrLeaderCrashed) {
		t.Fatalf("error %v does not wrap ErrLeaderCrashed", err)
	}
	if res.ProbeCount() == 0 {
		t.Error("partial probes discarded on fatal error")
	}
}

func TestResilientRunFailoverRefused(t *testing.T) {
	// Failover exists but fails (no live deputy): fatal.
	env := newCrashEnv(20, 4, false)
	if _, err := ResilientRun(env, 0, 10, Options{WMax: 100}); err == nil {
		t.Fatal("refused failover produced a result")
	}
}

func TestResilientRunDeputyCrashFatal(t *testing.T) {
	// The deputy crashes after 2 more measurements; the runner must treat
	// the second crash as fatal, not loop failovers forever.
	env := newCrashEnv(50, 3, true)
	env.deputyLife = 2
	res, err := ResilientRun(env, 0, 10, Options{WMax: 100})
	if err == nil {
		t.Fatalf("second crash not fatal (W=%d)", res.W)
	}
	if !errors.Is(err, ErrLeaderCrashed) {
		t.Fatalf("error %v does not wrap ErrLeaderCrashed", err)
	}
}

// nackEnv reports every broadcast as missed by someone, forcing the
// maximum number of re-broadcasts.
type nackEnv struct{ funcEnv }

func (e *nackEnv) LastBroadcastAcked() bool { return false }

func TestResilientRunRebroadcastsOnMissingAck(t *testing.T) {
	env := &nackEnv{funcEnv: *tentEnv(12)}
	res, err := ResilientRun(env, 0, 10, Options{WMax: 100, ReadyRepeats: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebroadcasts == 0 {
		t.Fatal("no rebroadcasts despite permanent nack")
	}
	// Announce messages must not be re-broadcast: count them.
	announces := 0
	for _, m := range env.msgs {
		if m.Type == Announce {
			announces++
		}
	}
	if announces != 1 {
		t.Fatalf("%d announce messages, want exactly 1", announces)
	}
}

// The resilient walk against the real analytic game must land on the
// exact efficient NE, like the paper walk.
func TestResilientRunFindsEfficientNEAnalytic(t *testing.T) {
	g := mustGame(t, 5, phy.RTSCTS)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewAnalyticEnv(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ResilientRun(env, 0, 4, Options{WMax: g.Config().WMax, MeasureK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.W != ne.WStar {
		t.Fatalf("resilient walk found W=%d, exact NE %d", res.W, ne.WStar)
	}
}

// Package search implements the paper's Section V.C distributed algorithm
// for approaching the efficient NE when the population size is unknown:
// a leader node broadcasts Start-Search, walks the common CW value up
// (Right-Search) and, if the first step already hurt, down (Left-Search),
// measuring its own payoff at each operating point, and finally announces
// the best CW found.
//
// The protocol is simulated at the message level: an Env carries the
// broadcast medium and the payoff measurement. Three environments are
// provided — exact analytic payoffs, simulator-measured (noisy) payoffs,
// and a lossy broadcast medium under which some nodes miss Ready messages
// so the leader measures a heterogeneous profile.
//
// The paper notes better algorithms exist; AcceleratedSearch implements
// one (geometric step growth with step-halving refinement) and the bench
// suite compares probe counts.
package search

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// MsgType enumerates the protocol's broadcast messages.
type MsgType int

const (
	// StartSearch opens the search at a starting CW.
	StartSearch MsgType = iota + 1
	// Ready carries the next CW every node should adopt.
	Ready
	// Announce publishes the final CW of the efficient NE.
	Announce
)

// String implements fmt.Stringer.
func (m MsgType) String() string {
	switch m {
	case StartSearch:
		return "start-search"
	case Ready:
		return "ready"
	case Announce:
		return "announce"
	default:
		return fmt.Sprintf("MsgType(%d)", int(m))
	}
}

// Message is one broadcast protocol message.
type Message struct {
	Type MsgType
	From int
	W    int
}

// Env is the world the protocol runs against.
type Env interface {
	// Broadcast delivers msg to the other nodes (possibly unreliably).
	// Nodes react to Ready/StartSearch by setting their CW to msg.W.
	Broadcast(msg Message)
	// LeaderPayoff measures the leader's payoff at the current network
	// configuration with the leader itself at CW w.
	LeaderPayoff(w int) (float64, error)
}

// Probe records one payoff measurement.
type Probe struct {
	W      int
	Payoff float64
}

// Result is the outcome of a search.
type Result struct {
	// W is the CW value announced as the efficient NE.
	W int
	// Probes lists every accepted measurement in order (for the resilient
	// runners, one entry per operating point with the median payoff).
	Probes []Probe
	// Direction is +1 if Right-Search found the peak, -1 if Left-Search
	// did, 0 if the start was already the peak.
	Direction int
	// Leader is the node that announced the result — the original leader,
	// or the deputy after a failover.
	Leader int
	// Degraded is set by the resilient runners when the probe budget ran
	// out before the walk finished; W is then the best CW found so far.
	Degraded bool
	// FailedOver reports that the leader crashed mid-search and a deputy
	// completed it.
	FailedOver bool
	// Measurements counts raw LeaderPayoff calls, including retries and
	// the extra samples of median-of-k (>= len(Probes)).
	Measurements int
	// Retries counts measurement attempts repeated after transient errors.
	Retries int
	// Rebroadcasts counts Ready re-broadcasts sent because a follower
	// missed the previous one (AckEnv environments only).
	Rebroadcasts int
}

// ProbeCount returns the number of payoff measurements used.
func (r Result) ProbeCount() int { return len(r.Probes) }

// Options tunes the search.
type Options struct {
	// WMax bounds the walk. Zero defaults to 4096.
	WMax int
	// MinImprove is the minimum payoff improvement that counts as
	// progress; it makes hill climbing robust to measurement noise.
	// Zero reproduces the paper's strict comparison.
	MinImprove float64

	// The remaining fields tune the resilient runners (ResilientRun,
	// ResilientAcceleratedSearch); Run and AcceleratedSearch ignore them.

	// Retries is how many times a failed payoff measurement is retried
	// before the sample is given up. Zero defaults to 2.
	Retries int
	// BackoffBase is the delay before the first retry; it doubles per
	// attempt up to BackoffMax (bounded exponential backoff). Zero means
	// no sleeping — simulated environments fail deterministically, so
	// tests stay instant; deployments set a real base.
	BackoffBase time.Duration
	// BackoffMax caps the retry delay. Zero with a positive BackoffBase
	// defaults to 16x the base.
	BackoffMax time.Duration
	// MeasureK measures each operating point this many times and keeps
	// the median, rejecting outlier measurements. Zero defaults to 1
	// (a single sample, the paper's behavior).
	MeasureK int
	// ProbeBudget bounds the total number of raw LeaderPayoff calls
	// (including retries and median-of-k samples). When it runs out the
	// resilient runners announce the best CW so far and set
	// Result.Degraded instead of erroring. Zero means unlimited.
	ProbeBudget int
	// ReadyRepeats is how many times a Ready broadcast is repeated when
	// the environment reports a missed acknowledgement (AckEnv). Zero
	// defaults to 2.
	ReadyRepeats int
}

// Validate rejects nonsensical option combinations. The zero value is
// valid (every field has a documented default).
func (o Options) Validate() error {
	if o.WMax < 0 {
		return fmt.Errorf("search: negative WMax %d", o.WMax)
	}
	if o.MinImprove < 0 || math.IsNaN(o.MinImprove) {
		return fmt.Errorf("search: invalid MinImprove %g", o.MinImprove)
	}
	if o.Retries < 0 {
		return fmt.Errorf("search: negative Retries %d", o.Retries)
	}
	if o.BackoffBase < 0 {
		return fmt.Errorf("search: negative BackoffBase %v", o.BackoffBase)
	}
	if o.BackoffMax < 0 {
		return fmt.Errorf("search: negative BackoffMax %v", o.BackoffMax)
	}
	if o.BackoffMax > 0 && o.BackoffMax < o.BackoffBase {
		return fmt.Errorf("search: BackoffMax %v below BackoffBase %v", o.BackoffMax, o.BackoffBase)
	}
	if o.MeasureK < 0 {
		return fmt.Errorf("search: negative MeasureK %d", o.MeasureK)
	}
	if o.ProbeBudget < 0 {
		return fmt.Errorf("search: negative ProbeBudget %d", o.ProbeBudget)
	}
	if o.ReadyRepeats < 0 {
		return fmt.Errorf("search: negative ReadyRepeats %d", o.ReadyRepeats)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.WMax <= 0 {
		o.WMax = 4096
	}
	return o
}

// Run executes the paper's algorithm verbatim from starting CW w0 with
// the given leader id. On a measurement error it returns the probes
// gathered so far alongside the error, so callers can see where the walk
// died.
func Run(env Env, leader, w0 int, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	o := opts.withDefaults()
	if w0 < 1 || w0 > o.WMax {
		return Result{}, fmt.Errorf("search: starting CW %d outside [1, %d]", w0, o.WMax)
	}
	res := Result{Leader: leader}
	measure := func(w int) (float64, error) {
		p, err := env.LeaderPayoff(w)
		res.Measurements++
		if err != nil {
			return 0, fmt.Errorf("search: measuring payoff at W=%d: %w", w, err)
		}
		res.Probes = append(res.Probes, Probe{W: w, Payoff: p})
		return p, nil
	}

	// Step 1: Start-Search at w0.
	env.Broadcast(Message{Type: StartSearch, From: leader, W: w0})
	best, err := measure(w0)
	if err != nil {
		return res, err
	}
	wm := w0

	// Step 2: Right-Search.
	for w := w0 + 1; w <= o.WMax; w++ {
		env.Broadcast(Message{Type: Ready, From: leader, W: w})
		p, err := measure(w)
		if err != nil {
			return res, err
		}
		if p <= best+o.MinImprove {
			break
		}
		best, wm = p, w
	}
	if wm > w0 {
		res.Direction = 1
	}

	// Step 3: Left-Search, only if Right-Search made no progress (the
	// paper: skip unless Wm "== W0 + 1" in its 1-indexed bookkeeping,
	// i.e. the very first rightward step already decreased the payoff).
	if wm == w0 {
		for w := w0 - 1; w >= 1; w-- {
			env.Broadcast(Message{Type: Ready, From: leader, W: w})
			p, err := measure(w)
			if err != nil {
				return res, err
			}
			if p <= best+o.MinImprove {
				break
			}
			best, wm = p, w
		}
		if wm < w0 {
			res.Direction = -1
		}
	}

	// Step 4: announce.
	env.Broadcast(Message{Type: Announce, From: leader, W: wm})
	res.W = wm
	return res, nil
}

// AcceleratedSearch is the package's improved variant: it grows the step
// geometrically while the payoff improves, then refines by halving the
// step around the best point. It uses O(log W*) probes instead of the
// paper's O(W*) while still only requiring local payoff measurements.
func AcceleratedSearch(env Env, leader, w0 int, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	o := opts.withDefaults()
	if w0 < 1 || w0 > o.WMax {
		return Result{}, fmt.Errorf("search: starting CW %d outside [1, %d]", w0, o.WMax)
	}
	res := Result{Leader: leader}
	cache := make(map[int]float64)
	measure := func(w int) (float64, error) {
		if p, ok := cache[w]; ok {
			return p, nil
		}
		env.Broadcast(Message{Type: Ready, From: leader, W: w})
		p, err := env.LeaderPayoff(w)
		res.Measurements++
		if err != nil {
			return 0, fmt.Errorf("search: measuring payoff at W=%d: %w", w, err)
		}
		cache[w] = p
		res.Probes = append(res.Probes, Probe{W: w, Payoff: p})
		return p, nil
	}

	env.Broadcast(Message{Type: StartSearch, From: leader, W: w0})
	best, err := measure(w0)
	if err != nil {
		return res, err
	}
	wm := w0

	// Expansion: try geometric steps right, then left if right fails.
	for _, dir := range []int{1, -1} {
		step := 1
		for {
			w := wm + dir*step
			if w < 1 || w > o.WMax {
				break
			}
			p, err := measure(w)
			if err != nil {
				return res, err
			}
			if p <= best+o.MinImprove {
				break
			}
			best, wm = p, w
			res.Direction = dir
			step *= 2
		}
		if wm != w0 {
			break // progress in this direction; the peak is bracketed
		}
	}

	// Refinement: shrink the step around wm.
	for step := maxInt(wm/4, 1); step >= 1; step /= 2 {
		for {
			improved := false
			for _, dir := range []int{1, -1} {
				w := wm + dir*step
				if w < 1 || w > o.WMax {
					continue
				}
				p, err := measure(w)
				if err != nil {
					return res, err
				}
				if p > best+o.MinImprove {
					best, wm = p, w
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		if step == 1 {
			break
		}
	}

	env.Broadcast(Message{Type: Announce, From: leader, W: wm})
	res.W = wm
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ErrNoEnv is returned by constructors given a nil dependency.
var ErrNoEnv = errors.New("search: nil dependency")

package search

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// ErrLeaderCrashed is the sentinel an Env returns (possibly wrapped) from
// LeaderPayoff when the current leader has crash-stopped. The resilient
// runners react by promoting a deputy through FailoverEnv; the plain
// runners propagate it like any other measurement error.
var ErrLeaderCrashed = errors.New("search: leader crashed")

// AckEnv is an Env that can report whether its most recent broadcast
// reached every live follower. The resilient runners use it to re-send
// Ready messages that some follower missed (Options.ReadyRepeats).
type AckEnv interface {
	Env
	// LastBroadcastAcked reports whether every live follower received the
	// most recent broadcast.
	LastBroadcastAcked() bool
}

// FailoverEnv is an Env that supports replacing a crashed leader. The
// resilient runners propose the next node id; the environment may adjust
// it (e.g. to skip crashed followers) and returns the deputy that
// actually took over.
type FailoverEnv interface {
	Env
	Failover(proposed int) (int, error)
}

// probeStatus classifies one hardened measurement.
type probeStatus int

const (
	probeOK     probeStatus = iota // median payoff available
	probeFailed                    // all samples failed; point is unmeasurable
	probeBudget                    // probe budget exhausted mid-measurement
	probeFatal                     // unrecoverable (leader crashed, no failover)
)

// prober wraps an Env with the resilience machinery shared by
// ResilientRun and ResilientAcceleratedSearch: per-sample retry with
// bounded exponential backoff, median-of-k outlier rejection, Ready
// re-broadcast on missing acknowledgement, leader failover, and a global
// probe budget.
type prober struct {
	env    Env
	o      Options
	res    *Result
	leader int
	used   int // raw LeaderPayoff calls
	fatal  error
}

func newProber(env Env, leader int, o Options) *prober {
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.MeasureK == 0 {
		o.MeasureK = 1
	}
	if o.ReadyRepeats == 0 {
		o.ReadyRepeats = 2
	}
	if o.BackoffBase > 0 && o.BackoffMax == 0 {
		o.BackoffMax = 16 * o.BackoffBase
	}
	return &prober{env: env, o: o, res: &Result{Leader: leader}, leader: leader}
}

// broadcast sends msg, re-sending Ready messages a missed acknowledgement
// reports as undelivered (when the environment supports acks).
func (p *prober) broadcast(t MsgType, w int) {
	p.env.Broadcast(Message{Type: t, From: p.leader, W: w})
	ack, ok := p.env.(AckEnv)
	if !ok || t == Announce {
		return
	}
	for r := 0; r < p.o.ReadyRepeats && !ack.LastBroadcastAcked(); r++ {
		p.env.Broadcast(Message{Type: t, From: p.leader, W: w})
		p.res.Rebroadcasts++
	}
}

// sample performs one raw measurement with retry/backoff and failover.
func (p *prober) sample(w int) (float64, probeStatus) {
	backoff := p.o.BackoffBase
	for attempt := 0; ; attempt++ {
		if p.o.ProbeBudget > 0 && p.used >= p.o.ProbeBudget {
			return 0, probeBudget
		}
		v, err := p.env.LeaderPayoff(w)
		p.used++
		p.res.Measurements++
		if err == nil {
			return v, probeOK
		}
		if errors.Is(err, ErrLeaderCrashed) {
			if st := p.failover(w); st != probeOK {
				return 0, st
			}
			continue // crash handling does not consume a retry
		}
		if attempt >= p.o.Retries {
			return 0, probeFailed
		}
		p.res.Retries++
		if backoff > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > p.o.BackoffMax {
				backoff = p.o.BackoffMax
			}
		}
	}
}

// failover promotes a deputy after a leader crash and re-broadcasts the
// current Ready so the network hears from its new leader.
func (p *prober) failover(w int) probeStatus {
	fo, ok := p.env.(FailoverEnv)
	if !ok || p.res.FailedOver {
		// No failover support, or the deputy crashed too: unrecoverable.
		if p.res.FailedOver {
			p.fatal = fmt.Errorf("search: deputy leader %d crashed: %w", p.leader, ErrLeaderCrashed)
		} else {
			p.fatal = fmt.Errorf("search: leader %d crashed and the environment supports no failover: %w",
				p.leader, ErrLeaderCrashed)
		}
		return probeFatal
	}
	deputy, err := fo.Failover(p.leader + 1)
	if err != nil {
		p.fatal = fmt.Errorf("search: failover from crashed leader %d: %w", p.leader, err)
		return probeFatal
	}
	p.leader = deputy
	p.res.FailedOver = true
	p.res.Leader = deputy
	p.broadcast(Ready, w)
	return probeOK
}

// measure returns the median of MeasureK samples at w. Individual failed
// samples are tolerated as long as at least one succeeds; the median of
// the survivors rejects outlier measurements. Between samples, a missed
// acknowledgement triggers another Ready re-broadcast, so a straggler
// that biases one sample has usually caught up by the next — the median
// then rejects the biased sample along with the outliers.
func (p *prober) measure(w int) (float64, probeStatus) {
	ack, hasAck := p.env.(AckEnv)
	samples := make([]float64, 0, p.o.MeasureK)
sampling:
	for k := 0; k < p.o.MeasureK; k++ {
		if k > 0 && hasAck && !ack.LastBroadcastAcked() {
			p.env.Broadcast(Message{Type: Ready, From: p.leader, W: w})
			p.res.Rebroadcasts++
		}
		v, st := p.sample(w)
		switch st {
		case probeOK:
			samples = append(samples, v)
		case probeFailed:
			// Give the remaining samples a chance.
		case probeBudget:
			if len(samples) > 0 {
				break sampling // use what we have; the caller sees the budget next round
			}
			return 0, st
		default:
			return 0, st
		}
	}
	if len(samples) == 0 {
		return 0, probeFailed
	}
	sort.Float64s(samples)
	med := samples[len(samples)/2]
	p.res.Probes = append(p.res.Probes, Probe{W: w, Payoff: med})
	return med, probeOK
}

// ResilientRun executes the Section V.C unit-step walk hardened for
// deployment conditions: transient measurement errors are retried with
// bounded exponential backoff, each operating point is measured
// median-of-k to reject payoff outliers, missed Ready acknowledgements
// trigger re-broadcasts, a crashed leader is replaced by a deputy that
// finishes the search, and an exhausted probe budget ends the walk with
// the best CW so far and Result.Degraded set instead of an error.
//
// An error is returned only when the walk cannot produce any answer: an
// invalid configuration, a starting point that could not be measured at
// all, or a leader crash without failover support.
func ResilientRun(env Env, leader, w0 int, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	o := opts.withDefaults()
	if w0 < 1 || w0 > o.WMax {
		return Result{}, fmt.Errorf("search: starting CW %d outside [1, %d]", w0, o.WMax)
	}
	p := newProber(env, leader, o)
	res := p.res

	p.broadcast(StartSearch, w0)
	best, st := p.measure(w0)
	if st != probeOK {
		return *res, p.startError(st, w0)
	}
	wm := w0

	finish := func(degraded bool) (Result, error) {
		res.Degraded = degraded
		res.W = wm
		p.broadcast(Announce, wm)
		return *res, nil
	}

	// walk climbs in one direction with two safeguards against a wrong
	// stop under faults. First, a prospective stop re-measures the
	// incumbent wm: a best inflated by an outlier median that slipped
	// through would otherwise freeze the walk, and the fresh median
	// deflates it. Second, the walk only stops after resilientPatience
	// consecutive non-improving steps, so a single straggler-biased
	// median cannot end the climb early.
	walk := func(dir int) probeStatus {
		fails := 0
		for w := wm + dir; w >= 1 && w <= o.WMax; w += dir {
			p.broadcast(Ready, w)
			v, st := p.measure(w)
			if st == probeBudget || st == probeFatal {
				return st
			}
			if st == probeOK && v > best+o.MinImprove {
				best, wm = v, w
				fails = 0
				continue
			}
			// Prospective stop: re-verify the incumbent.
			p.broadcast(Ready, wm)
			rb, st2 := p.measure(wm)
			if st2 == probeBudget || st2 == probeFatal {
				return st2
			}
			if st2 == probeOK && rb < best {
				best = rb
				if st == probeOK && v > best+o.MinImprove {
					best, wm = v, w
					fails = 0
					continue
				}
			}
			if fails++; fails >= resilientPatience {
				return probeOK
			}
		}
		return probeOK
	}

	// Right-Search, then Left-Search if right made no progress.
	st = walk(+1)
	if st == probeOK && wm == w0 {
		st = walk(-1)
	}
	switch {
	case st == probeBudget:
		return finish(true)
	case st == probeFatal:
		res.W = wm
		return *res, p.fatal
	case wm > w0:
		res.Direction = 1
	case wm < w0:
		res.Direction = -1
	}
	return finish(false)
}

// resilientPatience is how many consecutive non-improving, re-verified
// steps the resilient unit walk tolerates before accepting the peak.
const resilientPatience = 2

// ResilientAcceleratedSearch runs the O(log W*) accelerated walk through
// the same hardening machinery as ResilientRun (retry, median-of-k, ack
// re-broadcast, failover, probe budget with best-so-far degradation).
func ResilientAcceleratedSearch(env Env, leader, w0 int, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	o := opts.withDefaults()
	if w0 < 1 || w0 > o.WMax {
		return Result{}, fmt.Errorf("search: starting CW %d outside [1, %d]", w0, o.WMax)
	}
	p := newProber(env, leader, o)
	res := p.res
	cache := make(map[int]float64)
	measure := func(w int) (float64, probeStatus) {
		if v, ok := cache[w]; ok {
			return v, probeOK
		}
		p.broadcast(Ready, w)
		v, st := p.measure(w)
		if st == probeOK {
			cache[w] = v
		}
		return v, st
	}

	p.broadcast(StartSearch, w0)
	best, st := p.measure(w0)
	if st != probeOK {
		return *res, p.startError(st, w0)
	}
	cache[w0] = best
	wm := w0

	finish := func(degraded bool) (Result, error) {
		res.Degraded = degraded
		res.W = wm
		p.broadcast(Announce, wm)
		return *res, nil
	}

	// Expansion: geometric steps right, then left if right fails.
	for _, dir := range []int{1, -1} {
		step := 1
		for {
			w := wm + dir*step
			if w < 1 || w > o.WMax {
				break
			}
			v, st := measure(w)
			if st == probeBudget {
				return finish(true)
			}
			if st == probeFatal {
				res.W = wm
				return *res, p.fatal
			}
			if st == probeFailed || v <= best+o.MinImprove {
				// Prospective stop: re-measure the incumbent with a fresh
				// median before trusting it — an outlier-inflated best
				// would otherwise end the expansion early.
				p.broadcast(Ready, wm)
				rb, st2 := p.measure(wm)
				if st2 == probeBudget {
					return finish(true)
				}
				if st2 == probeFatal {
					res.W = wm
					return *res, p.fatal
				}
				if st2 == probeOK {
					cache[wm] = rb
					if rb < best {
						best = rb
						if st == probeOK && v > best+o.MinImprove {
							best, wm = v, w
							res.Direction = dir
							step *= 2
							continue
						}
					}
				}
				break
			}
			best, wm = v, w
			res.Direction = dir
			step *= 2
		}
		if wm != w0 {
			break
		}
	}

	// Refinement: shrink the step around wm.
	for step := maxInt(wm/4, 1); step >= 1; step /= 2 {
		for {
			improved := false
			for _, dir := range []int{1, -1} {
				w := wm + dir*step
				if w < 1 || w > o.WMax {
					continue
				}
				v, st := measure(w)
				if st == probeBudget {
					return finish(true)
				}
				if st == probeFatal {
					res.W = wm
					return *res, p.fatal
				}
				if st == probeFailed {
					continue
				}
				if v > best+o.MinImprove {
					best, wm = v, w
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		if step == 1 {
			break
		}
	}
	return finish(false)
}

// startError maps a failed initial measurement to the error the resilient
// runners return: without a baseline payoff there is no best-so-far to
// degrade to.
func (p *prober) startError(st probeStatus, w0 int) error {
	switch st {
	case probeFatal:
		return p.fatal
	case probeBudget:
		return fmt.Errorf("search: probe budget %d exhausted before the starting CW %d was measured",
			p.o.ProbeBudget, w0)
	default:
		return fmt.Errorf("search: starting CW %d unmeasurable after %d retries", w0, p.o.Retries)
	}
}

// Package stream is the online misbehavior-detection layer between the
// simulator engines and the serving surface: a Monitor consumes the
// per-virtual-slot (slot, transmitters) events both engines emit through
// their Observer hooks, maintains windowed per-peer attempt counts (a
// ring of fixed windows plus an exponentially-weighted variant), inverts
// eq. (2)/(3) per completed window with incremental Welford state, and
// emits flag events with first-detection-latency accounting.
//
// Relationship to internal/detect: detect is the batch estimator over a
// finished trace; this package is the same mathematics folded over the
// live event stream. The per-window arithmetic goes through the exact
// same detect entry points (Observation-style tau division,
// detect.CollisionProb, detect.EstimateCW), so a streamed window's Ŵ is
// bit-identical to running the batch estimator on that window's recorded
// counts — the differential tests pin this. Degenerate windows surface
// the same errors.Is-able sentinels (detect.ErrDegenerateTau and
// friends) instead of estimates.
//
// Determinism and allocation contract: a Monitor attached as an engine
// Observer performs no PRNG draws and never mutates simulation state, so
// engine Results are byte-identical with or without it; OnEvent and the
// window-close path allocate nothing after construction (pinned by an
// AllocsPerRun test), preserving the engines' 0-alloc steady state end
// to end.
//
// Window semantics: windows are fixed, non-overlapping spans of
// WindowSlots virtual slots aligned to the run-wide slot clock —
// window k covers [k·W, (k+1)·W). A window closes when the first event
// at or past its end arrives (or at Finish/Advance); fully idle windows
// are counted but produce no estimates, no EWMA update and no flags — an
// all-idle window carries no attempt information. The detection-latency
// metric is FirstFlagSlot: the absolute end slot of the first window
// whose estimate undercut Beta·ExpectedCW, i.e. the number of virtual
// slots the observer needed before flagging (-1 when never flagged).
package stream

import (
	"errors"
	"fmt"
	"math"

	"selfishmac/internal/detect"
	"selfishmac/internal/stats"
)

// ErrInvalidConfig marks a Config rejected by Validate; inspect the
// wrapped detail with errors.Is/As.
var ErrInvalidConfig = errors.New("stream: invalid config")

// MaxKeep bounds Config.Keep: the ring is resident memory
// (Keep·Nodes counters), and a serving daemon must not let one job pin
// an unbounded slab.
const MaxKeep = 1 << 16

// FlagEvent is one misbehavior flag: node's windowed estimate undercut
// Beta·ExpectedCW at the close of a window.
type FlagEvent struct {
	// Node is the flagged peer.
	Node int
	// Window is the completed window's index (0-based on the run-wide
	// clock, idle windows included).
	Window int64
	// EndSlot is the absolute virtual slot at which the window closed —
	// the detection-latency reading if this is the node's first flag.
	EndSlot int64
	// Attempts is the node's attempt count inside the window.
	Attempts int64
	// Tau and P are the windowed observation and the eq.-(3) collision
	// probability the estimate inverted.
	Tau float64
	P   float64
	// EstCW is the windowed eq.-(2) estimate Ŵ that triggered the flag.
	EstCW float64
	// EWMACW is the exponentially-weighted estimate at this window
	// (0 when the EWMA is disabled or degenerate).
	EWMACW float64
	// ExpectedCW and Margin restate the trigger: Margin = EstCW/ExpectedCW
	// < Beta.
	ExpectedCW float64
	Margin     float64
}

// WindowEstimate is one node's estimation outcome for one completed
// non-idle window, delivered to Config.OnEstimate. Err is non-nil — one
// of the detect sentinels, unwrapped so delivery stays allocation-free —
// when the node's windowed tau was degenerate (no attempts, or an
// attempt in every slot).
type WindowEstimate struct {
	Node     int
	Window   int64
	EndSlot  int64
	Attempts int64
	Tau      float64
	P        float64
	CW       float64
	Err      error
}

// Config parameterises a Monitor.
type Config struct {
	// Nodes is the population size (transmitter indices outside
	// [0, Nodes) are ignored defensively).
	Nodes int
	// WindowSlots is the estimation window width in virtual slots.
	WindowSlots int64
	// Keep is the number of completed windows retained in the ring
	// (attempt counts, for RecentCounts). Minimum 1.
	Keep int
	// MaxStage is the backoff cap m used by the eq.-(2) inversion.
	MaxStage int
	// ExpectedCW is the CW conforming nodes should operate on.
	ExpectedCW int
	// Beta is the GTFT tolerance in (0, 1]: flag when Ŵ < Beta·ExpectedCW.
	Beta float64
	// Alpha, when positive (and <= 1), enables the exponentially-weighted
	// tau tracker: after each non-idle window, ewma = Alpha·tau +
	// (1−Alpha)·ewma (seeded with the first non-idle window's taus).
	Alpha float64
	// OnFlag, when non-nil, receives every flag event as it happens.
	// Called synchronously from the engine hot loop: implementations
	// must not allocate if the 0-alloc contract is to hold.
	OnFlag func(FlagEvent)
	// OnEstimate, when non-nil, receives every per-node window estimate
	// (including degenerate ones, with Err set). Same hot-loop caveat.
	OnEstimate func(WindowEstimate)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	var errs []error
	if c.Nodes < 1 {
		errs = append(errs, fmt.Errorf("nodes %d < 1", c.Nodes))
	}
	if c.WindowSlots < 1 {
		errs = append(errs, fmt.Errorf("window of %d slots < 1", c.WindowSlots))
	}
	if c.Keep < 1 || c.Keep > MaxKeep {
		errs = append(errs, fmt.Errorf("keep %d outside [1, %d]", c.Keep, MaxKeep))
	}
	if c.MaxStage < 0 || c.MaxStage > 16 {
		errs = append(errs, fmt.Errorf("max backoff stage %d outside [0, 16]", c.MaxStage))
	}
	if c.ExpectedCW < 1 {
		errs = append(errs, fmt.Errorf("expected CW %d < 1", c.ExpectedCW))
	}
	if !(c.Beta > 0 && c.Beta <= 1) { // rejects NaN too
		errs = append(errs, fmt.Errorf("beta %g outside (0, 1]", c.Beta))
	}
	if !(c.Alpha >= 0 && c.Alpha <= 1) { // rejects NaN too
		errs = append(errs, fmt.Errorf("alpha %g outside [0, 1]", c.Alpha))
	}
	if len(errs) > 0 {
		return fmt.Errorf("%w: %w", ErrInvalidConfig, errors.Join(errs...))
	}
	return nil
}

// Monitor is the online detector. It implements the engines' Observer
// hook (OnEvent) and the multi-stage SlotAdvancer extension (Advance);
// one Monitor instance satisfies both macsim.Observer and
// multihop.Observer. Not safe for concurrent use — attach one Monitor
// per engine, exactly like the engines themselves.
type Monitor struct {
	cfg       Config
	threshold float64 // Beta·ExpectedCW

	base     int64 // slot offset accumulated by Advance across stages
	slots    int64 // absolute virtual slots observed so far
	winStart int64 // absolute start slot of the open window
	windows  int64 // completed windows (idle ones included)
	dirty    bool  // any attempt recorded in the open window

	cur  []int64 // per-node attempts in the open window
	cum  []int64 // per-node attempts over the whole run
	taus []float64

	ringData []int64 // Keep rows of per-node window counts
	ringWin  []int64 // window index stored in each row (-1 empty)

	ewmaTau  []float64
	ewmaSeed bool

	est       []stats.Welford // per-node moments over windowed Ŵ
	firstFlag []int64         // absolute end slot of first flag (-1 never)
	nodeFlags []int64
	flags     int64
}

// NewMonitor builds a Monitor. All buffers are allocated here; the
// observer path and Reset allocate nothing afterwards.
func NewMonitor(cfg Config) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Nodes
	m := &Monitor{
		cfg:       cfg,
		threshold: cfg.Beta * float64(cfg.ExpectedCW),
		cur:       make([]int64, n),
		cum:       make([]int64, n),
		taus:      make([]float64, n),
		ringData:  make([]int64, cfg.Keep*n),
		ringWin:   make([]int64, cfg.Keep),
		ewmaTau:   make([]float64, n),
		est:       make([]stats.Welford, n),
		firstFlag: make([]int64, n),
		nodeFlags: make([]int64, n),
	}
	m.Reset()
	return m, nil
}

// Reset restores the just-constructed state so the Monitor can observe a
// fresh run. It allocates nothing.
func (m *Monitor) Reset() {
	m.base, m.slots, m.winStart, m.windows = 0, 0, 0, 0
	m.dirty, m.ewmaSeed = false, false
	m.flags = 0
	for i := range m.cur {
		m.cur[i] = 0
		m.cum[i] = 0
		m.taus[i] = 0
		m.ewmaTau[i] = 0
		m.est[i] = stats.Welford{}
		m.firstFlag[i] = -1
		m.nodeFlags[i] = 0
	}
	for i := range m.ringData {
		m.ringData[i] = 0
	}
	for i := range m.ringWin {
		m.ringWin[i] = -1
	}
}

// OnEvent consumes one busy virtual slot: the engines call it with the
// slot index and the transmitter set (engine-owned scratch; the Monitor
// copies what it keeps). Slots are clamped monotone defensively, so a
// window can never hold more attempts than slots.
func (m *Monitor) OnEvent(slot int64, transmitters []int) {
	abs := m.base + slot
	if abs < m.slots {
		abs = m.slots
	}
	w := m.cfg.WindowSlots
	if abs-m.winStart >= w {
		m.closeWindow()
		// Any further whole windows between the one just closed and abs
		// saw no events at all: count them in bulk, estimate nothing.
		if k := (abs - m.winStart) / w; k > 0 {
			m.windows += k
			m.winStart += k * w
		}
	}
	for _, i := range transmitters {
		if uint(i) < uint(len(m.cur)) {
			m.cur[i]++
			m.cum[i]++
		}
	}
	m.slots = abs + 1
	m.dirty = m.dirty || len(transmitters) > 0
}

// Advance shifts the run-wide slot clock by slots — the multihop engine
// calls it after each stage (whose local clocks restart at 0), closing
// every window the stage completed. It satisfies multihop.SlotAdvancer.
func (m *Monitor) Advance(slots int64) {
	if slots < 0 {
		return
	}
	m.finishTo(m.base + slots)
	m.base += slots
}

// Finish closes every window fully contained in the first totalSlots
// virtual slots of the run (relative to the current stage base, matching
// Result.Slots of a single run). Call it once after the run so trailing
// windows are estimated; a trailing partial window stays open.
func (m *Monitor) Finish(totalSlots int64) {
	m.finishTo(m.base + totalSlots)
}

func (m *Monitor) finishTo(absSlots int64) {
	if absSlots <= m.slots {
		absSlots = m.slots
	}
	w := m.cfg.WindowSlots
	if absSlots-m.winStart >= w {
		m.closeWindow()
		if k := (absSlots - m.winStart) / w; k > 0 {
			m.windows += k
			m.winStart += k * w
		}
	}
	m.slots = absSlots
}

// closeWindow estimates and rolls the open window [winStart, winStart+W).
func (m *Monitor) closeWindow() {
	w := m.cfg.WindowSlots
	end := m.winStart + w
	widx := m.windows
	if m.dirty {
		// Windowed taus use the same float division Observation.Tau
		// performs, and p the shared detect.CollisionProb, so every
		// estimate below is bit-identical to the batch path on the same
		// counts.
		for i, c := range m.cur {
			m.taus[i] = float64(c) / float64(w)
		}
		if m.cfg.Alpha > 0 {
			if !m.ewmaSeed {
				copy(m.ewmaTau, m.taus)
				m.ewmaSeed = true
			} else {
				a := m.cfg.Alpha
				for i, tau := range m.taus {
					m.ewmaTau[i] = a*tau + (1-a)*m.ewmaTau[i]
				}
			}
		}
		for i := range m.cur {
			tau := m.taus[i]
			var est, p float64
			var err error
			if tau <= 0 || tau >= 1 {
				// Bare sentinel, not wrapped: the hot path must not
				// allocate, and errors.Is works on it directly.
				err = detect.ErrDegenerateTau
			} else {
				p = detect.CollisionProb(m.taus, i)
				est, err = detect.EstimateCW(tau, p, m.cfg.MaxStage)
			}
			if m.cfg.OnEstimate != nil {
				m.cfg.OnEstimate(WindowEstimate{
					Node: i, Window: widx, EndSlot: end,
					Attempts: m.cur[i], Tau: tau,
					P: p, CW: est, Err: err,
				})
			}
			if err != nil {
				continue
			}
			m.est[i].Add(est)
			if est < m.threshold {
				m.nodeFlags[i]++
				m.flags++
				if m.firstFlag[i] < 0 {
					m.firstFlag[i] = end
				}
				if m.cfg.OnFlag != nil {
					m.cfg.OnFlag(FlagEvent{
						Node: i, Window: widx, EndSlot: end,
						Attempts: m.cur[i], Tau: tau, P: p,
						EstCW: est, EWMACW: m.ewmaCWAt(i),
						ExpectedCW: float64(m.cfg.ExpectedCW),
						Margin:     est / float64(m.cfg.ExpectedCW),
					})
				}
			}
		}
		row := m.ringData[int(widx%int64(m.cfg.Keep))*m.cfg.Nodes:][:m.cfg.Nodes]
		copy(row, m.cur)
		m.ringWin[widx%int64(m.cfg.Keep)] = widx
		for i := range m.cur {
			m.cur[i] = 0
		}
		m.dirty = false
	}
	m.windows++
	m.winStart = end
}

// ewmaCWAt inverts eq. (2) on the exponentially-weighted taus for node
// i, or returns 0 when the EWMA is disabled or degenerate.
func (m *Monitor) ewmaCWAt(i int) float64 {
	if m.cfg.Alpha <= 0 || !m.ewmaSeed {
		return 0
	}
	tau := m.ewmaTau[i]
	if tau <= 0 || tau >= 1 {
		return 0
	}
	cw, err := detect.EstimateCW(tau, detect.CollisionProb(m.ewmaTau, i), m.cfg.MaxStage)
	if err != nil {
		return 0
	}
	return cw
}

// EWMACW returns the current exponentially-weighted CW estimate for node
// i; the detect sentinels classify why none is available.
func (m *Monitor) EWMACW(i int) (float64, error) {
	if m.cfg.Alpha <= 0 || !m.ewmaSeed {
		return 0, detect.ErrNoSlots
	}
	tau := m.ewmaTau[i]
	if tau <= 0 || tau >= 1 {
		return 0, detect.ErrDegenerateTau
	}
	return detect.EstimateCW(tau, detect.CollisionProb(m.ewmaTau, i), m.cfg.MaxStage)
}

// Windows returns the number of completed windows (idle ones included).
func (m *Monitor) Windows() int64 { return m.windows }

// Slots returns the absolute virtual slots observed so far.
func (m *Monitor) Slots() int64 { return m.slots }

// Flags returns the total number of flag events emitted.
func (m *Monitor) Flags() int64 { return m.flags }

// NodeFlags returns how many windows flagged node i.
func (m *Monitor) NodeFlags(i int) int64 { return m.nodeFlags[i] }

// FirstFlagSlot returns the detection latency for node i: the absolute
// end slot of the first flagged window, or -1 when never flagged.
func (m *Monitor) FirstFlagSlot(i int) int64 { return m.firstFlag[i] }

// EstimateSummary returns the moments of node i's windowed Ŵ estimates
// (degenerate windows excluded).
func (m *Monitor) EstimateSummary(i int) stats.Summary { return m.est[i].Snapshot() }

// CumulativeObservations appends the run-wide observation vector — what
// detect.FromSimResult collects from a finished macsim run — to dst and
// returns it. Call Finish(result.Slots) first so trailing idle slots are
// included; the batch estimator then sees identical inputs.
func (m *Monitor) CumulativeObservations(dst []detect.Observation) []detect.Observation {
	for _, c := range m.cum {
		dst = append(dst, detect.Observation{Attempts: c, Slots: m.slots})
	}
	return dst
}

// RecentCounts copies the per-node attempt counts of a retained window
// into dst (length >= Nodes) and returns that window's index; ok is
// false when the age-th most recent non-idle window has been evicted or
// never existed (age 0 is the newest retained window).
func (m *Monitor) RecentCounts(age int, dst []int64) (window int64, ok bool) {
	if age < 0 || age >= m.cfg.Keep {
		return 0, false
	}
	// Rows are keyed by the window index they hold; the age-th most
	// recent is the (age+1)-th largest stored index. Keep is small, so a
	// selection scan over the rows beats bookkeeping a separate order.
	bound := int64(math.MaxInt64)
	for rank := 0; ; rank++ {
		bestWin, bestRow := int64(-1), -1
		for r, wn := range m.ringWin {
			if wn >= 0 && wn < bound && wn > bestWin {
				bestWin, bestRow = wn, r
			}
		}
		if bestRow < 0 {
			return 0, false
		}
		if rank == age {
			copy(dst, m.ringData[bestRow*m.cfg.Nodes:][:m.cfg.Nodes])
			return bestWin, true
		}
		bound = bestWin
	}
}

package stream

import (
	"errors"
	"testing"

	"selfishmac/internal/detect"
)

// FuzzMonitor drives the windowed estimator through arbitrary event
// scripts — window roll-over, huge idle jumps, non-monotone slots,
// stage advances, repeated finishes — and asserts the structural
// invariants: no panics, monotone clocks, windows never holding more
// attempts than slots, and every error surfaced by the accessors
// classifiable with errors.Is against the detect/stream sentinels.
//
// The script is consumed 3 bytes per op: [opcode, a, b].
//
//	opcode % 4 == 0..1: OnEvent(slot += a*256+b, transmitters from a's low bits)
//	opcode % 4 == 2:    OnEvent with a *rewound* slot (non-monotone input)
//	opcode % 4 == 3:    Advance(a*256+b) (stage boundary)
func FuzzMonitor(f *testing.F) {
	f.Add(int64(10), 2, 0.3, []byte{0, 3, 7, 1, 1, 200, 3, 0, 50, 2, 7, 7})
	f.Add(int64(1), 1, 0.0, []byte{0, 255, 255, 0, 0, 0})
	f.Add(int64(1<<40), 4, 1.0, []byte{1, 9, 9, 3, 255, 255, 0, 1, 1})
	f.Add(int64(7), 3, 0.5, []byte{})

	f.Fuzz(func(t *testing.T, windowSlots int64, keep int, alpha float64, script []byte) {
		const nodes = 5
		cfg := Config{
			Nodes: nodes, WindowSlots: windowSlots, Keep: keep,
			MaxStage: 6, ExpectedCW: 64, Beta: 0.6, Alpha: alpha,
		}
		mon, err := NewMonitor(cfg)
		if err != nil {
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("rejection %v is not ErrInvalidConfig", err)
			}
			return
		}

		var slot int64
		tx := make([]int, 0, nodes)
		for len(script) >= 3 {
			op, a, b := script[0], int64(script[1]), int64(script[2])
			script = script[3:]

			tx = tx[:0]
			for i := 0; i < nodes; i++ {
				if a&(1<<uint(i)) != 0 {
					tx = append(tx, i)
				}
			}
			prevSlots, prevWindows := mon.Slots(), mon.Windows()
			switch op % 4 {
			case 0, 1:
				slot += a*256 + b
				mon.OnEvent(slot, tx)
			case 2:
				rewound := slot - (a*256 + b)
				mon.OnEvent(rewound, tx)
			case 3:
				mon.Advance(a*256 + b)
				slot = 0 // stage clocks restart after an advance
			}
			if mon.Slots() < prevSlots {
				t.Fatalf("slot clock went backwards: %d -> %d", prevSlots, mon.Slots())
			}
			if mon.Windows() < prevWindows {
				t.Fatalf("window count went backwards: %d -> %d", prevWindows, mon.Windows())
			}
		}
		mon.Finish(slot)

		// Every retained window respects attempts <= WindowSlots even
		// under non-monotone input (the clamp guarantees it).
		buf := make([]int64, nodes)
		for age := 0; age < keep; age++ {
			if _, ok := mon.RecentCounts(age, buf); !ok {
				break
			}
			for i, c := range buf {
				if c < 0 || c > windowSlots {
					t.Fatalf("retained window holds %d attempts for node %d in %d slots", c, i, windowSlots)
				}
			}
		}

		// Cumulative observations are structurally valid, and their only
		// admissible Tau failure is the zero-slot sentinel (empty run).
		for _, o := range mon.CumulativeObservations(nil) {
			if _, err := o.Tau(); err != nil {
				if !errors.Is(err, detect.ErrNoSlots) && !errors.Is(err, detect.ErrAttemptsExceedSlots) {
					t.Fatalf("cumulative Tau error %v is not a detect sentinel", err)
				}
				if errors.Is(err, detect.ErrAttemptsExceedSlots) {
					t.Fatalf("monitor produced attempts > slots: %+v", o)
				}
			}
		}

		// EWMA accessors either produce a positive finite estimate or a
		// classifiable sentinel.
		for i := 0; i < nodes; i++ {
			cw, err := mon.EWMACW(i)
			switch {
			case err == nil:
				if !(cw >= 1) {
					t.Fatalf("node %d EWMA CW %g < 1", i, cw)
				}
			case errors.Is(err, detect.ErrNoSlots), errors.Is(err, detect.ErrDegenerateTau):
			default:
				t.Fatalf("node %d EWMA error %v is not a detect sentinel", i, err)
			}
		}

		// Reset restores a blank monitor.
		mon.Reset()
		if mon.Slots() != 0 || mon.Windows() != 0 || mon.Flags() != 0 {
			t.Fatal("Reset left residual state")
		}
	})
}

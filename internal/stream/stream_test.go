package stream

import (
	"errors"
	"reflect"
	"testing"

	"selfishmac/internal/detect"
	"selfishmac/internal/macsim"
	"selfishmac/internal/phy"
	"selfishmac/internal/replicate"
)

// detectCfg is the shared scenario: six saturated nodes, node 0 cheating
// with a quarter of the conforming window.
func detectCfg(seed uint64) macsim.Config {
	return macsim.Config{
		Timing: phy.Default().MustTiming(phy.Basic), MaxStage: 6,
		CW: []int{16, 64, 64, 64, 64, 64}, Duration: 3e6, Seed: seed,
		Gain: 1, Cost: 0.01,
	}
}

func monitorCfg(onEst func(WindowEstimate)) Config {
	return Config{
		Nodes: 6, WindowSlots: 200, Keep: 4, MaxStage: 6,
		ExpectedCW: 64, Beta: 0.6, Alpha: 0.3, OnEstimate: onEst,
	}
}

// tee fans one engine event stream out to a Monitor and a raw recording.
type tee struct {
	m      *Monitor
	slots  []int64
	events [][]int
}

func (t *tee) OnEvent(slot int64, tx []int) {
	t.m.OnEvent(slot, tx)
	t.slots = append(t.slots, slot)
	t.events = append(t.events, append([]int(nil), tx...))
}

// TestDifferentialStreamingMatchesBatch pins the tentpole equivalence:
// every per-window streaming estimate equals the batch detect fold
// (Observation.Tau → CollisionProb → EstimateCW) over the same recorded
// trace, bit for bit, and the cumulative observations equal
// detect.FromSimResult exactly.
func TestDifferentialStreamingMatchesBatch(t *testing.T) {
	var got []WindowEstimate
	mon, err := NewMonitor(monitorCfg(func(e WindowEstimate) { got = append(got, e) }))
	if err != nil {
		t.Fatal(err)
	}
	tr := &tee{m: mon}
	cfg := detectCfg(7)
	cfg.Observer = tr
	res, err := macsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon.Finish(res.Slots)

	// Fold the recorded trace into fixed windows by hand (the batch side
	// of the differential): counts[w][i] = attempts of node i in window w.
	const W = 200
	nWin := int(res.Slots / W)
	counts := make([][]int64, nWin)
	for w := range counts {
		counts[w] = make([]int64, 6)
	}
	for k, slot := range tr.slots {
		if w := int(slot / W); w < nWin {
			for _, i := range tr.events[k] {
				counts[w][i]++
			}
		}
	}

	// Batch-estimate each non-idle window with the detect entry points
	// and demand exact equality with the streamed estimates.
	var want []WindowEstimate
	for w := 0; w < nWin; w++ {
		busy := int64(0)
		for _, c := range counts[w] {
			busy += c
		}
		if busy == 0 {
			continue
		}
		taus := make([]float64, 6)
		for i, c := range counts[w] {
			taus[i] = float64(c) / float64(W)
		}
		for i := range counts[w] {
			e := WindowEstimate{
				Node: i, Window: int64(w), EndSlot: int64(w+1) * W,
				Attempts: counts[w][i],
			}
			tau, err := detect.Observation{Attempts: counts[w][i], Slots: W}.Tau()
			if err == nil && tau > 0 && tau < 1 {
				e.Tau = tau
				e.P = detect.CollisionProb(taus, i)
				e.CW, err = detect.EstimateCW(tau, e.P, 6)
				if err != nil {
					t.Fatalf("window %d node %d: batch estimate failed: %v", w, i, err)
				}
			} else {
				e.Tau = taus[i]
				e.Err = detect.ErrDegenerateTau
			}
			want = append(want, e)
		}
	}
	if len(got) == 0 {
		t.Fatal("monitor emitted no estimates")
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d estimates, batch fold produced %d", len(got), len(want))
	}
	for k := range want {
		g, w := got[k], want[k]
		if g.Node != w.Node || g.Window != w.Window || g.EndSlot != w.EndSlot ||
			g.Attempts != w.Attempts || g.Tau != w.Tau || g.P != w.P || g.CW != w.CW ||
			!errors.Is(g.Err, w.Err) {
			t.Fatalf("estimate %d diverges:\n  streamed %+v\n  batch    %+v", k, g, w)
		}
	}

	// Cumulative: the monitor's run-wide observations are exactly what
	// the batch estimator reads off the finished result.
	stream := mon.CumulativeObservations(nil)
	batch := detect.FromSimResult(res)
	if !reflect.DeepEqual(stream, batch) {
		t.Fatalf("cumulative observations diverge:\n  streamed %+v\n  batch    %+v", stream, batch)
	}
	se, err := detect.EstimateAll(stream, 6)
	if err != nil {
		t.Fatal(err)
	}
	be, err := detect.EstimateAll(batch, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(se, be) {
		t.Fatal("cumulative estimates diverge")
	}
}

// monitoredReplicator is the worker unit for the replicate tests: one
// reusable engine with its own monitor attached.
type monitoredReplicator struct {
	eng *macsim.Engine
	mon *Monitor
}

func newMonitoredReplicator() (replicate.Replicator, error) {
	mon, err := NewMonitor(monitorCfg(nil))
	if err != nil {
		return nil, err
	}
	cfg := detectCfg(0)
	cfg.Observer = mon
	eng, err := macsim.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &monitoredReplicator{eng: eng, mon: mon}, nil
}

func (r *monitoredReplicator) Replicate(seed uint64, out []float64) error {
	r.mon.Reset()
	r.eng.Reset(seed)
	res := r.eng.Run()
	r.mon.Finish(res.Slots)
	out[0] = r.mon.EstimateSummary(0).Mean   // cheater's mean windowed Ŵ
	out[1] = float64(r.mon.FirstFlagSlot(0)) // detection latency
	out[2] = float64(r.mon.Flags())          // total flag events
	out[3] = r.mon.EstimateSummary(1).Mean   // an honest node, for contrast
	return nil
}

// The replication fold over monitored runs must be bit-identical at any
// worker count, like every other replicated metric in the repo.
func TestMonitoredReplicationWorkerInvariance(t *testing.T) {
	plan := replicate.Plan{
		BaseSeed: 99, Stream: "stream.test", Metrics: 4,
		MinReps: 8, MaxReps: 8, Workers: 1,
	}
	serial, err := replicate.Run(plan, newMonitoredReplicator)
	if err != nil {
		t.Fatal(err)
	}
	plan.Workers = 4
	parallel, err := replicate.Run(plan, newMonitoredReplicator)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Moments, parallel.Moments) {
		t.Fatal("monitored replication moments diverge between 1 and 4 workers")
	}
	// Sanity on the content: the cheater is flagged (latency recorded)
	// and estimated well under the honest nodes.
	if serial.Mean(1) < 0 {
		t.Errorf("cheater never flagged: mean first-flag slot %g", serial.Mean(1))
	}
	if serial.Mean(0) >= serial.Mean(3) {
		t.Errorf("cheater Ŵ %g not below honest Ŵ %g", serial.Mean(0), serial.Mean(3))
	}
}

// The observer hot path — engine run, per-event monitor updates, window
// closes, Reset/Finish — must allocate nothing in steady state, so
// attaching detection costs no allocations on top of the engines' own
// 0-alloc contract.
func TestMonitoredRunAllocationFree(t *testing.T) {
	var flags int64
	cfg := monitorCfg(nil)
	cfg.OnFlag = func(FlagEvent) { flags++ }
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := detectCfg(3)
	mcfg.Duration = 5e5
	mcfg.Observer = mon
	eng, err := macsim.NewEngine(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	var seed uint64
	// Warm-up: let the calendar settle at its final capacity.
	for k := 0; k < 3; k++ {
		mon.Reset()
		eng.Reset(seed)
		seed++
		mon.Finish(eng.Run().Slots)
	}
	allocs := testing.AllocsPerRun(20, func() {
		mon.Reset()
		eng.Reset(seed)
		seed++
		mon.Finish(eng.Run().Slots)
	})
	if allocs != 0 {
		t.Fatalf("monitored run allocates %v per run, want 0", allocs)
	}
	if flags == 0 {
		t.Fatal("cheater never flagged during the allocation runs")
	}
}

// A deterministic trace exercising window roll-over, idle bulk-skip,
// Advance and the ring accessor.
func TestMonitorWindowMechanics(t *testing.T) {
	mon, err := NewMonitor(Config{
		Nodes: 2, WindowSlots: 10, Keep: 2, MaxStage: 5,
		ExpectedCW: 100, Beta: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Window 0: node 0 transmits 3 times, node 1 once.
	mon.OnEvent(1, []int{0})
	mon.OnEvent(4, []int{0, 1})
	mon.OnEvent(7, []int{0})
	// Jump over windows 1..4 (idle) into window 5.
	mon.OnEvent(53, []int{1})
	if got := mon.Windows(); got != 5 {
		t.Fatalf("windows = %d after idle jump, want 5", got)
	}
	// Advance as a stage boundary: 60 slots total in stage one.
	mon.Advance(60)
	if got := mon.Windows(); got != 6 {
		t.Fatalf("windows = %d after Advance(60), want 6", got)
	}
	// Stage two: slots restart at 0; absolute slot = 60 + slot.
	mon.OnEvent(2, []int{0})
	mon.Finish(20)
	if got := mon.Windows(); got != 8 {
		t.Fatalf("windows = %d after Finish, want 8", got)
	}
	if got := mon.Slots(); got != 80 {
		t.Fatalf("slots = %d, want 80", got)
	}

	// Ring: the two retained non-idle windows are 6 (newest) and 5.
	buf := make([]int64, 2)
	win, ok := mon.RecentCounts(0, buf)
	if !ok || win != 6 || buf[0] != 1 || buf[1] != 0 {
		t.Fatalf("newest retained window = %d counts %v ok=%v", win, buf, ok)
	}
	win, ok = mon.RecentCounts(1, buf)
	if !ok || win != 5 || buf[0] != 0 || buf[1] != 1 {
		t.Fatalf("second retained window = %d counts %v ok=%v", win, buf, ok)
	}
	if _, ok := mon.RecentCounts(2, buf); ok {
		t.Fatal("age beyond Keep reported ok")
	}

	// Cumulative counts fold the whole trace.
	obs := mon.CumulativeObservations(nil)
	want := []detect.Observation{{Attempts: 4, Slots: 80}, {Attempts: 2, Slots: 80}}
	if !reflect.DeepEqual(obs, want) {
		t.Fatalf("cumulative observations %+v, want %+v", obs, want)
	}
}

// Validate must reject broken configs with the Is-able sentinel, and the
// EWMA accessor must surface the detect sentinels.
func TestConfigValidateAndEWMASentinels(t *testing.T) {
	bad := []Config{
		{},
		{Nodes: 3, WindowSlots: 0, Keep: 1, ExpectedCW: 64, Beta: 0.5},
		{Nodes: 3, WindowSlots: 10, Keep: 0, ExpectedCW: 64, Beta: 0.5},
		{Nodes: 3, WindowSlots: 10, Keep: 1, ExpectedCW: 0, Beta: 0.5},
		{Nodes: 3, WindowSlots: 10, Keep: 1, ExpectedCW: 64, Beta: 1.5},
		{Nodes: 3, WindowSlots: 10, Keep: 1, ExpectedCW: 64, Beta: 0.5, Alpha: 2},
		{Nodes: 3, WindowSlots: 10, Keep: 1, ExpectedCW: 64, Beta: 0.5, MaxStage: 99},
	}
	for k, cfg := range bad {
		if _, err := NewMonitor(cfg); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("bad config %d: error %v is not ErrInvalidConfig", k, err)
		}
	}

	mon, err := NewMonitor(Config{
		Nodes: 2, WindowSlots: 10, Keep: 1, MaxStage: 5,
		ExpectedCW: 64, Beta: 0.5, Alpha: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.EWMACW(0); !errors.Is(err, detect.ErrNoSlots) {
		t.Errorf("unseeded EWMA error %v is not detect.ErrNoSlots", err)
	}
	// One busy window: node 0 active, node 1 silent → degenerate EWMA tau.
	mon.OnEvent(0, []int{0})
	mon.Finish(10)
	if _, err := mon.EWMACW(1); !errors.Is(err, detect.ErrDegenerateTau) {
		t.Errorf("silent node EWMA error %v is not detect.ErrDegenerateTau", err)
	}
	if cw, err := mon.EWMACW(0); err != nil || cw <= 0 {
		t.Errorf("active node EWMA = %g, %v", cw, err)
	}
}

// Non-monotone slots (which a buggy or adversarial caller could feed)
// are clamped: a window never records more attempts than slots, so the
// batch sentinels cannot fire from streamed counts.
func TestMonitorClampsNonMonotoneSlots(t *testing.T) {
	mon, err := NewMonitor(Config{
		Nodes: 1, WindowSlots: 4, Keep: 1, MaxStage: 5,
		ExpectedCW: 64, Beta: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		mon.OnEvent(0, []int{0}) // same slot over and over
	}
	mon.Finish(12)
	obs := mon.CumulativeObservations(nil)
	if obs[0].Attempts != 10 || obs[0].Slots != 12 {
		t.Fatalf("observations %+v", obs[0])
	}
	if _, err := obs[0].Tau(); err != nil {
		t.Fatalf("clamped counts still degenerate: %v", err)
	}
	buf := make([]int64, 1)
	if win, ok := mon.RecentCounts(0, buf); !ok || buf[0] > 4 {
		t.Fatalf("window %d holds %d attempts in 4 slots (ok=%v)", win, buf[0], ok)
	}
}

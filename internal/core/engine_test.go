package core

import (
	"math"
	"strings"
	"testing"

	"selfishmac/internal/phy"
	"selfishmac/internal/rng"
)

func TestTFTFirstStage(t *testing.T) {
	s := TFT{Initial: 128}
	if w := s.ChooseCW(0, nil, nil); w != 128 {
		t.Fatalf("first stage CW = %d, want 128", w)
	}
}

func TestTFTMatchesMinimum(t *testing.T) {
	s := TFT{Initial: 128}
	obs := [][]int{{100, 80, 120}, {90, 200, 64}}
	if w := s.ChooseCW(0, obs, nil); w != 64 {
		t.Fatalf("TFT CW = %d, want min of last stage (64)", w)
	}
}

func TestTFTConvergesToMinimum(t *testing.T) {
	g := mustGame(t, 4, phy.Basic)
	strategies := []Strategy{
		TFT{Initial: 300}, TFT{Initial: 150}, TFT{Initial: 97}, TFT{Initial: 220},
	}
	e, err := NewEngine(g, strategies)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 0: heterogeneous initials; stage 1 on: everyone at min = 97.
	if got := tr.Stages[0].Profile; got[0] != 300 || got[2] != 97 {
		t.Fatalf("stage 0 profile = %v", got)
	}
	for k := 1; k < len(tr.Stages); k++ {
		for i, w := range tr.Stages[k].Profile {
			if w != 97 {
				t.Fatalf("stage %d player %d CW = %d, want 97", k, i, w)
			}
		}
	}
	if tr.ConvergedAt != 1 || tr.ConvergedCW != 97 {
		t.Fatalf("ConvergedAt=%d CW=%d, want 1, 97", tr.ConvergedAt, tr.ConvergedCW)
	}
}

func TestTFTFairnessAfterConvergence(t *testing.T) {
	g := mustGame(t, 3, phy.Basic)
	e, err := NewEngine(g, []Strategy{TFT{Initial: 50}, TFT{Initial: 500}, TFT{Initial: 200}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	last := tr.Stages[len(tr.Stages)-1]
	for i := 1; i < len(last.UtilityRates); i++ {
		if math.Abs(last.UtilityRates[i]-last.UtilityRates[0]) > 1e-15 {
			t.Fatalf("post-convergence utilities unequal: %v", last.UtilityRates)
		}
	}
}

func TestGTFTKeepsCWWithinTolerance(t *testing.T) {
	// A deviation above beta*own must not trigger a reaction.
	s := GTFT{Initial: 100, R0: 2, Beta: 0.9}
	obs := [][]int{{100, 95}, {100, 95}} // 95 >= 0.9*100: tolerated
	if w := s.ChooseCW(0, obs, nil); w != 100 {
		t.Fatalf("GTFT reacted within tolerance: CW = %d, want 100", w)
	}
}

func TestGTFTReactsBeyondTolerance(t *testing.T) {
	s := GTFT{Initial: 100, R0: 2, Beta: 0.9}
	obs := [][]int{{100, 80}, {100, 80}} // mean 80 < 0.9*100: react
	if w := s.ChooseCW(0, obs, nil); w != 80 {
		t.Fatalf("GTFT CW = %d, want 80", w)
	}
}

func TestGTFTAveragesOverWindow(t *testing.T) {
	// One noisy dip must be absorbed by a long window.
	s := GTFT{Initial: 100, R0: 4, Beta: 0.9}
	obs := [][]int{{100, 100}, {100, 100}, {100, 100}, {100, 70}}
	// mean of player 1 = (100+100+100+70)/4 = 92.5 >= 90: tolerated.
	if w := s.ChooseCW(0, obs, nil); w != 100 {
		t.Fatalf("GTFT overreacted to a single dip: CW = %d, want 100", w)
	}
	// The same dip with window 1 triggers a reaction.
	s1 := GTFT{Initial: 100, R0: 1, Beta: 0.9}
	if w := s1.ChooseCW(0, obs, nil); w != 70 {
		t.Fatalf("window-1 GTFT CW = %d, want 70", w)
	}
}

func TestGTFTToleratesObservationNoiseWhereTFTDoesNot(t *testing.T) {
	g := mustGame(t, 3, phy.Basic)
	noise := func(r *rng.Source, w int) int {
		// ±15% multiplicative measurement error.
		return int(float64(w) * r.UniformRange(0.85, 1.15))
	}
	runFinal := func(strats []Strategy) int {
		e, err := NewEngine(g, strats, WithNoise(noise), WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := e.Run(60)
		if err != nil {
			t.Fatal(err)
		}
		final := tr.FinalProfile()
		minW := final[0]
		for _, w := range final {
			if w < minW {
				minW = w
			}
		}
		return minW
	}
	tftFinal := runFinal([]Strategy{TFT{Initial: 300}, TFT{Initial: 300}, TFT{Initial: 300}})
	gtftFinal := runFinal([]Strategy{
		GTFT{Initial: 300, R0: 5, Beta: 0.8},
		GTFT{Initial: 300, R0: 5, Beta: 0.8},
		GTFT{Initial: 300, R0: 5, Beta: 0.8},
	})
	// Plain TFT ratchets down: each stage it matches the *minimum* of
	// noisy observations, a strictly downward drift. GTFT must hold near
	// the initial CW.
	if tftFinal >= 270 {
		t.Errorf("TFT under noise ended at %d; expected severe downward ratchet", tftFinal)
	}
	if gtftFinal < 270 {
		t.Errorf("GTFT under noise ended at %d; expected to hold near 300", gtftFinal)
	}
}

func TestConstantStrategy(t *testing.T) {
	c := Constant{W: 42}
	if w := c.ChooseCW(0, [][]int{{1, 2}}, nil); w != 42 {
		t.Fatalf("Constant CW = %d, want 42", w)
	}
	if !strings.Contains(c.Name(), "42") {
		t.Fatalf("name %q missing CW", c.Name())
	}
	m := Constant{W: 2, Label: "malicious"}
	if !strings.Contains(m.Name(), "malicious") {
		t.Fatalf("label lost: %q", m.Name())
	}
}

func TestMaliciousDragsNetworkDown(t *testing.T) {
	g := mustGame(t, 4, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	strats := []Strategy{
		Constant{W: 8, Label: "malicious"},
		TFT{Initial: ne.WStar}, TFT{Initial: ne.WStar}, TFT{Initial: ne.WStar},
	}
	e, err := NewEngine(g, strats)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ConvergedCW != 8 {
		t.Fatalf("network converged to %d, want the malicious CW 8", tr.ConvergedCW)
	}
	// Global payoff after collapse strictly below the NE. (Backoff
	// doubling softens the damage of moderate attacks — severity is
	// exercised separately in the m=0 paralysis test.)
	uNE := float64(4) * ne.UStar
	last := tr.Stages[len(tr.Stages)-1]
	var uCollapsed float64
	for _, u := range last.UtilityRates {
		uCollapsed += u
	}
	if uCollapsed >= uNE {
		t.Errorf("collapsed global %g not below NE global %g", uCollapsed, uNE)
	}
}

func TestBestResponseAgainstConstants(t *testing.T) {
	g := mustGame(t, 5, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	br := &BestResponse{Game: g, Initial: ne.WStar}
	strats := []Strategy{br,
		Constant{W: ne.WStar}, Constant{W: ne.WStar}, Constant{W: ne.WStar}, Constant{W: ne.WStar}}
	e, err := NewEngine(g, strats)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 4(2): the myopic best response to peers pinned at Wc* is to
	// undercut (never to raise).
	wBR := tr.Stages[1].Profile[0]
	if wBR >= ne.WStar {
		t.Errorf("best response %d does not undercut Wc* = %d", wBR, ne.WStar)
	}
	// And the deviator's stage payoff must exceed the uniform payoff.
	if tr.Stages[1].UtilityRates[0] <= ne.UStar {
		t.Errorf("undercutting payoff %g not above uniform %g", tr.Stages[1].UtilityRates[0], ne.UStar)
	}
}

func TestEngineValidation(t *testing.T) {
	g := mustGame(t, 2, phy.Basic)
	if _, err := NewEngine(nil, nil); err == nil {
		t.Error("nil game accepted")
	}
	if _, err := NewEngine(g, []Strategy{TFT{Initial: 1}}); err == nil {
		t.Error("strategy-count mismatch accepted")
	}
	if _, err := NewEngine(g, []Strategy{TFT{Initial: 1}, nil}); err == nil {
		t.Error("nil strategy accepted")
	}
	e, err := NewEngine(g, []Strategy{TFT{Initial: 1}, TFT{Initial: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0); err == nil {
		t.Error("Run(0) accepted")
	}
}

func TestEngineClampsStrategyOutput(t *testing.T) {
	g := mustGame(t, 2, phy.Basic)
	e, err := NewEngine(g, []Strategy{Constant{W: -5}, Constant{W: 1 << 30}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	p := tr.Stages[0].Profile
	if p[0] != 1 || p[1] != g.Config().WMax {
		t.Fatalf("profile = %v, want clamped to [1, WMax]", p)
	}
}

func TestStopOnConvergence(t *testing.T) {
	g := mustGame(t, 3, phy.Basic)
	e, err := NewEngine(g,
		[]Strategy{TFT{Initial: 100}, TFT{Initial: 100}, TFT{Initial: 100}},
		WithStopOnConvergence(3))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stages) != 3 {
		t.Fatalf("ran %d stages, want early stop at 3", len(tr.Stages))
	}
	if tr.ConvergedAt != 0 || tr.ConvergedCW != 100 {
		t.Fatalf("ConvergedAt=%d CW=%d, want 0, 100", tr.ConvergedAt, tr.ConvergedCW)
	}
}

func TestTraceDiscountedUtility(t *testing.T) {
	tr := &Trace{Stages: []StageRecord{
		{UtilityRates: []float64{2}},
		{UtilityRates: []float64{3}},
	}}
	// δ=0.5, T=10: 2*10 + 0.5*3*10 = 35.
	if got := tr.DiscountedUtility(0, 0.5, 10); math.Abs(got-35) > 1e-12 {
		t.Fatalf("discounted utility = %g, want 35", got)
	}
}

func TestTraceFinalProfileEmpty(t *testing.T) {
	tr := &Trace{}
	if tr.FinalProfile() != nil {
		t.Fatal("empty trace should have nil final profile")
	}
}

func TestNoConvergenceWithOscillation(t *testing.T) {
	// Two constants at different CWs never converge to a uniform profile.
	g := mustGame(t, 2, phy.Basic)
	e, err := NewEngine(g, []Strategy{Constant{W: 10}, Constant{W: 20}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ConvergedAt != -1 || tr.ConvergedCW != 0 {
		t.Fatalf("ConvergedAt=%d CW=%d, want -1, 0", tr.ConvergedAt, tr.ConvergedCW)
	}
}

func TestStrategyNames(t *testing.T) {
	g := mustGame(t, 2, phy.Basic)
	for _, s := range []Strategy{
		TFT{Initial: 7},
		GTFT{Initial: 7, R0: 3, Beta: 0.9},
		Constant{W: 7},
		&BestResponse{Game: g, Initial: 7},
	} {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}

func TestEngineNoiseDeterministicBySeed(t *testing.T) {
	g := mustGame(t, 3, phy.Basic)
	noise := func(r *rng.Source, w int) int {
		return int(float64(w) * r.UniformRange(0.9, 1.1))
	}
	run := func(seed uint64) []int {
		e, err := NewEngine(g,
			[]Strategy{TFT{Initial: 200}, TFT{Initial: 200}, TFT{Initial: 200}},
			WithNoise(noise), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := e.Run(20)
		if err != nil {
			t.Fatal(err)
		}
		return tr.FinalProfile()
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := run(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Log("different seeds coincided (possible but unlikely); not failing")
	}
}

package core

import (
	"fmt"
	"math"

	"selfishmac/internal/num"
)

// DeviationOutcome captures the stage payoffs when one player deviates
// from a uniform profile (the setting of Lemma 4).
type DeviationOutcome struct {
	// WDev is the deviator's CW, WBase everyone else's.
	WDev, WBase int
	// UDev and UPeer are the utility rates of the deviator and of a
	// conforming peer in the deviated profile.
	UDev, UPeer float64
	// UUniform is the per-node utility rate of the undisturbed uniform
	// profile (all at WBase).
	UUniform float64
}

// Deviation solves the one-deviator profile (wDev; wBase, …, wBase) and
// the uniform baseline, returning the Lemma 4 payoff triple.
func (g *Game) Deviation(wDev, wBase int) (DeviationOutcome, error) {
	if g.cfg.N < 2 {
		return DeviationOutcome{}, fmt.Errorf("core: deviation analysis needs >= 2 players, have %d", g.cfg.N)
	}
	dev, err := g.model.SolveDeviation(wDev, wBase, g.cfg.N)
	if err != nil {
		return DeviationOutcome{}, err
	}
	uni, err := g.UniformUtilityRate(wBase)
	if err != nil {
		return DeviationOutcome{}, err
	}
	out := DeviationOutcome{
		WDev:     wDev,
		WBase:    wBase,
		UDev:     g.UtilityRate(dev, 0),
		UUniform: uni,
	}
	if g.cfg.N >= 2 {
		out.UPeer = g.UtilityRate(dev, 1)
	}
	return out, nil
}

// SatisfiesLemma4 reports whether the outcome obeys the orderings of
// Lemma 4: a deviator with a larger CW is disfavored
// (U_dev < U_uniform < U_peer) and one with a smaller CW is favored
// (U_peer < U_uniform < U_dev). Equal CWs satisfy it trivially.
func (d DeviationOutcome) SatisfiesLemma4() bool {
	const eps = 1e-15
	switch {
	case d.WDev > d.WBase:
		return d.UDev < d.UUniform+eps && d.UUniform < d.UPeer+eps
	case d.WDev < d.WBase:
		return d.UPeer < d.UUniform+eps && d.UUniform < d.UDev+eps
	default:
		return true
	}
}

// ShortSightedResult is the Section V.D analysis for one short-sighted
// player with discount δ_s facing TFT peers that take lag stages to react.
type ShortSightedResult struct {
	// DeltaS and Lag echo the inputs.
	DeltaS float64
	Lag    int
	// WBest is the deviation Ws maximizing the player's discounted payoff.
	WBest int
	// UDeviate is the discounted payoff of playing WBest (lag stages of
	// advantage, then collapse to the uniform WBest profile forever).
	UDeviate float64
	// UHonest is the discounted payoff of staying at Wc* forever.
	UHonest float64
	// GainRatio is UDeviate / UHonest (> 1 means deviating pays).
	GainRatio float64
	// PostCollapsePerNode is the per-node utility rate after everyone has
	// matched WBest — the damage inflicted on the network.
	PostCollapsePerNode float64
	// GlobalLossFrac is the relative global-payoff loss after collapse:
	// 1 − u(WBest)/u(Wc*).
	GlobalLossFrac float64
}

// ShortSightedBest finds the payoff-maximizing deviation for a
// short-sighted player (discount deltaS in [0, 1)) against TFT peers at
// the efficient NE ne, when peers need lag >= 1 stages to react:
//
//	U_s(Ws) = (1−δ_s^lag)/(1−δ_s) · U_s^dev(Ws)  +  δ_s^lag/(1−δ_s) · U_s^post(Ws)
//
// with U_s^dev the stage payoff while others still play Wc* and U_s^post
// the stage payoff after everyone has matched Ws.
func (g *Game) ShortSightedBest(ne NE, deltaS float64, lag int) (ShortSightedResult, error) {
	if deltaS < 0 || deltaS >= 1 {
		return ShortSightedResult{}, fmt.Errorf("core: short-sighted discount %g outside [0, 1)", deltaS)
	}
	if lag < 1 {
		return ShortSightedResult{}, fmt.Errorf("core: reaction lag %d must be >= 1", lag)
	}
	T := g.cfg.StageDuration
	geomHead := (1 - math.Pow(deltaS, float64(lag))) / (1 - deltaS)
	geomTail := math.Pow(deltaS, float64(lag)) / (1 - deltaS)

	var solveErr error
	payoff := func(ws int) float64 {
		dev, err := g.Deviation(ws, ne.WStar)
		if err != nil {
			solveErr = err
			return math.Inf(-1)
		}
		post, err := g.UniformUtilityRate(ws)
		if err != nil {
			solveErr = err
			return math.Inf(-1)
		}
		return geomHead*dev.UDev*T + geomTail*post*T
	}
	stride := ne.WStar / 64
	wBest, uBest, err := num.ArgmaxIntCoarse(payoff, 1, g.cfg.WMax, max(stride, 1))
	if err != nil {
		return ShortSightedResult{}, err
	}
	if solveErr != nil {
		return ShortSightedResult{}, solveErr
	}

	uHonest := ne.UStar * T / (1 - deltaS)
	post, err := g.UniformUtilityRate(wBest)
	if err != nil {
		return ShortSightedResult{}, err
	}
	res := ShortSightedResult{
		DeltaS:              deltaS,
		Lag:                 lag,
		WBest:               wBest,
		UDeviate:            uBest,
		UHonest:             uHonest,
		PostCollapsePerNode: post,
		GlobalLossFrac:      1 - post/ne.UStar,
	}
	if uHonest != 0 {
		res.GainRatio = uBest / uHonest
	}
	return res, nil
}

// MaliciousResult is the Section V.E analysis of a malicious player that
// pins its CW at wMal < Wc* to damage the network.
type MaliciousResult struct {
	// WMal is the malicious CW.
	WMal int
	// GlobalAtNE is the global utility rate with everyone at Wc*.
	GlobalAtNE float64
	// GlobalTransient is the global utility rate while only the attacker
	// deviates (before TFT drags everyone down).
	GlobalTransient float64
	// GlobalCollapsed is the global utility rate after TFT convergence to
	// the uniform wMal profile.
	GlobalCollapsed float64
	// Paralyzed reports whether the post-convergence network operates at
	// non-positive payoff (the paper's "network collapse").
	Paralyzed bool
}

// MaliciousImpact quantifies the damage of a malicious player pinned at
// wMal against TFT peers initially at the efficient NE ne.
func (g *Game) MaliciousImpact(ne NE, wMal int) (MaliciousResult, error) {
	if wMal < 1 {
		return MaliciousResult{}, fmt.Errorf("core: malicious CW %d must be >= 1", wMal)
	}
	n := float64(g.cfg.N)
	dev, err := g.model.SolveDeviation(wMal, ne.WStar, g.cfg.N)
	if err != nil {
		return MaliciousResult{}, err
	}
	rates := g.UtilityRates(dev)
	var transient float64
	for _, u := range rates {
		transient += u
	}
	post, err := g.UniformUtilityRate(wMal)
	if err != nil {
		return MaliciousResult{}, err
	}
	return MaliciousResult{
		WMal:            wMal,
		GlobalAtNE:      n * ne.UStar,
		GlobalTransient: transient,
		GlobalCollapsed: n * post,
		Paralyzed:       post <= 0,
	}, nil
}

package core

import (
	"math"
	"testing"
	"testing/quick"

	"selfishmac/internal/phy"
	"selfishmac/internal/rng"
)

func TestDeviationLemma4UpAndDown(t *testing.T) {
	g := mustGame(t, 10, phy.Basic)
	base := 300
	up, err := g.Deviation(600, base)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 4(1): W_i > W_k  =>  U_dev < U_uniform < U_peer.
	if !(up.UDev < up.UUniform && up.UUniform < up.UPeer) {
		t.Errorf("upward deviation ordering violated: dev=%g uni=%g peer=%g", up.UDev, up.UUniform, up.UPeer)
	}
	if !up.SatisfiesLemma4() {
		t.Error("SatisfiesLemma4 false for upward deviation")
	}
	down, err := g.Deviation(100, base)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 4(2): W_i < W_k  =>  U_peer < U_uniform < U_dev.
	if !(down.UPeer < down.UUniform && down.UUniform < down.UDev) {
		t.Errorf("downward deviation ordering violated: dev=%g uni=%g peer=%g", down.UDev, down.UUniform, down.UPeer)
	}
	if !down.SatisfiesLemma4() {
		t.Error("SatisfiesLemma4 false for downward deviation")
	}
}

// Property: Lemma 4 orderings hold across random populations, baselines
// and deviations, in both access modes.
func TestLemma4Property(t *testing.T) {
	games := map[phy.AccessMode]*Game{
		phy.Basic:  mustGame(t, 8, phy.Basic),
		phy.RTSCTS: mustGame(t, 8, phy.RTSCTS),
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		mode := phy.Basic
		if r.Intn(2) == 1 {
			mode = phy.RTSCTS
		}
		g := games[mode]
		wBase := 2 + r.Intn(800)
		wDev := 1 + r.Intn(1200)
		out, err := g.Deviation(wDev, wBase)
		if err != nil {
			return false
		}
		return out.SatisfiesLemma4()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviationEqualCW(t *testing.T) {
	g := mustGame(t, 5, phy.Basic)
	out, err := g.Deviation(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.UDev-out.UUniform) > 1e-12 || math.Abs(out.UPeer-out.UUniform) > 1e-12 {
		t.Errorf("equal-CW deviation should equal uniform: %+v", out)
	}
	if !out.SatisfiesLemma4() {
		t.Error("equal CW must satisfy Lemma 4 trivially")
	}
}

func TestShortSightedExtremes(t *testing.T) {
	g := mustGame(t, 10, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	// δ_s → 0: deviating pays (the paper's first case). Use lag 1.
	myopic, err := g.ShortSightedBest(ne, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if myopic.WBest >= ne.WStar {
		t.Errorf("myopic player should undercut: WBest = %d vs Wc* = %d", myopic.WBest, ne.WStar)
	}
	if myopic.GainRatio <= 1 {
		t.Errorf("myopic gain ratio = %g, want > 1", myopic.GainRatio)
	}
	if myopic.GlobalLossFrac <= 0 {
		t.Errorf("myopic deviation must damage the network: loss = %g", myopic.GlobalLossFrac)
	}

	// δ_s → 1: the long-sighted player plays (nearly) Wc* — deviating
	// cannot beat honesty by any meaningful margin.
	patient, err := g.ShortSightedBest(ne, 0.99995, 1)
	if err != nil {
		t.Fatal(err)
	}
	if patient.GainRatio > 1.001 {
		t.Errorf("long-sighted gain ratio = %g, want <= ~1", patient.GainRatio)
	}
	if rel := math.Abs(float64(patient.WBest-ne.WStar)) / float64(ne.WStar); rel > 0.25 {
		t.Errorf("long-sighted best deviation %d far from Wc* = %d", patient.WBest, ne.WStar)
	}
}

func TestShortSightedMonotoneInDelta(t *testing.T) {
	g := mustGame(t, 10, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	prevGain := math.Inf(1)
	for _, d := range []float64{0, 0.5, 0.9, 0.99, 0.999} {
		res, err := g.ShortSightedBest(ne, d, 1)
		if err != nil {
			t.Fatalf("δ=%g: %v", d, err)
		}
		// The benefit of deviating shrinks as the player becomes more
		// patient (allow tiny numerical slack).
		if res.GainRatio > prevGain+1e-9 {
			t.Errorf("gain ratio increased with patience: δ=%g gives %g > %g", d, res.GainRatio, prevGain)
		}
		prevGain = res.GainRatio
	}
}

func TestShortSightedLongerLagHelpsDeviator(t *testing.T) {
	g := mustGame(t, 10, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	lag1, err := g.ShortSightedBest(ne, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	lag5, err := g.ShortSightedBest(ne, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lag5.UDeviate <= lag1.UDeviate {
		t.Errorf("slower punishment should help the deviator: lag5 %g <= lag1 %g", lag5.UDeviate, lag1.UDeviate)
	}
}

func TestShortSightedValidation(t *testing.T) {
	g := mustGame(t, 5, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ShortSightedBest(ne, 1, 1); err == nil {
		t.Error("δ=1 accepted")
	}
	if _, err := g.ShortSightedBest(ne, -0.1, 1); err == nil {
		t.Error("δ<0 accepted")
	}
	if _, err := g.ShortSightedBest(ne, 0.5, 0); err == nil {
		t.Error("lag 0 accepted")
	}
}

func TestMaliciousImpact(t *testing.T) {
	g := mustGame(t, 10, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.MaliciousImpact(ne, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Section V.E: after the TFT reaction drags everyone to the malicious
	// CW, the global payoff is strictly below the NE. (The *transient*
	// global can exceed the NE: a single hog plus passive peers collides
	// less than n symmetric contenders, so only the post-convergence
	// ordering is asserted.)
	if res.GlobalCollapsed >= res.GlobalAtNE {
		t.Errorf("collapsed global %g not below NE global %g", res.GlobalCollapsed, res.GlobalAtNE)
	}
	if res.GlobalCollapsed >= res.GlobalTransient {
		t.Errorf("collapsed global %g not below transient %g", res.GlobalCollapsed, res.GlobalTransient)
	}
	if res.GlobalCollapsed > 0.8*res.GlobalAtNE {
		t.Errorf("W=4 attack too mild: collapsed %g vs NE %g", res.GlobalCollapsed, res.GlobalAtNE)
	}
}

// With frozen backoff (m = 0) a sufficiently small malicious CW drives the
// post-convergence payoff negative: the paper's literal network paralysis.
func TestMaliciousParalysisWithFrozenBackoff(t *testing.T) {
	cfg := DefaultConfig(10, phy.Basic)
	cfg.PHY.MaxBackoffStage = 0
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.MaliciousImpact(ne, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Paralyzed {
		t.Errorf("W=1 with m=0 should paralyze the network: collapsed global = %g", res.GlobalCollapsed)
	}
	if res.GlobalCollapsed >= 0 {
		t.Errorf("collapsed global = %g, want negative", res.GlobalCollapsed)
	}
}

func TestMaliciousImpactMonotone(t *testing.T) {
	g := mustGame(t, 10, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	// Smaller malicious CW ⇒ worse post-collapse payoff.
	for _, w := range []int{2, 8, 32, 128, ne.WStar} {
		res, err := g.MaliciousImpact(ne, w)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if res.GlobalCollapsed < prev {
			t.Errorf("collapsed payoff not increasing in W at w=%d: %g < %g", w, res.GlobalCollapsed, prev)
		}
		prev = res.GlobalCollapsed
	}
}

func TestMaliciousImpactValidation(t *testing.T) {
	g := mustGame(t, 5, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.MaliciousImpact(ne, 0); err == nil {
		t.Error("W=0 accepted")
	}
}

func TestDeviationNeedsTwoPlayers(t *testing.T) {
	g := mustGame(t, 1, phy.Basic)
	if _, err := g.Deviation(5, 10); err == nil {
		t.Fatal("single-player deviation accepted")
	}
}

package core

import (
	"math"
	"testing"

	"selfishmac/internal/phy"
	"selfishmac/internal/rng"
)

func TestGrimTriggerCooperatesUntilDeviation(t *testing.T) {
	s := GrimTrigger{Initial: 100, PunishCW: 2}
	if w := s.ChooseCW(0, nil, nil); w != 100 {
		t.Fatalf("first stage = %d, want 100", w)
	}
	clean := [][]int{{100, 100}, {100, 100}}
	if w := s.ChooseCW(0, clean, nil); w != 100 {
		t.Fatalf("clean history triggered punishment: %d", w)
	}
}

func TestGrimTriggerPunishesForever(t *testing.T) {
	s := GrimTrigger{Initial: 100, PunishCW: 2}
	// Deviation in the distant past still triggers.
	history := [][]int{{100, 40}, {100, 100}, {100, 100}}
	if w := s.ChooseCW(0, history, nil); w != 2 {
		t.Fatalf("past deviation not punished: %d", w)
	}
}

func TestGrimTriggerIgnoresOwnCW(t *testing.T) {
	s := GrimTrigger{Initial: 100, PunishCW: 2}
	// Own punishment CW must not re-trigger itself (self column ignored).
	history := [][]int{{2, 100}}
	if w := s.ChooseCW(0, history, nil); w != 100 {
		t.Fatalf("own low CW triggered punishment: %d", w)
	}
}

func TestGrimTriggerTolerance(t *testing.T) {
	s := GrimTrigger{Initial: 100, PunishCW: 2, Tolerance: 0.8}
	within := [][]int{{100, 85}}
	if w := s.ChooseCW(0, within, nil); w != 100 {
		t.Fatalf("within-tolerance observation punished: %d", w)
	}
	beyond := [][]int{{100, 75}}
	if w := s.ChooseCW(0, beyond, nil); w != 2 {
		t.Fatalf("beyond-tolerance observation not punished: %d", w)
	}
}

func TestGrimTriggerDefaults(t *testing.T) {
	s := GrimTrigger{Initial: 50}
	// PunishCW < 1 clamps to 1; zero tolerance means exact match.
	bad := [][]int{{50, 49}}
	if w := s.ChooseCW(0, bad, nil); w != 1 {
		t.Fatalf("default punish = %d, want 1", w)
	}
	if s.Name() == "" {
		t.Fatal("empty name")
	}
}

// Grim never recovers from an observation glitch; GTFT does. This is the
// central robustness contrast between the two enforcement strategies.
func TestGrimVersusGTFTUnderOneGlitch(t *testing.T) {
	g := mustGame(t, 3, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	// A noise model that corrupts exactly one mid-run observation (after
	// GTFT's averaging window has history to absorb it — a glitch in the
	// very first stage is indistinguishable from a real defection).
	glitchOnce := func() ObservationNoise {
		calls := 0
		return func(r *rng.Source, w int) int {
			calls++
			if calls == 9 { // one corrupted reading in stage ~4
				return w / 2
			}
			return w
		}
	}
	run := func(strats []Strategy) []int {
		e, err := NewEngine(g, strats, WithNoise(glitchOnce()), WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := e.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		return tr.FinalProfile()
	}
	grim := run([]Strategy{
		GrimTrigger{Initial: ne.WStar, PunishCW: 2, Tolerance: 0.9},
		GrimTrigger{Initial: ne.WStar, PunishCW: 2, Tolerance: 0.9},
		GrimTrigger{Initial: ne.WStar, PunishCW: 2, Tolerance: 0.9},
	})
	gtft := run([]Strategy{
		GTFT{Initial: ne.WStar, R0: 4, Beta: 0.7},
		GTFT{Initial: ne.WStar, R0: 4, Beta: 0.7},
		GTFT{Initial: ne.WStar, R0: 4, Beta: 0.7},
	})
	if grim[0] != 2 {
		t.Errorf("grim after glitch = %v, expected permanent punishment at 2", grim)
	}
	for _, w := range gtft {
		if w < ne.WStar*8/10 {
			t.Errorf("GTFT after one glitch collapsed: %v", gtft)
		}
	}
}

// The Deviant strategy must realize exactly the Section V.D scenario, so
// the analytic payoff formula and a real engine trace must agree.
func TestDeviantMatchesAnalyticShortSighted(t *testing.T) {
	g := mustGame(t, 5, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	const lag = 3
	ws := ne.WStar / 3
	strats := []Strategy{
		Deviant{Deviation: ws, Base: ws, Stages: lag},
		TFT{Initial: ne.WStar}, TFT{Initial: ne.WStar}, TFT{Initial: ne.WStar}, TFT{Initial: ne.WStar},
	}
	// TFT reacts after 1 stage, so with plain TFT the lag is 1; to model
	// lag>1 use GTFT with window=lag... here simply verify the analytic
	// lag-1 formula against the trace.
	strats[0] = Deviant{Deviation: ws, Base: ws, Stages: 1}
	e, err := NewEngine(g, strats)
	if err != nil {
		t.Fatal(err)
	}
	const stages = 400
	tr, err := e.Run(stages)
	if err != nil {
		t.Fatal(err)
	}
	delta := 0.98 // strong discount so the truncated horizon converges
	T := g.Config().StageDuration
	got := tr.DiscountedUtility(0, delta, T)

	dev, err := g.Deviation(ws, ne.WStar)
	if err != nil {
		t.Fatal(err)
	}
	post, err := g.UniformUtilityRate(ws)
	if err != nil {
		t.Fatal(err)
	}
	want := dev.UDev*T + (delta/(1-delta))*post*T*(1-math.Pow(delta, stages-1))
	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Fatalf("engine-realized deviant payoff %g != analytic %g", got, want)
	}
}

func TestDeviantSwitchesBack(t *testing.T) {
	d := Deviant{Deviation: 5, Base: 50, Stages: 2}
	if w := d.ChooseCW(0, nil, nil); w != 5 {
		t.Fatalf("stage 0 = %d", w)
	}
	if w := d.ChooseCW(0, [][]int{{5}}, nil); w != 5 {
		t.Fatalf("stage 1 = %d", w)
	}
	if w := d.ChooseCW(0, [][]int{{5}, {5}}, nil); w != 50 {
		t.Fatalf("stage 2 = %d, want base", w)
	}
	if d.Name() == "" {
		t.Fatal("empty name")
	}
}

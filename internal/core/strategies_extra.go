package core

import "fmt"

// GrimTrigger cooperates at Initial until any player is ever observed
// below Tolerance times its own CW, then punishes forever at PunishCW.
// It is the classic folk-theorem enforcement strategy; compared with TFT
// it deters deviation at least as strongly but — unlike TFT — never
// recovers, so a single observation glitch destroys the network
// permanently. The A5 experiment quantifies that contrast.
type GrimTrigger struct {
	// Initial is the cooperative CW.
	Initial int
	// PunishCW is the permanent punishment CW (typically very small).
	PunishCW int
	// Tolerance in (0, 1]: trigger when some observed CW falls below
	// Tolerance * Initial. Zero means an exact-match trigger (1.0).
	Tolerance float64
}

var _ Strategy = GrimTrigger{}

// Name implements Strategy.
func (s GrimTrigger) Name() string {
	return fmt.Sprintf("grim(W0=%d,punish=%d,tol=%g)", s.Initial, s.PunishCW, s.tol())
}

func (s GrimTrigger) tol() float64 {
	if s.Tolerance <= 0 || s.Tolerance > 1 {
		return 1
	}
	return s.Tolerance
}

// ChooseCW implements Strategy. The trigger scans the whole observed
// history, which makes the strategy stateless-per-instance (safe to copy)
// at O(stages · n) per decision — fine at the game's stage counts.
func (s GrimTrigger) ChooseCW(self int, observed [][]int, _ []float64) int {
	if len(observed) == 0 {
		return s.Initial
	}
	threshold := s.tol() * float64(s.Initial)
	for _, profile := range observed {
		for j, w := range profile {
			if j == self {
				continue
			}
			if float64(w) < threshold {
				return s.punish()
			}
		}
	}
	return s.Initial
}

func (s GrimTrigger) punish() int {
	if s.PunishCW < 1 {
		return 1
	}
	return s.PunishCW
}

// Deviant plays Deviation for the first Stages stages and Base forever
// after — the Section V.D short-sighted player realized as an engine
// strategy, so its analytic payoff formula can be validated against an
// actual repeated-game trace.
type Deviant struct {
	// Deviation and Base are the two CW values.
	Deviation, Base int
	// Stages is how long the deviation lasts.
	Stages int
}

var _ Strategy = Deviant{}

// Name implements Strategy.
func (d Deviant) Name() string {
	return fmt.Sprintf("deviant(W=%d for %d stages, then %d)", d.Deviation, d.Stages, d.Base)
}

// ChooseCW implements Strategy.
func (d Deviant) ChooseCW(_ int, observed [][]int, _ []float64) int {
	if len(observed) < d.Stages {
		return d.Deviation
	}
	return d.Base
}

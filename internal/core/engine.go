package core

import (
	"errors"
	"fmt"

	"selfishmac/internal/rng"
)

// ObservationNoise perturbs one observed CW value. The engine applies it
// to every cross-player observation (a player always knows its own CW
// exactly). The paper's GTFT exists precisely to tolerate such noise.
type ObservationNoise func(r *rng.Source, trueCW int) int

// StageRecord is one stage of a repeated-game trace.
type StageRecord struct {
	// Profile is the CW profile actually played.
	Profile []int
	// UtilityRates are the per-node utility rates u_i (per microsecond).
	UtilityRates []float64
	// Throughput is the normalized channel throughput of the stage.
	Throughput float64
}

// Trace is the outcome of running the repeated game.
type Trace struct {
	// Stages holds one record per played stage.
	Stages []StageRecord
	// ConvergedAt is the first stage from which the profile is uniform
	// and constant to the end of the run, or -1 if never.
	ConvergedAt int
	// ConvergedCW is the common CW after convergence (0 if none).
	ConvergedCW int
}

// DiscountedUtility returns player i's total discounted utility over the
// trace: Σ_k δ^k · u_i(k) · T.
func (tr *Trace) DiscountedUtility(i int, discount, stageDuration float64) float64 {
	var total, pow float64
	pow = 1
	for _, st := range tr.Stages {
		total += pow * st.UtilityRates[i] * stageDuration
		pow *= discount
	}
	return total
}

// FinalProfile returns the last played CW profile (nil for an empty trace).
func (tr *Trace) FinalProfile() []int {
	if len(tr.Stages) == 0 {
		return nil
	}
	return tr.Stages[len(tr.Stages)-1].Profile
}

// Engine runs the repeated MAC game: each stage it collects every
// player's CW from its strategy, solves the channel model for the stage,
// records utilities, and feeds (possibly noisy) observations forward.
type Engine struct {
	game       *Game
	strategies []Strategy
	noise      ObservationNoise
	src        *rng.Source
	stopOnConv bool
	convWindow int
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithNoise installs an observation-noise model.
func WithNoise(noise ObservationNoise) EngineOption {
	return func(e *Engine) { e.noise = noise }
}

// WithSeed seeds the engine's randomness (observation noise). The default
// seed is 1.
func WithSeed(seed uint64) EngineOption {
	return func(e *Engine) { e.src = rng.New(seed) }
}

// WithStopOnConvergence makes Run return early once the profile has been
// uniform and unchanged for window consecutive stages (window >= 1).
func WithStopOnConvergence(window int) EngineOption {
	return func(e *Engine) {
		e.stopOnConv = true
		if window >= 1 {
			e.convWindow = window
		}
	}
}

// NewEngine builds an engine for the game with one strategy per player.
func NewEngine(g *Game, strategies []Strategy, opts ...EngineOption) (*Engine, error) {
	if g == nil {
		return nil, errors.New("core: nil game")
	}
	if len(strategies) != g.N() {
		return nil, fmt.Errorf("core: %d strategies for %d players", len(strategies), g.N())
	}
	for i, s := range strategies {
		if s == nil {
			return nil, fmt.Errorf("core: nil strategy for player %d", i)
		}
	}
	e := &Engine{
		game:       g,
		strategies: strategies,
		src:        rng.New(1),
		convWindow: 3,
	}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Run plays up to maxStages stages and returns the trace.
func (e *Engine) Run(maxStages int) (*Trace, error) {
	if maxStages < 1 {
		return nil, fmt.Errorf("core: maxStages = %d must be >= 1", maxStages)
	}
	n := e.game.N()
	trace := &Trace{ConvergedAt: -1}
	// observedBy[i] is the history as seen by player i.
	observedBy := make([][][]int, n)
	utilitiesOf := make([][]float64, n)

	uniformRun := 0 // consecutive trailing stages with one constant uniform profile
	lastUniform := 0

	for k := 0; k < maxStages; k++ {
		profile := make([]int, n)
		for i, s := range e.strategies {
			w := s.ChooseCW(i, observedBy[i], utilitiesOf[i])
			if w < 1 {
				w = 1
			}
			if w > e.game.Config().WMax {
				w = e.game.Config().WMax
			}
			profile[i] = w
		}
		sol, err := e.game.Model().Solve(profile)
		if err != nil {
			return nil, fmt.Errorf("core: stage %d profile %v: %w", k, profile, err)
		}
		rates := e.game.UtilityRates(sol)
		trace.Stages = append(trace.Stages, StageRecord{
			Profile:      profile,
			UtilityRates: rates,
			Throughput:   sol.Throughput,
		})

		for i := range e.strategies {
			obs := make([]int, n)
			for j, w := range profile {
				if i != j && e.noise != nil {
					obs[j] = clampCW(e.noise(e.src, w), e.game.Config().WMax)
				} else {
					obs[j] = w
				}
			}
			observedBy[i] = append(observedBy[i], obs)
			utilitiesOf[i] = append(utilitiesOf[i], rates[i])
		}

		if uniform(profile) {
			if uniformRun > 0 && profile[0] == lastUniform {
				uniformRun++
			} else {
				uniformRun = 1
			}
			lastUniform = profile[0]
		} else {
			uniformRun = 0
		}
		if e.stopOnConv && uniformRun >= e.convWindow {
			break
		}
	}

	// Derive convergence from the tail of the trace.
	if uniformRun > 0 {
		trace.ConvergedAt = len(trace.Stages) - uniformRun
		trace.ConvergedCW = lastUniform
	}
	return trace, nil
}

func uniform(profile []int) bool {
	for _, w := range profile[1:] {
		if w != profile[0] {
			return false
		}
	}
	return true
}

func clampCW(w, wMax int) int {
	if w < 1 {
		return 1
	}
	if w > wMax {
		return wMax
	}
	return w
}

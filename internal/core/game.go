// Package core implements the paper's contribution: the non-cooperative
// IEEE 802.11 MAC game G = (P, S, U, δ) of Sections IV–V.
//
// Players are the n saturated nodes; a strategy is a contention-window
// value W ∈ {1, …, Wmax} chosen per stage; the stage utility of player i is
//
//	U_i^s(W^k) = u_i(W^k) · T,   u_i = τ_i((1−p_i)g − e) / T_slot,
//
// and the total utility is the δ-discounted sum over stages. The package
// provides
//
//   - the utility machinery on top of the extended Bianchi model,
//   - the efficient-NE computation (Wc*) and the NE set [Wc0, Wc*]
//     (Theorem 2) with the refinement of Section V.B,
//   - the TFT / GTFT strategies and a repeated-game engine,
//   - the deviation analyses of Lemma 4 and Sections V.D–V.E.
package core

import (
	"errors"
	"fmt"
	"math"

	"selfishmac/internal/bianchi"
	"selfishmac/internal/num"
	"selfishmac/internal/phy"
)

// DefaultWMax bounds the strategy space {1, …, Wmax}. It comfortably
// contains the efficient NE for every population size in the paper
// (Wc* ≤ ~900 at n = 50, basic access).
const DefaultWMax = 4096

// Config parameterises the game. Utility units: g and e are per-packet
// gain/cost, utility *rates* are per microsecond, stage utilities are
// rates times StageDuration.
type Config struct {
	// N is the number of players (saturated nodes in range of each other).
	N int
	// Mode selects basic or RTS/CTS access.
	Mode phy.AccessMode
	// PHY is the channel parameterisation (Table I by default).
	PHY phy.Params
	// Gain g and Cost e per packet (Table I: g = 1, e = 0.01).
	Gain float64
	Cost float64
	// StageDuration is T in microseconds (Table I: 10 s).
	StageDuration float64
	// Discount is δ (Table I: 0.9999).
	Discount float64
	// WMax bounds the strategy space.
	WMax int
}

// DefaultConfig returns the paper's Table I configuration for n players.
func DefaultConfig(n int, mode phy.AccessMode) Config {
	return Config{
		N:             n,
		Mode:          mode,
		PHY:           phy.Default(),
		Gain:          1,
		Cost:          0.01,
		StageDuration: 10e6, // 10 s in µs
		Discount:      0.9999,
		WMax:          DefaultWMax,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	var errs []error
	if c.N < 1 {
		errs = append(errs, fmt.Errorf("N = %d must be >= 1", c.N))
	}
	if !c.Mode.Valid() {
		errs = append(errs, fmt.Errorf("invalid access mode %v", c.Mode))
	}
	if err := c.PHY.Validate(); err != nil {
		errs = append(errs, err)
	}
	if c.Gain <= 0 {
		errs = append(errs, fmt.Errorf("gain g = %g must be positive", c.Gain))
	}
	if c.Cost < 0 {
		errs = append(errs, fmt.Errorf("cost e = %g must be non-negative", c.Cost))
	}
	if c.Cost >= c.Gain {
		errs = append(errs, fmt.Errorf("cost e = %g must be below gain g = %g for the game to have positive equilibria", c.Cost, c.Gain))
	}
	if c.StageDuration <= 0 {
		errs = append(errs, fmt.Errorf("stage duration %g must be positive", c.StageDuration))
	}
	if c.Discount < 0 || c.Discount >= 1 {
		errs = append(errs, fmt.Errorf("discount δ = %g outside [0, 1)", c.Discount))
	}
	if c.WMax < 2 {
		errs = append(errs, fmt.Errorf("WMax = %d must be >= 2", c.WMax))
	}
	return errors.Join(errs...)
}

// Game binds a configuration to its solved channel model.
type Game struct {
	cfg   Config
	model *bianchi.Model
}

// NewGame constructs the game, validating the configuration and deriving
// the channel timing.
func NewGame(cfg Config) (*Game, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid config: %w", err)
	}
	tm, err := cfg.PHY.Timing(cfg.Mode)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	model, err := bianchi.New(tm, cfg.PHY.MaxBackoffStage)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Game{cfg: cfg, model: model}, nil
}

// Config returns the game's configuration.
func (g *Game) Config() Config { return g.cfg }

// Model exposes the underlying channel model.
func (g *Game) Model() *bianchi.Model { return g.model }

// N returns the number of players.
func (g *Game) N() int { return g.cfg.N }

// UtilityRate returns u_i for node i of a solved profile, in gain-units
// per microsecond: τ_i((1−p_i)g − e) / T_slot.
func (g *Game) UtilityRate(sol *bianchi.Solution, i int) float64 {
	return sol.Tau[i] * ((1-sol.P[i])*g.cfg.Gain - g.cfg.Cost) / sol.Tslot
}

// UtilityRates returns u_i for every node of a solved profile.
func (g *Game) UtilityRates(sol *bianchi.Solution) []float64 {
	out := make([]float64, len(sol.Tau))
	for i := range out {
		out[i] = g.UtilityRate(sol, i)
	}
	return out
}

// StageUtility returns U_i^s = u_i · T for node i.
func (g *Game) StageUtility(sol *bianchi.Solution, i int) float64 {
	return g.UtilityRate(sol, i) * g.cfg.StageDuration
}

// DiscountedConstant returns the total discounted utility of receiving the
// given stage utility every stage forever: U = U^s / (1−δ).
func (g *Game) DiscountedConstant(stageUtility float64) float64 {
	return stageUtility / (1 - g.cfg.Discount)
}

// ProfileUtilities solves an arbitrary CW profile and returns the per-node
// utility rates.
func (g *Game) ProfileUtilities(w []int) ([]float64, error) {
	if len(w) != g.cfg.N {
		return nil, fmt.Errorf("core: profile has %d entries, game has %d players", len(w), g.cfg.N)
	}
	sol, err := g.model.Solve(w)
	if err != nil {
		return nil, err
	}
	return g.UtilityRates(sol), nil
}

// UniformUtilityRate returns the per-node utility rate when every player
// operates on CW w.
func (g *Game) UniformUtilityRate(w int) (float64, error) {
	sol, err := g.model.SolveUniform(w, g.cfg.N)
	if err != nil {
		return 0, err
	}
	return g.UtilityRate(sol, 0), nil
}

// GlobalUtilityRate returns Σ_i u_i = n·u at the uniform profile.
func (g *Game) GlobalUtilityRate(w int) (float64, error) {
	u, err := g.UniformUtilityRate(w)
	if err != nil {
		return 0, err
	}
	return float64(g.cfg.N) * u, nil
}

// NormalizedGlobalPayoff returns U/C as plotted in the paper's Figures 2
// and 3, where U = Σ_i U_i is the total discounted global payoff and
// C = gT/(σ(1−δ)). The normalization cancels T and δ:
//
//	U/C = n · u · σ / g
//
// with u the per-node utility rate.
func (g *Game) NormalizedGlobalPayoff(w int) (float64, error) {
	u, err := g.UniformUtilityRate(w)
	if err != nil {
		return 0, err
	}
	return float64(g.cfg.N) * u * g.model.Timing.Slot / g.cfg.Gain, nil
}

// NE describes the solved equilibrium structure of the game (Theorem 2
// plus the Section V.B refinement).
type NE struct {
	// WStar is Wc*, the CW of the unique efficient (payoff- and
	// welfare-maximizing, Pareto-optimal) NE.
	WStar int
	// UStar is the per-node utility rate at WStar.
	UStar float64
	// TauStar is the per-node transmission probability at WStar.
	TauStar float64
	// W0 is Wc0: the smallest W with positive uniform utility. Every
	// uniform profile in [W0, WStar] is a NE of the repeated game.
	W0 int
	// Count is the number of Nash equilibria, WStar − W0 + 1.
	Count int
	// ThroughputStar is the normalized channel throughput at WStar.
	ThroughputStar float64
}

// FindEfficientNE computes Wc* by maximizing the uniform per-node utility
// rate over the strategy space (exact fixed point per candidate W, no
// e ≈ 0 approximation), and Wc0 by locating the sign change of the
// utility below Wc* (Theorem 2). Per Lemma 3 the objective is unimodal in
// W, which the coarse-grid argmax exploits.
func (g *Game) FindEfficientNE() (NE, error) {
	if g.cfg.N < 2 {
		return NE{}, fmt.Errorf("core: the MAC game needs at least 2 players, have %d", g.cfg.N)
	}
	var solveErr error
	util := func(w int) float64 {
		u, err := g.UniformUtilityRate(w)
		if err != nil {
			solveErr = err
			return math.Inf(-1)
		}
		return u
	}
	stride := g.cfg.WMax / 128
	if stride < 1 {
		stride = 1
	}
	wStar, uStar, err := num.ArgmaxIntCoarse(util, 1, g.cfg.WMax, stride)
	if err != nil {
		return NE{}, err
	}
	if solveErr != nil {
		return NE{}, solveErr
	}
	if wStar == g.cfg.WMax {
		return NE{}, fmt.Errorf("core: efficient NE hit the strategy-space bound WMax = %d; increase Config.WMax", g.cfg.WMax)
	}

	w0, err := g.findW0(wStar)
	if err != nil {
		return NE{}, err
	}
	sol, err := g.model.SolveUniform(wStar, g.cfg.N)
	if err != nil {
		return NE{}, err
	}
	return NE{
		WStar:          wStar,
		UStar:          uStar,
		TauStar:        sol.Tau[0],
		W0:             w0,
		Count:          wStar - w0 + 1,
		ThroughputStar: sol.Throughput,
	}, nil
}

// FindPaperNE computes Wc* the way the paper's *theoretical model*
// tabulates it (Tables II and III): solve the Appendix-B condition
// Q(τ) = 0 for τ_c* in the e ≪ g limit, then map τ_c* back to the CW
// value through the uniform fixed point (τ is strictly decreasing in W).
//
// FindEfficientNE instead maximizes the exact utility including the
// transmission-cost term e·τ. For basic access the two agree closely; for
// RTS/CTS the payoff plateau is so flat that the cost term moves the exact
// argmax noticeably above the paper's value while changing the payoff by
// well under 1% (see EXPERIMENTS.md).
func (g *Game) FindPaperNE() (NE, error) {
	if g.cfg.N < 2 {
		return NE{}, fmt.Errorf("core: the MAC game needs at least 2 players, have %d", g.cfg.N)
	}
	tauStar, err := g.model.OptimalTau(g.cfg.N)
	if err != nil {
		return NE{}, err
	}
	// Binary search the smallest W with τ(W) <= τ*, then pick the closer
	// of it and its left neighbor.
	tauOf := func(w int) (float64, error) {
		sol, err := g.model.SolveUniform(w, g.cfg.N)
		if err != nil {
			return 0, err
		}
		return sol.Tau[0], nil
	}
	lo, hi := 1, g.cfg.WMax
	tauHi, err := tauOf(hi)
	if err != nil {
		return NE{}, err
	}
	if tauHi > tauStar {
		return NE{}, fmt.Errorf("core: τ* = %g unreachable within WMax = %d; increase Config.WMax", tauStar, g.cfg.WMax)
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		tm, err := tauOf(mid)
		if err != nil {
			return NE{}, err
		}
		if tm <= tauStar {
			hi = mid
		} else {
			lo = mid
		}
	}
	wStar := hi
	if lo >= 1 {
		tLo, err := tauOf(lo)
		if err != nil {
			return NE{}, err
		}
		tHi, err := tauOf(hi)
		if err != nil {
			return NE{}, err
		}
		if math.Abs(tLo-tauStar) < math.Abs(tHi-tauStar) {
			wStar = lo
		}
	}
	uStar, err := g.UniformUtilityRate(wStar)
	if err != nil {
		return NE{}, err
	}
	w0, err := g.findW0(wStar)
	if err != nil {
		return NE{}, err
	}
	sol, err := g.model.SolveUniform(wStar, g.cfg.N)
	if err != nil {
		return NE{}, err
	}
	return NE{
		WStar:          wStar,
		UStar:          uStar,
		TauStar:        sol.Tau[0],
		W0:             w0,
		Count:          wStar - w0 + 1,
		ThroughputStar: sol.Throughput,
	}, nil
}

// findW0 locates Wc0: the smallest W in [1, wStar] whose uniform utility
// is positive. The utility is monotone increasing on [1, Wc*] (paper
// Section V.A), so binary search on the sign is valid.
func (g *Game) findW0(wStar int) (int, error) {
	u1, err := g.UniformUtilityRate(1)
	if err != nil {
		return 0, err
	}
	if u1 > 0 {
		return 1, nil
	}
	lo, hi := 1, wStar // u(lo) <= 0, u(hi) > 0
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		u, err := g.UniformUtilityRate(mid)
		if err != nil {
			return 0, err
		}
		if u > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// IsUniformNE reports whether the uniform profile at w is a NE per
// Theorem 2, i.e. w ∈ [Wc0, Wc*].
func (ne NE) IsUniformNE(w int) bool { return w >= ne.W0 && w <= ne.WStar }

// Refinement holds the Section V.B analysis of a candidate NE set.
type Refinement struct {
	// Fair is true for every uniform NE: all players share one CW and
	// one payoff after TFT convergence.
	Fair bool
	// SocialWelfareMaximizer is the unique welfare-maximizing NE (= Wc*).
	SocialWelfareMaximizer int
	// ParetoOptimal lists the Pareto-optimal uniform NE (only Wc*: any
	// other uniform NE is dominated by moving everyone to Wc*).
	ParetoOptimal []int
	// Efficient is the surviving NE after all three criteria.
	Efficient int
}

// Refine applies the paper's three refinement criteria to the NE set.
func (g *Game) Refine(ne NE) (Refinement, error) {
	uStar, err := g.UniformUtilityRate(ne.WStar)
	if err != nil {
		return Refinement{}, err
	}
	pareto := make([]int, 0, 1)
	for w := ne.W0; w <= ne.WStar; w++ {
		u, err := g.UniformUtilityRate(w)
		if err != nil {
			return Refinement{}, err
		}
		// A uniform profile is Pareto-dominated iff some other uniform NE
		// strictly improves every player, i.e. iff u < uStar.
		if u >= uStar-1e-15*math.Abs(uStar) {
			pareto = append(pareto, w)
		}
	}
	return Refinement{
		Fair:                   true,
		SocialWelfareMaximizer: ne.WStar,
		ParetoOptimal:          pareto,
		Efficient:              ne.WStar,
	}, nil
}

// DeviatorUtilityOfTau evaluates the Section V utility of a player as a
// *continuous* function of its own transmission probability tauSelf,
// holding the other n−1 players at tauOther each. It backs the numeric
// verification of Lemma 2 (concavity in τ_i when g ≫ e).
func (g *Game) DeviatorUtilityOfTau(tauSelf, tauOther float64) float64 {
	n := g.cfg.N
	tm := g.model.Timing
	othersIdle := math.Pow(1-tauOther, float64(n-1))
	pSelf := 1 - othersIdle
	// Slot decomposition with one deviator.
	allIdle := (1 - tauSelf) * othersIdle
	psuccSelf := tauSelf * othersIdle
	psuccOthers := float64(n-1) * tauOther * math.Pow(1-tauOther, float64(n-2)) * (1 - tauSelf)
	psucc := psuccSelf + psuccOthers
	ptr := 1 - allIdle
	tslot := allIdle*tm.Slot + psucc*tm.Ts + (ptr-psucc)*tm.Tc
	return tauSelf * ((1-pSelf)*g.cfg.Gain - g.cfg.Cost) / tslot
}

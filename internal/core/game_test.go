package core

import (
	"math"
	"testing"
	"testing/quick"

	"selfishmac/internal/num"
	"selfishmac/internal/phy"
	"selfishmac/internal/rng"
)

func mustGame(t testing.TB, n int, mode phy.AccessMode) *Game {
	t.Helper()
	g, err := NewGame(DefaultConfig(n, mode))
	if err != nil {
		t.Fatalf("NewGame: %v", err)
	}
	return g
}

func TestDefaultConfigMatchesTableI(t *testing.T) {
	c := DefaultConfig(5, phy.Basic)
	if c.Gain != 1 || c.Cost != 0.01 {
		t.Errorf("g, e = %g, %g; want 1, 0.01", c.Gain, c.Cost)
	}
	if c.StageDuration != 10e6 {
		t.Errorf("T = %g µs, want 1e7 (10 s)", c.StageDuration)
	}
	if c.Discount != 0.9999 {
		t.Errorf("δ = %g, want 0.9999", c.Discount)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero players", func(c *Config) { c.N = 0 }},
		{"bad mode", func(c *Config) { c.Mode = 0 }},
		{"zero gain", func(c *Config) { c.Gain = 0 }},
		{"negative cost", func(c *Config) { c.Cost = -0.1 }},
		{"cost >= gain", func(c *Config) { c.Cost = 1 }},
		{"zero stage", func(c *Config) { c.StageDuration = 0 }},
		{"discount 1", func(c *Config) { c.Discount = 1 }},
		{"negative discount", func(c *Config) { c.Discount = -0.1 }},
		{"tiny wmax", func(c *Config) { c.WMax = 1 }},
		{"bad phy", func(c *Config) { c.PHY.BitRate = 0 }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultConfig(5, phy.Basic)
			tc.mut(&c)
			if err := c.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if _, err := NewGame(c); err == nil {
				t.Fatalf("NewGame accepted %s", tc.name)
			}
		})
	}
}

func TestUtilityRateSign(t *testing.T) {
	// With the default backoff doubling (m = 6) even W = 1 nodes retreat
	// after collisions, so the utility stays positive for small n; the
	// negative-utility regime of Theorem 2's Wc0 appears when backoff
	// cannot grow (m = 0) and aggressive nodes collide almost surely.
	cfg := DefaultConfig(5, phy.Basic)
	cfg.PHY.MaxBackoffStage = 0
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uLow, err := g.UniformUtilityRate(1)
	if err != nil {
		t.Fatal(err)
	}
	if uLow >= 0 {
		t.Errorf("m=0: u(W=1) = %g, want negative (certain collision)", uLow)
	}
	// Near the paper's Wc* utility must be positive (default m).
	gDefault := mustGame(t, 5, phy.Basic)
	uStar, err := gDefault.UniformUtilityRate(76)
	if err != nil {
		t.Fatal(err)
	}
	if uStar <= 0 {
		t.Errorf("u(W=76) = %g, want positive", uStar)
	}
}

func TestW0WithFrozenBackoff(t *testing.T) {
	// With m = 0 the low-W region has negative utility, so Wc0 > 1 and
	// the Theorem 2 sign characterisation is exercised non-trivially.
	cfg := DefaultConfig(10, phy.Basic)
	cfg.PHY.MaxBackoffStage = 0
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	if ne.W0 <= 1 {
		t.Fatalf("W0 = %d, want > 1 in the frozen-backoff regime", ne.W0)
	}
	u0, _ := g.UniformUtilityRate(ne.W0)
	uBelow, _ := g.UniformUtilityRate(ne.W0 - 1)
	if u0 <= 0 || uBelow > 0 {
		t.Errorf("W0=%d: u(W0)=%g (want >0), u(W0-1)=%g (want <=0)", ne.W0, u0, uBelow)
	}
}

func TestUtilityUnimodalInW(t *testing.T) {
	g := mustGame(t, 20, phy.Basic)
	// Sample the utility curve and check single-peakedness.
	var prev float64
	rising := true
	first := true
	for w := 2; w <= 2000; w += 7 {
		u, err := g.UniformUtilityRate(w)
		if err != nil {
			t.Fatal(err)
		}
		if !first {
			if rising && u < prev {
				rising = false
			} else if !rising && u > prev+1e-15 {
				t.Fatalf("utility rose again at W=%d after the peak (u=%g > prev=%g)", w, u, prev)
			}
		}
		prev, first = u, false
	}
	if rising {
		t.Fatal("utility never peaked within the sampled range")
	}
}

func TestFindEfficientNEBasic(t *testing.T) {
	// Paper Table II: n=5 → 76, n=20 → 336, n=50 → 879 (basic access).
	// Our exact fixed-point model lands within ~5% (see DESIGN.md).
	cases := []struct {
		n     int
		paper int
	}{
		{5, 76}, {20, 336}, {50, 879},
	}
	for _, tc := range cases {
		g := mustGame(t, tc.n, phy.Basic)
		ne, err := g.FindEfficientNE()
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		rel := math.Abs(float64(ne.WStar-tc.paper)) / float64(tc.paper)
		if rel > 0.08 {
			t.Errorf("n=%d: Wc* = %d, paper %d (rel err %.3f)", tc.n, ne.WStar, tc.paper, rel)
		}
		if ne.UStar <= 0 {
			t.Errorf("n=%d: UStar = %g, want positive", tc.n, ne.UStar)
		}
		if ne.W0 < 1 || ne.W0 > ne.WStar {
			t.Errorf("n=%d: W0 = %d outside [1, %d]", tc.n, ne.W0, ne.WStar)
		}
		if ne.Count != ne.WStar-ne.W0+1 {
			t.Errorf("n=%d: Count = %d, want %d", tc.n, ne.Count, ne.WStar-ne.W0+1)
		}
		// Wc0 definition: u(W0) > 0, u(W0-1) <= 0 (or W0 == 1).
		u0, _ := g.UniformUtilityRate(ne.W0)
		if u0 <= 0 {
			t.Errorf("n=%d: u(W0=%d) = %g, want positive", tc.n, ne.W0, u0)
		}
		if ne.W0 > 1 {
			uBelow, _ := g.UniformUtilityRate(ne.W0 - 1)
			if uBelow > 0 {
				t.Errorf("n=%d: u(W0-1=%d) = %g, want <= 0", tc.n, ne.W0-1, uBelow)
			}
		}
	}
}

func TestFindPaperNERTSCTS(t *testing.T) {
	// Paper Table III: n=20 → 48, n=50 → 116, via the theoretical (e << g)
	// condition. (The paper's n=5 cell is 22; the model gives ~12 — see
	// DESIGN.md. We assert the cells the model reproduces and the
	// qualitative claim for n=5.)
	cases := []struct {
		n     int
		paper int
	}{
		{20, 48}, {50, 116},
	}
	for _, tc := range cases {
		g := mustGame(t, tc.n, phy.RTSCTS)
		ne, err := g.FindPaperNE()
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		rel := math.Abs(float64(ne.WStar-tc.paper)) / float64(tc.paper)
		if rel > 0.08 {
			t.Errorf("n=%d: Wc* = %d, paper %d (rel err %.3f)", tc.n, ne.WStar, tc.paper, rel)
		}
	}
	// Qualitative: RTS/CTS NE is far below basic for every n.
	for _, n := range []int{5, 20, 50} {
		neB, err := mustGame(t, n, phy.Basic).FindPaperNE()
		if err != nil {
			t.Fatal(err)
		}
		neR, err := mustGame(t, n, phy.RTSCTS).FindPaperNE()
		if err != nil {
			t.Fatal(err)
		}
		if neR.WStar*4 > neB.WStar {
			t.Errorf("n=%d: RTS/CTS Wc*=%d not far below basic Wc*=%d", n, neR.WStar, neB.WStar)
		}
	}
}

func TestFindPaperNEBasicMatchesTable2(t *testing.T) {
	cases := []struct {
		n     int
		paper int
	}{
		{5, 76}, {20, 336}, {50, 879},
	}
	for _, tc := range cases {
		g := mustGame(t, tc.n, phy.Basic)
		ne, err := g.FindPaperNE()
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		rel := math.Abs(float64(ne.WStar-tc.paper)) / float64(tc.paper)
		if rel > 0.05 {
			t.Errorf("n=%d: paper-NE Wc* = %d, paper %d (rel err %.3f)", tc.n, ne.WStar, tc.paper, rel)
		}
	}
}

// The exact-utility argmax and the paper's theoretical NE must sit on the
// same payoff plateau: the exact optimum's utility advantage over the
// paper point is under 1%, even where the CW values differ noticeably
// (RTS/CTS, where the plateau is extremely flat).
func TestExactAndPaperNEOnSamePlateau(t *testing.T) {
	for _, mode := range []phy.AccessMode{phy.Basic, phy.RTSCTS} {
		for _, n := range []int{5, 20, 50} {
			g := mustGame(t, n, mode)
			exact, err := g.FindEfficientNE()
			if err != nil {
				t.Fatal(err)
			}
			paper, err := g.FindPaperNE()
			if err != nil {
				t.Fatal(err)
			}
			if exact.UStar < paper.UStar-1e-18 {
				t.Errorf("mode=%v n=%d: exact argmax utility %g below paper point %g", mode, n, exact.UStar, paper.UStar)
			}
			if drop := 1 - paper.UStar/exact.UStar; drop > 0.01 {
				t.Errorf("mode=%v n=%d: paper NE utility %.4f below exact optimum (want < 1%%)", mode, n, drop)
			}
		}
	}
}

// The paper-NE transmission probability must match the Appendix-B
// Q-condition root (Lemma 3) tightly by construction; the exact-utility NE
// must be within the cost-term-induced drift (~20%).
func TestEfficientNEMatchesOptimalTau(t *testing.T) {
	for _, mode := range []phy.AccessMode{phy.Basic, phy.RTSCTS} {
		for _, n := range []int{5, 20, 50} {
			g := mustGame(t, n, mode)
			opt, err := g.Model().OptimalTau(n)
			if err != nil {
				t.Fatal(err)
			}
			paper, err := g.FindPaperNE()
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(paper.TauStar-opt) / opt; rel > 0.02 {
				t.Errorf("mode=%v n=%d: paper-NE tau = %g vs Q-root %g (rel %.3f)", mode, n, paper.TauStar, opt, rel)
			}
			exact, err := g.FindEfficientNE()
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(exact.TauStar-opt) / opt; rel > 0.20 {
				t.Errorf("mode=%v n=%d: exact-NE tau = %g vs Q-root %g (rel %.3f)", mode, n, exact.TauStar, opt, rel)
			}
		}
	}
}

func TestNEGrowsWithN(t *testing.T) {
	prev := 0
	for _, n := range []int{3, 5, 10, 20, 40} {
		g := mustGame(t, n, phy.Basic)
		ne, err := g.FindEfficientNE()
		if err != nil {
			t.Fatal(err)
		}
		if ne.WStar <= prev {
			t.Fatalf("Wc* not increasing in n: n=%d gives %d, previous %d", n, ne.WStar, prev)
		}
		prev = ne.WStar
	}
}

func TestIsUniformNE(t *testing.T) {
	ne := NE{W0: 10, WStar: 100}
	for _, tc := range []struct {
		w    int
		want bool
	}{{9, false}, {10, true}, {50, true}, {100, true}, {101, false}} {
		if got := ne.IsUniformNE(tc.w); got != tc.want {
			t.Errorf("IsUniformNE(%d) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestRefinement(t *testing.T) {
	g := mustGame(t, 5, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := g.Refine(ne)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Fair {
		t.Error("uniform NE must be fair")
	}
	if ref.SocialWelfareMaximizer != ne.WStar || ref.Efficient != ne.WStar {
		t.Errorf("refinement selected %d/%d, want Wc*=%d", ref.SocialWelfareMaximizer, ref.Efficient, ne.WStar)
	}
	// Only Wc* is Pareto optimal among the uniform NE.
	if len(ref.ParetoOptimal) != 1 || ref.ParetoOptimal[0] != ne.WStar {
		t.Errorf("Pareto-optimal set = %v, want [%d]", ref.ParetoOptimal, ne.WStar)
	}
}

func TestNormalizedGlobalPayoff(t *testing.T) {
	g := mustGame(t, 5, phy.Basic)
	u, err := g.UniformUtilityRate(76)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := g.NormalizedGlobalPayoff(76)
	if err != nil {
		t.Fatal(err)
	}
	want := 5 * u * 50 / 1 // n·u·σ/g
	if math.Abs(norm-want) > 1e-15 {
		t.Errorf("normalized payoff = %g, want %g", norm, want)
	}
	// U/C must be independent of T and δ by construction: recompute with
	// different T, δ and compare.
	cfg := DefaultConfig(5, phy.Basic)
	cfg.StageDuration = 123456
	cfg.Discount = 0.5
	g2, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	norm2, err := g2.NormalizedGlobalPayoff(76)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm-norm2) > 1e-15 {
		t.Errorf("U/C depends on T, δ: %g vs %g", norm, norm2)
	}
}

// Figures 2-3 robustness claim: CW values near Wc* yield almost the same
// payoff, especially under RTS/CTS.
func TestNEPlateauRobustness(t *testing.T) {
	for _, tc := range []struct {
		mode    phy.AccessMode
		n       int
		spread  float64 // relative CW deviation tested
		maxDrop float64 // tolerated relative payoff drop
	}{
		{phy.Basic, 20, 0.2, 0.05},
		{phy.RTSCTS, 20, 0.5, 0.02}, // RTS/CTS plateau is much flatter
	} {
		g := mustGame(t, tc.n, tc.mode)
		ne, err := g.FindEfficientNE()
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []float64{1 - tc.spread, 1 + tc.spread} {
			w := int(float64(ne.WStar) * f)
			u, err := g.UniformUtilityRate(w)
			if err != nil {
				t.Fatal(err)
			}
			if drop := 1 - u/ne.UStar; drop > tc.maxDrop {
				t.Errorf("mode=%v: payoff at W=%d drops %.3f from peak, want <= %.3f", tc.mode, w, drop, tc.maxDrop)
			}
		}
	}
}

// Lemma 2: the deviator's utility is concave in its own tau when g >> e.
func TestLemma2ConcavityProperty(t *testing.T) {
	g := mustGame(t, 10, phy.Basic)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		tauOther := r.UniformRange(0.001, 0.2)
		u := func(tau float64) float64 { return g.DeviatorUtilityOfTau(tau, tauOther) }
		for i := 0; i < 20; i++ {
			tau := r.UniformRange(0.01, 0.9)
			if num.SecondDerivative(u, tau) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviatorUtilityMatchesSolver(t *testing.T) {
	// DeviatorUtilityOfTau at the *solved* taus must reproduce the
	// solver's utility for the deviator.
	g := mustGame(t, 10, phy.Basic)
	sol, err := g.Model().SolveDeviation(50, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	direct := g.DeviatorUtilityOfTau(sol.Tau[0], sol.Tau[1])
	fromSolver := g.UtilityRate(sol, 0)
	if math.Abs(direct-fromSolver) > 1e-12 {
		t.Errorf("direct utility %g != solver utility %g", direct, fromSolver)
	}
}

func TestProfileUtilities(t *testing.T) {
	g := mustGame(t, 3, phy.Basic)
	us, err := g.ProfileUtilities([]int{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 3 || us[0] != us[1] || us[1] != us[2] {
		t.Fatalf("uniform profile utilities not equal: %v", us)
	}
	if _, err := g.ProfileUtilities([]int{1, 2}); err == nil {
		t.Fatal("wrong-length profile accepted")
	}
}

func TestDiscountedConstant(t *testing.T) {
	g := mustGame(t, 2, phy.Basic)
	// δ = 0.9999 → 1/(1-δ) = 10000.
	if got := g.DiscountedConstant(1); math.Abs(got-10000) > 1e-6 {
		t.Errorf("DiscountedConstant(1) = %g, want 10000", got)
	}
}

func TestStageUtility(t *testing.T) {
	g := mustGame(t, 5, phy.Basic)
	sol, err := g.Model().SolveUniform(76, 5)
	if err != nil {
		t.Fatal(err)
	}
	rate := g.UtilityRate(sol, 0)
	if want := rate * 10e6; math.Abs(g.StageUtility(sol, 0)-want) > 1e-12 {
		t.Errorf("StageUtility = %g, want %g", g.StageUtility(sol, 0), want)
	}
}

func TestFindEfficientNERejectsSinglePlayer(t *testing.T) {
	g := mustGame(t, 1, phy.Basic)
	if _, err := g.FindEfficientNE(); err == nil {
		t.Fatal("single-player NE computation accepted")
	}
}

func TestFindEfficientNEWMaxBound(t *testing.T) {
	cfg := DefaultConfig(50, phy.Basic)
	cfg.WMax = 100 // far below the n=50 optimum (~850)
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.FindEfficientNE(); err == nil {
		t.Fatal("NE at the WMax bound must be reported as an error")
	}
}

func BenchmarkFindEfficientNE20(b *testing.B) {
	g := mustGame(b, 20, phy.Basic)
	for i := 0; i < b.N; i++ {
		if _, err := g.FindEfficientNE(); err != nil {
			b.Fatal(err)
		}
	}
}

package core

// theorems_test.go numerically verifies the paper's central claims:
//
// Theorem 1 — the game admits at least one NE (existence, across
// populations and modes).
//
// Theorem 2 — every uniform profile in [Wc0, Wc*] is a NE of the repeated
// game under TFT: deviating up is immediately worse (Lemma 4(1)), and
// deviating down gains one stage but loses forever after TFT pulls the
// whole network to the deviation, which a long-sighted player never
// accepts.
//
// Theorem 3's multi-hop counterpart lives in internal/multihop.

import (
	"testing"
	"testing/quick"

	"selfishmac/internal/phy"
	"selfishmac/internal/rng"
)

// deviateOnceTotal computes a player's total discounted payoff from
// undercutting a uniform profile at wBase to wDev for one stage (TFT lag
// 1), after which everyone plays wDev forever:
//
//	U = U^dev(wDev; wBase) · T + δ/(1−δ) · u(wDev,…,wDev) · T
func deviateOnceTotal(t *testing.T, g *Game, wDev, wBase int) float64 {
	t.Helper()
	dev, err := g.Deviation(wDev, wBase)
	if err != nil {
		t.Fatal(err)
	}
	post, err := g.UniformUtilityRate(wDev)
	if err != nil {
		t.Fatal(err)
	}
	cfg := g.Config()
	return dev.UDev*cfg.StageDuration + cfg.Discount/(1-cfg.Discount)*post*cfg.StageDuration
}

// stayTotal is the payoff from conforming forever at wBase.
func stayTotal(t *testing.T, g *Game, wBase int) float64 {
	t.Helper()
	u, err := g.UniformUtilityRate(wBase)
	if err != nil {
		t.Fatal(err)
	}
	cfg := g.Config()
	return u * cfg.StageDuration / (1 - cfg.Discount)
}

func TestTheorem1ExistenceAcrossPopulations(t *testing.T) {
	for _, mode := range []phy.AccessMode{phy.Basic, phy.RTSCTS} {
		for _, n := range []int{2, 3, 5, 10, 20, 50, 75} {
			g := mustGame(t, n, mode)
			ne, err := g.FindEfficientNE()
			if err != nil {
				t.Fatalf("mode=%v n=%d: %v", mode, n, err)
			}
			if ne.WStar < 1 || ne.UStar <= 0 {
				t.Errorf("mode=%v n=%d: degenerate NE %+v", mode, n, ne)
			}
		}
	}
}

// Theorem 2, downward deviations: at every NE in [Wc0, Wc*], a
// long-sighted player loses by undercutting (one good stage never pays
// for the permanently degraded equilibrium).
func TestTheorem2NoProfitableUndercut(t *testing.T) {
	g := mustGame(t, 10, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	// Sample NE points across [W0, WStar] and deviations below each.
	// Deviations of exactly one CW step off the *peak* are knife-edge:
	// the payoff plateau makes the punishment loss vanish to first order
	// while the one-stage gain stays positive, so the continuous-theory
	// claim holds for deviations beyond the +/-1 discretization (here:
	// at least 5% below the base).
	for _, frac := range []float64{0, 0.25, 0.5, 1} {
		wBase := ne.W0 + int(frac*float64(ne.WStar-ne.W0))
		if wBase < 2 {
			wBase = 2
		}
		stay := stayTotal(t, g, wBase)
		for _, wDev := range []int{1, wBase / 4, wBase / 2, wBase * 9 / 10} {
			if wDev < 1 || wDev > wBase-max(2, wBase/20) {
				continue
			}
			dev := deviateOnceTotal(t, g, wDev, wBase)
			if dev >= stay {
				t.Errorf("profitable undercut at NE W=%d: deviate to %d gives %g >= stay %g",
					wBase, wDev, dev, stay)
			}
		}
	}
}

// Theorem 2, upward deviations: raising the CW is disfavored in the very
// stage it happens (Lemma 4(1)), so no patience argument is even needed.
func TestTheorem2NoProfitableRaise(t *testing.T) {
	g := mustGame(t, 10, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	for _, wBase := range []int{ne.W0, (ne.W0 + ne.WStar) / 2, ne.WStar} {
		uStay, err := g.UniformUtilityRate(wBase)
		if err != nil {
			t.Fatal(err)
		}
		for _, factor := range []int{2, 4} {
			dev, err := g.Deviation(wBase*factor, wBase)
			if err != nil {
				t.Fatal(err)
			}
			if dev.UDev >= uStay {
				t.Errorf("raising from %d to %d pays within the stage: %g >= %g",
					wBase, wBase*factor, dev.UDev, uStay)
			}
		}
	}
}

// Property over random NE points and deviations, both modes.
func TestTheorem2Property(t *testing.T) {
	games := map[bool]*Game{
		false: mustGame(t, 8, phy.Basic),
		true:  mustGame(t, 8, phy.RTSCTS),
	}
	nes := map[bool]NE{}
	for k, g := range games {
		ne, err := g.FindEfficientNE()
		if err != nil {
			t.Fatal(err)
		}
		nes[k] = ne
	}
	f := func(seed uint64, rts bool) bool {
		g, ne := games[rts], nes[rts]
		r := rng.New(seed)
		span := ne.WStar - ne.W0
		wBase := ne.W0
		if span > 0 {
			wBase += r.Intn(span + 1)
		}
		if wBase < 3 {
			wBase = 3
		}
		// Stay clear of the discrete knife-edge (see above): deviate at
		// least 5% (and at least 2 steps) below the base.
		hi := wBase - max(2, wBase/20)
		if hi < 1 {
			return true
		}
		wDev := 1 + r.Intn(hi)
		return deviateOnceTotal(t, g, wDev, wBase) < stayTotal(t, g, wBase)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Short-sighted players break Theorem 2's premise: with δ_s = 0 the same
// undercut that a patient player rejects becomes strictly profitable —
// the boundary between this paper and its ref [2].
func TestTheorem2PremiseMatters(t *testing.T) {
	g := mustGame(t, 10, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	wDev := ne.WStar / 4
	dev, err := g.Deviation(wDev, ne.WStar)
	if err != nil {
		t.Fatal(err)
	}
	uStay := ne.UStar
	// One-stage (myopic) comparison only: the deviation stage pays.
	if dev.UDev <= uStay {
		t.Fatalf("myopic undercut does not pay within the stage: %g <= %g", dev.UDev, uStay)
	}
	// Patient comparison: it does not.
	if deviateOnceTotal(t, g, wDev, ne.WStar) >= stayTotal(t, g, ne.WStar) {
		t.Fatal("patient undercut pays; Theorem 2 violated")
	}
}

// The engine must agree with the analytic Theorem 2 accounting: realize
// the one-stage undercut against TFT players and compare discounted
// payoffs computed from the trace.
func TestTheorem2EngineConsistency(t *testing.T) {
	g := mustGame(t, 5, phy.Basic)
	ne, err := g.FindEfficientNE()
	if err != nil {
		t.Fatal(err)
	}
	wDev := ne.WStar / 3
	strats := []Strategy{
		Deviant{Deviation: wDev, Base: wDev, Stages: 1 << 30}, // deviate forever
		TFT{Initial: ne.WStar}, TFT{Initial: ne.WStar}, TFT{Initial: ne.WStar}, TFT{Initial: ne.WStar},
	}
	e, err := NewEngine(g, strats)
	if err != nil {
		t.Fatal(err)
	}
	const stages = 200
	tr, err := e.Run(stages)
	if err != nil {
		t.Fatal(err)
	}
	const delta = 0.97 // fast-converging discount for the finite trace
	T := g.Config().StageDuration
	devTotal := tr.DiscountedUtility(0, delta, T)

	// Conforming run for comparison.
	conform := []Strategy{
		TFT{Initial: ne.WStar}, TFT{Initial: ne.WStar}, TFT{Initial: ne.WStar},
		TFT{Initial: ne.WStar}, TFT{Initial: ne.WStar},
	}
	e2, err := NewEngine(g, conform)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := e2.Run(stages)
	if err != nil {
		t.Fatal(err)
	}
	stayTotalTrace := tr2.DiscountedUtility(0, delta, T)
	if devTotal >= stayTotalTrace {
		t.Fatalf("engine-realized undercut pays: %g >= %g", devTotal, stayTotalTrace)
	}
}

package core

import (
	"fmt"
	"math"

	"selfishmac/internal/num"
)

// Strategy decides a player's CW for each stage of the repeated game from
// the observed history. Observations of other players' CW values are
// assumed available per the paper (promiscuous-mode measurement, ref [3]);
// the engine may perturb them to model measurement error.
type Strategy interface {
	// Name identifies the strategy in traces and reports.
	Name() string
	// ChooseCW returns the CW to play at stage len(observed). observed
	// holds the per-stage CW profiles of all *previous* stages as seen by
	// this player (own entries are always exact; others may be noisy).
	// utilities holds this player's realized utility rate per stage.
	ChooseCW(self int, observed [][]int, utilities []float64) int
}

// BoundedHistory is an optional Strategy refinement: a strategy that
// implements it promises its ChooseCW inspects at most the trailing
// HistoryDepth() stages of observed/utilities (and is insensitive to the
// absolute stage index beyond "stage 0 vs later"). Engines may then
// retain only that window instead of the full O(stages·n) history —
// multihop.Engine.Run does, which is what keeps long runs at a constant
// memory footprint. Strategies that scan the whole history (GrimTrigger)
// or key off the absolute stage count (Deviant) must NOT implement it.
type BoundedHistory interface {
	// HistoryDepth returns the number of trailing stages the strategy
	// reads. Zero means it reads none (a constant strategy).
	HistoryDepth() int
}

// TFT is the paper's TIT-FOR-TAT strategy: start cooperatively at Initial
// and thereafter play the minimum CW observed across all players in the
// previous stage.
type TFT struct {
	// Initial is the cooperative first-stage CW.
	Initial int
}

var _ Strategy = TFT{}
var _ BoundedHistory = TFT{}

// Name implements Strategy.
func (t TFT) Name() string { return fmt.Sprintf("tft(W0=%d)", t.Initial) }

// HistoryDepth implements BoundedHistory: TFT reads the last stage only.
func (TFT) HistoryDepth() int { return 1 }

// ChooseCW implements Strategy.
func (t TFT) ChooseCW(_ int, observed [][]int, _ []float64) int {
	if len(observed) == 0 {
		return t.Initial
	}
	last := observed[len(observed)-1]
	minCW := last[0]
	for _, w := range last[1:] {
		if w < minCW {
			minCW = w
		}
	}
	return minCW
}

// GTFT is Generous TIT-FOR-TAT: each player averages every player's CW
// over the last R0 stages and only matches the minimum average when some
// player's average undercuts Beta times its own; otherwise it keeps its
// previous CW. Beta < 1 close to 1; larger R0 or smaller Beta is more
// tolerant (paper Section IV).
type GTFT struct {
	// Initial is the cooperative first-stage CW.
	Initial int
	// R0 is the averaging window in stages (>= 1).
	R0 int
	// Beta is the tolerance parameter in (0, 1].
	Beta float64
}

var _ Strategy = GTFT{}
var _ BoundedHistory = GTFT{}

// Name implements Strategy.
func (s GTFT) Name() string { return fmt.Sprintf("gtft(W0=%d,r0=%d,β=%g)", s.Initial, s.R0, s.Beta) }

// HistoryDepth implements BoundedHistory: GTFT averages the last R0
// stages (at least one).
func (s GTFT) HistoryDepth() int {
	if s.R0 < 1 {
		return 1
	}
	return s.R0
}

// ChooseCW implements Strategy.
func (s GTFT) ChooseCW(self int, observed [][]int, _ []float64) int {
	k := len(observed)
	if k == 0 {
		return s.Initial
	}
	r0 := s.R0
	if r0 < 1 {
		r0 = 1
	}
	if r0 > k {
		r0 = k
	}
	// Size the averages to the widest view inside the averaging window
	// (views vary under churn/mobility as the neighborhood changes): the
	// decision then depends only on the last r0 stages, which is what
	// HistoryDepth promises, and a neighbor that appeared mid-window
	// cannot index out of range.
	n := 0
	for stage := k - r0; stage < k; stage++ {
		if len(observed[stage]) > n {
			n = len(observed[stage])
		}
	}
	means := make([]float64, n)
	for stage := k - r0; stage < k; stage++ {
		for j, w := range observed[stage] {
			means[j] += float64(w)
		}
	}
	minMean := math.Inf(1)
	for j := range means {
		means[j] /= float64(r0)
		if means[j] < minMean {
			minMean = means[j]
		}
	}
	own := observed[k-1][self]
	if minMean < s.Beta*means[self] {
		// Someone is undercutting beyond tolerance: match the minimum
		// average (rounded to a valid CW).
		w := int(math.Round(minMean))
		if w < 1 {
			w = 1
		}
		return w
	}
	return own
}

// Constant always plays W: the paper's malicious player (W below Wc0) and
// the never-reacting deviant are both Constant strategies.
type Constant struct {
	// W is the fixed CW.
	W int
	// Label optionally overrides the name (e.g. "malicious").
	Label string
}

var _ Strategy = Constant{}
var _ BoundedHistory = Constant{}

// HistoryDepth implements BoundedHistory: Constant reads nothing.
func (Constant) HistoryDepth() int { return 0 }

// Name implements Strategy.
func (c Constant) Name() string {
	if c.Label != "" {
		return fmt.Sprintf("%s(W=%d)", c.Label, c.W)
	}
	return fmt.Sprintf("constant(W=%d)", c.W)
}

// ChooseCW implements Strategy.
func (c Constant) ChooseCW(int, [][]int, []float64) int { return c.W }

// BestResponse plays, each stage, the myopic best response to the other
// players' previous-stage CW profile (stage 0: Initial). It models a
// short-sighted optimizer that re-solves every stage; against TFT peers it
// demonstrates why undercutting triggers the punishment spiral of
// Section V.D.
type BestResponse struct {
	// Game supplies the channel model and utility function.
	Game *Game
	// Initial is the first-stage CW.
	Initial int
}

var _ Strategy = (*BestResponse)(nil)
var _ BoundedHistory = (*BestResponse)(nil)

// Name implements Strategy.
func (b *BestResponse) Name() string { return fmt.Sprintf("best-response(W0=%d)", b.Initial) }

// HistoryDepth implements BoundedHistory: the myopic optimizer re-solves
// against the last stage only.
func (*BestResponse) HistoryDepth() int { return 1 }

// ChooseCW implements Strategy.
func (b *BestResponse) ChooseCW(self int, observed [][]int, _ []float64) int {
	if len(observed) == 0 {
		return b.Initial
	}
	last := observed[len(observed)-1]
	profile := append([]int(nil), last...)
	utilOf := func(w int) float64 {
		profile[self] = w
		sol, err := b.Game.Model().Solve(profile)
		if err != nil {
			return math.Inf(-1)
		}
		return b.Game.UtilityRate(sol, self)
	}
	stride := b.Game.Config().WMax / 64
	best, _, err := num.ArgmaxIntCoarse(utilOf, 1, b.Game.Config().WMax, stride)
	if err != nil {
		return last[self]
	}
	return best
}

package backoff

import (
	"testing"

	"selfishmac/internal/rng"
)

func TestWindowSchedule(t *testing.T) {
	cases := []struct {
		cw, stage, maxStage, want int
	}{
		{16, 0, 6, 16},
		{16, 3, 6, 128},
		{16, 6, 6, 1024},
		{16, 7, 6, 1024},  // beyond the cap: clamped to cw << maxStage
		{16, 50, 6, 1024}, // far beyond: still clamped
		{1, 0, 0, 1},
		{1, 5, 0, 1}, // maxStage 0 pins the window at cw
		{879, 2, 6, 3516},
	}
	for _, c := range cases {
		if got := Window(c.cw, c.stage, c.maxStage); got != c.want {
			t.Errorf("Window(%d, %d, %d) = %d, want %d", c.cw, c.stage, c.maxStage, got, c.want)
		}
	}
}

func TestDrawRangeAndDeterminism(t *testing.T) {
	src := rng.New(7)
	for i := 0; i < 1000; i++ {
		c := Draw(src, 32, 2, 6)
		if c < 0 || c >= 128 {
			t.Fatalf("draw %d outside [0, 128)", c)
		}
	}
	// Draw consumes exactly one Intn from the stream: replaying the same
	// seed with raw Intn calls must reproduce the counters.
	a, b := rng.New(99), rng.New(99)
	for i := 0; i < 100; i++ {
		if got, want := Draw(a, 16, 1, 6), b.Intn(32); got != want {
			t.Fatalf("draw %d diverged from raw Intn: %d vs %d", i, got, want)
		}
	}
}

func TestDrawNeverExceedsCappedWindow(t *testing.T) {
	src := rng.New(3)
	for stage := 0; stage < 20; stage++ {
		for i := 0; i < 50; i++ {
			if c := Draw(src, 8, stage, 4); c >= 8<<4 {
				t.Fatalf("stage %d drew %d >= capped window %d", stage, c, 8<<4)
			}
		}
	}
}

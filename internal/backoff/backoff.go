// Package backoff holds the one piece of DCF mechanics both simulators
// must agree on exactly: the contention-window schedule. The window at
// backoff stage j is W·2^j, capped at W·2^m — a node's window can never
// exceed cw << maxStage no matter what stage value it carries.
//
// Both internal/macsim and internal/multihop draw their backoff counters
// through this package, so the defensive cap (previously present only in
// macsim) is applied uniformly and the two engines cannot drift apart.
package backoff

import "selfishmac/internal/rng"

// Window returns the contention window at the given stage: cw << stage,
// capped at cw << maxStage. Stages are normally capped when they advance,
// so the cap here is defensive, but it guarantees the invariant for any
// caller state.
func Window(cw, stage, maxStage int) int {
	if stage > maxStage {
		stage = maxStage
	}
	return cw << stage
}

// Draw returns a fresh uniform backoff counter in [0, Window) for the
// given stage. It consumes exactly one value from src, which is part of
// the simulators' determinism contract (PRNG draw order).
func Draw(src *rng.Source, cw, stage, maxStage int) int {
	return src.Intn(Window(cw, stage, maxStage))
}

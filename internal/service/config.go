// Package service is the fault-tolerant simulation job service behind
// cmd/selfishmacd: an HTTP/JSON API (submit / status / result / cancel /
// list, plus health and readiness probes) over a bounded priority job
// queue and a worker pool that drives the repository's simulation
// machinery (internal/replicate, internal/experiments).
//
// The robustness contract, piece by piece:
//
//   - Backpressure, not buffering: the queue is bounded; a submit
//     against a full queue fails fast with ErrQueueFull, which the HTTP
//     layer maps to 429 with a Retry-After hint. Nothing is dropped
//     silently and memory stays bounded under overload.
//
//   - Panic isolation: a panicking job is recovered per job, marked
//     Failed with the stack attached, and the worker keeps serving. A
//     bad experiment can never take the daemon down.
//
//   - Deadlines and cancellation: every job runs under a context with a
//     per-job deadline; DELETE cancels it. Cancellation reaches the
//     replication layer's round-synchronous loop, so a cancelled
//     simulation job still returns the bit-identical prefix of its
//     uncancelled result, flagged Cancelled (see internal/replicate).
//
//   - Graceful shutdown: intake stops (readiness goes 503), queued jobs
//     are cancelled, running jobs drain under a deadline, and only then
//     are survivors hard-cancelled.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"time"
)

// Sentinel errors. API layers match these with errors.Is; the HTTP
// handlers map them to status codes (ErrQueueFull → 429, ErrDraining →
// 503, ErrUnknownJob → 404, ErrUnknownKind / validation errors → 400).
var (
	// ErrQueueFull is returned by Submit when the bounded job queue is at
	// capacity. It is the service's backpressure signal: the caller
	// should retry later, not queue harder.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining is returned by Submit once shutdown has begun.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrUnknownJob is returned for job IDs the registry has never seen.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrUnknownKind is returned for submissions naming an unregistered
	// job kind.
	ErrUnknownKind = errors.New("service: unknown job kind")
	// ErrJobFinished is returned when cancelling a job that already
	// reached a terminal state.
	ErrJobFinished = errors.New("service: job already finished")
	// ErrJobPanicked wraps the recovered value of a job that panicked.
	ErrJobPanicked = errors.New("service: job panicked")

	// Config validation sentinels, in the Validate/ApplyDefaults idiom:
	// ApplyDefaults corrects zero and negative fields to usable values,
	// Validate rejects what defaults cannot fix.
	ErrEmptyAddr       = errors.New("service: empty listen address")
	ErrBadQueueCap     = errors.New("service: queue capacity must be >= 1")
	ErrBadWorkers      = errors.New("service: worker count must be >= 1")
	ErrBadTimeout      = errors.New("service: timeouts must be positive")
	ErrTimeoutInverted = errors.New("service: default job timeout exceeds the maximum")
)

// Config tunes the daemon. The zero value is not runnable as-is; call
// ApplyDefaults first (New does both).
type Config struct {
	// Addr is the HTTP listen address (host:port). cmd/selfishmacd
	// defaults it; the embedded server itself never listens, so tests can
	// drive Handler() directly.
	Addr string
	// QueueCap bounds how many jobs may wait in the queue (running jobs
	// excluded). A full queue rejects submissions with ErrQueueFull.
	QueueCap int
	// Workers is the number of jobs run concurrently.
	Workers int
	// DefaultJobTimeout is applied to jobs that do not request their own
	// deadline; MaxJobTimeout caps what a job may request.
	DefaultJobTimeout time.Duration
	MaxJobTimeout     time.Duration
	// DrainTimeout bounds how long Shutdown waits for running jobs to
	// finish before hard-cancelling them.
	DrainTimeout time.Duration
	// MaxBodyBytes bounds the accepted request body size.
	MaxBodyBytes int64
	// ProgressKeep bounds the per-job progress lines retained (older
	// lines are dropped, the total count is kept).
	ProgressKeep int
}

// ApplyDefaults fills zero or negative fields with production defaults,
// leaving valid user-set values untouched.
func (c *Config) ApplyDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8377"
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DefaultJobTimeout <= 0 {
		c.DefaultJobTimeout = 15 * time.Minute
	}
	if c.MaxJobTimeout <= 0 {
		c.MaxJobTimeout = 2 * time.Hour
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ProgressKeep <= 0 {
		c.ProgressKeep = 512
	}
}

// Validate rejects configurations ApplyDefaults cannot repair. It
// reports every violation (errors.Join), each matchable with errors.Is.
func (c Config) Validate() error {
	var errs []error
	if c.Addr == "" {
		errs = append(errs, ErrEmptyAddr)
	}
	if c.QueueCap < 1 {
		errs = append(errs, fmt.Errorf("%w (got %d)", ErrBadQueueCap, c.QueueCap))
	}
	if c.Workers < 1 {
		errs = append(errs, fmt.Errorf("%w (got %d)", ErrBadWorkers, c.Workers))
	}
	if c.DefaultJobTimeout <= 0 || c.MaxJobTimeout <= 0 || c.DrainTimeout <= 0 {
		errs = append(errs, ErrBadTimeout)
	}
	if c.DefaultJobTimeout > 0 && c.MaxJobTimeout > 0 && c.DefaultJobTimeout > c.MaxJobTimeout {
		errs = append(errs, fmt.Errorf("%w (%v > %v)", ErrTimeoutInverted, c.DefaultJobTimeout, c.MaxJobTimeout))
	}
	return errors.Join(errs...)
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// RunnerFunc executes one job kind. It must honor ctx (return promptly
// once cancelled), may call progress with small JSON-serializable values
// to stream job progress, and returns the job's result. On cancellation
// it may return a non-nil partial result alongside ctx's error — the
// service stores it so a cancelled simulation job still exposes its
// deterministic prefix.
type RunnerFunc func(ctx context.Context, params json.RawMessage, progress func(v any)) (any, error)

// Server owns the queue, the registry and the worker pool. Build with
// New, start the workers with Start, serve Handler() over any listener,
// and stop with Shutdown.
type Server struct {
	cfg     Config
	queue   *jobQueue
	runners map[string]RunnerFunc

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for stable listings

	seq      atomic.Uint64
	draining atomic.Bool

	baseCtx    context.Context
	hardCancel context.CancelFunc
	workersWG  sync.WaitGroup
	started    atomic.Bool
}

// New builds a server from cfg (defaults applied, then validated) with
// the built-in job kinds registered.
func New(cfg Config) (*Server, error) {
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		queue:      newJobQueue(cfg.QueueCap),
		runners:    make(map[string]RunnerFunc),
		jobs:       make(map[string]*Job),
		baseCtx:    ctx,
		hardCancel: cancel,
	}
	registerBuiltins(s)
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// RegisterRunner adds or replaces a job kind. Not safe to call after
// Start.
func (s *Server) RegisterRunner(kind string, fn RunnerFunc) {
	s.runners[kind] = fn
}

// Start launches the worker pool. It is idempotent.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	s.workersWG.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
}

// SubmitRequest is the submission payload.
type SubmitRequest struct {
	// Kind names a registered runner ("replicate", "experiment", ...).
	Kind string `json:"kind"`
	// Priority orders the queue: higher runs first, [0, 9], default 5.
	Priority *int `json:"priority,omitempty"`
	// TimeoutSec is the per-job deadline in seconds; 0 means the
	// configured default, and requests above the maximum are clamped.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// Params is forwarded verbatim to the runner.
	Params json.RawMessage `json:"params,omitempty"`
}

// Submit validates and enqueues a job. Sentinels: ErrUnknownKind,
// ErrDraining, ErrQueueFull (backpressure — retry later).
func (s *Server) Submit(req SubmitRequest) (*Job, error) {
	if _, ok := s.runners[req.Kind]; !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownKind, req.Kind)
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	prio := 5
	if req.Priority != nil {
		prio = *req.Priority
		if prio < 0 || prio > 9 {
			return nil, fmt.Errorf("service: priority %d outside [0, 9]", prio)
		}
	}
	timeout := s.cfg.DefaultJobTimeout
	if req.TimeoutSec > 0 {
		timeout = time.Duration(req.TimeoutSec * float64(time.Second))
	}
	if timeout > s.cfg.MaxJobTimeout {
		timeout = s.cfg.MaxJobTimeout
	}
	seq := s.seq.Add(1)
	j := &Job{
		ID:           fmt.Sprintf("j%06d", seq),
		Kind:         req.Kind,
		Priority:     prio,
		Params:       req.Params,
		Timeout:      timeout,
		seq:          seq,
		state:        StateQueued,
		created:      time.Now(),
		done:         make(chan struct{}),
		progressKeep: s.cfg.ProgressKeep,
	}
	// Register before push: a worker may pop it immediately.
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	if err := s.queue.push(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		return nil, err
	}
	return j, nil
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Jobs lists every known job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel requests cancellation of a job by ID.
func (s *Server) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	return j.requestCancel("cancelled by request")
}

// Shutdown stops intake, cancels queued jobs, and drains running jobs.
// Order matters: readiness flips first (load balancers stop routing),
// then the queue closes (workers exit once idle), then running jobs get
// DrainTimeout (bounded additionally by ctx) to finish on their own;
// stragglers are hard-cancelled and awaited. Always returns nil once
// every worker has exited; ctx expiring only shortens the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	for _, j := range s.queue.close() {
		j.requestCancel("cancelled: service shutting down")
	}
	idle := make(chan struct{})
	go func() {
		s.workersWG.Wait()
		close(idle)
	}()
	drain := time.NewTimer(s.cfg.DrainTimeout)
	defer drain.Stop()
	select {
	case <-idle:
	case <-drain.C:
		s.hardCancel()
		<-idle
	case <-ctx.Done():
		s.hardCancel()
		<-idle
	}
	return nil
}

// worker pops and runs jobs until the queue closes.
func (s *Server) worker() {
	defer s.workersWG.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job with panic recovery, a deadline, and terminal
// classification. A panic never propagates past this frame.
func (s *Server) runJob(j *Job) {
	jctx, cancel := context.WithTimeout(s.baseCtx, j.Timeout)
	defer cancel()
	if !j.markRunning(cancel) {
		return // cancelled while queued
	}
	runner := s.runners[j.Kind]
	progress := func(v any) {
		buf, err := json.Marshal(v)
		if err != nil {
			buf = []byte(fmt.Sprintf(`{"progress_marshal_error":%q}`, err.Error()))
		}
		j.addProgress(string(buf))
	}

	var (
		result any
		runErr error
		stack  string
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				runErr = fmt.Errorf("%w: %v", ErrJobPanicked, r)
				stack = string(debug.Stack())
			}
		}()
		result, runErr = runner(jctx, j.Params, progress)
	}()

	switch {
	case runErr == nil:
		j.finish(StateDone, result, "", "")
	case stack != "":
		j.finish(StateFailed, result, runErr.Error(), stack)
	case errors.Is(runErr, context.Canceled) && j.cancelRequested():
		// User- or shutdown-requested cancellation: keep the partial
		// result (the deterministic prefix, when the runner produced one).
		j.finish(StateCancelled, result, "cancelled", "")
	case errors.Is(runErr, context.DeadlineExceeded) || errors.Is(jctx.Err(), context.DeadlineExceeded):
		j.finish(StateFailed, result, fmt.Sprintf("deadline exceeded after %v", j.Timeout), "")
	case errors.Is(runErr, context.Canceled):
		// Hard-cancel during shutdown without an explicit user cancel.
		j.finish(StateCancelled, result, "cancelled: service shutting down", "")
	default:
		j.finish(StateFailed, nil, runErr.Error(), "")
	}
}

// ----------------------------------------------------------------------
// HTTP layer

// Handler returns the HTTP/JSON API:
//
//	POST   /api/v1/jobs               submit   → 202, 400, 429 (+Retry-After), 503
//	GET    /api/v1/jobs               list     → 200
//	GET    /api/v1/jobs/{id}          status   → 200, 404
//	GET    /api/v1/jobs/{id}/result   result   → 200, 404, 409 (not finished)
//	GET    /api/v1/jobs/{id}/progress ndjson   → 200, 404
//	DELETE /api/v1/jobs/{id}          cancel   → 202, 404, 409 (already terminal)
//	GET    /healthz                   liveness → 200
//	GET    /readyz                    readiness→ 200, 503 (draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "queue_depth": strconv.Itoa(s.queue.depth())})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad submit body: %w", err))
		return
	}
	j, err := s.Submit(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, j.view(true))
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	stateFilter := State(r.URL.Query().Get("state"))
	views := []JobView{}
	for _, j := range s.Jobs() {
		v := j.view(false)
		if stateFilter != "" && v.State != stateFilter {
			continue
		}
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views, "queue_depth": s.queue.depth()})
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, j.view(true))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	result, state, errMsg := j.resultNow()
	if !state.Terminal() {
		writeError(w, http.StatusConflict, fmt.Errorf("service: job %s still %s", j.ID, state))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": j.ID, "state": state, "error": errMsg, "result": result,
	})
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	since := 0
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad since %q", q))
			return
		}
		since = n
	}
	lines, first, total := j.progressTail(since)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Progress-First", strconv.Itoa(first))
	w.Header().Set("X-Progress-Total", strconv.Itoa(total))
	w.WriteHeader(http.StatusOK)
	for _, line := range lines {
		fmt.Fprintln(w, line)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	switch err := j.requestCancel("cancelled by request"); {
	case err == nil:
		writeJSON(w, http.StatusAccepted, j.view(false))
	case errors.Is(err, ErrJobFinished):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

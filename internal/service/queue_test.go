package service

import (
	"errors"
	"testing"
	"time"
)

func queuedJob(seq uint64, prio int) *Job {
	return &Job{
		ID:       "t" + string(rune('0'+seq)),
		Priority: prio,
		seq:      seq,
		state:    StateQueued,
		done:     make(chan struct{}),
	}
}

func TestQueuePopsByPriorityThenFIFO(t *testing.T) {
	q := newJobQueue(10)
	// Mixed priorities, submitted out of order; equal priorities must pop
	// in submission order.
	for _, spec := range []struct {
		seq  uint64
		prio int
	}{{1, 5}, {2, 9}, {3, 5}, {4, 9}, {5, 0}} {
		if err := q.push(queuedJob(spec.seq, spec.prio)); err != nil {
			t.Fatalf("push(seq=%d): %v", spec.seq, err)
		}
	}
	wantSeq := []uint64{2, 4, 1, 3, 5}
	for i, want := range wantSeq {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue reported closed", i)
		}
		if j.seq != want {
			t.Errorf("pop %d: seq = %d, want %d", i, j.seq, want)
		}
	}
	if d := q.depth(); d != 0 {
		t.Errorf("depth after draining = %d, want 0", d)
	}
}

func TestQueueFullIsSentinel(t *testing.T) {
	q := newJobQueue(2)
	if err := q.push(queuedJob(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(queuedJob(2, 5)); err != nil {
		t.Fatal(err)
	}
	err := q.push(queuedJob(3, 5))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push over capacity: err = %v, want errors.Is(err, ErrQueueFull)", err)
	}
	// Backpressure must clear once a slot frees up.
	if _, ok := q.pop(); !ok {
		t.Fatal("pop failed")
	}
	if err := q.push(queuedJob(3, 5)); err != nil {
		t.Fatalf("push after pop: %v", err)
	}
}

func TestQueueCloseWakesBlockedPop(t *testing.T) {
	q := newJobQueue(2)
	got := make(chan bool, 1)
	go func() {
		_, ok := q.pop()
		got <- ok
	}()
	// Give the goroutine a beat to block in pop.
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-got:
		if ok {
			t.Error("pop on closed empty queue returned ok = true")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop still blocked after close")
	}
}

func TestQueueCloseDrainsWaitingJobs(t *testing.T) {
	q := newJobQueue(4)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := q.push(queuedJob(seq, 5)); err != nil {
			t.Fatal(err)
		}
	}
	drained := q.close()
	if len(drained) != 3 {
		t.Fatalf("close drained %d jobs, want 3", len(drained))
	}
	if err := q.push(queuedJob(9, 5)); !errors.Is(err, ErrDraining) {
		t.Errorf("push after close: err = %v, want ErrDraining", err)
	}
	if _, ok := q.pop(); ok {
		t.Error("pop after close returned a job")
	}
	if q.close() != nil {
		t.Error("second close returned jobs")
	}
}

package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// State is a job lifecycle state. The machine is strictly forward:
//
//	Queued → Running → {Done, Failed, Cancelled}
//	Queued → Cancelled            (cancelled or drained before starting)
//
// Terminal states never change.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one unit of work owned by the service. All mutable fields are
// guarded by mu; readers go through view() / snapshot accessors.
type Job struct {
	// Immutable after submit.
	ID       string
	Kind     string
	Priority int
	Params   json.RawMessage
	Timeout  time.Duration
	seq      uint64

	mu        sync.Mutex
	state     State
	err       string // terminal error, if any
	stack     string // panic stack, if the job panicked
	result    any    // runner return value (Done, or partial on Cancelled)
	created   time.Time
	started   time.Time
	finished  time.Time
	cancelled bool               // cancel was requested
	cancel    context.CancelFunc // non-nil while Running
	done      chan struct{}      // closed on any terminal transition

	progressMu    sync.Mutex
	progress      []string // retained JSON lines (tail)
	progressTotal int      // lines ever emitted
	progressKeep  int
}

// JobView is the JSON shape of a job's status.
type JobView struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	Priority int             `json:"priority"`
	State    State           `json:"state"`
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
	Error    string          `json:"error,omitempty"`
	Stack    string          `json:"stack,omitempty"`
	Progress int             `json:"progress_lines"`
	Params   json.RawMessage `json:"params,omitempty"`
}

func (j *Job) view(withParams bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.ID,
		Kind:     j.Kind,
		Priority: j.Priority,
		State:    j.state,
		Created:  j.created,
		Error:    j.err,
		Stack:    j.stack,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if withParams {
		v.Params = j.Params
	}
	j.progressMu.Lock()
	v.Progress = j.progressTotal
	j.progressMu.Unlock()
	return v
}

// addProgress appends one JSON line to the job's bounded progress log.
func (j *Job) addProgress(line string) {
	j.progressMu.Lock()
	defer j.progressMu.Unlock()
	j.progressTotal++
	j.progress = append(j.progress, line)
	if keep := j.progressKeep; keep > 0 && len(j.progress) > keep {
		j.progress = j.progress[len(j.progress)-keep:]
	}
}

// progressTail returns the retained lines whose absolute index is >=
// since, plus the index of the first returned line and the total count.
func (j *Job) progressTail(since int) (lines []string, first, total int) {
	j.progressMu.Lock()
	defer j.progressMu.Unlock()
	total = j.progressTotal
	first = total - len(j.progress)
	if since > first {
		first = since
	}
	if first > total {
		first = total
	}
	off := first - (total - len(j.progress))
	lines = append([]string(nil), j.progress[off:]...)
	return lines, first, total
}

// stateNow returns the current state.
func (j *Job) stateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// resultNow returns the stored result and whether the job is terminal.
func (j *Job) resultNow() (any, State, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state, j.err
}

// markRunning transitions Queued → Running, recording the cancel hook.
// It fails (returns false) if the job was cancelled while queued.
func (j *Job) markRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, result any, errMsg, stack string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = result
	j.err = errMsg
	j.stack = stack
	j.finished = time.Now()
	j.cancel = nil
	close(j.done)
}

// requestCancel implements DELETE: a queued job goes terminal
// immediately; a running job gets its context cancelled and finishes
// through the worker's classification. Idempotent while non-terminal.
func (j *Job) requestCancel(reason string) error {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return ErrJobFinished
	}
	j.cancelled = true
	if j.state == StateQueued {
		j.state = StateCancelled
		j.err = reason
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		return nil
	}
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return nil
}

// cancelRequested reports whether DELETE (or drain) asked this job to
// stop — the signal the worker uses to classify a context error as
// Cancelled rather than Failed.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"selfishmac/internal/experiments"
	"selfishmac/internal/macsim"
	"selfishmac/internal/multihop"
	"selfishmac/internal/phy"
	"selfishmac/internal/replicate"
	"selfishmac/internal/rng"
	"selfishmac/internal/stream"
	"selfishmac/internal/topology"
)

// registerBuiltins wires the production job kinds.
func registerBuiltins(s *Server) {
	s.RegisterRunner("replicate", runReplicateJob)
	s.RegisterRunner("singlehop", runSinglehopJob)
	s.RegisterRunner("experiment", runExperimentJob)
	s.RegisterRunner("detect", runDetectJob)
}

// ReplicateParams parameterizes a "replicate" job: an adaptively
// replicated spatial simulation at one uniform-CW operating point,
// streaming per-round progress. Zero fields take the documented defaults.
type ReplicateParams struct {
	// Nodes, Width, Height, Range, TopoSeed describe the topology
	// (defaults: the sparse 50-node acceptance network).
	Nodes    int     `json:"nodes,omitempty"`
	Width    float64 `json:"width,omitempty"`
	Height   float64 `json:"height,omitempty"`
	Range    float64 `json:"range,omitempty"`
	TopoSeed uint64  `json:"topo_seed,omitempty"`
	// CW is the uniform contention window (default 116, the RTS/CTS NE
	// window of the default network).
	CW int `json:"cw,omitempty"`
	// DurationUs is the simulated time per replication in microseconds
	// (default 2e6).
	DurationUs float64 `json:"duration_us,omitempty"`
	// BaseSeed scopes the replication seed streams (default 1).
	BaseSeed uint64 `json:"base_seed,omitempty"`
	// MinReps/MaxReps/BatchSize/RelCI drive the adaptive schedule
	// (defaults 3/24/3/0.05). RelCI <= 0 disables adaptive stopping.
	MinReps   int     `json:"min_reps,omitempty"`
	MaxReps   int     `json:"max_reps,omitempty"`
	BatchSize int     `json:"batch_size,omitempty"`
	RelCI     float64 `json:"rel_ci,omitempty"`
	// MaxErrRetries is the per-replication deterministic retry budget.
	MaxErrRetries int `json:"max_err_retries,omitempty"`
	// Workers bounds the replication pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

func (p *ReplicateParams) applyDefaults() {
	if p.Nodes <= 0 {
		p.Nodes = 50
	}
	if p.Width <= 0 {
		p.Width = 1000
	}
	if p.Height <= 0 {
		p.Height = 1000
	}
	if p.Range <= 0 {
		p.Range = 180
	}
	if p.TopoSeed == 0 {
		p.TopoSeed = 11
	}
	if p.CW <= 0 {
		p.CW = 116
	}
	if p.DurationUs <= 0 {
		p.DurationUs = 2e6
	}
	if p.BaseSeed == 0 {
		p.BaseSeed = 1
	}
	if p.MinReps <= 0 {
		p.MinReps = 3
	}
	if p.MaxReps <= 0 {
		p.MaxReps = 24
	}
	if p.BatchSize <= 0 {
		p.BatchSize = 3
	}
	if p.RelCI == 0 {
		p.RelCI = 0.05
	}
}

// MetricView is one metric's mean ± CI95 snapshot.
type MetricView struct {
	Name string  `json:"name"`
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	N    int     `json:"n"`
}

// ReplicateProgress is one progress line of a "replicate" job.
type ReplicateProgress struct {
	Round   int          `json:"round"`
	Reps    int          `json:"reps"`
	Metrics []MetricView `json:"metrics"`
}

// ReplicateResult is the terminal payload of a "replicate" job. On a
// cancelled job it carries the deterministic prefix (Cancelled true).
type ReplicateResult struct {
	Reps      int          `json:"reps"`
	Rounds    int          `json:"rounds"`
	Converged bool         `json:"converged"`
	Cancelled bool         `json:"cancelled"`
	Retried   int          `json:"retried"`
	Metrics   []MetricView `json:"metrics"`
}

// replicateMetricNames matches svcReplicator's metric layout.
var replicateMetricNames = []string{"global_payoff_rate", "hidden_fraction"}

// svcReplicator adapts a reusable multihop Simulator to the replication
// layer: metric 0 is the network-wide payoff rate (the adaptive target),
// metric 1 the hidden-terminal loss fraction.
type svcReplicator struct{ sim *multihop.Simulator }

func (r svcReplicator) Replicate(seed uint64, out []float64) error {
	r.sim.Reset(seed)
	res, err := r.sim.Run()
	if err != nil {
		return err
	}
	out[0] = res.GlobalPayoffRate()
	out[1] = res.HiddenFraction
	return nil
}

func runReplicateJob(ctx context.Context, raw json.RawMessage, progress func(v any)) (any, error) {
	var p ReplicateParams
	if err := decodeParams(raw, &p); err != nil {
		return nil, fmt.Errorf("service: bad replicate params: %w", err)
	}
	p.applyDefaults()

	shape := multihopShape{
		topo: topology.Config{N: p.Nodes, Width: p.Width, Height: p.Height, Range: p.Range, Seed: p.TopoSeed},
	}
	cfg := multihop.DefaultSimConfig(p.DurationUs, rng.DeriveSeed(p.BaseSeed, "service.replicate.sim", 0))
	cw := make([]int, p.Nodes)
	for i := range cw {
		cw[i] = p.CW
	}
	cfg.CW = cw

	plan := replicate.Plan{
		BaseSeed:      p.BaseSeed,
		Stream:        "service.replicate",
		Metrics:       len(replicateMetricNames),
		Target:        0,
		RelTolerance:  max(p.RelCI, 0), // RelCI <= 0 disables adaptive stopping
		MinReps:       p.MinReps,
		MaxReps:       p.MaxReps,
		BatchSize:     p.BatchSize,
		Workers:       p.Workers,
		MaxErrRetries: p.MaxErrRetries,
		OnRound: func(st replicate.RoundStatus) {
			pr := ReplicateProgress{Round: st.Round, Reps: st.Reps}
			for m, sum := range st.Summaries {
				pr.Metrics = append(pr.Metrics, MetricView{
					Name: replicateMetricNames[m], Mean: sum.Mean, CI95: sum.CI95, N: sum.N,
				})
			}
			progress(pr)
		},
	}
	// Workers draw simulators from the shape pool — steady-state daemon
	// traffic at a repeated shape pays SetCW+Reset, not topology and
	// engine construction — and return them when the job finishes.
	// RunContext calls the factory serially, so plain append is safe.
	var acquired []*multihop.Simulator
	defer func() {
		for _, sim := range acquired {
			releaseMultihop(shape, sim)
		}
	}()
	res, err := replicate.RunContext(ctx, plan, func() (replicate.Replicator, error) {
		sim, err := acquireMultihop(shape, cfg)
		if err != nil {
			return nil, err
		}
		acquired = append(acquired, sim)
		return svcReplicator{sim}, nil
	})
	if res == nil {
		return nil, err
	}
	view := &ReplicateResult{
		Reps:      res.Reps,
		Rounds:    res.Rounds,
		Converged: res.Converged,
		Cancelled: res.Cancelled,
		Retried:   res.Retried,
	}
	for m, name := range replicateMetricNames {
		sum := res.Summary(m)
		view.Metrics = append(view.Metrics, MetricView{Name: name, Mean: sum.Mean, CI95: sum.CI95, N: sum.N})
	}
	// On cancellation both the prefix result and ctx's error propagate:
	// the worker stores the partial view and marks the job Cancelled.
	return view, err
}

// SinglehopParams parameterizes a "singlehop" job: an adaptively
// replicated single-collision-domain simulation (macsim) at one uniform
// CW. Zero fields take the documented defaults.
type SinglehopParams struct {
	// Nodes is the population (default 20).
	Nodes int `json:"nodes,omitempty"`
	// CW is the uniform contention window (default 336, the 20-node
	// efficient-NE window).
	CW int `json:"cw,omitempty"`
	// Mode is "basic" (default) or "rtscts".
	Mode string `json:"mode,omitempty"`
	// DurationUs is the simulated time per replication in microseconds
	// (default 1e6).
	DurationUs float64 `json:"duration_us,omitempty"`
	// BaseSeed scopes the replication seed streams (default 1).
	BaseSeed uint64 `json:"base_seed,omitempty"`
	// MinReps/MaxReps/BatchSize/RelCI drive the adaptive schedule
	// (defaults 3/24/3/0.05). RelCI <= 0 disables adaptive stopping.
	MinReps   int     `json:"min_reps,omitempty"`
	MaxReps   int     `json:"max_reps,omitempty"`
	BatchSize int     `json:"batch_size,omitempty"`
	RelCI     float64 `json:"rel_ci,omitempty"`
	// MaxErrRetries is the per-replication deterministic retry budget.
	MaxErrRetries int `json:"max_err_retries,omitempty"`
	// Workers bounds the replication pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

func (p *SinglehopParams) applyDefaults() {
	if p.Nodes <= 0 {
		p.Nodes = 20
	}
	if p.CW <= 0 {
		p.CW = 336
	}
	if p.Mode == "" {
		p.Mode = "basic"
	}
	if p.DurationUs <= 0 {
		p.DurationUs = 1e6
	}
	if p.BaseSeed == 0 {
		p.BaseSeed = 1
	}
	if p.MinReps <= 0 {
		p.MinReps = 3
	}
	if p.MaxReps <= 0 {
		p.MaxReps = 24
	}
	if p.BatchSize <= 0 {
		p.BatchSize = 3
	}
	if p.RelCI == 0 {
		p.RelCI = 0.05
	}
}

// singlehopMetricNames matches macsimReplicator's metric layout.
var singlehopMetricNames = []string{"global_payoff_rate", "throughput"}

// macsimReplicator adapts a pooled macsim Engine to the replication
// layer: metric 0 is the global payoff rate (the adaptive target),
// metric 1 the global payload-airtime throughput.
type macsimReplicator struct{ eng *macsim.Engine }

func (r macsimReplicator) Replicate(seed uint64, out []float64) error {
	r.eng.Reset(seed)
	res := r.eng.Run()
	out[0] = res.GlobalPayoffRate()
	out[1] = res.Throughput
	return nil
}

func runSinglehopJob(ctx context.Context, raw json.RawMessage, progress func(v any)) (any, error) {
	var p SinglehopParams
	if err := decodeParams(raw, &p); err != nil {
		return nil, fmt.Errorf("service: bad singlehop params: %w", err)
	}
	p.applyDefaults()
	var mode phy.AccessMode
	switch p.Mode {
	case "basic":
		mode = phy.Basic
	case "rtscts":
		mode = phy.RTSCTS
	default:
		return nil, fmt.Errorf("service: unknown mode %q (want basic or rtscts)", p.Mode)
	}
	timing, err := phy.Default().Timing(mode)
	if err != nil {
		return nil, fmt.Errorf("service: singlehop timing: %w", err)
	}
	cw := make([]int, p.Nodes)
	for i := range cw {
		cw[i] = p.CW
	}
	cfg := macsim.Config{
		Timing:   timing,
		MaxStage: phy.Default().MaxBackoffStage,
		CW:       cw,
		Duration: p.DurationUs,
		Seed:     rng.DeriveSeed(p.BaseSeed, "service.singlehop.sim", 0),
		Gain:     1,
		Cost:     0.01,
	}

	plan := replicate.Plan{
		BaseSeed:      p.BaseSeed,
		Stream:        "service.singlehop",
		Metrics:       len(singlehopMetricNames),
		Target:        0,
		RelTolerance:  max(p.RelCI, 0),
		MinReps:       p.MinReps,
		MaxReps:       p.MaxReps,
		BatchSize:     p.BatchSize,
		Workers:       p.Workers,
		MaxErrRetries: p.MaxErrRetries,
		OnRound: func(st replicate.RoundStatus) {
			pr := ReplicateProgress{Round: st.Round, Reps: st.Reps}
			for m, sum := range st.Summaries {
				pr.Metrics = append(pr.Metrics, MetricView{
					Name: singlehopMetricNames[m], Mean: sum.Mean, CI95: sum.CI95, N: sum.N,
				})
			}
			progress(pr)
		},
	}
	var acquired []*macsim.Engine
	defer func() {
		for _, eng := range acquired {
			releaseMacsim(eng, p.Nodes)
		}
	}()
	res, err := replicate.RunContext(ctx, plan, func() (replicate.Replicator, error) {
		eng, err := acquireMacsim(cfg)
		if err != nil {
			return nil, err
		}
		acquired = append(acquired, eng)
		return macsimReplicator{eng}, nil
	})
	if res == nil {
		return nil, err
	}
	view := &ReplicateResult{
		Reps:      res.Reps,
		Rounds:    res.Rounds,
		Converged: res.Converged,
		Cancelled: res.Cancelled,
		Retried:   res.Retried,
	}
	for m, name := range singlehopMetricNames {
		sum := res.Summary(m)
		view.Metrics = append(view.Metrics, MetricView{Name: name, Mean: sum.Mean, CI95: sum.CI95, N: sum.N})
	}
	return view, err
}

// ExperimentParams parameterizes an "experiment" job: one registered
// paper experiment (see internal/experiments.All) by ID.
type ExperimentParams struct {
	// ID names the experiment ("T2", "F3", "A9", ...).
	ID string `json:"id"`
	// Profile is "quick" (default) or "paper".
	Profile string `json:"profile,omitempty"`
	// Seed overrides the master seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the experiment's internal fan-out (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// ExperimentResult is the terminal payload of an "experiment" job.
type ExperimentResult struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Text    string             `json:"text"`
}

func runExperimentJob(ctx context.Context, raw json.RawMessage, progress func(v any)) (any, error) {
	var p ExperimentParams
	if err := decodeParams(raw, &p); err != nil {
		return nil, fmt.Errorf("service: bad experiment params: %w", err)
	}
	runner, ok := experiments.ByID(p.ID)
	if !ok {
		return nil, fmt.Errorf("service: unknown experiment %q", p.ID)
	}
	var settings experiments.Settings
	switch p.Profile {
	case "", "quick":
		settings = experiments.QuickSettings()
	case "paper":
		settings = experiments.DefaultSettings()
	default:
		return nil, fmt.Errorf("service: unknown profile %q (want quick or paper)", p.Profile)
	}
	if p.Seed != 0 {
		settings.Seed = p.Seed
	}
	settings.Workers = p.Workers

	progress(map[string]any{"event": "started", "experiment": runner.ID, "profile": settingsProfile(p.Profile)})
	rep, err := runner.Run(ctx, settings)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, fmt.Errorf("service: experiment %s: %w", runner.ID, err)
	}
	progress(map[string]any{"event": "finished", "experiment": runner.ID, "metrics": len(rep.Metrics)})
	return &ExperimentResult{ID: rep.ID, Title: rep.Title, Metrics: rep.Metrics, Text: rep.Text}, nil
}

func settingsProfile(p string) string {
	if p == "" {
		return "quick"
	}
	return p
}

// DetectParams parameterizes a "detect" job: one deterministic
// single-hop simulation with the internal/stream online detector on the
// engine's observer hook, streaming every flag event as a progress line.
// Zero fields take the documented defaults.
type DetectParams struct {
	// Nodes is the population (default 10, max 200).
	Nodes int `json:"nodes,omitempty"`
	// ExpectedCW is the conforming contention window the detector
	// assumes (default 166, the 10-node basic-access efficient-NE
	// window). Honest nodes run at this CW.
	ExpectedCW int `json:"expected_cw,omitempty"`
	// Cheaters pins the first Cheaters nodes to CheaterCW (default 1;
	// must leave at least one honest node).
	Cheaters int `json:"cheaters,omitempty"`
	// CheaterCW is the cheating window (default ExpectedCW/8, min 1).
	CheaterCW int `json:"cheater_cw,omitempty"`
	// Beta is the detection tolerance in (0, 1]: flag a node when its
	// windowed estimate falls below Beta*ExpectedCW (default 0.6).
	Beta float64 `json:"beta,omitempty"`
	// WindowSlots is the estimation window in virtual slots (default 1500).
	WindowSlots int64 `json:"window_slots,omitempty"`
	// Mode is "basic" (default) or "rtscts".
	Mode string `json:"mode,omitempty"`
	// DurationUs is the simulated time in microseconds (default 30e6,
	// clamped to 600e6 — a detect job is one uncancellable engine run,
	// so its work must be bounded at submit time).
	DurationUs float64 `json:"duration_us,omitempty"`
	// Seed drives the simulation (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// MaxFlagLines caps the streamed flag progress lines (default 50);
	// later flags are still counted in the result, and one
	// "flags_truncated" line marks the cut.
	MaxFlagLines int `json:"max_flag_lines,omitempty"`
}

func (p *DetectParams) applyDefaults() {
	if p.Nodes <= 0 {
		p.Nodes = 10
	}
	if p.ExpectedCW <= 0 {
		p.ExpectedCW = 166
	}
	if p.Cheaters == 0 {
		p.Cheaters = 1
	}
	if p.CheaterCW <= 0 {
		p.CheaterCW = p.ExpectedCW / 8
		if p.CheaterCW < 1 {
			p.CheaterCW = 1
		}
	}
	if p.Beta == 0 {
		p.Beta = 0.6
	}
	if p.WindowSlots <= 0 {
		p.WindowSlots = 1500
	}
	if p.Mode == "" {
		p.Mode = "basic"
	}
	if p.DurationUs <= 0 {
		p.DurationUs = 30e6
	}
	if p.DurationUs > 600e6 {
		p.DurationUs = 600e6
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.MaxFlagLines <= 0 {
		p.MaxFlagLines = 50
	}
}

// DetectFlagLine is one streamed flag event (progress, event "flag").
type DetectFlagLine struct {
	Event      string  `json:"event"`
	Node       int     `json:"node"`
	Window     int64   `json:"window"`
	EndSlot    int64   `json:"end_slot"`
	EstCW      float64 `json:"est_cw"`
	ExpectedCW float64 `json:"expected_cw"`
	Margin     float64 `json:"margin"`
	Cheater    bool    `json:"cheater"`
}

// DetectNodeView is one node's detection summary in a DetectResult.
type DetectNodeView struct {
	Node          int     `json:"node"`
	CW            int     `json:"cw"`
	Cheater       bool    `json:"cheater"`
	Flags         int64   `json:"flags"`
	FirstFlagSlot int64   `json:"first_flag_slot"` // -1: never flagged
	MeanEstCW     float64 `json:"mean_est_cw"`
	EstWindows    int     `json:"est_windows"`
}

// DetectResult is the terminal payload of a "detect" job.
type DetectResult struct {
	Slots          int64            `json:"slots"`
	Windows        int64            `json:"windows"`
	Flags          int64            `json:"flags"`
	TruePositives  int              `json:"true_positives"`  // cheater nodes flagged at least once
	FalsePositives int64            `json:"false_positives"` // flag events on honest nodes
	LatencySlots   int64            `json:"latency_slots"`   // earliest cheater first-flag slot, -1 if none
	Nodes          []DetectNodeView `json:"nodes"`
}

func runDetectJob(ctx context.Context, raw json.RawMessage, progress func(v any)) (any, error) {
	var p DetectParams
	if err := decodeParams(raw, &p); err != nil {
		return nil, fmt.Errorf("service: bad detect params: %w", err)
	}
	p.applyDefaults()
	if p.Nodes > 200 {
		return nil, fmt.Errorf("service: detect population %d exceeds 200", p.Nodes)
	}
	if p.Cheaters < 0 || p.Cheaters >= p.Nodes {
		return nil, fmt.Errorf("service: %d cheaters leave no honest node among %d", p.Cheaters, p.Nodes)
	}
	var mode phy.AccessMode
	switch p.Mode {
	case "basic":
		mode = phy.Basic
	case "rtscts":
		mode = phy.RTSCTS
	default:
		return nil, fmt.Errorf("service: unknown mode %q (want basic or rtscts)", p.Mode)
	}
	timing, err := phy.Default().Timing(mode)
	if err != nil {
		return nil, fmt.Errorf("service: detect timing: %w", err)
	}

	flagged := 0
	mon, err := stream.NewMonitor(stream.Config{
		Nodes:       p.Nodes,
		WindowSlots: p.WindowSlots,
		Keep:        4,
		MaxStage:    phy.Default().MaxBackoffStage,
		ExpectedCW:  p.ExpectedCW,
		Beta:        p.Beta,
		OnFlag: func(ev stream.FlagEvent) {
			flagged++
			if flagged == p.MaxFlagLines+1 {
				progress(map[string]any{"event": "flags_truncated", "emitted": p.MaxFlagLines})
			}
			if flagged > p.MaxFlagLines {
				return
			}
			progress(DetectFlagLine{
				Event: "flag", Node: ev.Node, Window: ev.Window, EndSlot: ev.EndSlot,
				EstCW: ev.EstCW, ExpectedCW: ev.ExpectedCW, Margin: ev.Margin,
				Cheater: ev.Node < p.Cheaters,
			})
		},
	})
	if err != nil {
		return nil, fmt.Errorf("service: detect monitor: %w", err)
	}

	cw := make([]int, p.Nodes)
	for i := range cw {
		cw[i] = p.ExpectedCW
	}
	for i := 0; i < p.Cheaters; i++ {
		cw[i] = p.CheaterCW
	}
	cfg := macsim.Config{
		Timing:   timing,
		MaxStage: phy.Default().MaxBackoffStage,
		CW:       cw,
		Duration: p.DurationUs,
		Seed:     rng.DeriveSeed(p.Seed, "service.detect.sim", 0),
		Gain:     1,
		Cost:     0.01,
		Observer: mon,
	}
	eng, err := acquireMacsim(cfg)
	if err != nil {
		return nil, fmt.Errorf("service: detect engine: %w", err)
	}
	defer func() {
		// Detach the per-job monitor before pooling so an idle engine
		// does not pin it (the next acquire reconfigures anyway).
		cfg.Observer = nil
		if eng.Reconfigure(cfg) == nil {
			releaseMacsim(eng, p.Nodes)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	progress(map[string]any{
		"event": "started", "nodes": p.Nodes, "cheaters": p.Cheaters,
		"expected_cw": p.ExpectedCW, "cheater_cw": p.CheaterCW, "beta": p.Beta,
		"window_slots": p.WindowSlots, "duration_us": p.DurationUs,
	})
	res := eng.Run()
	mon.Finish(res.Slots)

	view := &DetectResult{
		Slots:        res.Slots,
		Windows:      mon.Windows(),
		Flags:        mon.Flags(),
		LatencySlots: -1,
	}
	for i := 0; i < p.Nodes; i++ {
		sum := mon.EstimateSummary(i)
		nv := DetectNodeView{
			Node: i, CW: cw[i], Cheater: i < p.Cheaters,
			Flags: mon.NodeFlags(i), FirstFlagSlot: mon.FirstFlagSlot(i),
			MeanEstCW: sum.Mean, EstWindows: sum.N,
		}
		if nv.Cheater {
			if nv.FirstFlagSlot >= 0 {
				view.TruePositives++
				if view.LatencySlots < 0 || nv.FirstFlagSlot < view.LatencySlots {
					view.LatencySlots = nv.FirstFlagSlot
				}
			}
		} else {
			view.FalsePositives += nv.Flags
		}
		view.Nodes = append(view.Nodes, nv)
	}
	return view, nil
}

// decodeParams strictly decodes a job's params blob, rejecting unknown
// fields so typos fail loudly at submit-to-run time, not silently.
func decodeParams(raw json.RawMessage, v any) error {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

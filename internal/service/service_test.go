package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer builds a started server with a small footprint. Tests
// register their own runners before submitting.
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		QueueCap:          8,
		Workers:           2,
		DefaultJobTimeout: 30 * time.Second,
		DrainTimeout:      5 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	s.Start()
	return s
}

func waitTerminal(t *testing.T, j *Job) State {
	t.Helper()
	select {
	case <-j.done:
		return j.stateNow()
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s stuck in state %s", j.ID, j.stateNow())
		return ""
	}
}

func intPtr(v int) *int { return &v }

func TestJobLifecycleToDone(t *testing.T) {
	s := newTestServer(t, nil)
	s.RegisterRunner("echo", func(_ context.Context, params json.RawMessage, progress func(v any)) (any, error) {
		progress(map[string]int{"step": 1})
		progress(map[string]int{"step": 2})
		return map[string]string{"echo": string(params)}, nil
	})

	j, err := s.Submit(SubmitRequest{Kind: "echo", Params: json.RawMessage(`{"x":1}`)})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, j); got != StateDone {
		t.Fatalf("state = %s, want done", got)
	}
	result, state, errMsg := j.resultNow()
	if state != StateDone || errMsg != "" {
		t.Fatalf("resultNow = (%v, %s, %q)", result, state, errMsg)
	}
	lines, first, total := j.progressTail(0)
	if first != 0 || total != 2 || len(lines) != 2 {
		t.Fatalf("progress = %v (first %d, total %d), want 2 lines from 0", lines, first, total)
	}
	if !strings.Contains(lines[1], `"step":2`) {
		t.Errorf("progress line 1 = %q, want step 2", lines[1])
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, nil)
	if _, err := s.Submit(SubmitRequest{Kind: "no-such-kind"}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("unknown kind: err = %v, want ErrUnknownKind", err)
	}
	if _, err := s.Submit(SubmitRequest{Kind: "replicate", Priority: intPtr(17)}); err == nil {
		t.Error("priority 17 accepted")
	}
}

// TestCancelRunningJobKeepsPartialResult pins the cancellation contract:
// a runner that returns (partial, ctx.Err()) after a user cancel ends
// Cancelled with the partial result retained.
func TestCancelRunningJobKeepsPartialResult(t *testing.T) {
	s := newTestServer(t, nil)
	started := make(chan struct{})
	s.RegisterRunner("block", func(ctx context.Context, _ json.RawMessage, _ func(v any)) (any, error) {
		close(started)
		<-ctx.Done()
		return map[string]string{"partial": "prefix"}, ctx.Err()
	})

	j, err := s.Submit(SubmitRequest{Kind: "block"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, j); got != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got)
	}
	result, _, _ := j.resultNow()
	m, ok := result.(map[string]string)
	if !ok || m["partial"] != "prefix" {
		t.Fatalf("partial result lost on cancel: %v", result)
	}
	// Cancelling a terminal job is a conflict, not a crash.
	if err := s.Cancel(j.ID); !errors.Is(err, ErrJobFinished) {
		t.Errorf("second cancel: err = %v, want ErrJobFinished", err)
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1 })
	release := make(chan struct{})
	ran := make(chan string, 8)
	s.RegisterRunner("gate", func(ctx context.Context, _ json.RawMessage, _ func(v any)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return "ok", nil
	})
	s.RegisterRunner("mark", func(_ context.Context, params json.RawMessage, _ func(v any)) (any, error) {
		ran <- string(params)
		return "ok", nil
	})

	blocker, err := s.Submit(SubmitRequest{Kind: "gate"})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := s.Submit(SubmitRequest{Kind: "mark", Params: json.RawMessage(`"victim"`)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	if got := victim.stateNow(); got != StateCancelled {
		t.Fatalf("queued job state after cancel = %s, want cancelled immediately", got)
	}
	witness, err := s.Submit(SubmitRequest{Kind: "mark", Params: json.RawMessage(`"witness"`)})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	waitTerminal(t, blocker)
	if got := waitTerminal(t, witness); got != StateDone {
		t.Fatalf("witness state = %s", got)
	}
	select {
	case who := <-ran:
		if who != `"witness"` {
			t.Fatalf("cancelled job ran: %s", who)
		}
	default:
		t.Fatal("witness never ran")
	}
}

// TestPanicIsolation is the crash-only core: a panicking job is Failed
// with its stack recorded, and the pool keeps serving jobs afterwards.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1 })
	s.RegisterRunner("bomb", func(_ context.Context, _ json.RawMessage, _ func(v any)) (any, error) {
		panic("simulated runner bug")
	})
	s.RegisterRunner("fine", func(_ context.Context, _ json.RawMessage, _ func(v any)) (any, error) {
		return 42, nil
	})

	bomb, err := s.Submit(SubmitRequest{Kind: "bomb"})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, bomb); got != StateFailed {
		t.Fatalf("panicked job state = %s, want failed", got)
	}
	v := bomb.view(false)
	if !strings.Contains(v.Error, "simulated runner bug") {
		t.Errorf("error %q does not carry the panic value", v.Error)
	}
	if !errors.Is(ErrJobPanicked, ErrJobPanicked) || !strings.Contains(v.Error, ErrJobPanicked.Error()) {
		t.Errorf("error %q does not wrap ErrJobPanicked", v.Error)
	}
	if !strings.Contains(v.Stack, "goroutine") {
		t.Errorf("stack not captured: %q", v.Stack)
	}

	// The single worker that recovered the panic must still be alive.
	after, err := s.Submit(SubmitRequest{Kind: "fine"})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, after); got != StateDone {
		t.Fatalf("job after panic: state = %s, want done — worker died", got)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1; c.QueueCap = 1 })
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s.RegisterRunner("gate", func(ctx context.Context, _ json.RawMessage, _ func(v any)) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return "ok", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	defer close(release)

	running, err := s.Submit(SubmitRequest{Kind: "gate"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds this job; the queue is empty again
	if _, err := s.Submit(SubmitRequest{Kind: "gate"}); err != nil {
		t.Fatalf("filling the queue: %v", err)
	}
	_, err = s.Submit(SubmitRequest{Kind: "gate"})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want errors.Is(err, ErrQueueFull)", err)
	}
	_ = running
}

func TestHTTPQueueFullIs429WithRetryAfter(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1; c.QueueCap = 1 })
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s.RegisterRunner("gate", func(ctx context.Context, _ json.RawMessage, _ func(v any)) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return "ok", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	defer close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func() *http.Response {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
			strings.NewReader(`{"kind":"gate"}`))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	r1 := submit()
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", r1.StatusCode)
	}
	<-started
	r2 := submit()
	r2.Body.Close()
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", r2.StatusCode)
	}
	r3 := submit()
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", r3.StatusCode)
	}
	if ra := r3.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	var body map[string]string
	if err := json.NewDecoder(r3.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "queue full") {
		t.Errorf("429 body = %v", body)
	}
}

func TestHTTPLifecycle(t *testing.T) {
	s := newTestServer(t, nil)
	s.RegisterRunner("echo", func(_ context.Context, params json.RawMessage, progress func(v any)) (any, error) {
		progress(map[string]string{"phase": "working"})
		return map[string]string{"echo": string(params)}, nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"echo","priority":7,"params":{"n":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || view.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, view)
	}
	if view.Priority != 7 {
		t.Errorf("priority = %d, want 7", view.Priority)
	}

	j, err := s.Job(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)

	get := func(path string) (*http.Response, string) {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		r.Body.Close()
		return r, sb.String()
	}

	r, body := get("/api/v1/jobs/" + view.ID)
	if r.StatusCode != http.StatusOK || !strings.Contains(body, `"state": "done"`) {
		t.Fatalf("status: %d %s", r.StatusCode, body)
	}
	r, body = get("/api/v1/jobs/" + view.ID + "/result")
	if r.StatusCode != http.StatusOK || !strings.Contains(body, `{\"n\":3}`) {
		t.Fatalf("result: %d %s", r.StatusCode, body)
	}
	r, body = get("/api/v1/jobs/" + view.ID + "/progress")
	if r.StatusCode != http.StatusOK || !strings.Contains(body, `"phase":"working"`) {
		t.Fatalf("progress: %d %s", r.StatusCode, body)
	}
	if r.Header.Get("X-Progress-Total") != "1" {
		t.Errorf("X-Progress-Total = %q, want 1", r.Header.Get("X-Progress-Total"))
	}
	r, body = get("/api/v1/jobs")
	if r.StatusCode != http.StatusOK || !strings.Contains(body, view.ID) {
		t.Fatalf("list: %d %s", r.StatusCode, body)
	}
	r, _ = get("/api/v1/jobs/j999999")
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", r.StatusCode)
	}
	r, _ = get("/healthz")
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", r.StatusCode)
	}
	r, _ = get("/readyz")
	if r.StatusCode != http.StatusOK {
		t.Errorf("readyz = %d", r.StatusCode)
	}

	// Result of a non-terminal job is a 409.
	blockRelease := make(chan struct{})
	defer close(blockRelease)
	s.RegisterRunner("block", func(ctx context.Context, _ json.RawMessage, _ func(v any)) (any, error) {
		select {
		case <-blockRelease:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	blocked, err := s.Submit(SubmitRequest{Kind: "block"})
	if err != nil {
		t.Fatal(err)
	}
	r, _ = get("/api/v1/jobs/" + blocked.ID + "/result")
	if r.StatusCode != http.StatusConflict {
		t.Errorf("result of running job = %d, want 409", r.StatusCode)
	}

	// DELETE of a terminal job is a 409; of a live one, 202.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+view.ID, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusConflict {
		t.Errorf("cancel of done job = %d, want 409", dr.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+blocked.ID, nil)
	dr, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusAccepted {
		t.Errorf("cancel of running job = %d, want 202", dr.StatusCode)
	}
	if got := waitTerminal(t, blocked); got != StateCancelled {
		t.Errorf("blocked job after DELETE = %s, want cancelled", got)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1 })
	started := make(chan struct{})
	release := make(chan struct{})
	s.RegisterRunner("gate", func(ctx context.Context, _ json.RawMessage, _ func(v any)) (any, error) {
		close(started)
		select {
		case <-release:
			return "finished cleanly", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s.RegisterRunner("never", func(_ context.Context, _ json.RawMessage, _ func(v any)) (any, error) {
		return nil, errors.New("queued job must not run during shutdown")
	})

	running, err := s.Submit(SubmitRequest{Kind: "gate"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(SubmitRequest{Kind: "never"})
	if err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	// Intake must reject during the drain; the queued job dies Cancelled.
	if got := waitTerminal(t, queued); got != StateCancelled {
		t.Fatalf("queued job during shutdown = %s, want cancelled", got)
	}
	deadline := time.After(5 * time.Second)
	for {
		if _, err := s.Submit(SubmitRequest{Kind: "gate"}); errors.Is(err, ErrDraining) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("submit never started failing with ErrDraining")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Release the running job: it must complete Done, not be cancelled.
	close(release)
	select {
	case <-shutdownDone:
	case <-time.After(15 * time.Second):
		t.Fatal("Shutdown never returned after drain")
	}
	if got := running.stateNow(); got != StateDone {
		t.Errorf("running job after graceful drain = %s, want done", got)
	}
}

func TestShutdownHardCancelsAfterDrainTimeout(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.DrainTimeout = 50 * time.Millisecond
	})
	started := make(chan struct{})
	s.RegisterRunner("stubborn", func(ctx context.Context, _ json.RawMessage, _ func(v any)) (any, error) {
		close(started)
		<-ctx.Done() // only stops when hard-cancelled
		return nil, ctx.Err()
	})
	j, err := s.Submit(SubmitRequest{Kind: "stubborn"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got := j.stateNow(); got != StateCancelled {
		t.Errorf("hard-cancelled job = %s, want cancelled", got)
	}
	v := j.view(false)
	if !strings.Contains(v.Error, "shutting down") {
		t.Errorf("hard-cancel error = %q", v.Error)
	}
}

func TestJobDeadlineFailsJob(t *testing.T) {
	s := newTestServer(t, nil)
	s.RegisterRunner("sleepy", func(ctx context.Context, _ json.RawMessage, _ func(v any)) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	j, err := s.Submit(SubmitRequest{Kind: "sleepy", TimeoutSec: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, j); got != StateFailed {
		t.Fatalf("timed-out job = %s, want failed", got)
	}
	if v := j.view(false); !strings.Contains(v.Error, "deadline exceeded") {
		t.Errorf("deadline error = %q", v.Error)
	}
}

func TestSubmitClampsTimeoutToMax(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxJobTimeout = time.Minute })
	s.RegisterRunner("noop", func(_ context.Context, _ json.RawMessage, _ func(v any)) (any, error) {
		return nil, nil
	})
	j, err := s.Submit(SubmitRequest{Kind: "noop", TimeoutSec: 3600})
	if err != nil {
		t.Fatal(err)
	}
	if j.Timeout != time.Minute {
		t.Errorf("timeout = %v, want clamped to 1m", j.Timeout)
	}
	waitTerminal(t, j)
}

func TestProgressTailBounded(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.ProgressKeep = 3 })
	s.RegisterRunner("chatty", func(_ context.Context, _ json.RawMessage, progress func(v any)) (any, error) {
		for i := 0; i < 10; i++ {
			progress(map[string]int{"i": i})
		}
		return nil, nil
	})
	j, err := s.Submit(SubmitRequest{Kind: "chatty"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	lines, first, total := j.progressTail(0)
	if total != 10 {
		t.Errorf("total = %d, want 10", total)
	}
	if len(lines) != 3 || first != 7 {
		t.Errorf("tail = %d lines from %d, want 3 from 7", len(lines), first)
	}
	if !strings.Contains(lines[2], `"i":9`) {
		t.Errorf("last line = %q", lines[2])
	}
	// since beyond the tail start narrows the window further.
	lines, first, _ = j.progressTail(9)
	if len(lines) != 1 || first != 9 {
		t.Errorf("tail(9) = %d lines from %d, want 1 from 9", len(lines), first)
	}
}

// TestReplicateJobEndToEnd drives the built-in "replicate" kind on a tiny
// network: the job must finish Done with per-round CI progress lines and a
// metric summary in the result.
func TestReplicateJobEndToEnd(t *testing.T) {
	s := newTestServer(t, nil)
	params := `{"nodes":10,"width":300,"height":300,"range":120,"duration_us":20000,` +
		`"min_reps":3,"max_reps":3,"batch_size":3,"rel_ci":-1,"workers":2}`
	j, err := s.Submit(SubmitRequest{Kind: "replicate", Params: json.RawMessage(params)})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, j); got != StateDone {
		v := j.view(false)
		t.Fatalf("replicate job = %s (err %q)", got, v.Error)
	}
	result, _, _ := j.resultNow()
	view, ok := result.(*ReplicateResult)
	if !ok {
		t.Fatalf("result type %T", result)
	}
	if view.Reps != 3 || view.Cancelled {
		t.Errorf("result = %+v, want 3 uncancelled reps", view)
	}
	if len(view.Metrics) != 2 || view.Metrics[0].Name != "global_payoff_rate" {
		t.Fatalf("metrics = %+v", view.Metrics)
	}
	if view.Metrics[0].Mean <= 0 {
		t.Errorf("global payoff rate mean = %g, want > 0", view.Metrics[0].Mean)
	}
	lines, _, total := j.progressTail(0)
	if total < 1 {
		t.Fatal("no progress lines from replicate job")
	}
	var pr ReplicateProgress
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &pr); err != nil {
		t.Fatalf("progress line %q: %v", lines[len(lines)-1], err)
	}
	if pr.Reps != 3 || len(pr.Metrics) != 2 {
		t.Errorf("last progress = %+v", pr)
	}
}

// TestReplicateJobCancelledKeepsPrefix submits a longer replicate job and
// cancels it mid-flight: the job must end Cancelled with a prefix result.
func TestReplicateJobCancelledKeepsPrefix(t *testing.T) {
	s := newTestServer(t, nil)
	params := `{"nodes":12,"width":300,"height":300,"range":120,"duration_us":2000000,` +
		`"min_reps":200,"max_reps":200,"batch_size":2,"rel_ci":-1,"workers":1}`
	j, err := s.Submit(SubmitRequest{Kind: "replicate", Params: json.RawMessage(params)})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first progress line so at least one round has folded,
	// then cancel.
	deadline := time.After(20 * time.Second)
	for {
		_, _, total := j.progressTail(0)
		if total >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no progress before cancel")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := s.Cancel(j.ID); err != nil {
		if errors.Is(err, ErrJobFinished) {
			t.Skip("job finished before the cancel landed")
		}
		t.Fatal(err)
	}
	state := waitTerminal(t, j)
	if state == StateDone {
		t.Skip("job finished before the cancel landed")
	}
	if state != StateCancelled {
		t.Fatalf("state = %s, want cancelled", state)
	}
	result, _, _ := j.resultNow()
	view, ok := result.(*ReplicateResult)
	if !ok {
		t.Fatalf("cancelled result type %T, want *ReplicateResult prefix", result)
	}
	if !view.Cancelled {
		t.Error("prefix result not flagged Cancelled")
	}
	if view.Reps <= 0 || view.Reps >= 200 {
		t.Errorf("prefix reps = %d, want partial progress in (0, 200)", view.Reps)
	}
}

// TestDetectJobEndToEnd runs a "detect" job with one blatant cheater:
// the job must finish Done, stream at least one event:"flag" progress
// line naming the cheater, and summarize detection (TPR 1, a finite
// first-flag latency, cheater estimate far under the honest window).
func TestDetectJobEndToEnd(t *testing.T) {
	params := `{"nodes":10,"expected_cw":166,"cheaters":1,"cheater_cw":20,` +
		`"beta":0.6,"window_slots":1500,"duration_us":10000000,"seed":7}`
	s := newTestServer(t, nil)
	j, err := s.Submit(SubmitRequest{Kind: "detect", Params: json.RawMessage(params)})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, j); got != StateDone {
		v := j.view(false)
		t.Fatalf("detect job = %s (err %q)", got, v.Error)
	}
	result, _, _ := j.resultNow()
	view, ok := result.(*DetectResult)
	if !ok {
		t.Fatalf("result type %T", result)
	}
	if view.TruePositives != 1 || view.LatencySlots < 0 {
		t.Fatalf("result = %+v, want the cheater flagged with a latency", view)
	}
	if view.Windows < 2 || view.Slots <= 0 {
		t.Errorf("windows %d slots %d, want a multi-window run", view.Windows, view.Slots)
	}
	cheater := view.Nodes[0]
	if !cheater.Cheater || cheater.Flags == 0 || cheater.MeanEstCW >= 0.6*166 {
		t.Errorf("cheater summary = %+v", cheater)
	}
	lines, _, total := j.progressTail(0)
	if total < 2 {
		t.Fatalf("progress lines = %d, want started + flags", total)
	}
	var flags int
	for _, line := range lines {
		var fl DetectFlagLine
		if err := json.Unmarshal([]byte(line), &fl); err != nil || fl.Event != "flag" {
			continue
		}
		flags++
		if fl.Node != 0 || !fl.Cheater {
			t.Errorf("flag line %q does not name the cheater", line)
		}
		if fl.EstCW >= fl.ExpectedCW*0.6 || fl.Margin >= 0.6 {
			t.Errorf("flag line %q above the beta threshold", line)
		}
	}
	if flags == 0 {
		t.Fatal("no event:\"flag\" progress line streamed")
	}
}

// TestDetectJobParamValidation pins the submit-to-run failure modes.
func TestDetectJobParamValidation(t *testing.T) {
	s := newTestServer(t, nil)
	for _, tc := range []struct {
		name, params, wantErr string
	}{
		{"all cheaters", `{"nodes":4,"cheaters":4}`, "no honest node"},
		{"bad mode", `{"mode":"csma"}`, "unknown mode"},
		{"unknown field", `{"nodez":10}`, "unknown field"},
		{"bad beta", `{"beta":1.5}`, "invalid config"},
	} {
		j, err := s.Submit(SubmitRequest{Kind: "detect", Params: json.RawMessage(tc.params)})
		if err != nil {
			t.Fatal(err)
		}
		if got := waitTerminal(t, j); got != StateFailed {
			t.Fatalf("%s: state %s, want failed", tc.name, got)
		}
		if v := j.view(false); !strings.Contains(v.Error, tc.wantErr) {
			t.Errorf("%s: error %q, want %q", tc.name, v.Error, tc.wantErr)
		}
	}
}

func TestExperimentJobUnknownID(t *testing.T) {
	s := newTestServer(t, nil)
	j, err := s.Submit(SubmitRequest{Kind: "experiment", Params: json.RawMessage(`{"id":"ZZ"}`)})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, j); got != StateFailed {
		t.Fatalf("unknown experiment = %s, want failed", got)
	}
	if v := j.view(false); !strings.Contains(v.Error, "unknown experiment") {
		t.Errorf("error = %q", v.Error)
	}
}

func TestJobIDsAreSequential(t *testing.T) {
	s := newTestServer(t, nil)
	s.RegisterRunner("noop", func(_ context.Context, _ json.RawMessage, _ func(v any)) (any, error) {
		return nil, nil
	})
	var prev string
	for i := 0; i < 3; i++ {
		j, err := s.Submit(SubmitRequest{Kind: "noop"})
		if err != nil {
			t.Fatal(err)
		}
		if j.ID <= prev {
			t.Errorf("IDs not increasing: %q after %q", j.ID, prev)
		}
		prev = j.ID
		waitTerminal(t, j)
	}
	if want := fmt.Sprintf("j%06d", 3); prev != want {
		t.Errorf("third ID = %q, want %q", prev, want)
	}
}

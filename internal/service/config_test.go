package service

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

func TestApplyDefaultsFillsZeroFields(t *testing.T) {
	var c Config
	c.ApplyDefaults()
	if c.Addr == "" {
		t.Error("Addr not defaulted")
	}
	if c.QueueCap != 64 {
		t.Errorf("QueueCap = %d, want 64", c.QueueCap)
	}
	if c.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers = %d, want GOMAXPROCS = %d", c.Workers, runtime.GOMAXPROCS(0))
	}
	if c.DefaultJobTimeout <= 0 || c.MaxJobTimeout <= 0 || c.DrainTimeout <= 0 {
		t.Errorf("timeouts not defaulted: %+v", c)
	}
	if c.MaxBodyBytes <= 0 || c.ProgressKeep <= 0 {
		t.Errorf("limits not defaulted: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("defaulted config does not validate: %v", err)
	}
}

func TestApplyDefaultsKeepsUserValues(t *testing.T) {
	c := Config{
		Addr:              "0.0.0.0:9999",
		QueueCap:          3,
		Workers:           2,
		DefaultJobTimeout: time.Minute,
		MaxJobTimeout:     2 * time.Minute,
		DrainTimeout:      time.Second,
		MaxBodyBytes:      1024,
		ProgressKeep:      7,
	}
	want := c
	c.ApplyDefaults()
	if c != want {
		t.Errorf("ApplyDefaults rewrote user values:\n got %+v\nwant %+v", c, want)
	}
}

func TestValidateSentinels(t *testing.T) {
	valid := Config{}
	valid.ApplyDefaults()

	cases := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"empty addr", func(c *Config) { c.Addr = "" }, ErrEmptyAddr},
		{"zero queue", func(c *Config) { c.QueueCap = 0 }, ErrBadQueueCap},
		{"negative workers", func(c *Config) { c.Workers = -1 }, ErrBadWorkers},
		{"zero job timeout", func(c *Config) { c.DefaultJobTimeout = 0 }, ErrBadTimeout},
		{"zero max timeout", func(c *Config) { c.MaxJobTimeout = 0 }, ErrBadTimeout},
		{"zero drain timeout", func(c *Config) { c.DrainTimeout = 0 }, ErrBadTimeout},
		{
			"default above max",
			func(c *Config) { c.DefaultJobTimeout = 3 * time.Hour },
			ErrTimeoutInverted,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := valid
			tc.mutate(&c)
			err := c.Validate()
			if !errors.Is(err, tc.want) {
				t.Errorf("Validate() = %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

func TestValidateReportsEveryViolation(t *testing.T) {
	c := Config{Addr: "", QueueCap: -1, Workers: 0, DefaultJobTimeout: -time.Second}
	err := c.Validate()
	for _, want := range []error{ErrEmptyAddr, ErrBadQueueCap, ErrBadWorkers, ErrBadTimeout} {
		if !errors.Is(err, want) {
			t.Errorf("joined error misses %v (got %v)", want, err)
		}
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	// ApplyDefaults repairs non-positive fields, so the only way to reach
	// Validate with a bad config is an inverted timeout pair.
	_, err := New(Config{DefaultJobTimeout: time.Hour, MaxJobTimeout: time.Minute})
	if !errors.Is(err, ErrTimeoutInverted) {
		t.Fatalf("New() error = %v, want ErrTimeoutInverted", err)
	}
}

//go:build race

package service

// raceEnabled reports whether the race detector is compiled in. The
// pool-allocation pin skips under -race: sync.Pool deliberately drops a
// fraction of Puts in race builds, so pooled acquires miss and rebuild.
const raceEnabled = true

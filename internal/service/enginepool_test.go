package service

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"selfishmac/internal/multihop"
	"selfishmac/internal/topology"
)

// TestPooledJobsBitIdentical pins the pooling contract: a job served by a
// warm pooled engine (SetCW/Reconfigure + Reset) must produce exactly the
// result a cold fresh-built engine produces, for both simulator kinds.
func TestPooledJobsBitIdentical(t *testing.T) {
	discard := func(any) {}
	run := func(kind string, params string) any {
		t.Helper()
		var fn RunnerFunc
		switch kind {
		case "replicate":
			fn = runReplicateJob
		case "singlehop":
			fn = runSinglehopJob
		}
		out, err := fn(context.Background(), json.RawMessage(params), discard)
		if err != nil {
			t.Fatalf("%s job: %v", kind, err)
		}
		return out
	}
	cases := []struct {
		kind   string
		params string
	}{
		{"replicate", `{"nodes":30,"duration_us":100000,"max_reps":4,"workers":1}`},
		{"singlehop", `{"nodes":10,"cw":76,"duration_us":200000,"max_reps":4,"workers":1}`},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			cold := run(tc.kind, tc.params)
			// The first run released its engines into the pool; this run
			// acquires them warm.
			warm := run(tc.kind, tc.params)
			if !reflect.DeepEqual(cold, warm) {
				t.Fatalf("pooled rerun diverged from cold run:\ncold: %+v\nwarm: %+v", cold, warm)
			}
		})
	}
}

// TestPooledMultihopSteadyStateAllocationFree pins the reason the pool
// exists: once an engine of the shape is warm, a full job-shaped cycle —
// acquire, swap the CW profile, replicate, release — runs on the
// simulator's 0 allocs/op path.
func TestPooledMultihopSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector; the pin only holds in regular builds")
	}
	shape := multihopShape{
		topo: topology.Config{N: 25, Width: 800, Height: 800, Range: 200, Seed: 5},
	}
	cfg := multihop.DefaultSimConfig(5e4, 1)
	cfg.CW = make([]int, shape.topo.N)
	for i := range cfg.CW {
		cfg.CW[i] = 64
	}
	// The shape keys by topology alone: a warm engine must also absorb a
	// different stage duration through Reconfigure without rebuilding.
	cfgLong := multihop.DefaultSimConfig(8e4, 2)
	cfgLong.CW = cfg.CW

	warm, err := acquireMultihop(shape, cfg)
	if err != nil {
		t.Fatal(err)
	}
	releaseMultihop(shape, warm)

	flip := false
	allocs := testing.AllocsPerRun(10, func() {
		c := cfg
		if flip {
			c = cfgLong
		}
		flip = !flip
		sim, err := acquireMultihop(shape, c)
		if err != nil {
			t.Fatal(err)
		}
		sim.Reset(42)
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		releaseMultihop(shape, sim)
	})
	// sync.Pool itself may allocate a pool-chain node now and then; the
	// bound asserts the engine path is allocation-free (an engine rebuild
	// would cost thousands).
	if allocs > 1 {
		t.Fatalf("warm pooled job cycle allocated %.1f objects per run, want <= 1", allocs)
	}
}

package service

import (
	"container/heap"
	"fmt"
	"sync"
)

// jobQueue is the bounded priority queue between Submit and the worker
// pool. Ordering is (priority descending, submission order ascending):
// higher priorities run first, equal priorities are FIFO. Capacity counts
// waiting jobs only; a push against a full queue fails fast with
// ErrQueueFull — that sentinel is the whole backpressure story.
type jobQueue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	items    jobHeap
	cap      int
	closed   bool
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{cap: capacity}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job, failing with ErrQueueFull at capacity and
// ErrDraining after close.
func (q *jobQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.items) >= q.cap {
		return fmt.Errorf("%w (capacity %d)", ErrQueueFull, q.cap)
	}
	heap.Push(&q.items, j)
	q.nonEmpty.Signal()
	return nil
}

// pop blocks until a job is available or the queue is closed; ok is
// false only when the queue is closed (remaining items are drained by
// close itself, so closed means empty).
func (q *jobQueue) pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	return heap.Pop(&q.items).(*Job), true
}

// close stops intake, wakes every blocked pop, and returns the jobs
// still waiting (the caller cancels them — they must not run).
func (q *jobQueue) close() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	drained := make([]*Job, len(q.items))
	copy(drained, q.items)
	q.items = nil
	q.nonEmpty.Broadcast()
	return drained
}

// depth reports the number of waiting jobs.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// jobHeap orders jobs by priority (desc) then submission sequence (asc).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

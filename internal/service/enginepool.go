package service

import (
	"sync"

	"selfishmac/internal/macsim"
	"selfishmac/internal/multihop"
	"selfishmac/internal/topology"
)

// enginepool.go pools reusable simulator engines across daemon jobs.
// Building a multihop.Simulator costs a topology build plus every engine
// buffer; a macsim.Engine costs its calendar and per-node state. Jobs of
// the same *shape* — identical topology configuration and stage duration
// for multihop, identical node count for macsim — can hand those buffers
// to each other: the next job just swaps the CW profile (SetCW /
// Reconfigure, both allocation-free at fixed shape) and Resets per
// replication, hitting the engines' pinned 0 allocs/op reuse path
// instead of paying construction per job.
//
// Pools are sync.Pool per shape key, so idle engines are dropped under
// GC pressure rather than pinned forever, and concurrent jobs of the
// same shape each get their own engine (engines are not goroutine-safe).

// shapedPool is a registry of sync.Pools keyed by a comparable shape.
type shapedPool[K comparable, E any] struct {
	mu    sync.Mutex
	pools map[K]*sync.Pool
}

func (p *shapedPool[K, E]) pool(key K) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pools == nil {
		p.pools = make(map[K]*sync.Pool)
	}
	sp, ok := p.pools[key]
	if !ok {
		sp = &sync.Pool{}
		p.pools[key] = sp
	}
	return sp
}

// get returns a pooled engine for the shape, or ok=false on a miss (the
// caller builds fresh and releases it into the pool when done).
func (p *shapedPool[K, E]) get(key K) (E, bool) {
	v := p.pool(key).Get()
	if v == nil {
		var zero E
		return zero, false
	}
	return v.(E), true
}

func (p *shapedPool[K, E]) put(key K, e E) { p.pool(key).Put(e) }

// multihopShape identifies interchangeable multihop simulators: the
// deterministic topology alone. Duration, timing, payoff parameters and
// the CW profile are deliberately not part of the shape — Reconfigure
// swaps the whole config in place on acquire, allocation-free at a
// fixed shape — so jobs over the same network share one pooled
// topology+engine pair regardless of their stage parameters.
type multihopShape struct {
	topo topology.Config
}

// macsimShape identifies interchangeable single-hop engines. Only the
// node count matters: Reconfigure handles any window/timing change at a
// fixed population without allocating (the compact calendar grows on
// demand and is retained).
type macsimShape struct {
	n int
}

var (
	multihopPool shapedPool[multihopShape, *multihop.Simulator]
	macsimPool   shapedPool[macsimShape, *macsim.Engine]
)

// acquireMultihop returns a simulator for the shape, pooled when one is
// available (reconfigured in place) and freshly built otherwise. Release
// with releaseMultihop when the job is done with it.
func acquireMultihop(shape multihopShape, cfg multihop.SimConfig) (*multihop.Simulator, error) {
	if sim, ok := multihopPool.get(shape); ok {
		if err := sim.Reconfigure(cfg); err == nil {
			return sim, nil
		}
		// Shape key should make Reconfigure infallible; fall through to a
		// fresh build rather than trusting a mismatched engine.
	}
	nw, err := topology.New(shape.topo)
	if err != nil {
		return nil, err
	}
	return multihop.NewSimulator(nw, cfg)
}

func releaseMultihop(shape multihopShape, sim *multihop.Simulator) {
	multihopPool.put(shape, sim)
}

// acquireMacsim returns a single-hop engine running cfg, pooled
// (reconfigured in place) when one of the right population is available.
func acquireMacsim(cfg macsim.Config) (*macsim.Engine, error) {
	shape := macsimShape{n: len(cfg.CW)}
	if eng, ok := macsimPool.get(shape); ok {
		if err := eng.Reconfigure(cfg); err == nil {
			return eng, nil
		}
	}
	return macsim.NewEngine(cfg)
}

func releaseMacsim(eng *macsim.Engine, n int) {
	macsimPool.put(macsimShape{n: n}, eng)
}

// Package detect implements the observation machinery the paper assumes:
// "How to observe CW values in saturated networks is addressed in [3]"
// (Kyasanur & Vaidya, DSN 2003). TFT needs each node to know its peers'
// contention windows; this package recovers them from what a node in
// promiscuous mode can actually count — who transmitted in each virtual
// slot — and flags misbehavers.
//
// The estimator inverts the stationary model: a peer observed attempting
// a fraction τ̂ of virtual slots, facing collision probability p̂ (computed
// from the *other* peers' observed attempt rates via eq. 3), must be
// operating on
//
//	Ŵ = (2/τ̂ − 1) / (1 + p̂·Σ_{r=0}^{m-1}(2p̂)^r)
//
// which is eq. (2) solved for W. Estimation error shrinks as 1/√slots.
//
// Detector semantics follow GTFT's tolerance: a node is flagged when its
// estimated CW falls below Beta times the expected CW.
package detect

import (
	"errors"
	"fmt"
	"math"

	"selfishmac/internal/macsim"
	"selfishmac/internal/num"
)

// Sentinel errors for degenerate observations. Both the batch estimator
// here and the streaming estimator in internal/stream return these
// (wrapped with context), so callers can classify failures with
// errors.Is instead of string matching.
var (
	// ErrNoSlots marks an observation window covering zero virtual
	// slots — there is nothing to estimate from.
	ErrNoSlots = errors.New("detect: observation covers no slots")
	// ErrAttemptsExceedSlots marks an impossible count: more attempts
	// than observed virtual slots (or a negative attempt count).
	ErrAttemptsExceedSlots = errors.New("detect: attempts outside [0, slots]")
	// ErrDegenerateTau marks an observed or supplied tau outside (0, 1):
	// a peer that never transmitted — or transmitted in every single
	// slot — pins eq. (2) at a boundary where the inversion is undefined.
	ErrDegenerateTau = errors.New("detect: tau outside (0, 1)")
)

// Observation is what a promiscuous observer counts for one peer over a
// measurement window.
type Observation struct {
	// Attempts is the number of virtual slots in which the peer
	// transmitted (successes and collisions both count — the observer
	// hears the preamble either way).
	Attempts int64
	// Slots is the number of virtual slots observed.
	Slots int64
}

// Tau returns the observed per-slot transmission probability. It wraps
// ErrNoSlots / ErrAttemptsExceedSlots for degenerate windows.
func (o Observation) Tau() (float64, error) {
	if o.Slots <= 0 {
		return 0, fmt.Errorf("%w (got %d)", ErrNoSlots, o.Slots)
	}
	if o.Attempts < 0 || o.Attempts > o.Slots {
		return 0, fmt.Errorf("%w: %d attempts in %d slots", ErrAttemptsExceedSlots, o.Attempts, o.Slots)
	}
	return float64(o.Attempts) / float64(o.Slots), nil
}

// EstimateCW inverts eq. (2): given a peer's observed tau and the
// collision probability p it faces, return the CW it must be operating
// on. maxStage is the backoff cap m. Returns an error for degenerate
// observations (tau outside (0, 1)).
func EstimateCW(tau, p float64, maxStage int) (float64, error) {
	if tau <= 0 || tau >= 1 {
		return 0, fmt.Errorf("%w: observed tau %g", ErrDegenerateTau, tau)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("detect: collision probability %g outside [0, 1]", p)
	}
	if maxStage < 0 {
		return 0, fmt.Errorf("detect: negative max stage %d", maxStage)
	}
	denom := 1 + p*num.GeomSeriesSum(2*p, maxStage)
	w := (2/tau - 1) / denom
	if w < 1 {
		w = 1
	}
	return w, nil
}

// Estimate is one peer's recovered operating point.
type Estimate struct {
	// Node is the peer index.
	Node int
	// Tau and P are the observed transmission and inferred collision
	// probabilities.
	Tau float64
	P   float64
	// CW is the estimated contention window.
	CW float64
}

// CollisionProb computes eq. (3) — the collision probability node i
// faces, 1 − Π_{j≠i}(1 − τ_j) — from a full tau vector. It is the single
// implementation shared by the batch estimator below and the streaming
// estimator in internal/stream: both multiply the (1 − τ_j) factors in
// ascending j order, so the two paths produce bit-identical floats on
// identical inputs.
func CollisionProb(taus []float64, i int) float64 {
	p := 1.0
	for j, tj := range taus {
		if j != i {
			p *= 1 - tj
		}
	}
	return 1 - p
}

// EstimateAll recovers every peer's CW from a full observation vector
// (one Observation per node, all over the same window). The collision
// probability each node faces is computed from the *other* nodes'
// observed taus via eq. (3).
func EstimateAll(obs []Observation, maxStage int) ([]Estimate, error) {
	n := len(obs)
	if n == 0 {
		return nil, errors.New("detect: no observations")
	}
	taus := make([]float64, n)
	for i, o := range obs {
		tau, err := o.Tau()
		if err != nil {
			return nil, fmt.Errorf("detect: node %d: %w", i, err)
		}
		taus[i] = tau
	}
	out := make([]Estimate, n)
	for i := range obs {
		p := CollisionProb(taus, i)
		if taus[i] <= 0 || taus[i] >= 1 {
			return nil, fmt.Errorf("detect: node %d: %w (%g)", i, ErrDegenerateTau, taus[i])
		}
		w, err := EstimateCW(taus[i], p, maxStage)
		if err != nil {
			return nil, fmt.Errorf("detect: node %d: %w", i, err)
		}
		out[i] = Estimate{Node: i, Tau: taus[i], P: p, CW: w}
	}
	return out, nil
}

// FromSimResult converts a simulator run into the observation vector a
// promiscuous node would have collected. It is the batch equivalent of
// folding the per-slot observation stream: a stream.Monitor fed every
// (slot, transmitters) event of the same run accumulates identical
// cumulative counts, pinned bit-identical by the differential tests in
// internal/stream.
func FromSimResult(res *macsim.Result) []Observation {
	out := make([]Observation, len(res.Nodes))
	for i, nd := range res.Nodes {
		out[i] = Observation{Attempts: nd.Attempts, Slots: res.Slots}
	}
	return out
}

// Detector flags peers whose estimated CW undercuts the expected value
// beyond a tolerance, mirroring GTFT's trigger condition.
type Detector struct {
	// ExpectedCW is the CW conforming nodes should operate on (e.g. the
	// announced efficient NE).
	ExpectedCW int
	// Beta is the tolerance in (0, 1]: flag when Ŵ < Beta·ExpectedCW.
	Beta float64
	// MinSlots is the smallest observation window accepted; shorter
	// windows are too noisy to act on (estimation error ~ 1/sqrt(slots)).
	MinSlots int64
}

// Validate checks the detector configuration.
func (d Detector) Validate() error {
	var errs []error
	if d.ExpectedCW < 1 {
		errs = append(errs, fmt.Errorf("expected CW %d < 1", d.ExpectedCW))
	}
	if d.Beta <= 0 || d.Beta > 1 {
		errs = append(errs, fmt.Errorf("beta %g outside (0, 1]", d.Beta))
	}
	if d.MinSlots < 0 {
		errs = append(errs, errors.New("negative MinSlots"))
	}
	return errors.Join(errs...)
}

// Verdict is the per-node detection outcome.
type Verdict struct {
	Estimate
	// Misbehaving is true when the estimated CW undercuts
	// Beta * ExpectedCW.
	Misbehaving bool
	// Margin is EstimatedCW / ExpectedCW (how far from conformance).
	Margin float64
}

// Inspect estimates every peer's CW and applies the tolerance test. It
// returns an error when the window is shorter than MinSlots.
func (d Detector) Inspect(obs []Observation, maxStage int) ([]Verdict, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("detect: invalid detector: %w", err)
	}
	for i, o := range obs {
		if o.Slots < d.MinSlots {
			return nil, fmt.Errorf("detect: node %d observed over %d slots, need >= %d", i, o.Slots, d.MinSlots)
		}
	}
	ests, err := EstimateAll(obs, maxStage)
	if err != nil {
		return nil, err
	}
	out := make([]Verdict, len(ests))
	threshold := d.Beta * float64(d.ExpectedCW)
	for i, e := range ests {
		out[i] = Verdict{
			Estimate:    e,
			Misbehaving: e.CW < threshold,
			Margin:      e.CW / float64(d.ExpectedCW),
		}
	}
	return out, nil
}

// RequiredSlots estimates how many virtual slots an observer needs for a
// relative CW-estimation error of at most relErr at confidence ~95%, for
// a peer transmitting with probability tau. The attempt count is
// Binomial(slots, tau); the relative error of τ̂ (and, to first order, of
// Ŵ) is ≈ 2·sqrt((1−tau)/(slots·tau)).
func RequiredSlots(tau, relErr float64) (int64, error) {
	if tau <= 0 || tau >= 1 {
		return 0, fmt.Errorf("detect: tau %g outside (0, 1)", tau)
	}
	if relErr <= 0 {
		return 0, fmt.Errorf("detect: relErr %g must be positive", relErr)
	}
	slots := 4 * (1 - tau) / (tau * relErr * relErr)
	return int64(math.Ceil(slots)), nil
}

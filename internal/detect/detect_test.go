package detect

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"selfishmac/internal/bianchi"
	"selfishmac/internal/macsim"
	"selfishmac/internal/phy"
	"selfishmac/internal/stats"
)

func TestObservationTau(t *testing.T) {
	o := Observation{Attempts: 25, Slots: 100}
	tau, err := o.Tau()
	if err != nil || tau != 0.25 {
		t.Fatalf("tau = %g err = %v", tau, err)
	}
	if _, err := (Observation{Attempts: 1, Slots: 0}).Tau(); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := (Observation{Attempts: 5, Slots: 3}).Tau(); err == nil {
		t.Error("attempts > slots accepted")
	}
	if _, err := (Observation{Attempts: -1, Slots: 3}).Tau(); err == nil {
		t.Error("negative attempts accepted")
	}
}

// EstimateCW must exactly invert the model's eq. (2).
func TestEstimateCWInvertsTau(t *testing.T) {
	m, err := bianchi.New(phy.Default().MustTiming(phy.Basic), 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 16, 76, 336, 879} {
		for _, p := range []float64{0, 0.1, 0.3, 0.5, 0.8} {
			tau := m.Tau(w, p)
			got, err := EstimateCW(tau, p, 6)
			if err != nil {
				t.Fatalf("w=%d p=%g: %v", w, p, err)
			}
			if math.Abs(got-float64(w)) > 1e-9*float64(w) {
				t.Errorf("w=%d p=%g: estimated %g", w, p, got)
			}
		}
	}
}

// Property: round trip W -> tau -> W is exact for arbitrary (w, p, m).
func TestEstimateCWRoundTripProperty(t *testing.T) {
	tm := phy.Default().MustTiming(phy.Basic)
	f := func(wRaw uint16, pRaw uint8, mRaw uint8) bool {
		w := 1 + int(wRaw%2000)
		p := float64(pRaw) / 256
		stage := int(mRaw % 9)
		model, err := bianchi.New(tm, stage)
		if err != nil {
			return false
		}
		tau := model.Tau(w, p)
		got, err := EstimateCW(tau, p, stage)
		if err != nil {
			return false
		}
		return math.Abs(got-float64(w)) < 1e-6*float64(w)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateCWValidation(t *testing.T) {
	if _, err := EstimateCW(0, 0.1, 6); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := EstimateCW(1, 0.1, 6); err == nil {
		t.Error("tau=1 accepted")
	}
	if _, err := EstimateCW(0.1, -0.1, 6); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := EstimateCW(0.1, 0.1, -1); err == nil {
		t.Error("negative stage accepted")
	}
	// Degenerate tau near 1 clamps to CW >= 1 rather than going below.
	w, err := EstimateCW(0.999, 0, 6)
	if err != nil || w < 1 {
		t.Errorf("w = %g err = %v", w, err)
	}
}

// End to end: estimate every node's CW from a simulator run and recover
// the true heterogeneous profile within a few percent.
func TestEstimateAllFromSimulation(t *testing.T) {
	p := phy.Default()
	trueCW := []int{32, 64, 128, 256, 512}
	res, err := macsim.Run(macsim.Config{
		Timing:   p.MustTiming(phy.Basic),
		MaxStage: p.MaxBackoffStage,
		CW:       trueCW,
		Duration: 200e6,
		Seed:     3,
		Gain:     1,
		Cost:     0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EstimateAll(FromSimResult(res), p.MaxBackoffStage)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range ests {
		if rel := stats.RelErr(e.CW, float64(trueCW[i])); rel > 0.10 {
			t.Errorf("node %d: estimated CW %.1f vs true %d (rel %.3f)", i, e.CW, trueCW[i], rel)
		}
	}
}

func TestEstimateAllErrors(t *testing.T) {
	if _, err := EstimateAll(nil, 6); err == nil {
		t.Error("empty observations accepted")
	}
	bad := []Observation{{Attempts: 0, Slots: 100}, {Attempts: 10, Slots: 100}}
	if _, err := EstimateAll(bad, 6); err == nil {
		t.Error("zero-attempt node accepted (tau=0 is degenerate)")
	}
}

func TestDetectorFlagsCheater(t *testing.T) {
	p := phy.Default()
	// Four conforming nodes at the NE and one cheater far below it.
	expected := 336
	cw := []int{expected / 4, expected, expected, expected, expected}
	res, err := macsim.Run(macsim.Config{
		Timing:   p.MustTiming(phy.Basic),
		MaxStage: p.MaxBackoffStage,
		CW:       cw,
		Duration: 300e6,
		Seed:     5,
		Gain:     1,
		Cost:     0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := Detector{ExpectedCW: expected, Beta: 0.8, MinSlots: 1000}
	verdicts, err := det.Inspect(FromSimResult(res), p.MaxBackoffStage)
	if err != nil {
		t.Fatal(err)
	}
	if !verdicts[0].Misbehaving {
		t.Errorf("cheater not flagged: estimated CW %.1f, margin %.2f", verdicts[0].CW, verdicts[0].Margin)
	}
	for i := 1; i < len(verdicts); i++ {
		if verdicts[i].Misbehaving {
			t.Errorf("conforming node %d flagged: estimated CW %.1f", i, verdicts[i].CW)
		}
	}
}

func TestDetectorValidation(t *testing.T) {
	cases := []Detector{
		{ExpectedCW: 0, Beta: 0.8},
		{ExpectedCW: 10, Beta: 0},
		{ExpectedCW: 10, Beta: 1.5},
		{ExpectedCW: 10, Beta: 0.8, MinSlots: -1},
	}
	for _, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("detector %+v accepted", d)
		}
	}
	good := Detector{ExpectedCW: 10, Beta: 0.8}
	if err := good.Validate(); err != nil {
		t.Errorf("good detector rejected: %v", err)
	}
}

func TestDetectorMinSlots(t *testing.T) {
	det := Detector{ExpectedCW: 100, Beta: 0.9, MinSlots: 1000}
	obs := []Observation{{Attempts: 5, Slots: 100}, {Attempts: 5, Slots: 100}}
	if _, err := det.Inspect(obs, 6); err == nil {
		t.Fatal("short window accepted")
	}
}

func TestRequiredSlots(t *testing.T) {
	// Rarer transmitters need longer windows; tighter errors too.
	s1, err := RequiredSlots(0.01, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RequiredSlots(0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := RequiredSlots(0.01, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if s1 <= s2 {
		t.Errorf("rarer transmitter should need more slots: %d <= %d", s1, s2)
	}
	if s3 <= s1 {
		t.Errorf("tighter error should need more slots: %d <= %d", s3, s1)
	}
	if _, err := RequiredSlots(0, 0.1); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := RequiredSlots(0.1, 0); err == nil {
		t.Error("relErr=0 accepted")
	}
}

// The RequiredSlots formula must be honest: at its recommended window the
// simulated estimation error is within the requested bound (checked at a
// representative operating point with margin for model mismatch).
func TestRequiredSlotsCalibration(t *testing.T) {
	p := phy.Default()
	model, err := bianchi.New(p.MustTiming(phy.Basic), p.MaxBackoffStage)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.SolveUniform(336, 20)
	if err != nil {
		t.Fatal(err)
	}
	slots, err := RequiredSlots(sol.Tau[0], 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// Convert slots to duration via the solved mean slot time.
	duration := float64(slots) * sol.Tslot
	res, err := macsim.RunUniform(p.MustTiming(phy.Basic), p.MaxBackoffStage, 336, 20, duration, 1, 0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EstimateAll(FromSimResult(res), p.MaxBackoffStage)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, e := range ests {
		if stats.RelErr(e.CW, 336) > 0.10 {
			bad++
		}
	}
	// 95% confidence per node: allow 2 of 20 outside.
	if bad > 2 {
		t.Errorf("%d/20 estimates outside the promised 10%% at the recommended window", bad)
	}
}

// The degenerate-observation errors must be classifiable with errors.Is
// through every public entry point that wraps them.
func TestSentinelErrorsAreIsable(t *testing.T) {
	if _, err := (Observation{Attempts: 0, Slots: 0}).Tau(); !errors.Is(err, ErrNoSlots) {
		t.Errorf("zero-slot Tau error %v is not ErrNoSlots", err)
	}
	if _, err := (Observation{Attempts: 5, Slots: 3}).Tau(); !errors.Is(err, ErrAttemptsExceedSlots) {
		t.Errorf("attempts>slots Tau error %v is not ErrAttemptsExceedSlots", err)
	}
	if _, err := (Observation{Attempts: -1, Slots: 3}).Tau(); !errors.Is(err, ErrAttemptsExceedSlots) {
		t.Errorf("negative-attempts Tau error %v is not ErrAttemptsExceedSlots", err)
	}
	if _, err := EstimateCW(0, 0.1, 5); !errors.Is(err, ErrDegenerateTau) {
		t.Errorf("tau=0 EstimateCW error %v is not ErrDegenerateTau", err)
	}
	if _, err := EstimateCW(1, 0.1, 5); !errors.Is(err, ErrDegenerateTau) {
		t.Errorf("tau=1 EstimateCW error %v is not ErrDegenerateTau", err)
	}
	// The wrapped node context must preserve Is-ability through EstimateAll.
	obs := []Observation{{Attempts: 10, Slots: 100}, {Attempts: 0, Slots: 0}}
	if _, err := EstimateAll(obs, 5); !errors.Is(err, ErrNoSlots) {
		t.Errorf("EstimateAll zero-slot error %v is not ErrNoSlots", err)
	}
	obs = []Observation{{Attempts: 10, Slots: 100}, {Attempts: 0, Slots: 100}}
	if _, err := EstimateAll(obs, 5); !errors.Is(err, ErrDegenerateTau) {
		t.Errorf("EstimateAll zero-attempt error %v is not ErrDegenerateTau", err)
	}
}

// CollisionProb must reproduce EstimateAll's inline eq.-(3) product bit
// for bit (it IS that product, factored out — this pins the refactor).
func TestCollisionProbMatchesEstimateAll(t *testing.T) {
	obs := []Observation{
		{Attempts: 120, Slots: 1000},
		{Attempts: 45, Slots: 1000},
		{Attempts: 260, Slots: 1000},
		{Attempts: 9, Slots: 1000},
	}
	ests, err := EstimateAll(obs, 5)
	if err != nil {
		t.Fatal(err)
	}
	taus := make([]float64, len(obs))
	for i, o := range obs {
		taus[i], _ = o.Tau()
	}
	for i, e := range ests {
		if got := CollisionProb(taus, i); got != e.P {
			t.Errorf("node %d: CollisionProb %v != EstimateAll P %v", i, got, e.P)
		}
	}
}

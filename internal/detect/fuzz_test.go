package detect

import (
	"math"
	"testing"

	"selfishmac/internal/bianchi"
	"selfishmac/internal/phy"
)

// FuzzEstimateCWRoundTrip drives the model inversion with arbitrary
// (w, p, m) triples: Tau followed by EstimateCW must reproduce w, and the
// estimator must never return less than 1 or NaN.
func FuzzEstimateCWRoundTrip(f *testing.F) {
	f.Add(76, 0.1, 6)
	f.Add(1, 0.0, 0)
	f.Add(4096, 0.99, 8)
	f.Add(336, 0.5, 6) // the closed form's singular point
	tm := phy.Default().MustTiming(phy.Basic)
	f.Fuzz(func(t *testing.T, w int, p float64, m int) {
		if w < 1 || w > 1<<20 {
			t.Skip()
		}
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Skip()
		}
		if m < 0 || m > 16 {
			t.Skip()
		}
		model, err := bianchi.New(tm, m)
		if err != nil {
			t.Skip()
		}
		tau := model.Tau(w, p)
		if tau <= 0 || tau >= 1 {
			t.Skip() // degenerate corner (huge w underflows)
		}
		got, err := EstimateCW(tau, p, m)
		if err != nil {
			t.Fatalf("EstimateCW(%g, %g, %d): %v", tau, p, m, err)
		}
		if math.IsNaN(got) || got < 1 {
			t.Fatalf("estimate %g invalid", got)
		}
		if rel := math.Abs(got-float64(w)) / float64(w); rel > 1e-6 {
			t.Fatalf("round trip w=%d p=%g m=%d gave %g (rel %g)", w, p, m, got, rel)
		}
	})
}

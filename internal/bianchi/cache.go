package bianchi

import (
	"sync"
	"sync/atomic"

	"selfishmac/internal/phy"
)

// The experiment harness resolves the same operating points over and over:
// a figure sweep, the NE grid argmax and the deviation analyses all walk
// overlapping (w, n) grids against identical channel timings. Every such
// point is the root of a fixed-point (or bisection) solve costing hundreds
// of floating-point iterations, so memoizing the solved point is the
// single largest lever on harness wall-clock. The cache below is shared by
// every Model, keyed by the full operating point — channel timing (which
// embeds the access mode), maximum backoff stage, CW profile class and
// population — so models with different physics never alias.
//
// Cached values are the solved scalars, not *Solution values: each lookup
// materializes a fresh Solution with its own slices, so callers may mutate
// results freely without corrupting the cache, and a cached answer is
// bit-identical to the uncached solve that produced it.

// solveKey identifies one memoizable operating point. wDev == wBase means
// the uniform profile at that CW; wDev != wBase is the two-class deviation
// profile (node 0 at wDev, the rest at wBase). SolveDeviation collapses
// wDev == wBase to SolveUniform before consulting the cache, so the two
// classes never collide.
type solveKey struct {
	timing   phy.Timing
	maxStage int
	wDev     int
	wBase    int
	n        int
}

// cachedPoint holds the solved scalars of one operating point.
type cachedPoint struct {
	tauDev, tauBase float64
	pDev, pBase     float64
	stats           SlotStats
	iters           int
}

// cacheMaxEntries bounds the shared cache's memory. A full paper run
// touches a few thousand distinct points; the bound only matters for
// long-lived services sweeping unbounded parameter spaces. When it is
// reached the whole map is dropped (the cost of re-solving a working set
// is far below the bookkeeping of an eviction policy at this entry size).
const cacheMaxEntries = 1 << 20

// solveCache is a concurrency-safe memoization table for uniform and
// two-class deviation solves.
type solveCache struct {
	mu      sync.RWMutex
	entries map[solveKey]cachedPoint
	hits    atomic.Uint64
	misses  atomic.Uint64
}

func newSolveCache() *solveCache {
	return &solveCache{entries: make(map[solveKey]cachedPoint)}
}

// lookup returns the cached point and whether it was present, updating the
// hit/miss counters.
func (c *solveCache) lookup(k solveKey) (cachedPoint, bool) {
	c.mu.RLock()
	pt, ok := c.entries[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return pt, ok
}

// store inserts a solved point, dropping the table first if it is full.
func (c *solveCache) store(k solveKey, pt cachedPoint) {
	c.mu.Lock()
	if len(c.entries) >= cacheMaxEntries {
		c.entries = make(map[solveKey]cachedPoint)
	}
	c.entries[k] = pt
	c.mu.Unlock()
}

func (c *solveCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

func (c *solveCache) size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

func (c *solveCache) reset() {
	c.mu.Lock()
	c.entries = make(map[solveKey]cachedPoint)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// sharedCache memoizes solves across every Model in the process.
var sharedCache = newSolveCache()

// CacheStats returns the shared solver cache's cumulative hit and miss
// counts. Every hit is one avoided fixed-point (or bisection) solve;
// benchmarks read these counters to measure, rather than assert, the
// cache's effect.
func CacheStats() (hits, misses uint64) { return sharedCache.stats() }

// CacheSize returns the number of distinct operating points currently
// memoized.
func CacheSize() int { return sharedCache.size() }

// ResetCache empties the shared solver cache and zeroes its counters. It
// exists for benchmarks and tests that need a cold start; results are
// identical with or without it.
func ResetCache() { sharedCache.reset() }

// uniformKey builds the cache key for n nodes all at CW w.
func (m *Model) uniformKey(w, n int) solveKey {
	return solveKey{timing: m.Timing, maxStage: m.MaxStage, wDev: w, wBase: w, n: n}
}

// deviationKey builds the cache key for node 0 at wDev among n−1 at wBase.
func (m *Model) deviationKey(wDev, wBase, n int) solveKey {
	return solveKey{timing: m.Timing, maxStage: m.MaxStage, wDev: wDev, wBase: wBase, n: n}
}

// uniformSolution materializes a fresh Solution from a cached uniform
// point.
func uniformSolution(w, n int, pt cachedPoint) *Solution {
	sol := &Solution{
		W:          uniformProfile(w, n),
		Tau:        uniformFloats(pt.tauBase, n),
		P:          uniformFloats(pt.pBase, n),
		Iterations: pt.iters,
	}
	sol.SlotStats = pt.stats
	return sol
}

// deviationSolution materializes a fresh Solution from a cached two-class
// point.
func deviationSolution(wDev, wBase, n int, pt cachedPoint) *Solution {
	sol := &Solution{
		W:          append([]int{wDev}, uniformProfile(wBase, n-1)...),
		Tau:        append([]float64{pt.tauDev}, uniformFloats(pt.tauBase, n-1)...),
		P:          append([]float64{pt.pDev}, uniformFloats(pt.pBase, n-1)...),
		Iterations: pt.iters,
	}
	sol.SlotStats = pt.stats
	return sol
}

package bianchi

import (
	"fmt"
	"sync"
	"testing"

	"selfishmac/internal/phy"
	"selfishmac/internal/rng"
)

// solutionsBitIdentical compares every field of two solutions with exact
// (bitwise) float equality — the cache contract is bit-identity, not
// tolerance-level agreement.
func solutionsBitIdentical(a, b *Solution) error {
	if len(a.W) != len(b.W) {
		return fmt.Errorf("profile lengths %d vs %d", len(a.W), len(b.W))
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			return fmt.Errorf("W[%d]: %d vs %d", i, a.W[i], b.W[i])
		}
		if a.Tau[i] != b.Tau[i] {
			return fmt.Errorf("Tau[%d]: %v vs %v", i, a.Tau[i], b.Tau[i])
		}
		if a.P[i] != b.P[i] {
			return fmt.Errorf("P[%d]: %v vs %v", i, a.P[i], b.P[i])
		}
	}
	if a.SlotStats != b.SlotStats {
		return fmt.Errorf("slot stats %+v vs %+v", a.SlotStats, b.SlotStats)
	}
	if a.Iterations != b.Iterations {
		return fmt.Errorf("iterations %d vs %d", a.Iterations, b.Iterations)
	}
	return nil
}

func randomModel(t *testing.T, r *rng.Source) *Model {
	t.Helper()
	mode := phy.Basic
	if r.Intn(2) == 1 {
		mode = phy.RTSCTS
	}
	p := phy.Default()
	tm, err := p.Timing(mode)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tm, r.Intn(9))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCachedUniformBitIdentical is the cache-correctness property test:
// over a randomized (w, n, m, mode) grid, a cached SolveUniform result —
// both the one that populates the cache and the one served from it — is
// bit-identical to the uncached solve.
func TestCachedUniformBitIdentical(t *testing.T) {
	ResetCache()
	r := rng.New(0xb1a7c41)
	for trial := 0; trial < 200; trial++ {
		m := randomModel(t, r)
		w := 1 + r.Intn(2048)
		n := 1 + r.Intn(40)
		direct, err := m.solveUniformUncached(w, n)
		if err != nil {
			t.Fatalf("trial %d: uncached: %v", trial, err)
		}
		first, err := m.SolveUniform(w, n)
		if err != nil {
			t.Fatalf("trial %d: cached (populate): %v", trial, err)
		}
		if err := solutionsBitIdentical(direct, first); err != nil {
			t.Fatalf("trial %d (w=%d, n=%d, m=%d, %v): populate pass: %v",
				trial, w, n, m.MaxStage, m.Timing.Mode, err)
		}
		second, err := m.SolveUniform(w, n)
		if err != nil {
			t.Fatalf("trial %d: cached (hit): %v", trial, err)
		}
		if err := solutionsBitIdentical(direct, second); err != nil {
			t.Fatalf("trial %d (w=%d, n=%d, m=%d, %v): hit pass: %v",
				trial, w, n, m.MaxStage, m.Timing.Mode, err)
		}
		// The served solution must not alias the cache: mutating it and
		// re-querying must return the original values.
		second.Tau[0] = -1
		second.W[0] = -1
		third, err := m.SolveUniform(w, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := solutionsBitIdentical(direct, third); err != nil {
			t.Fatalf("trial %d: cache corrupted by caller mutation: %v", trial, err)
		}
	}
	if hits, misses := CacheStats(); hits == 0 || misses == 0 {
		t.Fatalf("expected both hits and misses, got hits=%d misses=%d", hits, misses)
	}
}

// TestCachedDeviationBitIdentical is the same property for SolveDeviation.
func TestCachedDeviationBitIdentical(t *testing.T) {
	ResetCache()
	r := rng.New(0xdee7a11)
	for trial := 0; trial < 200; trial++ {
		m := randomModel(t, r)
		wDev := 1 + r.Intn(2048)
		wBase := 1 + r.Intn(2048)
		if wDev == wBase {
			wBase++
		}
		n := 2 + r.Intn(40)
		direct, err := m.solveDeviationUncached(wDev, wBase, n)
		if err != nil {
			t.Fatalf("trial %d: uncached: %v", trial, err)
		}
		for pass := 0; pass < 2; pass++ {
			sol, err := m.SolveDeviation(wDev, wBase, n)
			if err != nil {
				t.Fatalf("trial %d pass %d: %v", trial, pass, err)
			}
			if err := solutionsBitIdentical(direct, sol); err != nil {
				t.Fatalf("trial %d pass %d (dev=%d, base=%d, n=%d, m=%d, %v): %v",
					trial, pass, wDev, wBase, n, m.MaxStage, m.Timing.Mode, err)
			}
		}
	}
}

// TestCacheKeysDistinguishPhysics guards against key aliasing: the same
// (w, n) under different access modes or backoff stages must not share an
// entry.
func TestCacheKeysDistinguishPhysics(t *testing.T) {
	ResetCache()
	p := phy.Default()
	basic, err := New(p.MustTiming(phy.Basic), 6)
	if err != nil {
		t.Fatal(err)
	}
	rts, err := New(p.MustTiming(phy.RTSCTS), 6)
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := New(p.MustTiming(phy.Basic), 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := basic.SolveUniform(64, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rts.SolveUniform(64, 10)
	if err != nil {
		t.Fatal(err)
	}
	c, err := shallow.SolveUniform(64, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput == b.Throughput {
		t.Error("basic and RTS/CTS solves aliased in the cache")
	}
	if a.Tau[0] == c.Tau[0] {
		t.Error("m=6 and m=2 solves aliased in the cache")
	}
	if got := CacheSize(); got != 3 {
		t.Errorf("cache size = %d, want 3 distinct entries", got)
	}
}

// TestCacheConcurrentSolves hammers one operating-point grid from many
// goroutines; under -race this validates the locking, and every result
// must equal the serial solve.
func TestCacheConcurrentSolves(t *testing.T) {
	ResetCache()
	p := phy.Default()
	m, err := New(p.MustTiming(phy.Basic), 6)
	if err != nil {
		t.Fatal(err)
	}
	type point struct{ w, n int }
	grid := make([]point, 0, 64)
	for w := 1; w <= 256; w *= 2 {
		for n := 2; n <= 16; n += 2 {
			grid = append(grid, point{w, n})
		}
	}
	want := make(map[point]*Solution, len(grid))
	for _, pt := range grid {
		sol, err := m.solveUniformUncached(pt.w, pt.n)
		if err != nil {
			t.Fatal(err)
		}
		want[pt] = sol
	}
	const workers = 8
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for _, pt := range grid {
					sol, err := m.SolveUniform(pt.w, pt.n)
					if err != nil {
						errc <- err
						return
					}
					if err := solutionsBitIdentical(want[pt], sol); err != nil {
						errc <- fmt.Errorf("goroutine %d (w=%d, n=%d): %w", g, pt.w, pt.n, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	hits, misses := CacheStats()
	if misses > uint64(len(grid)*workers) {
		// Concurrent first lookups of a point may each miss before the
		// first store lands (at most one per worker per point); anything
		// beyond that means the cache is not actually retaining entries.
		t.Errorf("misses = %d for %d distinct points across %d workers", misses, len(grid), workers)
	}
	if hits == 0 {
		t.Error("no hits recorded")
	}
}

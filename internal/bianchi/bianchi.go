// Package bianchi implements the paper's Section III: Bianchi's saturated
// IEEE 802.11 DCF Markov-chain model, extended to *selfish* environments
// where each node may operate on its own contention-window value.
//
// For a profile W = (W_1, …, W_n) of per-node initial contention windows,
// the model couples, for every node i,
//
//	τ_i = 2 / (1 + W_i + p_i·W_i·Σ_{r=0}^{m-1}(2 p_i)^r)       (paper eq. 2)
//	p_i = 1 − Π_{j≠i} (1 − τ_j)                                 (paper eq. 3)
//
// where τ_i is i's per-slot transmission probability, p_i its conditional
// collision probability, and m the maximum backoff stage. Eq. 2 is written
// in the summation form, which remains finite at p_i = 1/2 where the
// closed form (1−(2p)^m)/(1−2p) is 0/0.
//
// The heterogeneous system is solved by damped fixed-point iteration; the
// homogeneous (all-equal-W) case, which the repeated game converges to, is
// solved by bisection on a single monotone equation and admits a unique
// solution (Bianchi 2000).
package bianchi

import (
	"errors"
	"fmt"
	"math"

	"selfishmac/internal/num"
	"selfishmac/internal/phy"
)

// Model binds the channel timing and the maximum backoff stage.
type Model struct {
	// Timing carries sigma, Ts, Tc and E[P] for the chosen access mode.
	Timing phy.Timing
	// MaxStage is m, the number of contention-window doublings.
	MaxStage int
}

// New returns a model over the given timing with maximum backoff stage m.
func New(tm phy.Timing, maxStage int) (*Model, error) {
	if maxStage < 0 || maxStage > 16 {
		return nil, fmt.Errorf("bianchi: max backoff stage %d outside [0, 16]", maxStage)
	}
	if tm.Slot <= 0 || tm.Ts <= 0 || tm.Tc <= 0 || tm.Payload <= 0 {
		return nil, fmt.Errorf("bianchi: non-positive timing %+v", tm)
	}
	return &Model{Timing: tm, MaxStage: maxStage}, nil
}

// Tau evaluates eq. (2): the stationary transmission probability of a node
// with initial contention window w facing conditional collision
// probability p. w must be >= 1 and p in [0, 1].
func (m *Model) Tau(w int, p float64) float64 {
	fw := float64(w)
	return 2 / (1 + fw + p*fw*num.GeomSeriesSum(2*p, m.MaxStage))
}

// SlotStats is the per-slot decomposition of the channel.
type SlotStats struct {
	// Ptr is the probability at least one node transmits in a slot.
	Ptr float64
	// Ps is the probability a transmission is a success, conditioned on
	// at least one transmission (Ps = PsuccSlot / Ptr).
	Ps float64
	// PsuccSlot = Σ_i τ_i Π_{j≠i}(1−τ_j): unconditional per-slot success.
	PsuccSlot float64
	// Tslot is the average slot duration in microseconds:
	// (1−Ptr)σ + PsuccSlot·Ts + (Ptr−PsuccSlot)·Tc.
	Tslot float64
	// Throughput is the normalized saturation throughput S.
	Throughput float64
}

// Solution is the solved operating point for a CW profile.
type Solution struct {
	// W is the contention-window profile the solution corresponds to.
	W []int
	// Tau and P are the per-node transmission and collision probabilities.
	Tau []float64
	P   []float64
	SlotStats
	// Iterations is the fixed-point iteration count (0 for closed paths).
	Iterations int
}

// SuccessRate returns node i's unconditional per-slot success probability
// τ_i (1 − p_i).
func (s *Solution) SuccessRate(i int) float64 { return s.Tau[i] * (1 - s.P[i]) }

// MeanAccessDelay returns the expected time (µs) between node i's
// consecutive successful packet deliveries: one success arrives every
// 1/(τ_i(1−p_i)) slots of mean duration T_slot. The paper's Section VIII
// notes its utility ignores delay; this quantifies what the NE costs in
// that dimension.
func (s *Solution) MeanAccessDelay(i int) float64 {
	sr := s.SuccessRate(i)
	if sr <= 0 {
		return math.Inf(1)
	}
	return s.Tslot / sr
}

// validateProfile rejects empty profiles and CW values below 1.
func validateProfile(w []int) error {
	if len(w) == 0 {
		return errors.New("bianchi: empty CW profile")
	}
	for i, wi := range w {
		if wi < 1 {
			return fmt.Errorf("bianchi: node %d has CW %d < 1", i, wi)
		}
	}
	return nil
}

// exclProducts returns excl[i] = Π_{j≠i} (1 − τ_j) using prefix/suffix
// products, avoiding division (stable even when some τ_j → 1).
func exclProducts(tau []float64, excl []float64) {
	n := len(tau)
	prefix := 1.0
	for i := 0; i < n; i++ {
		excl[i] = prefix
		prefix *= 1 - tau[i]
	}
	suffix := 1.0
	for i := n - 1; i >= 0; i-- {
		excl[i] *= suffix
		suffix *= 1 - tau[i]
	}
}

// slotStats computes the channel decomposition for transmission
// probabilities tau.
func (m *Model) slotStats(tau []float64) SlotStats {
	n := len(tau)
	excl := make([]float64, n)
	exclProducts(tau, excl)
	var psucc float64
	allIdle := 1.0
	for i := 0; i < n; i++ {
		psucc += tau[i] * excl[i]
		allIdle *= 1 - tau[i]
	}
	ptr := 1 - allIdle
	tm := m.Timing
	tslot := allIdle*tm.Slot + psucc*tm.Ts + (ptr-psucc)*tm.Tc
	st := SlotStats{
		Ptr:       ptr,
		PsuccSlot: psucc,
		Tslot:     tslot,
	}
	if ptr > 0 {
		st.Ps = num.Clamp(psucc/ptr, 0, 1)
	}
	if tslot > 0 {
		st.Throughput = psucc * tm.Payload / tslot
	}
	return st
}

// Stats exposes the slot decomposition for an arbitrary τ vector. It is
// used by the game layer to evaluate hypothetical profiles.
func (m *Model) Stats(tau []float64) SlotStats { return m.slotStats(tau) }

// Solve computes the operating point of an arbitrary heterogeneous CW
// profile by damped fixed-point iteration on τ.
func (m *Model) Solve(w []int) (*Solution, error) {
	if err := validateProfile(w); err != nil {
		return nil, err
	}
	n := len(w)
	if n == 1 {
		// A single node never collides: p = 0, τ = 2/(W+1).
		tau := m.Tau(w[0], 0)
		sol := &Solution{
			W:   append([]int(nil), w...),
			Tau: []float64{tau},
			P:   []float64{0},
		}
		sol.SlotStats = m.slotStats(sol.Tau)
		return sol, nil
	}
	// Uniform profiles have a closed 1-D path; use it when applicable.
	uniform := true
	for _, wi := range w[1:] {
		if wi != w[0] {
			uniform = false
			break
		}
	}
	if uniform {
		return m.SolveUniform(w[0], n)
	}

	tau := make([]float64, n)
	for i, wi := range w {
		tau[i] = m.Tau(wi, 0)
	}
	excl := make([]float64, n)
	iterate := func(in, out []float64) {
		exclProducts(in, excl)
		for i := range out {
			p := 1 - excl[i]
			out[i] = m.Tau(w[i], num.Clamp(p, 0, 1))
		}
	}
	iters, err := num.FixedPoint(iterate, tau, 0.5, num.Options{Tol: 1e-13, MaxIter: 2000})
	if err != nil {
		return nil, fmt.Errorf("bianchi: heterogeneous solve for %v: %w", w, err)
	}
	sol := &Solution{
		W:          append([]int(nil), w...),
		Tau:        tau,
		P:          make([]float64, n),
		Iterations: iters,
	}
	exclProducts(tau, excl)
	for i := range sol.P {
		sol.P[i] = num.Clamp(1-excl[i], 0, 1)
	}
	sol.SlotStats = m.slotStats(tau)
	return sol, nil
}

// SolveUniform computes the operating point when all n nodes use CW w.
// The coupled system collapses to one equation in τ,
//
//	τ = Tau(w, 1 − (1−τ)^(n−1)),
//
// whose right-hand side is decreasing in τ while the left is increasing,
// so bisection on the difference finds the unique crossing. Solved points
// are memoized in the process-wide cache (see cache.go); a cached result
// is bit-identical to the direct solve.
func (m *Model) SolveUniform(w, n int) (*Solution, error) {
	if n < 1 {
		return nil, fmt.Errorf("bianchi: n = %d must be >= 1", n)
	}
	if w < 1 {
		return nil, fmt.Errorf("bianchi: CW %d < 1", w)
	}
	key := m.uniformKey(w, n)
	if pt, ok := sharedCache.lookup(key); ok {
		return uniformSolution(w, n, pt), nil
	}
	sol, err := m.solveUniformUncached(w, n)
	if err != nil {
		return nil, err
	}
	sharedCache.store(key, cachedPoint{
		tauDev:  sol.Tau[0],
		tauBase: sol.Tau[0],
		pDev:    sol.P[0],
		pBase:   sol.P[0],
		stats:   sol.SlotStats,
		iters:   sol.Iterations,
	})
	return sol, nil
}

// solveUniformUncached performs the actual uniform solve; SolveUniform
// wraps it with memoization.
func (m *Model) solveUniformUncached(w, n int) (*Solution, error) {
	var tau float64
	if n == 1 {
		tau = m.Tau(w, 0)
	} else {
		f := func(t float64) float64 {
			p := 1 - math.Pow(1-t, float64(n-1))
			return t - m.Tau(w, p)
		}
		root, err := num.Bisect(f, 0, 1, num.Options{Tol: 1e-14, MaxIter: 200})
		if err != nil {
			return nil, fmt.Errorf("bianchi: uniform solve (w=%d, n=%d): %w", w, n, err)
		}
		tau = root
	}
	p := 0.0
	if n > 1 {
		p = 1 - math.Pow(1-tau, float64(n-1))
	}
	sol := &Solution{
		W:   uniformProfile(w, n),
		Tau: uniformFloats(tau, n),
		P:   uniformFloats(p, n),
	}
	sol.SlotStats = m.uniformSlotStats(tau, n)
	return sol, nil
}

// uniformSlotStats is the closed-form slot decomposition for n identical τ.
func (m *Model) uniformSlotStats(tau float64, n int) SlotStats {
	allIdle := math.Pow(1-tau, float64(n))
	psucc := float64(n) * tau * math.Pow(1-tau, float64(n-1))
	ptr := 1 - allIdle
	tm := m.Timing
	tslot := allIdle*tm.Slot + psucc*tm.Ts + (ptr-psucc)*tm.Tc
	st := SlotStats{Ptr: ptr, PsuccSlot: psucc, Tslot: tslot}
	if ptr > 0 {
		st.Ps = num.Clamp(psucc/ptr, 0, 1)
	}
	if tslot > 0 {
		st.Throughput = psucc * tm.Payload / tslot
	}
	return st
}

// SolveDeviation computes the operating point when one node (index 0 in
// the returned solution) uses wDev while the remaining n−1 nodes use
// wBase. Exploiting the two-class symmetry reduces the system to two
// unknowns, which matters because deviation analyses sweep wDev over the
// whole strategy space. Solved points are memoized in the process-wide
// cache (see cache.go); a cached result is bit-identical to the direct
// solve.
func (m *Model) SolveDeviation(wDev, wBase, n int) (*Solution, error) {
	if n < 2 {
		return nil, fmt.Errorf("bianchi: deviation analysis needs n >= 2, got %d", n)
	}
	if wDev < 1 || wBase < 1 {
		return nil, fmt.Errorf("bianchi: CW values (%d, %d) must be >= 1", wDev, wBase)
	}
	if wDev == wBase {
		return m.SolveUniform(wBase, n)
	}
	key := m.deviationKey(wDev, wBase, n)
	if pt, ok := sharedCache.lookup(key); ok {
		return deviationSolution(wDev, wBase, n, pt), nil
	}
	sol, err := m.solveDeviationUncached(wDev, wBase, n)
	if err != nil {
		return nil, err
	}
	sharedCache.store(key, cachedPoint{
		tauDev:  sol.Tau[0],
		tauBase: sol.Tau[1],
		pDev:    sol.P[0],
		pBase:   sol.P[1],
		stats:   sol.SlotStats,
		iters:   sol.Iterations,
	})
	return sol, nil
}

// solveDeviationUncached performs the actual two-class solve;
// SolveDeviation wraps it with memoization. Callers guarantee n >= 2 and
// wDev != wBase.
func (m *Model) solveDeviationUncached(wDev, wBase, n int) (*Solution, error) {
	// Unknowns x = [τ_dev, τ_base].
	iterate := func(in, out []float64) {
		tDev := num.Clamp(in[0], 0, 1)
		tBase := num.Clamp(in[1], 0, 1)
		oBase := math.Pow(1-tBase, float64(n-2))
		pDev := 1 - oBase*(1-tBase) // all n−1 base nodes
		pBase := 1 - (1-tDev)*oBase // deviator + n−2 peers
		out[0] = m.Tau(wDev, num.Clamp(pDev, 0, 1))
		out[1] = m.Tau(wBase, num.Clamp(pBase, 0, 1))
	}
	x := []float64{m.Tau(wDev, 0), m.Tau(wBase, 0)}
	iters, err := num.FixedPoint(iterate, x, 0.5, num.Options{Tol: 1e-13, MaxIter: 2000})
	if err != nil {
		return nil, fmt.Errorf("bianchi: deviation solve (dev=%d, base=%d, n=%d): %w", wDev, wBase, n, err)
	}
	tDev, tBase := x[0], x[1]
	oBase := math.Pow(1-tBase, float64(n-2))
	pDev := num.Clamp(1-oBase*(1-tBase), 0, 1)
	pBase := num.Clamp(1-(1-tDev)*oBase, 0, 1)

	sol := &Solution{
		W:          append([]int{wDev}, uniformProfile(wBase, n-1)...),
		Tau:        append([]float64{tDev}, uniformFloats(tBase, n-1)...),
		P:          append([]float64{pDev}, uniformFloats(pBase, n-1)...),
		Iterations: iters,
	}
	sol.SlotStats = m.slotStats(sol.Tau)
	return sol, nil
}

// OptimalTauCondition evaluates the paper's Appendix-B first-order
// condition for the symmetric utility maximizer (with the e ≪ g
// approximation), corrected for the obvious misprint (+Tc, not −Tc):
//
//	Q(τ) = (1−τ)^n σ − [nτ + (1−τ)^n]·Tc + Tc
//
// Q is strictly decreasing with Q(0) = σ > 0 and Q(1) = −(n−1)Tc < 0, so
// it has a unique root τ_c* in (0, 1) — the transmission probability of
// the efficient NE.
func (m *Model) OptimalTauCondition(n int) func(float64) float64 {
	tm := m.Timing
	fn := float64(n)
	return func(tau float64) float64 {
		idle := math.Pow(1-tau, fn)
		return idle*tm.Slot - (fn*tau+idle)*tm.Tc + tm.Tc
	}
}

// OptimalTau solves Q(τ) = 0 for the unique maximizer τ_c* of the
// symmetric per-node utility in the e ≪ g limit (paper Lemma 3).
func (m *Model) OptimalTau(n int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("bianchi: OptimalTau needs n >= 2, got %d", n)
	}
	root, err := num.Brent(m.OptimalTauCondition(n), 1e-9, 1-1e-9, num.Options{Tol: 1e-14})
	if err != nil {
		return 0, fmt.Errorf("bianchi: OptimalTau(n=%d): %w", n, err)
	}
	return root, nil
}

// TauOfUniformW returns the solved τ for n nodes all at CW w; convenience
// wrapper used by monotonicity checks.
func (m *Model) TauOfUniformW(w, n int) (float64, error) {
	sol, err := m.SolveUniform(w, n)
	if err != nil {
		return 0, err
	}
	return sol.Tau[0], nil
}

func uniformProfile(w, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = w
	}
	return out
}

func uniformFloats(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

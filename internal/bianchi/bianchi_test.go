package bianchi

import (
	"math"
	"testing"
	"testing/quick"

	"selfishmac/internal/num"
	"selfishmac/internal/phy"
	"selfishmac/internal/rng"
)

func mustModel(t testing.TB, mode phy.AccessMode) *Model {
	t.Helper()
	m, err := New(phy.Default().MustTiming(mode), phy.Default().MaxBackoffStage)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewRejectsBadInputs(t *testing.T) {
	tm := phy.Default().MustTiming(phy.Basic)
	if _, err := New(tm, -1); err == nil {
		t.Error("negative stage accepted")
	}
	if _, err := New(tm, 17); err == nil {
		t.Error("stage 17 accepted")
	}
	bad := tm
	bad.Slot = 0
	if _, err := New(bad, 6); err == nil {
		t.Error("zero slot accepted")
	}
}

func TestTauAtZeroCollision(t *testing.T) {
	m := mustModel(t, phy.Basic)
	for _, w := range []int{1, 2, 16, 32, 1024} {
		want := 2 / float64(w+1)
		if got := m.Tau(w, 0); math.Abs(got-want) > 1e-15 {
			t.Errorf("Tau(%d, 0) = %g, want %g", w, got, want)
		}
	}
}

// Tau must equal Bianchi's closed form 2(1-2p)/((1-2p)(W+1)+pW(1-(2p)^m))
// away from p = 1/2, and stay finite and continuous at p = 1/2.
func TestTauMatchesClosedForm(t *testing.T) {
	m := mustModel(t, phy.Basic)
	mm := float64(m.MaxStage)
	closed := func(w int, p float64) float64 {
		fw := float64(w)
		return 2 * (1 - 2*p) / ((1-2*p)*(fw+1) + p*fw*(1-math.Pow(2*p, mm)))
	}
	for _, w := range []int{1, 8, 32, 128, 1024} {
		for _, p := range []float64{0.01, 0.1, 0.3, 0.49, 0.51, 0.7, 0.95} {
			got, want := m.Tau(w, p), closed(w, p)
			if math.Abs(got-want) > 1e-12*want {
				t.Errorf("Tau(%d, %g) = %.15g, closed form %.15g", w, p, got, want)
			}
		}
		// Continuity across the p = 1/2 singularity of the closed form.
		below, at, above := m.Tau(w, 0.5-1e-9), m.Tau(w, 0.5), m.Tau(w, 0.5+1e-9)
		if math.Abs(below-at) > 1e-6*at || math.Abs(above-at) > 1e-6*at {
			t.Errorf("Tau discontinuous at p=1/2 for w=%d: %g %g %g", w, below, at, above)
		}
	}
}

func TestTauMonotoneInWAndP(t *testing.T) {
	m := mustModel(t, phy.Basic)
	for _, p := range []float64{0, 0.2, 0.5, 0.8} {
		prev := math.Inf(1)
		for _, w := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
			tau := m.Tau(w, p)
			if tau >= prev {
				t.Fatalf("Tau not decreasing in W at p=%g: Tau(%d)=%g >= %g", p, w, tau, prev)
			}
			prev = tau
		}
	}
	for _, w := range []int{2, 16, 128} {
		prev := math.Inf(1)
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
			tau := m.Tau(w, p)
			if tau >= prev {
				t.Fatalf("Tau not decreasing in p at w=%d: Tau(p=%g)=%g >= %g", w, p, tau, prev)
			}
			prev = tau
		}
	}
}

func TestSolveUniformSelfConsistent(t *testing.T) {
	for _, mode := range []phy.AccessMode{phy.Basic, phy.RTSCTS} {
		m := mustModel(t, mode)
		for _, n := range []int{2, 5, 20, 50} {
			for _, w := range []int{2, 16, 76, 336, 879} {
				sol, err := m.SolveUniform(w, n)
				if err != nil {
					t.Fatalf("SolveUniform(%d, %d): %v", w, n, err)
				}
				tau, p := sol.Tau[0], sol.P[0]
				// Eq. (3): p = 1 - (1-tau)^(n-1).
				if want := 1 - math.Pow(1-tau, float64(n-1)); math.Abs(p-want) > 1e-10 {
					t.Errorf("mode=%v w=%d n=%d: p=%g inconsistent with tau (want %g)", mode, w, n, p, want)
				}
				// Eq. (2): tau = Tau(w, p).
				if want := m.Tau(w, p); math.Abs(tau-want) > 1e-10 {
					t.Errorf("mode=%v w=%d n=%d: tau=%g, eq2 gives %g", mode, w, n, tau, want)
				}
				if tau <= 0 || tau >= 1 {
					t.Errorf("tau=%g outside (0,1)", tau)
				}
			}
		}
	}
}

func TestSolveUniformSingleNode(t *testing.T) {
	m := mustModel(t, phy.Basic)
	sol, err := m.SolveUniform(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sol.P[0] != 0 {
		t.Errorf("single node collision probability = %g, want 0", sol.P[0])
	}
	if want := 2.0 / 33; math.Abs(sol.Tau[0]-want) > 1e-12 {
		t.Errorf("single node tau = %g, want %g", sol.Tau[0], want)
	}
	if sol.Ps != 1 {
		t.Errorf("single node Ps = %g, want 1", sol.Ps)
	}
}

func TestSolveHeterogeneousMatchesUniform(t *testing.T) {
	m := mustModel(t, phy.Basic)
	for _, n := range []int{2, 5, 10} {
		w := make([]int, n)
		for i := range w {
			w[i] = 64
		}
		het, err := m.Solve(w)
		if err != nil {
			t.Fatal(err)
		}
		uni, err := m.SolveUniform(64, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(het.Tau[i]-uni.Tau[i]) > 1e-9 {
				t.Errorf("n=%d node %d: heterogeneous tau %g != uniform %g", n, i, het.Tau[i], uni.Tau[i])
			}
		}
		if math.Abs(het.Throughput-uni.Throughput) > 1e-9 {
			t.Errorf("n=%d: throughput mismatch %g vs %g", n, het.Throughput, uni.Throughput)
		}
	}
}

func TestSolveHeterogeneousSelfConsistent(t *testing.T) {
	m := mustModel(t, phy.Basic)
	w := []int{8, 32, 32, 128, 500}
	sol, err := m.Solve(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		// Eq. (3) against the other nodes' taus.
		prod := 1.0
		for j := range w {
			if j != i {
				prod *= 1 - sol.Tau[j]
			}
		}
		if want := 1 - prod; math.Abs(sol.P[i]-want) > 1e-9 {
			t.Errorf("node %d: p=%g, eq3 gives %g", i, sol.P[i], want)
		}
		if want := m.Tau(w[i], sol.P[i]); math.Abs(sol.Tau[i]-want) > 1e-9 {
			t.Errorf("node %d: tau=%g, eq2 gives %g", i, sol.Tau[i], want)
		}
	}
	// Equal CW values must yield equal probabilities (nodes 1 and 2).
	if sol.Tau[1] != sol.Tau[2] || sol.P[1] != sol.P[2] {
		t.Errorf("symmetric nodes solved asymmetrically: %v %v", sol.Tau, sol.P)
	}
}

// Lemma 1 (paper): W_i > W_j  =>  p_i > p_j, tau_i < tau_j, and lower
// per-slot success rate. Checked as a property over random profiles.
func TestLemma1OrderingProperty(t *testing.T) {
	m := mustModel(t, phy.Basic)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(6)
		w := make([]int, n)
		for i := range w {
			w[i] = 1 + r.Intn(500)
		}
		sol, err := m.Solve(w)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if w[i] > w[j] {
					if !(sol.P[i] > sol.P[j]-1e-12) || !(sol.Tau[i] < sol.Tau[j]+1e-12) {
						return false
					}
					if !(sol.SuccessRate(i) < sol.SuccessRate(j)+1e-12) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDeviationMatchesGeneral(t *testing.T) {
	m := mustModel(t, phy.RTSCTS)
	cases := []struct{ wDev, wBase, n int }{
		{8, 64, 5},
		{200, 48, 20},
		{48, 48, 20}, // degenerate: falls back to uniform
		{1, 300, 3},
	}
	for _, tc := range cases {
		dev, err := m.SolveDeviation(tc.wDev, tc.wBase, tc.n)
		if err != nil {
			t.Fatalf("SolveDeviation(%+v): %v", tc, err)
		}
		w := make([]int, tc.n)
		w[0] = tc.wDev
		for i := 1; i < tc.n; i++ {
			w[i] = tc.wBase
		}
		gen, err := m.Solve(w)
		if err != nil {
			t.Fatalf("Solve(%v): %v", w, err)
		}
		if math.Abs(dev.Tau[0]-gen.Tau[0]) > 1e-8 || math.Abs(dev.Tau[1]-gen.Tau[1]) > 1e-8 {
			t.Errorf("%+v: two-class tau (%g, %g) != general (%g, %g)",
				tc, dev.Tau[0], dev.Tau[1], gen.Tau[0], gen.Tau[1])
		}
		if math.Abs(dev.Tslot-gen.Tslot) > 1e-6 {
			t.Errorf("%+v: Tslot %g != %g", tc, dev.Tslot, gen.Tslot)
		}
	}
}

func TestSolveDeviationErrors(t *testing.T) {
	m := mustModel(t, phy.Basic)
	if _, err := m.SolveDeviation(8, 8, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := m.SolveDeviation(0, 8, 5); err == nil {
		t.Error("CW 0 accepted")
	}
}

func TestSolveRejectsBadProfiles(t *testing.T) {
	m := mustModel(t, phy.Basic)
	if _, err := m.Solve(nil); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := m.Solve([]int{4, 0}); err == nil {
		t.Error("CW 0 accepted")
	}
	if _, err := m.SolveUniform(16, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestSlotStatsDecomposition(t *testing.T) {
	m := mustModel(t, phy.Basic)
	sol, err := m.SolveUniform(76, 5)
	if err != nil {
		t.Fatal(err)
	}
	st := sol.SlotStats
	if st.Ptr <= 0 || st.Ptr >= 1 {
		t.Errorf("Ptr = %g outside (0,1)", st.Ptr)
	}
	if st.Ps <= 0 || st.Ps > 1 {
		t.Errorf("Ps = %g outside (0,1]", st.Ps)
	}
	if math.Abs(st.PsuccSlot-st.Ps*st.Ptr) > 1e-12 {
		t.Errorf("PsuccSlot %g != Ps*Ptr %g", st.PsuccSlot, st.Ps*st.Ptr)
	}
	// Tslot must be a convex combination of sigma, Ts, Tc.
	tm := m.Timing
	lo := math.Min(tm.Slot, math.Min(tm.Ts, tm.Tc))
	hi := math.Max(tm.Slot, math.Max(tm.Ts, tm.Tc))
	if st.Tslot < lo || st.Tslot > hi {
		t.Errorf("Tslot = %g outside [%g, %g]", st.Tslot, lo, hi)
	}
	if st.Throughput <= 0 || st.Throughput >= 1 {
		t.Errorf("throughput = %g outside (0,1)", st.Throughput)
	}
	// Manual recomputation.
	manual := st.PsuccSlot * tm.Payload / st.Tslot
	if math.Abs(st.Throughput-manual) > 1e-12 {
		t.Errorf("throughput %g != manual %g", st.Throughput, manual)
	}
}

func TestExclProducts(t *testing.T) {
	tau := []float64{0.1, 0.5, 0.25, 0.9}
	excl := make([]float64, len(tau))
	exclProducts(tau, excl)
	for i := range tau {
		want := 1.0
		for j := range tau {
			if j != i {
				want *= 1 - tau[j]
			}
		}
		if math.Abs(excl[i]-want) > 1e-14 {
			t.Errorf("excl[%d] = %g, want %g", i, excl[i], want)
		}
	}
}

func TestExclProductsWithSaturatedNode(t *testing.T) {
	// tau = 1 must not poison other entries with division by zero.
	tau := []float64{1, 0.3, 0.2}
	excl := make([]float64, 3)
	exclProducts(tau, excl)
	if math.Abs(excl[0]-0.7*0.8) > 1e-14 {
		t.Errorf("excl[0] = %g, want 0.56", excl[0])
	}
	if excl[1] != 0 || excl[2] != 0 {
		t.Errorf("excl for peers of a saturated node = %v, want zeros", excl[1:])
	}
}

func TestOptimalTauProperties(t *testing.T) {
	for _, mode := range []phy.AccessMode{phy.Basic, phy.RTSCTS} {
		m := mustModel(t, mode)
		prev := 1.0
		for _, n := range []int{2, 5, 10, 20, 50, 100} {
			tau, err := m.OptimalTau(n)
			if err != nil {
				t.Fatalf("OptimalTau(%d): %v", n, err)
			}
			if tau <= 0 || tau >= 1 {
				t.Fatalf("OptimalTau(%d) = %g outside (0,1)", n, tau)
			}
			if tau >= prev {
				t.Errorf("mode=%v: optimal tau not decreasing in n: tau(%d)=%g >= %g", mode, n, tau, prev)
			}
			prev = tau
			// Verify the root: Q changes sign around it.
			q := m.OptimalTauCondition(n)
			if q(tau*0.9) <= 0 || q(math.Min(tau*1.1, 1-1e-9)) >= 0 {
				t.Errorf("mode=%v n=%d: Q does not change sign around root %g", mode, n, tau)
			}
		}
	}
	m := mustModel(t, phy.Basic)
	if _, err := m.OptimalTau(1); err == nil {
		t.Error("OptimalTau(1) accepted")
	}
}

// The Q-condition root must agree with a direct numerical maximization of
// the per-node payoff rate tau*(1-tau)^(n-1)/Tslot (the e<<g objective).
func TestOptimalTauMatchesDirectMaximization(t *testing.T) {
	for _, mode := range []phy.AccessMode{phy.Basic, phy.RTSCTS} {
		m := mustModel(t, mode)
		tm := m.Timing
		for _, n := range []int{5, 20, 50} {
			fn := float64(n)
			payoff := func(tau float64) float64 {
				idle := math.Pow(1-tau, fn)
				psucc := fn * tau * math.Pow(1-tau, fn-1)
				ptr := 1 - idle
				tslot := idle*tm.Slot + psucc*tm.Ts + (ptr-psucc)*tm.Tc
				return tau * math.Pow(1-tau, fn-1) / tslot
			}
			direct, err := num.GoldenMax(payoff, 1e-6, 0.9, num.Options{Tol: 1e-12})
			if err != nil {
				t.Fatal(err)
			}
			analytic, err := m.OptimalTau(n)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(direct-analytic) > 1e-5 {
				t.Errorf("mode=%v n=%d: direct argmax %g != Q-root %g", mode, n, direct, analytic)
			}
		}
	}
}

// Sanity anchor: the efficient-NE taus implied by the paper's Table II
// basic-case CW values must be near the Q-condition root.
func TestPaperTable2Consistency(t *testing.T) {
	m := mustModel(t, phy.Basic)
	cases := []struct {
		n  int
		wc int // paper's Wc*
	}{
		{5, 76}, {20, 336}, {50, 879},
	}
	for _, tc := range cases {
		sol, err := m.SolveUniform(tc.wc, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := m.OptimalTau(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(sol.Tau[0]-opt) / opt; rel > 0.10 {
			t.Errorf("n=%d: tau at paper Wc*=%d is %g, Q-root %g (rel err %.2f)",
				tc.n, tc.wc, sol.Tau[0], opt, rel)
		}
	}
}

func TestThroughputPeaksNearOptimalTau(t *testing.T) {
	m := mustModel(t, phy.Basic)
	n := 20
	best, _, err := num.ArgmaxIntCoarse(func(w int) float64 {
		sol, err := m.SolveUniform(w, n)
		if err != nil {
			return math.Inf(-1)
		}
		return sol.Throughput
	}, 1, 2000, 25)
	if err != nil {
		t.Fatal(err)
	}
	sol, _ := m.SolveUniform(best, n)
	opt, _ := m.OptimalTau(n)
	if math.Abs(sol.Tau[0]-opt)/opt > 0.05 {
		t.Errorf("throughput-max CW %d has tau %g, expected near %g", best, sol.Tau[0], opt)
	}
}

func BenchmarkSolveUniform(b *testing.B) {
	m := mustModel(b, phy.Basic)
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveUniform(336, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveHeterogeneous50(b *testing.B) {
	m := mustModel(b, phy.Basic)
	r := rng.New(1)
	w := make([]int, 50)
	for i := range w {
		w[i] = 1 + r.Intn(1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveDeviation(b *testing.B) {
	m := mustModel(b, phy.Basic)
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveDeviation(100, 336, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMeanAccessDelay(t *testing.T) {
	m := mustModel(t, phy.Basic)
	sol, err := m.SolveUniform(76, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := sol.MeanAccessDelay(0)
	// Sanity: with 5 nodes sharing a ~0.83-throughput channel and
	// ~9 ms per packet exchange, per-node inter-success time is ~55 ms.
	if d < 20e3 || d > 200e3 {
		t.Fatalf("delay = %g us, implausible", d)
	}
	// Cross-check against the definition.
	want := sol.Tslot / (sol.Tau[0] * (1 - sol.P[0]))
	if math.Abs(d-want) > 1e-9 {
		t.Fatalf("delay %g != definition %g", d, want)
	}
	// Delay grows with population at the respective NEs.
	sol20, err := m.SolveUniform(336, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sol20.MeanAccessDelay(0) <= d {
		t.Errorf("delay should grow with n: %g <= %g", sol20.MeanAccessDelay(0), d)
	}
	// Degenerate: a zero success rate yields infinite delay.
	degenerate := &Solution{Tau: []float64{0}, P: []float64{0}}
	degenerate.Tslot = 100
	if !math.IsInf(degenerate.MeanAccessDelay(0), 1) {
		t.Error("zero success rate should give +Inf delay")
	}
}

// differential_test.go pins the replication layer against hand-written
// serial loops over the real simulators: a fixed-R plan must produce
// byte-identical moments to running R replications one by one with
// per-index derived seeds and folding them into a plain Welford
// accumulator, at workers 1 and 4. Because the replicators are the
// reusable engines (macsim.Engine, multihop.Simulator), this doubles as
// an end-to-end check that the engine lifecycle equals the one-shot
// entry points under replicate's scheduling.
//
// The test lives in an external test package: internal/multihop imports
// replicate, so an in-package test importing multihop would be a cycle.
package replicate_test

import (
	"testing"

	"selfishmac/internal/macsim"
	"selfishmac/internal/multihop"
	"selfishmac/internal/phy"
	"selfishmac/internal/replicate"
	"selfishmac/internal/rng"
	"selfishmac/internal/stats"
	"selfishmac/internal/topology"
)

const diffReps = 6

// serialMoments is the comparator: R serial replications folded with
// plain Welford.Add in index order — exactly what a fixed-R plan's single
// round computes before merging its (only) block.
func serialMoments(t *testing.T, baseSeed uint64, stream string, metrics int,
	run func(seed uint64, out []float64) error) []stats.Welford {
	t.Helper()
	moments := make([]stats.Welford, metrics)
	out := make([]float64, metrics)
	for rep := 0; rep < diffReps; rep++ {
		if err := run(rng.DeriveSeed(baseSeed, stream, rep), out); err != nil {
			t.Fatal(err)
		}
		for m := range moments {
			moments[m].Add(out[m])
		}
	}
	return moments
}

func requireIdentical(t *testing.T, workers int, got *replicate.Result, want []stats.Welford) {
	t.Helper()
	if got.Reps != diffReps {
		t.Fatalf("workers %d: ran %d reps, want %d", workers, got.Reps, diffReps)
	}
	for m := range want {
		if got.Moments[m] != want[m] {
			t.Fatalf("workers %d metric %d: replicate diverged from the serial loop:\nreplicate: %+v\nserial:    %+v",
				workers, m, got.Summary(m), want[m].Snapshot())
		}
	}
}

// TestDifferentialReplicateMacsim: fixed-R over reusable macsim engines
// vs a serial loop of one-shot macsim.Run calls.
func TestDifferentialReplicateMacsim(t *testing.T) {
	p := phy.Default()
	cfg := macsim.Config{
		Timing:   p.MustTiming(phy.Basic),
		MaxStage: p.MaxBackoffStage,
		CW:       []int{336, 128, 336, 64, 336, 336, 200, 336, 16, 336},
		Duration: 1e6,
		Gain:     1,
		Cost:     0.01,
	}
	metrics := len(cfg.CW)
	const stream = "diff.macsim"
	want := serialMoments(t, 42, stream, metrics, func(seed uint64, out []float64) error {
		ref := cfg
		ref.Seed = seed
		res, err := macsim.Run(ref)
		if err != nil {
			return err
		}
		for i := range out {
			out[i] = res.Nodes[i].PayoffRate
		}
		return nil
	})
	for _, workers := range []int{1, 4} {
		got, err := replicate.Run(
			replicate.FixedPlan(42, stream, metrics, diffReps, workers),
			func() (replicate.Replicator, error) {
				eng, err := macsim.NewEngine(cfg)
				if err != nil {
					return nil, err
				}
				return macsimReplicator{eng}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, workers, got, want)
	}
}

type macsimReplicator struct{ eng *macsim.Engine }

func (r macsimReplicator) Replicate(seed uint64, out []float64) error {
	r.eng.Reset(seed)
	res := r.eng.Run()
	for i := range out {
		out[i] = res.Nodes[i].PayoffRate
	}
	return nil
}

// TestDifferentialReplicateMultihop: fixed-R over reusable spatial
// simulators vs a serial loop of one-shot multihop.Simulate calls.
func TestDifferentialReplicateMultihop(t *testing.T) {
	nw, err := topology.New(topology.Config{
		N: 30, Width: 800, Height: 800, Range: 220, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := multihop.SimConfig{
		Timing:   phy.Default().MustTiming(phy.RTSCTS),
		MaxStage: phy.Default().MaxBackoffStage,
		CW:       make([]int, 30),
		Duration: 5e5,
		Gain:     1,
		Cost:     0.01,
	}
	for i := range cfg.CW {
		cfg.CW[i] = 26 + 4*(i%5)
	}
	metrics := nw.N() + 1 // per-node payoff rates plus the global rate
	const stream = "diff.multihop"
	want := serialMoments(t, 7, stream, metrics, func(seed uint64, out []float64) error {
		ref := cfg
		ref.Seed = seed
		res, err := multihop.Simulate(nw, ref)
		if err != nil {
			return err
		}
		for i := range res.Nodes {
			out[i] = res.Nodes[i].PayoffRate
		}
		out[len(res.Nodes)] = res.GlobalPayoffRate()
		return nil
	})
	for _, workers := range []int{1, 4} {
		got, err := replicate.Run(
			replicate.FixedPlan(7, stream, metrics, diffReps, workers),
			func() (replicate.Replicator, error) {
				sim, err := multihop.NewSimulator(nw, cfg)
				if err != nil {
					return nil, err
				}
				return multihopReplicator{sim}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, workers, got, want)
	}
}

type multihopReplicator struct{ sim *multihop.Simulator }

func (r multihopReplicator) Replicate(seed uint64, out []float64) error {
	r.sim.Reset(seed)
	res, err := r.sim.Run()
	if err != nil {
		return err
	}
	for i := range res.Nodes {
		out[i] = res.Nodes[i].PayoffRate
	}
	out[len(res.Nodes)] = res.GlobalPayoffRate()
	return nil
}

package replicate

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"selfishmac/internal/rng"
)

// noisyMetric is a deterministic pseudo-measurement: mean 10 plus
// seed-derived noise, so replications are reproducible but distinct.
func noisyMetric(seed uint64, spread float64) float64 {
	src := rng.New(seed)
	return 10 + spread*(src.Float64()-0.5)
}

func twoMetricFunc(spread float64) Func {
	return func(seed uint64, out []float64) error {
		out[0] = noisyMetric(seed, spread)
		out[1] = -2 * noisyMetric(seed^0xabcd, spread)
		return nil
	}
}

// TestWorkerCountBitIdentity is the controller's core contract: the full
// Result — reps, rounds, convergence flag and every merged moment — must
// be bit-identical at workers 1, 2, 4 and 8, for fixed and adaptive plans.
func TestWorkerCountBitIdentity(t *testing.T) {
	plans := []Plan{
		FixedPlan(3, "t.fixed", 2, 17, 0),
		{BaseSeed: 3, Stream: "t.adapt", Metrics: 2, Target: 0,
			RelTolerance: 0.01, MinReps: 3, MaxReps: 40, BatchSize: 4},
		{BaseSeed: 9, Stream: "t.abs", Metrics: 2, Target: 1,
			Tolerance: 0.05, MinReps: 2, MaxReps: 64, BatchSize: 5},
	}
	for pi, base := range plans {
		var want *Result
		for _, workers := range []int{1, 2, 4, 8} {
			p := base
			p.Workers = workers
			got, err := RunFunc(p, twoMetricFunc(4))
			if err != nil {
				t.Fatalf("plan %d workers %d: %v", pi, workers, err)
			}
			if want == nil {
				want = got
				continue
			}
			if got.Reps != want.Reps || got.Rounds != want.Rounds || got.Converged != want.Converged {
				t.Fatalf("plan %d workers %d: schedule diverged: reps %d/%d rounds %d/%d converged %v/%v",
					pi, workers, got.Reps, want.Reps, got.Rounds, want.Rounds, got.Converged, want.Converged)
			}
			for m := range got.Moments {
				if got.Moments[m] != want.Moments[m] {
					t.Fatalf("plan %d workers %d metric %d: moments diverged: %+v vs %+v",
						pi, workers, m, got.Summary(m), want.Summary(m))
				}
			}
		}
	}
}

// A fixed-R plan runs exactly MaxReps replications in one round and never
// reports convergence.
func TestFixedPlanRunsExactly(t *testing.T) {
	var calls atomic.Int64
	res, err := RunFunc(FixedPlan(1, "t.count", 1, 13, 4), func(seed uint64, out []float64) error {
		calls.Add(1)
		out[0] = noisyMetric(seed, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 13 || calls.Load() != 13 || res.Rounds != 1 || res.Converged {
		t.Fatalf("fixed plan ran %d reps (%d calls, %d rounds, converged=%v), want exactly 13 in one round",
			res.Reps, calls.Load(), res.Rounds, res.Converged)
	}
	if res.Moments[0].N() != 13 {
		t.Fatalf("moments folded %d samples, want 13", res.Moments[0].N())
	}
}

// Adaptive stopping: low-variance measurements stop at the first decision
// point; high-variance ones run to MaxReps without convergence; and the
// tolerance is actually honored at the stopping point.
func TestAdaptiveStopping(t *testing.T) {
	base := Plan{BaseSeed: 5, Stream: "t.stop", Metrics: 1, Target: 0,
		RelTolerance: 0.02, MinReps: 3, MaxReps: 30, BatchSize: 4, Workers: 2}

	quiet, err := RunFunc(base, func(seed uint64, out []float64) error {
		out[0] = noisyMetric(seed, 0.01) // CI≈1e-3 ≪ 2% of 10
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !quiet.Converged || quiet.Reps != base.MinReps {
		t.Fatalf("quiet metric: reps %d converged %v, want stop at MinReps=%d",
			quiet.Reps, quiet.Converged, base.MinReps)
	}
	if ci := quiet.CI95(0); ci > base.RelTolerance*quiet.Mean(0) {
		t.Fatalf("reported convergence with CI %g above tolerance", ci)
	}

	loud, err := RunFunc(base, func(seed uint64, out []float64) error {
		out[0] = noisyMetric(seed, 50) // CI stays way above 2% of 10
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if loud.Converged || loud.Reps != base.MaxReps {
		t.Fatalf("loud metric: reps %d converged %v, want MaxReps=%d without convergence",
			loud.Reps, loud.Converged, base.MaxReps)
	}

	// Intermediate variance must stop strictly between the bounds at a
	// round boundary (MinReps + k*BatchSize).
	mid, err := RunFunc(base, func(seed uint64, out []float64) error {
		out[0] = noisyMetric(seed, 1.2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mid.Converged || mid.Reps <= base.MinReps || mid.Reps >= base.MaxReps {
		t.Fatalf("mid metric: reps %d converged %v, want a stop strictly inside (%d, %d)",
			mid.Reps, mid.Converged, base.MinReps, base.MaxReps)
	}
	if off := (mid.Reps - base.MinReps) % base.BatchSize; off != 0 {
		t.Fatalf("stop at %d reps is not a round boundary (MinReps=%d, BatchSize=%d)",
			mid.Reps, base.MinReps, base.BatchSize)
	}
}

// The lowest-index error wins, deterministically, at any worker count.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := RunFunc(FixedPlan(1, "t.err", 1, 10, workers), func(seed uint64, out []float64) error {
			// Replications 3 and 7 fail (identified via their seeds).
			if seed == rng.DeriveSeed(1, "t.err", 3) || seed == rng.DeriveSeed(1, "t.err", 7) {
				return boom
			}
			out[0] = 1
			return nil
		})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers %d: error not propagated: %v", workers, err)
		}
		if !strings.Contains(err.Error(), "replication 3") {
			t.Fatalf("workers %d: expected lowest-index error (replication 3), got %v", workers, err)
		}
	}
}

// Each worker must get its own Replicator, built exactly once.
func TestFactoryPerWorker(t *testing.T) {
	var built atomic.Int64
	p := FixedPlan(1, "t.factory", 1, 20, 4)
	_, err := Run(p, func() (Replicator, error) {
		built.Add(1)
		return Func(func(seed uint64, out []float64) error {
			out[0] = noisyMetric(seed, 1)
			return nil
		}), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if built.Load() != 4 {
		t.Fatalf("factory built %d replicators, want 4 (one per worker)", built.Load())
	}
	factoryErr := errors.New("no engine")
	if _, err := Run(p, func() (Replicator, error) { return nil, factoryErr }); !errors.Is(err, factoryErr) {
		t.Fatalf("factory error not propagated: %v", err)
	}
}

// Plan validation rejects unusable shapes.
func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{Metrics: 0, MaxReps: 3},
		{Metrics: 2, Target: 2, MaxReps: 3},
		{Metrics: 1, MaxReps: 0},
		{Metrics: 1, MaxReps: 3, MinReps: -1},
		{Metrics: 1, MaxReps: 3, Tolerance: -0.1},
	}
	for i, p := range bad {
		if _, err := RunFunc(p, func(uint64, []float64) error { return nil }); err == nil {
			t.Errorf("plan %d accepted: %+v", i, p)
		}
	}
	// MaxReps=1 with a tolerance: no CI is ever computable; the plan must
	// still terminate after its single replication.
	res, err := RunFunc(Plan{Metrics: 1, MaxReps: 1, RelTolerance: 0.1, Stream: "t.one"},
		func(seed uint64, out []float64) error { out[0] = 1; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 1 || res.Converged {
		t.Fatalf("degenerate adaptive plan: reps %d converged %v, want 1 rep, no convergence", res.Reps, res.Converged)
	}
}

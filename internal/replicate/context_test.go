package replicate

import (
	"context"
	"errors"
	"strings"
	"testing"

	"selfishmac/internal/rng"
)

// TestCancelPrefixBitIdentical is the cancellation-determinism contract:
// cancelling an adaptive run after round k returns exactly the moments an
// uncancelled run had after its k-th round — at every worker count.
func TestCancelPrefixBitIdentical(t *testing.T) {
	base := Plan{BaseSeed: 7, Stream: "t.cancel", Metrics: 2, Target: 0,
		RelTolerance: 1e-9, MinReps: 3, MaxReps: 60, BatchSize: 4}

	// Reference: run to exhaustion, snapshotting the fold after each round.
	var perRound []RoundStatus
	ref := base
	ref.Workers = 1
	ref.OnRound = func(st RoundStatus) { perRound = append(perRound, st) }
	full, err := RunFunc(ref, twoMetricFunc(6))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if full.Converged || full.Rounds < 3 {
		t.Fatalf("reference run too short for the test: rounds=%d converged=%v", full.Rounds, full.Converged)
	}

	for _, workers := range []int{1, 4} {
		for _, stopAfter := range []int{1, 2, full.Rounds - 1} {
			ctx, cancel := context.WithCancel(context.Background())
			p := base
			p.Workers = workers
			p.OnRound = func(st RoundStatus) {
				if st.Round == stopAfter {
					cancel()
				}
			}
			res, err := RunFuncContext(ctx, p, twoMetricFunc(6))
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d stopAfter=%d: err = %v, want context.Canceled", workers, stopAfter, err)
			}
			if res == nil || !res.Cancelled {
				t.Fatalf("workers=%d stopAfter=%d: expected a Cancelled prefix result, got %+v", workers, stopAfter, res)
			}
			if res.Rounds != stopAfter {
				t.Fatalf("workers=%d stopAfter=%d: folded %d rounds", workers, stopAfter, res.Rounds)
			}
			want := perRound[stopAfter-1]
			if res.Reps != want.Reps {
				t.Fatalf("workers=%d stopAfter=%d: reps %d, want %d", workers, stopAfter, res.Reps, want.Reps)
			}
			for m := range res.Moments {
				if got := res.Moments[m].Snapshot(); got != want.Summaries[m] {
					t.Fatalf("workers=%d stopAfter=%d metric %d: prefix diverged: %+v vs %+v",
						workers, stopAfter, m, got, want.Summaries[m])
				}
			}
		}
	}
}

// TestCancelBeforeStart: a context that is already dead yields an empty
// Cancelled result without ever building a worker.
func TestCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	built := false
	res, err := RunContext(ctx, FixedPlan(1, "t.dead", 1, 4, 1), func() (Replicator, error) {
		built = true
		return twoMetricFunc(1), nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if built {
		t.Fatal("factory ran under a dead context")
	}
	if res == nil || !res.Cancelled || res.Reps != 0 || res.Rounds != 0 {
		t.Fatalf("expected an empty Cancelled result, got %+v", res)
	}
}

// flakyFunc fails whenever the low bits of the seed land in the failure
// band; because retry seeds are derived deterministically, which attempts
// fail is a pure function of the plan.
func flakyFunc(failMod uint64) Func {
	return func(seed uint64, out []float64) error {
		if seed%failMod == 0 {
			return errors.New("transient failure")
		}
		out[0] = noisyMetric(seed, 3)
		return nil
	}
}

// TestRetryRecoversDeterministically: with a retry budget, a plan whose
// primary seeds sometimes fail completes, reports the retries, and stays
// bit-identical across worker counts.
func TestRetryRecoversDeterministically(t *testing.T) {
	// Find a modulus that fails at least one primary seed of the plan but
	// no retry chain deeper than the budget.
	const reps = 24
	base := Plan{BaseSeed: 11, Stream: "t.retry", Metrics: 1,
		MinReps: reps, MaxReps: reps, MaxErrRetries: 3}
	failMod := uint64(0)
search:
	for mod := uint64(3); mod < 64; mod++ {
		primaryFails := 0
		for i := 0; i < reps; i++ {
			seed := rng.DeriveSeed(base.BaseSeed, base.Stream, i)
			depth := 0
			for seed%mod == 0 {
				depth++
				if depth > base.MaxErrRetries {
					continue search
				}
				seed = rng.DeriveSeed(seed, "replicate.retry", depth)
			}
			if depth > 0 {
				primaryFails++
			}
		}
		if primaryFails > 0 {
			failMod = mod
			break
		}
	}
	if failMod == 0 {
		t.Fatal("no suitable failure modulus found")
	}

	var want *Result
	for _, workers := range []int{1, 4} {
		p := base
		p.Workers = workers
		got, err := RunFunc(p, flakyFunc(failMod))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Retried == 0 {
			t.Fatalf("workers=%d: expected retries, got none", workers)
		}
		if want == nil {
			want = got
			continue
		}
		if got.Retried != want.Retried || got.Moments[0] != want.Moments[0] {
			t.Fatalf("workers=%d: retry path diverged: retried %d/%d, moments %+v vs %+v",
				workers, got.Retried, want.Retried, got.Summary(0), want.Summary(0))
		}
	}
}

// TestRetryBudgetExhausted: a replication that fails on the primary seed
// and every retry seed surfaces the lowest-index error, mentioning the
// spent budget.
func TestRetryBudgetExhausted(t *testing.T) {
	p := Plan{BaseSeed: 1, Stream: "t.budget", Metrics: 1,
		MinReps: 4, MaxReps: 4, Workers: 1, MaxErrRetries: 2}
	attempts := 0
	_, err := RunFunc(p, func(seed uint64, out []float64) error {
		attempts++
		return errors.New("hard failure")
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "replication 0") || !strings.Contains(err.Error(), "after 2 retries") {
		t.Fatalf("error %q does not name the replication and budget", err)
	}
	// Errors surface only after the round completes, so every replication
	// in the round spends its full budget first.
	if want := p.MaxReps * (1 + p.MaxErrRetries); attempts != want {
		t.Fatalf("round ran %d attempts, want %d", attempts, want)
	}
}

// TestOnRoundStreamsCISoFar: the per-round callback reports cumulative
// reps and a CI that matches the final fold on the last round.
func TestOnRoundStreamsCISoFar(t *testing.T) {
	var got []RoundStatus
	p := Plan{BaseSeed: 5, Stream: "t.progress", Metrics: 2, Target: 0,
		RelTolerance: 0.02, MinReps: 2, MaxReps: 40, BatchSize: 3, Workers: 2,
		OnRound: func(st RoundStatus) { got = append(got, st) }}
	res, err := RunFunc(p, twoMetricFunc(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != res.Rounds {
		t.Fatalf("%d progress callbacks for %d rounds", len(got), res.Rounds)
	}
	prev := 0
	for i, st := range got {
		if st.Round != i+1 || st.Reps <= prev || len(st.Summaries) != 2 {
			t.Fatalf("round %d: malformed status %+v", i, st)
		}
		prev = st.Reps
	}
	last := got[len(got)-1]
	if last.Reps != res.Reps || last.Summaries[0] != res.Summary(0) {
		t.Fatalf("final status %+v does not match result %+v", last, res.Summary(0))
	}
}

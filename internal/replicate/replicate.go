// Package replicate is the deterministic parallel replication controller
// behind the simulation-backed experiments: it runs independent
// replications of a simulator configuration on per-index derived seeds,
// merges per-replica moments in index order, and — when a tolerance is
// configured — adaptively stops once the 95% confidence half-width of a
// target metric is small enough.
//
// Three properties make it safe to drop into the experiment harness:
//
//   - Bit-identical at any worker count. Replication i always runs on
//     seed rng.DeriveSeed(BaseSeed, Stream, i) and writes only its own
//     metric slots; moments are folded serially in index order after each
//     round. Workers change wall-clock only (the forEachIndex contract).
//
//   - Deterministic adaptive stopping. The schedule is defined in rounds
//     (batch → merge → decide): the first round runs MinReps
//     replications, each later round BatchSize more, and the stopping
//     test runs only at round boundaries on the index-ordered fold. The
//     stopping point is therefore a pure function of the plan, never of
//     scheduling races.
//
//   - Engine reuse. Each worker owns one Replicator, built once by the
//     factory and reset per replication, so reusable engines
//     (macsim.Engine, multihop.Simulator) amortize their setup across
//     the whole batch at ~0 allocations per replication.
//
// Cancellation (RunContext) and error retries (Plan.MaxErrRetries) keep
// those properties: cancellation is decided only at round boundaries, so
// a cancelled run returns the bit-identical prefix of the uncancelled
// one, and retry seeds are derived per (replication, attempt), so
// recovery is schedule-independent too.
package replicate

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"selfishmac/internal/rng"
	"selfishmac/internal/stats"
)

// Replicator runs one replication on the given seed and writes one value
// per metric into out (len(out) == Plan.Metrics). Implementations are
// typically reusable engines: Replicate resets them in place, so a single
// Replicator must not be shared between goroutines — the controller
// builds one per worker.
type Replicator interface {
	Replicate(seed uint64, out []float64) error
}

// Func adapts a stateless function to the Replicator interface.
type Func func(seed uint64, out []float64) error

// Replicate implements Replicator.
func (f Func) Replicate(seed uint64, out []float64) error { return f(seed, out) }

// Plan describes one replication batch.
type Plan struct {
	// BaseSeed and Stream scope the per-replication seed stream:
	// replication i runs on rng.DeriveSeed(BaseSeed, Stream, i).
	BaseSeed uint64
	Stream   string
	// Metrics is the number of values each replication produces.
	Metrics int
	// Target indexes the metric whose confidence interval drives adaptive
	// stopping (ignored for fixed-R plans).
	Target int
	// Tolerance, when positive, stops the batch once the 95% CI
	// half-width of the target metric is <= Tolerance (absolute).
	Tolerance float64
	// RelTolerance, when positive, stops once the half-width is
	// <= RelTolerance * |mean|. Either tolerance satisfied stops the run.
	RelTolerance float64
	// MinReps and MaxReps bound the replication count. With no tolerance
	// configured the plan is fixed-R: exactly MaxReps replications run.
	// Adaptive plans never decide on fewer than max(MinReps, 2) samples.
	MinReps int
	MaxReps int
	// BatchSize is the number of replications added per adaptive round
	// after the first (which runs MinReps). 0 defaults to MinReps.
	BatchSize int
	// Workers bounds the goroutines running replications (0 or negative
	// means GOMAXPROCS; 1 forces the serial path).
	Workers int
	// MaxErrRetries is the per-replication error budget: when a
	// replication fails, it is re-run on a derived retry seed
	// (rng.DeriveSeed(seed, "replicate.retry", attempt)) up to
	// MaxErrRetries times before the error is surfaced. Retries are
	// deterministic — the attempt-k seed of replication i is a pure
	// function of the plan — so the merged result stays bit-identical at
	// every worker count even when some replications recover. 0 keeps
	// the historical fail-fast behavior.
	MaxErrRetries int
	// OnRound, when non-nil, is called after each round's fold with a
	// progress snapshot. Calls happen serially on the controller
	// goroutine, in round order, after errors are checked and before the
	// stopping decision — so a job service can stream CI-so-far lines
	// without perturbing the schedule. The callback must not retain the
	// Summaries slice past the call.
	OnRound func(RoundStatus)
}

// RoundStatus is the per-round progress snapshot passed to Plan.OnRound.
type RoundStatus struct {
	// Round is the 1-based round just folded; Reps the cumulative
	// replications completed.
	Round int
	Reps  int
	// Summaries snapshots every metric's moments after the fold, in
	// metric order (mean, CI95, min/max, n).
	Summaries []stats.Summary
}

// adaptive reports whether any stopping tolerance is configured.
func (p Plan) adaptive() bool { return p.Tolerance > 0 || p.RelTolerance > 0 }

// normalized validates the plan and fills defaults.
func (p Plan) normalized() (Plan, error) {
	var errs []error
	if p.Metrics < 1 {
		errs = append(errs, fmt.Errorf("Metrics = %d must be >= 1", p.Metrics))
	}
	if p.Target < 0 || p.Target >= p.Metrics {
		errs = append(errs, fmt.Errorf("Target = %d outside [0, %d)", p.Target, p.Metrics))
	}
	if p.MaxReps < 1 {
		errs = append(errs, fmt.Errorf("MaxReps = %d must be >= 1", p.MaxReps))
	}
	if p.MinReps < 0 || p.Tolerance < 0 || p.RelTolerance < 0 || p.BatchSize < 0 || p.MaxErrRetries < 0 {
		errs = append(errs, errors.New("negative MinReps/Tolerance/RelTolerance/BatchSize/MaxErrRetries"))
	}
	if len(errs) > 0 {
		return p, errors.Join(errs...)
	}
	if p.adaptive() {
		if p.MinReps < 2 {
			p.MinReps = 2 // a CI needs at least two samples
		}
	} else {
		p.MinReps = p.MaxReps // fixed-R: one round of exactly MaxReps
	}
	if p.MinReps > p.MaxReps {
		p.MinReps = p.MaxReps
	}
	if p.BatchSize < 1 {
		p.BatchSize = p.MinReps
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	if p.Workers > p.MaxReps {
		p.Workers = p.MaxReps
	}
	return p, nil
}

// FixedPlan is a convenience constructor for the fixed-R (no adaptive
// stopping) plan the experiment harness uses when a tolerance is not
// configured: exactly reps replications, whatever the variance.
func FixedPlan(baseSeed uint64, stream string, metrics, reps, workers int) Plan {
	return Plan{
		BaseSeed: baseSeed,
		Stream:   stream,
		Metrics:  metrics,
		MinReps:  reps,
		MaxReps:  reps,
		Workers:  workers,
	}
}

// Result is the merged outcome of a replication batch.
type Result struct {
	// Reps is the number of replications actually run; Rounds the number
	// of batch→merge→decide rounds.
	Reps   int
	Rounds int
	// Converged reports whether an adaptive plan met its tolerance before
	// exhausting MaxReps (always false for fixed-R plans).
	Converged bool
	// Cancelled reports that the context was cancelled before the plan
	// finished. The Moments then hold exactly the rounds folded before
	// cancellation — the bit-identical prefix of the uncancelled run —
	// and Reps counts only those folded replications.
	Cancelled bool
	// Retried counts replication attempts that failed and were re-run on
	// a retry seed (see Plan.MaxErrRetries). A replication that needed k
	// extra attempts contributes k.
	Retried int
	// Moments holds the index-ordered fold of every metric.
	Moments []stats.Welford
}

// Mean returns the merged mean of metric m.
func (r *Result) Mean(m int) float64 { return r.Moments[m].Mean() }

// CI95 returns the 95% confidence half-width of metric m's mean.
func (r *Result) CI95(m int) float64 { return r.Moments[m].CI95() }

// Summary snapshots metric m.
func (r *Result) Summary(m int) stats.Summary { return r.Moments[m].Snapshot() }

// Run executes the plan. factory builds one Replicator per worker (each
// built exactly once, before any replication runs, and kept for the whole
// batch — this is where reusable engines pay off). The returned Result is
// bit-identical at every worker count; on error, the lowest-index
// replication error is returned.
func Run(p Plan, factory func() (Replicator, error)) (*Result, error) {
	return RunContext(context.Background(), p, factory)
}

// RunContext executes the plan under a context. Cancellation is
// round-synchronous, which is what keeps it deterministic: the context is
// checked at every round boundary (and between replications inside a
// round, so workers stop promptly), but only fully completed rounds are
// ever folded. When ctx is cancelled mid-plan, RunContext returns a
// non-nil Result holding the bit-identical prefix — exactly the moments
// an uncancelled run would have had after the same rounds — with
// Cancelled set, alongside ctx.Err(). Callers that treat the prefix as a
// partial answer check res.Cancelled; callers that treat cancellation as
// failure just propagate the error.
func RunContext(ctx context.Context, p Plan, factory func() (Replicator, error)) (*Result, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, fmt.Errorf("replicate: invalid plan: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return &Result{Cancelled: true, Moments: make([]stats.Welford, p.Metrics)}, err
	}
	workers := make([]Replicator, p.Workers)
	for i := range workers {
		r, err := factory()
		if err != nil {
			return nil, fmt.Errorf("replicate: worker %d: %w", i, err)
		}
		if r == nil {
			return nil, fmt.Errorf("replicate: worker %d: factory returned nil", i)
		}
		workers[i] = r
	}

	values := make([]float64, p.MaxReps*p.Metrics)
	errs := make([]error, p.MaxReps)
	res := &Result{Moments: make([]stats.Welford, p.Metrics)}
	var retried atomic.Int64

	done, target := 0, p.MinReps
	for {
		runRound(ctx, p, workers, values, errs, done, target, &retried)
		if err := ctx.Err(); err != nil {
			// The round that was in flight is discarded wholesale: folding
			// a partial round would make the moments depend on which
			// replications happened to finish before the cancel.
			res.Reps = done
			res.Cancelled = true
			res.Retried = int(retried.Load())
			return res, err
		}
		// Errors surface in index order, like forEachIndex.
		for i := done; i < target; i++ {
			if errs[i] != nil {
				return nil, fmt.Errorf("replicate: replication %d (after %d retries): %w",
					i, p.MaxErrRetries, errs[i])
			}
		}
		// Fold the round as one block per metric, merged in index order:
		// the cumulative moments equal a single index-ordered stream.
		for m := 0; m < p.Metrics; m++ {
			var blk stats.Welford
			for i := done; i < target; i++ {
				blk.Add(values[i*p.Metrics+m])
			}
			res.Moments[m].Merge(blk)
		}
		done = target
		res.Rounds++
		if p.OnRound != nil {
			st := RoundStatus{Round: res.Rounds, Reps: done, Summaries: make([]stats.Summary, p.Metrics)}
			for m := range res.Moments {
				st.Summaries[m] = res.Moments[m].Snapshot()
			}
			p.OnRound(st)
		}
		if p.adaptive() && done >= p.MinReps && done >= 2 {
			w := &res.Moments[p.Target]
			ci := w.CI95()
			if (p.Tolerance > 0 && ci <= p.Tolerance) ||
				(p.RelTolerance > 0 && ci <= p.RelTolerance*math.Abs(w.Mean())) {
				res.Converged = true
				break
			}
		}
		if done >= p.MaxReps {
			break
		}
		target = done + p.BatchSize
		if target > p.MaxReps {
			target = p.MaxReps
		}
	}
	res.Reps = done
	res.Retried = int(retried.Load())
	return res, nil
}

// RunFunc runs the plan over a stateless replication function. The same
// function value serves every worker, so it must be safe for concurrent
// use when Workers > 1.
func RunFunc(p Plan, f Func) (*Result, error) {
	return Run(p, func() (Replicator, error) { return f, nil })
}

// RunFuncContext is RunFunc under a context (see RunContext).
func RunFuncContext(ctx context.Context, p Plan, f Func) (*Result, error) {
	return RunContext(ctx, p, func() (Replicator, error) { return f, nil })
}

// runRound executes replications [lo, hi) across the worker Replicators.
// Each replication writes only its own metric slots and error slot, so
// results are independent of which worker claims which index. Workers
// check ctx between replications and stop claiming once it is cancelled;
// the caller then discards the partial round, so the check affects
// wall-clock only, never the folded moments.
func runRound(ctx context.Context, p Plan, workers []Replicator, values []float64, errs []error, lo, hi int, retried *atomic.Int64) {
	span := hi - lo
	nw := len(workers)
	if nw > span {
		nw = span
	}
	runOne := func(r Replicator, i int) {
		seed := rng.DeriveSeed(p.BaseSeed, p.Stream, i)
		out := values[i*p.Metrics : (i+1)*p.Metrics : (i+1)*p.Metrics]
		err := r.Replicate(seed, out)
		// Failed replications re-run on seeds derived from the primary
		// seed, so the attempt-k stream of replication i never collides
		// with any primary stream and is the same at every worker count.
		for k := 1; err != nil && k <= p.MaxErrRetries && ctx.Err() == nil; k++ {
			retried.Add(1)
			err = r.Replicate(rng.DeriveSeed(seed, "replicate.retry", k), out)
		}
		errs[i] = err
	}
	if nw <= 1 {
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				return
			}
			runOne(workers[0], i)
		}
		return
	}
	// Work stealing via a shared atomic cursor: fast workers drain the
	// round; index-owned slots keep the outcome schedule-independent.
	var next atomic.Int64
	next.Store(int64(lo))
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func(r Replicator) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= hi {
					return
				}
				runOne(r, i)
			}
		}(workers[w])
	}
	wg.Wait()
}

// Short-sighted players (Section V.D): how much does a deviator with
// discount factor delta_s gain by undercutting the efficient NE before
// TFT retaliation catches up — and what does its deviation cost the
// network? The example also reproduces the reconciliation with Cagalj et
// al. (the paper's ref [2]): short-sighted selfishness collapses the
// network, long-sighted selfishness sustains the efficient NE.
//
// Run with:
//
//	go run ./examples/short-sighted
package main

import (
	"fmt"
	"log"

	"selfishmac"
)

func main() {
	log.SetFlags(0)
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(10, selfishmac.Basic))
	if err != nil {
		log.Fatal(err)
	}
	ne, err := game.FindEfficientNE()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10-player basic-access game, efficient NE Wc* = %d\n", ne.WStar)
	fmt.Println("\ndeviator analysis vs its discount factor (TFT reaction lag = 1 stage):")
	fmt.Printf("%-10s %-9s %-12s %-14s\n", "delta_s", "best Ws", "gain ratio", "network loss")
	for _, d := range []float64{0, 0.3, 0.6, 0.9, 0.99, 0.999, 0.9999} {
		res, err := game.ShortSightedBest(ne, d, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10g %-9d %-12.4f %-14.4f\n", d, res.WBest, res.GainRatio, res.GlobalLossFrac)
	}

	fmt.Println("\nslower punishment helps the deviator (delta_s = 0.9):")
	fmt.Printf("%-6s %-9s %-12s\n", "lag", "best Ws", "gain ratio")
	for _, lag := range []int{1, 2, 5, 10} {
		res, err := game.ShortSightedBest(ne, 0.9, lag)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-9d %-12.4f\n", lag, res.WBest, res.GainRatio)
	}

	// Lemma 4 in action: one stage of deviation payoffs.
	fmt.Println("\nLemma 4 stage payoffs around the NE (utility rates, /us):")
	for _, wDev := range []int{ne.WStar / 2, ne.WStar, ne.WStar * 2} {
		dev, err := game.Deviation(wDev, ne.WStar)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deviate to W=%4d: deviator=%.4g peers=%.4g uniform=%.4g (lemma 4 holds: %v)\n",
			wDev, dev.UDev, dev.UPeer, dev.UUniform, dev.SatisfiesLemma4())
	}
}

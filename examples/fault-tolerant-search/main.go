// Fault-tolerant NE search: the Section V.C protocol run through the
// deterministic fault-injection layer. The scenario combines 30% per-node
// broadcast loss, 10% gross payoff outliers, 5% transient measurement
// failures, and a leader crash five measurements in — and the resilient
// runner (median-of-3 measurement, retry, Ready re-broadcast, deputy
// failover) still lands on the fault-free efficient NE. The whole run
// replays byte-identically from its seed.
//
// Run with:
//
//	go run ./examples/fault-tolerant-search
package main

import (
	"fmt"
	"log"

	"selfishmac"
)

func main() {
	log.SetFlags(0)
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(10, selfishmac.RTSCTS))
	if err != nil {
		log.Fatal(err)
	}
	exact, err := game.FindEfficientNE()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10-player RTS/CTS game; fault-free efficient NE Wc* = %d\n\n", exact.WStar)

	const (
		w0   = 8
		seed = 7
	)
	opts := selfishmac.SearchOptions{
		WMax:     game.Config().WMax,
		MeasureK: 3, // median-of-3 rejects the payoff outliers
		Retries:  3, // transient failures are retried
	}
	cfg := selfishmac.FaultConfig{
		Seed:             seed,
		DropProb:         0.3,  // each follower misses each broadcast w.p. 0.3
		DupProb:          0.05, // some broadcasts arrive twice
		OutlierProb:      0.1,  // gross measurement errors
		FailProb:         0.05, // transient measurement failures
		LeaderCrashAfter: 5,    // the leader's search agent dies mid-walk
	}

	run := func() (selfishmac.SearchResult, selfishmac.FaultStats) {
		inner, err := selfishmac.NewAnalyticSearchEnv(game, 0, w0)
		if err != nil {
			log.Fatal(err)
		}
		env, err := selfishmac.NewFaultyEnv(inner, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := selfishmac.RunResilientSearch(env, 0, w0, opts)
		if err != nil {
			log.Fatal(err)
		}
		return res, env.Stats
	}

	res, stats := run()
	fmt.Printf("resilient walk from W0=%d under faults:\n", w0)
	fmt.Printf("  announced W=%d (fault-free Wc*=%d), degraded=%v\n", res.W, exact.WStar, res.Degraded)
	fmt.Printf("  leader crashed and deputy %d finished the search (failover=%v)\n", res.Leader, res.FailedOver)
	fmt.Printf("  %d operating points probed, %d raw measurements, %d retries, %d Ready re-broadcasts\n",
		res.ProbeCount(), res.Measurements, res.Retries, res.Rebroadcasts)
	fmt.Printf("  injected: %d drops, %d outliers, %d transient failures, %d leader crash\n\n",
		stats.Dropped, stats.Outliers, stats.TransientFailures, stats.LeaderCrashes)

	// Deterministic replay: the same seed reproduces the run exactly —
	// a failure seen once can always be replayed from its seed.
	again, stats2 := run()
	fmt.Printf("replay from seed %d: W=%d, identical stats: %v\n", seed, again.W, stats == stats2)

	// A probe budget turns exhaustion into graceful degradation instead
	// of an error: best-so-far with the Degraded flag.
	inner, err := selfishmac.NewAnalyticSearchEnv(game, 0, w0)
	if err != nil {
		log.Fatal(err)
	}
	env, err := selfishmac.NewFaultyEnv(inner, selfishmac.FaultConfig{Seed: seed, DropProb: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	budgetOpts := opts
	budgetOpts.ProbeBudget = 12
	deg, err := selfishmac.RunResilientSearch(env, 0, w0, budgetOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a probe budget of 12: announced best-so-far W=%d, degraded=%v\n", deg.W, deg.Degraded)
}
